// Package gpusched is a cycle-level GPGPU simulator built to study thread
// block (CTA) scheduling, reproducing "Improving GPGPU resource utilization
// through alternative thread block scheduling" (Lee et al., HPCA 2014).
//
// The library simulates a Fermi-class GPU — SIMT cores with scoreboarded
// dual issue, pluggable warp schedulers, per-core L1s with MSHRs, a crossbar
// to banked L2 partitions, and GDDR channels with row-buffer state — and
// implements the paper's CTA scheduling policies on top:
//
//   - Baseline: occupancy-maximal round-robin CTA dispatch.
//   - LCS (lazy CTA scheduling): sample per-CTA issue counts under a greedy
//     warp scheduler, then lazily stop refilling CTA slots past the point
//     the issue histogram says the core can use.
//   - AdaptiveLCS: LCS plus a rate-guarded probing descent (extension).
//   - BCS (block CTA scheduling): dispatch consecutive CTAs as gangs to one
//     core, with the BAWS warp scheduler keeping the gang in lockstep so
//     shared data stays hot.
//   - Concurrent kernel execution: sequential, spatial (core partitioning),
//     and the paper's mixed intra-core co-scheduling.
//
// Quick start:
//
//	w, _ := gpusched.WorkloadByName("stencil")
//	res, err := gpusched.Run(gpusched.DefaultConfig(), gpusched.BCS(2), w.Kernel(gpusched.SizeSmall))
//	fmt.Println(res.IPC, res.Cycles)
package gpusched

import (
	"context"

	"gpusched/internal/core"
	"gpusched/internal/gpu"
	"gpusched/internal/kernel"
	"gpusched/internal/mem"
	"gpusched/internal/sim"
	"gpusched/internal/sm"
	"gpusched/internal/stats"
	"gpusched/internal/trace"
	"gpusched/internal/workloads"
)

// WarpPolicy selects the per-SM warp scheduling discipline.
type WarpPolicy int

const (
	// WarpLRR is loose round-robin issue.
	WarpLRR WarpPolicy = iota
	// WarpGTO is greedy-then-oldest issue (the LCS companion and the
	// usual high-performance baseline).
	WarpGTO
	// WarpBAWS is the block-aware scheduler that advances a BCS gang's
	// CTAs in lockstep.
	WarpBAWS
	// WarpTwoLevel is a two-level round-robin scheduler: a small active
	// set issues LRR and memory-blocked warps are swapped out for
	// waiting ones.
	WarpTwoLevel
)

// String names the policy ("lrr", "gto", "baws", "two-level").
func (p WarpPolicy) String() string { return p.internal().String() }

func (p WarpPolicy) internal() sm.Policy {
	switch p {
	case WarpLRR:
		return sm.PolicyLRR
	case WarpBAWS:
		return sm.PolicyBAWS
	case WarpTwoLevel:
		return sm.PolicyTwoLevel
	default:
		return sm.PolicyGTO
	}
}

// ParseWarpPolicy parses a warp-scheduler name ("lrr", "gto", "baws",
// "two-level") via the shared internal/sim parser.
func ParseWarpPolicy(s string) (WarpPolicy, error) {
	p, err := sim.ParseWarpPolicy(s)
	if err != nil {
		return 0, err
	}
	switch p {
	case sm.PolicyLRR:
		return WarpLRR, nil
	case sm.PolicyBAWS:
		return WarpBAWS, nil
	case sm.PolicyTwoLevel:
		return WarpTwoLevel, nil
	default:
		return WarpGTO, nil
	}
}

// ParseSize parses a problem-scale name ("tiny", "small", "full") via the
// shared internal/sim parser.
func ParseSize(s string) (Size, error) {
	sc, err := sim.ParseScale(s)
	if err != nil {
		return 0, err
	}
	switch sc {
	case workloads.ScaleTest:
		return SizeTiny, nil
	case workloads.ScaleFull:
		return SizeFull, nil
	default:
		return SizeSmall, nil
	}
}

// Config selects the simulated GPU. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Cores is the SM count (default 15, GTX480-like).
	Cores int
	// WarpPolicy is the warp scheduler on every SM.
	WarpPolicy WarpPolicy
	// MaxCycles bounds the simulation (0 = the 20M-cycle default).
	MaxCycles uint64
	// Workers is how many OS threads tick the simulated SMs each cycle
	// (0 = derive from GOMAXPROCS, 1 = the serial reference path). It is
	// an execution knob only: results are byte-identical for every worker
	// count, so it never needs to appear in result caches or comparisons.
	Workers int
	// Granule is the activity-set parking threshold in cycles: an SM leaves
	// the per-cycle tick only when it can prove at least this many quiet
	// cycles ahead (0 = the built-in default). Execution knob only, like
	// Workers: results are byte-identical for every granule.
	Granule uint64
	// MemShards is how many shards the memory system's partitions tick in
	// (0 = derive from Workers, 1 = the serial memory tick). Execution knob
	// only, like Workers: results are byte-identical for every shard count.
	MemShards int
	// BatchWindow caps the quiet-window cycle batch in cycles (0 = the
	// built-in default, 1 = batching off). Execution knob only, like
	// Workers: results are byte-identical for every window.
	BatchWindow uint64

	// Advanced knobs. Nil fields keep Fermi-class defaults.
	SM  *SMConfig
	Mem *MemConfig
}

// SMConfig exposes the per-SM pipeline parameters (see internal/sm for the
// semantics of each field). Obtain a mutable copy from DefaultSMConfig.
type SMConfig = sm.Config

// MemConfig exposes the memory-hierarchy parameters (see internal/mem).
// Obtain a mutable copy from DefaultMemConfig.
type MemConfig = mem.Config

// DefaultConfig returns the paper's simulated GPU: 15 SMs, 2 warp
// schedulers each, GTO warp scheduling, 16KB L1s, 6 L2/DRAM partitions.
func DefaultConfig() Config {
	return Config{Cores: 15, WarpPolicy: WarpGTO}
}

// DefaultSMConfig returns the default SM parameters for customization.
func DefaultSMConfig() SMConfig { return sm.DefaultConfig() }

// DefaultMemConfig returns the default memory parameters for customization.
func DefaultMemConfig() MemConfig { return mem.DefaultConfig() }

func (c Config) build() gpu.Config {
	g := gpu.DefaultConfig()
	if c.Cores > 0 {
		g.NumCores = c.Cores
	}
	if c.SM != nil {
		g.Core = *c.SM
	}
	if c.Mem != nil {
		g.Mem = *c.Mem
	}
	g.Core.WarpPolicy = c.WarpPolicy.internal()
	if c.MaxCycles > 0 {
		g.MaxCycles = c.MaxCycles
	}
	g.Workers = c.Workers
	g.Granule = c.Granule
	g.MemShards = c.MemShards
	g.BatchWindow = c.BatchWindow
	return g
}

// Scheduler is a CTA scheduling policy plus its parameters — a thin facade
// over the typed internal/sim scheduler registry. Construct with Baseline,
// LCS, AdaptiveLCS, DynCTA, BCS, StaticLimit, Sequential, SpatialCKE,
// MixedCKE, Preemptive, or ParseScheduler.
type Scheduler struct {
	spec sim.SchedSpec
}

// Name returns the policy's short identifier.
func (s Scheduler) Name() string { return s.spec.Name() }

// SchedulerFlagHelp is the one-line grammar of ParseScheduler, for CLI flag
// help text. It tracks the internal scheduler registry, so a new policy shows
// up in every tool's -sched help without editing each command.
const SchedulerFlagHelp = sim.SchedFlagHelp

// ParseScheduler parses the scheduler DSL ("lcs", "bcs:4", "static:3", ...)
// shared by every CLI tool. See internal/sim for the grammar.
func ParseScheduler(s string) (Scheduler, error) {
	spec, err := sim.ParseSched(s)
	if err != nil {
		return Scheduler{}, err
	}
	return Scheduler{spec: spec}, nil
}

// Baseline is occupancy-maximal round-robin CTA dispatch.
func Baseline() Scheduler { return Scheduler{spec: sim.Baseline()} }

// LCS is the paper's lazy CTA scheduling (pair with WarpGTO).
func LCS() Scheduler { return Scheduler{spec: sim.LCS()} }

// AdaptiveLCS is LCS plus the rate-guarded probing descent.
func AdaptiveLCS() Scheduler { return Scheduler{spec: sim.AdaptiveLCS()} }

// DynCTA is the prior-work feedback throttler (Kayiran et al. style) the
// paper's LCS is contrasted with.
func DynCTA() Scheduler { return Scheduler{spec: sim.DynCTA()} }

// BCS dispatches gangs of blockSize consecutive CTAs to one SM (pair with
// WarpBAWS for the paper's full mechanism).
func BCS(blockSize int) Scheduler { return Scheduler{spec: sim.BCS(blockSize)} }

// StaticLimit caps every SM at limit resident CTAs of the first kernel —
// the oracle-sweep building block.
func StaticLimit(limit int) Scheduler { return Scheduler{spec: sim.Static(limit)} }

// Sequential runs launched kernels one at a time (no CKE).
func Sequential() Scheduler { return Scheduler{spec: sim.Sequential()} }

// SpatialCKE partitions the SMs between two kernels (coresForFirst = 0
// means an even split).
func SpatialCKE(coresForFirst int) Scheduler { return Scheduler{spec: sim.Spatial(coresForFirst)} }

// MixedCKE co-schedules two kernels on every SM, capping the first at
// limitA CTAs per core (normally an LCS/AdaptiveLCS decision).
func MixedCKE(limitA int) Scheduler { return Scheduler{spec: sim.Mixed(limitA)} }

// Preemptive drains batch CTAs at CTA boundaries to serve the
// latency-sensitive kernel at launch-table index priorityKernel (0 selects
// the default, kernel 1). deadlineCycles > 0 makes preemption conditional:
// batch work is only evicted while the online runtime predictor says the
// priority kernel will miss that absolute deadline; 0 preempts eagerly.
func Preemptive(priorityKernel, deadlineCycles int) Scheduler {
	return Scheduler{spec: sim.Preemptive(priorityKernel, deadlineCycles)}
}

// KernelStats describes one kernel's outcome.
type KernelStats struct {
	Name        string
	LaunchCycle uint64
	DoneCycle   uint64
	InstrIssued uint64
	CTAs        int
	// Evicted counts drain-preemption evictions of the kernel's CTAs.
	Evicted int
}

// Result is the outcome of one simulation.
type Result struct {
	// Cycles is the simulated makespan; TimedOut marks aborted runs.
	Cycles   uint64
	TimedOut bool
	// InstrIssued counts warp instructions; ThreadInstr lane instructions.
	InstrIssued uint64
	ThreadInstr uint64
	// IPC is InstrIssued/Cycles across the whole GPU.
	IPC float64
	// L1HitRate, L1MergeRate, L2HitRate and DRAMRowHitRate summarize the
	// memory system (merge rate = misses folded into in-flight fills,
	// which is how BCS lockstep sharing appears).
	L1HitRate      float64
	L1MergeRate    float64
	L2HitRate      float64
	DRAMRowHitRate float64
	// AvgMemLatency is mean cycles from load issue to completion.
	AvgMemLatency float64
	// AvgDRAMQueue is mean cycles requests waited at the controllers.
	AvgDRAMQueue float64
	// DRAMReads/DRAMWrites count line transfers.
	DRAMReads  uint64
	DRAMWrites uint64
	// Kernels reports per-kernel outcomes in launch order.
	Kernels []KernelStats
	// CTALimits holds the per-core limit an LCS-family scheduler decided
	// (nil otherwise; 0 entries mean the core never finished sampling).
	CTALimits []int
}

// Speedup returns base.Cycles / r.Cycles.
func (r Result) Speedup(base Result) float64 {
	return stats.Speedup(base.Cycles, r.Cycles)
}

// Run simulates kernels (in launch order) under the scheduler and returns
// the result.
func Run(cfg Config, sched Scheduler, kernels ...Kernel) (Result, error) {
	return RunContext(context.Background(), cfg, sched, kernels...)
}

// RunContext is Run with cooperative cancellation: when ctx is canceled
// the cycle loop stops mid-flight and ctx's error is returned.
func RunContext(ctx context.Context, cfg Config, sched Scheduler, kernels ...Kernel) (Result, error) {
	specs := make([]*kernel.Spec, len(kernels))
	for i, k := range kernels {
		specs[i] = k.spec
	}
	d := sched.spec.NewDispatcher()
	g, err := gpu.New(cfg.build(), d, specs...)
	if err != nil {
		return Result{}, err
	}
	raw, err := g.RunContext(ctx)
	if err != nil {
		return Result{}, err
	}
	return resultFrom(raw, sched, d), nil
}

// resultFrom converts the internal result record to the public one.
func resultFrom(raw gpu.Result, sched Scheduler, d core.Dispatcher) Result {
	res := Result{
		Cycles:         raw.Cycles,
		TimedOut:       raw.TimedOut,
		InstrIssued:    raw.InstrIssued,
		ThreadInstr:    raw.ThreadInstr,
		IPC:            raw.IPC,
		L1HitRate:      raw.L1.HitRate(),
		L2HitRate:      raw.L2.HitRate(),
		DRAMRowHitRate: raw.DRAM.RowHitRate(),
		AvgMemLatency:  raw.AvgMemLatency,
		AvgDRAMQueue:   raw.DRAM.AvgQueueLatency(),
		DRAMReads:      raw.DRAM.Reads,
		DRAMWrites:     raw.DRAM.Writes,
	}
	if raw.L1.Accesses > 0 {
		res.L1MergeRate = float64(raw.L1.MSHRMerges) / float64(raw.L1.Accesses)
	}
	for _, k := range raw.Kernels {
		res.Kernels = append(res.Kernels, KernelStats{
			Name:        k.Name,
			LaunchCycle: k.LaunchCycle,
			DoneCycle:   k.DoneCycle,
			InstrIssued: k.InstrIssued,
			CTAs:        k.CTAs,
			Evicted:     k.Evicted,
		})
	}
	if limits, ok := sched.spec.Limits(d); ok {
		res.CTALimits = append([]int(nil), limits...)
	}
	return res
}

// MustRun is Run, panicking on configuration errors (examples/benchmarks).
func MustRun(cfg Config, sched Scheduler, kernels ...Kernel) Result {
	r, err := Run(cfg, sched, kernels...)
	if err != nil {
		panic(err)
	}
	return r
}

// Timeline re-exports the execution-timeline tracer: per-epoch IPC,
// occupancy, and memory-system rates sampled during a run.
type Timeline = trace.Timeline

// TraceSample is one timeline epoch snapshot.
type TraceSample = trace.Sample

// RunTraced is Run plus a sampled timeline (epoch in cycles; 0 = 1024).
// Timelines make scheduling behaviour visible over time — the LCS throttle
// point, BCS gang waves, mixed-CKE phase changes.
func RunTraced(cfg Config, sched Scheduler, epoch uint64, kernels ...Kernel) (Result, *Timeline, error) {
	specs := make([]*kernel.Spec, len(kernels))
	for i, k := range kernels {
		specs[i] = k.spec
	}
	d := sched.spec.NewDispatcher()
	g, err := gpu.New(cfg.build(), d, specs...)
	if err != nil {
		return Result{}, nil, err
	}
	if epoch == 0 {
		epoch = 1024
	}
	tl := trace.Attach(g, epoch)
	raw := g.Run()
	res := resultFrom(raw, sched, d)
	return res, tl, nil
}

// Size selects a workload's problem scale.
type Size int

const (
	// SizeTiny is for smoke tests (sub-second on small configs).
	SizeTiny Size = iota
	// SizeSmall runs the full GPU for tens of milliseconds of simulated
	// time — the quick-experiment default.
	SizeSmall
	// SizeFull is the paper-experiment scale (several occupancy waves).
	SizeFull
)

func (s Size) internal() workloads.Scale {
	switch s {
	case SizeTiny:
		return workloads.ScaleTest
	case SizeFull:
		return workloads.ScaleFull
	default:
		return workloads.ScaleSmall
	}
}

// Kernel is one launchable kernel.
type Kernel struct {
	spec *kernel.Spec
}

// Name returns the kernel's name.
func (k Kernel) Name() string { return k.spec.Name }

// CTAs returns the grid size in thread blocks.
func (k Kernel) CTAs() int { return k.spec.NumCTAs() }

// ThreadsPerCTA returns the block size.
func (k Kernel) ThreadsPerCTA() int { return k.spec.ThreadsPerCTA() }

// Workload is a member of the built-in benchmark suite.
type Workload struct {
	// Name is the short identifier ("stencil", "spmv", ...).
	Name string
	// ModeledOn names the real benchmark the generator mimics.
	ModeledOn string
	// Class is the behaviour family ("compute", "stream", "cache",
	// "locality", "irregular", "sync").
	Class string
	// InterCTALocality marks BCS candidates.
	InterCTALocality bool

	build func(workloads.Scale) *kernel.Spec
}

// Kernel instantiates the workload at the given size.
func (w Workload) Kernel(s Size) Kernel {
	return Kernel{spec: w.build(s.internal())}
}

// Workloads returns the benchmark suite in report order.
func Workloads() []Workload {
	var out []Workload
	for _, w := range workloads.All() {
		out = append(out, wrapWorkload(w))
	}
	return out
}

// WorkloadByName finds a suite member.
func WorkloadByName(name string) (Workload, bool) {
	w, ok := workloads.ByName(name)
	if !ok {
		return Workload{}, false
	}
	return wrapWorkload(w), true
}

func wrapWorkload(w workloads.Workload) Workload {
	return Workload{
		Name:             w.Name,
		ModeledOn:        w.ModeledOn,
		Class:            string(w.Class),
		InterCTALocality: w.InterCTALocality,
		build:            w.Build,
	}
}
