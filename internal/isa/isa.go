// Package isa defines the warp-level instruction model executed by the
// simulated SIMT cores.
//
// The simulator is trace-shaped: kernels are expressed as per-warp streams of
// WarpInstr records. Each record is one dynamic instruction for one warp —
// the static opcode plus the per-lane state (active mask, per-lane addresses
// for memory operations) that the core and memory system need for timing.
// Control flow is pre-lowered by the workload generators: loops arrive
// unrolled and branch divergence is expressed through active masks, so the
// core never re-executes or re-converges. This keeps the core model focused
// on what CTA scheduling actually interacts with: issue bandwidth, operand
// dependencies, and the memory system.
package isa

import (
	"fmt"
	"math/bits"
)

// Op enumerates the opcode classes the timing model distinguishes.
// Classes, not exact SASS opcodes: two instructions with the same latency,
// issue port, and memory behaviour are indistinguishable to a cycle-level
// scheduler study.
type Op uint8

const (
	// OpNop consumes an issue slot and nothing else.
	OpNop Op = iota
	// OpIAlu is a single-cycle-throughput integer ALU operation
	// (add/sub/logic/shift/compare, address arithmetic).
	OpIAlu
	// OpFAlu is a single-precision floating-point operation
	// (FADD/FMUL/FFMA) executed on the SP units.
	OpFAlu
	// OpSfu is a special-function operation (rsqrt, sin, exp). Lower
	// throughput, higher latency than the SP pipeline.
	OpSfu
	// OpLoadGlobal is a global-memory load. Per-lane addresses are
	// coalesced into cache-line transactions and sent through
	// L1 -> interconnect -> L2 -> DRAM.
	OpLoadGlobal
	// OpStoreGlobal is a global-memory store. Fermi-style: write-through
	// past L1 (no-write-allocate), write-back at L2.
	OpStoreGlobal
	// OpLoadShared reads per-SM scratchpad memory; subject to bank
	// conflicts but never leaves the core.
	OpLoadShared
	// OpStoreShared writes scratchpad memory.
	OpStoreShared
	// OpAtomicGlobal is a global read-modify-write resolved at the L2
	// partition that owns the line.
	OpAtomicGlobal
	// OpBranch consumes an issue slot for the (pre-lowered) control
	// instruction. No pipeline flush is modeled; divergence shows up as
	// active masks on subsequent instructions.
	OpBranch
	// OpBarrier blocks the warp until every live warp in its CTA has
	// arrived at the same barrier.
	OpBarrier
	// OpExit retires the warp. A CTA completes when all its warps exit.
	OpExit

	numOps
)

// NumOps is the number of distinct opcode classes, for sizing per-op tables.
const NumOps = int(numOps)

var opNames = [NumOps]string{
	OpNop:          "NOP",
	OpIAlu:         "IALU",
	OpFAlu:         "FALU",
	OpSfu:          "SFU",
	OpLoadGlobal:   "LD.G",
	OpStoreGlobal:  "ST.G",
	OpLoadShared:   "LD.S",
	OpStoreShared:  "ST.S",
	OpAtomicGlobal: "ATOM.G",
	OpBranch:       "BRA",
	OpBarrier:      "BAR",
	OpExit:         "EXIT",
}

// String returns the mnemonic for the opcode class.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMemory reports whether the opcode is handled by the LDST pipeline
// (shared, global, or atomic).
func (o Op) IsMemory() bool {
	switch o {
	case OpLoadGlobal, OpStoreGlobal, OpLoadShared, OpStoreShared, OpAtomicGlobal:
		return true
	}
	return false
}

// IsGlobal reports whether the opcode accesses the global address space and
// therefore traverses L1/interconnect/L2/DRAM.
func (o Op) IsGlobal() bool {
	switch o {
	case OpLoadGlobal, OpStoreGlobal, OpAtomicGlobal:
		return true
	}
	return false
}

// WritesRegister reports whether the opcode produces a register result that
// the scoreboard must track.
func (o Op) WritesRegister() bool {
	switch o {
	case OpIAlu, OpFAlu, OpSfu, OpLoadGlobal, OpLoadShared, OpAtomicGlobal:
		return true
	}
	return false
}

// Reg identifies an architectural register within a warp. Register 0 is the
// zero register: reads from it never stall and writes to it are discarded,
// which lets generators express "no destination" uniformly.
type Reg uint8

// MaxRegs bounds the per-thread architectural register space the scoreboard
// tracks. 64 matches the Fermi-class per-thread limit.
const MaxRegs = 64

// WarpSize is the number of lanes per warp. Fixed at 32 across the code base
// (NVIDIA-style); several bitmask representations depend on it.
const WarpSize = 32

// FullMask is the active mask with all 32 lanes enabled.
const FullMask uint32 = 0xFFFFFFFF

// WarpInstr is one dynamic instruction for one warp. Workload program
// iterators fill these in place (the core reuses a buffer per warp), so the
// struct deliberately embeds its per-lane address array instead of pointing
// to a heap slice.
type WarpInstr struct {
	// Op is the opcode class; it selects the pipeline and latency.
	Op Op
	// Dst is the destination register (0 = none even for writing ops).
	Dst Reg
	// Src lists up to three source registers; 0 entries are ignored.
	Src [3]Reg
	// Mask is the active-lane mask. Inactive lanes contribute no memory
	// accesses. An instruction with Mask==0 is still issued (it models a
	// fully-predicated-off instruction occupying an issue slot).
	Mask uint32
	// Addrs holds per-lane byte addresses for memory operations.
	// For global ops these are offsets into the kernel's flat global
	// address space; for shared ops, offsets into the CTA's scratchpad.
	// Only entries whose lane bit is set in Mask are meaningful.
	Addrs [WarpSize]uint32
	// BankConflict optionally overrides the shared-memory conflict degree
	// (number of serialized passes). 0 means "derive from Addrs".
	BankConflict uint8
}

// ActiveLanes returns the number of enabled lanes.
func (wi *WarpInstr) ActiveLanes() int {
	return bits.OnesCount32(wi.Mask)
}

// Reset clears the record so a reused buffer never leaks stale lane state
// between instructions.
func (wi *WarpInstr) Reset() {
	*wi = WarpInstr{}
}

// Program is a lazily-evaluated per-warp instruction stream. Next fills buf
// with the next dynamic instruction and reports whether one was produced;
// after it returns false the warp has terminated (generators emit OpExit as
// their final instruction, but the core also treats stream end as exit).
//
// Implementations are stateful per warp and must be deterministic: the
// simulator replays nothing, but experiments compare scheduler policies on
// identical instruction streams, so two iterators constructed with the same
// parameters must produce identical sequences.
type Program interface {
	Next(buf *WarpInstr) bool
}

// ProgramFunc adapts a closure to the Program interface.
type ProgramFunc func(buf *WarpInstr) bool

// Next implements Program.
func (f ProgramFunc) Next(buf *WarpInstr) bool { return f(buf) }

// SliceProgram is a Program backed by a pre-built instruction slice. It is
// the convenient form for tests and for short fixed kernels.
type SliceProgram struct {
	Instrs []WarpInstr
	pos    int
}

// Next implements Program.
func (p *SliceProgram) Next(buf *WarpInstr) bool {
	if p.pos >= len(p.Instrs) {
		return false
	}
	*buf = p.Instrs[p.pos]
	p.pos++
	return true
}

// Remaining returns how many instructions have not yet been consumed.
func (p *SliceProgram) Remaining() int { return len(p.Instrs) - p.pos }
