package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpNop:          "NOP",
		OpIAlu:         "IALU",
		OpFAlu:         "FALU",
		OpSfu:          "SFU",
		OpLoadGlobal:   "LD.G",
		OpStoreGlobal:  "ST.G",
		OpLoadShared:   "LD.S",
		OpStoreShared:  "ST.S",
		OpAtomicGlobal: "ATOM.G",
		OpBranch:       "BRA",
		OpBarrier:      "BAR",
		OpExit:         "EXIT",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "Op(200)" {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestOpClassPredicates(t *testing.T) {
	type pred struct{ mem, global, writes bool }
	cases := map[Op]pred{
		OpNop:          {false, false, false},
		OpIAlu:         {false, false, true},
		OpFAlu:         {false, false, true},
		OpSfu:          {false, false, true},
		OpLoadGlobal:   {true, true, true},
		OpStoreGlobal:  {true, true, false},
		OpLoadShared:   {true, false, true},
		OpStoreShared:  {true, false, false},
		OpAtomicGlobal: {true, true, true},
		OpBranch:       {false, false, false},
		OpBarrier:      {false, false, false},
		OpExit:         {false, false, false},
	}
	for op, want := range cases {
		if got := op.IsMemory(); got != want.mem {
			t.Errorf("%v.IsMemory() = %v, want %v", op, got, want.mem)
		}
		if got := op.IsGlobal(); got != want.global {
			t.Errorf("%v.IsGlobal() = %v, want %v", op, got, want.global)
		}
		if got := op.WritesRegister(); got != want.writes {
			t.Errorf("%v.WritesRegister() = %v, want %v", op, got, want.writes)
		}
	}
}

func TestGlobalImpliesMemory(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if op.IsGlobal() && !op.IsMemory() {
			t.Errorf("%v is global but not memory", op)
		}
	}
}

func TestActiveLanes(t *testing.T) {
	cases := []struct {
		mask uint32
		want int
	}{
		{0, 0},
		{1, 1},
		{FullMask, 32},
		{0xAAAAAAAA, 16},
		{0x80000001, 2},
	}
	for _, c := range cases {
		wi := WarpInstr{Mask: c.mask}
		if got := wi.ActiveLanes(); got != c.want {
			t.Errorf("ActiveLanes(%#x) = %d, want %d", c.mask, got, c.want)
		}
	}
}

func TestActiveLanesMatchesPopcount(t *testing.T) {
	f := func(mask uint32) bool {
		wi := WarpInstr{Mask: mask}
		want := 0
		for i := 0; i < 32; i++ {
			if mask&(1<<i) != 0 {
				want++
			}
		}
		return wi.ActiveLanes() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWarpInstrReset(t *testing.T) {
	wi := WarpInstr{Op: OpLoadGlobal, Dst: 5, Mask: FullMask}
	wi.Addrs[3] = 12345
	wi.Reset()
	if wi.Op != OpNop || wi.Dst != 0 || wi.Mask != 0 || wi.Addrs[3] != 0 {
		t.Errorf("Reset left state behind: %+v", wi)
	}
}

func TestSliceProgram(t *testing.T) {
	p := NewBuilder().IAlu(1).FAlu(2, 1).Exit().Build()
	var buf WarpInstr
	var ops []Op
	for p.Next(&buf) {
		ops = append(ops, buf.Op)
	}
	want := []Op{OpIAlu, OpFAlu, OpExit}
	if len(ops) != len(want) {
		t.Fatalf("got %d instrs, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("instr %d = %v, want %v", i, ops[i], want[i])
		}
	}
	if p.Next(&buf) {
		t.Error("Next returned true after exhaustion")
	}
	if p.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", p.Remaining())
	}
}

func TestBuilderIsolation(t *testing.T) {
	b := NewBuilder().IAlu(1)
	p1 := b.Build()
	b.FAlu(2, 1)
	p2 := b.Build()
	if len(p1.Instrs) != 1 {
		t.Errorf("earlier Build mutated: len = %d, want 1", len(p1.Instrs))
	}
	if len(p2.Instrs) != 2 {
		t.Errorf("later Build wrong: len = %d, want 2", len(p2.Instrs))
	}
}

func TestBuilderLinearAddresses(t *testing.T) {
	p := NewBuilder().LoadGlobal(1, 1000).Build()
	wi := p.Instrs[0]
	for lane := 0; lane < WarpSize; lane++ {
		want := uint32(1000 + lane*4)
		if wi.Addrs[lane] != want {
			t.Fatalf("lane %d addr = %d, want %d", lane, wi.Addrs[lane], want)
		}
	}
}

func TestBuilderStrideAddresses(t *testing.T) {
	p := NewBuilder().LoadGlobalStride(1, 0, 128).Build()
	wi := p.Instrs[0]
	for lane := 0; lane < WarpSize; lane++ {
		if wi.Addrs[lane] != uint32(lane*128) {
			t.Fatalf("lane %d addr = %d, want %d", lane, wi.Addrs[lane], lane*128)
		}
	}
}

func TestBuilderSourceRegisters(t *testing.T) {
	p := NewBuilder().FAlu(4, 1, 2, 3).Build()
	wi := p.Instrs[0]
	if wi.Src != [3]Reg{1, 2, 3} {
		t.Errorf("Src = %v, want [1 2 3]", wi.Src)
	}
	// More than 3 sources are truncated, not panicked on.
	p = NewBuilder().FAlu(5, 1, 2, 3, 4).Build()
	if p.Instrs[0].Src != [3]Reg{1, 2, 3} {
		t.Errorf("overflow Src = %v, want [1 2 3]", p.Instrs[0].Src)
	}
}

func TestProgramFunc(t *testing.T) {
	n := 0
	p := ProgramFunc(func(buf *WarpInstr) bool {
		if n >= 2 {
			return false
		}
		buf.Reset()
		buf.Op = OpIAlu
		buf.Mask = FullMask
		n++
		return true
	})
	var buf WarpInstr
	count := 0
	for p.Next(&buf) {
		count++
	}
	if count != 2 {
		t.Errorf("ProgramFunc yielded %d instrs, want 2", count)
	}
}
