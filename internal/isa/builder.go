package isa

// Builder accumulates WarpInstr records for a SliceProgram. It exists for
// tests and short fixed kernels; the real workloads use stateful iterators
// to avoid materializing long streams.
type Builder struct {
	instrs []WarpInstr
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Len returns the number of instructions appended so far.
func (b *Builder) Len() int { return len(b.instrs) }

// Append adds a fully-specified instruction.
func (b *Builder) Append(wi WarpInstr) *Builder {
	b.instrs = append(b.instrs, wi)
	return b
}

// IAlu appends an integer ALU op dst <- f(srcs).
func (b *Builder) IAlu(dst Reg, srcs ...Reg) *Builder {
	return b.alu(OpIAlu, dst, srcs)
}

// FAlu appends a floating-point op dst <- f(srcs).
func (b *Builder) FAlu(dst Reg, srcs ...Reg) *Builder {
	return b.alu(OpFAlu, dst, srcs)
}

// Sfu appends a special-function op dst <- f(srcs).
func (b *Builder) Sfu(dst Reg, srcs ...Reg) *Builder {
	return b.alu(OpSfu, dst, srcs)
}

func (b *Builder) alu(op Op, dst Reg, srcs []Reg) *Builder {
	wi := WarpInstr{Op: op, Dst: dst, Mask: FullMask}
	for i, s := range srcs {
		if i >= len(wi.Src) {
			break
		}
		wi.Src[i] = s
	}
	b.instrs = append(b.instrs, wi)
	return b
}

// LoadGlobal appends a global load of one 4-byte word per lane starting at
// base, contiguous across lanes (the perfectly-coalesced pattern).
func (b *Builder) LoadGlobal(dst Reg, base uint32) *Builder {
	wi := WarpInstr{Op: OpLoadGlobal, Dst: dst, Mask: FullMask}
	fillLinear(&wi, base, 4)
	b.instrs = append(b.instrs, wi)
	return b
}

// LoadGlobalStride appends a global load with the given byte stride between
// consecutive lanes (stride > 32 bytes produces uncoalesced traffic).
func (b *Builder) LoadGlobalStride(dst Reg, base, stride uint32) *Builder {
	wi := WarpInstr{Op: OpLoadGlobal, Dst: dst, Mask: FullMask}
	fillLinear(&wi, base, stride)
	b.instrs = append(b.instrs, wi)
	return b
}

// LoadGlobalAddrs appends a global load with explicit per-lane addresses.
func (b *Builder) LoadGlobalAddrs(dst Reg, addrs [WarpSize]uint32) *Builder {
	b.instrs = append(b.instrs, WarpInstr{Op: OpLoadGlobal, Dst: dst, Mask: FullMask, Addrs: addrs})
	return b
}

// StoreGlobal appends a coalesced global store.
func (b *Builder) StoreGlobal(src Reg, base uint32) *Builder {
	wi := WarpInstr{Op: OpStoreGlobal, Src: [3]Reg{src}, Mask: FullMask}
	fillLinear(&wi, base, 4)
	b.instrs = append(b.instrs, wi)
	return b
}

// LoadShared appends a scratchpad load with the given bank-conflict degree
// (1 = conflict-free).
func (b *Builder) LoadShared(dst Reg, base uint32, conflict uint8) *Builder {
	wi := WarpInstr{Op: OpLoadShared, Dst: dst, Mask: FullMask, BankConflict: conflict}
	fillLinear(&wi, base, 4)
	b.instrs = append(b.instrs, wi)
	return b
}

// StoreShared appends a scratchpad store with the given bank-conflict degree.
func (b *Builder) StoreShared(src Reg, base uint32, conflict uint8) *Builder {
	wi := WarpInstr{Op: OpStoreShared, Src: [3]Reg{src}, Mask: FullMask, BankConflict: conflict}
	fillLinear(&wi, base, 4)
	b.instrs = append(b.instrs, wi)
	return b
}

// Atomic appends a global atomic read-modify-write on the addressed words.
func (b *Builder) Atomic(dst Reg, addrs [WarpSize]uint32, mask uint32) *Builder {
	b.instrs = append(b.instrs, WarpInstr{Op: OpAtomicGlobal, Dst: dst, Mask: mask, Addrs: addrs})
	return b
}

// Branch appends a control instruction (issue-slot cost only).
func (b *Builder) Branch() *Builder {
	b.instrs = append(b.instrs, WarpInstr{Op: OpBranch, Mask: FullMask})
	return b
}

// Barrier appends a CTA-wide barrier.
func (b *Builder) Barrier() *Builder {
	b.instrs = append(b.instrs, WarpInstr{Op: OpBarrier, Mask: FullMask})
	return b
}

// Exit appends warp termination.
func (b *Builder) Exit() *Builder {
	b.instrs = append(b.instrs, WarpInstr{Op: OpExit, Mask: FullMask})
	return b
}

// Build returns the accumulated stream as a fresh SliceProgram. The builder
// may be reused; the returned program owns a copy.
func (b *Builder) Build() *SliceProgram {
	out := make([]WarpInstr, len(b.instrs))
	copy(out, b.instrs)
	return &SliceProgram{Instrs: out}
}

func fillLinear(wi *WarpInstr, base, stride uint32) {
	for lane := 0; lane < WarpSize; lane++ {
		wi.Addrs[lane] = base + uint32(lane)*stride
	}
}

// FillLinear populates per-lane addresses base + lane*stride on wi.
// Exported for workload generators that build instructions directly.
func FillLinear(wi *WarpInstr, base, stride uint32) { fillLinear(wi, base, stride) }
