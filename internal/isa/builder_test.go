package isa

import "testing"

func TestBuilderAllForms(t *testing.T) {
	var gather [WarpSize]uint32
	for i := range gather {
		gather[i] = uint32(i * 256)
	}
	p := NewBuilder().
		IAlu(1, 0).
		FAlu(2, 1).
		Sfu(3, 2).
		LoadGlobal(4, 0).
		LoadGlobalStride(5, 0, 64).
		LoadGlobalAddrs(6, gather).
		StoreGlobal(6, 4096).
		LoadShared(7, 0, 2).
		StoreShared(7, 0, 4).
		Atomic(8, gather, 0xFF).
		Branch().
		Barrier().
		Exit().
		Build()

	wantOps := []Op{
		OpIAlu, OpFAlu, OpSfu, OpLoadGlobal, OpLoadGlobal, OpLoadGlobal,
		OpStoreGlobal, OpLoadShared, OpStoreShared, OpAtomicGlobal,
		OpBranch, OpBarrier, OpExit,
	}
	if len(p.Instrs) != len(wantOps) {
		t.Fatalf("built %d instrs, want %d", len(p.Instrs), len(wantOps))
	}
	for i, want := range wantOps {
		if p.Instrs[i].Op != want {
			t.Errorf("instr %d op = %v, want %v", i, p.Instrs[i].Op, want)
		}
	}
	if p.Instrs[4].Addrs[1] != 64 {
		t.Errorf("stride load lane 1 addr = %d, want 64", p.Instrs[4].Addrs[1])
	}
	if p.Instrs[5].Addrs[3] != 768 {
		t.Errorf("gather lane 3 addr = %d, want 768", p.Instrs[5].Addrs[3])
	}
	if p.Instrs[6].Src[0] != 6 {
		t.Errorf("store source = %v, want r6", p.Instrs[6].Src[0])
	}
	if p.Instrs[7].BankConflict != 2 || p.Instrs[8].BankConflict != 4 {
		t.Error("bank conflict degrees lost")
	}
	if p.Instrs[9].Mask != 0xFF {
		t.Errorf("atomic mask = %#x, want 0xFF", p.Instrs[9].Mask)
	}
	if got := NewBuilder().IAlu(1).Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
}

func TestBuilderAppendRaw(t *testing.T) {
	wi := WarpInstr{Op: OpNop, Mask: 0xF0F0}
	p := NewBuilder().Append(wi).Build()
	if p.Instrs[0] != wi {
		t.Errorf("Append altered instruction: %+v", p.Instrs[0])
	}
}
