package sim_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpusched/internal/sim"
)

// distinctTiny builds n requests with distinct cache keys but identical
// (cheap) simulated work: the MaxCycles override varies the key without
// changing what runs.
func distinctTiny(n int) []sim.Request {
	reqs := make([]sim.Request, n)
	for i := range reqs {
		r := tinyRequest("vadd", sim.Baseline())
		r.MaxCycles = 20_000_000 + uint64(i)
		reqs[i] = r
	}
	return reqs
}

// TestDiskCacheEntryBudget: with CacheEntries = 2, a third distinct store
// evicts the oldest entry, the directory stays at the budget, and the
// eviction is counted in Stats.DiskEvictions.
func TestDiskCacheEntryBudget(t *testing.T) {
	dir := t.TempDir()
	svc := sim.NewService(sim.Options{CacheDir: dir, CacheEntries: 2})
	ctx := context.Background()
	for i, req := range distinctTiny(3) {
		if _, err := svc.Run(ctx, req); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		// Space the stores out so mtime ordering is unambiguous even on
		// coarse-resolution filesystems.
		time.Sleep(20 * time.Millisecond)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	jsonFiles := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".json" {
			jsonFiles++
		}
	}
	if jsonFiles != 2 {
		t.Errorf("cache holds %d entries, want 2 (budget)", jsonFiles)
	}
	if st := svc.Stats(); st.DiskEvictions != 1 {
		t.Errorf("DiskEvictions = %d, want 1", st.DiskEvictions)
	}

	// The newest two entries survive: the last two requests hit disk on a
	// fresh service, the first resimulates.
	fresh := sim.NewService(sim.Options{CacheDir: dir})
	reqs := distinctTiny(3)
	for _, req := range reqs[1:] {
		if _, err := fresh.Run(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if st := fresh.Stats(); st.DiskHits != 2 || st.Simulated != 0 {
		t.Errorf("warm stats after eviction = %+v, want 2 disk hits", st)
	}
	if _, err := fresh.Run(ctx, reqs[0]); err != nil {
		t.Fatal(err)
	}
	if st := fresh.Stats(); st.Simulated != 1 {
		t.Errorf("evicted entry should resimulate; stats = %+v", st)
	}
}

// TestDiskCacheByteBudget: a byte budget far below two entries keeps the
// newest store and evicts the rest.
func TestDiskCacheByteBudget(t *testing.T) {
	dir := t.TempDir()
	svc := sim.NewService(sim.Options{CacheDir: dir, CacheBytes: 1})
	ctx := context.Background()
	for _, req := range distinctTiny(2) {
		if _, err := svc.Run(ctx, req); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ents, _ := os.ReadDir(dir)
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	// The just-written entry is exempt from its own store's eviction, so
	// exactly one (the newest) survives each store.
	if n != 1 {
		t.Errorf("cache holds %d entries under a 1-byte budget, want 1", n)
	}
	if st := svc.Stats(); st.DiskEvictions != 1 {
		t.Errorf("DiskEvictions = %d, want 1", st.DiskEvictions)
	}
}

// TestCacheEntryBytesAndDecode: the content-addressed accessor serves the
// raw entry, DecodeCacheEntry verifies it against the right key and
// rejects the wrong one — the peer-cache protocol's integrity check.
func TestCacheEntryBytesAndDecode(t *testing.T) {
	dir := t.TempDir()
	svc := sim.NewService(sim.Options{CacheDir: dir})
	req := tinyRequest("vadd", sim.LCS())
	out, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	key := req.Key()
	data, ok := svc.CacheEntryBytes(sim.CacheAddr(key))
	if !ok {
		t.Fatalf("no entry for %s", sim.CacheAddr(key))
	}
	got, ok := sim.DecodeCacheEntry(data, key)
	if !ok {
		t.Fatal("entry failed verification against its own key")
	}
	if got.Result.Cycles != out.Result.Cycles {
		t.Errorf("decoded cycles %d != simulated %d", got.Result.Cycles, out.Result.Cycles)
	}
	if _, ok := sim.DecodeCacheEntry(data, key+"|tampered"); ok {
		t.Error("entry verified against the wrong key")
	}
	// Malformed addresses never resolve (and never touch the filesystem).
	for _, bad := range []string{"", "..", "../../etc/passwd", "ZZ", sim.CacheAddr(key)[:40]} {
		if _, ok := svc.CacheEntryBytes(bad); ok {
			t.Errorf("malformed address %q resolved", bad)
		}
	}
}

// TestPeerFetchHook: a service with a PeerFetch hook satisfies a local
// miss from the peer, counts it, and migrates the entry into its own
// disk cache so the next cold service hits locally.
func TestPeerFetchHook(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	ctx := context.Background()
	req := tinyRequest("vadd", sim.LCS())
	key := req.Key()

	svcA := sim.NewService(sim.Options{CacheDir: dirA})
	want, err := svcA.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	fetches := 0
	svcB := sim.NewService(sim.Options{
		CacheDir: dirB,
		PeerFetch: func(ctx context.Context, k string) (sim.Outcome, bool) {
			fetches++
			if k != key {
				t.Errorf("peer fetch for key %q, want %q", k, key)
			}
			data, ok := svcA.CacheEntryBytes(sim.CacheAddr(k))
			if !ok {
				return sim.Outcome{}, false
			}
			return sim.DecodeCacheEntry(data, k)
		},
	})
	got, err := svcB.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Cycles != want.Result.Cycles {
		t.Errorf("peer outcome differs: %d vs %d cycles", got.Result.Cycles, want.Result.Cycles)
	}
	if st := svcB.Stats(); st.PeerHits != 1 || st.Simulated != 0 || st.DiskHits != 0 {
		t.Errorf("stats after peer hit = %+v", st)
	}
	if fetches != 1 {
		t.Errorf("peer fetched %d times, want 1", fetches)
	}
	// The entry migrated: a cold service on B's directory hits disk.
	svcB2 := sim.NewService(sim.Options{CacheDir: dirB})
	if _, err := svcB2.Run(ctx, req); err != nil {
		t.Fatal(err)
	}
	if st := svcB2.Stats(); st.DiskHits != 1 || st.Simulated != 0 {
		t.Errorf("migrated entry not on disk; stats = %+v", st)
	}
}
