package sim

import (
	"fmt"
	"strings"

	"gpusched/internal/gpu"
	"gpusched/internal/kernel"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

// Request describes one simulation: what to run and on which simulated
// machine. The zero values of the override fields keep the Fermi-class
// defaults, so a Request is fully described by its visible fields and
// Key() can serve as a cache identity.
type Request struct {
	// Workloads are the suite workloads to launch, in launch order.
	Workloads []string
	// Arrivals are per-workload dispatch-availability cycles, parallel to
	// Workloads; a missing or zero entry means available at machine launch.
	// Entries must be nondecreasing in launch order (the GPU keeps arrived
	// kernels a prefix of the launch table). Late arrivals set up the
	// preemption scenarios: a latency-sensitive kernel arriving while the
	// batch kernel owns every SM.
	Arrivals []uint64
	// Sched is the CTA scheduling policy.
	Sched SchedSpec
	// Warp is the per-SM warp scheduling policy.
	Warp sm.Policy
	// Scale selects the problem size.
	Scale workloads.Scale
	// Cores overrides the SM count (0 = the 15-SM default).
	Cores int
	// L1Bytes overrides the per-SM L1 capacity (0 = default; sensitivity
	// studies).
	L1Bytes int
	// DRAMSchedFCFS selects plain FCFS DRAM scheduling over FR-FCFS.
	DRAMSchedFCFS bool
	// MaxCycles overrides the simulation bound (0 = the 20M default).
	MaxCycles uint64
	// NoFastForward forces the reference cycle-by-cycle loop instead of the
	// event-horizon fast-forward. Results are bit-identical either way, but
	// the flag must stay part of the cache identity: the determinism tests
	// run both variants and each must actually simulate, not coalesce into
	// the other's flight.
	NoFastForward bool
}

// Key returns the canonical identity of the request: two requests with
// equal keys simulate identically (the simulator is deterministic). It is
// the memoization key of Service and, hashed, the on-disk cache filename.
// The cachekey annotation makes the coverage a build-time contract: a new
// exported Request field that is not folded in here fails `make lint`.
//
//gpulint:cachekey Request
func (r Request) Key() string {
	key := fmt.Sprintf("w=%s|sched=%s|warp=%s|scale=%s|cores=%d|l1=%d|fcfs=%t|max=%d",
		strings.Join(r.Workloads, "+"), r.Sched, r.Warp,
		ScaleName(r.Scale), r.Cores, r.L1Bytes, r.DRAMSchedFCFS, r.MaxCycles)
	if r.NoFastForward {
		// Appended rather than inlined so existing disk caches keep their
		// keys for the default (fast-forwarding) variant.
		key += "|noff=true"
	}
	if len(r.Arrivals) > 0 {
		// Appended (same cache-compatibility reasoning) and only when some
		// arrival is nonzero: all-zero arrivals are semantically the zero
		// value and must key like it.
		any := false
		for _, a := range r.Arrivals {
			if a != 0 {
				any = true
				break
			}
		}
		if any {
			parts := make([]string, len(r.Arrivals))
			for i, a := range r.Arrivals {
				parts[i] = fmt.Sprintf("%d", a)
			}
			key += "|arr=" + strings.Join(parts, "+")
		}
	}
	return key
}

// Validate checks the request names known workloads and launches at least
// one kernel.
func (r Request) Validate() error {
	if len(r.Workloads) == 0 {
		return fmt.Errorf("sim: request launches no workloads")
	}
	for _, n := range r.Workloads {
		if _, ok := workloads.ByName(n); !ok {
			return fmt.Errorf("sim: unknown workload %q", n)
		}
	}
	if len(r.Arrivals) > len(r.Workloads) {
		return fmt.Errorf("sim: %d arrivals for %d workloads", len(r.Arrivals), len(r.Workloads))
	}
	for i := 1; i < len(r.Arrivals); i++ {
		if r.Arrivals[i] < r.Arrivals[i-1] {
			return fmt.Errorf("sim: arrivals must be nondecreasing in launch order (entry %d: %d < %d)",
				i, r.Arrivals[i], r.Arrivals[i-1])
		}
	}
	return nil
}

// kernels builds the kernel specs for the request's workloads.
func (r Request) kernels() ([]*kernel.Spec, error) {
	specs := make([]*kernel.Spec, len(r.Workloads))
	for i, n := range r.Workloads {
		w, ok := workloads.ByName(n)
		if !ok {
			return nil, fmt.Errorf("sim: unknown workload %q", n)
		}
		specs[i] = w.Build(r.Scale)
		if i < len(r.Arrivals) {
			specs[i].Arrival = r.Arrivals[i]
		}
	}
	return specs, nil
}

// config assembles the GPU configuration the request's overrides select.
func (r Request) config() gpu.Config {
	cfg := gpu.DefaultConfig()
	if r.Cores > 0 {
		cfg.NumCores = r.Cores
	}
	cfg.Core.WarpPolicy = r.Warp
	if r.L1Bytes > 0 {
		cfg.Mem.L1Bytes = r.L1Bytes
	}
	cfg.Mem.DRAMSchedFCFS = r.DRAMSchedFCFS
	if r.MaxCycles > 0 {
		cfg.MaxCycles = r.MaxCycles
	}
	cfg.DisableFastForward = r.NoFastForward
	return cfg
}

// Outcome couples a simulation result with the scheduler-internal limit
// decisions of LCS-family policies (nil otherwise).
type Outcome struct {
	Result gpu.Result
	Limits []int `json:",omitempty"`
}
