// Package sim is the typed simulation-service layer every entry point
// builds on. It owns the one scheduler registry/parser (replacing the
// string-DSL copies that used to live in internal/harness and the cmd
// tools), a canonical cache key per simulation request, and a Service that
// runs requests through a bounded worker pool with singleflight
// deduplication, context cancellation, and an optional on-disk result
// cache.
package sim

import (
	"fmt"
	"strconv"
	"strings"

	"gpusched/internal/core"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

// SchedKind enumerates the CTA scheduling policies.
type SchedKind int

const (
	// SchedBaseline is occupancy-maximal round-robin dispatch.
	SchedBaseline SchedKind = iota
	// SchedLCS is the paper's lazy CTA scheduling.
	SchedLCS
	// SchedAdaptiveLCS is LCS plus the rate-guarded probing descent.
	SchedAdaptiveLCS
	// SchedDynCTA is the prior-work feedback throttler.
	SchedDynCTA
	// SchedBCS dispatches gangs of consecutive CTAs (Arg = gang width).
	SchedBCS
	// SchedStatic caps every SM at Arg resident CTAs.
	SchedStatic
	// SchedSequential runs launched kernels one at a time.
	SchedSequential
	// SchedSpatial partitions the SMs between two kernels (Arg = cores for
	// the first kernel, 0 = even split).
	SchedSpatial
	// SchedMixed co-schedules two kernels per SM (Arg = first kernel's
	// CTA limit).
	SchedMixed
	// SchedPreemptive is drain/switch CTA preemption: the priority kernel
	// (Arg, default 1) steals slots from batch kernels; Arg2, when nonzero,
	// is the deadline in cycles that gates preemption through the online
	// runtime predictor (0 = eager).
	SchedPreemptive
)

// SchedSpec is a CTA scheduling policy plus its parameter — the typed form
// of strings like "bcs:2" or "static:3".
type SchedSpec struct {
	Kind SchedKind
	// Arg parameterizes the policy: BCS gang width, static limit, spatial
	// cores-for-first, mixed limit, preemptive priority-kernel index.
	// 0 selects the policy default.
	Arg int
	// Arg2 is the second parameter of two-argument policies (preemptive
	// deadline cycles); 0 selects the policy default. Policies without a
	// second argument normalize it away: the dispatcher never reads it, so
	// the canonical string (and thus the cache key) ignores it too.
	Arg2 int
}

// Typed constructors, mirroring the policies of internal/core.

// Baseline is occupancy-maximal round-robin CTA dispatch.
func Baseline() SchedSpec { return SchedSpec{Kind: SchedBaseline} }

// LCS is lazy CTA scheduling.
func LCS() SchedSpec { return SchedSpec{Kind: SchedLCS} }

// AdaptiveLCS is LCS plus the probing descent.
func AdaptiveLCS() SchedSpec { return SchedSpec{Kind: SchedAdaptiveLCS} }

// DynCTA is the DYNCTA-style prior-work throttler.
func DynCTA() SchedSpec { return SchedSpec{Kind: SchedDynCTA} }

// BCS dispatches gangs of width consecutive CTAs (0 = the default 2).
func BCS(width int) SchedSpec { return SchedSpec{Kind: SchedBCS, Arg: width} }

// Static caps every SM at limit resident CTAs.
func Static(limit int) SchedSpec { return SchedSpec{Kind: SchedStatic, Arg: limit} }

// Sequential runs kernels one at a time (no CKE).
func Sequential() SchedSpec { return SchedSpec{Kind: SchedSequential} }

// Spatial partitions the SMs (coresForFirst = 0 means an even split).
func Spatial(coresForFirst int) SchedSpec { return SchedSpec{Kind: SchedSpatial, Arg: coresForFirst} }

// Mixed co-schedules two kernels per SM, capping the first at limitA.
func Mixed(limitA int) SchedSpec { return SchedSpec{Kind: SchedMixed, Arg: limitA} }

// Preemptive drains batch CTAs to serve kernel priorityKernel (0 = the
// default, kernel 1). deadlineCycles > 0 gates preemption on the online
// predictor missing that absolute deadline; 0 preempts eagerly.
func Preemptive(priorityKernel, deadlineCycles int) SchedSpec {
	return SchedSpec{Kind: SchedPreemptive, Arg: priorityKernel, Arg2: deadlineCycles}
}

// schedEntry is one registry row: names, argument rules, and factories.
type schedEntry struct {
	kind      SchedKind
	canonical string   // parse name and cache-key prefix
	display   string   // report name ("lcs-adaptive" for "adaptive")
	aliases   []string // accepted parse synonyms
	// arg handling: takesArg policies render "name:arg" keys; needsArg
	// rejects a bare name at parse time; defaultArg normalizes Arg == 0.
	// takesArg2 policies additionally accept "name:arg:arg2" (arg2 == 0 is
	// the default and is omitted from the canonical string).
	takesArg   bool
	takesArg2  bool
	needsArg   bool
	defaultArg int
	// argInName embeds the arg in the display name ("static-3").
	argInName bool
	build     func(arg, arg2 int) core.Dispatcher
	limits    func(core.Dispatcher) []int
}

var schedRegistry = []schedEntry{
	{
		kind: SchedBaseline, canonical: "baseline", display: "baseline",
		aliases: []string{"base", "rr"},
		build:   func(int, int) core.Dispatcher { return core.NewRoundRobin() },
	},
	{
		kind: SchedLCS, canonical: "lcs", display: "lcs",
		build:  func(int, int) core.Dispatcher { return core.NewLCS() },
		limits: func(d core.Dispatcher) []int { return d.(*core.LCS).Limits() },
	},
	{
		kind: SchedAdaptiveLCS, canonical: "adaptive", display: "lcs-adaptive",
		aliases: []string{"lcs-adaptive"},
		build:   func(int, int) core.Dispatcher { return core.NewAdaptiveLCS() },
		limits:  func(d core.Dispatcher) []int { return d.(*core.AdaptiveLCS).Limits() },
	},
	{
		kind: SchedDynCTA, canonical: "dyncta", display: "dyncta",
		build:  func(int, int) core.Dispatcher { return core.NewDynCTA() },
		limits: func(d core.Dispatcher) []int { return d.(*core.DynCTA).Limits() },
	},
	{
		kind: SchedBCS, canonical: "bcs", display: "bcs",
		takesArg: true, defaultArg: 2,
		build: func(arg, _ int) core.Dispatcher {
			b := core.NewBCS()
			if arg > 0 {
				b.BlockSize = arg
			}
			return b
		},
	},
	{
		kind: SchedStatic, canonical: "static", display: "static",
		takesArg: true, needsArg: true, argInName: true,
		build: func(arg, _ int) core.Dispatcher { return core.NewLimited(arg) },
	},
	{
		kind: SchedSequential, canonical: "sequential", display: "sequential",
		aliases: []string{"seq"},
		build:   func(int, int) core.Dispatcher { return core.NewSequential() },
	},
	{
		kind: SchedSpatial, canonical: "spatial", display: "spatial",
		takesArg: true,
		build: func(arg, _ int) core.Dispatcher {
			s := core.NewSpatial()
			s.CoresForA = arg
			return s
		},
	},
	{
		kind: SchedMixed, canonical: "mixed", display: "mixed",
		takesArg: true,
		build:    func(arg, _ int) core.Dispatcher { return core.NewMixed(arg) },
	},
	{
		kind: SchedPreemptive, canonical: "preemptive", display: "preemptive",
		aliases:  []string{"preempt"},
		takesArg: true, takesArg2: true, defaultArg: 1,
		build: func(arg, arg2 int) core.Dispatcher {
			return core.NewPreemptive(arg, uint64(arg2))
		},
	},
}

func (s SchedSpec) entry() schedEntry {
	for _, e := range schedRegistry {
		if e.kind == s.Kind {
			return e
		}
	}
	// Unknown kinds cannot be built from the exported constructors; treat
	// them as the baseline rather than crash deep in a worker.
	return schedRegistry[0]
}

// arg returns the normalized policy argument (defaults applied).
func (s SchedSpec) arg() int {
	e := s.entry()
	if s.Arg == 0 && e.defaultArg != 0 {
		return e.defaultArg
	}
	return s.Arg
}

// arg2 returns the normalized second argument: policies without one read it
// as 0 whatever the field holds (NewDispatcher never passes it through), so
// normalizing keeps the canonical string aligned with behavior.
func (s SchedSpec) arg2() int {
	if !s.entry().takesArg2 {
		return 0
	}
	return s.Arg2
}

// String renders the canonical "name" / "name:arg" / "name:arg:arg2" form
// used in cache keys; ParseSched inverts it. The cachekey annotation pins
// every exported SchedSpec field into this rendering: a policy parameter
// that does not reach the string would alias distinct simulations in the
// result cache.
//
//gpulint:cachekey SchedSpec
func (s SchedSpec) String() string {
	e := s.entry()
	if !e.takesArg {
		return e.canonical
	}
	if a2 := s.arg2(); a2 != 0 {
		return fmt.Sprintf("%s:%d:%d", e.canonical, s.arg(), a2)
	}
	return fmt.Sprintf("%s:%d", e.canonical, s.arg())
}

// Name is the report/display identifier ("lcs-adaptive", "static-3").
func (s SchedSpec) Name() string {
	e := s.entry()
	if e.argInName {
		return fmt.Sprintf("%s-%d", e.display, s.arg())
	}
	return e.display
}

// NewDispatcher instantiates the policy. Each simulation needs a fresh
// dispatcher: they carry per-run state.
func (s SchedSpec) NewDispatcher() core.Dispatcher {
	return s.entry().build(s.arg(), s.arg2())
}

// Limits extracts the per-core CTA limits a finished dispatcher decided.
// ok reports whether the policy makes such decisions (the LCS family).
func (s SchedSpec) Limits(d core.Dispatcher) (limits []int, ok bool) {
	e := s.entry()
	if e.limits == nil {
		return nil, false
	}
	return e.limits(d), true
}

// SchedFlagHelp documents ParseSched's grammar for CLI -sched flags.
const SchedFlagHelp = "baseline | lcs | adaptive | dyncta | bcs[:N] | static:N | sequential | spatial[:N] | mixed[:N] | preemptive[:P[:D]]"

// ParseSched parses the scheduler DSL ("lcs", "bcs:4", "static:3",
// "preemptive:1:60000", ...). This is the only scheduler parser in the
// tree; every entry point delegates here.
func ParseSched(s string) (SchedSpec, error) {
	name, argStr, hasArg := strings.Cut(s, ":")
	argStr, arg2Str, hasArg2 := strings.Cut(argStr, ":")
	var e *schedEntry
	for i := range schedRegistry {
		cand := &schedRegistry[i]
		if cand.canonical == name {
			e = cand
			break
		}
		for _, a := range cand.aliases {
			if a == name {
				e = cand
				break
			}
		}
		if e != nil {
			break
		}
	}
	if e == nil {
		return SchedSpec{}, fmt.Errorf("unknown scheduler %q (want %s)", name, SchedFlagHelp)
	}
	if hasArg && !e.takesArg {
		return SchedSpec{}, fmt.Errorf("scheduler %q takes no argument", name)
	}
	if hasArg2 && !e.takesArg2 {
		return SchedSpec{}, fmt.Errorf("scheduler %q takes no second argument", name)
	}
	if e.needsArg && !hasArg {
		return SchedSpec{}, fmt.Errorf("scheduler %q needs an argument, e.g. %s:3", name, e.canonical)
	}
	arg := 0
	if hasArg {
		v, err := strconv.Atoi(argStr)
		if err != nil || v < 0 {
			return SchedSpec{}, fmt.Errorf("bad argument %q for scheduler %q", argStr, name)
		}
		arg = v
	}
	arg2 := 0
	if hasArg2 {
		v, err := strconv.Atoi(arg2Str)
		if err != nil || v < 0 {
			return SchedSpec{}, fmt.Errorf("bad second argument %q for scheduler %q", arg2Str, name)
		}
		arg2 = v
	}
	return SchedSpec{Kind: e.kind, Arg: arg, Arg2: arg2}, nil
}

// WarpFlagHelp documents ParseWarpPolicy's accepted names.
const WarpFlagHelp = "lrr | gto | baws | two-level"

// ParseWarpPolicy parses a warp-scheduler name.
func ParseWarpPolicy(s string) (sm.Policy, error) {
	switch s {
	case "lrr":
		return sm.PolicyLRR, nil
	case "gto":
		return sm.PolicyGTO, nil
	case "baws":
		return sm.PolicyBAWS, nil
	case "two-level", "twolevel":
		return sm.PolicyTwoLevel, nil
	}
	return 0, fmt.Errorf("unknown warp policy %q (want %s)", s, WarpFlagHelp)
}

// ScaleFlagHelp documents ParseScale's accepted names.
const ScaleFlagHelp = "tiny | small | full"

// ParseScale parses a problem-scale name.
func ParseScale(s string) (workloads.Scale, error) {
	switch s {
	case "tiny", "test":
		return workloads.ScaleTest, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "full":
		return workloads.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want %s)", s, ScaleFlagHelp)
}

// ScaleName renders a scale for cache keys and reports.
func ScaleName(sc workloads.Scale) string {
	switch sc {
	case workloads.ScaleTest:
		return "tiny"
	case workloads.ScaleSmall:
		return "small"
	case workloads.ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("scale-%d", int(sc))
	}
}
