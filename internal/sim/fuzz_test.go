package sim_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gpusched/internal/sim"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

// FuzzRequestJSON fuzzes the wire form of Request for the property the
// result cache depends on: unmarshal(marshal(r)) has r's cache key, and a
// second marshal hop is a fixed point. This is the invariant the cachekey
// analyzer enforces statically; the fuzzer enforces it dynamically (it is
// what caught the wire form silently dropping NoFastForward).
func FuzzRequestJSON(f *testing.F) {
	f.Add("vadd", uint8(0), 0, 0, uint8(0), uint8(0), 0, 0, false, uint64(0), false, uint64(0))
	f.Add("spmv", uint8(4), 2, 0, uint8(2), uint8(1), 8, 16<<10, true, uint64(5000), true, uint64(0))
	f.Add("", uint8(5), -3, 9, uint8(3), uint8(2), -1, -7, false, uint64(1)<<40, true, uint64(12345))
	f.Add("dct8x8", uint8(9), 1, 60000, uint8(1), uint8(1), 0, 0, false, uint64(0), false, uint64(4096))
	f.Fuzz(func(t *testing.T, name string, kind uint8, arg, arg2 int, warp, scale uint8, cores, l1 int, fcfs bool, maxCycles uint64, noFF bool, arrival uint64) {
		// Clamp to the constructible domain: policy args and size overrides
		// are non-negative, enum fields take their declared values, and
		// workload names must survive json.Marshal's UTF-8 sanitization
		// unchanged (an invalid name is a Validate failure, not a wire bug).
		if arg < 0 {
			arg = 0
		}
		if arg2 < 0 {
			arg2 = 0
		}
		if cores < 0 {
			cores = 0
		}
		if l1 < 0 {
			l1 = 0
		}
		name = strings.ToValidUTF8(name, "")
		req := sim.Request{
			Workloads:     []string{name},
			Arrivals:      []uint64{arrival},
			Sched:         sim.SchedSpec{Kind: sim.SchedKind(kind % 10), Arg: arg, Arg2: arg2},
			Warp:          sm.Policy(warp % 4),
			Scale:         workloads.Scale(scale % 3),
			Cores:         cores,
			L1Bytes:       l1,
			DRAMSchedFCFS: fcfs,
			MaxCycles:     maxCycles,
			NoFastForward: noFF,
		}
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal %+v: %v", req, err)
		}
		var back sim.Request
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal own wire form %s: %v", data, err)
		}
		if back.Key() != req.Key() {
			t.Fatalf("JSON round trip changed the cache key\n  wire: %s\n  key:  %q\n  back: %q", data, req.Key(), back.Key())
		}
		data2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("wire form is not a fixed point: %s -> %s", data, data2)
		}
	})
}
