package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
)

// cacheVersion is the on-disk format/semantics version. Bump it whenever
// simulator behaviour changes in a result-visible way (timing model edits,
// new counters, workload generator changes): every stale entry then misses
// and is resimulated. Entries also self-invalidate when any request input
// changes, because the full Key() is part of the filename hash and is
// verified on load.
const cacheVersion = 1

// CacheEntry is the JSON envelope of one cached simulation. It is both
// the on-disk format and the wire form of the peer-cache protocol
// (GET /v1/cache/{addr} serves the raw entry bytes), so a fleet peer can
// fetch, verify, and re-store an entry without a translation step.
type CacheEntry struct {
	Version int     `json:"version"`
	Key     string  `json:"key"`
	Outcome Outcome `json:"outcome"`
}

// CacheAddr returns the content address of a canonical request key: the
// sha256 of the key, hex-encoded. It names the entry on disk and in the
// peer-cache URL space, so routers and shards can address results without
// shipping (or escaping) the raw key.
func CacheAddr(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// DecodeCacheEntry parses and verifies one cache-entry payload (disk file
// or peer response) against the key the caller wanted. A version mismatch
// or a key mismatch — a stale entry, or a peer serving a hash collision or
// garbage — is reported as a miss, never an error: cache layers are
// best-effort by contract.
//
//gpulint:cachekey CacheEntry
func DecodeCacheEntry(data []byte, key string) (Outcome, bool) {
	var e CacheEntry
	if json.Unmarshal(data, &e) != nil || e.Version != cacheVersion || e.Key != key {
		return Outcome{}, false
	}
	return e.Outcome, true
}

// EncodeCacheEntry renders the canonical entry payload for a key/outcome
// pair (the exact bytes store would write).
//
//gpulint:cachekey CacheEntry
func EncodeCacheEntry(key string, out Outcome) ([]byte, error) {
	return json.Marshal(CacheEntry{Version: cacheVersion, Key: key, Outcome: out})
}

// diskCache persists outcomes under dir as <sha256(key)>.json. All
// operations are best-effort: an unreadable or stale entry is a miss and a
// failed store is ignored (the memo still has the result). When an entry
// or byte budget is configured, store evicts oldest-mtime entries until
// the directory fits — a shared cache tier must not grow forever.
type diskCache struct {
	dir        string
	maxEntries int   // 0 = unbounded
	maxBytes   int64 // 0 = unbounded
}

func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, CacheAddr(key)+".json")
}

func (c *diskCache) load(key string) (Outcome, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return Outcome{}, false
	}
	return DecodeCacheEntry(data, key)
}

// loadAddr returns the raw entry bytes for a content address (the hex
// sha256 of a key). It backs the peer-cache endpoint: the caller serves
// the bytes verbatim and the fetching peer verifies them against its key.
func (c *diskCache) loadAddr(addr string) ([]byte, bool) {
	if !validCacheAddr(addr) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, addr+".json"))
	if err != nil {
		return nil, false
	}
	return data, true
}

// validCacheAddr reports whether addr is a well-formed content address
// (64 lowercase hex chars). It is the path-traversal guard for loadAddr:
// anything else never touches the filesystem.
func validCacheAddr(addr string) bool {
	if len(addr) != 64 {
		return false
	}
	for i := 0; i < len(addr); i++ {
		c := addr[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// store writes the entry and then enforces the configured budget,
// returning how many older entries it evicted to make room.
func (c *diskCache) store(key string, out Outcome) (evicted int) {
	if os.MkdirAll(c.dir, 0o755) != nil {
		return 0
	}
	data, err := EncodeCacheEntry(key, out)
	if err != nil {
		return 0
	}
	// Write-then-rename keeps concurrent readers from seeing torn files.
	tmp, err := os.CreateTemp(c.dir, "simcache-*.tmp")
	if err != nil {
		return 0
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0
	}
	if tmp.Close() != nil {
		os.Remove(tmp.Name())
		return 0
	}
	if os.Rename(tmp.Name(), c.path(key)) != nil {
		os.Remove(tmp.Name())
		return 0
	}
	return c.enforceBudget(CacheAddr(key) + ".json")
}

// enforceBudget deletes oldest-mtime entries until the directory fits the
// configured entry-count and byte budgets. justWrote names the entry the
// caller just stored; it is exempt so a store can never evict its own
// result (even under a budget smaller than one entry). The scan is a
// ReadDir per store — O(entries), fine at the tens-of-thousands scale a
// shard cache reaches, and only paid when a budget is configured.
func (c *diskCache) enforceBudget(justWrote string) int {
	if c.maxEntries <= 0 && c.maxBytes <= 0 {
		return 0
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	type entry struct {
		name  string
		size  int64
		mtime int64
	}
	var (
		files []entry
		total int64
	)
	for _, de := range ents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{de.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	// Oldest first; name breaks mtime ties so eviction order is stable on
	// coarse-resolution filesystems.
	sort.Slice(files, func(i, j int) bool {
		if files[i].mtime != files[j].mtime {
			return files[i].mtime < files[j].mtime
		}
		return files[i].name < files[j].name
	})
	evicted := 0
	count := len(files)
	for _, f := range files {
		over := (c.maxEntries > 0 && count > c.maxEntries) ||
			(c.maxBytes > 0 && total > c.maxBytes)
		if !over {
			break
		}
		if f.name == justWrote {
			continue
		}
		if os.Remove(filepath.Join(c.dir, f.name)) != nil {
			continue
		}
		count--
		total -= f.size
		evicted++
	}
	return evicted
}
