package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
)

// cacheVersion is the on-disk format/semantics version. Bump it whenever
// simulator behaviour changes in a result-visible way (timing model edits,
// new counters, workload generator changes): every stale entry then misses
// and is resimulated. Entries also self-invalidate when any request input
// changes, because the full Key() is part of the filename hash and is
// verified on load.
const cacheVersion = 1

// cacheEntry is the JSON envelope of one cached simulation.
type cacheEntry struct {
	Version int     `json:"version"`
	Key     string  `json:"key"`
	Outcome Outcome `json:"outcome"`
}

// diskCache persists outcomes under dir as <sha256(key)>.json. All
// operations are best-effort: an unreadable or stale entry is a miss and a
// failed store is ignored (the memo still has the result).
type diskCache struct {
	dir string
}

func (c *diskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

func (c *diskCache) load(key string) (Outcome, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return Outcome{}, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Version != cacheVersion || e.Key != key {
		return Outcome{}, false
	}
	return e.Outcome, true
}

func (c *diskCache) store(key string, out Outcome) {
	if os.MkdirAll(c.dir, 0o755) != nil {
		return
	}
	data, err := json.Marshal(cacheEntry{Version: cacheVersion, Key: key, Outcome: out})
	if err != nil {
		return
	}
	// Write-then-rename keeps concurrent readers from seeing torn files.
	tmp, err := os.CreateTemp(c.dir, "simcache-*.tmp")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if tmp.Close() != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), c.path(key)) != nil {
		os.Remove(tmp.Name())
	}
}
