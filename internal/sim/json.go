package sim

import (
	"encoding/json"
	"fmt"
)

// requestJSON is the wire form of Request used by the HTTP daemon and any
// other JSON client. Policies and scale travel as the same strings the CLI
// flags accept ("lcs", "bcs:4", "gto", "tiny"), so a curl payload reads
// like a gpusim invocation and round-trips through the one parser.
type requestJSON struct {
	Workloads     []string `json:"workloads"`
	Sched         string   `json:"sched,omitempty"`
	Warp          string   `json:"warp,omitempty"`
	Scale         string   `json:"scale,omitempty"`
	Cores         int      `json:"cores,omitempty"`
	L1Bytes       int      `json:"l1_bytes,omitempty"`
	DRAMSchedFCFS bool     `json:"dram_fcfs,omitempty"`
	MaxCycles     uint64   `json:"max_cycles,omitempty"`
	NoFastForward bool     `json:"no_fast_forward,omitempty"`
}

// MarshalJSON renders the request in its wire form. The sched, warp, and
// scale names are always emitted (never empty), so a marshaled request is
// self-describing even where the Go zero values applied.
//
//gpulint:cachekey Request
func (r Request) MarshalJSON() ([]byte, error) {
	return json.Marshal(requestJSON{
		Workloads:     r.Workloads,
		Sched:         r.Sched.String(),
		Warp:          r.Warp.String(),
		Scale:         ScaleName(r.Scale),
		Cores:         r.Cores,
		L1Bytes:       r.L1Bytes,
		DRAMSchedFCFS: r.DRAMSchedFCFS,
		MaxCycles:     r.MaxCycles,
		NoFastForward: r.NoFastForward,
	})
}

// UnmarshalJSON parses the wire form. Omitted or empty sched/warp/scale
// fields keep the Go zero values (baseline, lrr, tiny); anything present
// goes through the canonical parsers, so bad spellings fail loudly with
// the same messages the CLI flags produce. Unknown JSON fields are
// ignored, which lets callers decode envelope fields (timeouts, labels)
// from the same byte stream.
//
//gpulint:cachekey Request
func (r *Request) UnmarshalJSON(data []byte) error {
	var w requestJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("sim: bad request JSON: %w", err)
	}
	var out Request
	out.Workloads = w.Workloads
	if w.Sched != "" {
		s, err := ParseSched(w.Sched)
		if err != nil {
			return fmt.Errorf("sim: request sched: %w", err)
		}
		out.Sched = s
	}
	if w.Warp != "" {
		p, err := ParseWarpPolicy(w.Warp)
		if err != nil {
			return fmt.Errorf("sim: request warp: %w", err)
		}
		out.Warp = p
	}
	if w.Scale != "" {
		sc, err := ParseScale(w.Scale)
		if err != nil {
			return fmt.Errorf("sim: request scale: %w", err)
		}
		out.Scale = sc
	}
	if w.Cores < 0 {
		return fmt.Errorf("sim: request cores must be >= 0 (got %d)", w.Cores)
	}
	if w.L1Bytes < 0 {
		return fmt.Errorf("sim: request l1_bytes must be >= 0 (got %d)", w.L1Bytes)
	}
	out.Cores = w.Cores
	out.L1Bytes = w.L1Bytes
	out.DRAMSchedFCFS = w.DRAMSchedFCFS
	out.MaxCycles = w.MaxCycles
	out.NoFastForward = w.NoFastForward
	*r = out
	return nil
}
