package sim

import (
	"encoding/json"
	"fmt"
)

// requestJSON is the wire form of Request used by the HTTP daemon and any
// other JSON client. Policies and scale travel as the same strings the CLI
// flags accept ("lcs", "bcs:4", "gto", "tiny"), so a curl payload reads
// like a gpusim invocation and round-trips through the one parser.
type requestJSON struct {
	Workloads     []string `json:"workloads"`
	Arrivals      []uint64 `json:"arrivals,omitempty"`
	Sched         string   `json:"sched,omitempty"`
	Warp          string   `json:"warp,omitempty"`
	Scale         string   `json:"scale,omitempty"`
	Cores         int      `json:"cores,omitempty"`
	L1Bytes       int      `json:"l1_bytes,omitempty"`
	DRAMSchedFCFS bool     `json:"dram_fcfs,omitempty"`
	MaxCycles     uint64   `json:"max_cycles,omitempty"`
	NoFastForward bool     `json:"no_fast_forward,omitempty"`
	// PriorityKernel and DeadlineCycles are accepted on input as a
	// convenience spelling of the preemptive scheduler's parameters, for
	// clients that submit priority/deadline jobs without assembling the
	// "preemptive:P:D" string themselves. They fold into Sched on
	// unmarshal and are never emitted: the canonical sched string is the
	// one wire form (and the one cache-key rendering).
	PriorityKernel *int `json:"priority_kernel,omitempty"`
	DeadlineCycles *int `json:"deadline_cycles,omitempty"`
}

// normalizeArrivals maps all-zero arrival lists to nil so that the
// semantically-equal spellings (no arrivals vs. explicit zeros) share one
// wire form and one cache key, matching Request.Key's treatment.
func normalizeArrivals(arr []uint64) []uint64 {
	for _, a := range arr {
		if a != 0 {
			return arr
		}
	}
	return nil
}

// MarshalJSON renders the request in its wire form. The sched, warp, and
// scale names are always emitted (never empty), so a marshaled request is
// self-describing even where the Go zero values applied.
//
//gpulint:cachekey Request
func (r Request) MarshalJSON() ([]byte, error) {
	return json.Marshal(requestJSON{
		Workloads:     r.Workloads,
		Arrivals:      normalizeArrivals(r.Arrivals),
		Sched:         r.Sched.String(),
		Warp:          r.Warp.String(),
		Scale:         ScaleName(r.Scale),
		Cores:         r.Cores,
		L1Bytes:       r.L1Bytes,
		DRAMSchedFCFS: r.DRAMSchedFCFS,
		MaxCycles:     r.MaxCycles,
		NoFastForward: r.NoFastForward,
	})
}

// UnmarshalJSON parses the wire form. Omitted or empty sched/warp/scale
// fields keep the Go zero values (baseline, lrr, tiny); anything present
// goes through the canonical parsers, so bad spellings fail loudly with
// the same messages the CLI flags produce. Unknown JSON fields are
// ignored, which lets callers decode envelope fields (timeouts, labels)
// from the same byte stream.
//
//gpulint:cachekey Request
func (r *Request) UnmarshalJSON(data []byte) error {
	var w requestJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("sim: bad request JSON: %w", err)
	}
	var out Request
	out.Workloads = w.Workloads
	out.Arrivals = normalizeArrivals(w.Arrivals)
	if w.Sched != "" {
		s, err := ParseSched(w.Sched)
		if err != nil {
			return fmt.Errorf("sim: request sched: %w", err)
		}
		out.Sched = s
	}
	if w.Warp != "" {
		p, err := ParseWarpPolicy(w.Warp)
		if err != nil {
			return fmt.Errorf("sim: request warp: %w", err)
		}
		out.Warp = p
	}
	if w.Scale != "" {
		sc, err := ParseScale(w.Scale)
		if err != nil {
			return fmt.Errorf("sim: request scale: %w", err)
		}
		out.Scale = sc
	}
	if w.PriorityKernel != nil || w.DeadlineCycles != nil {
		if out.Sched.Kind != SchedPreemptive {
			return fmt.Errorf("sim: priority_kernel/deadline_cycles require \"sched\": \"preemptive\" (got %q)", out.Sched.String())
		}
		if w.PriorityKernel != nil {
			if *w.PriorityKernel < 1 {
				return fmt.Errorf("sim: priority_kernel must be >= 1 (got %d; kernel 0 already has launch-order priority)", *w.PriorityKernel)
			}
			out.Sched.Arg = *w.PriorityKernel
		}
		if w.DeadlineCycles != nil {
			if *w.DeadlineCycles < 0 {
				return fmt.Errorf("sim: deadline_cycles must be >= 0 (got %d)", *w.DeadlineCycles)
			}
			out.Sched.Arg2 = *w.DeadlineCycles
		}
	}
	if w.Cores < 0 {
		return fmt.Errorf("sim: request cores must be >= 0 (got %d)", w.Cores)
	}
	if w.L1Bytes < 0 {
		return fmt.Errorf("sim: request l1_bytes must be >= 0 (got %d)", w.L1Bytes)
	}
	out.Cores = w.Cores
	out.L1Bytes = w.L1Bytes
	out.DRAMSchedFCFS = w.DRAMSchedFCFS
	out.MaxCycles = w.MaxCycles
	out.NoFastForward = w.NoFastForward
	*r = out
	return nil
}
