package sim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"gpusched/internal/gpu"
)

// Options configures a Service.
type Options struct {
	// Workers bounds concurrent simulations (0 = NumCPU).
	Workers int
	// TickWorkers is the per-simulation worker count for the GPU's
	// two-phase parallel tick (gpu.Config.Workers): 0 derives it from
	// GOMAXPROCS, 1 forces the serial reference path. It is an execution
	// knob only — results are byte-identical for every value — so it is
	// deliberately NOT part of Request.Key: cached outcomes stay valid
	// across worker-count changes.
	TickWorkers int
	// TickGranule is the per-SM parking threshold for the activity-set tick
	// (gpu.Config.Granule): 0 derives it from gpu.DefaultGranule. Like
	// TickWorkers it is an execution knob only — results are byte-identical
	// for every value — so it is deliberately NOT part of Request.Key.
	TickGranule uint64
	// MemShards is the memory system's phase-A2 shard count
	// (gpu.Config.MemShards): 0 derives it from the tick workers, 1 forces
	// the serial memory tick. Execution-only, like TickWorkers — never part
	// of Request.Key.
	MemShards int
	// BatchWindow caps the quiet-window cycle batch (gpu.Config.BatchWindow):
	// 0 derives gpu.DefaultBatchWindow, 1 disables batching. Execution-only,
	// like TickWorkers — never part of Request.Key.
	BatchWindow uint64
	// CacheDir, when non-empty, enables the on-disk result cache
	// (conventionally results/.simcache).
	CacheDir string
	// CacheEntries / CacheBytes bound the on-disk cache (0 = unbounded).
	// When a store pushes the directory over either budget, oldest-mtime
	// entries are evicted (counted in Stats.DiskEvictions) — a shared
	// cache tier must not grow forever.
	CacheEntries int
	CacheBytes   int64
	// PeerFetch, when non-nil, is consulted after a local disk miss and
	// before simulating: a fleet shard points it at its peers' cache
	// endpoints so a result that moved shards (ring change, failover) is
	// fetched once instead of resimulated. A fetched outcome is stored in
	// the local disk cache, migrating the entry to its new owner. The hook
	// must be best-effort: return ok=false on any doubt.
	PeerFetch func(ctx context.Context, key string) (Outcome, bool)
	// Progress, when non-nil, receives one line per completed simulation.
	// Writes are serialized by the Service, so the writer itself need not
	// be goroutine-safe and lines never interleave.
	Progress io.Writer
	// MaxFlights bounds the in-memory memo of completed outcomes
	// (0 = unbounded, the right choice for one-shot CLIs). When the memo
	// would exceed the cap, the oldest completed flights are evicted;
	// in-progress flights are never evicted, so singleflight deduplication
	// is unaffected. A configured disk cache still backstops re-runs of
	// evicted results. Long-lived daemons should set this.
	MaxFlights int
}

// Stats counts how a Service satisfied its requests.
type Stats struct {
	// Simulated counts actual simulator executions.
	Simulated int
	// MemoHits counts requests satisfied by (or coalesced into) an
	// earlier request with the same key.
	MemoHits int
	// DiskHits counts requests satisfied by the on-disk cache.
	DiskHits int
	// PeerHits counts requests satisfied by a fleet peer's cache via the
	// Options.PeerFetch hook (fetch-before-simulate).
	PeerHits int
	// DiskEvictions counts on-disk cache entries evicted by the
	// CacheEntries/CacheBytes budgets.
	DiskEvictions int
	// Evicted counts completed flights dropped from the memo by the
	// MaxFlights cap.
	Evicted int
	// WallSeconds is the cumulative wall-clock time spent inside the cycle
	// loop, and SimCycles the simulated cycles it produced. Their ratio is
	// the service's observed simulation throughput (cycles per second) —
	// the headline number the fast-forward work moves.
	WallSeconds float64
	SimCycles   uint64
}

// Service runs simulation requests. Identical requests are deduplicated via
// singleflight — N concurrent submissions of one key simulate once and
// share the outcome — and completed outcomes are memoized for the life of
// the Service (and on disk when a cache directory is configured).
type Service struct {
	opt   Options
	sem   chan struct{}
	cache *diskCache

	mu sync.Mutex
	//gpulint:guardedby mu
	flights map[string]*flight
	// done holds completed flight keys in completion order; it is the
	// eviction queue consulted when MaxFlights caps the memo.
	//gpulint:guardedby mu
	done []string
	//gpulint:guardedby mu
	stats Stats

	// progressMu serializes Options.Progress writes: simulations complete
	// on many worker goroutines at once.
	progressMu sync.Mutex
}

// flight is one in-progress or completed simulation.
type flight struct {
	ready chan struct{} // closed when out/err are final
	out   Outcome
	err   error
}

// NewService builds a Service.
func NewService(opt Options) *Service {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	s := &Service{
		opt:     opt,
		sem:     make(chan struct{}, workers),
		flights: make(map[string]*flight),
	}
	if opt.CacheDir != "" {
		s.cache = &diskCache{dir: opt.CacheDir, maxEntries: opt.CacheEntries, maxBytes: opt.CacheBytes}
	}
	return s
}

// CacheEntryBytes returns the raw on-disk cache entry for a content
// address (the hex sha256 of a canonical key, see CacheAddr), or false
// when no cache is configured, the address is malformed, or the entry is
// absent. It backs the peer-cache endpoint: the bytes are served verbatim
// and the fetching peer verifies them against its own key.
func (s *Service) CacheEntryBytes(addr string) ([]byte, bool) {
	if s.cache == nil {
		return nil, false
	}
	return s.cache.loadAddr(addr)
}

// Run executes (or recalls) one simulation. Errors are per-request: an
// unknown workload, a kernel that does not fit the machine, a timed-out
// run, or a canceled context fail this request without poisoning the
// Service. Cancellation errors are not memoized, so a later identical
// request runs afresh.
func (s *Service) Run(ctx context.Context, req Request) (Outcome, error) {
	key := req.Key()
	s.mu.Lock()
	f, hit := s.flights[key]
	if hit {
		s.stats.MemoHits++
	} else {
		f = &flight{ready: make(chan struct{})}
		s.flights[key] = f
	}
	s.mu.Unlock()
	if hit {
		select {
		case <-f.ready:
			return f.out, f.err
		case <-ctx.Done():
			return Outcome{}, ctx.Err()
		}
	}

	f.out, f.err = s.simulate(ctx, req, key)
	s.mu.Lock()
	if f.err != nil && (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
		delete(s.flights, key)
	} else {
		s.done = append(s.done, key)
		s.evictLocked()
	}
	s.mu.Unlock()
	close(f.ready)
	return f.out, f.err
}

// evictLocked enforces Options.MaxFlights by dropping the oldest completed
// flights. In-progress flights are never in the done queue, so they are
// never evicted. Callers hold s.mu.
func (s *Service) evictLocked() {
	max := s.opt.MaxFlights
	if max <= 0 {
		return
	}
	for len(s.flights) > max && len(s.done) > 0 {
		key := s.done[0]
		s.done = s.done[1:]
		if _, ok := s.flights[key]; ok {
			delete(s.flights, key)
			s.stats.Evicted++
		}
	}
}

// RunAll submits every request concurrently (the worker pool bounds actual
// simulations), waits for completion, and returns every failure joined via
// errors.Join — a report over N requests names all the broken ones, not
// just the first. Use it to warm the memo before assembling a report.
func (s *Service) RunAll(ctx context.Context, reqs []Request) error {
	var wg sync.WaitGroup
	errs := make([]error, len(reqs)) // one slot per request: no lock needed
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			_, errs[i] = s.Run(ctx, req)
		}(i, req)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// TickWorkers returns the effective per-simulation worker count the
// Service runs with (the configured knob, GOMAXPROCS-resolved; individual
// simulations may clamp further to their SM count).
func (s *Service) TickWorkers() int { return gpu.ResolveWorkers(s.opt.TickWorkers) }

// Stats returns a snapshot of the request counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// simulate is the cache-miss path: disk lookup, then a bounded simulator
// execution.
func (s *Service) simulate(ctx context.Context, req Request, key string) (Outcome, error) {
	if err := req.Validate(); err != nil {
		return Outcome{}, err
	}
	specs, err := req.kernels()
	if err != nil {
		return Outcome{}, err
	}
	if s.cache != nil {
		if out, ok := s.cache.load(key); ok {
			s.mu.Lock()
			s.stats.DiskHits++
			s.mu.Unlock()
			return out, nil
		}
	}
	// Local miss: ask the fleet peers before paying for a simulation. The
	// fetched entry is stored locally so the key's new owner serves the
	// next request from its own disk.
	if s.opt.PeerFetch != nil {
		if out, ok := s.opt.PeerFetch(ctx, key); ok {
			s.mu.Lock()
			s.stats.PeerHits++
			s.mu.Unlock()
			if s.cache != nil {
				s.recordEvictions(s.cache.store(key, out))
			}
			return out, nil
		}
	}

	// Bound concurrent simulations; give up the wait on cancellation.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	}

	d := req.Sched.NewDispatcher()
	cfg := req.config()
	// Execution-only knob: applied after the key-covered config is built,
	// so it can never leak into cache identity.
	cfg.Workers = s.opt.TickWorkers
	cfg.Granule = s.opt.TickGranule
	cfg.MemShards = s.opt.MemShards
	cfg.BatchWindow = s.opt.BatchWindow
	g, err := gpu.New(cfg, d, specs...)
	if err != nil {
		return Outcome{}, fmt.Errorf("sim: %s: %w", key, err)
	}
	start := time.Now()
	raw, err := g.RunContext(ctx)
	elapsed := time.Since(start)
	s.mu.Lock()
	s.stats.WallSeconds += elapsed.Seconds()
	s.stats.SimCycles += raw.Cycles
	s.mu.Unlock()
	if err != nil {
		return Outcome{}, fmt.Errorf("sim: %s: %w", key, err)
	}
	s.mu.Lock()
	s.stats.Simulated++
	s.mu.Unlock()
	if raw.TimedOut {
		return Outcome{}, fmt.Errorf("sim: %s timed out after %d cycles", key, raw.Cycles)
	}
	out := Outcome{Result: raw}
	if limits, ok := req.Sched.Limits(d); ok {
		out.Limits = append([]int(nil), limits...)
	}
	if s.opt.Progress != nil {
		s.progressMu.Lock()
		fmt.Fprintf(s.opt.Progress, "ran %-40s %10d cycles\n", key, raw.Cycles)
		s.progressMu.Unlock()
	}
	if s.cache != nil {
		s.recordEvictions(s.cache.store(key, out))
	}
	return out, nil
}

// recordEvictions folds a store's eviction count into the stats.
func (s *Service) recordEvictions(n int) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	s.stats.DiskEvictions += n
	s.mu.Unlock()
}
