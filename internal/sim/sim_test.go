package sim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gpusched/internal/sim"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

func tinyRequest(name string, sched sim.SchedSpec) sim.Request {
	return sim.Request{
		Workloads: []string{name},
		Sched:     sched,
		Warp:      sm.PolicyGTO,
		Scale:     workloads.ScaleTest,
		Cores:     4,
	}
}

func TestParseSched(t *testing.T) {
	ok := []struct {
		in         string
		name       string // display name
		dispatcher string // internal dispatcher Name()
	}{
		{"baseline", "baseline", "rr"},
		{"base", "baseline", "rr"},
		{"rr", "baseline", "rr"},
		{"lcs", "lcs", "lcs"},
		{"adaptive", "lcs-adaptive", "lcs-adaptive"},
		{"lcs-adaptive", "lcs-adaptive", "lcs-adaptive"},
		{"dyncta", "dyncta", "dyncta"},
		{"bcs", "bcs", "bcs"},
		{"bcs:4", "bcs", "bcs"},
		{"static:3", "static-3", "limited"},
		{"sequential", "sequential", "sequential"},
		{"seq", "sequential", "sequential"},
		{"spatial", "spatial", "spatial"},
		{"spatial:8", "spatial", "spatial"},
		{"mixed:2", "mixed", "mixed"},
		{"preemptive", "preemptive", "preemptive"},
		{"preempt", "preemptive", "preemptive"},
		{"preemptive:2", "preemptive", "preemptive"},
		{"preemptive:1:60000", "preemptive", "preemptive"},
	}
	for _, c := range ok {
		s, err := sim.ParseSched(c.in)
		if err != nil {
			t.Errorf("ParseSched(%q): %v", c.in, err)
			continue
		}
		if got := s.Name(); got != c.name {
			t.Errorf("ParseSched(%q).Name() = %q, want %q", c.in, got, c.name)
		}
		if got := s.NewDispatcher().Name(); got != c.dispatcher {
			t.Errorf("ParseSched(%q) dispatcher = %q, want %q", c.in, got, c.dispatcher)
		}
	}
	for _, bad := range []string{
		"", "nope", "static", "static:x", "static:-1", "bcs:y", "lcs:3",
		"preemptive:x", "preemptive:1:y", "preemptive:1:-5", "bcs:2:3", "lcs:1:2",
	} {
		if _, err := sim.ParseSched(bad); err == nil {
			t.Errorf("ParseSched(%q) accepted", bad)
		}
	}
}

// TestSchedStringRoundTrips pins the cache-key rendering: parsing a spec's
// String() must yield an equivalent spec, and defaults must normalize
// (bcs == bcs:2 — same key, same simulation).
func TestSchedStringRoundTrips(t *testing.T) {
	specs := []sim.SchedSpec{
		sim.Baseline(), sim.LCS(), sim.AdaptiveLCS(), sim.DynCTA(),
		sim.BCS(0), sim.BCS(4), sim.Static(3), sim.Sequential(),
		sim.Spatial(0), sim.Mixed(2),
		sim.Preemptive(1, 0), sim.Preemptive(2, 0), sim.Preemptive(1, 60000),
	}
	for _, s := range specs {
		back, err := sim.ParseSched(s.String())
		if err != nil {
			t.Errorf("ParseSched(%q): %v", s.String(), err)
			continue
		}
		if back.String() != s.String() {
			t.Errorf("round trip %q -> %q", s.String(), back.String())
		}
	}
	if sim.BCS(0).String() != sim.BCS(2).String() {
		t.Errorf("BCS default width not normalized: %q vs %q", sim.BCS(0).String(), sim.BCS(2).String())
	}
}

func TestParseWarpPolicy(t *testing.T) {
	ok := map[string]sm.Policy{
		"lrr": sm.PolicyLRR, "gto": sm.PolicyGTO, "baws": sm.PolicyBAWS,
		"two-level": sm.PolicyTwoLevel, "twolevel": sm.PolicyTwoLevel,
	}
	for in, want := range ok {
		got, err := sim.ParseWarpPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseWarpPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := sim.ParseWarpPolicy("nope"); err == nil {
		t.Error("ParseWarpPolicy accepted junk")
	}
}

func TestParseScale(t *testing.T) {
	ok := map[string]workloads.Scale{
		"tiny": workloads.ScaleTest, "test": workloads.ScaleTest,
		"small": workloads.ScaleSmall, "full": workloads.ScaleFull,
	}
	for in, want := range ok {
		got, err := sim.ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", in, got, err, want)
		}
		if in != "test" && sim.ScaleName(want) != in {
			t.Errorf("ScaleName(%v) = %q, want %q", want, sim.ScaleName(want), in)
		}
	}
	if _, err := sim.ParseScale("nope"); err == nil {
		t.Error("ParseScale accepted junk")
	}
}

// TestRequestKeyDistinguishesInputs: every field of a Request must be
// visible in its Key, or two different simulations would share a cache slot.
func TestRequestKeyDistinguishesInputs(t *testing.T) {
	base := tinyRequest("vadd", sim.Baseline())
	variants := []sim.Request{
		tinyRequest("spmv", sim.Baseline()),
		tinyRequest("vadd", sim.LCS()),
		tinyRequest("vadd", sim.Static(3)),
		{Workloads: []string{"vadd", "spmv"}, Sched: sim.Baseline(), Warp: sm.PolicyGTO, Scale: workloads.ScaleTest, Cores: 4},
	}
	mutate := []func(*sim.Request){
		func(r *sim.Request) { r.Warp = sm.PolicyLRR },
		func(r *sim.Request) { r.Scale = workloads.ScaleSmall },
		func(r *sim.Request) { r.Cores = 8 },
		func(r *sim.Request) { r.L1Bytes = 16 * 1024 },
		func(r *sim.Request) { r.DRAMSchedFCFS = true },
		func(r *sim.Request) { r.MaxCycles = 1000 },
	}
	for _, fn := range mutate {
		r := base
		fn(&r)
		variants = append(variants, r)
	}
	seen := map[string]bool{base.Key(): true}
	for _, v := range variants {
		k := v.Key()
		if seen[k] {
			t.Errorf("key collision: %q", k)
		}
		seen[k] = true
	}
	if base.Key() != tinyRequest("vadd", sim.Baseline()).Key() {
		t.Error("identical requests produced different keys")
	}
}

// TestSingleflightSimulatesOnce is the regression test for the
// check-then-act race the old harness memo had: N concurrent submissions of
// one request must run the simulator exactly once and all observe the same
// outcome.
func TestSingleflightSimulatesOnce(t *testing.T) {
	svc := sim.NewService(sim.Options{})
	req := tinyRequest("vadd", sim.Baseline())
	const n = 16
	var wg sync.WaitGroup
	outs := make([]sim.Outcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = svc.Run(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if outs[i].Result.Cycles != outs[0].Result.Cycles {
			t.Fatalf("run %d saw %d cycles, run 0 saw %d", i, outs[i].Result.Cycles, outs[0].Result.Cycles)
		}
	}
	st := svc.Stats()
	if st.Simulated != 1 {
		t.Fatalf("Simulated = %d, want 1", st.Simulated)
	}
	if st.MemoHits != n-1 {
		t.Fatalf("MemoHits = %d, want %d", st.MemoHits, n-1)
	}
}

func TestRunErrors(t *testing.T) {
	svc := sim.NewService(sim.Options{})
	ctx := context.Background()
	if _, err := svc.Run(ctx, tinyRequest("no-such-workload", sim.Baseline())); err == nil {
		t.Error("unknown workload did not error")
	} else if !strings.Contains(err.Error(), "no-such-workload") {
		t.Errorf("error %v does not name the workload", err)
	}
	if _, err := svc.Run(ctx, sim.Request{Sched: sim.Baseline()}); err == nil {
		t.Error("empty request did not error")
	}
	// A kernel that cannot fit the machine is a build error, not a panic.
	bad := tinyRequest("vadd", sim.Baseline())
	bad.Cores = 1000
	if _, err := svc.Run(ctx, bad); err == nil {
		t.Error("oversized core count did not error")
	}
	// A hopeless cycle bound surfaces as a timeout error.
	slow := tinyRequest("spmv", sim.Baseline())
	slow.MaxCycles = 100
	if _, err := svc.Run(ctx, slow); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("starved run returned %v, want timeout error", err)
	}
	if st := svc.Stats(); st.Simulated != 1 {
		t.Errorf("Simulated = %d, want 1 (only the timed-out run executed)", st.Simulated)
	}
}

// TestCancellationStopsMidFlight: canceling the context stops a running
// simulation within the poll interval and surfaces context.Canceled. The
// canceled flight must not be memoized.
func TestCancellationStopsMidFlight(t *testing.T) {
	svc := sim.NewService(sim.Options{})
	// A full-scale run takes far longer than the cancellation delay.
	req := sim.Request{
		Workloads: []string{"sgemm"},
		Sched:     sim.Baseline(),
		Warp:      sm.PolicyGTO,
		Scale:     workloads.ScaleFull,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := svc.Run(ctx, req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if st := svc.Stats(); st.Simulated != 0 {
		t.Fatalf("canceled run counted as simulated (%d)", st.Simulated)
	}
	// Pre-canceled contexts fail fast without touching the simulator.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := svc.Run(ctx2, tinyRequest("vadd", sim.Baseline())); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Run returned %v", err)
	}
}

// TestDiskCacheRoundTrip: a second Service pointed at the same directory
// satisfies the request from disk without simulating.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	req := tinyRequest("vadd", sim.LCS())
	ctx := context.Background()

	first := sim.NewService(sim.Options{CacheDir: dir})
	a, err := first.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st := first.Stats(); st.Simulated != 1 || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}

	second := sim.NewService(sim.Options{CacheDir: dir})
	b, err := second.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st := second.Stats(); st.Simulated != 0 || st.DiskHits != 1 {
		t.Fatalf("warm stats = %+v", st)
	}
	if a.Result.Cycles != b.Result.Cycles || a.Result.InstrIssued != b.Result.InstrIssued {
		t.Fatalf("disk outcome differs: %d/%d vs %d/%d cycles/instr",
			a.Result.Cycles, a.Result.InstrIssued, b.Result.Cycles, b.Result.InstrIssued)
	}
	// LCS limit decisions survive the round trip too.
	if len(a.Limits) == 0 || len(b.Limits) != len(a.Limits) {
		t.Fatalf("limits lost in cache: %v vs %v", a.Limits, b.Limits)
	}
}

// TestRunAllJoinsAllErrors: RunAll must surface every failure, not just
// the first — paperbench reports each broken experiment by name.
func TestRunAllJoinsAllErrors(t *testing.T) {
	svc := sim.NewService(sim.Options{})
	reqs := []sim.Request{
		tinyRequest("vadd", sim.Baseline()),
		tinyRequest("no-such-workload", sim.Baseline()),
		tinyRequest("also-missing", sim.Baseline()),
	}
	err := svc.RunAll(context.Background(), reqs)
	if err == nil {
		t.Fatal("RunAll swallowed the errors")
	}
	for _, want := range []string{"no-such-workload", "also-missing"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q does not name %q", err, want)
		}
	}
	// The join must list failures in request order, not goroutine-completion
	// order: paperbench output (and anything diffing it) sees this string.
	if strings.Index(err.Error(), "no-such-workload") > strings.Index(err.Error(), "also-missing") {
		t.Errorf("joined error is not in request order: %q", err)
	}
	if err := svc.RunAll(context.Background(), []sim.Request{tinyRequest("vadd", sim.Baseline())}); err != nil {
		t.Errorf("all-good RunAll returned %v", err)
	}
}

// TestProgressWritesSerialized: concurrent simulations share one Progress
// writer; the Service must serialize writes (a bytes.Buffer is not
// goroutine-safe — the race detector enforces this) and keep lines whole.
func TestProgressWritesSerialized(t *testing.T) {
	var buf bytes.Buffer
	svc := sim.NewService(sim.Options{Progress: &buf})
	names := []string{"vadd", "spmv", "stencil", "reduce"}
	var reqs []sim.Request
	for _, n := range names {
		reqs = append(reqs, tinyRequest(n, sim.Baseline()))
	}
	if err := svc.RunAll(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(names) {
		t.Fatalf("got %d progress lines, want %d:\n%s", len(lines), len(names), buf.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "ran ") || !strings.HasSuffix(l, "cycles") {
			t.Errorf("interleaved or malformed progress line %q", l)
		}
	}
}

// TestFlightEviction: with MaxFlights set, completed flights are evicted
// oldest-first, counted in Stats, and a re-run of an evicted request
// simulates afresh (no disk cache here to backstop).
func TestFlightEviction(t *testing.T) {
	svc := sim.NewService(sim.Options{MaxFlights: 1})
	ctx := context.Background()
	a := tinyRequest("vadd", sim.Baseline())
	b := tinyRequest("spmv", sim.Baseline())
	for _, r := range []sim.Request{a, b} {
		if _, err := svc.Run(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.Stats(); st.Evicted != 1 {
		t.Fatalf("after 2 runs at cap 1: Evicted = %d, want 1", st.Evicted)
	}
	// a was evicted: running it again is a fresh simulation, not a memo hit.
	if _, err := svc.Run(ctx, a); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Simulated != 3 || st.MemoHits != 0 {
		t.Fatalf("stats after re-run = %+v, want 3 simulated, 0 memo hits", st)
	}
	// b is now the evicted one; the still-memoized a re-run memo-hits.
	if _, err := svc.Run(ctx, a); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.MemoHits != 1 {
		t.Fatalf("memoized re-run stats = %+v, want 1 memo hit", st)
	}
}

// TestFlightEvictionDiskBackstop: an evicted flight whose outcome reached
// the disk cache is recalled from disk, not resimulated.
func TestFlightEvictionDiskBackstop(t *testing.T) {
	svc := sim.NewService(sim.Options{MaxFlights: 1, CacheDir: t.TempDir()})
	ctx := context.Background()
	a := tinyRequest("vadd", sim.Baseline())
	b := tinyRequest("spmv", sim.Baseline())
	for _, r := range []sim.Request{a, b, a} {
		if _, err := svc.Run(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Simulated != 2 || st.DiskHits != 1 || st.Evicted < 1 {
		t.Fatalf("stats = %+v, want 2 simulated, 1 disk hit, >=1 evicted", st)
	}
}

// TestRequestJSONRoundTrip: the wire form must preserve request identity —
// unmarshal(marshal(r)) has r's cache key — and reject bad spellings.
func TestRequestJSONRoundTrip(t *testing.T) {
	reqs := []sim.Request{
		{},
		tinyRequest("vadd", sim.Baseline()),
		tinyRequest("spmv", sim.BCS(4)),
		{
			Workloads: []string{"stencil", "vadd"}, Sched: sim.Static(3),
			Warp: sm.PolicyBAWS, Scale: workloads.ScaleSmall,
			Cores: 8, L1Bytes: 16 << 10, DRAMSchedFCFS: true, MaxCycles: 5000,
		},
		// Regression: the wire form once dropped NoFastForward, silently
		// aliasing the reference-loop variant onto the fast-forward cache.
		{Workloads: []string{"vadd"}, NoFastForward: true},
		{
			Workloads: []string{"spmv", "dct8x8"}, Arrivals: []uint64{0, 40000},
			Sched: sim.Preemptive(1, 120000), Scale: workloads.ScaleSmall, Cores: 4,
		},
		// All-zero arrivals are the zero value: same key, same wire form.
		{Workloads: []string{"vadd"}, Arrivals: []uint64{0}},
	}
	for _, r := range reqs {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal %+v: %v", r, err)
		}
		var back sim.Request
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.Key() != r.Key() {
			t.Errorf("round trip changed key: %q -> %q (wire %s)", r.Key(), back.Key(), data)
		}
	}
	// Omitted fields keep zero-value defaults; the canonical parsers gate
	// bad spellings; envelope fields are ignored.
	var min sim.Request
	if err := json.Unmarshal([]byte(`{"workloads":["vadd"],"timeout_ms":5}`), &min); err != nil {
		t.Fatal(err)
	}
	if min.Key() != (sim.Request{Workloads: []string{"vadd"}}).Key() {
		t.Errorf("minimal request key = %q", min.Key())
	}
	for _, bad := range []string{
		`{"workloads":["vadd"],"sched":"nope"}`,
		`{"workloads":["vadd"],"warp":"nope"}`,
		`{"workloads":["vadd"],"scale":"nope"}`,
		`{"workloads":["vadd"],"cores":-1}`,
		`{"workloads":"vadd"}`,
	} {
		var r sim.Request
		if err := json.Unmarshal([]byte(bad), &r); err == nil {
			t.Errorf("unmarshal accepted %s", bad)
		}
	}
}

// TestRequestJSONPreemptiveConvenience covers the priority_kernel /
// deadline_cycles spelling: it folds into the preemptive sched spec, and is
// rejected for any other scheduler.
func TestRequestJSONPreemptiveConvenience(t *testing.T) {
	var r sim.Request
	in := `{"workloads":["spmv","dct8x8"],"sched":"preemptive","priority_kernel":1,"deadline_cycles":90000,"arrivals":[0,40000]}`
	if err := json.Unmarshal([]byte(in), &r); err != nil {
		t.Fatal(err)
	}
	if want := sim.Preemptive(1, 90000); r.Sched.String() != want.String() {
		t.Errorf("folded sched = %q, want %q", r.Sched.String(), want.String())
	}
	if len(r.Arrivals) != 2 || r.Arrivals[1] != 40000 {
		t.Errorf("arrivals = %v", r.Arrivals)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("valid preemptive request rejected: %v", err)
	}
	for _, bad := range []string{
		`{"workloads":["vadd"],"priority_kernel":1}`,                       // needs preemptive sched
		`{"workloads":["vadd"],"sched":"lcs","deadline_cycles":5}`,         // wrong scheduler
		`{"workloads":["vadd"],"sched":"preemptive","priority_kernel":0}`,  // kernel 0 is already first
		`{"workloads":["vadd"],"sched":"preemptive","deadline_cycles":-1}`, // negative deadline
	} {
		var r sim.Request
		if err := json.Unmarshal([]byte(bad), &r); err == nil {
			t.Errorf("unmarshal accepted %s", bad)
		}
	}
	// Decreasing arrivals parse but fail validation.
	var dec sim.Request
	if err := json.Unmarshal([]byte(`{"workloads":["spmv","vadd"],"arrivals":[500,100]}`), &dec); err != nil {
		t.Fatal(err)
	}
	if err := dec.Validate(); err == nil {
		t.Error("decreasing arrivals passed Validate")
	}
}
