package sm

import (
	"fmt"

	"gpusched/internal/isa"
	"gpusched/internal/kernel"
	"gpusched/internal/mem"
	"gpusched/internal/stats"
)

// SM is one streaming multiprocessor. The GPU front-end places CTAs on it
// (subject to the resource limits it enforces), ticks it once per cycle, and
// receives CTA-completion callbacks that drive the CTA scheduling policies.
type SM struct {
	id     int
	cfg    *Config
	memCfg *mem.Config

	l1   *mem.L1
	ldst *ldstUnit
	sys  *mem.System

	schedulers []scheduler
	ctas       []*CTA
	usage      kernel.Usage
	warpSeq    uint64
	// ctaPool recycles retired CTA contexts (the CTA, its warps slice, and
	// the Warp objects) so steady-state placement allocates nothing. Entries
	// are pushed by Recycle — or by the LDST unit once a recycle-armed CTA's
	// trailing memory work drains — and popped by AddCTA. Core-private, like
	// everything else on the SM.
	ctaPool []*CTA
	// residentByKernel counts resident CTAs per kernel index, so the CTA
	// dispatchers' per-cycle ResidentOf probes stop scanning ctas.
	residentByKernel []int

	// onCTADone is invoked when a resident CTA retires.
	onCTADone func(coreID int, cta *CTA)
	// onWake, when set, is notified whenever an external event (a CTA
	// placement) makes a possibly-parked core runnable at a cycle. Setting it
	// also arms lazy counter accrual: the core may then be left unticked
	// across provably-quiet windows, with Tick/SyncTo replaying the skipped
	// cycles' counters through FastForward ("granule replay").
	onWake func(coreID int, at uint64)
	// syncedTo is the next cycle whose counters have not been accrued —
	// Stats reflects exactly the cycles in [0, syncedTo). Active cores keep
	// it at now+1 after every Tick; parked cores fall behind and catch up in
	// one FastForward when something next looks at them.
	syncedTo uint64
	// onCTADrained is invoked when a draining CTA is evicted — the
	// preemption counterpart of onCTADone, reported distinctly because the
	// CTA did not finish and must be re-dispatched.
	onCTADrained func(coreID int, cta *CTA)
	// draining counts resident CTAs in CTADraining. While nonzero, NextEvent
	// pins the event horizon to now: eviction is checked every Tick, so
	// fast-forward must not skip across a drain window.
	draining int

	// Stats accumulates the core counters; KernelIssued buckets issued
	// instructions by kernel index (sized by the GPU at construction).
	// The listed counters advance once per skipped-or-ticked cycle and are
	// replayed lazily through FastForward when the core is parked, so a
	// serial-phase reader must sync the core to the current cycle first
	// (gpulint wakesync polices this). The issue/retirement counters
	// (InstrIssued, ThreadInstr, CTAsCompleted, ...) are exact at all
	// times: a parked core provably cannot issue or retire.
	//
	//gpulint:lazy ActiveCycles,IssueStallCycles,StallScoreboard,StallLDSTFull,StallBarrier,StallDrain accrued by FastForward granule replay; stale while parked
	Stats         stats.Core
	KernelIssued  []uint64
	memLatencySum uint64
	memLoadsDone  uint64
}

// New builds SM id attached to the shared memory system. numKernels sizes
// the per-kernel issue buckets.
func New(id int, cfg *Config, sys *mem.System, numKernels int, onCTADone func(int, *CTA)) *SM {
	s := &SM{
		id:               id,
		cfg:              cfg,
		memCfg:           sys.Config(),
		sys:              sys,
		schedulers:       make([]scheduler, cfg.NumSchedulers),
		onCTADone:        onCTADone,
		KernelIssued:     make([]uint64, numKernels),
		residentByKernel: make([]int, numKernels),
	}
	for i := range s.schedulers {
		s.schedulers[i].policy = cfg.WarpPolicy
		s.schedulers[i].activeSize = cfg.ActiveSetSize
	}
	s.l1 = mem.NewL1(s.memCfg, id, sys.Port(id))
	s.ldst = newLDSTUnit(s)
	return s
}

// ID returns the core index.
func (s *SM) ID() int { return s.id }

// SetDrainHandler registers the eviction callback invoked when a draining
// CTA has left the core (distinct from retirement). Must be set before the
// first Tick. Like onCTADone it may run on a phase-A worker goroutine, so
// implementations must confine themselves to core-private state.
func (s *SM) SetDrainHandler(fn func(coreID int, cta *CTA)) { s.onCTADrained = fn }

// SetWakeHandler registers the activity-set notifier and arms lazy counter
// accrual (see the syncedTo field). Must be set before the first Tick and
// only by a driver that ticks the core contiguously or syncs it first — the
// GPU cycle loop. Unit tests that tick a bare SM leave it unset and keep the
// strict tick-every-cycle semantics.
func (s *SM) SetWakeHandler(fn func(coreID int, at uint64)) { s.onWake = fn }

// SyncTo accrues the counters for every unprocessed cycle in [syncedTo, t)
// in one granule replay. The caller certifies the window is quiet — the
// core was parked with a wake bound >= t, so no cycle in it could have
// issued, popped a response, or mutated state (FastForward panics if that
// certificate is wrong). Safe to call redundantly: a window the core has
// already processed is empty.
//
//gpulint:synced SyncTo is the accrual funnel itself: it advances the watermark rather than reading behind it
func (s *SM) SyncTo(t uint64) {
	if t > s.syncedTo {
		s.FastForward(s.syncedTo, t)
		s.syncedTo = t
	}
}

// SyncedTo exposes the accrual frontier (tests).
func (s *SM) SyncedTo() uint64 { return s.syncedTo }

// Draining returns the number of resident CTAs currently draining.
func (s *SM) Draining() int { return s.draining }

// L1Stats exposes the L1 hit/miss counters.
func (s *SM) L1Stats() *stats.Cache { return s.l1.CacheStats() }

// AvgMemLatency returns the mean cycles from load issue to last transaction
// completion on this core.
func (s *SM) AvgMemLatency() float64 {
	if s.memLoadsDone == 0 {
		return 0
	}
	return float64(s.memLatencySum) / float64(s.memLoadsDone)
}

// MemLatencyRaw returns the load-latency accumulator and its count, for
// correctly weighted cross-core means.
func (s *SM) MemLatencyRaw() (sum, n uint64) { return s.memLatencySum, s.memLoadsDone }

// SetWarpPolicy switches the warp scheduler (takes effect immediately; used
// by experiments that compare policies, never mid-run).
func (s *SM) SetWarpPolicy(p Policy) {
	s.cfg.WarpPolicy = p
	for i := range s.schedulers {
		sched := &s.schedulers[i]
		sched.policy = p
		sched.active = sched.active[:0]
		sched.pending = sched.pending[:0]
		if p == PolicyTwoLevel {
			for _, w := range sched.warps {
				if len(sched.active) < sched.activeCap() {
					sched.active = append(sched.active, w)
				} else {
					sched.pending = append(sched.pending, w)
				}
			}
		}
		// Age keys are policy-dependent (GTO ages by arrival, BAWS by
		// block); refresh the cached oldest warp.
		sched.rebuildAge()
	}
}

// Usage returns the current resource footprint of resident CTAs.
func (s *SM) Usage() kernel.Usage { return s.usage }

// Limits returns the occupancy limits the core enforces.
func (s *SM) Limits() kernel.CoreLimits { return s.cfg.Limits }

// ResidentCTAs returns the number of CTAs currently on the core.
func (s *SM) ResidentCTAs() int { return len(s.ctas) }

// ResidentOf returns the number of resident CTAs belonging to kernelIdx.
// It is O(1): the per-kernel counters are maintained by AddCTA/completeCTA,
// because every CTA dispatcher probes this on its per-cycle placement scan.
func (s *SM) ResidentOf(kernelIdx int) int {
	if kernelIdx < 0 || kernelIdx >= len(s.residentByKernel) {
		return 0
	}
	return s.residentByKernel[kernelIdx]
}

// CTAs exposes the resident CTA list (probes and tests).
func (s *SM) CTAs() []*CTA { return s.ctas }

// CanAccept reports whether one more CTA of spec fits.
func (s *SM) CanAccept(spec *kernel.Spec) bool {
	return s.usage.Add(spec, 1).Fits(s.cfg.Limits)
}

// AddCTA places a CTA on the core. blockKey/indexInBlock carry the BCS gang
// identity (pass now and 0 for non-gang dispatch). It panics if resources
// are exhausted: the CTA scheduler must check CanAccept first.
func (s *SM) AddCTA(spec *kernel.Spec, kernelIdx, ctaID int, addrBase uint64, blockKey uint64, indexInBlock int, now uint64) *CTA {
	if !s.CanAccept(spec) {
		panic(fmt.Sprintf("sm %d: AddCTA without capacity", s.id))
	}
	if s.onWake != nil {
		// A placement mutates scheduler state, so any parked window must be
		// accrued against the pre-placement verdicts first. The notifier owns
		// the sync: it knows whether the core can still tick this cycle
		// (dispatcher placement, before phase A) or only the next one
		// (placement from a commit callback), and settles the counters up to
		// exactly that boundary before this mutation lands.
		s.onWake(s.id, now)
	}
	s.usage = s.usage.Add(spec, 1)
	cta, warps := s.takeCTA()
	*cta = CTA{
		Spec:         spec,
		KernelIdx:    kernelIdx,
		ID:           ctaID,
		AddrBase:     addrBase,
		Arrival:      now,
		BlockKey:     blockKey,
		IndexInBlock: indexInBlock,
	}
	nw := spec.WarpsPerCTA()
	if cap(warps) >= nw {
		warps = warps[:nw]
	} else {
		grown := make([]*Warp, nw)
		copy(grown, warps[:cap(warps)])
		warps = grown
	}
	cta.warps = warps
	cta.liveWarps = nw
	// Fill the slots a recycled context doesn't cover from one slab: warm-up
	// is per-CTA, not per-warp, and the pointers stay live in the pool.
	missing := 0
	for i := 0; i < nw; i++ {
		if warps[i] == nil {
			missing++
		}
	}
	if missing > 0 {
		slab := make([]Warp, missing)
		j := 0
		for i := 0; i < nw; i++ {
			if warps[i] == nil {
				warps[i] = &slab[j]
				j++
			}
		}
	}
	for i := 0; i < nw; i++ {
		w := warps[i]
		// Whole-struct reset: a recycled warp must not leak scoreboard or
		// stall state (readyAt in particular) into its next life.
		*w = Warp{
			seq:       s.warpSeq,
			cta:       cta,
			warpInCTA: i,
			prog:      spec.Program(ctaID, i),
		}
		s.warpSeq++
		s.leastLoadedScheduler().add(w)
	}
	s.ctas = append(s.ctas, cta)
	if kernelIdx >= 0 && kernelIdx < len(s.residentByKernel) {
		s.residentByKernel[kernelIdx]++
	}
	return cta
}

// takeCTA pops a pooled CTA context (or allocates a fresh one), returning
// the object and its reusable warp-pointer slice. AddCTA overwrites every
// field, so the pooled object carries no state forward.
func (s *SM) takeCTA() (*CTA, []*Warp) {
	n := len(s.ctaPool)
	if n == 0 {
		return new(CTA), nil
	}
	cta := s.ctaPool[n-1]
	s.ctaPool[n-1] = nil
	s.ctaPool = s.ctaPool[:n-1]
	return cta, cta.warps
}

// Recycle returns a retired or evicted CTA's context to the core's pool for
// reuse by a later AddCTA. The caller — the GPU's serial commit phase, after
// every completion callback has run — certifies that nothing else still
// holds the pointer. A CTA whose trailing memory work is still in flight
// (memRefs > 0: a store queued or filling past the last warp's exit) is
// armed for deferred pooling instead; the LDST unit hands it over when the
// last reference drains, which is always a later cycle than the commit, so
// no shared-state reader can observe the reuse. Warp programs are returned
// to their factory's pool here, where the warps provably can never fetch
// again.
func (s *SM) Recycle(cta *CTA) {
	if cta.memRefs > 0 {
		cta.recycleArmed = true
		return
	}
	s.poolCTA(cta)
}

// poolCTA releases the warps' programs and pushes the context. Split from
// Recycle so the LDST unit's deferred handoff shares the release path.
func (s *SM) poolCTA(cta *CTA) {
	if rec := cta.Spec.RecycleProgram; rec != nil {
		for _, w := range cta.warps {
			if w.prog != nil {
				rec(w.prog)
				w.prog = nil
			}
		}
	}
	s.ctaPool = append(s.ctaPool, cta)
}

func (s *SM) leastLoadedScheduler() *scheduler {
	best := &s.schedulers[0]
	for i := 1; i < len(s.schedulers); i++ {
		if len(s.schedulers[i].warps) < len(best.warps) {
			best = &s.schedulers[i]
		}
	}
	return best
}

// Tick advances the core one cycle: drain memory responses, advance the
// LDST pipeline, then let each scheduler issue one instruction. Under lazy
// accrual (SetWakeHandler armed) a core waking from a parked window first
// replays the skipped cycles' counters, so its Stats are current the moment
// it runs again.
//
// Tick is a phase-A root: it may run on a worker goroutine concurrently
// with other cores' ticks, so everything reachable from it must confine
// itself to core-private state and the declared staging sinks (gpulint
// phasepurity polices the reachable set).
//
//gpulint:phasea
func (s *SM) Tick(now uint64) {
	if s.onWake != nil && now > s.syncedTo {
		s.FastForward(s.syncedTo, now)
	}
	s.syncedTo = now + 1
	if len(s.ctas) > 0 || s.ldst.busy() {
		s.Stats.ActiveCycles++
	}
	for {
		resp, ok := s.sys.PopResponse(s.id, now)
		if !ok {
			break
		}
		s.ldst.onResponse(resp, now)
	}
	s.ldst.tick(now)
	for i := range s.schedulers {
		s.issueOne(&s.schedulers[i], now)
	}
	if s.draining > 0 {
		s.evictDrained(now)
	}
}

// DrainCTA begins preemption of a resident CTA: it moves the CTA to
// CTADraining, which suppresses all further instruction issue by its warps
// (including OpExit — a marked CTA can only leave the core by eviction).
// The CTA is evicted by a later Tick once its in-flight memory work
// completes. Returns false when cta is not resident in the running state —
// in particular when a natural completion raced the drain request and the
// CTA already retired.
func (s *SM) DrainCTA(cta *CTA) bool {
	if cta == nil || cta.state != CTARunning {
		return false
	}
	resident := false
	for _, c := range s.ctas {
		if c == cta {
			resident = true
			break
		}
	}
	if !resident {
		return false
	}
	cta.state = CTADraining
	s.draining++
	return true
}

// evictDrained evicts every draining CTA whose memory work has completed.
// It runs at the end of Tick, so the response drain earlier in the same
// cycle may have retired the final pending load.
func (s *SM) evictDrained(now uint64) {
	for i := 0; i < len(s.ctas); {
		cta := s.ctas[i]
		if cta.state == CTADraining && cta.memRefs == 0 {
			s.evictCTA(cta, now)
			continue // eviction removed index i; the next CTA shifted in
		}
		i++
	}
}

// evictCTA removes a fully drained CTA from the core: completeCTA's resource
// accounting (scheduler slots, usage, per-kernel residency) with the drained
// CTA reported through the drain handler instead of the retirement one.
func (s *SM) evictCTA(cta *CTA, now uint64) {
	for _, w := range cta.warps {
		if !w.finished {
			w.sched.remove(w)
			w.finished = true
		}
	}
	for i, c := range s.ctas {
		if c == cta {
			copy(s.ctas[i:], s.ctas[i+1:])
			s.ctas = s.ctas[:len(s.ctas)-1]
			break
		}
	}
	s.usage = s.usage.Add(cta.Spec, -1)
	if cta.KernelIdx >= 0 && cta.KernelIdx < len(s.residentByKernel) {
		s.residentByKernel[cta.KernelIdx]--
	}
	s.draining--
	cta.state = CTAEvicted
	s.Stats.CTAsDrained++
	if s.onCTADrained != nil {
		s.onCTADrained(s.id, cta)
	}
}

// issueOne runs one scheduler slot for one cycle.
func (s *SM) issueOne(sched *scheduler, now uint64) {
	if len(sched.warps) == 0 {
		return
	}
	w, reason := s.pickOrReason(sched, now)
	if w == nil {
		s.Stats.IssueStallCycles++
		switch reason {
		case skipScoreboard:
			s.Stats.StallScoreboard++
		case skipStructural:
			s.Stats.StallLDSTFull++
		case skipBarrier:
			s.Stats.StallBarrier++
		case skipDraining:
			s.Stats.StallDrain++
		}
		return
	}
	s.execute(sched, w, now)
}

// pickOrReason resolves one scheduler slot's verdict for one cycle: the
// issuing warp, or nil plus the stall attribution. It is the single verdict
// path shared by Tick and FastForward, so skipped cycles accrue exactly the
// counters executed cycles would.
//
// Fast path for the greedy policies: when every warp is parked on a memory
// result or a barrier — the dominant state of memory-bound phases — pick
// would fail without side effects, attributing the stall to the oldest
// warp. Reproduce that verdict from the transition-maintained counter
// instead of scanning. (LRR and two-level attribute to rotation order /
// mutate fetch groups, so they keep the scan.)
//
//gpulint:hotpath
func (s *SM) pickOrReason(sched *scheduler, now uint64) (*Warp, skipReason) {
	if sched.longBlocked == len(sched.warps) &&
		sched.policy != PolicyLRR && sched.policy != PolicyTwoLevel {
		if sched.oldestWarp().atBarrier {
			return nil, skipBarrier
		}
		return nil, skipScoreboard
	}
	ready := func(w *Warp) (bool, skipReason) { return s.canIssue(sched, w, now) }
	return sched.pick(ready)
}

// canIssue evaluates every issue condition for w's current instruction.
func (s *SM) canIssue(sched *scheduler, w *Warp, now uint64) (bool, skipReason) {
	if w.finished {
		return false, skipFinished
	}
	if w.cta.state == CTADraining {
		// Drain protocol: no new instructions past the preemption point.
		return false, skipDraining
	}
	if w.atBarrier {
		return false, skipBarrier
	}
	if !w.fetch() {
		return false, skipFinished
	}
	if !w.operandsReady(now) {
		// A stall pinned on a pending load parks the warp: only the load's
		// return (clearStall) can wake it, so track it in the scheduler's
		// long-blocked count rather than re-evaluating it every cycle.
		if w.stallUntil == notReady && !w.blockedMem {
			w.blockedMem = true
			sched.longBlocked++
		}
		return false, skipScoreboard
	}
	wi := &w.cur
	switch {
	case wi.Op == isa.OpSfu && sched.sfuFreeAt > now:
		return false, skipStructural
	case wi.Op.IsMemory() && wi.Mask != 0 && !s.ldst.canAccept(wi.Op.WritesRegister()):
		return false, skipStructural
	}
	return true, skipNone
}

// execute issues w's current instruction.
func (s *SM) execute(sched *scheduler, w *Warp, now uint64) {
	wi := &w.cur
	w.curValid = false

	s.Stats.InstrIssued++
	s.Stats.ThreadInstr += uint64(wi.ActiveLanes())
	w.cta.Issued++
	if w.cta.KernelIdx < len(s.KernelIssued) {
		s.KernelIssued[w.cta.KernelIdx]++
	}

	switch wi.Op {
	case isa.OpNop, isa.OpBranch:
		// Issue-slot cost only.
	case isa.OpIAlu, isa.OpFAlu:
		if wi.Dst != 0 {
			w.readyAt[wi.Dst] = now + s.cfg.ALULatency
		}
	case isa.OpSfu:
		if wi.Dst != 0 {
			w.readyAt[wi.Dst] = now + s.cfg.SFULatency
		}
		sched.sfuFreeAt = now + s.cfg.SFUInterval
	case isa.OpBarrier:
		s.arriveBarrier(w)
	case isa.OpExit:
		s.exitWarp(sched, w, now)
	default:
		if !wi.Op.IsMemory() {
			panic(fmt.Sprintf("sm: unhandled op %v", wi.Op))
		}
		if wi.ActiveLanes() == 0 {
			// Fully predicated off: completes like a nop.
			if wi.Dst != 0 && wi.Op.WritesRegister() {
				w.readyAt[wi.Dst] = now + 1
			}
			return
		}
		s.ldst.accept(w, wi, now)
	}
}

func (s *SM) arriveBarrier(w *Warp) {
	w.atBarrier = true
	w.sched.longBlocked++
	cta := w.cta
	cta.barCount++
	if cta.barCount >= cta.liveWarps {
		releaseBarrier(cta)
	}
}

// releaseBarrier frees every warp of cta waiting at the barrier, keeping
// the per-scheduler long-blocked counts in step (the CTA's warps are spread
// across schedulers).
func releaseBarrier(cta *CTA) {
	for _, x := range cta.warps {
		if x.atBarrier {
			x.atBarrier = false
			x.sched.longBlocked--
		}
	}
	cta.barCount = 0
}

func (s *SM) exitWarp(sched *scheduler, w *Warp, now uint64) {
	w.finished = true
	sched.remove(w)
	cta := w.cta
	cta.liveWarps--
	if cta.liveWarps > 0 {
		// A malformed kernel could leave peers waiting at a barrier this
		// warp will never reach; release them rather than deadlock.
		if cta.barCount >= cta.liveWarps {
			releaseBarrier(cta)
		}
		return
	}
	s.completeCTA(cta, now)
}

func (s *SM) completeCTA(cta *CTA, now uint64) {
	for i, c := range s.ctas {
		if c == cta {
			copy(s.ctas[i:], s.ctas[i+1:])
			s.ctas = s.ctas[:len(s.ctas)-1]
			break
		}
	}
	// Usage is additive per CTA, so retiring one subtracts its footprint —
	// no rebuild over the survivors.
	s.usage = s.usage.Add(cta.Spec, -1)
	if cta.KernelIdx >= 0 && cta.KernelIdx < len(s.residentByKernel) {
		s.residentByKernel[cta.KernelIdx]--
	}
	s.Stats.CTAsCompleted++
	if s.onCTADone != nil {
		s.onCTADone(s.id, cta)
	}
}

// Idle reports whether the core has no resident CTAs and no in-flight
// memory work.
func (s *SM) Idle() bool {
	return len(s.ctas) == 0 && !s.ldst.busy()
}

// NeverEvent is the NextEvent bound meaning "only an external event — a
// memory response or a CTA placement — can change what Tick does".
const NeverEvent = ^uint64(0)

// NextEvent returns the earliest cycle >= now at which the core can make
// progress on its own: a ripe LDST event, a scoreboard stall expiring, or
// an SFU pipe freeing. The bound is conservative — waking early is safe
// (Tick runs and finds nothing), waking late would skip cycles where state
// changes, which the bit-identical gate forbids. The probe may evaluate
// canIssue, whose side effects (fetch, stallUntil caching, blockedMem
// parking) are exactly what the next real pick would compute, so the
// machine remains deterministic whether or not a probe ran.
func (s *SM) NextEvent(now uint64) uint64 {
	if s.Idle() {
		return NeverEvent
	}
	if s.draining > 0 {
		// A drain is in progress: eviction readiness (memRefs == 0) is
		// re-checked every Tick, and a drained-CTA commit changes dispatch
		// state, so no cycle in a drain window may be skipped. Drains last
		// one memory round trip at most — the conservative bound is cheap.
		return now
	}
	next := s.ldst.nextEvent(now)
	if next <= now {
		return now
	}
	for i := range s.schedulers {
		sched := &s.schedulers[i]
		if len(sched.warps) == 0 {
			continue
		}
		if ev := s.schedulerNextEvent(sched, now); ev < next {
			next = ev
		}
		if next <= now {
			return now
		}
	}
	return next
}

// schedulerNextEvent bounds when sched might issue or mutate state,
// assuming no instruction issues and no memory response arrives before the
// returned cycle (the GPU only skips when every component agrees).
func (s *SM) schedulerNextEvent(sched *scheduler, now uint64) uint64 {
	if sched.policy == PolicyTwoLevel && len(sched.pending) > 0 {
		// pickTwoLevel demotes/promotes fetch groups on no-issue cycles —
		// a state mutation — so these cycles can never be skipped.
		return now
	}
	if sched.longBlocked == len(sched.warps) {
		// Every warp parked on a memory result or barrier: only a response
		// can wake the slot.
		return NeverEvent
	}
	next := uint64(NeverEvent)
	for _, w := range sched.warps {
		if w.blockedMem || w.atBarrier {
			continue
		}
		ok, reason := s.canIssue(sched, w, now)
		if ok {
			return now
		}
		switch reason {
		case skipScoreboard:
			// operandsReady cached the wake cycle; notReady means the probe
			// just parked the warp on a pending load.
			if w.stallUntil != notReady && w.stallUntil < next {
				next = w.stallUntil
			}
		case skipStructural:
			if w.cur.Op == isa.OpSfu {
				if sched.sfuFreeAt < next {
					next = sched.sfuFreeAt
				}
			}
			// LDST back-pressure frees via the unit's own queue progress
			// (ldst.nextEvent) or a memory response (the system's bound);
			// no time-driven wake originates here.
		}
	}
	return next
}

// FastForward accrues the per-cycle counters Tick would have produced for
// the skipped window [from, to). The caller guarantees the machine is
// frozen across the window — nothing issues, no memory response arrives,
// no CTA is placed or retires — so the per-slot stall verdict is constant
// and one evaluation at `from` replicates every skipped cycle. A non-nil
// pick here would mean the window contained an issuable cycle, which the
// event horizon must never allow; that is a bug, not a recoverable state.
//
//gpulint:hotpath
func (s *SM) FastForward(from, to uint64) {
	if to <= from {
		return
	}
	k := to - from
	if len(s.ctas) > 0 || s.ldst.busy() {
		s.Stats.ActiveCycles += k
	}
	for i := range s.schedulers {
		sched := &s.schedulers[i]
		if len(sched.warps) == 0 {
			continue
		}
		w, reason := s.pickOrReason(sched, from)
		if w != nil {
			//gpulint:allow hotalloc unreachable-by-contract panic path; formatting cost is irrelevant when the simulator is already broken
			panic(fmt.Sprintf("sm %d: fast-forward across an issuable cycle at %d", s.id, from))
		}
		s.Stats.IssueStallCycles += k
		switch reason {
		case skipScoreboard:
			s.Stats.StallScoreboard += k
		case skipStructural:
			s.Stats.StallLDSTFull += k
		case skipBarrier:
			s.Stats.StallBarrier += k
		case skipDraining:
			// Unreachable: NextEvent pins the horizon while draining, so no
			// window containing a drain is ever skipped. Kept for symmetry.
			s.Stats.StallDrain += k
		}
	}
}
