package sm

// skipReason classifies why a warp could not issue this cycle, for stall
// attribution. Reasons are evaluated in readiness order.
type skipReason uint8

const (
	skipNone skipReason = iota
	skipFinished
	skipBarrier
	skipScoreboard
	skipStructural // LDST queue, pending table, or SFU pipe full
	skipDraining   // warp's CTA is draining for preemption
)

// scheduler is one warp-issue slot of an SM. It owns a disjoint subset of
// the SM's warps and picks at most one per cycle according to the policy.
type scheduler struct {
	policy Policy
	warps  []*Warp
	// last is the most recent issuer: the greedy candidate for GTO/BAWS,
	// the rotation origin for LRR and the two-level active set.
	last *Warp
	// sfuFreeAt models the per-scheduler SFU initiation interval.
	sfuFreeAt uint64
	// active/pending implement PolicyTwoLevel's fetch groups; unused by
	// the other policies.
	active     []*Warp
	pending    []*Warp
	activeSize int
	// longBlocked counts warps parked on a condition only an external event
	// can clear (blockedMem or atBarrier). It is maintained on state
	// transitions, so "every warp is parked" — the dominant state of
	// memory-bound phases — is a single compare instead of a rescan.
	longBlocked int
	// byAge holds the warps sorted by policy age key, oldest first (equal
	// keys in add order). Age keys are immutable after add, so the order
	// only changes on add/remove/policy switch. Greedy-oldest picks walk it
	// in order and stop at the first ready warp instead of evaluating every
	// warp's readiness, and byAge[0] resolves stall attribution without a
	// rescan.
	byAge []*Warp
}

// oldestWarp returns the policy-oldest warp (nil when empty).
func (s *scheduler) oldestWarp() *Warp {
	if len(s.byAge) == 0 {
		return nil
	}
	return s.byAge[0]
}

// add registers a warp with this scheduler.
func (s *scheduler) add(w *Warp) {
	w.sched = s
	s.warps = append(s.warps, w)
	if s.policy == PolicyTwoLevel {
		if len(s.active) < s.activeCap() {
			s.active = append(s.active, w)
		} else {
			s.pending = append(s.pending, w)
		}
	}
	if w.blockedMem || w.atBarrier {
		s.longBlocked++ // impossible for fresh warps; defensive for tests
	}
	s.insertByAge(w)
}

// insertByAge places w at its sorted position: after every strictly-older
// warp and after any warp with an equal key (matching the old linear scan,
// which kept the first-added warp on ties).
func (s *scheduler) insertByAge(w *Warp) {
	a1, a2, a3 := s.ageKey(w)
	i := len(s.byAge)
	for i > 0 {
		b1, b2, b3 := s.ageKey(s.byAge[i-1])
		if !ageLess(a1, a2, a3, b1, b2, b3) {
			break
		}
		i--
	}
	s.byAge = append(s.byAge, nil)
	copy(s.byAge[i+1:], s.byAge[i:])
	s.byAge[i] = w
}

// rebuildAge re-sorts the age order from scratch (policy switch — never on
// the per-cycle path).
func (s *scheduler) rebuildAge() {
	s.byAge = s.byAge[:0]
	for _, w := range s.warps {
		s.insertByAge(w)
	}
}

// remove drops a finished warp, preserving the order of the rest (LRR
// rotation position depends on stable order).
func (s *scheduler) remove(w *Warp) {
	drop := func(list []*Warp) []*Warp {
		for i, x := range list {
			if x == w {
				copy(list[i:], list[i+1:])
				return list[:len(list)-1]
			}
		}
		return list
	}
	s.warps = drop(s.warps)
	s.byAge = drop(s.byAge)
	if w.blockedMem || w.atBarrier {
		s.longBlocked--
	}
	if s.policy == PolicyTwoLevel {
		was := len(s.active)
		s.active = drop(s.active)
		s.pending = drop(s.pending)
		if len(s.active) < was && len(s.pending) > 0 {
			// Promote the longest-waiting pending warp.
			s.active = append(s.active, s.pending[0])
			copy(s.pending, s.pending[1:])
			s.pending = s.pending[:len(s.pending)-1]
		}
	}
	if s.last == w {
		s.last = nil
	}
}

func (s *scheduler) activeCap() int {
	if s.activeSize < 1 {
		return 8
	}
	return s.activeSize
}

// ageKey returns the scheduling age of w under the policy: smaller is
// older/higher priority. GTO ages by CTA arrival then warp dispatch order,
// which *serializes* the CTAs of a BCS gang (the first CTA's warps strictly
// outrank the second's). BAWS instead keys on (block age, warp index within
// CTA, CTA index within block): the gang's CTAs interleave warp-for-warp and
// progress in lockstep, so the lines they share are touched while still
// resident — the point of the block-aware warp scheduler.
func (s *scheduler) ageKey(w *Warp) (uint64, uint64, uint64) {
	switch s.policy {
	case PolicyBAWS:
		idx := uint64(0)
		if w.cta.IndexInBlock > 0 {
			idx = uint64(w.cta.IndexInBlock)
		}
		return w.cta.BlockKey, uint64(w.warpInCTA), idx
	default:
		return w.cta.Arrival, 0, w.seq
	}
}

func ageLess(a1, a2, a3, b1, b2, b3 uint64) bool {
	if a1 != b1 {
		return a1 < b1
	}
	if a2 != b2 {
		return a2 < b2
	}
	return a3 < b3
}

// pick selects the next warp to issue. ready reports whether a warp can
// issue right now (operands, barrier, structural); it may be called several
// times per warp per cycle. The returned reason explains the preferred
// warp's stall when nothing was ready.
//
//gpulint:hotpath
func (s *scheduler) pick(ready func(w *Warp) (bool, skipReason)) (*Warp, skipReason) {
	if len(s.warps) == 0 {
		return nil, skipNone
	}
	switch s.policy {
	case PolicyLRR:
		return s.pickLRR(ready)
	case PolicyTwoLevel:
		return s.pickTwoLevel(ready)
	default:
		return s.pickGreedyOldest(ready)
	}
}

// pickTwoLevel issues round-robin within the active set; when every active
// warp is blocked, one that waits on a *memory* result is demoted and the
// longest-waiting pending warp promoted (and issued immediately if ready).
// ALU-latency stalls do not trigger swaps — they resolve within a few
// cycles, which is the point of keeping a small compute-dense active set.
//
//gpulint:hotpath
func (s *scheduler) pickTwoLevel(ready func(w *Warp) (bool, skipReason)) (*Warp, skipReason) {
	if len(s.active) == 0 {
		return nil, skipNone
	}
	start := 0
	if s.last != nil {
		for i, w := range s.active {
			if w == s.last {
				start = i + 1
				break
			}
		}
	}
	firstReason := skipNone
	for k := 0; k < len(s.active); k++ {
		w := s.active[(start+k)%len(s.active)]
		ok, reason := ready(w)
		if ok {
			s.last = w
			return w, skipNone
		}
		if firstReason == skipNone {
			firstReason = reason
		}
	}
	// Nothing issuable: swap out one active warp blocked on a long-wait
	// condition — a pending memory result, or a barrier (its release may
	// depend on warps waiting in the pending set, so keeping it active
	// would deadlock the CTA).
	if len(s.pending) > 0 {
		for i, w := range s.active {
			if w.stallUntil != notReady && !w.atBarrier {
				continue
			}
			promoted := s.pending[0]
			copy(s.pending, s.pending[1:])
			s.pending[len(s.pending)-1] = w
			s.active[i] = promoted
			if ok, _ := ready(promoted); ok {
				s.last = promoted
				return promoted, skipNone
			}
			break // one swap per cycle
		}
	}
	return nil, firstReason
}

//gpulint:hotpath
func (s *scheduler) pickLRR(ready func(w *Warp) (bool, skipReason)) (*Warp, skipReason) {
	start := 0
	if s.last != nil {
		for i, w := range s.warps {
			if w == s.last {
				start = i + 1
				break
			}
		}
	}
	n := len(s.warps)
	firstReason := skipNone
	for k := 0; k < n; k++ {
		w := s.warps[(start+k)%n]
		// Parked warps cannot issue; derive their reason without the
		// (side-effect-free, but costly) readiness evaluation.
		var ok bool
		var reason skipReason
		switch {
		case w.atBarrier:
			reason = skipBarrier
		case w.blockedMem:
			reason = skipScoreboard
		default:
			ok, reason = ready(w)
		}
		if ok {
			s.last = w
			return w, skipNone
		}
		if firstReason == skipNone {
			firstReason = reason
		}
	}
	return nil, firstReason
}

// pickGreedyOldest implements GTO and BAWS: the last issuer goes first; if
// it cannot issue, the oldest ready warp (by the policy's age key) wins and
// becomes the new greedy warp. Warps parked on a memory result or a barrier
// are skipped without evaluation: their readiness check is a guaranteed
// no-op failure, and the cached oldest warp supplies stall attribution.
//
//gpulint:hotpath
func (s *scheduler) pickGreedyOldest(ready func(w *Warp) (bool, skipReason)) (*Warp, skipReason) {
	if s.last != nil && !s.last.blockedMem && !s.last.atBarrier {
		if ok, _ := ready(s.last); ok {
			return s.last, skipNone
		}
	}
	for _, w := range s.byAge {
		if w.blockedMem || w.atBarrier {
			continue
		}
		if ok, _ := ready(w); ok {
			// byAge is oldest-first, so the first ready warp is the pick.
			s.last = w
			return w, skipNone
		}
	}
	return nil, s.oldestReason(ready)
}

// oldestReason attributes a no-issue cycle to the stall of the overall-
// oldest warp — the one the greedy policies *want* to run.
func (s *scheduler) oldestReason(ready func(w *Warp) (bool, skipReason)) skipReason {
	w := s.oldestWarp()
	if w == nil {
		return skipNone
	}
	switch {
	case w.atBarrier:
		return skipBarrier
	case w.blockedMem:
		return skipScoreboard
	default:
		_, reason := ready(w)
		return reason
	}
}
