package sm

import (
	"testing"

	"gpusched/internal/isa"
	"gpusched/internal/kernel"
)

// drainRig is the standard rig plus a drain-eviction log.
func drainRig(t *testing.T) (*rig, *[]*CTA) {
	r := newRig(t, nil)
	drained := &[]*CTA{}
	r.sm.SetDrainHandler(func(core int, cta *CTA) { *drained = append(*drained, cta) })
	return r, drained
}

func TestDrainCTAEvictsAfterMemoryQuiesces(t *testing.T) {
	r, drained := drainRig(t)
	// One global load feeding a long ALU chain: at drain time the load is
	// in flight, so eviction must wait for it.
	b := isa.NewBuilder()
	b.LoadGlobal(2, 0)
	for i := 0; i < 200; i++ {
		b.FAlu(1, 2)
	}
	b.Exit()
	spec := specWith(2, fixedProg(b))
	cta := r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	for i := 0; i < 3; i++ {
		r.step()
	}
	if !r.sm.DrainCTA(cta) {
		t.Fatal("DrainCTA refused a resident running CTA")
	}
	if cta.State() != CTADraining {
		t.Fatalf("state after DrainCTA = %d, want CTADraining", cta.State())
	}
	if r.sm.Draining() != 1 {
		t.Fatalf("Draining() = %d, want 1", r.sm.Draining())
	}
	issuedAtDrain := r.sm.Stats.InstrIssued
	for i := 0; i < 5000 && len(*drained) == 0; i++ {
		r.step()
	}
	if len(*drained) != 1 || (*drained)[0] != cta {
		t.Fatalf("drain handler saw %d CTAs, want exactly the drained one", len(*drained))
	}
	if cta.State() != CTAEvicted {
		t.Fatalf("state after eviction = %d, want CTAEvicted", cta.State())
	}
	if got := r.sm.Stats.InstrIssued; got != issuedAtDrain {
		t.Fatalf("draining warps issued %d instructions", got-issuedAtDrain)
	}
	if r.sm.ResidentCTAs() != 0 || r.sm.Draining() != 0 {
		t.Fatalf("resident=%d draining=%d after eviction, want 0/0", r.sm.ResidentCTAs(), r.sm.Draining())
	}
	if got := r.sm.Usage(); got != (kernel.Usage{}) {
		t.Fatalf("usage not released: %+v", got)
	}
	if r.sm.ResidentOf(0) != 0 {
		t.Fatal("per-kernel residency not released")
	}
	if r.sm.Stats.CTAsDrained != 1 || r.sm.Stats.CTAsCompleted != 0 {
		t.Fatalf("drained=%d completed=%d, want 1/0", r.sm.Stats.CTAsDrained, r.sm.Stats.CTAsCompleted)
	}
	if len(r.done) != 0 {
		t.Fatal("drained CTA must not be reported as retired")
	}
}

func TestDrainCTARacesNaturalCompletion(t *testing.T) {
	r, drained := drainRig(t)
	b := isa.NewBuilder()
	b.FAlu(1, 1)
	b.Exit()
	spec := specWith(1, fixedProg(b))
	cta := r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 1000)
	// The CTA retired naturally before the (late) drain request landed: the
	// request must lose the race, with no drain accounting.
	if r.sm.DrainCTA(cta) {
		t.Fatal("DrainCTA accepted an already-retired CTA")
	}
	if r.sm.Stats.CTAsDrained != 0 || len(*drained) != 0 {
		t.Fatal("losing drain request still produced an eviction")
	}
	if r.sm.Stats.CTAsCompleted != 1 || len(r.done) != 1 {
		t.Fatalf("natural completion lost: completed=%d done=%d", r.sm.Stats.CTAsCompleted, len(r.done))
	}
	// Re-draining an evicted or draining CTA is likewise refused.
	if cta.State() != CTARunning {
		t.Fatalf("retired CTA state mutated to %d", cta.State())
	}
}

func TestDrainCTAWithBarrierParkedWarps(t *testing.T) {
	r, drained := drainRig(t)
	// Warp 0 parks at the barrier immediately; warp 1 works through a long
	// chain first. The drain hits while warp 0 is at the barrier, so
	// eviction must unwind barrier bookkeeping without deadlock or panic.
	spec := &kernel.Spec{
		Name:          "bar",
		Grid:          kernel.Dim3{X: 4},
		Block:         kernel.Dim3{X: 2 * isa.WarpSize},
		RegsPerThread: 16,
		Program: func(ctaID, w int) isa.Program {
			b := isa.NewBuilder()
			if w == 1 {
				for i := 0; i < 300; i++ {
					b.FAlu(1, 1)
				}
			}
			b.Barrier()
			b.Exit()
			return b.Build()
		},
	}
	cta := r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	for i := 0; i < 20; i++ {
		r.step()
	}
	if !r.sm.DrainCTA(cta) {
		t.Fatal("DrainCTA refused")
	}
	if r.sm.DrainCTA(cta) {
		t.Fatal("second DrainCTA on a draining CTA must be refused")
	}
	for i := 0; i < 100 && len(*drained) == 0; i++ {
		r.step()
	}
	if len(*drained) != 1 {
		t.Fatal("barrier-parked CTA never evicted")
	}
	// The core must stay healthy for fresh work after the unwind.
	b := isa.NewBuilder()
	b.FAlu(1, 1)
	b.Exit()
	fresh := specWith(2, fixedProg(b))
	r.sm.AddCTA(fresh, 1, 0, 0, r.now, 0, r.now)
	r.runUntilDone(1, 5000)
}

func TestDrainCTAWithoutMemoryEvictsNextTick(t *testing.T) {
	r, drained := drainRig(t)
	b := isa.NewBuilder()
	for i := 0; i < 500; i++ {
		b.FAlu(1, 1)
	}
	b.Exit()
	spec := specWith(2, fixedProg(b))
	cta := r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	for i := 0; i < 5; i++ {
		r.step()
	}
	if !r.sm.DrainCTA(cta) {
		t.Fatal("DrainCTA refused")
	}
	r.step()
	if len(*drained) != 1 {
		t.Fatal("CTA with no in-flight memory should evict on the next tick")
	}
}

func TestNextEventPinnedWhileDraining(t *testing.T) {
	r, _ := drainRig(t)
	b := isa.NewBuilder()
	for i := 0; i < 50; i++ {
		b.FAlu(1, 1)
	}
	b.Exit()
	spec := specWith(1, fixedProg(b))
	cta := r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	r.step()
	if !r.sm.DrainCTA(cta) {
		t.Fatal("DrainCTA refused")
	}
	if ev := r.sm.NextEvent(r.now); ev != r.now {
		t.Fatalf("NextEvent during drain = %d, want now (%d): fast-forward must not skip drain windows", ev, r.now)
	}
}
