// Package sm models one streaming multiprocessor: warp contexts with a
// register scoreboard, per-cycle issue by pluggable warp schedulers (LRR,
// GTO, and the paper's block-aware BAWS), ALU/SFU/LDST pipelines, CTA
// barriers, and the per-CTA issue counters that lazy CTA scheduling samples.
//
// The SM owns its L1 (from internal/mem) and talks to the shared memory
// system only through misses. The CTA scheduler (internal/core) decides
// which CTAs arrive and when; the SM enforces the resource limits and runs
// them.
package sm

import "gpusched/internal/kernel"

// Policy selects the warp scheduling discipline of an SM.
type Policy uint8

const (
	// PolicyLRR is loose round-robin: resume scanning after the last
	// issuing warp, giving every warp equal issue opportunity.
	PolicyLRR Policy = iota
	// PolicyGTO is greedy-then-oldest: keep issuing the same warp until it
	// stalls, then fall back to the oldest ready warp (by CTA arrival).
	// This is the scheduler LCS leverages: it concentrates issue on old
	// CTAs, making the per-CTA issue histogram meaningful.
	PolicyGTO
	// PolicyBAWS is the block-aware warp scheduler proposed alongside BCS:
	// greedy-then-oldest, but age is the CTA *block* arrival, so the CTAs
	// of one block progress together and their shared lines stay hot.
	PolicyBAWS
	// PolicyTwoLevel is a two-level round-robin scheduler (Narasiman et
	// al., MICRO 2011 style): a small active set issues LRR; a warp that
	// blocks on a pending memory result is swapped out for a waiting
	// warp, so the active set stays compute-dense.
	PolicyTwoLevel
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyLRR:
		return "lrr"
	case PolicyGTO:
		return "gto"
	case PolicyBAWS:
		return "baws"
	case PolicyTwoLevel:
		return "two-level"
	default:
		return "policy?"
	}
}

// Config holds the per-SM pipeline parameters. Start from DefaultConfig.
type Config struct {
	// NumSchedulers is the number of warp schedulers (issue slots/cycle).
	NumSchedulers int
	// ALULatency is the operand-ready latency of IALU/FALU results.
	ALULatency uint64
	// SFULatency is the result latency of special-function ops.
	SFULatency uint64
	// SFUInterval is the per-scheduler SFU initiation interval (cycles
	// between SFU issues), modeling the narrower SFU pipe.
	SFUInterval uint64
	// SharedLatency is the scratchpad access latency (conflict-free).
	SharedLatency uint64
	// LDSTQueueCap bounds in-flight memory instructions per SM.
	LDSTQueueCap int
	// ActiveSetSize is the per-scheduler active warp set for
	// PolicyTwoLevel (default 8).
	ActiveSetSize int
	// MaxPendingLoads bounds outstanding load/atomic instructions
	// (the pending-access table; tokens index into it).
	MaxPendingLoads int
	// Limits are the occupancy resources the SM enforces.
	Limits kernel.CoreLimits
	// WarpPolicy selects the warp scheduler.
	WarpPolicy Policy
}

// DefaultConfig returns Fermi-class SM parameters (GTX480 ballpark).
func DefaultConfig() Config {
	return Config{
		NumSchedulers:   2,
		ALULatency:      10,
		SFULatency:      20,
		SFUInterval:     8,
		SharedLatency:   24,
		LDSTQueueCap:    8,
		ActiveSetSize:   8,
		MaxPendingLoads: 64,
		Limits: kernel.CoreLimits{
			MaxThreads:     1536,
			MaxCTAs:        8,
			MaxWarps:       48,
			Registers:      32768,
			SharedMemBytes: 48 * 1024,
		},
		WarpPolicy: PolicyGTO,
	}
}
