package sm

import (
	"testing"

	"gpusched/internal/isa"
	"gpusched/internal/kernel"
	"gpusched/internal/mem"
)

func benchSM(policy Policy, warps int) (*SM, *mem.System) {
	cfg := DefaultConfig()
	cfg.WarpPolicy = policy
	memCfg := mem.DefaultConfig()
	sys := mem.NewSystem(&memCfg, 1)
	s := New(0, &cfg, sys, 1, nil)
	spec := &kernel.Spec{
		Name:          "bench",
		Grid:          kernel.Dim3{X: 1024},
		Block:         kernel.Dim3{X: warps * isa.WarpSize},
		RegsPerThread: 8,
		Program: func(ctaID, w int) isa.Program {
			// Endless-ish dependent ALU work: the scheduler always has a
			// scoreboard decision to make.
			b := isa.NewBuilder()
			for i := 0; i < 10000; i++ {
				b.FAlu(1, 1)
			}
			b.Exit()
			return b.Build()
		},
	}
	for i := 0; i < 6 && s.CanAccept(spec); i++ {
		s.AddCTA(spec, 0, i, 0, 0, 0, 0)
	}
	return s, sys
}

func benchTick(b *testing.B, policy Policy) {
	s, sys := benchSM(policy, 8)
	b.ResetTimer()
	for now := uint64(0); now < uint64(b.N); now++ {
		s.Tick(now)
		sys.Tick(now)
	}
	b.ReportMetric(float64(s.Stats.InstrIssued)/float64(b.N), "instr/cycle")
}

func BenchmarkSMTickLRR(b *testing.B)  { benchTick(b, PolicyLRR) }
func BenchmarkSMTickGTO(b *testing.B)  { benchTick(b, PolicyGTO) }
func BenchmarkSMTickBAWS(b *testing.B) { benchTick(b, PolicyBAWS) }

func BenchmarkSchedulerPickStalled(b *testing.B) {
	// Worst case: every warp scoreboard-stalled, full scan each pick.
	s, _ := benchSM(PolicyGTO, 8)
	sched := &s.schedulers[0]
	for _, w := range sched.warps {
		w.fetch()
		w.readyAt[1] = ^uint64(0)
	}
	ready := func(w *Warp) (bool, skipReason) {
		if !w.operandsReady(1) {
			return false, skipScoreboard
		}
		return true, skipNone
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.pick(ready)
	}
}
