package sm

import (
	"gpusched/internal/isa"
	"gpusched/internal/mem"
)

// pendingLoad tracks one outstanding load/atomic instruction: how many line
// transactions are still in flight and which register to release when the
// last returns. Tokens traveling through the memory system index this table.
type pendingLoad struct {
	warp      *Warp
	dst       isa.Reg
	remaining int
	atomic    bool
	issued    uint64
	inUse     bool
}

// ldstEntry is one memory instruction queued at the LDST unit.
type ldstEntry struct {
	warp *Warp
	wi   isa.WarpInstr
	// lines are the coalesced global transactions (nil for shared ops).
	lines []uint64
	next  int
	// token indexes the pendingLoad table (loads/atomics only).
	token    uint32
	hasToken bool
	// finishAt is the shared-op completion cycle (0 = not started).
	finishAt uint64
}

// hitEvent releases one transaction of a pending load after the L1 hit
// latency.
type hitEvent struct {
	at    uint64
	token uint32
}

// ldstUnit is the SM's memory pipeline: a bounded in-order queue of memory
// instructions. The head instruction issues one line transaction per cycle
// into the L1 (global) or occupies the unit for its conflict passes
// (shared). Divergent accesses therefore occupy the unit proportionally to
// their transaction count — the memory-divergence cost.
type ldstUnit struct {
	sm    *SM
	queue []ldstEntry
	cap   int

	table []pendingLoad
	free  []uint32

	hits []hitEvent

	// linePool recycles the coalesced-line buffers of retired queue entries
	// so a long run allocates O(queue cap) line slices total instead of one
	// per global memory instruction. Entries own their buffer from accept
	// to popHead.
	linePool [][]uint64
}

func newLDSTUnit(s *SM) *ldstUnit {
	u := &ldstUnit{
		sm:    s,
		cap:   s.cfg.LDSTQueueCap,
		table: make([]pendingLoad, s.cfg.MaxPendingLoads),
		free:  make([]uint32, 0, s.cfg.MaxPendingLoads),
	}
	for i := s.cfg.MaxPendingLoads - 1; i >= 0; i-- {
		u.free = append(u.free, uint32(i))
	}
	return u
}

// canAccept reports whether a new memory instruction can enter the queue,
// and — for register-writing ops — whether a pending-table slot exists.
func (u *ldstUnit) canAccept(writesReg bool) bool {
	if len(u.queue) >= u.cap {
		return false
	}
	if writesReg && len(u.free) == 0 {
		return false
	}
	return true
}

// takeLines pops a recycled line buffer (nil when the pool is empty — the
// first few instructions grow fresh buffers that then circulate forever).
func (u *ldstUnit) takeLines() []uint64 {
	n := len(u.linePool)
	if n == 0 {
		return nil
	}
	s := u.linePool[n-1]
	u.linePool[n-1] = nil
	u.linePool = u.linePool[:n-1]
	return s[:0]
}

// accept enqueues the issued memory instruction. Caller checked canAccept.
// It is on the per-issue hot path: the coalesced-line buffer comes from the
// unit's pool, and the queue/table appends below are bounded by
// LDSTQueueCap/MaxPendingLoads, so steady state allocates nothing.
//
//gpulint:hotpath
func (u *ldstUnit) accept(w *Warp, wi *isa.WarpInstr, now uint64) {
	e := ldstEntry{warp: w, wi: *wi}
	w.cta.memRefs++ // queue entry holds the warp until popHead
	if wi.Op.IsGlobal() {
		e.lines = mem.Coalesce(u.takeLines(), wi, w.cta.AddrBase, u.sm.memCfg.LineBytes)
	}
	if wi.Op.WritesRegister() {
		tok := u.free[len(u.free)-1]
		u.free = u.free[:len(u.free)-1]
		n := len(e.lines)
		if !wi.Op.IsGlobal() {
			n = 1 // shared load: one logical completion
		}
		u.table[tok] = pendingLoad{
			warp: w, dst: wi.Dst, remaining: n, issued: now,
			atomic: wi.Op == isa.OpAtomicGlobal, inUse: true,
		}
		e.token = tok
		e.hasToken = true
		w.cta.memRefs++ // token holds the warp until the last transaction
		// The scoreboard holds the destination until the last
		// transaction returns.
		if wi.Dst != 0 {
			w.readyAt[wi.Dst] = notReady
		}
	}
	//gpulint:allow hotalloc queue append is bounded by LDSTQueueCap (canAccept gates entry); the backing array stops growing after the first few instructions
	u.queue = append(u.queue, e)
}

// tick advances the unit one cycle: ripe hit events first, then the head
// instruction.
func (u *ldstUnit) tick(now uint64) {
	for len(u.hits) > 0 && u.hits[0].at <= now {
		u.completeOne(u.hits[0].token, now)
		copy(u.hits, u.hits[1:])
		u.hits = u.hits[:len(u.hits)-1]
	}
	if len(u.queue) == 0 {
		return
	}
	e := &u.queue[0]
	switch {
	case !e.wi.Op.IsGlobal():
		u.tickShared(e, now)
	default:
		u.tickGlobal(e, now)
	}
}

func (u *ldstUnit) tickShared(e *ldstEntry, now uint64) {
	if e.finishAt == 0 {
		passes := uint64(e.wi.BankConflict)
		if passes == 0 {
			passes = 1
		}
		u.sm.Stats.SharedAccesses++
		u.sm.Stats.SharedConflictPasses += passes
		e.finishAt = now + passes
	}
	if now < e.finishAt {
		return
	}
	if e.hasToken {
		// Result arrives after the scratchpad latency.
		u.hits = append(u.hits, hitEvent{at: now + u.sm.cfg.SharedLatency, token: e.token})
	}
	u.popHead()
}

// tickGlobal sends the head instruction's next line transaction — the
// per-cycle step of the LDST issue path.
//
//gpulint:hotpath
func (u *ldstUnit) tickGlobal(e *ldstEntry, now uint64) {
	if e.next >= len(e.lines) {
		// Mask-empty access: nothing to send.
		if e.hasToken && len(e.lines) == 0 {
			u.completeOne(e.token, now)
		}
		u.popHead()
		return
	}
	line := e.lines[e.next]
	var res mem.AccessResult
	switch e.wi.Op {
	case isa.OpLoadGlobal:
		res = u.sm.l1.Load(line, e.token, now)
		if res == mem.AccessHit {
			//gpulint:allow hotalloc hits append is bounded by MaxPendingLoads (one event per outstanding token); the backing array reaches steady state immediately
			u.hits = append(u.hits, hitEvent{at: now + u.sm.memCfg.L1HitLatency, token: e.token})
		}
	case isa.OpStoreGlobal:
		res = u.sm.l1.Store(line, now)
	case isa.OpAtomicGlobal:
		res = u.sm.l1.Atomic(line, e.token, now)
	}
	if res == mem.AccessStall {
		u.sm.Stats.StallLDSTFull++
		return // retry same transaction next cycle
	}
	e.next++
	if e.next >= len(e.lines) {
		u.popHead()
	}
}

//gpulint:hotpath
func (u *ldstUnit) popHead() {
	cta := u.queue[0].warp.cta
	cta.memRefs--
	if cta.recycleArmed && cta.memRefs == 0 {
		cta.recycleArmed = false
		u.sm.poolCTA(cta)
	}
	if ln := u.queue[0].lines; ln != nil {
		//gpulint:allow hotalloc linePool append is bounded by the queue cap — it recycles at most LDSTQueueCap buffers, the opposite of a leak
		u.linePool = append(u.linePool, ln)
	}
	copy(u.queue, u.queue[1:])
	u.queue = u.queue[:len(u.queue)-1]
}

// onResponse routes a memory-system response: the L1 handles fills/merges
// and returns every token whose transaction completed.
func (u *ldstUnit) onResponse(resp mem.Response, now uint64) {
	tok := resp.Token
	atomic := false
	if int(tok) < len(u.table) && u.table[tok].inUse {
		atomic = u.table[tok].atomic
	}
	for _, t := range u.sm.l1.OnResponse(resp, atomic) {
		u.completeOne(t, now)
	}
}

// completeOne retires one transaction of pending load t; the last one
// releases the destination register.
func (u *ldstUnit) completeOne(t uint32, now uint64) {
	p := &u.table[t]
	if !p.inUse {
		panic("sm: completion for free pending-load slot")
	}
	p.remaining--
	if p.remaining > 0 {
		return
	}
	if p.dst != 0 {
		p.warp.readyAt[p.dst] = now
		p.warp.clearStall()
	}
	cta := p.warp.cta
	cta.memRefs--
	if cta.recycleArmed && cta.memRefs == 0 {
		cta.recycleArmed = false
		u.sm.poolCTA(cta)
	}
	u.sm.memLatencySum += now - p.issued
	u.sm.memLoadsDone++
	p.inUse = false
	u.free = append(u.free, t)
}

// busy reports whether any instruction or transaction is still in flight.
func (u *ldstUnit) busy() bool {
	return len(u.queue) > 0 || len(u.hits) > 0 || len(u.free) < len(u.table)
}

// nextEvent returns the earliest cycle >= now at which tick does work on
// its own: a ripe hit event (the hit list is pop-gated by its head, so the
// head's time is the exact bound) or the queued head instruction. A global
// head acts every cycle (it sends or retries a transaction, mutating stats
// either way); a shared op mid-flight sleeps until finishAt. Transactions
// parked in the pending table wake only on memory responses, which the
// system's own bound covers.
func (u *ldstUnit) nextEvent(now uint64) uint64 {
	next := uint64(NeverEvent)
	if len(u.hits) > 0 {
		if u.hits[0].at <= now {
			return now
		}
		next = u.hits[0].at
	}
	if len(u.queue) > 0 {
		e := &u.queue[0]
		if !e.wi.Op.IsGlobal() && e.finishAt > now {
			if e.finishAt < next {
				next = e.finishAt
			}
		} else {
			return now
		}
	}
	return next
}
