package sm

import (
	"testing"

	"gpusched/internal/isa"
)

// mkWarps builds n warps with distinct seq/CTA identities for direct
// scheduler tests.
func mkWarps(n int) []*Warp {
	ws := make([]*Warp, n)
	for i := range ws {
		ws[i] = &Warp{
			seq: uint64(i),
			cta: &CTA{Arrival: uint64(i), BlockKey: uint64(i)},
		}
	}
	return ws
}

func allReady(*Warp) (bool, skipReason)  { return true, skipNone }
func noneReady(*Warp) (bool, skipReason) { return false, skipScoreboard }

func TestLRRRotation(t *testing.T) {
	s := &scheduler{policy: PolicyLRR}
	ws := mkWarps(3)
	for _, w := range ws {
		s.add(w)
	}
	var picks []uint64
	for i := 0; i < 6; i++ {
		w, _ := s.pick(allReady)
		picks = append(picks, w.seq)
	}
	want := []uint64{0, 1, 2, 0, 1, 2}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("LRR picks = %v, want %v", picks, want)
		}
	}
}

func TestLRRSkipsUnready(t *testing.T) {
	s := &scheduler{policy: PolicyLRR}
	ws := mkWarps(3)
	for _, w := range ws {
		s.add(w)
	}
	ready := func(w *Warp) (bool, skipReason) {
		if w.seq == 1 {
			return false, skipScoreboard
		}
		return true, skipNone
	}
	seen := map[uint64]int{}
	for i := 0; i < 4; i++ {
		w, _ := s.pick(ready)
		seen[w.seq]++
	}
	if seen[1] != 0 || seen[0] != 2 || seen[2] != 2 {
		t.Fatalf("LRR distribution = %v", seen)
	}
}

func TestGTOGreedyPersistence(t *testing.T) {
	s := &scheduler{policy: PolicyGTO}
	ws := mkWarps(3)
	for _, w := range ws {
		s.add(w)
	}
	// First pick: oldest (seq 0). It stays greedy while ready.
	for i := 0; i < 3; i++ {
		w, _ := s.pick(allReady)
		if w.seq != 0 {
			t.Fatalf("pick %d = warp %d, want greedy warp 0", i, w.seq)
		}
	}
	// Greedy stalls: oldest ready wins and becomes the new greedy warp.
	ready := func(w *Warp) (bool, skipReason) {
		if w.seq == 0 {
			return false, skipScoreboard
		}
		return true, skipNone
	}
	w, _ := s.pick(ready)
	if w.seq != 1 {
		t.Fatalf("fallback pick = %d, want oldest ready 1", w.seq)
	}
	w, _ = s.pick(allReady)
	if w.seq != 1 {
		t.Fatalf("greedy did not switch: pick = %d, want 1", w.seq)
	}
}

func TestGTOStallAttributionUsesOldest(t *testing.T) {
	s := &scheduler{policy: PolicyGTO}
	for _, w := range mkWarps(2) {
		s.add(w)
	}
	w, reason := s.pick(noneReady)
	if w != nil || reason != skipScoreboard {
		t.Fatalf("pick = (%v, %v), want (nil, scoreboard)", w, reason)
	}
}

func TestBAWSInterleavesGangWarps(t *testing.T) {
	// Two CTAs of one gang (same BlockKey), two warps each. BAWS order:
	// (warpInCTA, indexInBlock): A0, B0, A1, B1.
	s := &scheduler{policy: PolicyBAWS}
	a := &CTA{BlockKey: 5, IndexInBlock: 0}
	bb := &CTA{BlockKey: 5, IndexInBlock: 1}
	warps := []*Warp{
		{seq: 0, cta: a, warpInCTA: 0},
		{seq: 1, cta: a, warpInCTA: 1},
		{seq: 2, cta: bb, warpInCTA: 0},
		{seq: 3, cta: bb, warpInCTA: 1},
	}
	for _, w := range warps {
		s.add(w)
	}
	var order []uint64
	remaining := map[uint64]bool{0: true, 1: true, 2: true, 3: true}
	ready := func(w *Warp) (bool, skipReason) {
		if remaining[w.seq] {
			return true, skipNone
		}
		return false, skipFinished
	}
	for len(remaining) > 0 {
		w, _ := s.pick(ready)
		order = append(order, w.seq)
		delete(remaining, w.seq)
		s.last = nil // disable greediness to observe pure age order
	}
	want := []uint64{0, 2, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("BAWS order = %v, want %v (gang interleave)", order, want)
		}
	}
}

func TestBAWSOlderBlockFirst(t *testing.T) {
	s := &scheduler{policy: PolicyBAWS}
	old := &Warp{seq: 9, cta: &CTA{BlockKey: 1, IndexInBlock: 1}, warpInCTA: 3}
	young := &Warp{seq: 1, cta: &CTA{BlockKey: 2, IndexInBlock: 0}, warpInCTA: 0}
	s.add(young)
	s.add(old)
	w, _ := s.pick(allReady)
	if w != old {
		t.Fatal("BAWS did not prioritize the older block")
	}
}

func TestSchedulerRemove(t *testing.T) {
	s := &scheduler{policy: PolicyLRR}
	ws := mkWarps(3)
	for _, w := range ws {
		s.add(w)
	}
	s.pick(allReady) // last = ws[0]
	s.remove(ws[0])
	if len(s.warps) != 2 {
		t.Fatalf("len = %d after remove", len(s.warps))
	}
	if s.last != nil {
		t.Fatal("remove did not clear last pointer")
	}
	w, _ := s.pick(allReady)
	if w == ws[0] {
		t.Fatal("removed warp picked")
	}
	// Removing a warp not present is a no-op.
	s.remove(ws[0])
	if len(s.warps) != 2 {
		t.Fatal("double remove changed list")
	}
}

func TestEmptySchedulerPick(t *testing.T) {
	s := &scheduler{policy: PolicyGTO}
	if w, reason := s.pick(allReady); w != nil || reason != skipNone {
		t.Fatalf("empty pick = (%v,%v)", w, reason)
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{
		PolicyLRR:  "lrr",
		PolicyGTO:  "gto",
		PolicyBAWS: "baws",
		Policy(9):  "policy?",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestAgeLess(t *testing.T) {
	cases := []struct {
		a, b [3]uint64
		want bool
	}{
		{[3]uint64{1, 0, 0}, [3]uint64{2, 9, 9}, true},
		{[3]uint64{2, 0, 0}, [3]uint64{1, 9, 9}, false},
		{[3]uint64{1, 1, 0}, [3]uint64{1, 2, 0}, true},
		{[3]uint64{1, 1, 3}, [3]uint64{1, 1, 4}, true},
		{[3]uint64{1, 1, 4}, [3]uint64{1, 1, 4}, false},
	}
	for _, c := range cases {
		if got := ageLess(c.a[0], c.a[1], c.a[2], c.b[0], c.b[1], c.b[2]); got != c.want {
			t.Errorf("ageLess(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestWarpStallCache(t *testing.T) {
	w := &Warp{cta: &CTA{}}
	w.cur = isa.WarpInstr{Op: isa.OpFAlu, Dst: 2, Src: [3]isa.Reg{1}, Mask: isa.FullMask}
	w.curValid = true
	w.readyAt[1] = 100
	if w.operandsReady(50) {
		t.Fatal("pending operand reported ready")
	}
	if w.stallUntil != 100 {
		t.Fatalf("stallUntil = %d, want 100", w.stallUntil)
	}
	if w.operandsReady(99) {
		t.Fatal("fast path let a stalled warp through")
	}
	if !w.operandsReady(100) {
		t.Fatal("warp not ready at readyAt")
	}
	// Memory-pending operand: cleared by clearStall.
	w.readyAt[1] = notReady
	w.stallUntil = 0
	if w.operandsReady(200) {
		t.Fatal("load-pending operand ready")
	}
	w.readyAt[1] = 150
	w.clearStall()
	if !w.operandsReady(200) {
		t.Fatal("clearStall did not unblock")
	}
}
