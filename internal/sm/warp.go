package sm

import (
	"gpusched/internal/isa"
	"gpusched/internal/kernel"
)

// notReady is the scoreboard sentinel for a register whose producing load
// has not yet returned.
const notReady = ^uint64(0)

// Warp is one resident warp context.
type Warp struct {
	// seq is the core-unique warp number, the final age tie-breaker.
	seq uint64
	// cta is the owning resident CTA.
	cta *CTA
	// warpInCTA is the warp's index within its CTA.
	warpInCTA int

	// sched is the owning issue slot, so state transitions (load return,
	// barrier arrival/release) can maintain its blocked-warp accounting
	// without a scan.
	sched *scheduler

	prog     isa.Program
	cur      isa.WarpInstr
	curValid bool

	finished  bool
	atBarrier bool
	// blockedMem marks a warp whose scoreboard stall is a pending memory
	// result (stallUntil == notReady): it cannot issue until a response
	// arrives, never merely by time passing. Together with atBarrier it
	// feeds scheduler.longBlocked, the transition-maintained count that
	// lets pick and the fast-forward probe skip scanning parked warps.
	blockedMem bool

	// readyAt[r] is the cycle register r's pending write completes;
	// 0 means no write pending. Register 0 is hardwired ready.
	readyAt [isa.MaxRegs]uint64
	// stallUntil caches the cycle the current instruction's operands all
	// become ready, so schedulers skip scoreboard-stalled warps with one
	// compare. A pending load contributes notReady; the LDST unit clears
	// the cache when the load returns.
	stallUntil uint64
}

// clearStall invalidates the scoreboard fast-path (called on load return)
// and moves the warp out of its scheduler's long-blocked set.
func (w *Warp) clearStall() {
	w.stallUntil = 0
	if w.blockedMem {
		w.blockedMem = false
		w.sched.longBlocked--
	}
}

// fetch ensures cur holds the next unissued instruction. Returns false when
// the program is exhausted (treated as an implicit exit).
func (w *Warp) fetch() bool {
	if w.curValid {
		return true
	}
	if w.prog.Next(&w.cur) {
		w.curValid = true
		return true
	}
	return false
}

// operandsReady reports whether cur's sources and destination are free of
// pending writes at cycle now. On failure it records when the operands will
// all be ready in stallUntil.
func (w *Warp) operandsReady(now uint64) bool {
	if w.stallUntil > now {
		return false
	}
	wi := &w.cur
	blocked := uint64(0)
	for _, r := range wi.Src {
		if r != 0 && w.readyAt[r] > blocked {
			blocked = w.readyAt[r]
		}
	}
	if wi.Dst != 0 && w.readyAt[wi.Dst] > blocked {
		blocked = w.readyAt[wi.Dst]
	}
	if blocked > now {
		w.stallUntil = blocked
		return false
	}
	return true
}

// CTAState is a resident CTA's position in the preemption lifecycle.
type CTAState uint8

const (
	// CTARunning is the normal state: warps issue freely.
	CTARunning CTAState = iota
	// CTADraining means a preemption drain is in progress: the CTA's warps
	// issue no further instructions, and the CTA leaves the core as soon as
	// its in-flight memory work (memRefs) reaches zero.
	CTADraining
	// CTAEvicted marks a CTA drained off its core before completing. The
	// object is no longer resident; the dispatcher re-dispatches the CTA id
	// from scratch (redone work is the preemption cost this model charges).
	CTAEvicted
)

// CTA is one resident cooperative thread array on an SM.
type CTA struct {
	// Spec is the launched kernel.
	Spec *kernel.Spec
	// KernelIdx identifies the kernel within the GPU's launch table
	// (stats routing and address-space selection).
	KernelIdx int
	// ID is the linear CTA index within the grid.
	ID int
	// AddrBase is the kernel's global-address-space offset; lane addresses
	// are 32-bit offsets into it.
	AddrBase uint64
	// Arrival is the cycle the CTA was placed on the SM — the GTO age.
	Arrival uint64
	// BlockKey is the BAWS age: equal for all CTAs dispatched as one BCS
	// block. Under non-BCS dispatch it equals Arrival.
	BlockKey uint64
	// IndexInBlock orders CTAs within a BCS block.
	IndexInBlock int
	// Issued counts instructions issued by this CTA's warps — the LCS probe.
	Issued uint64

	warps     []*Warp
	liveWarps int
	barCount  int
	// state is the preemption lifecycle position (see CTAState).
	state CTAState
	// memRefs counts live LDST references to this CTA's warps: one per
	// queued memory instruction (accept→popHead) plus one per outstanding
	// pending-load token (accept→final completeOne). A draining CTA may be
	// evicted only at memRefs == 0 — no later response can then touch a
	// warp that is gone.
	memRefs int
	// recycleArmed marks a CTA whose retirement was committed while memory
	// work was still in flight (a trailing store): the LDST unit pools the
	// context when the last reference drains. See SM.Recycle.
	recycleArmed bool
}

// State returns the CTA's preemption lifecycle state.
func (c *CTA) State() CTAState { return c.state }

// Live returns the number of warps that have not exited.
func (c *CTA) Live() int { return c.liveWarps }

// Warps exposes the CTA's warp contexts (tests and probes).
func (c *CTA) Warps() []*Warp { return c.warps }
