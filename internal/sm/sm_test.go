package sm

import (
	"testing"

	"gpusched/internal/isa"
	"gpusched/internal/kernel"
	"gpusched/internal/mem"
)

// rig wires one SM to a private memory system and drives the cycle loop the
// way the GPU front-end does.
type rig struct {
	t    *testing.T
	sm   *SM
	sys  *mem.System
	now  uint64
	done []*CTA
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	memCfg := mem.DefaultConfig()
	sys := mem.NewSystem(&memCfg, 1)
	r := &rig{t: t, sys: sys}
	r.sm = New(0, &cfg, sys, 4, func(core int, cta *CTA) {
		r.done = append(r.done, cta)
	})
	return r
}

func (r *rig) step() {
	r.sm.Tick(r.now)
	r.sys.Tick(r.now)
	r.now++
}

// runUntilDone advances until n CTAs completed or the deadline passes.
func (r *rig) runUntilDone(n int, deadline uint64) {
	for r.now < deadline {
		if len(r.done) >= n {
			return
		}
		r.step()
	}
	r.t.Fatalf("only %d/%d CTAs completed by cycle %d", len(r.done), n, deadline)
}

// specWith builds a one-size kernel whose every warp runs the given program.
func specWith(warps int, prog func(ctaID, warpInCTA int) isa.Program) *kernel.Spec {
	return &kernel.Spec{
		Name:          "test",
		Grid:          kernel.Dim3{X: 64},
		Block:         kernel.Dim3{X: warps * isa.WarpSize},
		RegsPerThread: 16,
		Program:       prog,
	}
}

func fixedProg(b *isa.Builder) func(int, int) isa.Program {
	instrs := b.Build().Instrs
	return func(ctaID, warpInCTA int) isa.Program {
		return &isa.SliceProgram{Instrs: instrs}
	}
}

func TestALUChainLatency(t *testing.T) {
	// 10 dependent FALU ops: each must wait ALULatency for the previous.
	r := newRig(t, nil)
	b := isa.NewBuilder()
	for i := 0; i < 10; i++ {
		b.FAlu(1, 1)
	}
	b.Exit()
	spec := specWith(1, fixedProg(b))
	r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 10000)
	lat := r.sm.cfg.ALULatency
	wantMin := uint64(9) * lat // 9 dependence edges
	if r.now < wantMin {
		t.Fatalf("chain finished at %d, want >= %d", r.now, wantMin)
	}
	if r.sm.Stats.InstrIssued != 11 {
		t.Fatalf("issued %d, want 11", r.sm.Stats.InstrIssued)
	}
	if r.sm.Stats.StallScoreboard == 0 {
		t.Fatal("dependence chain produced no scoreboard stalls")
	}
}

func TestIndependentWarpsHideLatency(t *testing.T) {
	// Plenty of independent warps: issue slots stay busy, so total time is
	// far below warps x chain-latency.
	chained := func(n int) *kernel.Spec {
		b := isa.NewBuilder()
		for i := 0; i < n; i++ {
			b.FAlu(1, 1)
		}
		b.Exit()
		return specWith(8, fixedProg(b))
	}
	r := newRig(t, nil)
	spec := chained(20)
	r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 100000)
	serial := uint64(8*20) * r.sm.cfg.ALULatency
	if r.now >= serial/2 {
		t.Fatalf("8 warps took %d cycles; latency not hidden (serial bound %d)", r.now, serial)
	}
}

func TestDualIssue(t *testing.T) {
	// Two schedulers with abundant independent work approach 2 IPC.
	r := newRig(t, nil)
	b := isa.NewBuilder()
	for i := 0; i < 50; i++ {
		b.IAlu(isa.Reg(1+i%8), 0) // independent (distinct dsts, src r0)
	}
	b.Exit()
	spec := specWith(8, fixedProg(b))
	r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 100000)
	ipc := float64(r.sm.Stats.InstrIssued) / float64(r.now)
	if ipc < 1.5 {
		t.Fatalf("IPC = %.2f, want near 2 with dual schedulers", ipc)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Warp 0 does long work before the barrier; warp 1 none. Warp 1's
	// post-barrier instruction must not issue before warp 0 arrives.
	work := 40
	prog := func(ctaID, warpInCTA int) isa.Program {
		b := isa.NewBuilder()
		if warpInCTA == 0 {
			for i := 0; i < work; i++ {
				b.FAlu(1, 1) // dependent chain: slow
			}
		}
		b.Barrier()
		b.IAlu(2, 0)
		b.Exit()
		return b.Build()
	}
	r := newRig(t, nil)
	r.sm.AddCTA(specWith(2, prog), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 100000)
	minSlowArrival := uint64(work-1) * r.sm.cfg.ALULatency
	if r.now < minSlowArrival {
		t.Fatalf("CTA done at %d, before slow warp could reach barrier (%d)", r.now, minSlowArrival)
	}
	if r.sm.Stats.StallBarrier == 0 {
		t.Fatal("no barrier stalls recorded")
	}
}

func TestCTACompletionFreesResources(t *testing.T) {
	r := newRig(t, nil)
	spec := specWith(2, fixedProg(isa.NewBuilder().IAlu(1, 0).Exit()))
	r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	if r.sm.ResidentCTAs() != 1 || r.sm.Usage().Warps != 2 {
		t.Fatalf("resident = %d, usage = %+v", r.sm.ResidentCTAs(), r.sm.Usage())
	}
	r.runUntilDone(1, 10000)
	if r.sm.ResidentCTAs() != 0 || r.sm.Usage().Warps != 0 {
		t.Fatalf("resources not freed: usage = %+v", r.sm.Usage())
	}
	if len(r.done) != 1 || r.done[0].ID != 0 {
		t.Fatalf("completion callback got %+v", r.done)
	}
	if !r.sm.Idle() {
		t.Fatal("SM not idle after completion")
	}
}

func TestOccupancyEnforced(t *testing.T) {
	r := newRig(t, nil)
	spec := specWith(8, fixedProg(isa.NewBuilder().Barrier().Exit())) // 256 thr
	for i := 0; i < 6; i++ {                                          // 1536/256 = 6 fit
		if !r.sm.CanAccept(spec) {
			t.Fatalf("CTA %d rejected early", i)
		}
		r.sm.AddCTA(spec, 0, i, 0, 0, 0, r.now)
	}
	if r.sm.CanAccept(spec) {
		t.Fatal("7th CTA accepted past thread limit")
	}
	defer func() {
		if recover() == nil {
			t.Error("AddCTA past capacity did not panic")
		}
	}()
	r.sm.AddCTA(spec, 0, 99, 0, 0, 0, r.now)
}

func TestLoadMissBlocksDependent(t *testing.T) {
	r := newRig(t, nil)
	b := isa.NewBuilder().
		LoadGlobal(1, 0).
		FAlu(2, 1). // depends on load
		Exit()
	r.sm.AddCTA(specWith(1, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 20000)
	memCfg := r.sys.Config()
	wantMin := 2*memCfg.XbarLatency + memCfg.L2Latency
	if r.now < wantMin {
		t.Fatalf("load+use finished at %d, faster than the memory system allows (%d)", r.now, wantMin)
	}
	if r.sm.L1Stats().Misses != 1 {
		t.Fatalf("L1 misses = %d, want 1", r.sm.L1Stats().Misses)
	}
	if r.sm.AvgMemLatency() <= 0 {
		t.Fatal("memory latency not recorded")
	}
}

func TestLoadHitFast(t *testing.T) {
	r := newRig(t, nil)
	b := isa.NewBuilder().
		LoadGlobal(1, 0).
		FAlu(2, 1).
		LoadGlobal(3, 0). // same line: L1 hit
		FAlu(4, 3).
		Exit()
	r.sm.AddCTA(specWith(1, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 20000)
	if r.sm.L1Stats().Hits != 1 {
		t.Fatalf("L1 hits = %d, want 1", r.sm.L1Stats().Hits)
	}
}

func TestDivergentLoadOccupiesLDST(t *testing.T) {
	// A 32-line divergent load issues one transaction per cycle; a
	// same-CTA second warp's memory op must queue behind it.
	r := newRig(t, nil)
	var addrs [isa.WarpSize]uint32
	for i := range addrs {
		addrs[i] = uint32(i * 4096) // distinct lines, same partition spread
	}
	b := isa.NewBuilder().LoadGlobalAddrs(1, addrs).FAlu(2, 1).Exit()
	r.sm.AddCTA(specWith(1, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 50000)
	l1 := r.sm.L1Stats()
	if l1.Accesses != 32 {
		t.Fatalf("L1 accesses = %d, want 32 transactions", l1.Accesses)
	}
}

func TestPredicatedOffMemOp(t *testing.T) {
	r := newRig(t, nil)
	b := isa.NewBuilder()
	b.Append(isa.WarpInstr{Op: isa.OpLoadGlobal, Dst: 1, Mask: 0})
	b.FAlu(2, 1).Exit()
	r.sm.AddCTA(specWith(1, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 10000)
	if r.sm.L1Stats().Accesses != 0 {
		t.Fatal("mask-0 load reached the L1")
	}
}

func TestSharedMemoryLatencyAndConflicts(t *testing.T) {
	run := func(conflict uint8) uint64 {
		r := newRig(t, nil)
		b := isa.NewBuilder()
		for i := 0; i < 16; i++ {
			b.LoadShared(1, 0, conflict)
		}
		b.Exit()
		r.sm.AddCTA(specWith(1, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
		r.runUntilDone(1, 100000)
		return r.now
	}
	free := run(1)
	conflicted := run(8)
	if conflicted <= free {
		t.Fatalf("8-way conflict (%d cycles) not slower than conflict-free (%d)", conflicted, free)
	}
}

func TestSFUInitiationInterval(t *testing.T) {
	// Independent SFU ops from many warps: throughput capped by interval.
	r := newRig(t, nil)
	b := isa.NewBuilder()
	for i := 0; i < 10; i++ {
		b.Sfu(isa.Reg(1+i%8), 0)
	}
	b.Exit()
	spec := specWith(8, fixedProg(b))
	r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 100000)
	// 80 SFU ops on 2 schedulers with interval 8 -> at least 80/2*8 cycles.
	wantMin := uint64(80/2) * r.sm.cfg.SFUInterval
	if r.now < wantMin/2 {
		t.Fatalf("SFU burst took %d cycles, interval not enforced (bound %d)", r.now, wantMin)
	}
}

func TestWAWBlocksIssue(t *testing.T) {
	r := newRig(t, nil)
	b := isa.NewBuilder().
		LoadGlobal(1, 0). // long-latency write to r1
		FAlu(1, 2).       // WAW on r1 must wait
		Exit()
	r.sm.AddCTA(specWith(1, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 20000)
	memCfg := r.sys.Config()
	if r.now < memCfg.XbarLatency*2 {
		t.Fatalf("WAW hazard ignored: done at %d", r.now)
	}
}

func TestGTOPrioritizesOlderCTA(t *testing.T) {
	// Two CTAs with long programs, added at different cycles. Under GTO the
	// older CTA should complete first and have issued the bulk of early
	// instructions.
	r := newRig(t, func(c *Config) { c.WarpPolicy = PolicyGTO; c.NumSchedulers = 1 })
	longProg := func() *kernel.Spec {
		b := isa.NewBuilder()
		for i := 0; i < 200; i++ {
			b.IAlu(isa.Reg(1+i%4), 0)
		}
		b.Exit()
		return specWith(2, fixedProg(b))
	}
	spec := longProg()
	r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	r.step()
	r.sm.AddCTA(spec, 0, 1, 0, 1, 0, r.now)
	r.runUntilDone(1, 100000)
	if r.done[0].ID != 0 {
		t.Fatalf("younger CTA %d finished first under GTO", r.done[0].ID)
	}
}

func TestLRRSharesIssueSlots(t *testing.T) {
	// Under LRR both CTAs progress together: completion times are close.
	r := newRig(t, func(c *Config) { c.WarpPolicy = PolicyLRR; c.NumSchedulers = 1 })
	b := isa.NewBuilder()
	for i := 0; i < 200; i++ {
		b.IAlu(isa.Reg(1+i%4), 0)
	}
	b.Exit()
	spec := specWith(2, fixedProg(b))
	r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	r.sm.AddCTA(spec, 0, 1, 0, 0, 0, r.now)
	var doneAt []uint64
	for r.now < 100000 && len(r.done) < 2 {
		before := len(r.done)
		r.step()
		if len(r.done) > before {
			doneAt = append(doneAt, r.now)
		}
	}
	if len(doneAt) != 2 {
		t.Fatal("CTAs did not finish")
	}
	gap := doneAt[1] - doneAt[0]
	if gap > doneAt[0]/4 {
		t.Fatalf("LRR completion gap %d too large (first at %d)", gap, doneAt[0])
	}
}

func TestBAWSInterleavesBlock(t *testing.T) {
	// Three CTAs: 0 and 1 form a block (same BlockKey, older), 2 is newer.
	// Under BAWS, CTA 1 (same block as 0) outranks... the key property:
	// block members share the block age, so CTA 1 issues ahead of CTA 2
	// even though CTA 2 has an older per-CTA arrival.
	r := newRig(t, func(c *Config) { c.WarpPolicy = PolicyBAWS; c.NumSchedulers = 1 })
	b := isa.NewBuilder()
	for i := 0; i < 100; i++ {
		b.IAlu(isa.Reg(1+i%4), 0)
	}
	b.Exit()
	spec := specWith(1, fixedProg(b))
	// CTA 2 arrives first but with a later block key.
	r.sm.AddCTA(spec, 0, 2, 0, 10, 0, r.now)
	r.sm.AddCTA(spec, 0, 0, 0, 5, 0, r.now)
	r.sm.AddCTA(spec, 0, 1, 0, 5, 1, r.now)
	r.runUntilDone(3, 100000)
	order := []int{r.done[0].ID, r.done[1].ID, r.done[2].ID}
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("BAWS completion order = %v, want [0 1 2]", order)
	}
}

func TestEarlyExitDoesNotDeadlockBarrier(t *testing.T) {
	// Warp 0 exits before the barrier warp 1 waits at: warp 1 must still be
	// released (defensive behaviour for malformed kernels).
	prog := func(ctaID, warpInCTA int) isa.Program {
		b := isa.NewBuilder()
		if warpInCTA == 0 {
			b.Exit()
		} else {
			b.Barrier().IAlu(1, 0).Exit()
		}
		return b.Build()
	}
	r := newRig(t, nil)
	r.sm.AddCTA(specWith(2, prog), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 10000)
}

func TestPerCTAIssueCounters(t *testing.T) {
	r := newRig(t, nil)
	b := isa.NewBuilder().IAlu(1, 0).IAlu(2, 0).Exit()
	spec := specWith(1, fixedProg(b))
	cta := r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 10000)
	if cta.Issued != 3 {
		t.Fatalf("CTA issued = %d, want 3", cta.Issued)
	}
	if r.sm.KernelIssued[0] != 3 {
		t.Fatalf("kernel bucket = %d, want 3", r.sm.KernelIssued[0])
	}
}

func TestStoreDoesNotBlockWarp(t *testing.T) {
	// Stores are fire-and-forget: the warp retires without waiting for the
	// write to reach DRAM.
	r := newRig(t, nil)
	b := isa.NewBuilder().StoreGlobal(1, 0).Exit()
	r.sm.AddCTA(specWith(1, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 200)
}

func TestTwoLevelBarrierNoDeadlock(t *testing.T) {
	// Regression: with more warps than the active set, warps parked in
	// the pending set must still reach the barrier (barrier-blocked
	// active warps get swapped out, or the CTA deadlocks).
	r := newRig(t, func(c *Config) {
		c.WarpPolicy = PolicyTwoLevel
		c.ActiveSetSize = 2
		c.NumSchedulers = 1
	})
	b := isa.NewBuilder().IAlu(1, 0).Barrier().IAlu(2, 0).Barrier().Exit()
	r.sm.AddCTA(specWith(8, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 100000)
}

func TestTwoLevelSwapsOnMemoryStall(t *testing.T) {
	// One long-latency load per warp with 8 warps and a 2-wide active
	// set: progress requires demoting memory-blocked warps.
	r := newRig(t, func(c *Config) {
		c.WarpPolicy = PolicyTwoLevel
		c.ActiveSetSize = 2
		c.NumSchedulers = 1
	})
	prog := func(ctaID, w int) isa.Program {
		return isa.NewBuilder().
			LoadGlobal(1, uint32(w*4096)).
			FAlu(2, 1).
			Exit().Build()
	}
	r.sm.AddCTA(specWith(8, prog), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 100000)
}

func TestMixedKernelsResidentCounts(t *testing.T) {
	r := newRig(t, nil)
	spec := specWith(2, fixedProg(isa.NewBuilder().Barrier().Exit()))
	r.sm.AddCTA(spec, 0, 0, 0, 0, 0, r.now)
	r.sm.AddCTA(spec, 1, 1, 1<<32, 0, 0, r.now)
	r.sm.AddCTA(spec, 1, 2, 1<<32, 0, 0, r.now)
	if r.sm.ResidentOf(0) != 1 || r.sm.ResidentOf(1) != 2 {
		t.Fatalf("ResidentOf = (%d,%d), want (1,2)",
			r.sm.ResidentOf(0), r.sm.ResidentOf(1))
	}
}
