package sm

import (
	"testing"

	"gpusched/internal/isa"
)

func TestPendingTableExhaustionStalls(t *testing.T) {
	// With one pending-load slot, the second outstanding load must wait
	// for the first to complete, yet everything still finishes.
	r := newRig(t, func(c *Config) {
		c.MaxPendingLoads = 1
		c.NumSchedulers = 1
	})
	prog := func(ctaID, w int) isa.Program {
		return isa.NewBuilder().
			LoadGlobal(1, uint32(w)*4096).
			LoadGlobal(2, uint32(w)*4096+65536).
			FAlu(3, 1, 2).
			Exit().Build()
	}
	r.sm.AddCTA(specWith(4, prog), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 50000)
	if r.sm.Stats.StallLDSTFull == 0 && r.sm.Stats.StallScoreboard == 0 {
		t.Error("no structural pressure recorded with a 1-entry pending table")
	}
}

func TestLDSTQueueFullStallsCounted(t *testing.T) {
	// A 1-deep LDST queue with divergent (multi-transaction) loads from
	// many warps must reject issue attempts while the head drains.
	r := newRig(t, func(c *Config) {
		c.LDSTQueueCap = 1
		c.NumSchedulers = 1
	})
	prog := func(ctaID, w int) isa.Program {
		b := isa.NewBuilder()
		for i := 0; i < 3; i++ {
			// 16 lines per load: head occupies the unit 16 cycles.
			b.LoadGlobalStride(isa.Reg(1+i), uint32(w*1<<20+i*1<<18), 256)
		}
		b.Exit()
		return b.Build()
	}
	r.sm.AddCTA(specWith(4, prog), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 100000)
	if r.sm.Stats.StallLDSTFull == 0 {
		t.Fatal("no LDST-full stalls with a 1-deep queue and divergent loads")
	}
}

func TestSharedStoreNoToken(t *testing.T) {
	// Shared stores write no register: they must not consume pending-load
	// slots. With zero slots needed, a store-only kernel runs even with
	// MaxPendingLoads exhausted by design.
	r := newRig(t, func(c *Config) { c.MaxPendingLoads = 1 })
	b := isa.NewBuilder()
	for i := 0; i < 10; i++ {
		b.StoreShared(1, 0, 1)
	}
	b.Exit()
	r.sm.AddCTA(specWith(2, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 20000)
	// Stores are fire-and-forget: drain the LDST queue after CTA exit.
	for i := 0; i < 200; i++ {
		r.step()
	}
	if r.sm.Stats.SharedAccesses != 20 {
		t.Fatalf("shared accesses = %d, want 20", r.sm.Stats.SharedAccesses)
	}
}

func TestGlobalStoreBandwidthCounted(t *testing.T) {
	r := newRig(t, nil)
	b := isa.NewBuilder()
	for i := 0; i < 4; i++ {
		b.StoreGlobal(1, uint32(i*128))
	}
	b.Exit()
	r.sm.AddCTA(specWith(1, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
	// Stores are fire-and-forget; drain the memory system too.
	for r.now < 5000 {
		r.step()
	}
	dram := r.sys.DRAMStats()
	if dram.Writes != 4 {
		t.Fatalf("DRAM writes = %d, want 4 (write-through, no-allocate)", dram.Writes)
	}
}

func TestAtomicSerializationCost(t *testing.T) {
	// All warps atomically update the same line: completion must be far
	// slower than the same pattern with plain loads (L2 RMW occupancy).
	run := func(op isa.Op) uint64 {
		r := newRig(t, func(c *Config) { c.NumSchedulers = 1 })
		prog := func(ctaID, w int) isa.Program {
			b := isa.NewBuilder()
			var addrs [isa.WarpSize]uint32
			for l := range addrs {
				addrs[l] = 0 // everyone hits line 0
			}
			for i := 0; i < 4; i++ {
				if op == isa.OpAtomicGlobal {
					b.Atomic(1, addrs, isa.FullMask)
				} else {
					b.LoadGlobalAddrs(1, addrs)
				}
				b.FAlu(2, 1)
			}
			b.Exit()
			return b.Build()
		}
		r.sm.AddCTA(specWith(8, prog), 0, 0, 0, 0, 0, r.now)
		r.runUntilDone(1, 200000)
		return r.now
	}
	atomics := run(isa.OpAtomicGlobal)
	loads := run(isa.OpLoadGlobal)
	if atomics <= loads {
		t.Fatalf("contended atomics (%d cycles) not slower than loads (%d)", atomics, loads)
	}
}

func TestActiveCycleAccounting(t *testing.T) {
	r := newRig(t, nil)
	// Idle core accumulates no active cycles.
	for i := 0; i < 100; i++ {
		r.step()
	}
	if r.sm.Stats.ActiveCycles != 0 {
		t.Fatalf("idle core recorded %d active cycles", r.sm.Stats.ActiveCycles)
	}
	b := isa.NewBuilder().IAlu(1, 0).Exit()
	r.sm.AddCTA(specWith(1, fixedProg(b)), 0, 0, 0, 0, 0, r.now)
	r.runUntilDone(1, 1000)
	if r.sm.Stats.ActiveCycles == 0 {
		t.Fatal("busy core recorded no active cycles")
	}
}
