package kernel

import (
	"testing"
	"testing/quick"

	"gpusched/internal/isa"
)

func validSpec() *Spec {
	return &Spec{
		Name:            "k",
		Grid:            Dim3{X: 10, Y: 1, Z: 1},
		Block:           Dim3{X: 128, Y: 1, Z: 1},
		RegsPerThread:   16,
		SharedMemPerCTA: 0,
		Program: func(ctaID, warpInCTA int) isa.Program {
			return isa.NewBuilder().Exit().Build()
		},
	}
}

func TestDim3Count(t *testing.T) {
	cases := []struct {
		d    Dim3
		want int
	}{
		{Dim3{X: 4, Y: 3, Z: 2}, 24},
		{Dim3{X: 5}, 5},       // zero components treated as 1
		{Dim3{X: 0, Y: 0}, 1}, // fully empty still counts one element
		{Dim3{X: 7, Y: 1, Z: 1}, 7},
	}
	for _, c := range cases {
		if got := c.d.Count(); got != c.want {
			t.Errorf("%v.Count() = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDim3LinearCoordRoundTrip(t *testing.T) {
	d := Dim3{X: 5, Y: 3, Z: 2}
	for i := 0; i < d.Count(); i++ {
		c := d.Coord(i)
		if got := d.Linear(c); got != i {
			t.Fatalf("Linear(Coord(%d)) = %d", i, got)
		}
		if c.X < 0 || c.X >= 5 || c.Y < 0 || c.Y >= 3 || c.Z < 0 || c.Z >= 2 {
			t.Fatalf("Coord(%d) = %v out of bounds", i, c)
		}
	}
}

func TestDim3RoundTripProperty(t *testing.T) {
	f := func(x, y, z uint8, idx uint16) bool {
		d := Dim3{X: int(x%9) + 1, Y: int(y%9) + 1, Z: int(z%9) + 1}
		i := int(idx) % d.Count()
		return d.Linear(d.Coord(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"empty grid", func(s *Spec) { s.Grid = Dim3{X: -1} }},
		{"ragged block", func(s *Spec) { s.Block = Dim3{X: 100} }},
		{"regs too high", func(s *Spec) { s.RegsPerThread = isa.MaxRegs + 1 }},
		{"negative regs", func(s *Spec) { s.RegsPerThread = -1 }},
		{"negative shmem", func(s *Spec) { s.SharedMemPerCTA = -4 }},
		{"nil program", func(s *Spec) { s.Program = nil }},
	}
	for _, m := range mutations {
		s := validSpec()
		m.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", m.name)
		}
	}
}

func TestSpecDerivedCounts(t *testing.T) {
	s := validSpec()
	s.Block = Dim3{X: 32, Y: 8, Z: 1} // 256 threads
	if got := s.ThreadsPerCTA(); got != 256 {
		t.Errorf("ThreadsPerCTA = %d, want 256", got)
	}
	if got := s.WarpsPerCTA(); got != 8 {
		t.Errorf("WarpsPerCTA = %d, want 8", got)
	}
	s.Grid = Dim3{X: 6, Y: 7, Z: 1}
	if got := s.NumCTAs(); got != 42 {
		t.Errorf("NumCTAs = %d, want 42", got)
	}
}

func fermiLimits() CoreLimits {
	return CoreLimits{
		MaxThreads:     1536,
		MaxCTAs:        8,
		MaxWarps:       48,
		Registers:      32768,
		SharedMemBytes: 48 * 1024,
	}
}

func TestMaxResidentBindingConstraints(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*Spec)
		wantN   int
		wantWhy string
	}{
		{"cta slots bind small blocks", func(s *Spec) {
			s.Block = Dim3{X: 32}
			s.RegsPerThread = 8
		}, 8, "cta-slots"},
		{"threads bind large blocks", func(s *Spec) {
			s.Block = Dim3{X: 512}
			s.RegsPerThread = 8
		}, 3, "threads"},
		{"registers bind fat threads", func(s *Spec) {
			s.Block = Dim3{X: 256}
			s.RegsPerThread = 63
		}, 2, "registers"},
		{"shared memory binds", func(s *Spec) {
			s.Block = Dim3{X: 64}
			s.RegsPerThread = 8
			s.SharedMemPerCTA = 16 * 1024
		}, 3, "shared-mem"},
	}
	for _, c := range cases {
		s := validSpec()
		c.mut(s)
		n, why := fermiLimits().MaxResident(s)
		if n != c.wantN || why != c.wantWhy {
			t.Errorf("%s: MaxResident = (%d,%q), want (%d,%q)",
				c.name, n, why, c.wantN, c.wantWhy)
		}
	}
}

func TestMaxResidentZeroFit(t *testing.T) {
	s := validSpec()
	s.SharedMemPerCTA = 64 * 1024 // exceeds 48KB scratchpad
	n, _ := fermiLimits().MaxResident(s)
	if n != 0 {
		t.Errorf("MaxResident = %d, want 0 for oversized CTA", n)
	}
}

func TestMaxResidentAlwaysFits(t *testing.T) {
	// Property: the occupancy result, when added to empty usage, fits; one
	// more CTA does not.
	f := func(blockWarps, regs, shmemKB uint8) bool {
		s := validSpec()
		s.Block = Dim3{X: (int(blockWarps%16) + 1) * 32}
		s.RegsPerThread = int(regs%48) + 1
		s.SharedMemPerCTA = int(shmemKB%48) * 1024
		l := fermiLimits()
		n, _ := l.MaxResident(s)
		if n == 0 {
			return true
		}
		var u Usage
		if !u.Add(s, n).Fits(l) {
			return false
		}
		return !u.Add(s, n+1).Fits(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUsageAccumulation(t *testing.T) {
	s := validSpec()
	s.Block = Dim3{X: 128}
	s.RegsPerThread = 20
	s.SharedMemPerCTA = 1024
	u := Usage{}.Add(s, 3)
	if u.CTAs != 3 || u.Threads != 384 || u.Warps != 12 ||
		u.Registers != 3*20*128 || u.SharedMem != 3072 {
		t.Errorf("unexpected usage %+v", u)
	}
}

func TestUsageMixedKernelsFit(t *testing.T) {
	a := validSpec()
	a.Block = Dim3{X: 256}
	a.RegsPerThread = 16
	b := validSpec()
	b.Block = Dim3{X: 128}
	b.RegsPerThread = 16
	l := fermiLimits()
	u := Usage{}.Add(a, 3).Add(b, 2)
	// 3*256 + 2*128 = 1024 threads, 5 CTAs, 28 warps, 20480 regs.
	if !u.Fits(l) {
		t.Fatalf("mixed usage %+v should fit %+v", u, l)
	}
	if u.Add(a, 3).Fits(l) {
		t.Fatalf("usage %+v should exceed thread limit", u.Add(a, 3))
	}
}
