// Package kernel models CUDA-style kernels: a grid of cooperative thread
// arrays (CTAs), each CTA a fixed-shape block of threads grouped into warps.
// It also owns the occupancy arithmetic — how many CTAs of a kernel fit on
// one SM given its thread, register, shared-memory, and CTA-slot limits —
// which is the resource model every CTA-scheduling policy negotiates with.
package kernel

import (
	"fmt"

	"gpusched/internal/isa"
)

// Dim3 is a CUDA-style three-component extent. Unused components are 1.
type Dim3 struct {
	X, Y, Z int
}

// Count returns the total number of elements in the extent. Unset (zero)
// components count as 1; a negative component makes the extent invalid and
// Count returns 0.
func (d Dim3) Count() int {
	if d.X < 0 || d.Y < 0 || d.Z < 0 {
		return 0
	}
	return max1(d.X) * max1(d.Y) * max1(d.Z)
}

// String renders the extent in CUDA launch syntax.
func (d Dim3) String() string {
	return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z)
}

// Linear returns the row-major linear index of coordinate c within d.
func (d Dim3) Linear(c Dim3) int {
	return (c.Z*max1(d.Y)+c.Y)*max1(d.X) + c.X
}

// Coord returns the coordinate of linear index i within d (inverse of Linear).
func (d Dim3) Coord(i int) Dim3 {
	x := max1(d.X)
	y := max1(d.Y)
	return Dim3{X: i % x, Y: (i / x) % y, Z: i / (x * y)}
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// ProgramFactory constructs the instruction stream for one warp of one CTA.
// ctaID is the linear CTA index within the grid; warpInCTA the warp's index
// within its CTA. Factories must be deterministic in their arguments.
type ProgramFactory func(ctaID, warpInCTA int) isa.Program

// Spec describes one kernel launch: its shape, per-CTA resource appetite,
// and the program generator. Specs are immutable once launched.
type Spec struct {
	// Name identifies the kernel in stats and reports.
	Name string
	// Grid is the CTA grid extent.
	Grid Dim3
	// Block is the per-CTA thread extent. Count must be a multiple of the
	// warp size (the simulator does not model partially-filled warps; real
	// kernels with ragged blocks round up, which only pads occupancy).
	Block Dim3
	// RegsPerThread is the architectural register demand per thread.
	RegsPerThread int
	// SharedMemPerCTA is the scratchpad demand per CTA in bytes.
	SharedMemPerCTA int
	// Arrival is the cycle at which the kernel becomes eligible for
	// dispatch: the GPU front-end keeps it out of the dispatchers' launch
	// table until then. Zero (the default) means available at machine
	// launch. Late arrivals are how preemption scenarios are built — a
	// latency-sensitive kernel arriving while a batch kernel already owns
	// every SM.
	Arrival uint64
	// Program builds per-warp instruction streams.
	Program ProgramFactory
	// RecycleProgram, when non-nil, takes back a program handed out by
	// Program after its warp's CTA has left the machine for good, so the
	// factory can pool the iterator object. The core calls it at most once
	// per handed-out program and never touches the program again. Optional:
	// factories whose programs are not poolable leave it nil.
	RecycleProgram func(p isa.Program)
}

// Validate checks the spec for internal consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("kernel: spec has empty name")
	}
	if s.Grid.Count() <= 0 {
		return fmt.Errorf("kernel %s: empty grid %v", s.Name, s.Grid)
	}
	if s.Block.Count() <= 0 {
		return fmt.Errorf("kernel %s: empty block %v", s.Name, s.Block)
	}
	if s.Block.Count()%isa.WarpSize != 0 {
		return fmt.Errorf("kernel %s: block size %d not a multiple of warp size %d",
			s.Name, s.Block.Count(), isa.WarpSize)
	}
	if s.RegsPerThread < 0 || s.RegsPerThread > isa.MaxRegs {
		return fmt.Errorf("kernel %s: regs/thread %d outside [0,%d]",
			s.Name, s.RegsPerThread, isa.MaxRegs)
	}
	if s.SharedMemPerCTA < 0 {
		return fmt.Errorf("kernel %s: negative shared memory %d",
			s.Name, s.SharedMemPerCTA)
	}
	if s.Program == nil {
		return fmt.Errorf("kernel %s: nil program factory", s.Name)
	}
	return nil
}

// NumCTAs returns the total CTA count of the launch.
func (s *Spec) NumCTAs() int { return s.Grid.Count() }

// ThreadsPerCTA returns the block size in threads.
func (s *Spec) ThreadsPerCTA() int { return s.Block.Count() }

// WarpsPerCTA returns the number of warps per CTA.
func (s *Spec) WarpsPerCTA() int {
	return (s.Block.Count() + isa.WarpSize - 1) / isa.WarpSize
}

// CoreLimits captures the per-SM capacities that bound occupancy.
type CoreLimits struct {
	// MaxThreads is the hardware thread-context limit per SM.
	MaxThreads int
	// MaxCTAs is the hardware CTA-slot limit per SM.
	MaxCTAs int
	// MaxWarps is the warp-context limit per SM.
	MaxWarps int
	// Registers is the register-file capacity in registers.
	Registers int
	// SharedMemBytes is the scratchpad capacity in bytes.
	SharedMemBytes int
}

// MaxResident returns the occupancy-maximal number of CTAs of kernel s that
// fit concurrently on one SM with the given limits, and the name of the
// binding constraint. Returns 0 if even a single CTA does not fit.
func (l CoreLimits) MaxResident(s *Spec) (n int, binding string) {
	n = l.MaxCTAs
	binding = "cta-slots"
	consider := func(cap, per int, name string) {
		if per <= 0 {
			return
		}
		if m := cap / per; m < n {
			n = m
			binding = name
		}
	}
	consider(l.MaxThreads, s.ThreadsPerCTA(), "threads")
	consider(l.MaxWarps, s.WarpsPerCTA(), "warps")
	consider(l.Registers, s.RegsPerThread*s.ThreadsPerCTA(), "registers")
	consider(l.SharedMemBytes, s.SharedMemPerCTA, "shared-mem")
	if n < 0 {
		n = 0
	}
	return n, binding
}

// Usage is the resource footprint of a set of resident CTAs, used by the
// mixed-concurrent-kernel allocator to account for two kernels sharing an SM.
type Usage struct {
	CTAs      int
	Threads   int
	Warps     int
	Registers int
	SharedMem int
}

// Add returns u plus n CTAs of kernel s.
func (u Usage) Add(s *Spec, n int) Usage {
	u.CTAs += n
	u.Threads += n * s.ThreadsPerCTA()
	u.Warps += n * s.WarpsPerCTA()
	u.Registers += n * s.RegsPerThread * s.ThreadsPerCTA()
	u.SharedMem += n * s.SharedMemPerCTA
	return u
}

// Fits reports whether usage u is within limits l.
func (u Usage) Fits(l CoreLimits) bool {
	return u.CTAs <= l.MaxCTAs &&
		u.Threads <= l.MaxThreads &&
		u.Warps <= l.MaxWarps &&
		u.Registers <= l.Registers &&
		u.SharedMem <= l.SharedMemBytes
}
