package core

import "gpusched/internal/sm"

// Sequential runs the launch table one kernel at a time: kernel i+1 is not
// dispatched until every CTA of kernel i has retired. This is the
// no-concurrent-kernel-execution baseline (CUDA's default stream).
type Sequential struct {
	rr RoundRobin
}

// NewSequential returns the one-kernel-at-a-time dispatcher.
func NewSequential() *Sequential { return &Sequential{} }

// Name implements Dispatcher.
func (s *Sequential) Name() string { return "sequential" }

// Tick implements Dispatcher.
func (s *Sequential) Tick(m Machine) {
	for _, ks := range m.Kernels() {
		if ks.Done() {
			continue
		}
		if ks.Exhausted() {
			return // dispatched but still draining: nothing follows yet
		}
		n := m.NumCores()
		for i := 0; i < n; i++ {
			c := m.Core((s.rr.next + i) % n)
			if c.CanAccept(ks.Spec) {
				place(m, ks, c, m.Now(), 0)
				s.rr.next = (c.ID() + 1) % n
				return
			}
		}
		return
	}
}

// OnCTAComplete implements Dispatcher.
func (s *Sequential) OnCTAComplete(Machine, int, *sm.CTA) {}

// NextDispatchEvent implements FastForwarder: the kernel barrier advances
// only when a CTA completes.
func (s *Sequential) NextDispatchEvent(uint64) uint64 { return NeverEvent }

// Spatial is inter-core concurrent kernel execution: the SMs are statically
// partitioned between two kernels, each side filled to maximal occupancy.
// This models the leftover/spatial CKE the paper compares mixed execution
// against.
type Spatial struct {
	// CoresForA is how many cores (from index 0) kernel 0 owns; the rest
	// belong to kernel 1. Zero means an even split.
	CoresForA int
}

// NewSpatial returns an even-split spatial CKE dispatcher.
func NewSpatial() *Spatial { return &Spatial{} }

// Name implements Dispatcher.
func (s *Spatial) Name() string { return "spatial" }

// Tick implements Dispatcher: one placement per kernel region per cycle.
func (s *Spatial) Tick(m Machine) {
	split := s.CoresForA
	if split <= 0 {
		split = m.NumCores() / 2
	}
	kernels := m.Kernels()
	regions := [][2]int{{0, split}, {split, m.NumCores()}}
	for ki, ks := range kernels {
		if ki >= len(regions) {
			break
		}
		if ks.Exhausted() {
			continue
		}
		lo, hi := regions[ki][0], regions[ki][1]
		for i := lo; i < hi; i++ {
			c := m.Core(i)
			if c.CanAccept(ks.Spec) {
				place(m, ks, c, m.Now(), 0)
				break
			}
		}
	}
}

// OnCTAComplete implements Dispatcher.
func (s *Spatial) OnCTAComplete(Machine, int, *sm.CTA) {}

// NextDispatchEvent implements FastForwarder: the core partition is static.
func (s *Spatial) NextDispatchEvent(uint64) uint64 { return NeverEvent }

// Mixed is the paper's mixed concurrent kernel execution: both kernels
// co-reside on every SM. Kernel 0 (typically the one whose LCS profile
// showed it cannot use full occupancy) is capped at LimitA CTAs per core;
// kernel 1 fills whatever threads, registers, shared memory, and CTA slots
// remain. Kernel 0 has refill priority, so its share never erodes.
type Mixed struct {
	rr RoundRobin
	// LimitA caps kernel 0's resident CTAs per core. It is normally the
	// nOpt a solo LCS run decided for kernel 0.
	LimitA int
}

// NewMixed returns a mixed-CKE dispatcher capping kernel 0 at limitA per SM.
func NewMixed(limitA int) *Mixed { return &Mixed{LimitA: limitA} }

// Name implements Dispatcher.
func (x *Mixed) Name() string { return "mixed" }

// Tick implements Dispatcher.
func (x *Mixed) Tick(m Machine) {
	kernels := m.Kernels()
	n := m.NumCores()
	for i := 0; i < n; i++ {
		c := m.Core((x.rr.next + i) % n)
		// Kernel 0 first, up to its cap.
		if len(kernels) > 0 {
			ks := kernels[0]
			if !ks.Exhausted() && c.ResidentOf(0) < x.limitA() && c.CanAccept(ks.Spec) {
				place(m, ks, c, m.Now(), 0)
				x.rr.next = (c.ID() + 1) % n
				return
			}
		}
		// Then kernel 1 into the leftovers.
		if len(kernels) > 1 {
			ks := kernels[1]
			if !ks.Exhausted() && c.CanAccept(ks.Spec) {
				place(m, ks, c, m.Now(), 0)
				x.rr.next = (c.ID() + 1) % n
				return
			}
		}
	}
}

func (x *Mixed) limitA() int {
	if x.LimitA < 1 {
		return 1
	}
	return x.LimitA
}

// OnCTAComplete implements Dispatcher.
func (x *Mixed) OnCTAComplete(Machine, int, *sm.CTA) {}

// NextDispatchEvent implements FastForwarder: LimitA is fixed for the run.
func (x *Mixed) NextDispatchEvent(uint64) uint64 { return NeverEvent }
