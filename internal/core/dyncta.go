package core

import "gpusched/internal/sm"

// DynCTA reimplements the DYNCTA-style dynamic CTA throttling of Kayiran et
// al. (PACT 2013), the prior work the paper compares against. Where LCS
// takes one histogram measurement per core, DYNCTA runs a feedback loop on
// coarse stall statistics: every epoch, a core whose issue slots mostly
// idle on memory lowers its CTA allowance by one, and a core that is busy
// (or idling for lack of work) raises it. Like LCS the limit is enforced
// lazily — resident CTAs always run to completion.
//
// The controller here uses the fraction of scheduler slots that found no
// ready warp (issue-stall fraction) as the congestion signal, with
// hysteresis between two thresholds. That is a simplification of DYNCTA's
// C_mem/C_idle counters, but it is driven by the same observable — how
// often the core cannot issue — and produces the same up/down behaviour.
type DynCTA struct {
	rr RoundRobin

	// EpochCycles is the adjustment period (default 2048).
	EpochCycles uint64
	// HighStall and LowStall bound the hysteresis band on the issue-stall
	// fraction (defaults 0.7 / 0.4).
	HighStall float64
	LowStall  float64
	// MinLimit floors the descent (default 1).
	MinLimit int
	// KernelIdx selects the throttled kernel (default 0).
	KernelIdx int

	limit      []int
	lastEpoch  []uint64
	lastIssued []uint64
	lastStall  []uint64
	maxSeen    []int
}

// NewDynCTA returns the prior-work throttling dispatcher with defaults.
func NewDynCTA() *DynCTA {
	return &DynCTA{
		EpochCycles: 2048,
		HighStall:   0.7,
		LowStall:    0.4,
		MinLimit:    1,
	}
}

// Name implements Dispatcher.
func (d *DynCTA) Name() string { return "dyncta" }

// Limits returns the current per-core allowances (0 = not initialized).
func (d *DynCTA) Limits() []int { return d.limit }

func (d *DynCTA) ensure(n int) {
	if len(d.limit) >= n {
		return
	}
	d.limit = make([]int, n)
	d.lastEpoch = make([]uint64, n)
	d.lastIssued = make([]uint64, n)
	d.lastStall = make([]uint64, n)
	d.maxSeen = make([]int, n)
}

// Tick implements Dispatcher: epoch accounting plus baseline placement
// under the per-core allowance.
func (d *DynCTA) Tick(m Machine) {
	d.ensure(m.NumCores())
	now := m.Now()
	for i := 0; i < m.NumCores(); i++ {
		c := m.Core(i)
		if n := c.ResidentOf(d.KernelIdx); n > d.maxSeen[i] {
			d.maxSeen[i] = n
		}
		if d.limit[i] == 0 {
			// Uninitialized: start at the occupancy the baseline reaches.
			continue
		}
		if now-d.lastEpoch[i] >= d.epoch() {
			d.adjust(i, c, now)
		}
	}
	// Placement: identical to the baseline but capped per core.
	for _, ks := range m.Kernels() {
		if ks.Exhausted() {
			continue
		}
		n := m.NumCores()
		for i := 0; i < n; i++ {
			c := m.Core((d.rr.next + i) % n)
			if !c.CanAccept(ks.Spec) {
				continue
			}
			if ks.Idx == d.KernelIdx && d.limit[c.ID()] > 0 &&
				c.ResidentOf(ks.Idx) >= d.limit[c.ID()] {
				continue
			}
			place(m, ks, c, now, 0)
			d.rr.next = (c.ID() + 1) % n
			return
		}
		return
	}
}

func (d *DynCTA) epoch() uint64 {
	if d.EpochCycles == 0 {
		return 2048
	}
	return d.EpochCycles
}

// adjust runs one controller step for core i. It reads the lazily-accrued
// IssueStallCycles counter: safe because the GPU loop settles every parked
// core (syncAllTo) before a cycle in which NextDispatchEvent says the
// controller is due — see the sleepOK branch in RunContext.
//
//gpulint:synced RunContext syncs all cores before any due dispatcher tick
func (d *DynCTA) adjust(i int, c *sm.SM, now uint64) {
	dc := now - d.lastEpoch[i]
	stalls := c.Stats.IssueStallCycles - d.lastStall[i]
	issued := c.Stats.InstrIssued - d.lastIssued[i]
	d.lastEpoch[i] = now
	d.lastStall[i] = c.Stats.IssueStallCycles
	d.lastIssued[i] = c.Stats.InstrIssued
	if dc == 0 || issued+stalls == 0 {
		return
	}
	stallFrac := float64(stalls) / float64(stalls+issued)
	switch {
	case stallFrac > d.HighStall && d.limit[i] > d.minLimit():
		d.limit[i]--
	case stallFrac < d.LowStall && d.limit[i] < d.maxSeen[i]:
		d.limit[i]++
	}
}

func (d *DynCTA) minLimit() int {
	if d.MinLimit < 1 {
		return 1
	}
	return d.MinLimit
}

// NextDispatchEvent implements FastForwarder. Unlike the pure policies,
// DynCTA's Tick does time-driven work: once a core's allowance is
// initialized, its controller fires when now reaches lastEpoch+EpochCycles.
// The skip bound is therefore the earliest epoch boundary over initialized
// cores; uninitialized cores only change state on completions.
func (d *DynCTA) NextDispatchEvent(now uint64) uint64 {
	next := uint64(NeverEvent)
	for i, lim := range d.limit {
		if lim == 0 {
			continue
		}
		if at := d.lastEpoch[i] + d.epoch(); at < next {
			next = at
		}
	}
	if next < now {
		return now // boundary already due: no skip
	}
	return next
}

// OnCTAComplete implements Dispatcher: the first completion on a core
// initializes its allowance to the occupancy it was running at. It reads
// the lazily-accrued IssueStallCycles counter: safe because commit
// callbacks run after RunContext settles sleepers through the current
// cycle (the havePendingCommits branch).
//
//gpulint:synced RunContext syncs all cores before the retirement commits that invoke this
func (d *DynCTA) OnCTAComplete(m Machine, coreID int, cta *sm.CTA) {
	d.ensure(m.NumCores())
	if cta.KernelIdx != d.KernelIdx || d.limit[coreID] != 0 {
		return
	}
	c := m.Core(coreID)
	d.limit[coreID] = c.ResidentOf(d.KernelIdx) + 1
	d.lastEpoch[coreID] = m.Now()
	d.lastStall[coreID] = c.Stats.IssueStallCycles
	d.lastIssued[coreID] = c.Stats.InstrIssued
}
