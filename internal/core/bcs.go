package core

import "gpusched/internal/sm"

// BCS implements block CTA scheduling: consecutive CTAs are dispatched as a
// gang ("block") to one core, so data shared between adjacent CTAs — stencil
// halos, neighbouring matrix tiles — is fetched once into that core's L1
// instead of once per core. Every CTA of a gang carries the same BlockKey,
// which the BAWS warp scheduler (sm.PolicyBAWS) uses to advance the gang in
// lockstep so the shared lines are touched while still resident.
//
// Gang integrity is the point, so a core is refilled only when a whole gang
// fits: when one member of a pair retires, its slot waits for the partner
// (BAWS keeps that skew small) instead of being backfilled with an unrelated
// CTA. Cores whose occupancy is not a multiple of the gang width would
// strand their remainder slots forever under that rule, so up to
// (occupancy mod gang) unpaired "filler" CTAs per core are allowed.
type BCS struct {
	next int
	// BlockSize is the gang width (the paper pairs consecutive CTAs;
	// default 2).
	BlockSize int
	// unpaired counts resident filler CTAs per core.
	unpaired []int
}

// fillerIndex marks a CTA dispatched alone into a remainder slot.
const fillerIndex = -1

// NewBCS returns a block CTA scheduling dispatcher with gang width 2.
func NewBCS() *BCS { return &BCS{BlockSize: 2} }

// Name implements Dispatcher.
func (b *BCS) Name() string { return "bcs" }

func (b *BCS) gangWidth() int {
	if b.BlockSize < 1 {
		return 1
	}
	return b.BlockSize
}

// Tick implements Dispatcher: place one gang per cycle on the next core
// with room for a whole gang, else fill a remainder slot.
func (b *BCS) Tick(m Machine) {
	if len(b.unpaired) < m.NumCores() {
		b.unpaired = make([]int, m.NumCores())
	}
	for _, ks := range m.Kernels() {
		if ks.Exhausted() {
			continue
		}
		gang := b.gangWidth()
		if r := ks.Remaining(); r < gang {
			gang = r // grid tail: partial gang
		}
		n := m.NumCores()
		for i := 0; i < n; i++ {
			c := m.Core((b.next + i) % n)
			if !canAcceptN(c, ks, gang) {
				continue
			}
			key := m.Now()
			for j := 0; j < gang; j++ {
				place(m, ks, c, key, j)
			}
			b.next = (c.ID() + 1) % n
			return
		}
		// No core fits a gang: fill a remainder slot if one exists.
		for i := 0; i < n; i++ {
			c := m.Core((b.next + i) % n)
			rem := b.remainderSlots(c, ks)
			if rem > b.unpaired[c.ID()] && c.CanAccept(ks.Spec) {
				place(m, ks, c, m.Now(), fillerIndex)
				b.unpaired[c.ID()]++
				b.next = (c.ID() + 1) % n
				return
			}
		}
		return
	}
}

// remainderSlots returns how many of core c's CTA slots for ks can never be
// part of a full gang (occupancy mod gang width).
func (b *BCS) remainderSlots(c *sm.SM, ks *KernelState) int {
	cap, _ := c.Limits().MaxResident(ks.Spec)
	return cap % b.gangWidth()
}

func canAcceptN(c *sm.SM, ks *KernelState, n int) bool {
	return c.Usage().Add(ks.Spec, n).Fits(c.Limits())
}

// NextDispatchEvent implements FastForwarder: gang/filler bookkeeping moves
// only on placements and completions.
func (b *BCS) NextDispatchEvent(uint64) uint64 { return NeverEvent }

// OnCTAComplete implements Dispatcher: retiring fillers reopen their slot.
func (b *BCS) OnCTAComplete(m Machine, coreID int, cta *sm.CTA) {
	if cta.IndexInBlock == fillerIndex && coreID < len(b.unpaired) {
		b.unpaired[coreID]--
	}
}
