package core

import "gpusched/internal/sm"

// Limited is the static-throttling dispatcher used by the motivation and
// oracle experiments: baseline round-robin placement, but no core ever
// holds more than Limit CTAs of kernel 0. Sweeping Limit from 1 to the
// occupancy maximum produces the paper's IPC-vs-CTA-count curves, and the
// best point of that sweep is the "oracle static" LCS is judged against.
type Limited struct {
	rr RoundRobin
	// Limit caps kernel 0's resident CTAs per core.
	Limit int
}

// NewLimited returns a dispatcher capping kernel 0 at limit CTAs per core.
func NewLimited(limit int) *Limited { return &Limited{Limit: limit} }

// Name implements Dispatcher.
func (l *Limited) Name() string { return "limited" }

// Tick implements Dispatcher.
func (l *Limited) Tick(m Machine) {
	for _, ks := range m.Kernels() {
		if ks.Exhausted() {
			continue
		}
		n := m.NumCores()
		for i := 0; i < n; i++ {
			c := m.Core((l.rr.next + i) % n)
			if !c.CanAccept(ks.Spec) {
				continue
			}
			if ks.Idx == 0 && l.Limit > 0 && c.ResidentOf(0) >= l.Limit {
				continue
			}
			place(m, ks, c, m.Now(), 0)
			l.rr.next = (c.ID() + 1) % n
			return
		}
		return
	}
}

// OnCTAComplete implements Dispatcher.
func (l *Limited) OnCTAComplete(Machine, int, *sm.CTA) {}

// NextDispatchEvent implements FastForwarder: the static cap is read-only.
func (l *Limited) NextDispatchEvent(uint64) uint64 { return NeverEvent }
