package core

import "gpusched/internal/sm"

// AdaptiveLCS extends lazy CTA scheduling with a probing descent. Plain LCS
// takes one measurement (the per-CTA issue histogram when the first CTA
// completes) and fixes the limit. That histogram under-estimates how much
// throttling cache-capacity-sensitive kernels tolerate: when every CTA is
// latency-bound, issue spreads almost evenly and the total/greedy ratio
// stays near the occupancy maximum even though fewer CTAs would thrash less.
//
// AdaptiveLCS keeps measuring the only counter LCS uses — instructions
// issued. After the initial ratio decision, each subsequent CTA completion
// on a core closes a measurement window; while the core's issue rate
// (instructions per cycle over the window) does not regress by more than
// Tolerance, the limit steps down one CTA at a time, still lazily (resident
// CTAs are never killed). The first regressing step is undone and the limit
// locks. Cores decide independently, exactly like LCS.
type AdaptiveLCS struct {
	rr RoundRobin

	limit   []int
	decided []bool
	locked  []bool

	lastCycle   []uint64
	lastInstr   []uint64
	completions []int
	bestRate    []float64
	bestLimit   []int
	maxAllowed  []int

	// Tolerance is the relative issue-rate regression that stops the
	// descent (default 0.03).
	Tolerance float64
	// MinLimit floors the descent (default 1).
	MinLimit int
	// KernelIdx selects the throttled kernel (default 0).
	KernelIdx int
	// MinWindowCycles and MinWindowCompletions gate how much evidence a
	// measurement window needs before the descent takes another step.
	MinWindowCycles      uint64
	MinWindowCompletions int
}

// NewAdaptiveLCS returns the adaptive variant with default tuning.
func NewAdaptiveLCS() *AdaptiveLCS {
	return &AdaptiveLCS{
		Tolerance:            0.03,
		MinLimit:             1,
		MinWindowCycles:      1500,
		MinWindowCompletions: 1,
	}
}

// Name implements Dispatcher.
func (a *AdaptiveLCS) Name() string { return "lcs-adaptive" }

// Limits returns the current per-core limits (0 = still sampling).
func (a *AdaptiveLCS) Limits() []int { return a.limit }

func (a *AdaptiveLCS) ensure(n int) {
	if len(a.limit) >= n {
		return
	}
	a.limit = make([]int, n)
	a.decided = make([]bool, n)
	a.locked = make([]bool, n)
	a.lastCycle = make([]uint64, n)
	a.lastInstr = make([]uint64, n)
	a.completions = make([]int, n)
	a.bestRate = make([]float64, n)
	a.bestLimit = make([]int, n)
	a.maxAllowed = make([]int, n)
}

// Tick implements Dispatcher (identical placement rule to LCS).
func (a *AdaptiveLCS) Tick(m Machine) {
	a.ensure(m.NumCores())
	for _, ks := range m.Kernels() {
		if ks.Exhausted() {
			continue
		}
		n := m.NumCores()
		for i := 0; i < n; i++ {
			c := m.Core((a.rr.next + i) % n)
			if !c.CanAccept(ks.Spec) {
				continue
			}
			if ks.Idx == a.KernelIdx && a.decided[c.ID()] &&
				c.ResidentOf(ks.Idx) >= a.limit[c.ID()] {
				continue
			}
			place(m, ks, c, m.Now(), 0)
			a.rr.next = (c.ID() + 1) % n
			return
		}
		return
	}
}

// NextDispatchEvent implements FastForwarder: like LCS, every internal
// transition (initial decision, probe step, lock) happens in OnCTAComplete.
func (a *AdaptiveLCS) NextDispatchEvent(uint64) uint64 { return NeverEvent }

// OnCTAComplete implements Dispatcher.
func (a *AdaptiveLCS) OnCTAComplete(m Machine, coreID int, cta *sm.CTA) {
	a.ensure(m.NumCores())
	if cta.KernelIdx != a.KernelIdx {
		return
	}
	c := m.Core(coreID)
	now := m.Now()
	if !a.decided[coreID] {
		// Initial decision: the LCS ratio.
		l := LCS{MinLimit: a.minLimit(), KernelIdx: a.KernelIdx}
		l.ensure(m.NumCores())
		a.limit[coreID] = l.computeLimit(m, coreID, cta)
		a.maxAllowed[coreID] = c.ResidentOf(a.KernelIdx) + 1
		a.decided[coreID] = true
		a.lastCycle[coreID] = now
		a.lastInstr[coreID] = c.Stats.InstrIssued
		a.bestRate[coreID] = 0
		a.bestLimit[coreID] = a.limit[coreID]
		return
	}
	if a.locked[coreID] {
		return
	}
	if m.Kernels()[a.KernelIdx].Exhausted() {
		// Grid tail: resident counts drop naturally; rates stop meaning
		// anything. Freeze at the best limit seen.
		a.limit[coreID] = a.bestLimit[coreID]
		a.locked[coreID] = true
		return
	}
	if c.ResidentOf(a.KernelIdx) > a.limit[coreID] {
		// Still draining toward the new limit: rates measured now mix two
		// occupancy levels. Restart the window at steady state.
		a.lastCycle[coreID] = now
		a.lastInstr[coreID] = c.Stats.InstrIssued
		a.completions[coreID] = 0
		return
	}
	a.completions[coreID]++
	dc := now - a.lastCycle[coreID]
	if a.completions[coreID] < a.minCompletions() || dc < a.MinWindowCycles {
		return // not enough evidence yet
	}
	rate := float64(c.Stats.InstrIssued-a.lastInstr[coreID]) / float64(dc)
	a.lastCycle[coreID] = now
	a.lastInstr[coreID] = c.Stats.InstrIssued
	a.completions[coreID] = 0

	if a.bestRate[coreID] > 0 && rate < a.bestRate[coreID]*(1-a.Tolerance) {
		// This limit regressed: restore the best and stop probing.
		a.limit[coreID] = a.bestLimit[coreID]
		a.locked[coreID] = true
		return
	}
	if rate > a.bestRate[coreID] {
		a.bestRate[coreID] = rate
		a.bestLimit[coreID] = a.limit[coreID]
	}
	if a.limit[coreID] > a.minLimit() {
		a.limit[coreID]--
	} else {
		a.limit[coreID] = a.bestLimit[coreID]
		a.locked[coreID] = true
	}
}

func (a *AdaptiveLCS) minCompletions() int {
	if a.MinWindowCompletions < 1 {
		return 1
	}
	return a.MinWindowCompletions
}

func (a *AdaptiveLCS) minLimit() int {
	if a.MinLimit < 1 {
		return 1
	}
	return a.MinLimit
}
