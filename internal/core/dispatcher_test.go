package core_test

import (
	"testing"

	"gpusched/internal/core"
	"gpusched/internal/gpu"
	"gpusched/internal/isa"
	"gpusched/internal/kernel"
	"gpusched/internal/sm"
)

// uniformKernel builds a kernel of ctas blocks x warps warps whose every
// warp runs `work` dependent FALUs then exits. regs tunes occupancy.
func uniformKernel(name string, ctas, warps, work, regs int) *kernel.Spec {
	return &kernel.Spec{
		Name:          name,
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warps * isa.WarpSize},
		RegsPerThread: regs,
		Program: func(ctaID, w int) isa.Program {
			b := isa.NewBuilder()
			for i := 0; i < work; i++ {
				b.FAlu(1, 1)
			}
			b.Exit()
			return b.Build()
		},
	}
}

func testGPU(t *testing.T, d core.Dispatcher, policy sm.Policy, specs ...*kernel.Spec) *gpu.GPU {
	t.Helper()
	cfg := gpu.DefaultConfig()
	cfg.NumCores = 4
	cfg.MaxCycles = 5_000_000
	cfg.Core.WarpPolicy = policy
	g, err := gpu.New(cfg, d, specs...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLimitedNeverExceedsCap(t *testing.T) {
	spec := uniformKernel("k", 64, 2, 50, 16)
	g := testGPU(t, core.NewLimited(3), sm.PolicyGTO, spec)
	maxSeen := 0
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		// +1: the completed CTA was resident a cycle ago.
		if n := g.Core(coreID).ResidentOf(0) + 1; n > maxSeen {
			maxSeen = n
		}
	})
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	if maxSeen > 3 {
		t.Fatalf("Limited(3) allowed %d resident CTAs", maxSeen)
	}
}

func TestLimitedZeroMeansUnlimited(t *testing.T) {
	spec := uniformKernel("k", 64, 2, 50, 16)
	g := testGPU(t, core.NewLimited(0), sm.PolicyGTO, spec)
	maxSeen := 0
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		if n := g.Core(coreID).ResidentOf(0) + 1; n > maxSeen {
			maxSeen = n
		}
	})
	g.Run()
	if maxSeen < 8 {
		t.Fatalf("Limited(0) reached only %d resident CTAs, want occupancy max 8", maxSeen)
	}
}

func TestLCSMinLimitRespected(t *testing.T) {
	spec := uniformKernel("k", 96, 2, 120, 16)
	d := core.NewLCS()
	d.MinLimit = 3
	g := testGPU(t, d, sm.PolicyGTO, spec)
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	for coreID, lim := range d.Limits() {
		if lim != 0 && lim < 3 {
			t.Errorf("core %d limit %d below MinLimit", coreID, lim)
		}
	}
}

func TestLCSDecidedLimitConsensus(t *testing.T) {
	d := core.NewLCS()
	if got := d.DecidedLimit(7); got != 7 {
		t.Fatalf("undecided DecidedLimit = %d, want fallback 7", got)
	}
	spec := uniformKernel("k", 96, 2, 120, 16)
	g := testGPU(t, d, sm.PolicyGTO, spec)
	g.Run()
	lim := d.DecidedLimit(7)
	if lim < 1 || lim > 8 {
		t.Fatalf("DecidedLimit = %d out of range", lim)
	}
}

func TestLCSComputeBoundThrottlesHard(t *testing.T) {
	// Pure dependent-ALU kernel: under GTO a couple of CTAs saturate
	// issue, so younger CTAs barely run and the ratio decision must be
	// well below the occupancy maximum (8 with these resources).
	spec := uniformKernel("k", 96, 8, 200, 8)
	d := core.NewLCS()
	g := testGPU(t, d, sm.PolicyGTO, spec)
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	decided := 0
	sum := 0
	for _, lim := range d.Limits() {
		if lim > 0 {
			decided++
			sum += lim
		}
	}
	if decided == 0 {
		t.Fatal("no LCS decisions")
	}
	if avg := float64(sum) / float64(decided); avg > 5 {
		t.Errorf("compute-bound kernel throttled to %.1f CTAs on average, want < 5", avg)
	}
}

func TestAdaptiveLCSLimitsInRange(t *testing.T) {
	spec := uniformKernel("k", 96, 4, 150, 16)
	d := core.NewAdaptiveLCS()
	g := testGPU(t, d, sm.PolicyGTO, spec)
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	any := false
	for coreID, lim := range d.Limits() {
		if lim == 0 {
			continue
		}
		any = true
		if lim < 1 || lim > 8 {
			t.Errorf("core %d adaptive limit %d out of range", coreID, lim)
		}
	}
	if !any {
		t.Fatal("adaptive LCS never decided")
	}
}

func TestBCSTailAndOddGangs(t *testing.T) {
	// 65 CTAs with gang width 3: the tail gang has 2 CTAs; everything
	// must still complete exactly once.
	spec := uniformKernel("k", 65, 2, 40, 16)
	d := core.NewBCS()
	d.BlockSize = 3
	g := testGPU(t, d, sm.PolicyGTO, spec)
	seen := map[int]bool{}
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		if seen[cta.ID] {
			t.Errorf("CTA %d completed twice", cta.ID)
		}
		seen[cta.ID] = true
	})
	r := g.Run()
	if r.TimedOut {
		t.Fatal("timed out")
	}
	if len(seen) != 65 {
		t.Fatalf("completed %d CTAs, want 65", len(seen))
	}
}

func TestBCSFillsOddRemainderSlot(t *testing.T) {
	// 512-thread CTAs: occupancy max = 3 (thread-bound). Gangs of 2 leave
	// one remainder slot that the filler logic must use.
	spec := uniformKernel("k", 60, 16, 60, 8)
	d := core.NewBCS()
	g := testGPU(t, d, sm.PolicyGTO, spec)
	maxResident := 0
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		if n := g.Core(coreID).ResidentOf(0) + 1; n > maxResident {
			maxResident = n
		}
	})
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	if maxResident < 3 {
		t.Fatalf("odd remainder slot never filled: max resident %d, want 3", maxResident)
	}
}

func TestBCSGangsShareCores(t *testing.T) {
	spec := uniformKernel("k", 64, 2, 60, 16)
	d := core.NewBCS()
	g := testGPU(t, d, sm.PolicyGTO, spec)
	coreOf := map[int]int{}
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		coreOf[cta.ID] = coreID
	})
	g.Run()
	broken := 0
	for id := 0; id < 64; id += 2 {
		if coreOf[id] != coreOf[id+1] {
			broken++
		}
	}
	if broken > 3 {
		t.Fatalf("%d of 32 BCS pairs split across cores", broken)
	}
}

func TestSpatialRespectsPartition(t *testing.T) {
	a := uniformKernel("a", 40, 2, 60, 16)
	b := uniformKernel("b", 40, 2, 60, 16)
	d := core.NewSpatial()
	d.CoresForA = 1
	g := testGPU(t, d, sm.PolicyGTO, a, b)
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		if cta.KernelIdx == 0 && coreID != 0 {
			t.Errorf("kernel 0 CTA on core %d, partition is core 0 only", coreID)
		}
		if cta.KernelIdx == 1 && coreID == 0 {
			t.Errorf("kernel 1 CTA on kernel 0's core")
		}
	})
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
}

func TestSequentialThreeKernels(t *testing.T) {
	specs := []*kernel.Spec{
		uniformKernel("a", 16, 2, 40, 16),
		uniformKernel("b", 16, 2, 40, 16),
		uniformKernel("c", 16, 2, 40, 16),
	}
	g := testGPU(t, core.NewSequential(), sm.PolicyGTO, specs...)
	r := g.Run()
	if r.TimedOut {
		t.Fatal("timed out")
	}
	ks := g.Kernels()
	for i := 1; i < len(ks); i++ {
		if ks[i].LaunchCycle < ks[i-1].DoneCycle {
			t.Errorf("kernel %d launched at %d before kernel %d finished at %d",
				i, ks[i].LaunchCycle, i-1, ks[i-1].DoneCycle)
		}
	}
}

func TestMixedPrioritizesKernelZeroRefills(t *testing.T) {
	a := uniformKernel("a", 60, 2, 80, 16)
	b := uniformKernel("b", 60, 2, 80, 16)
	d := core.NewMixed(2)
	g := testGPU(t, d, sm.PolicyGTO, a, b)
	over := false
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		if g.Core(coreID).ResidentOf(0) > 2 {
			over = true
		}
	})
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	if over {
		t.Fatal("mixed CKE exceeded kernel-0 cap")
	}
}

// memBoundKernel builds a kernel whose warps spend almost all time waiting
// on scattered loads (high issue-stall fraction).
func memBoundKernel(ctas int) *kernel.Spec {
	return &kernel.Spec{
		Name:          "membound",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: 64},
		RegsPerThread: 16,
		Program: func(ctaID, w int) isa.Program {
			b := isa.NewBuilder()
			for i := 0; i < 12; i++ {
				b.LoadGlobalStride(1, uint32((ctaID*2+w)*1<<16+i*4096), 512)
				b.FAlu(2, 1)
			}
			b.Exit()
			return b.Build()
		},
	}
}

func TestDynCTAThrottlesMemoryBound(t *testing.T) {
	d := core.NewDynCTA()
	g := testGPU(t, d, sm.PolicyGTO, memBoundKernel(96))
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	throttled := false
	for _, lim := range d.Limits() {
		if lim < 1 && lim != 0 {
			t.Fatalf("limit %d below floor", lim)
		}
		if lim > 8 {
			t.Fatalf("limit %d above occupancy", lim)
		}
		if lim > 0 && lim < 8 {
			throttled = true
		}
	}
	if !throttled {
		t.Fatal("DynCTA never reduced any core's allowance on a stall-heavy kernel")
	}
}

func TestDynCTALeavesComputeBoundAlone(t *testing.T) {
	// A kernel with abundant independent ALU work keeps issue slots busy;
	// DynCTA must not throttle it to the floor.
	spec := &kernel.Spec{
		Name:          "busy",
		Grid:          kernel.Dim3{X: 96},
		Block:         kernel.Dim3{X: 256},
		RegsPerThread: 16,
		Program: func(ctaID, w int) isa.Program {
			b := isa.NewBuilder()
			for i := 0; i < 120; i++ {
				b.IAlu(isa.Reg(1+i%8), 0)
			}
			b.Exit()
			return b.Build()
		},
	}
	d := core.NewDynCTA()
	g := testGPU(t, d, sm.PolicyGTO, spec)
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	sum, n := 0, 0
	for _, lim := range d.Limits() {
		if lim > 0 {
			sum += lim
			n++
		}
	}
	if n > 0 && float64(sum)/float64(n) < 2 {
		t.Fatalf("DynCTA throttled a compute-bound kernel to %.1f CTAs avg", float64(sum)/float64(n))
	}
}

func TestDispatcherNames(t *testing.T) {
	cases := map[string]interface{ Name() string }{
		"rr":           core.NewRoundRobin(),
		"lcs":          core.NewLCS(),
		"lcs-adaptive": core.NewAdaptiveLCS(),
		"dyncta":       core.NewDynCTA(),
		"bcs":          core.NewBCS(),
		"limited":      core.NewLimited(2),
		"sequential":   core.NewSequential(),
		"spatial":      core.NewSpatial(),
		"mixed":        core.NewMixed(2),
	}
	for want, d := range cases {
		if d.Name() != want {
			t.Errorf("Name = %q, want %q", d.Name(), want)
		}
	}
}

func TestKernelStateAccounting(t *testing.T) {
	ks := &core.KernelState{Spec: uniformKernel("k", 10, 1, 5, 16)}
	if ks.Exhausted() || ks.Done() {
		t.Fatal("fresh state exhausted/done")
	}
	if ks.Remaining() != 10 {
		t.Fatalf("Remaining = %d", ks.Remaining())
	}
	ks.NextCTA = 10
	if !ks.Exhausted() || ks.Done() {
		t.Fatal("exhausted state wrong")
	}
	ks.Completed = 10
	if !ks.Done() {
		t.Fatal("done state wrong")
	}
}
