package core

import "gpusched/internal/sm"

// RoundRobin is the baseline CTA scheduler: it keeps every core as full as
// its resources allow, handing out CTAs in grid order to cores in rotating
// order, at most one placement per cycle (the dispatch-bandwidth model used
// by GPGPU-Sim-class simulators). Kernels are served in launch order, so a
// second kernel only receives resources the first cannot use.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns the baseline dispatcher.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Dispatcher.
func (r *RoundRobin) Name() string { return "rr" }

// Tick implements Dispatcher.
func (r *RoundRobin) Tick(m Machine) {
	for _, ks := range m.Kernels() {
		if ks.Exhausted() {
			continue
		}
		n := m.NumCores()
		for i := 0; i < n; i++ {
			c := m.Core((r.next + i) % n)
			if c.CanAccept(ks.Spec) {
				place(m, ks, c, m.Now(), 0)
				r.next = (c.ID() + 1) % n
				return // one CTA per cycle
			}
		}
		return // cores full for the frontmost unfinished kernel: stop
	}
}

// OnCTAComplete implements Dispatcher; refills happen on subsequent Ticks.
func (r *RoundRobin) OnCTAComplete(Machine, int, *sm.CTA) {}

// NextDispatchEvent implements FastForwarder: placement depends only on
// machine state, so only a completion (or a placement) can change a no-op
// Tick into an active one.
func (r *RoundRobin) NextDispatchEvent(uint64) uint64 { return NeverEvent }
