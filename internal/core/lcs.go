package core

import (
	"math"

	"gpusched/internal/sm"
)

// LCS implements lazy CTA scheduling. Each core launches at its
// occupancy-maximal CTA count under a greedy (GTO) warp scheduler. GTO
// concentrates issue slots on the oldest CTA, so the per-CTA issued
// instruction counts the SM already tracks form a measurement: when the
// first CTA on a core completes, the ratio
//
//	nOpt = round(totalIssuedOnCore / issuedByFirstFinishedCTA)
//
// estimates how many CTAs' worth of issue the core actually sustained
// during one CTA lifetime. If the core saturates with few CTAs (compute
// bound, or memory bound on bandwidth), younger CTAs issue little and the
// ratio is small; the extra CTAs only widen the cache footprint and deepen
// memory queues. The limit is applied lazily: resident CTAs run to
// completion, but slots beyond nOpt are not refilled.
//
// The abstract commits to exactly this measurement hook ("determine the
// optimal number of thread blocks by only measuring the number of
// instructions issued" under a greedy warp scheduler); the clamp bounds and
// per-core decision are this implementation's reconstruction.
type LCS struct {
	rr RoundRobin
	// limit[coreID] is the per-core CTA cap; 0 = undecided (use max).
	limit []int
	// decided[coreID] marks cores whose sampling epoch ended.
	decided []bool
	// MinLimit floors the decision (default 1).
	MinLimit int
	// KernelIdx selects which kernel LCS throttles (others, if any, are
	// dispatched by the baseline rule). Default 0.
	KernelIdx int
}

// NewLCS returns a lazy CTA scheduling dispatcher.
func NewLCS() *LCS { return &LCS{MinLimit: 1} }

// Name implements Dispatcher.
func (l *LCS) Name() string { return "lcs" }

// Limits returns the per-core decisions (0 = still sampling). The slice is
// live; callers must not mutate it.
func (l *LCS) Limits() []int { return l.limit }

// DecidedLimit returns the most common decided limit (the value the
// mixed-CKE allocator consumes), or fallback when no core has decided.
func (l *LCS) DecidedLimit(fallback int) int {
	counts := map[int]int{}
	for i, d := range l.decided {
		if d && l.limit[i] > 0 {
			counts[l.limit[i]]++
		}
	}
	best, bestN := fallback, 0
	//gpulint:ordered-irrelevant argmax with a total tie-break (higher count, then smaller value) selects the same winner in any iteration order
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

func (l *LCS) ensure(n int) {
	if len(l.limit) < n {
		l.limit = make([]int, n)
		l.decided = make([]bool, n)
	}
}

// Tick implements Dispatcher: baseline round-robin placement, except that a
// decided core is not refilled beyond its limit.
func (l *LCS) Tick(m Machine) {
	l.ensure(m.NumCores())
	for _, ks := range m.Kernels() {
		if ks.Exhausted() {
			continue
		}
		n := m.NumCores()
		for i := 0; i < n; i++ {
			c := m.Core((l.rr.next + i) % n)
			if !c.CanAccept(ks.Spec) {
				continue
			}
			if ks.Idx == l.KernelIdx && l.decided[c.ID()] &&
				c.ResidentOf(ks.Idx) >= l.limit[c.ID()] {
				continue // lazily throttled
			}
			place(m, ks, c, m.Now(), 0)
			l.rr.next = (c.ID() + 1) % n
			return
		}
		return
	}
}

// NextDispatchEvent implements FastForwarder: limits change only in
// OnCTAComplete, and placement reads only machine state.
func (l *LCS) NextDispatchEvent(uint64) uint64 { return NeverEvent }

// OnCTAComplete implements Dispatcher: the first completion on a core ends
// its sampling epoch and fixes the limit.
func (l *LCS) OnCTAComplete(m Machine, coreID int, cta *sm.CTA) {
	l.ensure(m.NumCores())
	if cta.KernelIdx != l.KernelIdx || l.decided[coreID] {
		return
	}
	l.decided[coreID] = true
	l.limit[coreID] = l.computeLimit(m, coreID, cta)
}

// computeLimit derives nOpt from the issue histogram at epoch end.
func (l *LCS) computeLimit(m Machine, coreID int, finished *sm.CTA) int {
	c := m.Core(coreID)
	total := finished.Issued
	resident := 0
	for _, r := range c.CTAs() {
		if r.KernelIdx != l.KernelIdx {
			continue
		}
		total += r.Issued
		resident++
	}
	maxCTAs := resident + 1 // the occupancy the core was running at
	if finished.Issued == 0 {
		return maxCTAs
	}
	n := int(math.Round(float64(total) / float64(finished.Issued)))
	if n < l.MinLimit {
		n = l.MinLimit
	}
	if n > maxCTAs {
		n = maxCTAs
	}
	return n
}
