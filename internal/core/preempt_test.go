package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"gpusched/internal/core"
	"gpusched/internal/gpu"
	"gpusched/internal/sm"
)

func TestPreemptiveImprovesPriorityTurnaround(t *testing.T) {
	// The paper scenario: the batch kernel owns every SM when the
	// latency-sensitive kernel arrives mid-run.
	batch := uniformKernel("batch", 96, 4, 400, 32)
	prio := uniformKernel("prio", 8, 4, 100, 32)
	prio.Arrival = 5_000

	run := func(d core.Dispatcher) gpu.Result {
		g := testGPU(t, d, sm.PolicyGTO, batch, prio)
		r := g.Run()
		if r.TimedOut {
			t.Fatalf("%s timed out", d.Name())
		}
		for i, k := range r.Kernels {
			if k.DoneCycle == 0 {
				t.Fatalf("%s: kernel %d never finished", d.Name(), i)
			}
		}
		return r
	}

	base := run(core.NewRoundRobin())
	pd := core.NewPreemptive(1, 0) // eager: any pending priority work preempts
	pre := run(pd)

	if pd.Drains == 0 {
		t.Fatal("eager Preemptive never preempted despite a saturated batch kernel")
	}
	if pre.Kernels[0].Evicted == 0 {
		t.Fatal("batch kernel reports no evictions")
	}
	if pre.Kernels[1].Evicted != 0 {
		t.Fatalf("priority kernel evicted %d of its own CTAs", pre.Kernels[1].Evicted)
	}
	if got, want := pre.Core.CTAsDrained, uint64(pre.Kernels[0].Evicted); got != want {
		t.Fatalf("core drain count %d != kernel eviction count %d", got, want)
	}
	if pre.Kernels[1].DoneCycle >= base.Kernels[1].DoneCycle {
		t.Fatalf("priority turnaround did not improve: preemptive %d vs round-robin %d",
			pre.Kernels[1].DoneCycle, base.Kernels[1].DoneCycle)
	}
	// Evicted batch CTAs restart from scratch, so the batch kernel still
	// retires its whole grid.
	if pre.Kernels[0].CTAs != 96 {
		t.Fatalf("batch kernel retired %d CTAs, want 96", pre.Kernels[0].CTAs)
	}
}

// evictRecord is one committed drain eviction as seen by the observer.
type evictRecord struct {
	Cycle     uint64
	CoreID    int
	KernelIdx int
	CTAID     int
}

// evictLogger wraps Preemptive, recording each committed eviction. Embedding
// promotes Dispatcher, FastForwarder, and OnCTAComplete; OnCTAEvicted is
// overridden to log before delegating.
type evictLogger struct {
	*core.Preemptive
	log []evictRecord
}

func (l *evictLogger) OnCTAEvicted(m core.Machine, coreID int, cta *sm.CTA) {
	l.log = append(l.log, evictRecord{m.Now(), coreID, cta.KernelIdx, cta.ID})
	l.Preemptive.OnCTAEvicted(m, coreID, cta)
}

// TestPreemptiveDeterminism proves the preemption path holds the simulator's
// core invariant: results and the full eviction log are identical across
// phase-A worker counts and with fast-forward on or off, and the log is
// ordered by (eviction cycle, core index) — the requeue FIFO key.
func TestPreemptiveDeterminism(t *testing.T) {
	batch := uniformKernel("batch", 64, 4, 300, 32)
	prio := uniformKernel("prio", 6, 4, 80, 32)
	prio.Arrival = 4_000

	type outcome struct {
		result gpu.Result
		log    []evictRecord
	}
	var ref *outcome
	var refName string
	for _, workers := range []int{1, 2, 7} {
		for _, noFF := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d ff=%v", workers, !noFF)
			d := &evictLogger{Preemptive: core.NewPreemptive(1, 0)}
			cfg := gpu.DefaultConfig()
			cfg.NumCores = 4
			cfg.MaxCycles = 5_000_000
			cfg.Core.WarpPolicy = sm.PolicyGTO
			cfg.Workers = workers
			cfg.DisableFastForward = noFF
			g, err := gpu.New(cfg, d, batch, prio)
			if err != nil {
				t.Fatal(err)
			}
			r := g.Run()
			if r.TimedOut {
				t.Fatalf("%s timed out", name)
			}
			got := &outcome{result: r, log: d.log}
			if len(got.log) == 0 {
				t.Fatalf("%s: no evictions logged", name)
			}
			for i := 1; i < len(got.log); i++ {
				a, b := got.log[i-1], got.log[i]
				if b.Cycle < a.Cycle || (b.Cycle == a.Cycle && b.CoreID < a.CoreID) {
					t.Fatalf("%s: eviction log out of (cycle, core) order at %d: %+v then %+v", name, i, a, b)
				}
			}
			if ref == nil {
				ref, refName = got, name
				continue
			}
			if !reflect.DeepEqual(got.result, ref.result) {
				t.Errorf("result diverged: %s vs %s", name, refName)
			}
			if !reflect.DeepEqual(got.log, ref.log) {
				t.Errorf("eviction log diverged: %s vs %s\n%v\nvs\n%v", name, refName, got.log, ref.log)
			}
		}
	}
}

// TestPreemptiveDeadlineGatesPreemption: with a generous deadline the
// predictor reports the priority kernel on track and no preemption happens;
// with deadline 0 (eager) the same mix preempts.
func TestPreemptiveDeadlineGatesPreemption(t *testing.T) {
	// The priority kernel carries sustained work (more CTAs than fit at
	// once), so the eager config keeps draining for it long after the
	// lax-deadline config's predictor has declared it on track. Before the
	// first priority CTA completes the predictor abstains and both configs
	// drain — the divergence is in the steady state.
	batch := uniformKernel("batch", 96, 4, 400, 32)
	prio := uniformKernel("prio", 48, 4, 80, 32)
	prio.Arrival = 4_000

	eager := core.NewPreemptive(1, 0)
	g := testGPU(t, eager, sm.PolicyGTO, batch, prio)
	if r := g.Run(); r.TimedOut {
		t.Fatal("eager run timed out")
	}
	if eager.Drains == 0 {
		t.Fatal("eager config never preempted; the deadline comparison below is vacuous")
	}

	lax := core.NewPreemptive(1, 1<<40) // deadline far beyond any plausible makespan
	g = testGPU(t, lax, sm.PolicyGTO, batch, prio)
	if r := g.Run(); r.TimedOut {
		t.Fatal("lax-deadline run timed out")
	}
	if lax.Drains >= eager.Drains {
		t.Fatalf("lax deadline drained %d >= eager %d; predictor gate not engaging", lax.Drains, eager.Drains)
	}
}

func TestPreemptiveSingleKernelDegradesGracefully(t *testing.T) {
	// Launch table without the priority index: behaves as plain placement,
	// never preempts, completes.
	spec := uniformKernel("k", 64, 2, 50, 16)
	d := core.NewPreemptive(1, 0)
	g := testGPU(t, d, sm.PolicyGTO, spec)
	r := g.Run()
	if r.TimedOut {
		t.Fatal("timed out")
	}
	if d.Drains != 0 {
		t.Fatalf("single-kernel run preempted %d times", d.Drains)
	}
	if r.Kernels[0].CTAs != 64 {
		t.Fatalf("retired %d CTAs, want 64", r.Kernels[0].CTAs)
	}
}
