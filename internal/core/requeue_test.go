package core

import (
	"testing"

	"gpusched/internal/isa"
	"gpusched/internal/kernel"
	"gpusched/internal/mem"
	"gpusched/internal/sm"
)

// fakeMachine is the minimal Machine for exercising place() directly.
type fakeMachine struct {
	now     uint64
	cores   []*sm.SM
	kernels []*KernelState
}

func (f *fakeMachine) Now() uint64             { return f.now }
func (f *fakeMachine) NumCores() int           { return len(f.cores) }
func (f *fakeMachine) Core(i int) *sm.SM       { return f.cores[i] }
func (f *fakeMachine) Kernels() []*KernelState { return f.kernels }
func (f *fakeMachine) Preempt(coreID int, cta *sm.CTA) bool {
	return f.cores[coreID].DrainCTA(cta)
}

func requeueSpec(ctas int) *kernel.Spec {
	return &kernel.Spec{
		Name:          "rq",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: isa.WarpSize},
		RegsPerThread: 16,
		Program: func(ctaID, w int) isa.Program {
			b := isa.NewBuilder()
			b.FAlu(1, 1)
			b.Exit()
			return b.Build()
		},
	}
}

func newFakeMachine(spec *kernel.Spec) *fakeMachine {
	cfg := sm.DefaultConfig()
	memCfg := mem.DefaultConfig()
	sys := mem.NewSystem(&memCfg, 1)
	f := &fakeMachine{}
	f.cores = []*sm.SM{sm.New(0, &cfg, sys, 1, func(int, *sm.CTA) {})}
	f.kernels = []*KernelState{{Spec: spec}}
	return f
}

// TestPlacePopsRequeueFIFO is the re-dispatch determinism regression: place()
// must serve evicted CTA ids strictly in Requeue() append order — the
// (eviction cycle, core index) order the GPU's phase-B commit produces —
// before touching NextCTA, with Placed counting both kinds of placement.
func TestPlacePopsRequeueFIFO(t *testing.T) {
	spec := requeueSpec(64)
	f := newFakeMachine(spec)
	ks := f.kernels[0]
	ks.NextCTA = 10 // ten fresh CTAs already dispatched

	ks.Requeue(5)
	ks.Requeue(3)
	ks.Requeue(9)
	if ks.PendingRequeue() != 3 || ks.Evicted != 3 {
		t.Fatalf("pending=%d evicted=%d after 3 requeues", ks.PendingRequeue(), ks.Evicted)
	}

	want := []int{5, 3, 9, 10, 11}
	for i, w := range want {
		cta := place(f, ks, f.cores[0], f.now, 0)
		if cta.ID != w {
			t.Fatalf("placement %d dispatched CTA %d, want %d (FIFO order broken)", i, cta.ID, w)
		}
	}
	if ks.NextCTA != 12 {
		t.Fatalf("NextCTA = %d after requeue pops + 2 fresh, want 12", ks.NextCTA)
	}
	if ks.Placed != 5 {
		t.Fatalf("Placed = %d, want 5 (re-dispatches must count)", ks.Placed)
	}
	if ks.PendingRequeue() != 0 {
		t.Fatalf("requeue not drained: %d left", ks.PendingRequeue())
	}
}

// TestExhaustedAccountsForRequeue: a kernel whose grid is fully dispatched
// but which has evicted CTAs pending is NOT exhausted, and Remaining counts
// the pending re-dispatches.
func TestExhaustedAccountsForRequeue(t *testing.T) {
	spec := requeueSpec(4)
	f := newFakeMachine(spec)
	ks := f.kernels[0]
	ks.NextCTA = 4 // grid exhausted
	if !ks.Exhausted() {
		t.Fatal("fully-dispatched kernel should be Exhausted")
	}
	if ks.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", ks.Remaining())
	}
	ks.Requeue(2)
	if ks.Exhausted() {
		t.Fatal("kernel with a pending re-dispatch must not be Exhausted")
	}
	if ks.Remaining() != 1 {
		t.Fatalf("Remaining = %d with one requeued CTA, want 1", ks.Remaining())
	}
	cta := place(f, ks, f.cores[0], f.now, 0)
	if cta.ID != 2 {
		t.Fatalf("re-dispatched CTA %d, want 2", cta.ID)
	}
	if !ks.Exhausted() || ks.Remaining() != 0 {
		t.Fatalf("after re-dispatch: exhausted=%v remaining=%d, want true/0", ks.Exhausted(), ks.Remaining())
	}
	if ks.NextCTA != 4 {
		t.Fatalf("NextCTA = %d, requeue pop must not advance it", ks.NextCTA)
	}
}
