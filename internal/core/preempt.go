package core

import "gpusched/internal/sm"

// Preemptive is the drain-based priority dispatcher: one kernel of the
// launch table is latency-sensitive, the rest are batch. Placement always
// serves the priority kernel first; when it has pending work but no core can
// accept a CTA, the dispatcher preempts batch CTAs at CTA boundaries —
// drain/switch preemption in Pai et al.'s taxonomy: the victim stops issuing,
// its in-flight memory work completes, the freed slot goes to the priority
// kernel, and the victim's CTA id re-enters its kernel's FIFO requeue to be
// re-run from scratch later.
//
// With DeadlineCycles == 0 preemption is eager: any pending priority work
// steals a slot. With a deadline, the online Predictor gates the steal: batch
// CTAs are only evicted while the priority kernel's predicted completion
// misses the deadline (or cannot be predicted yet — a starved kernel has no
// issue rate to extrapolate). Eviction works at SM granularity: one campaign
// core at a time (drainCore) drains its whole batch population, and batch
// re-dispatch onto that core is suppressed until a priority CTA lands there,
// so a large priority CTA cannot be starved by its own victims re-taking the
// freed space.
type Preemptive struct {
	rr RoundRobin

	// PriorityKernel is the launch-table index of the latency-sensitive
	// kernel (default 1: the kernel that would otherwise wait behind the
	// batch kernel's launch-order priority).
	PriorityKernel int
	// DeadlineCycles is the priority kernel's absolute completion deadline
	// in cycles from launch of the machine (all kernels arrive at cycle 0
	// in this model). 0 means eager preemption.
	DeadlineCycles uint64
	// EpochCycles is the control period for sampling and preemption
	// decisions (default 512).
	EpochCycles uint64

	// Drains counts accepted drain requests (test/report probe).
	Drains int

	pred       Predictor
	lastSample uint64
	sampled    bool
	// pendingDrain is the number of accepted drains not yet committed; the
	// controller runs one core-granularity campaign at a time and waits for
	// every victim of the current campaign to evict before starting another.
	pendingDrain int
	// drainCore is the core the current eviction campaign targets (-1 when
	// none).
	drainCore int
	// pressing is the controller's latest per-epoch verdict that the
	// priority kernel needs slots (pending work, eager or predicted to miss
	// its deadline). While pressing, batch dispatch pauses: re-placing
	// evicted batch CTAs into slots freed by completing priority CTAs would
	// only queue them up for another eviction.
	pressing bool
}

// NewPreemptive returns the drain-preemption dispatcher. priority < 0
// selects the default (kernel 1); deadline 0 means eager.
func NewPreemptive(priority int, deadline uint64) *Preemptive {
	if priority < 0 {
		priority = 1
	}
	return &Preemptive{
		PriorityKernel: priority,
		DeadlineCycles: deadline,
		EpochCycles:    512,
		drainCore:      -1,
	}
}

// Name implements Dispatcher.
func (p *Preemptive) Name() string { return "preemptive" }

func (p *Preemptive) epoch() uint64 {
	if p.EpochCycles == 0 {
		return 512
	}
	return p.EpochCycles
}

// priorityState returns the priority kernel's state, nil when the launch
// table has no such index (single-kernel runs degrade to round-robin).
func (p *Preemptive) priorityState(m Machine) *KernelState {
	kernels := m.Kernels()
	if p.PriorityKernel < 0 || p.PriorityKernel >= len(kernels) {
		return nil
	}
	return kernels[p.PriorityKernel]
}

// Tick implements Dispatcher: epoch work (rate sampling + preemption
// control) at epoch boundaries, then at most one placement per cycle.
func (p *Preemptive) Tick(m Machine) {
	now := m.Now()
	if !p.sampled || now-p.lastSample >= p.epoch() {
		p.sampled = true
		p.lastSample = now
		p.pred.Sample(m, now)
		p.maybePreempt(m, now)
	}
	p.placeOne(m)
}

// placeOne performs the cycle's placement: the priority kernel first, then
// the batch kernels in launch order. During an eviction campaign the batch
// pass skips the drained core so the freed space waits for a priority CTA.
func (p *Preemptive) placeOne(m Machine) {
	pk := p.priorityState(m)
	if pk == nil || pk.Exhausted() {
		p.drainCore = -1 // campaign over: the priority kernel needs nothing
		p.pressing = false
	}
	n := m.NumCores()
	if pk != nil && !pk.Exhausted() {
		for i := 0; i < n; i++ {
			c := m.Core((p.rr.next + i) % n)
			if c.CanAccept(pk.Spec) {
				place(m, pk, c, m.Now(), 0)
				p.rr.next = (c.ID() + 1) % n
				if c.ID() == p.drainCore {
					p.drainCore = -1 // campaign succeeded
				}
				return
			}
		}
	}
	if p.pressing {
		return // batch dispatch paused while the priority kernel needs slots
	}
	for _, ks := range m.Kernels() {
		if ks.Idx == p.PriorityKernel || ks.Exhausted() {
			continue
		}
		for i := 0; i < n; i++ {
			c := m.Core((p.rr.next + i) % n)
			if c.ID() == p.drainCore {
				continue // reserved for the priority kernel
			}
			if c.CanAccept(ks.Spec) {
				place(m, ks, c, m.Now(), 0)
				p.rr.next = (c.ID() + 1) % n
				return
			}
		}
		return // cores full for the frontmost batch kernel: stop
	}
}

// maybePreempt runs the per-epoch preemption controller.
func (p *Preemptive) maybePreempt(m Machine, now uint64) {
	pk := p.priorityState(m)
	if pk == nil || pk.Exhausted() {
		p.pressing = false
		return // no pending priority work
	}
	if p.pendingDrain > 0 {
		return // a drain is still committing; decide again next epoch
	}
	for i := 0; i < m.NumCores(); i++ {
		if m.Core(i).CanAccept(pk.Spec) {
			p.pressing = false
			return // capacity exists: normal placement serves the kernel
		}
	}
	if p.DeadlineCycles > 0 {
		if done, ok := p.pred.PredictedDone(m, p.PriorityKernel, now); ok && done <= p.DeadlineCycles {
			p.pressing = false
			return // on track: don't pay the preemption cost
		}
	}
	p.pressing = true
	coreID := p.pickVictimCore(m)
	if coreID < 0 {
		return // every core is already all priority work (or draining)
	}
	// Drain the whole core's batch population at once (SM-granularity
	// drain/switch). Evicting one CTA at a time serializes slot acquisition
	// behind each victim's memory quiesce — against a memory-bound batch
	// kernel the priority kernel would trickle in one slot per round trip.
	for _, cta := range m.Core(coreID).CTAs() {
		if cta.KernelIdx == p.PriorityKernel || cta.State() != sm.CTARunning {
			continue
		}
		if m.Preempt(coreID, cta) {
			p.pendingDrain++
			p.Drains++
			p.drainCore = coreID
		}
	}
}

// pickVictimCore selects the core whose batch CTAs will drain: the campaign
// core if it still holds running batch CTAs, otherwise the core with the
// most — ties to the lowest index. Returns -1 when no core holds a running
// batch CTA.
func (p *Preemptive) pickVictimCore(m Machine) int {
	runningBatch := func(coreID int) int {
		count := 0
		for _, cta := range m.Core(coreID).CTAs() {
			if cta.KernelIdx != p.PriorityKernel && cta.State() == sm.CTARunning {
				count++
			}
		}
		return count
	}
	if p.drainCore >= 0 && runningBatch(p.drainCore) > 0 {
		return p.drainCore
	}
	core, best := -1, 0
	for i := 0; i < m.NumCores(); i++ {
		if n := runningBatch(i); n > best {
			best, core = n, i
		}
	}
	return core
}

// OnCTAComplete implements Dispatcher: completions feed the cost model.
func (p *Preemptive) OnCTAComplete(m Machine, coreID int, cta *sm.CTA) {
	p.pred.OnCTAComplete(m, cta)
}

// OnCTAEvicted implements PreemptionObserver: the commit of our drain
// request re-arms the controller.
func (p *Preemptive) OnCTAEvicted(m Machine, coreID int, cta *sm.CTA) {
	if p.pendingDrain > 0 {
		p.pendingDrain--
	}
}

// NextDispatchEvent implements FastForwarder: between epoch boundaries Tick
// only attempts placements, which are no-ops while the machine is frozen, so
// the next time-driven work is the next epoch boundary.
func (p *Preemptive) NextDispatchEvent(now uint64) uint64 {
	if !p.sampled {
		return now
	}
	next := p.lastSample + p.epoch()
	if next < now {
		return now
	}
	return next
}
