// Package core implements the paper's contribution: thread-block (CTA)
// scheduling policies. A Dispatcher decides, cycle by cycle, which CTAs of
// which kernels are placed on which SMs:
//
//   - RoundRobin — the baseline: keep every SM at its occupancy-maximal CTA
//     count, assigning CTAs in grid order round-robin across cores.
//   - LCS — lazy CTA scheduling: start occupancy-maximal under a greedy
//     (GTO) warp scheduler, sample per-CTA issue counts until the first CTA
//     on a core completes, derive the useful CTA count from the issue
//     histogram, and lazily stop refilling beyond it.
//   - BCS — block CTA scheduling: dispatch gangs of consecutive CTAs to the
//     same SM so inter-CTA locality lands in one L1 (paired with the BAWS
//     warp scheduler in internal/sm).
//   - Spatial / Mixed concurrent kernel execution — two kernels share the
//     GPU by partitioning cores (spatial) or by co-residing on every core
//     with LCS-derived per-kernel limits (mixed, the paper's proposal).
package core

import (
	"gpusched/internal/kernel"
	"gpusched/internal/sm"
)

// KernelState is one launched kernel's dispatch bookkeeping, owned by the
// GPU front-end and manipulated by dispatchers.
type KernelState struct {
	// Spec is the launched kernel.
	Spec *kernel.Spec
	// Idx is the kernel's index in the launch table (stats bucket and
	// address-space id).
	Idx int
	// AddrBase is the kernel's global address-space offset.
	AddrBase uint64
	// NextCTA is the next undispatched linear CTA id.
	NextCTA int
	// Placed counts CTA placements, including re-dispatches of evicted
	// CTAs (which pop the requeue without advancing NextCTA). The cycle
	// loop's idle detection diffs it.
	Placed int
	// Completed counts retired CTAs.
	Completed int
	// Evicted counts drain-preemption evictions of this kernel's CTAs.
	Evicted int
	// LaunchCycle is when dispatch began; DoneCycle when the last CTA
	// retired.
	LaunchCycle uint64
	DoneCycle   uint64
	launched    bool
	// requeued holds evicted-but-unfinished CTA ids awaiting re-dispatch,
	// FIFO. Only the GPU's phase-B preemption commit appends (in core-index
	// order within a cycle) and only place pops, so the re-dispatch order is
	// deterministically keyed by (eviction cycle, core index).
	requeued []int
}

// Requeue appends an evicted CTA id for re-dispatch. Called by the GPU's
// serial preemption commit, never from phase-A worker goroutines.
func (k *KernelState) Requeue(ctaID int) {
	k.requeued = append(k.requeued, ctaID)
	k.Evicted++
}

// PendingRequeue returns how many evicted CTAs await re-dispatch.
func (k *KernelState) PendingRequeue() int { return len(k.requeued) }

// Exhausted reports whether every CTA has been dispatched and no evicted
// CTA awaits re-dispatch.
func (k *KernelState) Exhausted() bool {
	return k.NextCTA >= k.Spec.NumCTAs() && len(k.requeued) == 0
}

// Done reports whether every CTA has retired.
func (k *KernelState) Done() bool { return k.Completed >= k.Spec.NumCTAs() }

// Remaining returns the number of CTAs still to dispatch (undispatched plus
// evicted awaiting re-dispatch).
func (k *KernelState) Remaining() int {
	return k.Spec.NumCTAs() - k.NextCTA + len(k.requeued)
}

// Machine is the view a Dispatcher has of the GPU.
type Machine interface {
	// Now returns the current cycle.
	Now() uint64
	// NumCores returns the SM count.
	NumCores() int
	// Core returns SM i.
	Core(i int) *sm.SM
	// Kernels returns the launch table in launch order.
	Kernels() []*KernelState
	// Preempt asks core coreID to drain cta at the next CTA boundary. It
	// returns false when the CTA is no longer resident and running (e.g. a
	// natural completion raced the request). The eviction completes
	// asynchronously: once the CTA's in-flight memory work finishes it
	// leaves the core, its id joins the kernel's re-dispatch queue, and a
	// dispatcher implementing PreemptionObserver is notified.
	Preempt(coreID int, cta *sm.CTA) bool
}

// Dispatcher is a CTA scheduling policy.
type Dispatcher interface {
	// Name identifies the policy in reports.
	Name() string
	// Tick runs once per cycle before the cores tick and may place CTAs.
	Tick(m Machine)
	// OnCTAComplete is called when a CTA retires, after the owning
	// KernelState counters were updated.
	OnCTAComplete(m Machine, coreID int, cta *sm.CTA)
}

// PreemptionObserver is the optional Dispatcher extension notified when a
// drain eviction commits (serially, in core-index order within a cycle —
// the same discipline as OnCTAComplete). The evicted CTA's id has already
// joined its kernel's re-dispatch queue when the observer runs.
type PreemptionObserver interface {
	OnCTAEvicted(m Machine, coreID int, cta *sm.CTA)
}

// NeverEvent is the FastForwarder bound meaning "no time-driven work: only a
// CTA placement or completion can change what Tick does".
const NeverEvent = ^uint64(0)

// FastForwarder is the opt-in contract a Dispatcher signs so the GPU cycle
// loop may skip provably-idle cycles across it. NextDispatchEvent(now)
// returns the earliest cycle >= now at which Tick may do time-driven work;
// the implementation certifies that, as long as no CTA is placed or
// completes, Tick is a pure no-op for every cycle in [now, that bound) — no
// internal state changes, no placements, no counter updates. Policies whose
// Tick does time-driven work (epoch controllers) return their next
// boundary; policies that only react to machine state return NeverEvent.
// Dispatchers that do not implement the interface are never skipped.
type FastForwarder interface {
	NextDispatchEvent(now uint64) uint64
}

// place dispatches kernel ks's next CTA onto core c with the given BCS gang
// identity, stamping launch bookkeeping. Evicted CTAs re-dispatch first
// (FIFO from the requeue) so preempted work resumes before fresh CTAs start;
// every dispatcher therefore re-dispatches transparently.
func place(m Machine, ks *KernelState, c *sm.SM, blockKey uint64, indexInBlock int) *sm.CTA {
	if !ks.launched {
		ks.launched = true
		ks.LaunchCycle = m.Now()
	}
	id := ks.NextCTA
	if len(ks.requeued) > 0 {
		id = ks.requeued[0]
		copy(ks.requeued, ks.requeued[1:])
		ks.requeued = ks.requeued[:len(ks.requeued)-1]
	} else {
		ks.NextCTA++
	}
	ks.Placed++
	cta := c.AddCTA(ks.Spec, ks.Idx, id, ks.AddrBase, blockKey, indexInBlock, m.Now())
	return cta
}
