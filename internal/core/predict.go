package core

import "gpusched/internal/sm"

// Predictor is the online structural runtime model the preemptive dispatcher
// steers by (after Pai et al.'s CTA-boundary preemption work): instead of a
// profile pass, it builds a per-kernel cost model from counters the machine
// already maintains for the LCS probe. Per kernel it tracks
//
//   - the mean instruction cost of a CTA, from the per-CTA Issued counters
//     of naturally completed CTAs (evicted CTAs are excluded — their partial
//     counts would bias the cost down), and
//   - the kernel's current issue rate, from the per-core KernelIssued
//     aggregates sampled once per control epoch.
//
// Predicted completion is then now + remainingCTAs·ctaCost/rate. The model
// deliberately ignores partial progress of resident CTAs — a conservative
// (late-leaning) simplification that costs at most one extra preemption
// check, never a missed one.
type Predictor struct {
	// ctaCostSum/ctaDone accumulate completed-CTA issue counts per kernel.
	ctaCostSum []uint64
	ctaDone    []int
	// lastIssued is the per-kernel aggregate issue count at the last sample;
	// windowIssued/windowCycles hold the most recent completed window.
	lastIssued   []uint64
	windowIssued []uint64
	windowCycles uint64
	lastSample   uint64
	sampled      bool
}

func (p *Predictor) ensure(n int) {
	if len(p.ctaCostSum) >= n {
		return
	}
	p.ctaCostSum = make([]uint64, n)
	p.ctaDone = make([]int, n)
	p.lastIssued = make([]uint64, n)
	p.windowIssued = make([]uint64, n)
}

// Sample closes the current rate window at cycle now. Call once per control
// epoch, from the dispatcher's serial Tick.
func (p *Predictor) Sample(m Machine, now uint64) {
	kernels := m.Kernels()
	p.ensure(len(kernels))
	for k := range kernels {
		var total uint64
		for i := 0; i < m.NumCores(); i++ {
			total += m.Core(i).KernelIssued[k]
		}
		if p.sampled {
			p.windowIssued[k] = total - p.lastIssued[k]
		}
		p.lastIssued[k] = total
	}
	if p.sampled {
		p.windowCycles = now - p.lastSample
	}
	p.lastSample = now
	p.sampled = true
}

// OnCTAComplete folds a naturally completed CTA into the cost model.
func (p *Predictor) OnCTAComplete(m Machine, cta *sm.CTA) {
	p.ensure(len(m.Kernels()))
	if cta.KernelIdx < 0 || cta.KernelIdx >= len(p.ctaCostSum) {
		return
	}
	p.ctaCostSum[cta.KernelIdx] += cta.Issued
	p.ctaDone[cta.KernelIdx]++
}

// PredictedDone estimates the cycle kernel k finishes. ok is false while the
// model lacks data: no completed CTA yet (unknown cost) or a zero-issue last
// window (unknown — possibly infinite — rate); a starved kernel is therefore
// "unpredictable", which callers should treat as a deadline violation.
func (p *Predictor) PredictedDone(m Machine, k int, now uint64) (uint64, bool) {
	kernels := m.Kernels()
	p.ensure(len(kernels))
	if k < 0 || k >= len(kernels) {
		return 0, false
	}
	ks := kernels[k]
	remaining := ks.Spec.NumCTAs() - ks.Completed
	if remaining <= 0 {
		return now, true
	}
	if p.ctaDone[k] == 0 || p.windowCycles == 0 || p.windowIssued[k] == 0 {
		return 0, false
	}
	cost := float64(p.ctaCostSum[k]) / float64(p.ctaDone[k])
	rate := float64(p.windowIssued[k]) / float64(p.windowCycles)
	return now + uint64(cost*float64(remaining)/rate), true
}
