package trace

import (
	"strings"
	"testing"

	"gpusched/internal/core"
	"gpusched/internal/gpu"
	"gpusched/internal/workloads"
)

func runTraced(t *testing.T, name string, d core.Dispatcher, epoch uint64) (*Timeline, gpu.Result) {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	cfg := gpu.DefaultConfig()
	cfg.NumCores = 4
	g, err := gpu.New(cfg, d, w.Build(workloads.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	tl := Attach(g, epoch)
	r := g.Run()
	if r.TimedOut {
		t.Fatal("timed out")
	}
	return tl, r
}

func TestTimelineSamples(t *testing.T) {
	tl, res := runTraced(t, "stencil", core.NewRoundRobin(), 512)
	if len(tl.Samples) < 2 {
		t.Fatalf("only %d samples for a %d-cycle run", len(tl.Samples), res.Cycles)
	}
	for i, s := range tl.Samples {
		if i > 0 && s.Cycle <= tl.Samples[i-1].Cycle {
			t.Fatal("samples out of order")
		}
		if s.IPC < 0 || s.L1MissRate < 0 || s.L1MissRate > 1 {
			t.Fatalf("degenerate sample %+v", s)
		}
		if s.ResidentCTAs < 0 || s.ActiveCores > 4 {
			t.Fatalf("impossible occupancy %+v", s)
		}
	}
	// The run did work, so some epoch must show issue activity.
	if tl.PeakIPC() <= 0 {
		t.Fatal("no epoch recorded nonzero IPC")
	}
	if tl.MeanResident() <= 0 {
		t.Fatal("no resident CTAs observed")
	}
}

func TestTimelineEpochIPCConsistentWithTotal(t *testing.T) {
	tl, res := runTraced(t, "vadd", core.NewRoundRobin(), 256)
	// Sum of epoch instruction counts can't exceed the total issued.
	var sum float64
	for _, s := range tl.Samples {
		sum += s.IPC * float64(tl.Epoch)
	}
	if sum > float64(res.InstrIssued)*1.01 {
		t.Fatalf("epoch instruction mass %f exceeds total %d", sum, res.InstrIssued)
	}
	if sum < float64(res.InstrIssued)*0.5 {
		t.Fatalf("epoch sampling lost most instructions: %f of %d (sampling broken?)", sum, res.InstrIssued)
	}
}

func TestTimelineShowsThrottleDrop(t *testing.T) {
	// Under a static limit of 1, mean occupancy must sit well below the
	// baseline's.
	base, _ := runTraced(t, "spmv", core.NewRoundRobin(), 512)
	lim, _ := runTraced(t, "spmv", core.NewLimited(1), 512)
	if lim.MeanResident() >= base.MeanResident() {
		t.Fatalf("throttled occupancy %.1f not below baseline %.1f",
			lim.MeanResident(), base.MeanResident())
	}
}

func TestWriteCSV(t *testing.T) {
	tl := &Timeline{Epoch: 100, Samples: []Sample{
		{Cycle: 0, IPC: 1.5, ResidentCTAs: 10, ActiveCores: 4, L1MissRate: 0.25, DRAMReads: 7, DRAMRowHitRate: 0.5},
	}}
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "cycle,ipc,") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "0,1.5000,10,4,0.2500,7,0.5000") {
		t.Fatalf("bad row: %q", out)
	}
}

func TestEmptyTimelineHelpers(t *testing.T) {
	tl := &Timeline{}
	if tl.PeakIPC() != 0 || tl.MeanResident() != 0 {
		t.Fatal("empty timeline helpers nonzero")
	}
}
