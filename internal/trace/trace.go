// Package trace samples a running simulation into a timeline: per-epoch
// IPC, occupancy, and memory-system rates. Timelines make scheduling
// behaviour visible — LCS's sampling epoch and throttle point, BCS's gang
// waves, the phase change when a mixed-CKE kernel drains — and export as
// CSV for plotting.
package trace

import (
	"fmt"
	"io"

	"gpusched/internal/gpu"
	"gpusched/internal/stats"
)

// Sample is one epoch snapshot. Rates are over the epoch, not cumulative.
type Sample struct {
	// Cycle is the epoch start.
	Cycle uint64
	// IPC is warp instructions per cycle across the GPU.
	IPC float64
	// ResidentCTAs counts CTAs on all cores at the sample instant.
	ResidentCTAs int
	// ActiveCores counts cores holding at least one CTA.
	ActiveCores int
	// L1MissRate is misses/accesses during the epoch (0 if no accesses).
	L1MissRate float64
	// DRAMReads counts line fetches during the epoch.
	DRAMReads uint64
	// DRAMRowHitRate is the epoch's row-buffer hit fraction.
	DRAMRowHitRate float64
}

// Timeline is the sampled history of one simulation.
type Timeline struct {
	// Epoch is the sampling period in cycles.
	Epoch uint64
	// Samples are in time order.
	Samples []Sample
}

// Attach registers a sampler on g with the given epoch (cycles). Call
// before g.Run; the returned Timeline fills as the simulation advances.
func Attach(g *gpu.GPU, epoch uint64) *Timeline {
	tl := &Timeline{Epoch: epoch}
	var prevInstr uint64
	var prevL1 stats.Cache
	var prevDRAM stats.DRAM
	var prevCycle uint64
	first := true
	g.SetEpochHook(epoch, func(now uint64) {
		var instr uint64
		var l1 stats.Cache
		resident, active := 0, 0
		for i := 0; i < g.NumCores(); i++ {
			c := g.Core(i)
			instr += c.Stats.InstrIssued
			l1.Add(c.L1Stats())
			if n := c.ResidentCTAs(); n > 0 {
				resident += n
				active++
			}
		}
		dram := g.MemSystem().DRAMStats()
		if !first {
			dc := now - prevCycle
			s := Sample{
				Cycle:        prevCycle,
				ResidentCTAs: resident,
				ActiveCores:  active,
				DRAMReads:    dram.Reads - prevDRAM.Reads,
			}
			if dc > 0 {
				s.IPC = float64(instr-prevInstr) / float64(dc)
			}
			if acc := l1.Accesses - prevL1.Accesses; acc > 0 {
				s.L1MissRate = float64(l1.Misses-prevL1.Misses) / float64(acc)
			}
			rowTotal := (dram.RowHits + dram.RowMisses) - (prevDRAM.RowHits + prevDRAM.RowMisses)
			if rowTotal > 0 {
				s.DRAMRowHitRate = float64(dram.RowHits-prevDRAM.RowHits) / float64(rowTotal)
			}
			tl.Samples = append(tl.Samples, s)
		}
		first = false
		prevInstr, prevL1, prevDRAM, prevCycle = instr, l1, dram, now
	})
	return tl
}

// WriteCSV renders the timeline.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,ipc,resident_ctas,active_cores,l1_miss_rate,dram_reads,dram_row_hit_rate"); err != nil {
		return err
	}
	for _, s := range tl.Samples {
		if _, err := fmt.Fprintf(w, "%d,%.4f,%d,%d,%.4f,%d,%.4f\n",
			s.Cycle, s.IPC, s.ResidentCTAs, s.ActiveCores,
			s.L1MissRate, s.DRAMReads, s.DRAMRowHitRate); err != nil {
			return err
		}
	}
	return nil
}

// PeakIPC returns the highest epoch IPC (0 for an empty timeline).
func (tl *Timeline) PeakIPC() float64 {
	peak := 0.0
	for _, s := range tl.Samples {
		if s.IPC > peak {
			peak = s.IPC
		}
	}
	return peak
}

// MeanResident returns the average resident CTA count over the run.
func (tl *Timeline) MeanResident() float64 {
	if len(tl.Samples) == 0 {
		return 0
	}
	sum := 0
	for _, s := range tl.Samples {
		sum += s.ResidentCTAs
	}
	return float64(sum) / float64(len(tl.Samples))
}
