package workloads

import (
	"testing"

	"gpusched/internal/isa"
	"gpusched/internal/kernel"
	"gpusched/internal/sm"
)

func drain(p isa.Program, cap int) []isa.WarpInstr {
	var out []isa.WarpInstr
	var buf isa.WarpInstr
	for p.Next(&buf) {
		out = append(out, buf)
		if len(out) > cap {
			break
		}
	}
	return out
}

func TestCatalogIntegrity(t *testing.T) {
	ws := All()
	if len(ws) != 19 {
		t.Fatalf("catalog has %d workloads, want 19", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if w.Name == "" || w.ModeledOn == "" || w.Class == "" || w.Build == nil {
			t.Errorf("workload %+v incomplete", w.Name)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
	for i := 1; i < len(ws); i++ {
		if ws[i-1].Name > ws[i].Name {
			t.Errorf("catalog not in name order: %q before %q", ws[i-1].Name, ws[i].Name)
		}
	}
}

func TestByNameAndClass(t *testing.T) {
	w, ok := ByName("vadd")
	if !ok || w.Name != "vadd" {
		t.Fatal("ByName(vadd) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) succeeded")
	}
	for _, c := range []Class{ClassCompute, ClassStream, ClassCache, ClassLocality, ClassIrregular, ClassSync} {
		if len(ByClass(c)) == 0 {
			t.Errorf("class %s has no members", c)
		}
	}
	if len(LocalitySet()) < 4 {
		t.Errorf("LocalitySet has %d members, want >= 4", len(LocalitySet()))
	}
	if len(Names()) != len(All()) {
		t.Error("Names/All length mismatch")
	}
}

func TestAllSpecsValidateAndFit(t *testing.T) {
	limits := sm.DefaultConfig().Limits
	for _, w := range All() {
		for _, s := range []Scale{ScaleTest, ScaleSmall, ScaleFull} {
			spec := w.Build(s)
			if err := spec.Validate(); err != nil {
				t.Errorf("%s scale %d: %v", w.Name, s, err)
				continue
			}
			n, binding := limits.MaxResident(spec)
			if n < 1 {
				t.Errorf("%s scale %d: does not fit an SM (%s)", w.Name, s, binding)
			}
			if n > limits.MaxCTAs {
				t.Errorf("%s: MaxResident %d exceeds slot limit", w.Name, n)
			}
		}
	}
}

func TestProgramsTerminateWithExit(t *testing.T) {
	for _, w := range All() {
		spec := w.Build(ScaleTest)
		for _, warp := range []int{0, spec.WarpsPerCTA() - 1} {
			p := spec.Program(0, warp)
			instrs := drain(p, 1_000_000)
			if len(instrs) == 0 {
				t.Fatalf("%s warp %d: empty program", w.Name, warp)
			}
			last := instrs[len(instrs)-1]
			if last.Op != isa.OpExit {
				t.Errorf("%s warp %d: last op %v, want EXIT", w.Name, warp, last.Op)
			}
		}
	}
}

func TestProgramsDeterministic(t *testing.T) {
	for _, w := range All() {
		spec := w.Build(ScaleTest)
		a := drain(spec.Program(1, 1), 1_000_000)
		b := drain(spec.Program(1, 1), 1_000_000)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ %d vs %d", w.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: instr %d differs", w.Name, i)
			}
		}
	}
}

func TestProgramsDifferAcrossWarps(t *testing.T) {
	// Different warps must not all read the same addresses (that would be
	// a degenerate workload). Compare first memory instruction addresses.
	for _, w := range All() {
		if w.Name == "kmeans" {
			continue // centroid broadcast loads are intentionally shared
		}
		spec := w.Build(ScaleTest)
		a := drain(spec.Program(0, 0), 1_000_000)
		b := drain(spec.Program(1, 0), 1_000_000)
		differ := false
		for i := range a {
			if i >= len(b) {
				break
			}
			if a[i].Op == isa.OpLoadGlobal && b[i].Op == isa.OpLoadGlobal && a[i].Addrs != b[i].Addrs {
				differ = true
				break
			}
		}
		if !differ {
			t.Errorf("%s: CTA 0 and CTA 1 warp streams identical", w.Name)
		}
	}
}

func TestBarrierCountsMatchAcrossWarps(t *testing.T) {
	// Every warp of a CTA must execute the same number of barriers or the
	// CTA deadlocks.
	for _, w := range All() {
		spec := w.Build(ScaleTest)
		want := -1
		for warp := 0; warp < spec.WarpsPerCTA(); warp++ {
			n := 0
			for _, wi := range drain(spec.Program(0, warp), 1_000_000) {
				if wi.Op == isa.OpBarrier {
					n++
				}
			}
			if want == -1 {
				want = n
			} else if n != want {
				t.Errorf("%s: warp %d has %d barriers, warp 0 has %d", w.Name, warp, n, want)
			}
		}
	}
}

func TestInstructionMixMatchesClass(t *testing.T) {
	memFrac := func(name string) float64 {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		spec := w.Build(ScaleSmall)
		instrs := drain(spec.Program(0, 0), 1_000_000)
		memOps := 0
		for _, wi := range instrs {
			if wi.Op.IsGlobal() {
				memOps++
			}
		}
		return float64(memOps) / float64(len(instrs))
	}
	if f := memFrac("vadd"); f < 0.4 {
		t.Errorf("vadd global-op fraction %.2f, want streaming-heavy", f)
	}
	if f := memFrac("blackscholes"); f > 0.25 {
		t.Errorf("blackscholes global-op fraction %.2f, want compute-heavy", f)
	}
}

func TestSPMVWindowsArePrivate(t *testing.T) {
	w, _ := ByName("spmv")
	spec := w.Build(ScaleTest)
	gatherAddrs := func(cta int) map[uint32]bool {
		set := map[uint32]bool{}
		for _, wi := range drain(spec.Program(cta, 0), 1_000_000) {
			if wi.Op == isa.OpLoadGlobal && wi.Addrs[0] >= regionB && wi.Addrs[0] < regionC {
				for _, a := range wi.Addrs {
					set[a/4096] = true // 4KB window granularity
				}
			}
		}
		return set
	}
	w0, w1 := gatherAddrs(0), gatherAddrs(1)
	for k := range w0 {
		if w1[k] {
			t.Fatalf("CTA windows overlap at 4KB page %d", k)
		}
	}
	if len(w0) == 0 || len(w1) == 0 {
		t.Fatal("no gather accesses found")
	}
}

func TestLocalityWorkloadsShareLinesAcrossCTAs(t *testing.T) {
	// Adjacent CTAs of the BCS-target workloads must re-read a substantial
	// fraction of each other's input lines — the property BCS gang dispatch
	// converts into same-core L1/MSHR hits.
	for _, name := range []string{"stencil", "hotspot", "conv2d", "pathfinder"} {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		spec := w.Build(ScaleTest)
		loadLines := func(cta, warp int) map[uint32]bool {
			set := map[uint32]bool{}
			for _, wi := range drain(spec.Program(cta, warp), 1_000_000) {
				if wi.Op == isa.OpLoadGlobal {
					for l := 0; l < isa.WarpSize; l++ {
						if wi.Mask&(1<<l) != 0 {
							set[wi.Addrs[l]/128] = true
						}
					}
				}
			}
			return set
		}
		a, b := loadLines(0, 0), loadLines(1, 0)
		shared := 0
		for k := range a {
			if b[k] {
				shared++
			}
		}
		if frac := float64(shared) / float64(len(a)); frac < 0.25 {
			t.Errorf("%s: adjacent CTAs share only %.0f%% of load lines", name, frac*100)
		}
	}
}

func TestHash2Hash3Deterministic(t *testing.T) {
	if hash2(3, 4) != hash2(3, 4) || hash3(1, 2, 3) != hash3(1, 2, 3) {
		t.Fatal("hash not deterministic")
	}
	if hash2(3, 4) == hash2(4, 3) {
		t.Error("hash2 symmetric (weak mixing)")
	}
	if hash3(1, 2, 3) == hash3(1, 2, 4) {
		t.Error("hash3 ignores third argument")
	}
}

func TestXs32NonZero(t *testing.T) {
	s := uint32(1)
	for i := 0; i < 10000; i++ {
		s = xs32(s)
		if s == 0 {
			t.Fatal("xorshift collapsed to zero")
		}
	}
}

func TestLoopProgramPhases(t *testing.T) {
	calls := []string{}
	mk := func(tag string) Emit {
		return func(buf *isa.WarpInstr, iter int) {
			buf.Op = isa.OpIAlu
			buf.Mask = isa.FullMask
			calls = append(calls, tag)
		}
	}
	p := &loopProgram{
		prologue: []Emit{mk("p")},
		body:     []Emit{mk("b1"), mk("b2")},
		epilogue: []Emit{mk("e")},
		iters:    2,
	}
	var buf isa.WarpInstr
	n := 0
	for p.Next(&buf) {
		n++
	}
	want := []string{"p", "b1", "b2", "b1", "b2", "e"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}
	if n != len(want)+1 { // +1 for EXIT
		t.Fatalf("emitted %d instrs, want %d", n, len(want)+1)
	}
	if p.instrPerWarp() != n {
		t.Fatalf("instrPerWarp = %d, emitted %d", p.instrPerWarp(), n)
	}
}

func TestWorkloadFootprintsStayInAddressSpace(t *testing.T) {
	// All addresses are uint32 by construction; verify region discipline:
	// loads/stores beyond regionD+256MB would indicate arithmetic overflow.
	spec := (&kernel.Spec{}) // silence unused import if regions change
	_ = spec
	for _, w := range All() {
		s := w.Build(ScaleFull)
		for _, wi := range drain(s.Program(s.NumCTAs()-1, s.WarpsPerCTA()-1), 2_000_000) {
			if wi.Op.IsGlobal() {
				for l := 0; l < isa.WarpSize; l++ {
					if wi.Mask&(1<<l) != 0 && wi.Addrs[l] >= regionD+(1<<28) {
						t.Fatalf("%s: address %#x outside region map", w.Name, wi.Addrs[l])
					}
				}
			}
		}
	}
}
