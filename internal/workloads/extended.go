package workloads

import (
	"gpusched/internal/isa"
	"gpusched/internal/kernel"
)

func init() {
	register(Workload{
		Name:      "lud",
		ModeledOn: "Rodinia lud (LU decomposition, diagonal phase)",
		Class:     ClassSync,
		Build:     buildLUD,
	})
	register(Workload{
		Name:             "srad",
		ModeledOn:        "Rodinia srad (speckle-reducing diffusion)",
		Class:            ClassLocality,
		InterCTALocality: true,
		Build:            buildSRAD,
	})
	register(Workload{
		Name:      "backprop",
		ModeledOn: "Rodinia backprop (layer forward pass)",
		Class:     ClassSync,
		Build:     buildBackprop,
	})
	register(Workload{
		Name:      "streamcluster",
		ModeledOn: "Rodinia streamcluster (pgain distance phase)",
		Class:     ClassCache,
		Build:     buildStreamcluster,
	})
	register(Workload{
		Name:      "dct8x8",
		ModeledOn: "CUDA SDK dct8x8 (shared-memory block transform)",
		Class:     ClassCompute,
		Build:     buildDCT8x8,
	})
}

// buildLUD models the wavefront phase of LU decomposition: per step the
// active lane set shrinks (the submatrix contracts), with a barrier and a
// pivot-row broadcast between steps. Warp-level divergence grows as the
// wavefront advances — the under-utilization pattern LCS exposes.
func buildLUD(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	steps := pick(s, 4, 12, 16)
	const warpsPerCTA = 8
	totalWarps := ctas * warpsPerCTA
	stride := uint32(totalWarps * isa.WarpSize * 4)

	return &kernel.Spec{
		Name:            "lud",
		Grid:            kernel.Dim3{X: ctas},
		Block:           kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread:   18,
		SharedMemPerCTA: 2 * 1024,
		Program: func(ctaID, w int) isa.Program {
			base := uint32((ctaID*warpsPerCTA + w) * isa.WarpSize * 4)
			shrink := func(iter int) uint32 {
				// Active lanes halve every four steps: 32,32,32,32,16,...
				lanes := 32 >> uint(iter/4)
				if lanes < 4 {
					lanes = 4
				}
				return uint32(1)<<uint(lanes) - 1
			}
			return &loopProgram{
				iters: steps,
				body: []Emit{
					// Pivot row broadcast: all active lanes read one line.
					ldgMasked(1, shrink, func(iter, lane int) uint32 {
						return regionA + uint32(iter)*128 + uint32(lane%32)*4
					}),
					// Own row elements.
					ldgMasked(2, shrink, func(iter, lane int) uint32 {
						return regionB + base + uint32(iter)*stride + uint32(lane)*4
					}),
					aluMasked(isa.OpFAlu, 3, shrink, 1, 2),
					aluMasked(isa.OpFAlu, 4, shrink, 3, 4),
					stsMasked(4, shrink),
					bar(),
					lds(5, 1),
					bar(),
				},
			}
		},
	}
}

// buildSRAD models one diffusion sweep: like the stencil family it uses the
// row-per-CTA decomposition (rows shared with the adjacent CTA) but reads
// four neighbours plus a per-CTA statistics line, and stores two outputs
// (the updated image and the gradient).
func buildSRAD(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	iters := pick(s, 4, 12, 16)
	const warpsPerCTA = 8

	return &kernel.Spec{
		Name:          "srad",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 24,
		Program: func(ctaID, w int) isa.Program {
			g := newRowGeom(iters, w)
			stats := uint32(regionD) + uint32(ctaID)*128
			return &loopProgram{
				iters: iters,
				body: []Emit{
					ldg(1, func(iter int) uint32 { return g.at(regionA, ctaID, iter) }),
					ldg(2, func(iter int) uint32 { return g.at(regionA, ctaID+1, iter) }),
					ldg(3, func(iter int) uint32 { return g.at(regionA, ctaID+2, iter) }),
					ldgLanes(4, func(_, lane int) uint32 { return stats + uint32(lane%32)*4 }),
					alu(isa.OpFAlu, 5, 1, 2),
					alu(isa.OpFAlu, 6, 3, 4),
					alu(isa.OpSfu, 7, 5),
					alu(isa.OpFAlu, 8, 7, 6),
					stg(8, func(iter int) uint32 { return g.at(regionB, ctaID, iter) }),
					stg(5, func(iter int) uint32 { return g.at(regionC, ctaID, iter) }),
					branch(),
				},
			}
		},
	}
}

// buildBackprop models a layer's forward pass: stream input activations,
// accumulate weighted sums, then a shared-memory reduction tree with
// halving masks — the streaming+synchronization mix of Rodinia's backprop.
func buildBackprop(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	inputs := pick(s, 3, 8, 10)
	const warpsPerCTA = 8
	totalWarps := ctas * warpsPerCTA
	stride := uint32(totalWarps * isa.WarpSize * 4)

	return &kernel.Spec{
		Name:            "backprop",
		Grid:            kernel.Dim3{X: ctas},
		Block:           kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread:   16,
		SharedMemPerCTA: 1024,
		Program: func(ctaID, w int) isa.Program {
			base := uint32((ctaID*warpsPerCTA + w) * isa.WarpSize * 4)
			var body []Emit
			for i := 0; i < inputs; i++ {
				ii := i
				body = append(body,
					ldg(1, func(int) uint32 { return regionA + base + uint32(ii)*stride }),
					ldg(2, func(int) uint32 { return regionB + base + uint32(ii)*stride }),
					alu(isa.OpFAlu, 3, 1, 2),
					alu(isa.OpFAlu, 4, 3, 4),
				)
			}
			halving := func(level int) func(int) uint32 {
				lanes := isa.WarpSize >> uint(level+1)
				m := uint32(1)<<uint(lanes) - 1
				return func(int) uint32 { return m }
			}
			epilogue := []Emit{sts(4, 1), bar()}
			for level := 0; level < 4; level++ {
				epilogue = append(epilogue,
					lds(5, 1),
					aluMasked(isa.OpFAlu, 4, halving(level), 4, 5),
					stsMasked(4, halving(level)),
					bar(),
				)
			}
			epilogue = append(epilogue,
				alu(isa.OpSfu, 6, 4), // activation function
				stg(6, func(int) uint32 { return regionC + base }),
			)
			return &loopProgram{iters: 1, body: body, epilogue: epilogue}
		},
	}
}

// buildStreamcluster models the pgain distance phase: every CTA owns a
// 4 KiB candidate-center window it rereads for each streamed point — a
// second cache-capacity-sensitive kernel, but with *coalesced* window reads
// (unlike spmv's gathers), so its thrashing is pure capacity, not
// divergence.
func buildStreamcluster(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	points := pick(s, 4, 12, 16)
	const warpsPerCTA = 8
	const windowBytes = 4 * 1024
	totalWarps := ctas * warpsPerCTA
	stride := uint32(totalWarps * isa.WarpSize * 4)

	return &kernel.Spec{
		Name:          "streamcluster",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 20,
		Program: func(ctaID, w int) isa.Program {
			base := uint32((ctaID*warpsPerCTA + w) * isa.WarpSize * 4)
			window := uint32(regionB) + uint32(ctaID)*windowBytes
			return &loopProgram{
				iters: points,
				body: []Emit{
					ldg(1, func(iter int) uint32 { return regionA + base + uint32(iter)*stride }),
					// Four coalesced re-reads of the CTA's center window,
					// rotating through it so the whole 4KB stays live.
					ldg(2, func(iter int) uint32 { return window + uint32((iter*4+0)%(windowBytes/128))*128 }),
					alu(isa.OpFAlu, 6, 1, 2),
					ldg(3, func(iter int) uint32 { return window + uint32((iter*4+1)%(windowBytes/128))*128 }),
					alu(isa.OpFAlu, 6, 6, 3),
					ldg(4, func(iter int) uint32 { return window + uint32((iter*4+2)%(windowBytes/128))*128 }),
					alu(isa.OpFAlu, 6, 6, 4),
					ldg(5, func(iter int) uint32 { return window + uint32((iter*4+3)%(windowBytes/128))*128 }),
					alu(isa.OpFAlu, 6, 6, 5),
					stg(6, func(iter int) uint32 { return regionC + base + uint32(iter)*stride }),
					branch(),
				},
			}
		},
	}
}

// buildDCT8x8 models the shared-memory 8x8 block transform: coalesced tile
// load, staged row/column passes through the scratchpad (the column pass
// with bank conflicts), FALU-dense butterflies, coalesced store.
func buildDCT8x8(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	tiles := pick(s, 3, 8, 10)
	const warpsPerCTA = 8
	const tileBytes = 4 * 1024

	return &kernel.Spec{
		Name:            "dct8x8",
		Grid:            kernel.Dim3{X: ctas},
		Block:           kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread:   22,
		SharedMemPerCTA: 4 * 1024,
		Program: func(ctaID, w int) isa.Program {
			warpOff := uint32(w * isa.WarpSize * 4)
			at := func(region uint32) func(int) uint32 {
				return func(iter int) uint32 {
					return region + uint32(ctaID*tiles+iter)*tileBytes + warpOff
				}
			}
			body := []Emit{
				ldg(1, at(regionA)),
				sts(1, 1),
				bar(),
			}
			// Row pass: conflict-free; butterflies.
			for i := 0; i < 4; i++ {
				body = append(body, lds(2, 1),
					alu(isa.OpFAlu, 3, 2, 3),
					alu(isa.OpFAlu, 4, 3, 2))
			}
			body = append(body, sts(4, 1), bar())
			// Column pass: stride access, 4-way bank conflicts.
			for i := 0; i < 4; i++ {
				body = append(body, lds(5, 4),
					alu(isa.OpFAlu, 6, 5, 6),
					alu(isa.OpFAlu, 7, 6, 5))
			}
			body = append(body,
				stg(7, at(regionC)),
				bar(),
			)
			return &loopProgram{iters: tiles, body: body}
		},
	}
}
