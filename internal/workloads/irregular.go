package workloads

import (
	"gpusched/internal/isa"
	"gpusched/internal/kernel"
)

func init() {
	register(Workload{
		Name:      "spmv",
		ModeledOn: "Parboil spmv (CSR, banded sparsity)",
		Class:     ClassCache,
		Build:     buildSPMV,
	})
	register(Workload{
		Name:      "bfs",
		ModeledOn: "Rodinia bfs (frontier expansion)",
		Class:     ClassIrregular,
		Build:     buildBFS,
	})
	register(Workload{
		Name:      "histo",
		ModeledOn: "Parboil histo (atomic binning)",
		Class:     ClassIrregular,
		Build:     buildHisto,
	})
}

// buildSPMV models CSR sparse matrix-vector multiply on a banded matrix:
// each CTA's rows draw their column indices from a private 4 KiB window of
// the x vector, revisited row after row. One resident CTA's window fits in
// a corner of the L1; the occupancy-maximal eight CTAs need 32 KiB and
// thrash it — the canonical cache-sensitive workload where fewer CTAs beat
// more. Gather loads are 4-lane clustered (≤8 transactions per access).
func buildSPMV(s Scale) *kernel.Spec {
	ctas := pick(s, 32, 360, 720)
	rows := pick(s, 6, 20, 24)
	const warpsPerCTA = 4
	const windowBytes = 4 * 1024
	totalWarps := ctas * warpsPerCTA
	idxStride := uint32(totalWarps * isa.WarpSize * 4)

	return &kernel.Spec{
		Name:          "spmv",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 24,
		Program: func(ctaID, w int) isa.Program {
			idxBase := uint32((ctaID*warpsPerCTA + w) * isa.WarpSize * 4)
			window := uint32(regionB) + uint32(ctaID)*windowBytes
			gather := func(slot int) func(int, int) uint32 {
				return func(iter, lane int) uint32 {
					r := hash3(ctaID*warpsPerCTA+w, iter*4+slot, lane/4)
					return window + (r%(windowBytes/4))*4
				}
			}
			out := func(iter int) uint32 { return regionC + idxBase + uint32(iter)*idxStride }
			return &loopProgram{
				iters: rows,
				body: []Emit{
					ldg(1, func(iter int) uint32 { return regionA + idxBase + uint32(iter)*idxStride }),
					ldgLanes(2, gather(0)),
					ldgLanes(3, gather(1)),
					alu(isa.OpFAlu, 4, 2, 1),
					alu(isa.OpFAlu, 5, 3, 4),
					alu(isa.OpFAlu, 6, 5, 6),
					stg(6, out),
				},
			}
		},
	}
}

// buildBFS models frontier expansion: coalesced frontier reads followed by
// neighbor gathers scattered across a large graph with iteration-varying
// active masks (control divergence). Latency bound, no locality to protect
// — the workload class where maximal CTA counts help, bounding LCS's
// throttle decisions from below.
func buildBFS(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	iters := pick(s, 4, 8, 10)
	const warpsPerCTA = 8
	const graphBytes = 16 << 20
	totalWarps := ctas * warpsPerCTA
	stride := uint32(totalWarps * isa.WarpSize * 4)

	return &kernel.Spec{
		Name:          "bfs",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 18,
		Program: func(ctaID, w int) isa.Program {
			gw := ctaID*warpsPerCTA + w
			base := uint32(gw * isa.WarpSize * 4)
			mask := func(iter int) uint32 {
				// 50-100% of lanes active, varying per iteration.
				m := hash2(gw, iter)
				return m | 0x0000FFFF | (m >> 7)
			}
			neighbor := func(slot int) func(int, int) uint32 {
				return func(iter, lane int) uint32 {
					r := hash3(gw, iter*2+slot, lane/4)
					return regionB + (r%(graphBytes/4))*4
				}
			}
			return &loopProgram{
				iters: iters,
				body: []Emit{
					ldg(1, func(iter int) uint32 { return regionA + base + uint32(iter)*stride }),
					ldgMasked(2, mask, neighbor(0)),
					ldgMasked(3, mask, neighbor(1)),
					aluMasked(isa.OpIAlu, 4, mask, 2, 3),
					aluMasked(isa.OpIAlu, 5, mask, 4, 1),
					stg(5, func(iter int) uint32 { return regionC + base + uint32(iter)*stride }),
					branch(),
				},
			}
		},
	}
}

// buildHisto models atomic binning: streamed input, then read-modify-write
// updates into a 4 KiB bin array shared by every CTA. The atomics serialize
// at the L2 partitions, so throughput is contention bound.
func buildHisto(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	iters := pick(s, 4, 10, 12)
	const warpsPerCTA = 8
	const bins = 1024
	totalWarps := ctas * warpsPerCTA
	stride := uint32(totalWarps * isa.WarpSize * 4)

	return &kernel.Spec{
		Name:          "histo",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 14,
		Program: func(ctaID, w int) isa.Program {
			gw := ctaID*warpsPerCTA + w
			base := uint32(gw * isa.WarpSize * 4)
			binAt := func(iter, lane int) uint32 {
				r := hash3(gw, iter, lane/8)
				return regionB + (r%bins)*4
			}
			return &loopProgram{
				iters: iters,
				body: []Emit{
					ldg(1, func(iter int) uint32 { return regionA + base + uint32(iter)*stride }),
					alu(isa.OpIAlu, 2, 1),
					atom(3, binAt),
					branch(),
				},
			}
		},
	}
}
