package workloads

import (
	"gpusched/internal/isa"
	"gpusched/internal/kernel"
)

func init() {
	register(Workload{
		Name:             "stencil",
		ModeledOn:        "Parboil stencil (2D 5-point, row per CTA)",
		Class:            ClassLocality,
		InterCTALocality: true,
		Build:            buildStencil,
	})
	register(Workload{
		Name:             "hotspot",
		ModeledOn:        "Rodinia hotspot",
		Class:            ClassLocality,
		InterCTALocality: true,
		Build:            buildHotspot,
	})
	register(Workload{
		Name:             "conv2d",
		ModeledOn:        "PolyBench 2D convolution (5x1 column kernel)",
		Class:            ClassLocality,
		InterCTALocality: true,
		Build:            buildConv2D,
	})
	register(Workload{
		Name:             "pathfinder",
		ModeledOn:        "Rodinia pathfinder (wavefront)",
		Class:            ClassSync,
		InterCTALocality: true,
		Build:            buildPathfinder,
	})
}

// guard keeps halo loads at image edges from wrapping the 32-bit offset
// space.
const guard = 4096

// rowGeom is the row-per-CTA decomposition the stencil family uses: CTA i
// produces output row i of the image and reads input rows i..i+span-1.
// Consecutive CTAs therefore share span-1 of their span input rows — the
// inter-CTA data sharing that BCS gang dispatch turns into same-core L1/MSHR
// hits (and that BAWS keeps temporally aligned). Warp w owns a contiguous
// column chunk; each iteration advances one cache line through the chunk.
type rowGeom struct {
	rowBytes uint32
	warpOff  uint32
}

func newRowGeom(iters, w int) rowGeom {
	lineBytes := uint32(128)
	return rowGeom{
		rowBytes: 8 * uint32(iters) * lineBytes, // 8 warps per CTA
		warpOff:  uint32(w) * uint32(iters) * lineBytes,
	}
}

// at returns the address of input row r's line for iteration iter.
func (g rowGeom) at(region uint32, r, iter int) uint32 {
	return region + guard + uint32(r)*g.rowBytes + g.warpOff + uint32(iter)*128
}

// buildStencil: CTA i computes row i from input rows i, i+1, i+2. Two of
// the three rows are re-read by CTA i+1, so paired dispatch deduplicates
// two thirds of the global loads into one core's L1.
func buildStencil(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	iters := pick(s, 4, 12, 16)
	const warpsPerCTA = 8

	return &kernel.Spec{
		Name:          "stencil",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 16,
		Program: func(ctaID, w int) isa.Program {
			g := newRowGeom(iters, w)
			row := func(off int) func(int) uint32 {
				return func(iter int) uint32 { return g.at(regionA, ctaID+off, iter) }
			}
			return &loopProgram{
				iters: iters,
				body: []Emit{
					ldg(1, row(0)),
					ldg(2, row(1)),
					ldg(3, row(2)),
					alu(isa.OpFAlu, 4, 1, 2),
					alu(isa.OpFAlu, 5, 3, 4),
					alu(isa.OpFAlu, 6, 5, 2),
					alu(isa.OpFAlu, 6, 6, 6),
					stg(6, func(iter int) uint32 { return g.at(regionC, ctaID, iter) }),
					branch(),
				},
			}
		},
	}
}

// buildHotspot reads a three-row temperature neighbourhood plus the power
// row and runs a heavier arithmetic tail; two of four input rows are shared
// with the adjacent CTA.
func buildHotspot(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	iters := pick(s, 4, 12, 16)
	const warpsPerCTA = 8

	return &kernel.Spec{
		Name:          "hotspot",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 20,
		Program: func(ctaID, w int) isa.Program {
			g := newRowGeom(iters, w)
			temp := func(off int) func(int) uint32 {
				return func(iter int) uint32 { return g.at(regionA, ctaID+off, iter) }
			}
			body := []Emit{
				ldg(1, temp(0)),
				ldg(2, temp(1)),
				ldg(3, temp(2)),
				ldg(4, func(iter int) uint32 { return g.at(regionB, ctaID, iter) }),
			}
			for i := 0; i < 6; i++ {
				body = append(body, alu(isa.OpFAlu, isa.Reg(5+i%2), isa.Reg(1+i%4), isa.Reg(5+(i+1)%2)))
			}
			body = append(body,
				stg(5, func(iter int) uint32 { return g.at(regionC, ctaID, iter) }),
				branch(),
			)
			return &loopProgram{iters: iters, body: body}
		},
	}
}

// buildConv2D applies a 5-tap column kernel: CTA i reads input rows i..i+4,
// four of which the next CTA re-reads — the strongest inter-CTA sharing in
// the suite. The filter is staged through shared memory once per CTA.
func buildConv2D(s Scale) *kernel.Spec {
	ctas := pick(s, 20, 225, 450)
	iters := pick(s, 3, 10, 12)
	const warpsPerCTA = 8

	return &kernel.Spec{
		Name:            "conv2d",
		Grid:            kernel.Dim3{X: ctas},
		Block:           kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread:   24,
		SharedMemPerCTA: 4 * 1024,
		Program: func(ctaID, w int) isa.Program {
			g := newRowGeom(iters, w)
			body := make([]Emit, 0, 24)
			for k := 0; k < 5; k++ {
				kk := k
				body = append(body,
					ldg(isa.Reg(1+kk), func(iter int) uint32 { return g.at(regionA, ctaID+kk, iter) }),
					lds(7, 1),
					alu(isa.OpFAlu, 8, isa.Reg(1+kk), 7),
					alu(isa.OpFAlu, 9, 8, 9),
				)
			}
			body = append(body,
				stg(9, func(iter int) uint32 { return g.at(regionC, ctaID, iter) }),
				branch(),
			)
			return &loopProgram{
				iters: iters,
				prologue: []Emit{
					ldg(7, func(int) uint32 { return regionB + uint32(w)*128 }),
					sts(7, 1),
					bar(),
				},
				body: body,
			}
		},
	}
}

// buildPathfinder is the wavefront pattern: each step consumes one input
// row (shared with the adjacent CTA), exchanges boundary values through
// shared memory, and synchronizes twice per step.
func buildPathfinder(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	iters := pick(s, 4, 14, 20)
	const warpsPerCTA = 8

	return &kernel.Spec{
		Name:            "pathfinder",
		Grid:            kernel.Dim3{X: ctas},
		Block:           kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread:   16,
		SharedMemPerCTA: 2 * 1024,
		Program: func(ctaID, w int) isa.Program {
			g := newRowGeom(iters, w)
			return &loopProgram{
				iters: iters,
				body: []Emit{
					// Both this CTA's row and the next CTA's row feed the
					// wavefront step (one row shared per adjacent pair).
					ldg(1, func(iter int) uint32 { return g.at(regionA, ctaID, iter) }),
					ldg(2, func(iter int) uint32 { return g.at(regionA, ctaID+1, iter) }),
					alu(isa.OpIAlu, 3, 1, 2),
					sts(3, 1),
					bar(),
					lds(4, 1),
					alu(isa.OpFAlu, 5, 4, 3),
					bar(),
					stg(5, func(iter int) uint32 { return g.at(regionC, ctaID, iter) }),
				},
			}
		},
	}
}
