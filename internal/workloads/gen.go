package workloads

import (
	"sync"

	"gpusched/internal/isa"
)

// Emit fills buf with one instruction of a loop body at iteration iter.
// Implementations must overwrite every field they rely on (buf is reused).
type Emit func(buf *isa.WarpInstr, iter int)

// loopProgram is the iterator shape every workload kernel uses: a prologue
// executed once, a body repeated iters times, an epilogue, then EXIT. It
// materializes nothing: each instruction is produced on demand from the
// Emit closures, which capture the warp's identity and address arithmetic.
type loopProgram struct {
	prologue []Emit
	body     []Emit
	epilogue []Emit
	iters    int

	phase int // 0 prologue, 1 body, 2 epilogue, 3 exit, 4 done
	i, j  int
}

// Next implements isa.Program.
func (p *loopProgram) Next(buf *isa.WarpInstr) bool {
	for {
		switch p.phase {
		case 0:
			if p.j < len(p.prologue) {
				buf.Reset()
				p.prologue[p.j](buf, 0)
				p.j++
				return true
			}
			p.phase, p.j = 1, 0
		case 1:
			if p.i >= p.iters || len(p.body) == 0 {
				p.phase, p.j = 2, 0
				continue
			}
			buf.Reset()
			p.body[p.j](buf, p.i)
			p.j++
			if p.j == len(p.body) {
				p.j = 0
				p.i++
			}
			return true
		case 2:
			if p.j < len(p.epilogue) {
				buf.Reset()
				p.epilogue[p.j](buf, p.i)
				p.j++
				return true
			}
			p.phase = 3
		case 3:
			buf.Reset()
			buf.Op = isa.OpExit
			buf.Mask = isa.FullMask
			p.phase = 4
			return true
		default:
			return false
		}
	}
}

// instrPerWarp returns the dynamic instruction count the program will emit.
func (p *loopProgram) instrPerWarp() int {
	return len(p.prologue) + p.iters*len(p.body) + len(p.epilogue) + 1
}

// ---- Emit constructors ----

// fixedEmitKey identifies an Emit closure that captures only plain values —
// no per-warp address functions — so structurally identical calls can share
// one closure. Template builds call the fixed-shape constructors (alu, lds,
// sts) thousands of times per simulation across the per-(cta,warp) template
// cache misses, but the distinct key population is tiny: memoizing turns the
// dominant share of template-build allocations into map hits.
type fixedEmitKey struct {
	op       isa.Op
	dst, src isa.Reg
	s        [3]isa.Reg
	conflict uint8
}

var (
	fixedEmitMu   sync.Mutex
	fixedEmitMemo = map[fixedEmitKey]Emit{}
)

// memoFixedEmit returns the canonical closure for key, building it once.
func memoFixedEmit(key fixedEmitKey, build func() Emit) Emit {
	fixedEmitMu.Lock()
	e, ok := fixedEmitMemo[key]
	if !ok {
		e = build()
		fixedEmitMemo[key] = e
	}
	fixedEmitMu.Unlock()
	return e
}

// alu emits an arithmetic op dst <- f(srcs), all lanes active.
func alu(op isa.Op, dst isa.Reg, srcs ...isa.Reg) Emit {
	var s [3]isa.Reg
	copy(s[:], srcs)
	return memoFixedEmit(fixedEmitKey{op: op, dst: dst, s: s}, func() Emit {
		return func(buf *isa.WarpInstr, _ int) {
			buf.Op = op
			buf.Dst = dst
			buf.Src = s
			buf.Mask = isa.FullMask
		}
	})
}

// aluMasked emits an arithmetic op whose active mask depends on iter
// (divergence modeling).
func aluMasked(op isa.Op, dst isa.Reg, mask func(iter int) uint32, srcs ...isa.Reg) Emit {
	var s [3]isa.Reg
	copy(s[:], srcs)
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = op
		buf.Dst = dst
		buf.Src = s
		buf.Mask = mask(iter)
	}
}

// ldg emits a perfectly-coalesced global load: lane l reads base(iter)+4l.
func ldg(dst isa.Reg, base func(iter int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpLoadGlobal
		buf.Dst = dst
		buf.Mask = isa.FullMask
		isa.FillLinear(buf, base(iter), 4)
	}
}

// ldgLanes emits a global load with arbitrary per-lane addressing.
func ldgLanes(dst isa.Reg, addr func(iter, lane int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpLoadGlobal
		buf.Dst = dst
		buf.Mask = isa.FullMask
		for l := 0; l < isa.WarpSize; l++ {
			buf.Addrs[l] = addr(iter, l)
		}
	}
}

// ldgMasked is ldgLanes with a per-iteration active mask.
func ldgMasked(dst isa.Reg, mask func(iter int) uint32, addr func(iter, lane int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpLoadGlobal
		buf.Dst = dst
		buf.Mask = mask(iter)
		for l := 0; l < isa.WarpSize; l++ {
			buf.Addrs[l] = addr(iter, l)
		}
	}
}

// stg emits a perfectly-coalesced global store of src.
func stg(src isa.Reg, base func(iter int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpStoreGlobal
		buf.Src = [3]isa.Reg{src}
		buf.Mask = isa.FullMask
		isa.FillLinear(buf, base(iter), 4)
	}
}

// lds emits a scratchpad load with the given bank-conflict degree.
func lds(dst isa.Reg, conflict uint8) Emit {
	return memoFixedEmit(fixedEmitKey{op: isa.OpLoadShared, dst: dst, conflict: conflict}, func() Emit {
		return func(buf *isa.WarpInstr, _ int) {
			buf.Op = isa.OpLoadShared
			buf.Dst = dst
			buf.Mask = isa.FullMask
			buf.BankConflict = conflict
		}
	})
}

// sts emits a scratchpad store with the given bank-conflict degree.
func sts(src isa.Reg, conflict uint8) Emit {
	return memoFixedEmit(fixedEmitKey{op: isa.OpStoreShared, src: src, conflict: conflict}, func() Emit {
		return func(buf *isa.WarpInstr, _ int) {
			buf.Op = isa.OpStoreShared
			buf.Src = [3]isa.Reg{src}
			buf.Mask = isa.FullMask
			buf.BankConflict = conflict
		}
	})
}

// stsMasked emits a masked scratchpad store (reduction trees).
func stsMasked(src isa.Reg, mask func(iter int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpStoreShared
		buf.Src = [3]isa.Reg{src}
		buf.Mask = mask(iter)
		buf.BankConflict = 1
	}
}

// atom emits a global atomic RMW with arbitrary per-lane addressing.
func atom(dst isa.Reg, addr func(iter, lane int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpAtomicGlobal
		buf.Dst = dst
		buf.Mask = isa.FullMask
		for l := 0; l < isa.WarpSize; l++ {
			buf.Addrs[l] = addr(iter, l)
		}
	}
}

// barEmit and branchEmit are the shared zero-state closures behind bar()
// and branch(): neither captures anything, so one instance serves every
// template.
var (
	barEmit Emit = func(buf *isa.WarpInstr, _ int) {
		buf.Op = isa.OpBarrier
		buf.Mask = isa.FullMask
	}
	branchEmit Emit = func(buf *isa.WarpInstr, _ int) {
		buf.Op = isa.OpBranch
		buf.Mask = isa.FullMask
	}
)

// bar emits a CTA barrier.
func bar() Emit { return barEmit }

// branch emits a control instruction (issue-slot cost of the pre-lowered
// loop back-edge).
func branch() Emit { return branchEmit }

// ---- deterministic pseudo-randomness ----

// xs32 advances an xorshift32 state; never returns 0 for nonzero input.
// Used instead of math/rand so instruction streams are identical across Go
// versions and runs.
func xs32(s uint32) uint32 {
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	return s
}

// hash2 mixes two identifiers into a nonzero seed.
func hash2(a, b int) uint32 {
	s := uint32(a)*0x9E3779B9 + uint32(b)*0x85EBCA6B + 1
	return xs32(s)
}

// hash3 mixes three identifiers into a nonzero seed.
func hash3(a, b, c int) uint32 {
	return xs32(hash2(a, b) ^ (uint32(c)*0xC2B2AE35 + 1))
}

// ---- program-template memoization ----

// progKey identifies one warp's generated program. A registry workload's
// builder is a pure function of its Scale — every constant its Emit closures
// capture derives from the scale tables — and all per-warp variation enters
// through (ctaID, warp), so the tuple fully determines the template.
type progKey struct {
	name  string
	scale Scale
	cta   int
	warp  int
}

var (
	progMu   sync.Mutex
	progMemo = map[progKey]*loopProgram{}
	// progFree recycles the per-placement iterator copies memoProgram hands
	// out. The cores return a copy (via kernel.Spec.RecycleProgram) once its
	// warp's CTA has left the machine; the next placement overwrites it
	// wholesale from the template, so no state crosses lives and the pop
	// order cannot influence results — only which address gets reused.
	progFree []*loopProgram
)

// takeProgCopy pops a recycled iterator (or allocates one) and resets it
// from tpl.
func takeProgCopy(tpl *loopProgram) *loopProgram {
	progMu.Lock()
	var cp *loopProgram
	if n := len(progFree); n > 0 {
		cp = progFree[n-1]
		progFree[n-1] = nil
		progFree = progFree[:n-1]
	}
	progMu.Unlock()
	if cp == nil {
		cp = new(loopProgram)
	}
	*cp = *tpl
	return cp
}

// recycleProgram is the kernel.Spec.RecycleProgram hook for registry
// workloads: template-cached programs go back on the free list; anything
// else (a factory that bypassed the cache) is left to the garbage collector.
func recycleProgram(p isa.Program) {
	lp, ok := p.(*loopProgram)
	if !ok {
		return
	}
	progMu.Lock()
	progFree = append(progFree, lp)
	progMu.Unlock()
}

// memoProgram wraps a registry workload's per-warp program factory with a
// process-wide template cache. Building a warp's program allocates a few
// dozen Emit closures, and CTA placement does it for every warp of every
// CTA — the dominant allocation cost of a simulation. The experiment sweeps
// re-simulate the same (workload, scale) under many schedulers and
// configurations, so the factory runs once per (cta, warp) process-wide and
// every later placement gets a one-allocation copy sharing the immutable
// closure slices. Emit closures are pure (stateless functions of their
// captured constants and the iteration index), so copies may execute
// concurrently across simulations. A factory returning anything other than
// a *loopProgram bypasses the cache: only the iterator shape defined here
// is known to separate immutable template from per-run state.
func memoProgram(name string, scale Scale, f func(ctaID, w int) isa.Program) func(ctaID, w int) isa.Program {
	return func(ctaID, w int) isa.Program {
		k := progKey{name: name, scale: scale, cta: ctaID, warp: w}
		progMu.Lock()
		tpl, ok := progMemo[k]
		progMu.Unlock()
		if !ok {
			built := f(ctaID, w)
			lp, isLoop := built.(*loopProgram)
			if !isLoop {
				return built
			}
			progMu.Lock()
			if prev, raced := progMemo[k]; raced {
				lp = prev // a concurrent simulation built it first; share
			} else {
				progMemo[k] = lp // never run: copies below carry the state
			}
			progMu.Unlock()
			tpl = lp
		}
		// Fresh iterator state; template slices shared. The copy itself is
		// pooled: CTA retirement returns it through recycleProgram.
		return takeProgCopy(tpl)
	}
}
