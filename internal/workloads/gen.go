package workloads

import (
	"sync"

	"gpusched/internal/isa"
)

// Emit fills buf with one instruction of a loop body at iteration iter.
// Implementations must overwrite every field they rely on (buf is reused).
type Emit func(buf *isa.WarpInstr, iter int)

// loopProgram is the iterator shape every workload kernel uses: a prologue
// executed once, a body repeated iters times, an epilogue, then EXIT. It
// materializes nothing: each instruction is produced on demand from the
// Emit closures, which capture the warp's identity and address arithmetic.
type loopProgram struct {
	prologue []Emit
	body     []Emit
	epilogue []Emit
	iters    int

	phase int // 0 prologue, 1 body, 2 epilogue, 3 exit, 4 done
	i, j  int
}

// Next implements isa.Program.
func (p *loopProgram) Next(buf *isa.WarpInstr) bool {
	for {
		switch p.phase {
		case 0:
			if p.j < len(p.prologue) {
				buf.Reset()
				p.prologue[p.j](buf, 0)
				p.j++
				return true
			}
			p.phase, p.j = 1, 0
		case 1:
			if p.i >= p.iters || len(p.body) == 0 {
				p.phase, p.j = 2, 0
				continue
			}
			buf.Reset()
			p.body[p.j](buf, p.i)
			p.j++
			if p.j == len(p.body) {
				p.j = 0
				p.i++
			}
			return true
		case 2:
			if p.j < len(p.epilogue) {
				buf.Reset()
				p.epilogue[p.j](buf, p.i)
				p.j++
				return true
			}
			p.phase = 3
		case 3:
			buf.Reset()
			buf.Op = isa.OpExit
			buf.Mask = isa.FullMask
			p.phase = 4
			return true
		default:
			return false
		}
	}
}

// instrPerWarp returns the dynamic instruction count the program will emit.
func (p *loopProgram) instrPerWarp() int {
	return len(p.prologue) + p.iters*len(p.body) + len(p.epilogue) + 1
}

// ---- Emit constructors ----

// alu emits an arithmetic op dst <- f(srcs), all lanes active.
func alu(op isa.Op, dst isa.Reg, srcs ...isa.Reg) Emit {
	var s [3]isa.Reg
	copy(s[:], srcs)
	return func(buf *isa.WarpInstr, _ int) {
		buf.Op = op
		buf.Dst = dst
		buf.Src = s
		buf.Mask = isa.FullMask
	}
}

// aluMasked emits an arithmetic op whose active mask depends on iter
// (divergence modeling).
func aluMasked(op isa.Op, dst isa.Reg, mask func(iter int) uint32, srcs ...isa.Reg) Emit {
	var s [3]isa.Reg
	copy(s[:], srcs)
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = op
		buf.Dst = dst
		buf.Src = s
		buf.Mask = mask(iter)
	}
}

// ldg emits a perfectly-coalesced global load: lane l reads base(iter)+4l.
func ldg(dst isa.Reg, base func(iter int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpLoadGlobal
		buf.Dst = dst
		buf.Mask = isa.FullMask
		isa.FillLinear(buf, base(iter), 4)
	}
}

// ldgLanes emits a global load with arbitrary per-lane addressing.
func ldgLanes(dst isa.Reg, addr func(iter, lane int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpLoadGlobal
		buf.Dst = dst
		buf.Mask = isa.FullMask
		for l := 0; l < isa.WarpSize; l++ {
			buf.Addrs[l] = addr(iter, l)
		}
	}
}

// ldgMasked is ldgLanes with a per-iteration active mask.
func ldgMasked(dst isa.Reg, mask func(iter int) uint32, addr func(iter, lane int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpLoadGlobal
		buf.Dst = dst
		buf.Mask = mask(iter)
		for l := 0; l < isa.WarpSize; l++ {
			buf.Addrs[l] = addr(iter, l)
		}
	}
}

// stg emits a perfectly-coalesced global store of src.
func stg(src isa.Reg, base func(iter int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpStoreGlobal
		buf.Src = [3]isa.Reg{src}
		buf.Mask = isa.FullMask
		isa.FillLinear(buf, base(iter), 4)
	}
}

// lds emits a scratchpad load with the given bank-conflict degree.
func lds(dst isa.Reg, conflict uint8) Emit {
	return func(buf *isa.WarpInstr, _ int) {
		buf.Op = isa.OpLoadShared
		buf.Dst = dst
		buf.Mask = isa.FullMask
		buf.BankConflict = conflict
	}
}

// sts emits a scratchpad store with the given bank-conflict degree.
func sts(src isa.Reg, conflict uint8) Emit {
	return func(buf *isa.WarpInstr, _ int) {
		buf.Op = isa.OpStoreShared
		buf.Src = [3]isa.Reg{src}
		buf.Mask = isa.FullMask
		buf.BankConflict = conflict
	}
}

// stsMasked emits a masked scratchpad store (reduction trees).
func stsMasked(src isa.Reg, mask func(iter int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpStoreShared
		buf.Src = [3]isa.Reg{src}
		buf.Mask = mask(iter)
		buf.BankConflict = 1
	}
}

// atom emits a global atomic RMW with arbitrary per-lane addressing.
func atom(dst isa.Reg, addr func(iter, lane int) uint32) Emit {
	return func(buf *isa.WarpInstr, iter int) {
		buf.Op = isa.OpAtomicGlobal
		buf.Dst = dst
		buf.Mask = isa.FullMask
		for l := 0; l < isa.WarpSize; l++ {
			buf.Addrs[l] = addr(iter, l)
		}
	}
}

// bar emits a CTA barrier.
func bar() Emit {
	return func(buf *isa.WarpInstr, _ int) {
		buf.Op = isa.OpBarrier
		buf.Mask = isa.FullMask
	}
}

// branch emits a control instruction (issue-slot cost of the pre-lowered
// loop back-edge).
func branch() Emit {
	return func(buf *isa.WarpInstr, _ int) {
		buf.Op = isa.OpBranch
		buf.Mask = isa.FullMask
	}
}

// ---- deterministic pseudo-randomness ----

// xs32 advances an xorshift32 state; never returns 0 for nonzero input.
// Used instead of math/rand so instruction streams are identical across Go
// versions and runs.
func xs32(s uint32) uint32 {
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	return s
}

// hash2 mixes two identifiers into a nonzero seed.
func hash2(a, b int) uint32 {
	s := uint32(a)*0x9E3779B9 + uint32(b)*0x85EBCA6B + 1
	return xs32(s)
}

// hash3 mixes three identifiers into a nonzero seed.
func hash3(a, b, c int) uint32 {
	return xs32(hash2(a, b) ^ (uint32(c)*0xC2B2AE35 + 1))
}

// ---- program-template memoization ----

// progKey identifies one warp's generated program. A registry workload's
// builder is a pure function of its Scale — every constant its Emit closures
// capture derives from the scale tables — and all per-warp variation enters
// through (ctaID, warp), so the tuple fully determines the template.
type progKey struct {
	name  string
	scale Scale
	cta   int
	warp  int
}

var (
	progMu   sync.Mutex
	progMemo = map[progKey]*loopProgram{}
)

// memoProgram wraps a registry workload's per-warp program factory with a
// process-wide template cache. Building a warp's program allocates a few
// dozen Emit closures, and CTA placement does it for every warp of every
// CTA — the dominant allocation cost of a simulation. The experiment sweeps
// re-simulate the same (workload, scale) under many schedulers and
// configurations, so the factory runs once per (cta, warp) process-wide and
// every later placement gets a one-allocation copy sharing the immutable
// closure slices. Emit closures are pure (stateless functions of their
// captured constants and the iteration index), so copies may execute
// concurrently across simulations. A factory returning anything other than
// a *loopProgram bypasses the cache: only the iterator shape defined here
// is known to separate immutable template from per-run state.
func memoProgram(name string, scale Scale, f func(ctaID, w int) isa.Program) func(ctaID, w int) isa.Program {
	return func(ctaID, w int) isa.Program {
		k := progKey{name: name, scale: scale, cta: ctaID, warp: w}
		progMu.Lock()
		tpl, ok := progMemo[k]
		progMu.Unlock()
		if !ok {
			built := f(ctaID, w)
			lp, isLoop := built.(*loopProgram)
			if !isLoop {
				return built
			}
			progMu.Lock()
			if prev, raced := progMemo[k]; raced {
				lp = prev // a concurrent simulation built it first; share
			} else {
				progMemo[k] = lp // never run: copies below carry the state
			}
			progMu.Unlock()
			tpl = lp
		}
		cp := *tpl // fresh iterator state; template slices shared
		return &cp
	}
}
