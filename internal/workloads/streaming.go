package workloads

import (
	"gpusched/internal/isa"
	"gpusched/internal/kernel"
)

func init() {
	register(Workload{
		Name:      "vadd",
		ModeledOn: "CUDA SDK vectorAdd",
		Class:     ClassStream,
		Build:     buildVAdd,
	})
	register(Workload{
		Name:      "nn",
		ModeledOn: "Rodinia nn (nearest neighbor)",
		Class:     ClassStream,
		Build:     buildNN,
	})
}

// buildVAdd is grid-stride streaming c[i] = a[i] + b[i]: perfectly coalesced,
// zero reuse, bandwidth bound. The canonical CTA-count-insensitive workload.
func buildVAdd(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	iters := pick(s, 3, 10, 12)
	const warpsPerCTA = 8
	totalWarps := ctas * warpsPerCTA
	stride := uint32(totalWarps * isa.WarpSize * 4) // bytes per grid-stride step

	return &kernel.Spec{
		Name:          "vadd",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 12,
		Program: func(ctaID, w int) isa.Program {
			base := uint32((ctaID*warpsPerCTA + w) * isa.WarpSize * 4)
			at := func(region uint32) func(int) uint32 {
				return func(iter int) uint32 { return region + base + uint32(iter)*stride }
			}
			return &loopProgram{
				iters: iters,
				body: []Emit{
					ldg(1, at(regionA)),
					ldg(2, at(regionB)),
					alu(isa.OpFAlu, 3, 1, 2),
					stg(3, at(regionC)),
					branch(),
				},
			}
		},
	}
}

// buildNN streams an array-of-structs record file (4 fields, 16B records):
// each field load spreads a warp over 4 cache lines — the moderate memory
// divergence of Rodinia's nn — with a short distance computation per record.
func buildNN(s Scale) *kernel.Spec {
	ctas := pick(s, 32, 360, 720)
	iters := pick(s, 4, 12, 16)
	const warpsPerCTA = 4
	totalWarps := ctas * warpsPerCTA
	recStride := uint32(totalWarps * isa.WarpSize * 16) // bytes per step, 16B records

	return &kernel.Spec{
		Name:          "nn",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 16,
		Program: func(ctaID, w int) isa.Program {
			warpBase := uint32((ctaID*warpsPerCTA + w) * isa.WarpSize * 16)
			field := func(f uint32) func(int, int) uint32 {
				return func(iter, lane int) uint32 {
					return regionA + warpBase + uint32(iter)*recStride + uint32(lane)*16 + f*4
				}
			}
			out := func(iter int) uint32 {
				return regionC + (warpBase/4 + uint32(iter)*(recStride/4))
			}
			return &loopProgram{
				iters: iters,
				body: []Emit{
					ldgLanes(1, field(0)),
					ldgLanes(2, field(1)),
					ldgLanes(3, field(2)),
					ldgLanes(4, field(3)),
					alu(isa.OpFAlu, 5, 1, 2),
					alu(isa.OpFAlu, 6, 3, 4),
					alu(isa.OpFAlu, 7, 5, 6),
					alu(isa.OpFAlu, 7, 7, 7),
					stg(7, out),
					branch(),
				},
			}
		},
	}
}
