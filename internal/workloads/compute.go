package workloads

import (
	"gpusched/internal/isa"
	"gpusched/internal/kernel"
)

func init() {
	register(Workload{
		Name:             "sgemm",
		ModeledOn:        "Parboil sgemm (tiled matrix multiply)",
		Class:            ClassCompute,
		InterCTALocality: true, // CTAs in one tile row share A tiles
		Build:            buildSGEMM,
	})
	register(Workload{
		Name:      "blackscholes",
		ModeledOn: "CUDA SDK BlackScholes",
		Class:     ClassCompute,
		Build:     buildBlackScholes,
	})
	register(Workload{
		Name:      "kmeans",
		ModeledOn: "Rodinia kmeans (distance phase)",
		Class:     ClassCompute,
		Build:     buildKMeans,
	})
}

// buildSGEMM is shared-memory tiled matrix multiply: per K-tile, both input
// tiles are staged through the scratchpad between barriers and consumed by
// an FFMA-dense inner loop. Register pressure (28/thread) caps occupancy at
// 4 CTAs/SM. Consecutive CTAs compute adjacent output tiles in the same
// tile row, so they load identical A tiles — inter-CTA locality.
func buildSGEMM(s Scale) *kernel.Spec {
	ctas := pick(s, 16, 180, 360)
	ktiles := pick(s, 3, 12, 16)
	const warpsPerCTA = 8
	const tileBytes = 16 * 16 * 4 // 1KB 16x16 float tile
	const tilesPerRow = 8         // output tiles per tile row

	return &kernel.Spec{
		Name:            "sgemm",
		Grid:            kernel.Dim3{X: ctas},
		Block:           kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread:   28,
		SharedMemPerCTA: 2 * tileBytes,
		Program: func(ctaID, w int) isa.Program {
			tileRow := ctaID / tilesPerRow
			tileCol := ctaID % tilesPerRow
			warpOff := uint32(w * isa.WarpSize * 4)
			aTile := func(k int) uint32 {
				return regionA + uint32(tileRow*ktiles+k)*tileBytes + warpOff
			}
			bTile := func(k int) uint32 {
				return regionB + uint32(k*tilesPerRow+tileCol)*tileBytes + warpOff
			}
			body := []Emit{
				ldg(1, aTile),
				ldg(2, bTile),
				bar(),
			}
			for i := 0; i < 8; i++ {
				body = append(body,
					lds(3, 1),
					alu(isa.OpFAlu, isa.Reg(4+i%4), 3, isa.Reg(4+i%4)),
				)
			}
			body = append(body, bar())
			out := func(int) uint32 {
				return regionC + uint32(ctaID)*tileBytes + warpOff
			}
			return &loopProgram{
				iters:    ktiles,
				body:     body,
				epilogue: []Emit{stg(4, out)},
			}
		},
	}
}

// buildBlackScholes streams option parameters through a deep FALU+SFU chain:
// the SFU initiation interval makes it special-function throughput bound.
func buildBlackScholes(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	iters := pick(s, 3, 8, 10)
	const warpsPerCTA = 8
	totalWarps := ctas * warpsPerCTA
	stride := uint32(totalWarps * isa.WarpSize * 4)

	return &kernel.Spec{
		Name:          "blackscholes",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 20,
		Program: func(ctaID, w int) isa.Program {
			base := uint32((ctaID*warpsPerCTA + w) * isa.WarpSize * 4)
			at := func(region uint32) func(int) uint32 {
				return func(iter int) uint32 { return region + base + uint32(iter)*stride }
			}
			body := []Emit{
				ldg(1, at(regionA)),
				ldg(2, at(regionB)),
			}
			// d1/d2/CND evaluation: dependent FALUs punctuated by SFUs.
			for i := 0; i < 3; i++ {
				body = append(body,
					alu(isa.OpFAlu, 3, 1, 2),
					alu(isa.OpFAlu, 4, 3, 1),
					alu(isa.OpSfu, 5, 4),
					alu(isa.OpFAlu, 6, 5, 3),
					alu(isa.OpSfu, 7, 6),
					alu(isa.OpFAlu, 8, 7, 5),
				)
			}
			body = append(body,
				stg(8, at(regionC)),
				stg(6, at(regionD)),
				branch(),
			)
			return &loopProgram{iters: iters, body: body}
		},
	}
}

// buildKMeans streams points and accumulates distances to a small shared
// centroid table: the table (one line per centroid, identical for every
// warp) lives in L1 after warm-up, so the kernel is arithmetic bound with a
// high L1 hit rate — the classic LCS donor that saturates with few CTAs.
func buildKMeans(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	iters := pick(s, 3, 8, 10)
	const warpsPerCTA = 8
	const centroids = 8
	totalWarps := ctas * warpsPerCTA
	stride := uint32(totalWarps * isa.WarpSize * 4)

	return &kernel.Spec{
		Name:          "kmeans",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 18,
		Program: func(ctaID, w int) isa.Program {
			base := uint32((ctaID*warpsPerCTA + w) * isa.WarpSize * 4)
			feat := func(region uint32) func(int) uint32 {
				return func(iter int) uint32 { return region + base + uint32(iter)*stride }
			}
			body := []Emit{
				ldg(1, feat(regionA)),
				ldg(2, feat(regionA+64<<20)),
			}
			for k := 0; k < centroids; k++ {
				line := uint32(regionB + k*128)
				body = append(body,
					// Broadcast load: every lane reads the centroid line.
					ldgLanes(3, func(_, lane int) uint32 { return line + uint32(lane%32)*4 }),
					alu(isa.OpFAlu, 4, 1, 3),
					alu(isa.OpFAlu, 5, 4, 2),
					alu(isa.OpFAlu, 6, 5, 6),
				)
			}
			body = append(body, stg(6, feat(regionC)), branch())
			return &loopProgram{iters: iters, body: body}
		},
	}
}
