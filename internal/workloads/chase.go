package workloads

import (
	"gpusched/internal/isa"
	"gpusched/internal/kernel"
)

// ChaseSpec builds the stall-heavy pointer-chase-style microbenchmark: each
// warp alternates a fully-coalesced global load with an ALU op consuming the
// loaded value, so the warp parks on the scoreboard for the full memory
// round trip between issues. Every warp touches distinct lines (no reuse,
// all misses), which drives the machine into the worst case for a
// cycle-by-cycle loop: long stretches where every resident warp is
// memory-blocked and nothing happens. It is not part of the paper's
// workload registry — it exists to benchmark the simulator itself (the
// event-horizon fast-forward in particular), not a scheduling policy.
func ChaseSpec(ctas, warpsPerCTA, iters int) *kernel.Spec {
	return &kernel.Spec{
		Name:          "chase",
		Grid:          kernel.Dim3{X: ctas},
		Block:         kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread: 8,
		Program: func(ctaID, w int) isa.Program {
			instrs := make([]isa.WarpInstr, 0, 2*iters+1)
			for i := 0; i < iters; i++ {
				var ld isa.WarpInstr
				ld.Op = isa.OpLoadGlobal
				ld.Dst = 2
				ld.Mask = isa.FullMask
				line := uint32(((ctaID*warpsPerCTA+w)*iters + i) * 128)
				for lane := 0; lane < isa.WarpSize; lane++ {
					ld.Addrs[lane] = line + uint32(lane*4)
				}
				instrs = append(instrs, ld,
					isa.WarpInstr{Op: isa.OpIAlu, Dst: 3, Src: [3]isa.Reg{2}, Mask: isa.FullMask})
			}
			instrs = append(instrs, isa.WarpInstr{Op: isa.OpExit, Mask: isa.FullMask})
			return &isa.SliceProgram{Instrs: instrs}
		},
	}
}
