package workloads

import (
	"testing"

	"gpusched/internal/isa"
)

func TestLUDDivergenceShrinks(t *testing.T) {
	w, _ := ByName("lud")
	spec := w.Build(ScaleFull) // needs enough steps for the mask to halve
	instrs := drain(spec.Program(0, 0), 1_000_000)
	first, last := -1, -1
	for _, wi := range instrs {
		if wi.Op == isa.OpFAlu && wi.Mask != 0 {
			n := wi.ActiveLanes()
			if first == -1 {
				first = n
			}
			last = n
		}
	}
	if first != 32 {
		t.Fatalf("first FALU active lanes = %d, want 32", first)
	}
	if last >= first {
		t.Fatalf("wavefront never contracted: first %d, last %d", first, last)
	}
}

func TestStreamclusterWindowsPrivateAndReused(t *testing.T) {
	w, _ := ByName("streamcluster")
	spec := w.Build(ScaleTest)
	windowLines := func(cta int) (map[uint32]int, int) {
		counts := map[uint32]int{}
		total := 0
		for _, wi := range drain(spec.Program(cta, 0), 1_000_000) {
			if wi.Op == isa.OpLoadGlobal && wi.Addrs[0] >= regionB && wi.Addrs[0] < regionC {
				counts[wi.Addrs[0]/128]++
				total++
			}
		}
		return counts, total
	}
	c0, n0 := windowLines(0)
	c1, _ := windowLines(1)
	if n0 == 0 {
		t.Fatal("no window accesses")
	}
	for line := range c0 {
		if c1[line] != 0 {
			t.Fatalf("CTA windows share line %d", line)
		}
	}
	// Reuse: distinct lines touched must be well below total accesses at
	// full scale (the window is revisited).
	specFull := w.Build(ScaleFull)
	counts := map[uint32]int{}
	total := 0
	for _, wi := range drain(specFull.Program(0, 0), 1_000_000) {
		if wi.Op == isa.OpLoadGlobal && wi.Addrs[0] >= regionB && wi.Addrs[0] < regionC {
			counts[wi.Addrs[0]/128]++
			total++
		}
	}
	if len(counts) >= total {
		t.Fatalf("no temporal reuse: %d lines for %d accesses", len(counts), total)
	}
}

func TestSRADSharesRowsWithNeighbor(t *testing.T) {
	w, _ := ByName("srad")
	spec := w.Build(ScaleTest)
	lines := func(cta int) map[uint32]bool {
		set := map[uint32]bool{}
		for _, wi := range drain(spec.Program(cta, 0), 1_000_000) {
			if wi.Op == isa.OpLoadGlobal && wi.Addrs[0] < regionB {
				for l := 0; l < isa.WarpSize; l++ {
					set[wi.Addrs[l]/128] = true
				}
			}
		}
		return set
	}
	a, b := lines(0), lines(1)
	shared := 0
	for k := range a {
		if b[k] {
			shared++
		}
	}
	if frac := float64(shared) / float64(len(a)); frac < 0.4 {
		t.Fatalf("srad neighbors share %.0f%% of image lines, want >= 40%%", frac*100)
	}
}

func TestBackpropReductionMasksHalve(t *testing.T) {
	w, _ := ByName("backprop")
	spec := w.Build(ScaleTest)
	var masks []int
	for _, wi := range drain(spec.Program(0, 0), 1_000_000) {
		if wi.Op == isa.OpStoreShared && wi.Mask != isa.FullMask {
			masks = append(masks, wi.ActiveLanes())
		}
	}
	if len(masks) < 3 {
		t.Fatalf("reduction tree too shallow: %v", masks)
	}
	for i := 1; i < len(masks); i++ {
		if masks[i] >= masks[i-1] {
			t.Fatalf("reduction masks not strictly narrowing: %v", masks)
		}
	}
}

func TestDCT8x8UsesBothSharedPasses(t *testing.T) {
	w, _ := ByName("dct8x8")
	spec := w.Build(ScaleTest)
	conflictFree, conflicted := 0, 0
	for _, wi := range drain(spec.Program(0, 0), 1_000_000) {
		if wi.Op == isa.OpLoadShared {
			if wi.BankConflict <= 1 {
				conflictFree++
			} else {
				conflicted++
			}
		}
	}
	if conflictFree == 0 || conflicted == 0 {
		t.Fatalf("dct8x8 passes missing: %d conflict-free, %d conflicted", conflictFree, conflicted)
	}
}
