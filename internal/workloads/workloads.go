// Package workloads defines the benchmark suite: fourteen parametric
// synthetic kernels modeled on the Rodinia / Parboil / CUDA-SDK programs
// CTA-scheduling papers evaluate on. Each kernel reproduces the
// scheduling-relevant character of its model — arithmetic intensity, memory
// divergence, intra- and inter-CTA locality, barrier structure, occupancy
// limits — using deterministic generated instruction streams.
package workloads

import (
	"sort"

	"gpusched/internal/kernel"
)

// Scale selects problem size: tests want sub-50ms runs, the paper harness
// wants several occupancy waves per kernel.
type Scale int

const (
	// ScaleTest is for unit/integration tests (tiny grids).
	ScaleTest Scale = iota
	// ScaleSmall is for quick benchmarks and -short harness runs.
	ScaleSmall
	// ScaleFull is the paper-experiment size.
	ScaleFull
)

// pick returns the value for the scale.
func pick(s Scale, test, small, full int) int {
	switch s {
	case ScaleTest:
		return test
	case ScaleSmall:
		return small
	default:
		return full
	}
}

// Class is the behaviour family a workload belongs to; the experiment
// tables group and interpret results by it.
type Class string

const (
	// ClassCompute is arithmetic/SFU throughput bound.
	ClassCompute Class = "compute"
	// ClassStream is memory-bandwidth bound with no reuse.
	ClassStream Class = "stream"
	// ClassCache is cache-capacity sensitive (resident working set).
	ClassCache Class = "cache"
	// ClassLocality has inter-CTA data sharing (BCS targets).
	ClassLocality Class = "locality"
	// ClassIrregular is divergent/latency bound.
	ClassIrregular Class = "irregular"
	// ClassSync is barrier/communication heavy.
	ClassSync Class = "sync"
)

// Workload is one suite member.
type Workload struct {
	// Name is the short identifier used everywhere.
	Name string
	// ModeledOn names the real benchmark whose behaviour this generator
	// mimics.
	ModeledOn string
	// Class is the behaviour family.
	Class Class
	// InterCTALocality marks BCS candidates (consecutive CTAs share data).
	InterCTALocality bool
	// Build constructs the kernel at the given scale.
	Build func(Scale) *kernel.Spec
}

var catalog []Workload

func register(w Workload) {
	// Every registry build goes through the program-template cache: the
	// builder's Emit closures are pure functions of (Name, Scale, ctaID,
	// warp), so each warp's template is constructed once process-wide and
	// re-placements (later simulations in a sweep, preemption re-dispatch)
	// cost one allocation instead of rebuilding the closure set.
	build := w.Build
	w.Build = func(s Scale) *kernel.Spec {
		spec := build(s)
		spec.Program = memoProgram(w.Name, s, spec.Program)
		spec.RecycleProgram = recycleProgram
		return spec
	}
	catalog = append(catalog, w)
}

// sorted returns the catalog in name order (file init order is not a
// meaningful report order).
func sorted() []Workload {
	out := make([]Workload, len(catalog))
	copy(out, catalog)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// All returns the suite in report (name) order.
func All() []Workload {
	return sorted()
}

// Names returns the suite names in report order.
func Names() []string {
	ws := sorted()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// ByName finds a workload.
func ByName(name string) (Workload, bool) {
	for _, w := range catalog {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// ByClass returns suite members of one class, report order.
func ByClass(c Class) []Workload {
	var out []Workload
	for _, w := range sorted() {
		if w.Class == c {
			out = append(out, w)
		}
	}
	return out
}

// LocalitySet returns the BCS-candidate workloads.
func LocalitySet() []Workload {
	var out []Workload
	for _, w := range sorted() {
		if w.InterCTALocality {
			out = append(out, w)
		}
	}
	return out
}

// Region bases within a kernel's private 4 GiB address space. 256 MiB
// spacing keeps regions disjoint at every problem size used here.
const (
	regionA = 0 << 28
	regionB = 1 << 28
	regionC = 2 << 28
	regionD = 3 << 28
)
