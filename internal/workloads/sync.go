package workloads

import (
	"gpusched/internal/isa"
	"gpusched/internal/kernel"
)

func init() {
	register(Workload{
		Name:      "reduce",
		ModeledOn: "CUDA SDK reduction",
		Class:     ClassSync,
		Build:     buildReduce,
	})
	register(Workload{
		Name:      "transpose",
		ModeledOn: "CUDA SDK transpose (tiled via shared memory)",
		Class:     ClassSync,
		Build:     buildTranspose,
	})
}

// buildReduce is the two-phase reduction: a grid-stride streaming
// accumulation, then a barrier-separated shared-memory tree whose active
// mask halves every level (warp-level divergence as the tree narrows).
func buildReduce(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	loads := pick(s, 2, 6, 8)
	const warpsPerCTA = 8
	totalWarps := ctas * warpsPerCTA
	stride := uint32(totalWarps * isa.WarpSize * 4)

	return &kernel.Spec{
		Name:            "reduce",
		Grid:            kernel.Dim3{X: ctas},
		Block:           kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread:   14,
		SharedMemPerCTA: 1024,
		Program: func(ctaID, w int) isa.Program {
			base := uint32((ctaID*warpsPerCTA + w) * isa.WarpSize * 4)
			var body []Emit
			for i := 0; i < loads; i++ {
				ii := i
				body = append(body,
					ldg(1, func(int) uint32 { return regionA + base + uint32(ii)*stride }),
					alu(isa.OpFAlu, 2, 1, 2),
				)
			}
			// Tree phase: mask halves per level.
			levelMask := func(level int) func(int) uint32 {
				lanes := isa.WarpSize >> uint(level+1)
				m := uint32(1)<<uint(lanes) - 1
				if lanes >= 32 {
					m = isa.FullMask
				}
				return func(int) uint32 { return m }
			}
			epilogue := []Emit{sts(2, 1), bar()}
			for level := 0; level < 5; level++ {
				epilogue = append(epilogue,
					lds(3, 1),
					aluMasked(isa.OpFAlu, 2, levelMask(level), 2, 3),
					stsMasked(2, levelMask(level)),
					bar(),
				)
			}
			epilogue = append(epilogue, stg(2, func(int) uint32 {
				return regionC + uint32(ctaID*warpsPerCTA+w)*4
			}))
			return &loopProgram{iters: 1, body: body, epilogue: epilogue}
		},
	}
}

// buildTranspose stages tiles through shared memory between barriers; reads
// are coalesced row-major, writes land in a transposed tile layout whose
// scatter across DRAM rows defeats row-buffer locality.
func buildTranspose(s Scale) *kernel.Spec {
	ctas := pick(s, 24, 270, 540)
	iters := pick(s, 4, 10, 12)
	const warpsPerCTA = 8
	const tileBytes = 4 * 1024

	return &kernel.Spec{
		Name:            "transpose",
		Grid:            kernel.Dim3{X: ctas},
		Block:           kernel.Dim3{X: warpsPerCTA * isa.WarpSize},
		RegsPerThread:   16,
		SharedMemPerCTA: 4 * 1024,
		Program: func(ctaID, w int) isa.Program {
			warpOff := uint32(w * isa.WarpSize * 4)
			in := func(iter int) uint32 {
				return regionA + uint32(ctaID*iters+iter)*tileBytes + warpOff
			}
			// Transposed output: tiles scatter with a large prime-ish
			// stride so consecutive tiles land in different DRAM rows.
			out := func(iter int) uint32 {
				t := uint32(ctaID*iters + iter)
				return regionC + (t*37%4096)*tileBytes + warpOff
			}
			return &loopProgram{
				iters: iters,
				body: []Emit{
					ldg(1, in),
					sts(1, 2), // minor conflict writing columns
					bar(),
					lds(2, 1),
					stg(2, out),
					bar(),
				},
			}
		},
	}
}
