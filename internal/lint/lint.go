// Package lint is gpulint: a suite of static analyzers that turn the
// simulator's determinism and cache-key invariants from reviewer lore into
// build failures. See DESIGN.md "Determinism contract" for the contract
// each analyzer enforces and the annotation grammar that suppresses or
// drives them.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"gpusched/internal/lint/analysis"
)

// DetPackages are the packages whose observable behaviour must be a pure
// function of their inputs: everything between a kernel spec and a result
// table. detmap and wallclock police these.
var DetPackages = []string{
	"internal/gpu", "internal/gpu/parexec", "internal/sm", "internal/mem",
	"internal/core", "internal/kernel", "internal/isa", "internal/workloads",
	"internal/harness", "internal/stats",
}

// CycleLoopPackages are the subset that executes inside gpu.RunContext's
// cycle loop, where any goroutine or channel operation would make replay
// (and the event-horizon fast-forward) unsound. nogoroutine polices these.
// internal/gpu/parexec is deliberately included even though it exists to
// run goroutines: every concurrency primitive in it must carry a reasoned
// //gpulint:allow nogoroutine, so the carve-out stays enumerable and
// reviewed instead of becoming a blanket exemption (DESIGN.md "Two-phase
// parallel tick").
var CycleLoopPackages = []string{
	"internal/gpu", "internal/gpu/parexec", "internal/sm", "internal/mem",
	"internal/core",
}

// ConcurrencyPackages are the serving-tier packages whose goroutines hold
// locks and block on the network: the fleet router/prober, the daemon's
// job manager, and the singleflight service. guardedby and ctxflow police
// these (the simulator packages are covered by the phase discipline
// instead — they are not allowed goroutines at all outside parexec).
var ConcurrencyPackages = []string{
	"internal/fleet", "internal/server", "internal/sim",
}

// ScopedAnalyzer pairs an analyzer with the packages it applies to.
type ScopedAnalyzer struct {
	Analyzer *analysis.Analyzer
	// Match reports whether the analyzer runs on the package path.
	Match func(pkgPath string) bool
}

// matchSuffix matches a package whose import path ends in one of the
// module-relative suffixes (the module prefix varies between the real
// module path and test fixtures).
func matchSuffix(suffixes []string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if path == s || strings.HasSuffix(path, "/"+s) {
				return true
			}
		}
		return false
	}
}

func matchAll(string) bool { return true }

// Suite returns the gpulint analyzer suite with its package scoping:
// detmap guards every package (nondeterministic ordering anywhere leaks
// into user-visible output), wallclock only the deterministic simulation
// packages (servers may read clocks), nogoroutine only the cycle-loop
// packages, and the annotation-driven cachekey/hotalloc run wherever their
// markers appear.
func Suite() []ScopedAnalyzer {
	return []ScopedAnalyzer{
		{Detmap, matchAll},
		{Wallclock, matchSuffix(DetPackages)},
		{Nogoroutine, matchSuffix(CycleLoopPackages)},
		{Cachekey, matchAll},
		{Hotalloc, matchAll},
		// The whole-program analyzers: phasepurity/wakesync/guardedby are
		// annotation-driven and run everywhere their markers can appear;
		// ctxflow's blocking-call bans are a serving-tier policy, so it is
		// scoped to the concurrency packages.
		{Phasepurity, matchAll},
		{Wakesync, matchAll},
		{Guardedby, matchAll},
		{Ctxflow, matchSuffix(ConcurrencyPackages)},
	}
}

// Analyzers returns every analyzer in the suite.
func Analyzers() []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, c := range Suite() {
		out = append(out, c.Analyzer)
	}
	return out
}

// suppressionTargets resolves which analyzers a directive suppresses
// (nil for non-suppressing directive kinds).
func suppressionTargets(d analysis.Directive) []string {
	switch d.Kind {
	case analysis.KindOrderedIrrelevant:
		return []string{Detmap.Name}
	case analysis.KindAllow:
		return d.Args
	}
	return nil
}

// knownDirectives is the full annotation grammar, in the order the
// unknown-directive diagnostic lists it.
var knownDirectives = []string{
	analysis.KindOrderedIrrelevant, analysis.KindAllow,
	analysis.KindHotpath, analysis.KindCachekey,
	analysis.KindPhaseA, analysis.KindPhaseB, analysis.KindStaged,
	analysis.KindShared, analysis.KindSynced, analysis.KindLazy,
	analysis.KindGuardedby,
}

// knownDirective reports whether the kind is part of the grammar.
func knownDirective(kind string) bool {
	for _, k := range knownDirectives {
		if kind == k {
			return true
		}
	}
	return false
}

// ApplySuppressions filters diags through the package's suppression
// directives and appends the meta-diagnostics the grammar itself demands:
// a suppression comment that suppressed nothing is reported (stale
// justifications are how invariants rot), as are unknown directive kinds
// and allow-targets naming no analyzer that ran. A directive suppresses
// matching diagnostics on its own line and the next one, so it can ride at
// the end of the offending line or on a comment line above it. active
// names the analyzers that actually ran on the package.
func ApplySuppressions(fset *token.FileSet, diags []analysis.Diagnostic, dirs []analysis.Directive, active map[string]bool) []analysis.Diagnostic {
	type target struct {
		d        *analysis.Directive
		analyzer string
		used     bool
	}
	var targets []*target
	// byLoc indexes targets by file and line for the two-line window.
	byLoc := make(map[string]map[int][]*target)
	var out []analysis.Diagnostic
	for i := range dirs {
		d := &dirs[i]
		if !knownDirective(d.Kind) {
			out = append(out, analysis.Diagnostic{
				Pos: d.Pos, Analyzer: "gpulint",
				Message: fmt.Sprintf("unknown directive //gpulint:%s (want %s)", d.Kind,
					strings.Join(knownDirectives, ", ")),
			})
			continue
		}
		pos := fset.Position(d.Pos)
		for _, name := range suppressionTargets(*d) {
			t := &target{d: d, analyzer: name}
			targets = append(targets, t)
			if byLoc[pos.Filename] == nil {
				byLoc[pos.Filename] = make(map[int][]*target)
			}
			byLoc[pos.Filename][pos.Line] = append(byLoc[pos.Filename][pos.Line], t)
		}
	}

	for _, diag := range diags {
		pos := fset.Position(diag.Pos)
		suppressed := false
		for _, line := range []int{pos.Line, pos.Line - 1} {
			for _, t := range byLoc[pos.Filename][line] {
				if t.analyzer == diag.Analyzer {
					t.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}

	for _, t := range targets {
		if t.used {
			continue
		}
		if !active[t.analyzer] {
			if t.d.Kind == analysis.KindAllow && !knownAnalyzer(t.analyzer) {
				out = append(out, analysis.Diagnostic{
					Pos: t.d.Pos, Analyzer: "gpulint",
					Message: fmt.Sprintf("//gpulint:allow names unknown analyzer %q", t.analyzer),
				})
			}
			// The target analyzer did not run on this package (e.g. a
			// single-analyzer test pass); silence would be unfounded either way.
			continue
		}
		out = append(out, analysis.Diagnostic{
			Pos: t.d.Pos, Analyzer: t.analyzer,
			Message: fmt.Sprintf("unused //gpulint:%s suppression: no %s diagnostic on this or the next line", t.d.Kind, t.analyzer),
		})
	}

	SortDiagnostics(fset, out)
	return out
}

func knownAnalyzer(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// SortDiagnostics orders diags by file position then analyzer name, so
// gpulint's own output is deterministic — the linter practices what it
// preaches.
func SortDiagnostics(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Offset != pj.Offset {
			return pi.Offset < pj.Offset
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}
