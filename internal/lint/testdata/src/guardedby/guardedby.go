// Package guardedby exercises the guardedby analyzer: fields annotated
// //gpulint:guardedby mu may only be accessed under a lexically visible
// lock of the named sibling mutex, or in *Locked helper functions.
package guardedby

import "sync"

type Shard struct {
	mu sync.Mutex
	//gpulint:guardedby mu
	down bool
	//gpulint:guardedby mu
	fails int

	rw sync.RWMutex
	//gpulint:guardedby rw
	cached string
}

// Healthy locks, reads, and defers the unlock: the canonical shape.
func (s *Shard) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.down
}

// Racy reads with no lock at all.
func (s *Shard) Racy() bool {
	return s.down // want "guardedby.Shard.Racy accesses s.down without holding s.mu"
}

// UseAfterUnlock reads again after releasing: the stale-read race.
func (s *Shard) UseAfterUnlock() int {
	s.mu.Lock()
	n := s.fails
	s.mu.Unlock()
	return n + s.fails // want "guardedby.Shard.UseAfterUnlock accesses s.fails without holding s.mu"
}

// Cached holds the read lock: RLock counts.
func (s *Shard) Cached() string {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.cached
}

// resetLocked follows the caller-holds-the-lock naming convention.
func (s *Shard) resetLocked() {
	s.down = false
	s.fails = 0
}

// Reset is the conventional pairing: lock, then call the helper.
func (s *Shard) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetLocked()
}

// Escape returns a closure that outlives the locked region; the closure
// body must take the lock for itself.
func (s *Shard) Escape() func() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() bool {
		return s.down // want "accesses s.down without holding s.mu"
	}
}

// WrongMutex holds rw while touching a mu-guarded field.
func (s *Shard) WrongMutex() bool {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.down // want "accesses s.down without holding s.mu"
}

// Justified documents a benign access with a reviewed suppression.
func (s *Shard) Justified() bool {
	return s.down //gpulint:allow guardedby read before the shard is published to any other goroutine
}

type misuse struct {
	mu sync.Mutex
	//gpulint:guardedby // want "//gpulint:guardedby needs exactly one mutex field name"
	a int
	//gpulint:guardedby nosuch // want "misuse has no sync.Mutex/sync.RWMutex field \"nosuch\""
	b int
	//gpulint:guardedby c // want "misuse has no sync.Mutex/sync.RWMutex field \"c\""
	c int
}

//gpulint:guardedby mu // want "//gpulint:guardedby is not attached to a struct field"
var loose = 1
