// Package nogoroutine exercises the nogoroutine analyzer: cycle-loop
// packages are single-threaded by contract, so goroutines and every channel
// construct are flagged.
package nogoroutine

func spawn(f func()) {
	go f() // want "go statement in a cycle-loop package"
}

func channels() {
	ch := make(chan int) // want "channel type in a cycle-loop package"
	ch <- 1              // want "channel send in a cycle-loop package"
	<-ch                 // want "channel receive in a cycle-loop package"
	select {             // want "select in a cycle-loop package"
	default:
	}
	for range ch { // want "range over channel in a cycle-loop package"
	}
}

func polled(stop func() bool) bool {
	//gpulint:allow nogoroutine host-side cancellation poll; aborts the run, never reaches simulated state
	select {
	default:
	}
	return stop()
}
