// Package wallclock exercises the wallclock analyzer: wall-clock reads and
// the global math/rand source are banned in deterministic packages; seeded
// generators are the sanctioned alternative.
package wallclock

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func deadline(t1 time.Time) time.Duration {
	return time.Until(t1) // want "time.Until reads the wall clock"
}

func roll() int {
	return rand.Intn(6) // want "rand.Intn uses the global random source"
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // seeded generator state: allowed
	return r.Intn(6)
}

func traced() int64 {
	//gpulint:allow wallclock trace timestamp only; never reaches simulated state
	return time.Now().UnixNano()
}

func stale() int {
	//gpulint:allow wallclock nothing on the next line reads a clock // want "unused //gpulint:allow suppression"
	return 4
}
