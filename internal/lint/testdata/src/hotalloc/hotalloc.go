// Package hotalloc exercises the hotalloc analyzer: fmt calls, interface
// boxing, and appends to escaping slices are flagged inside functions
// annotated //gpulint:hotpath; unannotated functions are left alone.
package hotalloc

import "fmt"

type ring struct {
	buf []int
}

var journal []int

//gpulint:hotpath
func tick(r *ring, vs []int, sink func(any)) {
	msg := fmt.Sprintf("n=%d", len(vs)) // want "fmt.Sprintf allocates on every call"
	_ = msg
	sink(len(vs))                // want "argument boxes int into"
	r.buf = append(r.buf, 1)     // want "append result is stored in escaping field r.buf"
	journal = append(journal, 2) // want "append result is stored in escaping package variable journal"
	var x any
	x = vs[0] // want "assignment boxes int into"
	_ = x
}

//gpulint:hotpath
func tickOK(r *ring, n int) int {
	local := make([]int, 0, 8)
	local = append(local, n) // append kept local: fine
	if n < 0 {
		//gpulint:allow hotalloc one-shot diagnostic on a path that aborts the run
		panic(fmt.Sprintf("negative n %d", n))
	}
	return local[0]
}

//gpulint:hotpath // want "not attached to a function declaration"
var detached = 0

func cold(vs []int) string {
	return fmt.Sprintf("%d", len(vs)) // unannotated: not checked
}
