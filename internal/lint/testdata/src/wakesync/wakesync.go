// Package wakesync exercises the wakesync analyzer: sub-fields named by a
// //gpulint:lazy container annotation may only be read on the phase-A
// path (the owner replays itself to the current cycle) or in functions
// annotated //gpulint:synced.
package wakesync

type counters struct {
	Active uint64
	Stall  uint64
	Exact  uint64
}

// Core accrues Active and Stall lazily at its watermark; Exact is
// maintained eagerly and is safe to read anywhere.
type Core struct {
	syncedTo uint64
	// Stats is only valid up to syncedTo until a FastForward.
	//
	//gpulint:lazy Active,Stall accrued in FastForward; sync before serial reads
	Stats counters
}

// FastForward accrues the lazy counters — the write side is the
// watermark mechanism and is exempt.
func (c *Core) FastForward(to uint64) {
	if to <= c.syncedTo {
		return
	}
	c.Stats.Active += to - c.syncedTo
	c.syncedTo = to
}

// SyncTo is the funnel: it settles the watermark, then reads are valid.
//
//gpulint:synced the one funnel; reads happen after the FastForward
func (c *Core) SyncTo(now uint64) uint64 {
	c.FastForward(now)
	return c.Stats.Active
}

// Tick is the phase-A path: a core at its own watermark reads freely.
//
//gpulint:phasea shard workers replay the core before reading
func (c *Core) Tick(now uint64) {
	c.FastForward(now)
	if c.Stats.Active > 10 {
		c.Stats.Stall++
	}
	c.helper()
}

// helper is phase-A reachable, so its reads are watermark-correct too.
func (c *Core) helper() uint64 {
	return c.Stats.Stall + c.Stats.Exact
}

// stale reads a lazy counter in serial code with no sync: the bug class.
func stale(c *Core) uint64 {
	return c.Stats.Stall // want "wakesync.stale reads lazily-accrued c.Stats.Stall outside the sync funnel"
}

// exact reads an eager counter: fine anywhere.
func exact(c *Core) uint64 {
	return c.Stats.Exact
}

// copyAll copies the whole container, lazy fields included.
func copyAll(c *Core) counters {
	return c.Stats // want "wakesync.copyAll copies c.Stats, whose Active/Stall are lazily accrued"
}

// justified reads after an out-of-band sync; the carve-out is a reviewed
// suppression.
func justified(c *Core) uint64 {
	return c.Stats.Active //gpulint:allow wakesync caller synced every core on the previous line
}

type other struct {
	//gpulint:lazy Missing accrued nowhere // want "//gpulint:lazy: counters has no field Missing"
	S counters
	//gpulint:lazy Active // want "//gpulint:lazy: field N is not of struct type"
	N uint64
	//gpulint:lazy // want "//gpulint:lazy needs the lazily-accrued sub-field names"
	B counters
}

//gpulint:synced // want "//gpulint:synced is not attached to a function declaration or literal"
var notAFunc = 1
