// Package cachekey exercises the cachekey analyzer: a function annotated
// //gpulint:cachekey T must reference every exported field of T, either
// directly or through same-package calls.
package cachekey

import "fmt"

type Req struct {
	A int
	B string
	n int // unexported: not part of the contract
}

// Key folds A directly and B through a helper — full coverage.
//
//gpulint:cachekey Req
func (r Req) Key() string {
	return fmt.Sprintf("a=%d|%s|%d", r.A, r.tail(), r.n)
}

func (r Req) tail() string { return r.B }

type Partial struct {
	X int
	Y int
}

//gpulint:cachekey Partial // want "Key2 does not reference exported field\\(s\\) Y of Partial"
func (p Partial) Key2() string {
	return fmt.Sprint(p.X)
}

type Count int

//gpulint:cachekey Count // want "Count is not a struct type"
func (c Count) Key3() string { return "count" }

//gpulint:cachekey Missing // want "no type Missing in package cachekey"
func oops() string { return "" }

//gpulint:cachekey // want "needs exactly one type name"
func bare() string { return "" }

//gpulint:cachekey Req // want "is not attached to a function declaration"
var detached = 0

// Envelope is a wire form whose encode side builds the struct rather
// than reading it: keyed composite literals count as references.
type Envelope struct {
	Version int
	Key     string
	Outcome string
}

// encode covers every field through the composite literal.
//
//gpulint:cachekey Envelope
func encode(key, out string) Envelope {
	return Envelope{Version: 1, Key: key, Outcome: out}
}

//gpulint:cachekey Envelope // want "encodePartial does not reference exported field\\(s\\) Outcome of Envelope"
func encodePartial(key string) Envelope {
	return Envelope{Version: 1, Key: key}
}
