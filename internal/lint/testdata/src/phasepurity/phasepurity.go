// Package phasepurity exercises the phasepurity analyzer: code reachable
// from //gpulint:phasea roots must not mutate //gpulint:shared state
// outside //gpulint:staged sinks, and must never reach a //gpulint:phaseb
// commit function.
package phasepurity

// Memory is the shared staging target every shard can see.
//
//gpulint:shared all phase-A shards hold a pointer to it
type Memory struct {
	slots   []int
	commits int
	inbox   map[int]int
}

// Send is the declared staging sink: phase-A writes go through it.
//
//gpulint:staged writes only the calling core's slot
func (m *Memory) Send(core, v int) { m.slots[core] = v }

// Commit is the serial commit step; never called from phase A here.
//
//gpulint:phaseb commits the staged slots after the barrier
func (m *Memory) Commit() { m.commits++ }

// Drain is a phase-B step that phase A erroneously reaches via poke.
//
//gpulint:phaseb drains after the barrier
func (m *Memory) Drain() { m.commits = 0 } // want "phase-B commit phasepurity.Memory.Drain is reachable from the phase-A tick path"

// Core is per-shard state: phase A may mutate it freely.
type Core struct {
	id    int
	ticks int
	mem   *Memory
}

// Tick is a phase-A root: the shard workers run it concurrently.
//
//gpulint:phasea one worker per shard calls this
func (c *Core) Tick() {
	c.ticks++            // core-private: fine
	c.mem.Send(c.id, 1)  // staged sink: fine
	c.mem.slots[c.id] = 2 // want "phasepurity.Core.Tick writes c.mem.slots\\[c.id\\] \\(shared Memory\\) on the phase-A path"
	c.poke()
}

// poke is reachable from Tick: its mutations are phase-A mutations too.
func (c *Core) poke() {
	c.mem.commits++          // want "phasepurity.Core.poke writes c.mem.commits \\(shared Memory\\) on the phase-A path"
	delete(c.mem.inbox, c.id) // want "phasepurity.Core.poke mutates c.mem.inbox \\(shared Memory\\) on the phase-A path"
	c.mem.Drain()
}

// shardTick is a phase-A root that calls its visitor dynamically, like
// the real activity-set tick.
//
//gpulint:phasea the worker entry point; visit runs on the phase-A path
func shardTick(visit func(i int)) {
	visit(0)
}

// buildVisitors wires two closures into shardTick. The first is a
// declared staging sink; the second mutates shared state bare and is
// caught through the dynamic call edge.
func buildVisitors(mem *Memory) {
	//gpulint:staged writes only slot i, owned by the visiting shard
	ok := func(i int) {
		mem.slots[i] = i
	}
	bad := func(i int) {
		mem.commits = i // want "phasepurity.buildVisitors.func@phasepurity.go:\\d+ writes mem.commits \\(shared Memory\\) on the phase-A path"
	}
	shardTick(ok)
	shardTick(bad)
}

// probe reads shared state and stages one exclusively-owned slot; the
// carve-out is reviewed via an allow suppression.
//
//gpulint:phasea probes the shared horizon read-only
func probe(m *Memory) int {
	m.slots[0] = 9 //gpulint:allow phasepurity slot 0 is exclusively owned during the probe window
	return m.commits
}

// serialOnly is never reachable from a phase-A root: free to mutate.
func serialOnly(m *Memory) {
	m.commits++
	m.Commit()
}

// PartSystem models the sharded phase-A2 memory tick: partitions are cut
// into worker-owned ranges, per-partition mutation goes through a declared
// staging sink, and the cross-partition merge accumulator may only move in
// the serial merge.
//
//gpulint:shared every shard worker holds the system pointer
type PartSystem struct {
	cells  []int
	merged int
}

// tickPart is partition i's staging sink, like System.tickPartition.
//
//gpulint:staged writes only partition i's cell
func (s *PartSystem) tickPart(i int) { s.cells[i]++ }

// TickMerge folds the staged cells; phase B only.
//
//gpulint:phaseb folds the per-partition cells after the barrier
func (s *PartSystem) TickMerge() {
	for _, v := range s.cells {
		s.merged += v
	}
}

// TickShard is the phase-A2 root. Per-partition work flows through the
// staging sink; the bare merge-accumulator write is a mis-staged partition
// commit — serial-merge work leaking into the concurrent shard tick — and
// must be caught.
//
//gpulint:phasea one worker per disjoint partition range
func (s *PartSystem) TickShard(lo, hi int) {
	for i := lo; i < hi; i++ {
		s.tickPart(i)
		s.merged++ // want "phasepurity.PartSystem.TickShard writes s.merged \\(shared PartSystem\\) on the phase-A path"
	}
}

//gpulint:phasea // want "//gpulint:phasea is not attached to a function declaration or literal"
var notAFunc = 1

//gpulint:shared // want "//gpulint:shared is not attached to a type declaration"
var notAType = 2

// clean has no findings, so the suppression below is stale and reported.
//
//gpulint:phasea clean root
func clean(m *Memory) int {
	return m.commits //gpulint:allow phasepurity reads are free // want "unused //gpulint:allow suppression: no phasepurity diagnostic"
}
