// Package ctxflow exercises the ctxflow analyzer: no bare time.Sleep, no
// context-free HTTP, and no fresh context roots in handler-reachable code.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

func sleepy() {
	time.Sleep(time.Second) // want "ctxflow: bare time.Sleep blocks with no cancellation"
}

// waity is the sanctioned shape: a timer raced against the context.
func waity(ctx context.Context) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func fetch(c *http.Client) {
	c.Get("http://example.com")      // want "ctxflow: \\(\\*http.Client\\).Get sends a request with no context"
	http.Get("http://example.com")   // want "ctxflow: http.Get sends a request with no context"
	http.NewRequest("GET", "u", nil) // want "ctxflow: http.NewRequest builds a context-free request"
}

// fetchCtx is the sanctioned shape: the context rides in the request.
func fetchCtx(ctx context.Context, c *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.com", nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// handle -> helper: the fresh context two calls below the handler is
// found through the call graph.
func handle(w http.ResponseWriter, r *http.Request) {
	helper()
}

func helper() {
	ctx := context.Background() // want "ctxflow: ctxflow.helper is reachable from an HTTP handler \\(ctxflow.handle -> ctxflow.helper\\) but mints a fresh context.Background"
	_ = ctx
}

// runner is a detached background loop, not handler-reachable: a fresh
// root is exactly right for it.
func runner() {
	ctx := context.TODO()
	_ = ctx
}

// legacy documents a sanctioned sleep with a reviewed suppression.
func legacy() {
	time.Sleep(time.Millisecond) //gpulint:allow ctxflow startup jitter predates the ctx plumbing
}

// stale suppressions are themselves findings.
func quiet(ctx context.Context) {
	waity(ctx) //gpulint:allow ctxflow nothing to suppress // want "unused //gpulint:allow suppression: no ctxflow diagnostic"
}
