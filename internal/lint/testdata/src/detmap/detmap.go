// Package detmap exercises the detmap analyzer: range-over-map and
// maps.Keys/Values are flagged unless the iteration is sorted afterwards,
// wrapped in slices.Sorted, or justified with //gpulint:ordered-irrelevant.
package detmap

import (
	"maps"
	"slices"
	"sort"
)

func sumFlagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map m has nondeterministic order"
		total += v
	}
	return total
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m { // sorted later in this block: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sumJustified(m map[string]int) int {
	total := 0
	//gpulint:ordered-irrelevant integer addition commutes; only the sum is observable
	for _, v := range m {
		total += v
	}
	return total
}

func keysFlagged(m map[string]int) []string {
	return slices.Collect(maps.Keys(m)) // want "maps.Keys yields keys in nondeterministic order"
}

func keysSorted(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m)) // wrapped directly in slices.Sorted: allowed
}

func valuesSorted(m map[string]int) []int {
	return slices.Sorted(maps.Values(m))
}

func stale(m map[string]int) int {
	//gpulint:ordered-irrelevant nothing on the next line iterates a map // want "unused //gpulint:ordered-irrelevant suppression"
	return len(m)
}

//gpulint:frobnicate not a real directive // want "unknown directive //gpulint:frobnicate"
func typo() {}

func unknownAllow() {
	//gpulint:allow frobnicator misspelled analyzer name // want "names unknown analyzer \"frobnicator\""
	_ = 0
}
