package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"gpusched/internal/lint/analysis"
)

// Nogoroutine forbids concurrency constructs inside the cycle-loop
// packages. The simulator's central contract — equal Request keys produce
// byte-identical Results, on any GOMAXPROCS, with fast-forward on or off —
// holds because one goroutine advances the machine cycle by cycle. A `go`
// statement or channel operation inside gpu/sm/mem/core would let host
// scheduling order reach simulated state, which no test can reliably
// catch. Concurrency belongs one layer up, in internal/sim's worker pool,
// where whole deterministic simulations are the unit of parallelism.
var Nogoroutine = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc: "forbids go statements, channel types, and channel operations in cycle-loop packages; " +
		"parallelism belongs in internal/sim, not inside the machine model",
	Run: runNogoroutine,
}

func runNogoroutine(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in a cycle-loop package: host goroutine scheduling must not reach simulated state")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in a cycle-loop package breaks single-threaded replay")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in a cycle-loop package breaks single-threaded replay")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select in a cycle-loop package breaks single-threaded replay")
			case *ast.RangeStmt:
				if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Chan); ok {
					pass.Reportf(n.Pos(), "range over channel in a cycle-loop package breaks single-threaded replay")
				}
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type in a cycle-loop package: the machine model is single-threaded by contract")
			}
			return true
		})
	}
	return nil
}
