// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic).
// The build environment vendors no third-party modules, so gpulint carries
// its own framework: the API mirrors the upstream shapes closely enough
// that the analyzers would port to the real multichecker by swapping this
// import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check. Run inspects the package in Pass and
// reports findings through Pass.Report; it returns an error only for
// analyzer-internal failures (a nil return with diagnostics is the normal
// "found problems" outcome).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //gpulint:allow suppression comments.
	Name string
	// Doc is the one-paragraph description `gpulint -list` prints.
	Doc string
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Directives are the //gpulint: comments of the package's files, in
	// file/position order. Annotation-driven analyzers (cachekey, hotalloc)
	// read their markers here; suppression directives are applied by the
	// driver after the analyzer runs.
	Directives []Directive
	// Prog is the whole-program view (call graph, cross-package directive
	// attachment) when the driver loaded multiple packages together. Nil in
	// single-package runs; program-level analyzers then build a one-package
	// Program via ProgramFromPass, so fixtures exercise the same code path.
	Prog   *Program
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Directive kinds; see DESIGN.md "Determinism contract" for the grammar.
const (
	// KindOrderedIrrelevant suppresses a detmap finding on the same or next
	// line: //gpulint:ordered-irrelevant <why order cannot matter>
	KindOrderedIrrelevant = "ordered-irrelevant"
	// KindAllow suppresses the named analyzers on the same or next line:
	// //gpulint:allow analyzer[,analyzer] <reason>
	KindAllow = "allow"
	// KindHotpath marks the annotated function for the hotalloc analyzer:
	// //gpulint:hotpath
	KindHotpath = "hotpath"
	// KindCachekey requires the annotated function to reference every
	// exported field of the named package-local struct type:
	// //gpulint:cachekey TypeName
	KindCachekey = "cachekey"
	// KindPhaseA marks the annotated function as a root of the phase-A
	// (parallel) tick path for the phasepurity and wakesync analyzers:
	// //gpulint:phasea <why this is a phase-A entry point>
	KindPhaseA = "phasea"
	// KindPhaseB marks the annotated function as a serial commit step; its
	// being reachable from any phase-A root is a phasepurity error:
	// //gpulint:phaseb <why this must stay serial>
	KindPhaseB = "phaseb"
	// KindStaged marks the annotated function (or function literal on the
	// same or previous line) as a declared staging sink: phase-A code may
	// mutate shared state through it, and phasepurity does not look inside:
	// //gpulint:staged <which core-private slot it writes>
	KindStaged = "staged"
	// KindShared marks the annotated type's state as shared across the
	// phase-A shards; phasepurity flags any phase-A-reachable mutation of
	// it outside the staged sinks: //gpulint:shared <who shares it>
	KindShared = "shared"
	// KindSynced marks the annotated function as a wake/sync funnel (or a
	// reader that provably runs after one), exempting its lazy-counter
	// reads from the wakesync analyzer: //gpulint:synced <why it is synced>
	KindSynced = "synced"
	// KindLazy marks the annotated struct field as a lazily-accrued
	// container whose named sub-fields are only valid after a watermark
	// sync: //gpulint:lazy Field[,Field...] <what syncs them>
	KindLazy = "lazy"
	// KindGuardedby marks the annotated struct field as protected by the
	// named sibling mutex field: //gpulint:guardedby mu
	KindGuardedby = "guardedby"
)

// Directive is one parsed //gpulint: comment.
type Directive struct {
	Pos token.Pos
	// Kind is one of the Kind* constants, or the raw unknown word (the
	// driver reports those).
	Kind string
	// Args are the kind-specific arguments: the analyzer list for allow,
	// the type name for cachekey.
	Args []string
	// Reason is the trailing free text.
	Reason string
}

// ParseDirectives extracts the //gpulint: comments from the files. The
// text after the kind word is split per kind: allow and cachekey take one
// argument word, everything else is reason text. Anything from an embedded
// "// want" onward is ignored so analysistest fixtures can carry
// expectations on directive lines.
func ParseDirectives(files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//gpulint:")
				if !ok {
					continue
				}
				if i := strings.Index(text, "// want"); i >= 0 {
					text = text[:i]
				}
				kind, rest, _ := strings.Cut(strings.TrimSpace(text), " ")
				rest = strings.TrimSpace(rest)
				d := Directive{Pos: c.Pos(), Kind: kind}
				switch kind {
				case KindAllow, KindCachekey, KindLazy, KindGuardedby:
					arg, reason, _ := strings.Cut(rest, " ")
					if arg != "" {
						d.Args = strings.Split(arg, ",")
					}
					d.Reason = strings.TrimSpace(reason)
				default:
					d.Reason = rest
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// WalkStack traverses root like ast.Inspect but hands fn the path of
// ancestors (outermost first, excluding n itself). Several analyzers need
// the enclosing statement context of a node; the upstream framework gets
// this from the inspector package, we carry a small explicit stack.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
