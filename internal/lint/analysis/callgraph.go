package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-program view the cross-package analyzers
// (phasepurity, wakesync, ctxflow) run on: every loaded package, a
// type-based call graph over their functions, and directive attachment
// resolved down to functions, types, and struct fields. One Program is
// built per driver invocation and shared by every pass through Pass.Prog.
//
// The call graph is deliberately conservative, in the classic
// may-call sense:
//
//   - a static call (identifier or concrete method selector) gets one edge
//     to its callee when the callee's body is in the program;
//   - a call through an interface method gets an edge to that method on
//     every in-program named type implementing the interface (class
//     hierarchy analysis);
//   - a call through a function value — a field, variable, or parameter of
//     function type — gets an edge to every function literal and every
//     address-taken declared function whose (receiver-stripped) signature
//     is identical to the call's.
//
// Function literals are their own nodes, not folded into their enclosing
// declaration: a closure handed to a phase-A visitor runs on the phase-A
// path even though the function that built it never does, and vice versa.
type Program struct {
	Fset *token.FileSet
	Pkgs []*ProgPkg

	// The maps below are keyed by canonical strings, not object pointers.
	// The loader type-checks each module package from source but resolves
	// its imports through export data, so one declared function or field
	// exists as several distinct *types.Func/*types.Var objects — one per
	// type-checking universe. Pointer-keyed maps silently miss every
	// cross-package lookup; FullName/position keys are universe-independent.
	nodes     []*FuncNode            // position order: deterministic iteration
	byAST     map[ast.Node]*FuncNode // *ast.FuncDecl / *ast.FuncLit -> node
	byFn      map[string]*FuncNode   // funcKey (FullName) -> declared function node
	fields    map[string][]Directive // VarKey -> struct-field directives
	fieldAnns []FieldAnnotation
	typeDs    map[string][]Directive // typeKey (pkgpath.Name) -> type directives
}

// FieldAnnotation is one directive attached to a struct field, with the
// named type declaring the struct.
type FieldAnnotation struct {
	Field *types.Var
	Owner *types.TypeName
	D     Directive
}

// ProgPkg is one loaded package as the whole-program layer sees it.
type ProgPkg struct {
	Pkg        *types.Package
	Info       *types.Info
	Files      []*ast.File
	Directives []Directive
}

// FuncNode is one function in the call graph: either a declaration
// (Decl/Obj set) or a function literal (Lit set).
type FuncNode struct {
	Pkg  *ProgPkg
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Obj  *types.Func // nil for literals

	name       string
	callees    []*FuncNode
	calleeSet  map[*FuncNode]bool
	directives []Directive
}

// Name returns a stable human-readable name: "pkg.Func",
// "pkg.Recv.Method", or "enclosing.func@file:line" for literals.
func (n *FuncNode) Name() string { return n.name }

// Pos returns the function's source position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Body returns the function body (nil for bodyless declarations).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Callees returns the outgoing call edges in deterministic order.
func (n *FuncNode) Callees() []*FuncNode { return n.callees }

// Directives returns the //gpulint: directives attached to the function:
// its doc comment for declarations, the same or previous line for
// literals.
func (n *FuncNode) Directives() []Directive { return n.directives }

// Directive returns the first attached directive of the given kind.
func (n *FuncNode) Directive(kind string) (Directive, bool) {
	for _, d := range n.directives {
		if d.Kind == kind {
			return d, true
		}
	}
	return Directive{}, false
}

// HasDirective reports whether a directive of the kind is attached.
func (n *FuncNode) HasDirective(kind string) bool {
	_, ok := n.Directive(kind)
	return ok
}

// ProgramFromPass returns the pass's shared Program, or builds a
// one-package Program when the driver ran single-package (fixtures, unit
// tests) — the analyzers are agnostic to which they got.
func ProgramFromPass(pass *Pass) *Program {
	if pass.Prog != nil {
		return pass.Prog
	}
	return NewProgram(pass.Fset, []*ProgPkg{{
		Pkg: pass.Pkg, Info: pass.TypesInfo, Files: pass.Files, Directives: pass.Directives,
	}})
}

// NewProgram builds the call graph and directive attachment over pkgs.
func NewProgram(fset *token.FileSet, pkgs []*ProgPkg) *Program {
	p := &Program{
		Fset:   fset,
		Pkgs:   pkgs,
		byAST:  make(map[ast.Node]*FuncNode),
		byFn:   make(map[string]*FuncNode),
		fields: make(map[string][]Directive),
		typeDs: make(map[string][]Directive),
	}
	p.collectNodes()
	p.attachDirectives()
	addrTaken := p.collectAddrTaken()
	named := p.collectNamedTypes()
	for _, n := range p.nodes {
		p.buildEdges(n, addrTaken, named)
	}
	for _, n := range p.nodes {
		sort.Slice(n.callees, func(i, j int) bool { return n.callees[i].Pos() < n.callees[j].Pos() })
	}
	return p
}

// Nodes returns every function node in position order.
func (p *Program) Nodes() []*FuncNode { return p.nodes }

// NodeOf resolves an *ast.FuncDecl or *ast.FuncLit to its node.
func (p *Program) NodeOf(n ast.Node) *FuncNode { return p.byAST[n] }

// NodeFor resolves a declared function object to its node (nil when the
// body is outside the program, e.g. stdlib). The object may come from any
// type-checking universe — source-checked or export data.
func (p *Program) NodeFor(fn *types.Func) *FuncNode { return p.byFn[funcKey(fn)] }

// funcKey is the canonical identity of a declared function across
// type-checking universes: FullName package-qualifies both the receiver
// and the function, and is identical whether the object was checked from
// source or decoded from export data.
func funcKey(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// typeKey is the canonical identity of a package-level named type across
// type-checking universes.
func typeKey(tn *types.TypeName) string {
	if tn.Pkg() != nil {
		return tn.Pkg().Path() + "." + tn.Name()
	}
	return tn.Name()
}

// VarKey is the canonical identity of a struct field across type-checking
// universes: declaration file, line, and name. The column is excluded —
// export data keeps the file and line of a field's position but rounds
// the column to 1, so including it would split the universes again.
func (p *Program) VarKey(v *types.Var) string {
	if v == nil {
		return ""
	}
	if pos := p.Fset.Position(v.Pos()); pos.IsValid() {
		return fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, v.Name())
	}
	if v.Pkg() != nil {
		return v.Pkg().Path() + "." + v.Name()
	}
	return v.Name()
}

// AnnotatedFuncs returns every node carrying a directive of the kind, in
// position order.
func (p *Program) AnnotatedFuncs(kind string) []*FuncNode {
	var out []*FuncNode
	for _, n := range p.nodes {
		if n.HasDirective(kind) {
			out = append(out, n)
		}
	}
	return out
}

// FieldDirectives returns the directives attached to a struct field
// declaration (its doc comment, trailing comment, or the previous line).
// The field object may come from any type-checking universe.
func (p *Program) FieldDirectives(f *types.Var) []Directive { return p.fields[p.VarKey(f)] }

// AnnotatedFields returns every struct-field annotation of the kind, in
// package/position order.
func (p *Program) AnnotatedFields(kind string) []FieldAnnotation {
	var out []FieldAnnotation
	for _, fa := range p.fieldAnns {
		if fa.D.Kind == kind {
			out = append(out, fa)
		}
	}
	return out
}

// AttachedPositions returns the source positions of every directive that
// resolved to a function, type, or struct field — the complement is the
// set of structural directives that annotate nothing, which the analyzers
// report as misattached.
func (p *Program) AttachedPositions() map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	for _, n := range p.nodes {
		for _, d := range n.directives {
			out[d.Pos] = true
		}
	}
	//gpulint:ordered-irrelevant building a position set; insertion order is unobservable
	for _, ds := range p.typeDs {
		for _, d := range ds {
			out[d.Pos] = true
		}
	}
	for _, fa := range p.fieldAnns {
		out[fa.D.Pos] = true
	}
	return out
}

// TypeDirectives returns the directives attached to a type declaration.
// The type object may come from any type-checking universe.
func (p *Program) TypeDirectives(t *types.TypeName) []Directive { return p.typeDs[typeKey(t)] }

// TypeHasDirective reports whether the named type's declaration carries a
// directive of the kind.
func (p *Program) TypeHasDirective(t *types.TypeName, kind string) bool {
	for _, d := range p.typeDs[typeKey(t)] {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// Reachable walks call edges breadth-first from roots and returns the BFS
// tree as a child->parent map (roots map to nil). stop, when non-nil,
// prunes traversal below a node — the node itself is still recorded as
// reached, so analyzers can report on cut points (a //gpulint:phaseb
// function reached from phase A) without cascading into their bodies.
func (p *Program) Reachable(roots []*FuncNode, stop func(*FuncNode) bool) map[*FuncNode]*FuncNode {
	parents := make(map[*FuncNode]*FuncNode)
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := parents[r]; !ok {
			parents[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if stop != nil && stop(n) {
			continue
		}
		for _, c := range n.callees {
			if _, ok := parents[c]; !ok {
				parents[c] = n
				queue = append(queue, c)
			}
		}
	}
	return parents
}

// Path renders the call chain from a root to n through a Reachable tree:
// "root → ... → n". Diagnostics carry it so a cross-package finding names
// the edge that created the obligation, not just the line that broke it.
func (p *Program) Path(parents map[*FuncNode]*FuncNode, n *FuncNode) string {
	var chain []string
	for at := n; at != nil; at = parents[at] {
		chain = append(chain, at.Name())
		if parents[at] == nil {
			break
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " -> ")
}

// ---- construction ----

func (p *Program) collectNodes() {
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				n := &FuncNode{
					Pkg: pkg, Decl: fd, Obj: obj,
					name:      declName(pkg, fd),
					calleeSet: make(map[*FuncNode]bool),
				}
				p.nodes = append(p.nodes, n)
				p.byAST[fd] = n
				if obj != nil {
					p.byFn[funcKey(obj)] = n
				}
				// Literal nodes, named after their innermost encloser.
				p.collectLits(pkg, n, fd.Body)
			}
		}
	}
	sort.Slice(p.nodes, func(i, j int) bool {
		pi, pj := p.Fset.Position(p.nodes[i].Pos()), p.Fset.Position(p.nodes[j].Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
}

// collectLits registers every function literal under root as a node of
// its own, nesting included.
func (p *Program) collectLits(pkg *ProgPkg, encloser *FuncNode, root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		pos := p.Fset.Position(lit.Pos())
		n := &FuncNode{
			Pkg: pkg, Lit: lit,
			name:      fmt.Sprintf("%s.func@%s:%d", encloser.name, shortFile(pos.Filename), pos.Line),
			calleeSet: make(map[*FuncNode]bool),
		}
		p.nodes = append(p.nodes, n)
		p.byAST[lit] = n
		p.collectLits(pkg, n, lit.Body)
		return false // the recursion above owns the subtree
	})
}

func declName(pkg *ProgPkg, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg.Pkg.Name() + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	for {
		switch t := recv.(type) {
		case *ast.StarExpr:
			recv = t.X
			continue
		case *ast.IndexExpr:
			recv = t.X
			continue
		case *ast.ParenExpr:
			recv = t.X
			continue
		}
		break
	}
	if id, ok := recv.(*ast.Ident); ok {
		return pkg.Pkg.Name() + "." + id.Name + "." + fd.Name.Name
	}
	return pkg.Pkg.Name() + "." + fd.Name.Name
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// attachDirectives resolves each package's directives to the functions,
// types, and struct fields they annotate. Attachment is positional: a
// declaration's doc-comment range, a struct field's doc or trailing
// comment, or — for function literals, which cannot carry doc comments —
// the literal's own line or the line above it.
func (p *Program) attachDirectives() {
	for _, pkg := range p.Pkgs {
		for _, d := range pkg.Directives {
			p.attachOne(pkg, d)
		}
	}
}

func (p *Program) attachOne(pkg *ProgPkg, d Directive) {
	dp := p.Fset.Position(d.Pos)
	for _, file := range pkg.Files {
		if p.Fset.Position(file.Pos()).Filename != dp.Filename {
			continue
		}
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Doc != nil && decl.Doc.Pos() <= d.Pos && d.Pos <= decl.Doc.End() {
					n := p.byAST[decl]
					n.directives = append(n.directives, d)
					return
				}
			case *ast.GenDecl:
				if p.attachGen(pkg, decl, d, dp) {
					return
				}
			}
		}
		// Function literals: same line as the literal or the line above.
		attached := false
		ast.Inspect(file, func(x ast.Node) bool {
			if attached {
				return false
			}
			lit, ok := x.(*ast.FuncLit)
			if !ok {
				return true
			}
			line := p.Fset.Position(lit.Pos()).Line
			if dp.Line == line || dp.Line == line-1 {
				n := p.byAST[lit]
				n.directives = append(n.directives, d)
				attached = true
				return false
			}
			return true
		})
		return
	}
}

// attachGen attaches a directive inside a type declaration: to the type
// itself (GenDecl or TypeSpec doc) or to one of its struct fields (field
// doc or trailing comment).
func (p *Program) attachGen(pkg *ProgPkg, gd *ast.GenDecl, d Directive, dp token.Position) bool {
	if gd.Tok != token.TYPE {
		return false
	}
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
		inDoc := ts.Doc != nil && ts.Doc.Pos() <= d.Pos && d.Pos <= ts.Doc.End()
		inDoc = inDoc || (gd.Doc != nil && gd.Doc.Pos() <= d.Pos && d.Pos <= gd.Doc.End() && len(gd.Specs) == 1)
		if inDoc {
			if tn != nil {
				p.typeDs[typeKey(tn)] = append(p.typeDs[typeKey(tn)], d)
			}
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			inField := (field.Doc != nil && field.Doc.Pos() <= d.Pos && d.Pos <= field.Doc.End()) ||
				(field.Comment != nil && field.Comment.Pos() <= d.Pos && d.Pos <= field.Comment.End())
			if !inField {
				continue
			}
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					p.fields[p.VarKey(v)] = append(p.fields[p.VarKey(v)], d)
					p.fieldAnns = append(p.fieldAnns, FieldAnnotation{Field: v, Owner: tn, D: d})
				}
			}
			return true
		}
	}
	return false
}

// collectAddrTaken finds every declared function whose value is used
// outside call position — assigned, passed, stored, returned. Those (plus
// every function literal) are the candidates dynamic calls resolve to.
// Keys are funcKeys: a function address-taken in one package must match
// its node even when the use site saw it through export data.
func (p *Program) collectAddrTaken() map[string]bool {
	taken := make(map[string]bool)
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if !inCallPosition(id, stack) {
					taken[funcKey(fn)] = true
				}
				return true
			})
		}
	}
	return taken
}

// inCallPosition reports whether the identifier is the operator of a call
// (directly, or as the Sel of a called selector) rather than a value use.
func inCallPosition(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	if call, ok := parent.(*ast.CallExpr); ok {
		return call.Fun == id
	}
	sel, ok := parent.(*ast.SelectorExpr)
	if !ok || sel.Sel != id || len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	return ok && call.Fun == sel
}

// collectNamedTypes gathers every package-level named type in the
// program, the candidate set for interface-call resolution.
func (p *Program) collectNamedTypes() []*types.Named {
	var out []*types.Named
	for _, pkg := range p.Pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				out = append(out, named)
			}
		}
	}
	return out
}

// buildEdges walks one node's body (not descending into nested literals,
// which are their own nodes) and records its outgoing call edges.
func (p *Program) buildEdges(n *FuncNode, addrTaken map[string]bool, named []*types.Named) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Pkg.Info
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && x != n.Lit {
			_ = lit
			return false // separate node; edges only via calls to the value
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		p.addCallEdges(n, call, info, addrTaken, named)
		return true
	})
}

func (p *Program) addCallEdges(n *FuncNode, call *ast.CallExpr, info *types.Info, addrTaken map[string]bool, named []*types.Named) {
	fun := ast.Unparen(call.Fun)

	// Immediately-invoked literal: func(){...}().
	if lit, ok := fun.(*ast.FuncLit); ok {
		p.addEdge(n, p.byAST[lit])
		return
	}

	// Static callee (plain function, concrete method, or conversion).
	switch f := fun.(type) {
	case *ast.Ident:
		if callee, ok := info.Uses[f].(*types.Func); ok {
			p.addEdge(n, p.byFn[funcKey(callee)])
			return
		}
		if _, isType := info.Uses[f].(*types.TypeName); isType {
			return // conversion
		}
		if _, isBuiltin := info.Uses[f].(*types.Builtin); isBuiltin {
			return
		}
	case *ast.SelectorExpr:
		if callee, ok := info.Uses[f.Sel].(*types.Func); ok {
			if sel, selOK := info.Selections[f]; selOK && sel.Kind() == types.MethodVal {
				if types.IsInterface(sel.Recv().Underlying()) {
					p.addInterfaceEdges(n, sel.Recv(), callee, named)
					return
				}
			}
			p.addEdge(n, p.byFn[funcKey(callee)])
			return
		}
		if _, isType := info.Uses[f.Sel].(*types.TypeName); isType {
			return // qualified conversion
		}
	}

	// Dynamic call through a function value: resolve by identical
	// (receiver-stripped) signature over literals and address-taken decls.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	key := sigKey(sig)
	for _, cand := range p.nodes {
		switch {
		case cand.Lit != nil:
			if ls, ok := cand.Pkg.Info.TypeOf(cand.Lit).(*types.Signature); ok && sigKey(ls) == key {
				p.addEdge(n, cand)
			}
		case cand.Obj != nil && addrTaken[funcKey(cand.Obj)]:
			if ds, ok := cand.Obj.Type().(*types.Signature); ok && sigKey(ds) == key {
				p.addEdge(n, cand)
			}
		}
	}
}

// addInterfaceEdges resolves a call through interface method m to every
// in-program named type implementing the receiver interface.
func (p *Program) addInterfaceEdges(n *FuncNode, recv types.Type, m *types.Func, named []*types.Named) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, nt := range named {
		if types.IsInterface(nt.Underlying()) {
			continue
		}
		if !implementsStructurally(nt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(nt), true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			p.addEdge(n, p.byFn[funcKey(fn)])
		}
	}
}

// implementsStructurally reports whether the named type (through its
// pointer method set, the conservative superset) provides every method of
// iface with an identical package-qualified signature. It stands in for
// types.Implements because the program mixes type-checking universes: a
// Named type decoded from export data never pointer-compares equal to its
// source-checked twin, so types.Implements answers false across the
// boundary even for the same declaration. Method names plus sigKey strings
// are universe-independent.
func implementsStructurally(nt *types.Named, iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		im := iface.Method(i)
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(nt), true, im.Pkg(), im.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return false
		}
		isig, ok := im.Type().(*types.Signature)
		if !ok {
			return false
		}
		if sigKey(sig) != sigKey(isig) {
			return false
		}
	}
	return true
}

func (p *Program) addEdge(from, to *FuncNode) {
	if to == nil || from.calleeSet[to] {
		return
	}
	from.calleeSet[to] = true
	from.callees = append(from.callees, to)
}

// sigKey renders a signature's parameter and result types (receiver
// excluded) into a comparison key, package-qualified so same-named types
// in different packages don't collide.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	qual := func(p *types.Package) string { return p.Path() }
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), qual))
	}
	if sig.Variadic() {
		b.WriteString("...")
	}
	b.WriteByte(')')
	for i := 0; i < sig.Results().Len(); i++ {
		b.WriteByte(',')
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
	}
	return b.String()
}
