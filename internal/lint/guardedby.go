package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gpusched/internal/lint/analysis"
)

// Guardedby enforces mutex-protection annotations on struct fields
// (DESIGN.md "Concurrency contracts"). A field annotated
//
//	//gpulint:guardedby mu
//
// may only be accessed (read or write) where the sibling mutex is
// provably held: either a lexically preceding <base>.mu.Lock()/RLock()
// on the same receiver expression with no intervening non-deferred
// unlock, or inside a function whose name ends in "Locked" — the repo's
// caller-holds-the-lock convention (publishLocked, evictLocked). The
// check is a lexical approximation of lock dominance, not an alias
// analysis: it catches the forgotten-lock and use-after-unlock classes
// that the race detector only finds under load, while the convention
// suffix keeps the helpers it cannot see through enumerable.
var Guardedby = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "fields annotated //gpulint:guardedby mu may only be accessed under a lexically visible " +
		"<recv>.mu.Lock()/RLock(), or in functions named *Locked (caller holds the lock)",
	Run: runGuardedby,
}

func runGuardedby(pass *analysis.Pass) error {
	prog := analysis.ProgramFromPass(pass)
	reportMisattached(pass, prog, map[string]string{
		analysis.KindGuardedby: "a struct field",
	})

	// guarded: canonical field key (Program.VarKey) -> sibling mutex field
	// name. Keyed canonically so an access in another package — which sees
	// the field through export data as a distinct object — still resolves.
	guarded := make(map[string]string)
	for _, fa := range prog.AnnotatedFields(analysis.KindGuardedby) {
		inPkg := fa.Field.Pkg() == pass.Pkg
		if len(fa.D.Args) != 1 {
			if inPkg {
				pass.Reportf(fa.D.Pos, "//gpulint:guardedby needs exactly one mutex field name, e.g. //gpulint:guardedby mu")
			}
			continue
		}
		mu := fa.D.Args[0]
		if !siblingMutex(fa.Owner, mu) {
			if inPkg {
				pass.Reportf(fa.D.Pos, "//gpulint:guardedby %s: %s has no sync.Mutex/sync.RWMutex field %q", mu, fa.Owner.Name(), mu)
			}
			continue
		}
		guarded[prog.VarKey(fa.Field)] = mu
	}
	if len(guarded) == 0 {
		return nil
	}

	for _, n := range prog.Nodes() {
		if n.Pkg.Pkg != pass.Pkg {
			continue
		}
		checkGuardedAccesses(pass, prog, guarded, n)
	}
	return nil
}

// siblingMutex reports whether the struct declared by owner has a field
// named mu whose type is sync.Mutex or sync.RWMutex.
func siblingMutex(owner *types.TypeName, mu string) bool {
	st, ok := owner.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != mu {
			continue
		}
		t := f.Type()
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
				return true
			}
		}
	}
	return false
}

// lockEvent is one mutex operation seen while scanning a function body.
type lockEvent struct {
	pos      token.Pos
	base     string // receiver expression, canonicalized with types.ExprString
	mu       string
	lock     bool // Lock/RLock vs Unlock/RUnlock
	deferred bool
}

func checkGuardedAccesses(pass *analysis.Pass, prog *analysis.Program, guarded map[string]string, n *analysis.FuncNode) {
	body := n.Body()
	if body == nil {
		return
	}
	if n.Decl != nil && strings.HasSuffix(n.Decl.Name.Name, "Locked") {
		return // caller-holds-the-lock convention
	}

	var events []lockEvent
	type access struct {
		sel  *ast.SelectorExpr
		base string
		mu   string
	}
	var accesses []access

	analysis.WalkStack(body, func(x ast.Node, stack []ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false // separate node: a closure escaping the locked region must lock for itself
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			if ev, ok := mutexCall(x, stack); ok {
				events = append(events, ev)
			}
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			f, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			mu, tracked := guarded[prog.VarKey(f)]
			if !tracked {
				return true
			}
			accesses = append(accesses, access{x, types.ExprString(x.X), mu})
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, a := range accesses {
		if !heldAt(events, a.base, a.mu, a.sel.Pos()) {
			pass.Reportf(a.sel.Pos(), "guardedby: %s accesses %s without holding %s.%s; lock first, or name the helper *Locked if the caller holds it",
				n.Name(), types.ExprString(a.sel), a.base, a.mu)
		}
	}
}

// mutexCall recognizes <base>.<mu>.Lock/RLock/Unlock/RUnlock() calls.
func mutexCall(call *ast.CallExpr, stack []ast.Node) (lockEvent, bool) {
	method, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var lock bool
	switch method.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return lockEvent{}, false
	}
	muSel, ok := ast.Unparen(method.X).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	deferred := false
	if len(stack) > 0 {
		_, deferred = stack[len(stack)-1].(*ast.DeferStmt)
	}
	return lockEvent{
		pos:      call.Pos(),
		base:     types.ExprString(muSel.X),
		mu:       muSel.Sel.Name,
		lock:     lock,
		deferred: deferred,
	}, true
}

// heldAt reports whether base.mu is lexically held at pos: some earlier
// Lock/RLock on the same base and mutex, with no non-deferred unlock in
// between. Deferred unlocks run at return, so they never break the held
// region.
func heldAt(events []lockEvent, base, mu string, pos token.Pos) bool {
	lockPos := token.NoPos
	for _, ev := range events {
		if ev.pos >= pos || ev.base != base || ev.mu != mu {
			continue
		}
		if ev.lock {
			lockPos = ev.pos
		} else if !ev.deferred {
			lockPos = token.NoPos
		}
	}
	return lockPos != token.NoPos
}
