package lint_test

import (
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/analysistest"
)

func TestWakesync(t *testing.T) {
	analysistest.Run(t, "testdata/src/wakesync", lint.Wakesync)
}
