package lint

import (
	"go/token"

	"gpusched/internal/lint/analysis"
	"gpusched/internal/lint/load"
)

// Check runs every suite analyzer whose scope matches the package, applies
// the package's suppression directives, and returns the surviving
// diagnostics sorted by position. This is the one entry point cmd/gpulint
// and the self-test share, so "the repo is gpulint-clean" means the same
// thing in CI and in `go test ./internal/lint`.
func Check(fset *token.FileSet, pkg *load.Package) []analysis.Diagnostic {
	dirs := analysis.ParseDirectives(pkg.Files)
	active := make(map[string]bool)
	var diags []analysis.Diagnostic
	for _, c := range Suite() {
		if !c.Match(pkg.Path) {
			continue
		}
		active[c.Analyzer.Name] = true
		pass := &analysis.Pass{
			Analyzer:   c.Analyzer,
			Fset:       fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			Directives: dirs,
			Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		// Analyzer-internal failures surface as diagnostics too: a linter
		// that silently skips a package is a linter that silently stops
		// enforcing its contract.
		if err := c.Analyzer.Run(pass); err != nil {
			diags = append(diags, analysis.Diagnostic{
				Pos:      pkg.Files[0].Pos(),
				Analyzer: c.Analyzer.Name,
				Message:  "analyzer failed: " + err.Error(),
			})
		}
	}
	return ApplySuppressions(fset, diags, dirs, active)
}
