package lint

import (
	"go/token"

	"gpusched/internal/lint/analysis"
	"gpusched/internal/lint/load"
)

// Check runs the suite over one package in isolation. Prefer CheckAll for
// multi-package runs: the whole-program analyzers (phasepurity, wakesync,
// ctxflow) only see cross-package call edges when the packages are loaded
// together.
func Check(fset *token.FileSet, pkg *load.Package) []analysis.Diagnostic {
	return CheckAll(fset, []*load.Package{pkg})
}

// CheckAll runs every suite analyzer over the loaded packages, sharing one
// whole-program view (call graph + directive attachment) across all of
// them, applies each package's suppression directives, and returns the
// surviving diagnostics sorted by position. This is the one entry point
// cmd/gpulint and the self-test share, so "the repo is gpulint-clean"
// means the same thing in CI and in `go test ./internal/lint`.
func CheckAll(fset *token.FileSet, pkgs []*load.Package) []analysis.Diagnostic {
	dirsOf := make(map[*load.Package][]analysis.Directive, len(pkgs))
	progPkgs := make([]*analysis.ProgPkg, 0, len(pkgs))
	for _, pkg := range pkgs {
		dirs := analysis.ParseDirectives(pkg.Files)
		dirsOf[pkg] = dirs
		progPkgs = append(progPkgs, &analysis.ProgPkg{
			Pkg: pkg.Types, Info: pkg.Info, Files: pkg.Files, Directives: dirs,
		})
	}
	prog := analysis.NewProgram(fset, progPkgs)

	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		dirs := dirsOf[pkg]
		active := make(map[string]bool)
		var diags []analysis.Diagnostic
		for _, c := range Suite() {
			if !c.Match(pkg.Path) {
				continue
			}
			active[c.Analyzer.Name] = true
			pass := &analysis.Pass{
				Analyzer:   c.Analyzer,
				Fset:       fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				Directives: dirs,
				Prog:       prog,
				Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			// Analyzer-internal failures surface as diagnostics too: a linter
			// that silently skips a package is a linter that silently stops
			// enforcing its contract.
			if err := c.Analyzer.Run(pass); err != nil {
				diags = append(diags, analysis.Diagnostic{
					Pos:      pkg.Files[0].Pos(),
					Analyzer: c.Analyzer.Name,
					Message:  "analyzer failed: " + err.Error(),
				})
			}
		}
		all = append(all, ApplySuppressions(fset, diags, dirs, active)...)
	}
	SortDiagnostics(fset, all)
	return all
}
