package lint_test

import (
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/analysistest"
)

// The detmap fixture also carries the directive-grammar cases (unknown
// directive kind, allow naming an unknown analyzer) since those
// meta-diagnostics are emitted on every run.
func TestDetmap(t *testing.T) {
	analysistest.Run(t, "testdata/src/detmap", lint.Detmap)
}
