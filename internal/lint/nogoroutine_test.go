package lint_test

import (
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/analysistest"
)

func TestNogoroutine(t *testing.T) {
	analysistest.Run(t, "testdata/src/nogoroutine", lint.Nogoroutine)
}
