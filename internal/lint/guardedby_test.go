package lint_test

import (
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/analysistest"
)

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, "testdata/src/guardedby", lint.Guardedby)
}
