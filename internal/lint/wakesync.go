package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"gpusched/internal/lint/analysis"
)

// Wakesync enforces the lazy stall-counter watermark contract (DESIGN.md
// "Concurrency contracts"): a struct field annotated
//
//	//gpulint:lazy Field[,Field...] <what syncs them>
//
// is a lazily-accrued container — the named sub-fields only hold their
// true value after the owner has been fast-forwarded to the reader's
// cycle. sm.SM annotates its Stats field this way: ActiveCycles and the
// stall counters accrue in SM.FastForward, so a serial-phase read that
// skips the wake/sync funnel sees a stale watermark. Reads of the listed
// sub-fields (or copies of the whole container) are only legal inside
// phase-A-reachable code (a core replaying itself is, by construction, at
// its own watermark) or in functions annotated //gpulint:synced — the
// funnels, and readers that provably run after one.
var Wakesync = &analysis.Analyzer{
	Name: "wakesync",
	Doc: "reads of //gpulint:lazy counters outside the phase-A path must happen in //gpulint:synced " +
		"functions; keeps the PR 8 watermark contract (sync before you read) mechanical",
	Run: runWakesync,
}

func runWakesync(pass *analysis.Pass) error {
	prog := analysis.ProgramFromPass(pass)
	reportMisattached(pass, prog, map[string]string{
		analysis.KindSynced: "a function declaration or literal",
		analysis.KindLazy:   "a struct field",
	})

	// lazy containers: canonical field key (Program.VarKey) -> set of
	// lazily-accrued sub-fields. Keys, not *types.Var pointers: a reader in
	// another package sees the field through export data as a distinct
	// object, and the contract must hold at exactly those readers.
	lazies := make(map[string]map[string]bool)
	for _, fa := range prog.AnnotatedFields(analysis.KindLazy) {
		inPkg := fa.Field.Pkg() == pass.Pkg
		st, ok := fa.Field.Type().Underlying().(*types.Struct)
		if !ok {
			if inPkg {
				pass.Reportf(fa.D.Pos, "//gpulint:lazy: field %s is not of struct type", fa.Field.Name())
			}
			continue
		}
		if len(fa.D.Args) == 0 {
			if inPkg {
				pass.Reportf(fa.D.Pos, "//gpulint:lazy needs the lazily-accrued sub-field names, e.g. //gpulint:lazy ActiveCycles,StallDrain")
			}
			continue
		}
		sub := make(map[string]bool, len(fa.D.Args))
		for _, name := range fa.D.Args {
			found := false
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Name() == name {
					found = true
					break
				}
			}
			if !found {
				if inPkg {
					pass.Reportf(fa.D.Pos, "//gpulint:lazy: %s has no field %s",
						types.TypeString(fa.Field.Type(), types.RelativeTo(fa.Field.Pkg())), name)
				}
				continue
			}
			sub[name] = true
		}
		lazies[prog.VarKey(fa.Field)] = sub
	}
	if len(lazies) == 0 {
		return nil
	}

	phaseA := prog.Reachable(prog.AnnotatedFuncs(analysis.KindPhaseA), nil)
	for _, n := range prog.Nodes() {
		if n.Pkg.Pkg != pass.Pkg || n.HasDirective(analysis.KindSynced) {
			continue
		}
		if _, ok := phaseA[n]; ok {
			continue
		}
		scanLazyReads(pass, prog, lazies, n)
	}
	return nil
}

// scanLazyReads walks one function body (nested literals are their own
// nodes) and reports reads through a lazy container. Writes — the accrual
// sites themselves — are exempt: storing into a lazy counter is the
// watermark mechanism, reading one stale is the bug.
func scanLazyReads(pass *analysis.Pass, prog *analysis.Program, lazies map[string]map[string]bool, n *analysis.FuncNode) {
	body := n.Body()
	if body == nil {
		return
	}
	analysis.WalkStack(body, func(x ast.Node, stack []ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !outermostSelector(sel, stack) || isWriteTarget(sel, stack) {
			return true
		}
		container, terminal := lazyChain(pass, prog, lazies, sel)
		if container == nil {
			return true
		}
		sub := lazies[prog.VarKey(container)]
		switch {
		case terminal == container.Name():
			pass.Reportf(sel.Pos(), "wakesync: %s copies %s, whose %s are lazily accrued; sync the owner to the current cycle first (//gpulint:synced funnel)",
				n.Name(), types.ExprString(sel), strings.Join(sortedNames(sub), "/"))
		case sub[terminal]:
			pass.Reportf(sel.Pos(), "wakesync: %s reads lazily-accrued %s outside the sync funnel; read it after a sync, or annotate the reader //gpulint:synced with why it is safe",
				n.Name(), types.ExprString(sel))
		}
		return true
	})
}

// outermostSelector reports whether sel is not itself the base of an
// enclosing selector chain (possibly through index/paren links) — chain
// analysis runs once, at the outermost link.
func outermostSelector(sel *ast.SelectorExpr, stack []ast.Node) bool {
	var cur ast.Expr = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.SelectorExpr:
			return p.X != cur
		case *ast.IndexExpr:
			if p.X != cur {
				return true
			}
			cur = p
		case *ast.ParenExpr:
			cur = p
		default:
			return true
		}
	}
	return true
}

// isWriteTarget reports whether the selector is the target of an
// assignment or ++/-- (directly or through index links).
func isWriteTarget(sel *ast.SelectorExpr, stack []ast.Node) bool {
	var cur ast.Expr = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.IndexExpr:
			if p.X != cur {
				return false
			}
			cur = p
		case *ast.ParenExpr:
			cur = p
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == cur
		case *ast.UnaryExpr:
			// &x.f hands out a mutable reference; treat as a write site.
			return p.Op.String() == "&"
		default:
			return false
		}
	}
	return false
}

// lazyChain walks the selector chain outermost-in, returning the lazy
// container field it passes through (nil if none) and the terminal field
// name ("" when the terminal selection is not a plain field, e.g. a
// method value — which copies the receiver, so the container name is
// returned as terminal).
func lazyChain(pass *analysis.Pass, prog *analysis.Program, lazies map[string]map[string]bool, outer *ast.SelectorExpr) (*types.Var, string) {
	var fields []*types.Var
	e := ast.Expr(outer)
	terminal := ""
	first := true
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			selection, ok := pass.TypesInfo.Selections[x]
			if ok && selection.Kind() == types.FieldVal {
				if f, ok := selection.Obj().(*types.Var); ok {
					fields = append(fields, f)
					if first {
						terminal = f.Name()
					}
				}
			}
			first = false
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			for _, f := range fields {
				if _, ok := lazies[prog.VarKey(f)]; ok {
					if terminal == "" || f.Name() == terminal {
						return f, f.Name()
					}
					return f, terminal
				}
			}
			return nil, ""
		}
	}
}

func sortedNames(set map[string]bool) []string {
	var out []string
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
