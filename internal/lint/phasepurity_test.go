package lint_test

import (
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/analysistest"
)

func TestPhasepurity(t *testing.T) {
	analysistest.Run(t, "testdata/src/phasepurity", lint.Phasepurity)
}
