// Package load type-checks the module's packages for gpulint without any
// dependency beyond the Go toolchain. It shells out to `go list -export
// -deps` once: the module's own packages are parsed and type-checked from
// source (gpulint needs their syntax trees), while every import — stdlib
// and same-module alike — is satisfied from the compiler's export data via
// the standard go/importer, so a whole-repo load stays well under a second
// on a warm build cache.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	// Path is the import path ("gpusched/internal/sim").
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Export     string
	Dir        string
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load type-checks the module packages matching the patterns (relative to
// dir; empty dir means the current directory). Test files are not loaded:
// gpulint's contracts govern what the simulator executes, and `go list
// -deps` describes exactly that build graph.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	var modPath string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil {
			if modPath == "" {
				modPath = p.Module.Path
			}
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, fset, nil
}
