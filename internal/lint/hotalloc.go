package lint

import (
	"go/ast"
	"go/types"

	"gpusched/internal/lint/analysis"
)

// Hotalloc polices allocation hazards in functions annotated
// //gpulint:hotpath — the per-cycle code (warp pick, FR-FCFS scan,
// fast-forward replay) whose de-scanning PR 3 paid for with benchmarks.
// Three hazard classes are flagged: fmt formatting calls (always
// allocate), implicit boxing of a concrete value into an interface
// (allocates once the value escapes, and fmt-free hot loops have no
// business erasing types), and append whose result lands in a struct field
// or package variable (an escaping, amortized-growth slice on the
// per-cycle path). The checks are syntactic-plus-types approximations, not
// an escape analysis; they exist to make an allocation on a hot path a
// reviewed decision (//gpulint:allow hotalloc <reason>), not an accident.
var Hotalloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags fmt calls, interface boxing, and appends to escaping slices inside functions " +
		"annotated //gpulint:hotpath",
	Run: runHotalloc,
}

func runHotalloc(pass *analysis.Pass) error {
	for _, d := range pass.Directives {
		if d.Kind != analysis.KindHotpath {
			continue
		}
		fn := annotatedFunc(pass, d.Pos)
		if fn == nil {
			pass.Reportf(d.Pos, "//gpulint:hotpath is not attached to a function declaration")
			continue
		}
		checkHotFunc(pass, fn)
	}
	return nil
}

func checkHotFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	analysis.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, stack)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break // multi-value RHS; covered by the call check
				}
				lt := pass.TypesInfo.TypeOf(n.Lhs[i])
				if boxes(lt, pass.TypesInfo.TypeOf(rhs)) {
					pass.Reportf(rhs.Pos(), "hotpath %s: assignment boxes %s into %s (allocates); keep hot-path state concrete", fn.Name.Name, pass.TypesInfo.TypeOf(rhs), lt)
				}
			}
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	// fmt.* is flagged as a whole; skip the per-argument boxing noise.
	if callee := typeutilCallee(pass, call); callee != nil {
		if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "hotpath %s: fmt.%s allocates on every call; precompute or move formatting off the per-cycle path", fn.Name.Name, callee.Name())
			return
		}
	}

	// append whose result binds to a field or package-level variable.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if dst, escapes := appendEscapes(pass, call, stack); escapes {
				pass.Reportf(call.Pos(), "hotpath %s: append result is stored in escaping %s; preallocate or justify with //gpulint:allow hotalloc", fn.Name.Name, dst)
			}
			return
		}
	}

	// Implicit interface boxing at the call boundary.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // builtin or type conversion
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarded slice, no per-element boxing here
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if boxes(param, pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "hotpath %s: argument boxes %s into %s (allocates); take the concrete type instead", fn.Name.Name, pass.TypesInfo.TypeOf(arg), param)
		}
	}
}

// boxes reports whether assigning a value of type from to a location of
// type to converts a concrete value into an interface.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if !types.IsInterface(to) || types.IsInterface(from) {
		return false
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		// Untyped nil (and constants the compiler may box statically).
		return b.Kind() != types.UntypedNil
	}
	return true
}

// appendEscapes reports whether the append call's result is assigned to a
// struct field or a package-level variable, naming the destination.
func appendEscapes(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) (string, bool) {
	if len(stack) == 0 {
		return "", false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != len(assign.Lhs) {
		return "", false
	}
	for i, rhs := range assign.Rhs {
		if rhs != call {
			continue
		}
		switch lhs := assign.Lhs[i].(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
				return "field " + types.ExprString(lhs), true
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[lhs]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
				return "package variable " + lhs.Name, true
			}
		}
	}
	return "", false
}

// typeutilCallee resolves the static callee of a call, or nil.
func typeutilCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
