package lint_test

import (
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/analysistest"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/hotalloc", lint.Hotalloc)
}
