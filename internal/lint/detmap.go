package lint

import (
	"go/ast"
	"go/types"

	"gpusched/internal/lint/analysis"
)

// Detmap flags map iteration whose order can leak into results or
// user-visible output. Go randomizes map iteration order per run, so any
// `range m` over a map — and any maps.Keys/maps.Values sequence — is a
// nondeterminism hazard unless the iteration's effect is provably
// order-free. The analyzer accepts two escape hatches: a sort call later
// in the same block (the collect-then-sort idiom), or wrapping maps.Keys
// directly in slices.Sorted; anything else needs a
// //gpulint:ordered-irrelevant justification comment.
var Detmap = &analysis.Analyzer{
	Name: "detmap",
	Doc: "flags range-over-map and unsorted maps.Keys/Values in deterministic packages; " +
		"suppress with //gpulint:ordered-irrelevant <reason> after proving order cannot matter",
	Run: runDetmap,
}

func runDetmap(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); !ok {
					return true
				}
				if sortFollows(pass, n, stack) {
					return true
				}
				pass.Reportf(n.Pos(), "range over map %s has nondeterministic order; iterate sorted keys, sort afterwards in this block, or justify with //gpulint:ordered-irrelevant", types.ExprString(n.X))
			case *ast.CallExpr:
				name, ok := calleeOf(pass, n, "maps", "Keys", "Values")
				if !ok {
					return true
				}
				if parent, ok := parentCall(stack); ok {
					if _, sorted := calleeOf(pass, parent, "slices", "Sorted", "SortedFunc", "SortedStableFunc"); sorted {
						return true
					}
				}
				pass.Reportf(n.Pos(), "maps.%s yields keys in nondeterministic order; wrap in slices.Sorted (or a SortedFunc variant) or justify with //gpulint:ordered-irrelevant", name)
			}
			return true
		})
	}
	return nil
}

// calleeOf reports whether call invokes pkg.<one of names>, returning the
// matched name. pkg is matched by import path suffix so it covers both
// "sort"/"slices"/"maps" and hypothetical vendored paths.
func calleeOf(pass *analysis.Pass, call *ast.CallExpr, pkg string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkg {
		return "", false
	}
	for _, n := range names {
		if fn.Name() == n {
			return n, true
		}
	}
	return "", false
}

// sortFollows reports whether a sort.* or slices.Sort* call appears after
// the range statement in its enclosing block — the collect-then-sort idiom
// (append map elements to a slice, then order it before anything observes
// the sequence).
func sortFollows(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	var block *ast.BlockStmt
	var inner ast.Node = rng
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
		inner = stack[i]
	}
	if block == nil {
		return false
	}
	after := false
	for _, stmt := range block.List {
		if stmt == inner {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isSortCall(pass, call) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall matches sort.* and slices.Sort* calls (including method
// values like sort.Slice and slices.SortStableFunc).
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return len(fn.Name()) >= 4 && fn.Name()[:4] == "Sort"
	}
	return false
}

// parentCall returns the nearest enclosing call expression when the stack
// top is its argument list (i.e. the current node is a direct argument).
func parentCall(stack []ast.Node) (*ast.CallExpr, bool) {
	if len(stack) == 0 {
		return nil, false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	return call, ok
}
