package lint

import (
	"go/ast"
	"go/types"

	"gpusched/internal/lint/analysis"
)

// Ctxflow enforces context discipline in the serving tier (DESIGN.md
// "Concurrency contracts"). Two rule classes:
//
// Flat bans, anywhere in a scoped package: bare time.Sleep (blocks with
// no cancellation — a drain or shutdown then waits out the full sleep;
// select on a timer and a context instead), and context-free HTTP
// (http.Get/Post/Head/PostForm, http.NewRequest, and the same methods on
// *http.Client — a black-holed peer then pins the goroutine until the
// client timeout, invisible to cancellation).
//
// Handler-path rule, via the whole-program call graph: any function
// reachable from an HTTP handler (signature func(http.ResponseWriter,
// *http.Request)) must not mint fresh roots with context.Background() or
// context.TODO() — the request already carries the context the work
// should inherit. Code that deliberately detaches (a job runner outliving
// its submission request) is fine exactly because it is not on a handler
// path.
var Ctxflow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "bans bare time.Sleep and context-free HTTP in the serving tier, and bans " +
		"context.Background/TODO in handler-reachable code (thread the request context)",
	Run: runCtxflow,
}

func runCtxflow(pass *analysis.Pass) error {
	prog := analysis.ProgramFromPass(pass)
	handlerReach := prog.Reachable(httpHandlers(prog), nil)

	for _, n := range prog.Nodes() {
		if n.Pkg.Pkg != pass.Pkg {
			continue
		}
		body := n.Body()
		if body == nil {
			continue
		}
		_, reached := handlerReach[n]
		ast.Inspect(body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCtxCall(pass, prog, handlerReach, n, call, reached)
			return true
		})
	}
	return nil
}

// httpHandlers returns every function whose signature is the
// net/http.HandlerFunc shape — the roots of the request-context flow.
func httpHandlers(prog *analysis.Program) []*analysis.FuncNode {
	var out []*analysis.FuncNode
	for _, n := range prog.Nodes() {
		var sig *types.Signature
		switch {
		case n.Obj != nil:
			sig, _ = n.Obj.Type().(*types.Signature)
		case n.Lit != nil:
			sig, _ = n.Pkg.Info.TypeOf(n.Lit).(*types.Signature)
		}
		if sig != nil && isHandlerSig(sig) {
			out = append(out, n)
		}
	}
	return out
}

func isHandlerSig(sig *types.Signature) bool {
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return isNetHTTP(sig.Params().At(0).Type(), "ResponseWriter", false) &&
		isNetHTTP(sig.Params().At(1).Type(), "Request", true)
}

func isNetHTTP(t types.Type, name string, wantPtr bool) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		if !wantPtr {
			return false
		}
		t = ptr.Elem()
	} else if wantPtr {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}

func checkCtxCall(pass *analysis.Pass, prog *analysis.Program, reach map[*analysis.FuncNode]*analysis.FuncNode, n *analysis.FuncNode, call *ast.CallExpr, handlerReachable bool) {
	callee := typeutilCallee(pass, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	name := callee.Name()
	switch callee.Pkg().Path() {
	case "time":
		if name == "Sleep" {
			pass.Reportf(call.Pos(), "ctxflow: bare time.Sleep blocks with no cancellation; select on a timer and a context (or the stop channel) instead")
		}
	case "net/http":
		sig, _ := callee.Type().(*types.Signature)
		onClient := sig != nil && sig.Recv() != nil && isClientRecv(sig.Recv().Type())
		switch {
		case name == "NewRequest":
			pass.Reportf(call.Pos(), "ctxflow: http.NewRequest builds a context-free request; use http.NewRequestWithContext")
		case (name == "Get" || name == "Post" || name == "Head" || name == "PostForm") && (sig == nil || sig.Recv() == nil):
			pass.Reportf(call.Pos(), "ctxflow: http.%s sends a request with no context; build one with http.NewRequestWithContext and Do it", name)
		case (name == "Get" || name == "Post" || name == "Head" || name == "PostForm") && onClient:
			pass.Reportf(call.Pos(), "ctxflow: (*http.Client).%s sends a request with no context; build one with http.NewRequestWithContext and Do it", name)
		}
	case "context":
		if (name == "Background" || name == "TODO") && handlerReachable {
			pass.Reportf(call.Pos(), "ctxflow: %s is reachable from an HTTP handler (%s) but mints a fresh context.%s; thread the request context instead",
				n.Name(), prog.Path(reach, n), name)
		}
	}
}

func isClientRecv(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Client"
}
