package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"gpusched/internal/lint/analysis"
)

// Phasepurity enforces the two-phase tick's staging discipline on the
// whole-program call graph (DESIGN.md "Concurrency contracts"). Roots are
// the functions annotated //gpulint:phasea — the code the parexec workers
// run concurrently. Everything reachable from them may not write state of
// a type annotated //gpulint:shared (mem.System, gpu.GPU) except inside a
// function annotated //gpulint:staged, the declared per-core staging
// sinks. A function annotated //gpulint:phaseb — the serial commit steps —
// being reachable from a phase-A root at all is an error: the diagnostic
// carries the call path that created the race.
var Phasepurity = &analysis.Analyzer{
	Name: "phasepurity",
	Doc: "code reachable from //gpulint:phasea roots must not mutate //gpulint:shared state outside " +
		"//gpulint:staged sinks, and must not reach //gpulint:phaseb commit functions",
	Run: runPhasepurity,
}

func runPhasepurity(pass *analysis.Pass) error {
	prog := analysis.ProgramFromPass(pass)
	reportMisattached(pass, prog,
		map[string]string{
			analysis.KindPhaseA: "a function declaration or literal",
			analysis.KindPhaseB: "a function declaration or literal",
			analysis.KindStaged: "a function declaration or literal",
			analysis.KindShared: "a type declaration",
		})

	roots := prog.AnnotatedFuncs(analysis.KindPhaseA)
	if len(roots) == 0 {
		return nil
	}
	// Staged sinks and phase-B functions are cut points: the former are the
	// declared mutation carve-outs, the latter are reported at the edge
	// that reached them rather than cascading into their bodies.
	parents := prog.Reachable(roots, func(n *analysis.FuncNode) bool {
		return n.HasDirective(analysis.KindStaged) || n.HasDirective(analysis.KindPhaseB)
	})
	for _, n := range prog.Nodes() {
		if n.Pkg.Pkg != pass.Pkg {
			continue
		}
		if _, reached := parents[n]; !reached {
			continue
		}
		if n.HasDirective(analysis.KindPhaseB) {
			if parents[n] != nil {
				pass.Reportf(n.Pos(), "phasepurity: phase-B commit %s is reachable from the phase-A tick path (%s); commits must wait for the barrier",
					n.Name(), prog.Path(parents, n))
			}
			continue
		}
		if n.HasDirective(analysis.KindStaged) {
			continue
		}
		scanPhaseMutations(pass, prog, parents, n)
	}
	return nil
}

// reportMisattached flags structural directives of the given kinds (in the
// current package) that resolved to no function, type, or field — an
// annotation floating next to nothing enforces nothing.
func reportMisattached(pass *analysis.Pass, prog *analysis.Program, kinds map[string]string) {
	attached := prog.AttachedPositions()
	for _, d := range pass.Directives {
		want, tracked := kinds[d.Kind]
		if !tracked || attached[d.Pos] {
			continue
		}
		pass.Reportf(d.Pos, "//gpulint:%s is not attached to %s", d.Kind, want)
	}
}

// scanPhaseMutations walks one phase-A-reachable function body (nested
// literals are their own nodes) and reports writes into shared state:
// assignments, ++/--, and the mutating builtins delete/copy, whenever the
// written location's selector/index chain passes through a type annotated
// //gpulint:shared.
func scanPhaseMutations(pass *analysis.Pass, prog *analysis.Program, parents map[*analysis.FuncNode]*analysis.FuncNode, n *analysis.FuncNode) {
	body := n.Body()
	if body == nil {
		return
	}
	check := func(expr ast.Expr, verb string) {
		if name, ok := sharedChain(pass, prog, expr); ok {
			pass.Reportf(expr.Pos(), "phasepurity: %s %s %s (shared %s) on the phase-A path (%s); route it through a //gpulint:staged sink or move it to phase B",
				n.Name(), verb, types.ExprString(expr), name, prog.Path(parents, n))
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return x == n.Lit
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				check(lhs, "writes")
			}
		case *ast.IncDecStmt:
			check(x.X, "writes")
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && len(x.Args) > 0 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "delete" || b.Name() == "copy") {
					check(x.Args[0], "mutates")
				}
			}
		}
		return true
	})
}

// sharedChain reports whether the expression is a selector/index chain
// any of whose links has a //gpulint:shared type, naming that type.
func sharedChain(pass *analysis.Pass, prog *analysis.Program, expr ast.Expr) (string, bool) {
	e := ast.Expr(expr)
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if name, ok := sharedTypeName(pass, prog, pass.TypesInfo.TypeOf(x.X)); ok {
				return name, true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// sharedTypeName resolves t (through pointers) to a named type annotated
// //gpulint:shared.
func sharedTypeName(pass *analysis.Pass, prog *analysis.Program, t types.Type) (string, bool) {
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	tn := named.Obj()
	if prog.TypeHasDirective(tn, analysis.KindShared) {
		return tn.Name(), true
	}
	return "", false
}
