package lint_test

import (
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/load"
)

// TestRepoGpulintClean runs the full suite over the module itself, exactly
// as cmd/gpulint does. The repo carrying zero unsuppressed diagnostics is
// part of the determinism contract, so drift fails `go test` too, not just
// `make lint`.
func TestRepoGpulintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export over the whole module")
	}
	pkgs, fset, err := load.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("load.Load returned no packages")
	}
	// One whole-program pass, exactly as cmd/gpulint runs it: the
	// call-graph analyzers need every package loaded together.
	for _, d := range lint.CheckAll(fset, pkgs) {
		t.Errorf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}
