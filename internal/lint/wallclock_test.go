package lint_test

import (
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/analysistest"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata/src/wallclock", lint.Wallclock)
}
