// Package analysistest runs one gpulint analyzer over a fixture directory
// and checks its diagnostics against // want comments — a small offline
// stand-in for golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of .go files forming one package. Expectations
// are written at the end of the offending line:
//
//	for k := range m { // want "range over map"
//
// Each quoted string is a regular expression that must match exactly one
// diagnostic reported on that line; diagnostics with no matching want, and
// wants with no matching diagnostic, fail the test. Because suppression
// handling is part of the contract under test, the analyzer's diagnostics
// pass through lint.ApplySuppressions first — so fixtures can prove both
// that //gpulint: comments silence findings and that stale ones are
// reported. A want may ride on a //gpulint: directive line; the directive
// parser ignores everything from "// want" on.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/analysis"
)

// Fixture packages import only the standard library, which the source
// importer type-checks from GOROOT — no build cache, network, or module
// resolution involved. One importer (and its fileset) is shared across
// tests: srcimporter memoizes each stdlib package after the first use.
var (
	fset     = token.NewFileSet()
	stdlib   = importer.ForCompiler(fset, "source", nil)
	wantRe   = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)$`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// Run loads the fixture package in dir, applies a (suppression-filtered)
// pass of the analyzer, and diffs the diagnostics against the // want
// expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	files, pkg, info := loadFixture(t, dir)

	dirs := analysis.ParseDirectives(files)
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		Directives: dirs,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}
	diags = lint.ApplySuppressions(fset, diags, dirs, map[string]bool{a.Name: true})

	remaining := make(map[loc][]analysis.Diagnostic)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		l := loc{p.Filename, p.Line}
		remaining[l] = append(remaining[l], d)
	}

	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				l := loc{p.Filename, p.Line}
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", p, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", p, pattern, err)
					}
					if !consume(remaining, l, re) {
						t.Errorf("%s: no %s diagnostic matching %q", p, a.Name, pattern)
					}
				}
			}
		}
	}

	var leftover []string
	for l, ds := range remaining {
		for _, d := range ds {
			leftover = append(leftover, l.file+":"+strconv.Itoa(l.line)+": unexpected diagnostic: "+d.Message+" ("+d.Analyzer+")")
		}
	}
	sort.Strings(leftover)
	for _, s := range leftover {
		t.Error(s)
	}
}

// loc keys diagnostics and wants by position; columns are ignored so a
// want can sit anywhere on the offending line.
type loc struct {
	file string
	line int
}

// consume removes the first diagnostic at l whose message matches re.
func consume(remaining map[loc][]analysis.Diagnostic, l loc, re *regexp.Regexp) bool {
	ds := remaining[l]
	for i, d := range ds {
		if re.MatchString(d.Message) {
			remaining[l] = append(ds[:i:i], ds[i+1:]...)
			return true
		}
	}
	return false
}

// loadFixture parses and type-checks every .go file in dir as one package.
func loadFixture(t *testing.T, dir string) ([]*ast.File, *types.Package, *types.Info) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: stdlib}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}
	return files, pkg, info
}
