package lint_test

import (
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/analysistest"
)

func TestCachekey(t *testing.T) {
	analysistest.Run(t, "testdata/src/cachekey", lint.Cachekey)
}
