package lint_test

import (
	"testing"

	"gpusched/internal/lint"
	"gpusched/internal/lint/analysistest"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxflow", lint.Ctxflow)
}
