package lint

import (
	"go/ast"
	"go/types"

	"gpusched/internal/lint/analysis"
)

// Wallclock forbids wall-time and ambient-randomness sources in the
// deterministic packages. Simulated time is the only clock those packages
// may observe: a single time.Now or global math/rand call makes results
// depend on the host machine, which silently breaks both the byte-identical
// fast-forward contract and the result cache (identical keys, different
// results). Explicitly seeded rand.New(rand.NewSource(n)) generators stay
// legal — they are pure functions of their seed.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Since/Until and global math/rand in deterministic packages; " +
		"simulated time and seeded generators only",
	Run: runWallclock,
}

// wallclockTimeFuncs are the time package functions that read the host
// clock.
var wallclockTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// wallclockRandOK are the math/rand and math/rand/v2 package functions
// that do NOT touch the global source: constructors for explicitly seeded
// generators.
var wallclockRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runWallclock(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are seed-determined
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallclockTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; thread simulated cycles instead (//gpulint:allow wallclock <reason> to override)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !wallclockRandOK[fn.Name()] {
					pass.Reportf(sel.Pos(), "%s.%s uses the global random source in a deterministic package; use rand.New(rand.NewSource(seed)) (//gpulint:allow wallclock <reason> to override)", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
