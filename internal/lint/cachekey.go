package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gpusched/internal/lint/analysis"
)

// Cachekey enforces field-coverage contracts declared by
// //gpulint:cachekey annotations. A function annotated
//
//	//gpulint:cachekey T
//
// must reference every exported field of the package-local struct type T,
// directly or through same-package functions it calls. internal/sim
// annotates Request.Key and the JSON wire conversions with it: adding a
// knob to Request without folding it into the canonical cache key (or the
// wire form) then fails the build instead of silently serving stale cached
// results — the exact incident class the PR 1 memo/disk cache and the PR 3
// fast-forward both rely on never happening.
var Cachekey = &analysis.Analyzer{
	Name: "cachekey",
	Doc: "functions annotated //gpulint:cachekey T must reference every exported field of struct T " +
		"(transitively through same-package calls); keeps cache keys and wire forms exhaustive",
	Run: runCachekey,
}

func runCachekey(pass *analysis.Pass) error {
	decls := funcDecls(pass)
	for _, d := range pass.Directives {
		if d.Kind != analysis.KindCachekey {
			continue
		}
		if len(d.Args) != 1 {
			pass.Reportf(d.Pos, "//gpulint:cachekey needs exactly one type name, e.g. //gpulint:cachekey Request")
			continue
		}
		typeName := d.Args[0]
		fn := annotatedFunc(pass, d.Pos)
		if fn == nil {
			pass.Reportf(d.Pos, "//gpulint:cachekey %s is not attached to a function declaration", typeName)
			continue
		}
		obj, ok := pass.Pkg.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			pass.Reportf(d.Pos, "//gpulint:cachekey: no type %s in package %s", typeName, pass.Pkg.Name())
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(d.Pos, "//gpulint:cachekey: %s is not a struct type", typeName)
			continue
		}

		want := make(map[*types.Var]bool) // exported field -> referenced
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Exported() {
				want[f] = false
			}
		}
		markFieldRefs(pass, fn, decls, want, make(map[*ast.FuncDecl]bool))

		var missing []string
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Exported() && !want[f] {
				missing = append(missing, f.Name())
			}
		}
		if len(missing) > 0 {
			pass.Reportf(d.Pos, "cachekey: %s does not reference exported field(s) %s of %s; fold them into the serialization or unexport them",
				fn.Name.Name, strings.Join(missing, ", "), typeName)
		}
	}
	return nil
}

// funcDecls maps each package-level function object to its declaration so
// the field-reference walk can follow same-package calls.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// annotatedFunc finds the function declaration whose doc comment contains
// the directive position.
func annotatedFunc(pass *analysis.Pass, pos token.Pos) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			if fd.Doc.Pos() <= pos && pos <= fd.Doc.End() {
				return fd
			}
		}
	}
	return nil
}

// markFieldRefs walks fn's body marking every selection of a tracked field
// of the contract type, recursing into same-package callees (the
// serialization helpers String/entry/arg style indirection must count).
func markFieldRefs(pass *analysis.Pass, fn *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl, want map[*types.Var]bool, seen map[*ast.FuncDecl]bool) {
	if fn == nil || fn.Body == nil || seen[fn] {
		return
	}
	seen[fn] = true
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.KeyValueExpr:
			// A keyed composite literal writes the field: CacheEntry{Key: k}
			// references Key just as e.Key does — the encode side of a wire
			// form builds the struct instead of reading it.
			if key, ok := n.Key.(*ast.Ident); ok {
				if f, ok := pass.TypesInfo.Uses[key].(*types.Var); ok {
					if _, tracked := want[f]; tracked {
						want[f] = true
					}
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if f, ok := sel.Obj().(*types.Var); ok {
					if _, tracked := want[f]; tracked {
						want[f] = true
					}
				}
			}
			// A method call through a selector also recurses below via Uses.
			if callee, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func); ok {
				markFieldRefs(pass, decls[callee], decls, want, seen)
			}
		case *ast.Ident:
			if callee, ok := pass.TypesInfo.Uses[n].(*types.Func); ok {
				markFieldRefs(pass, decls[callee], decls, want, seen)
			}
		}
		return true
	})
}
