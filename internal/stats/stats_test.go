package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCacheRates(t *testing.T) {
	c := Cache{Accesses: 100, Hits: 75, Misses: 25}
	if got := c.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
	if got := c.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
	var empty Cache
	if empty.HitRate() != 0 || empty.MissRate() != 0 {
		t.Error("empty cache rates should be 0")
	}
}

func TestCacheAdd(t *testing.T) {
	a := Cache{Accesses: 10, Hits: 5, Misses: 5, MSHRMerges: 1, MSHRStalls: 2, Evictions: 3, WriteBacks: 1}
	b := Cache{Accesses: 20, Hits: 15, Misses: 5, MSHRMerges: 2, MSHRStalls: 0, Evictions: 1, WriteBacks: 1}
	a.Add(&b)
	want := Cache{Accesses: 30, Hits: 20, Misses: 10, MSHRMerges: 3, MSHRStalls: 2, Evictions: 4, WriteBacks: 2}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestDRAMRates(t *testing.T) {
	d := DRAM{RowHits: 60, RowMisses: 40, QueueLatencySum: 1000, ServicedRequests: 10}
	if got := d.RowHitRate(); got != 0.6 {
		t.Errorf("RowHitRate = %v, want 0.6", got)
	}
	if got := d.AvgQueueLatency(); got != 100 {
		t.Errorf("AvgQueueLatency = %v, want 100", got)
	}
	var empty DRAM
	if empty.RowHitRate() != 0 || empty.AvgQueueLatency() != 0 {
		t.Error("empty DRAM rates should be 0")
	}
}

func TestDRAMAdd(t *testing.T) {
	a := DRAM{Reads: 1, Writes: 2, RowHits: 3, RowMisses: 4, BusyCycles: 5, QueueLatencySum: 6, ServicedRequests: 7}
	b := a
	a.Add(&b)
	if a.Reads != 2 || a.ServicedRequests != 14 || a.BusyCycles != 10 {
		t.Errorf("Add = %+v", a)
	}
}

func TestKernelDuration(t *testing.T) {
	k := Kernel{LaunchCycle: 100, DoneCycle: 350}
	if got := k.Duration(); got != 250 {
		t.Errorf("Duration = %d, want 250", got)
	}
	k = Kernel{LaunchCycle: 100, DoneCycle: 50} // never finished / inverted
	if got := k.Duration(); got != 0 {
		t.Errorf("inverted Duration = %d, want 0", got)
	}
}

func TestIPCAndSpeedup(t *testing.T) {
	if got := IPC(3000, 1000); got != 3 {
		t.Errorf("IPC = %v, want 3", got)
	}
	if got := IPC(5, 0); got != 0 {
		t.Errorf("IPC with zero cycles = %v, want 0", got)
	}
	if got := Speedup(2000, 1000); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if got := Speedup(2000, 0); got != 0 {
		t.Errorf("Speedup with zero = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean([1,4]) = %v, want 2", got)
	}
	got = GeoMean([]float64{2, 0, 8, -1}) // non-positive ignored
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean with junk = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Property: geomean lies between min and max of positive inputs.
	f := func(raw []float64) bool {
		var vs []float64
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 && !math.IsNaN(v) {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		g := GeoMean(vs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHarmonicMean(t *testing.T) {
	got := HarmonicMean([]float64{1, 1})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("HarmonicMean([1,1]) = %v, want 1", got)
	}
	got = HarmonicMean([]float64{2, 2, 0})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("HarmonicMean ignoring zero = %v, want 2", got)
	}
	if HarmonicMean(nil) != 0 {
		t.Error("HarmonicMean(nil) should be 0")
	}
	// Harmonic <= geometric for positive inputs.
	vs := []float64{1, 2, 3, 4, 5}
	if HarmonicMean(vs) > GeoMean(vs)+1e-12 {
		t.Error("harmonic mean exceeded geometric mean")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.756); got != "75.6%" {
		t.Errorf("Pct = %q", got)
	}
}
