// Package stats holds the counters the simulator accumulates and the small
// numeric helpers (rates, speedups, geometric means) the experiment harness
// reports with. Counters are plain fields grouped per subsystem: the cycle
// loop increments them directly, with no registry indirection on the hot
// path.
package stats

import (
	"fmt"
	"math"
)

// Core aggregates per-SM counters.
type Core struct {
	// Cycles the core was active (from first CTA arrival to last completion).
	ActiveCycles uint64
	// InstrIssued counts warp instructions issued (all pipelines).
	InstrIssued uint64
	// ThreadInstr counts lane-instructions (instr weighted by active lanes),
	// the metric hardware counters report as executed instructions.
	ThreadInstr uint64
	// IssueStallCycles counts scheduler slots that found no ready warp.
	IssueStallCycles uint64
	// StallScoreboard counts warps skipped because of pending operands.
	StallScoreboard uint64
	// StallLDSTFull counts issue attempts rejected by a full LDST queue.
	StallLDSTFull uint64
	// StallBarrier counts warps skipped while waiting at a barrier.
	StallBarrier uint64
	// StallDrain counts scheduler slots whose preferred warp belonged to a
	// CTA draining for preemption (issue suppressed by the drain protocol).
	StallDrain uint64
	// CTAsCompleted counts CTAs retired by this core.
	CTAsCompleted uint64
	// CTAsDrained counts CTAs evicted by preemption drains before finishing
	// (distinct from CTAsCompleted; the evicted CTA is re-dispatched later).
	CTAsDrained uint64
	// SharedAccesses and SharedConflictPasses track scratchpad traffic;
	// passes > accesses indicates serialization from bank conflicts.
	SharedAccesses       uint64
	SharedConflictPasses uint64
}

// Cache aggregates hit/miss counters for one cache (or one level summed).
type Cache struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	// MSHRMerges counts misses folded into an already-pending line.
	MSHRMerges uint64
	// MSHRStalls counts accesses rejected because no MSHR was free.
	MSHRStalls uint64
	// Evictions counts replaced lines; WriteBacks the dirty subset.
	Evictions  uint64
	WriteBacks uint64
}

// HitRate returns hits/accesses, or 0 for an untouched cache.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Add accumulates other into c (for summing per-core caches).
func (c *Cache) Add(other *Cache) {
	c.Accesses += other.Accesses
	c.Hits += other.Hits
	c.Misses += other.Misses
	c.MSHRMerges += other.MSHRMerges
	c.MSHRStalls += other.MSHRStalls
	c.Evictions += other.Evictions
	c.WriteBacks += other.WriteBacks
}

// DRAM aggregates memory-controller counters for one channel (or all summed).
type DRAM struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	// BusyCycles counts cycles the data bus was transferring.
	BusyCycles uint64
	// QueueLatencySum accumulates per-request cycles spent queued before
	// service, for mean-latency reporting.
	QueueLatencySum uint64
	// ServicedRequests is the denominator for QueueLatencySum.
	ServicedRequests uint64
}

// RowHitRate returns the fraction of activations avoided by open rows.
func (d *DRAM) RowHitRate() float64 {
	total := d.RowHits + d.RowMisses
	if total == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(total)
}

// AvgQueueLatency returns mean cycles a request waited before service.
func (d *DRAM) AvgQueueLatency() float64 {
	if d.ServicedRequests == 0 {
		return 0
	}
	return float64(d.QueueLatencySum) / float64(d.ServicedRequests)
}

// Add accumulates other into d.
func (d *DRAM) Add(other *DRAM) {
	d.Reads += other.Reads
	d.Writes += other.Writes
	d.RowHits += other.RowHits
	d.RowMisses += other.RowMisses
	d.BusyCycles += other.BusyCycles
	d.QueueLatencySum += other.QueueLatencySum
	d.ServicedRequests += other.ServicedRequests
}

// Kernel aggregates per-kernel completion data for concurrent-kernel
// experiments.
type Kernel struct {
	Name string
	// LaunchCycle and DoneCycle bound the kernel's lifetime.
	LaunchCycle uint64
	DoneCycle   uint64
	// InstrIssued counts instructions issued on behalf of this kernel.
	InstrIssued uint64
	CTAs        int
	// Evicted counts drain-preemption evictions of this kernel's CTAs (each
	// evicted CTA restarts from scratch on re-dispatch, so Evicted is also
	// the number of wasted partial executions).
	Evicted int
}

// Duration returns the kernel's makespan in cycles.
func (k *Kernel) Duration() uint64 {
	if k.DoneCycle < k.LaunchCycle {
		return 0
	}
	return k.DoneCycle - k.LaunchCycle
}

// IPC returns instructions per cycle over n cycles (0 if n is 0).
func IPC(instr, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(instr) / float64(cycles)
}

// Speedup returns newIPC/baseIPC, or 0 when the baseline is degenerate.
func Speedup(baseCycles, newCycles uint64) float64 {
	if newCycles == 0 {
		return 0
	}
	return float64(baseCycles) / float64(newCycles)
}

// GeoMean returns the geometric mean of vs, ignoring non-positive entries
// (a non-positive speedup indicates a failed run and would poison the mean).
func GeoMean(vs []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range vs {
		if v <= 0 {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// HarmonicMean returns the harmonic mean of vs (used for multi-kernel
// fairness-weighted throughput), ignoring non-positive entries.
func HarmonicMean(vs []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range vs {
		if v <= 0 {
			continue
		}
		sum += 1 / v
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(n) / sum
}

// NormalizedTurnaround returns T_shared/T_alone for one kernel of a
// multiprogrammed run: 1.0 means sharing cost the kernel nothing, larger is
// worse. Returns 0 when the solo baseline is degenerate.
func NormalizedTurnaround(alone, shared uint64) float64 {
	if alone == 0 {
		return 0
	}
	return float64(shared) / float64(alone)
}

// ANTT returns the average normalized turnaround time — the arithmetic mean
// of per-kernel NormalizedTurnaround values (Eyerman & Eeckhout's
// multiprogram latency metric; lower is better, 1.0 is the no-interference
// floor). Non-positive entries (failed runs) are ignored.
func ANTT(nts []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range nts {
		if v <= 0 {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// STP returns system throughput for the same normalized turnarounds:
// Σ T_alone/T_shared, i.e. how many kernels' worth of progress the shared
// run sustained per unit time (higher is better, bounded by the kernel
// count). Non-positive entries are ignored.
func STP(nts []float64) float64 {
	sum := 0.0
	for _, v := range nts {
		if v <= 0 {
			continue
		}
		sum += 1 / v
	}
	return sum
}

// Pct formats a fraction as a percentage string with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
