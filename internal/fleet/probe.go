package fleet

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Prober drives the ring's health state: every Interval it probes each
// shard's /readyz in parallel and feeds the verdicts into the shard's
// failure streak. A shard is marked down after FailAfter consecutive
// failures (readiness 503s count — a draining or saturated shard should
// stop receiving new work) and marked up again on the first success.
type Prober struct {
	ring      *Ring
	interval  time.Duration
	failAfter int
	client    *http.Client
	onChange  func(s *Shard, up bool) // optional health-transition hook

	// ctx is the prober's lifecycle context: every probe request carries
	// it, so Stop cancels in-flight probes instead of waiting out the
	// client timeout against a black-holed host.
	ctx    context.Context
	cancel context.CancelFunc

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewProber builds a prober over ring. interval is the probe period,
// timeout the per-probe HTTP budget, failAfter the consecutive-failure
// mark-down threshold. onChange (optional) observes health transitions.
func NewProber(ring *Ring, interval, timeout time.Duration, failAfter int, onChange func(*Shard, bool)) *Prober {
	if interval <= 0 {
		interval = time.Second
	}
	if timeout <= 0 {
		timeout = interval / 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Prober{
		ring:      ring,
		interval:  interval,
		failAfter: failAfter,
		client:    &http.Client{Timeout: timeout},
		onChange:  onChange,
		ctx:       ctx,
		cancel:    cancel,
		stop:      make(chan struct{}),
	}
}

// Start launches the probe loop. An immediate first round runs before the
// ticker settles in, so a router fronting a dead shard marks it down
// within FailAfter×Interval of boot, not one interval later.
func (p *Prober) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		p.probeAll()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.probeAll()
			}
		}
	}()
}

// Stop halts the loop, cancels in-flight probes, and waits for them to
// finish. It returns promptly even when a probed host is black-holed: the
// lifecycle context aborts the HTTP round trip.
func (p *Prober) Stop() {
	p.once.Do(func() {
		p.cancel()
		close(p.stop)
	})
	p.wg.Wait()
}

// probeAll probes every shard concurrently so one black-holed host can't
// delay detection on the others past the per-probe timeout.
func (p *Prober) probeAll() {
	var wg sync.WaitGroup
	for _, s := range p.ring.Shards() {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			p.probe(s)
		}(s)
	}
	wg.Wait()
}

func (p *Prober) probe(s *Shard) {
	req, err := http.NewRequestWithContext(p.ctx, http.MethodGet, s.URL+"/readyz", nil)
	if err != nil {
		// A malformed shard URL never round-trips; count it as a failure so
		// the shard is marked down instead of silently skipped.
		if s.noteFailure("probe: "+err.Error(), p.failAfter) && p.onChange != nil {
			p.onChange(s, false)
		}
		return
	}
	resp, err := p.client.Do(req)
	switch {
	case err != nil:
		if p.ctx.Err() != nil {
			return // shutting down: not a health signal
		}
		if s.noteFailure("probe: "+err.Error(), p.failAfter) && p.onChange != nil {
			p.onChange(s, false)
		}
	case resp.StatusCode != http.StatusOK:
		resp.Body.Close()
		if s.noteFailure("probe: readyz "+resp.Status, p.failAfter) && p.onChange != nil {
			p.onChange(s, false)
		}
	default:
		resp.Body.Close()
		if s.noteSuccess() && p.onChange != nil {
			p.onChange(s, true)
		}
	}
}
