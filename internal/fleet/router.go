package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpusched/internal/sim"
)

// Config tunes the Router. Zero values select fleet-sane defaults.
type Config struct {
	// Retries is how many additional candidates a failed forward tries
	// (0 = default 2, so three shards see the request before it fails).
	Retries int
	// Backoff is the base delay before each retry; attempt k waits k×Backoff
	// (0 = 50ms). Deliberately short: the fallback shard is healthy by the
	// ring's estimate, the pause only spaces out a thundering herd.
	Backoff time.Duration
	// ProbeInterval is the health-probe period (0 = 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe (0 = ProbeInterval/2).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive-failure mark-down threshold (0 = 2).
	FailAfter int
	// OnHealthChange, when non-nil, observes shard mark-down/up
	// transitions (logging).
	OnHealthChange func(s *Shard, up bool)
}

// maxRouterBody bounds router request bodies (matches the shard limit).
const maxRouterBody = 1 << 20

// maxBatchItems mirrors the shard-side batch cap: router sub-batches are
// subsets of the incoming batch, so respecting the cap here guarantees
// every sub-batch is admissible downstream.
const maxBatchItems = 256

// Router is the fleet front door: it owns the ring and the prober, and
// forwards requests to the owning shard by canonical cache key — so
// duplicate requests from any number of client connections land on one
// shard and coalesce in its singleflight/memo/disk layers.
//
// The API mirrors gpuschedd's, plus fleet endpoints:
//
//	POST   /v1/jobs             route by key; job id comes back as "<shard>/<id>"
//	GET    /v1/jobs             merged job list across shards
//	GET    /v1/jobs/{shard}/{id}[/events]  proxy to the owning shard
//	DELETE /v1/jobs/{shard}/{id}
//	POST   /v1/jobs:batch       fan out by key, merged NDJSON completion stream
//	POST   /v1/simulate         route by key with retry + failover
//	GET    /v1/cache/{addr}     first shard holding the entry
//	GET    /v1/workloads        proxy to any healthy shard
//	GET    /v1/fleet/stats      aggregated shard + routing stats (JSON)
//	GET    /healthz             router liveness
//	GET    /readyz              503 unless ≥1 shard is healthy
//	GET    /metrics             router + per-shard Prometheus metrics
type Router struct {
	ring   *Ring
	cfg    Config
	client *http.Client
	prober *Prober
	mux    *http.ServeMux

	failovers  atomic.Uint64
	fwdErrors  atomic.Uint64
	batches    atomic.Uint64
	batchItems atomic.Uint64
}

// NewRouter builds a router over the shard set. Call Start to begin
// health probing and Close to stop it.
func NewRouter(shards []*Shard, cfg Config) *Router {
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	rt := &Router{
		ring: NewRing(shards),
		cfg:  cfg,
		// No client-level timeout: SSE and batch streams are long-lived;
		// request contexts bound everything else.
		client: &http.Client{},
	}
	rt.prober = NewProber(rt.ring, cfg.ProbeInterval, cfg.ProbeTimeout, cfg.FailAfter, cfg.OnHealthChange)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", rt.handleList)
	mux.HandleFunc("GET /v1/jobs/{ref...}", rt.handleJobProxy)
	mux.HandleFunc("DELETE /v1/jobs/{ref...}", rt.handleJobProxy)
	mux.HandleFunc("POST /v1/jobs:batch", rt.handleBatch)
	mux.HandleFunc("POST /v1/simulate", rt.handleSimulate)
	mux.HandleFunc("GET /v1/cache/{addr}", rt.handleCacheGet)
	mux.HandleFunc("GET /v1/workloads", rt.handleWorkloads)
	mux.HandleFunc("GET /v1/fleet/stats", rt.handleFleetStats)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /readyz", rt.handleReady)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux = mux
	return rt
}

// Handler returns the HTTP entry point.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Ring exposes the ring (tests, stats).
func (rt *Router) Ring() *Ring { return rt.ring }

// Start begins health probing.
func (rt *Router) Start() { rt.prober.Start() }

// Close stops health probing.
func (rt *Router) Close() { rt.prober.Stop() }

// writeJSON/writeError mirror the shard-side envelope so clients see one
// error shape fleet-wide.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]apiError{"error": {Code: code, Message: fmt.Sprintf(format, args...)}})
}

var errNoShards = errors.New("fleet: no shards configured")

// retryableStatus reports whether a shard response should fail over to
// the next candidate: the shard itself is unhealthy or draining. A 429 is
// NOT retryable — it is per-shard backpressure, and bouncing the request
// to a non-owner would break key affinity (and with it dedup).
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// forward sends body to the best shard for key, failing over through the
// ring's candidate order with linear backoff. The caller owns the
// returned response body. Transport failures feed the shard's failure
// streak, so a dead shard is marked down by traffic even between probes.
func (rt *Router) forward(ctx context.Context, method, path, key string, body []byte, contentType string) (*http.Response, *Shard, error) {
	cands := rt.ring.Candidates(key)
	if len(cands) == 0 {
		return nil, nil, errNoShards
	}
	attempts := rt.cfg.Retries + 1
	if attempts > len(cands) {
		attempts = len(cands)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			rt.failovers.Add(1)
			select {
			case <-time.After(time.Duration(i) * rt.cfg.Backoff):
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		shard := cands[i]
		req, err := http.NewRequestWithContext(ctx, method, shard.URL+path, bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			shard.noteFailure("forward: "+err.Error(), rt.cfg.FailAfter)
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) {
			resp.Body.Close()
			shard.noteFailure(fmt.Sprintf("forward: %s %s -> %s", method, path, resp.Status), rt.cfg.FailAfter)
			lastErr = fmt.Errorf("fleet: shard %s: %s", shard.Name, resp.Status)
			continue
		}
		shard.routed.Add(1)
		return resp, shard, nil
	}
	rt.fwdErrors.Add(1)
	return nil, nil, lastErr
}

// decodeBody reads and validates one simulation request, mirroring the
// shard's validation so obviously-bad requests bounce at the router.
func decodeBody(w http.ResponseWriter, r *http.Request) (req sim.Request, body []byte, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRouterBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "validation", "reading body: %v", err)
		return req, nil, false
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "validation", "%v", err)
		return req, nil, false
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "validation", "%v", err)
		return req, nil, false
	}
	return req, body, true
}

// copyResponse relays a shard response verbatim, stamping the routing
// headers so clients and load harnesses can see placement.
func copyResponse(w http.ResponseWriter, resp *http.Response, shard *Shard, key string) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Fleet-Shard", shard.Name)
	if key != "" {
		w.Header().Set("X-Fleet-Key", key)
	}
	w.WriteHeader(resp.StatusCode)
	flushingCopy(w, resp.Body)
}

// flushingCopy streams body to w, flushing after every chunk so SSE and
// NDJSON relays deliver lines as they happen, not when buffers fill.
func flushingCopy(w http.ResponseWriter, body io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func (rt *Router) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, body, ok := decodeBody(w, r)
	if !ok {
		return
	}
	key := req.Key()
	resp, shard, err := rt.forward(r.Context(), http.MethodPost, "/v1/simulate", key, body, "application/json")
	if err != nil {
		writeError(w, http.StatusBadGateway, "no_shard", "no shard could serve the request: %v", err)
		return
	}
	defer resp.Body.Close()
	copyResponse(w, resp, shard, key)
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, body, ok := decodeBody(w, r)
	if !ok {
		return
	}
	key := req.Key()
	resp, shard, err := rt.forward(r.Context(), http.MethodPost, "/v1/jobs", key, body, "application/json")
	if err != nil {
		writeError(w, http.StatusBadGateway, "no_shard", "no shard could accept the job: %v", err)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxRouterBody))
	if err != nil {
		writeError(w, http.StatusBadGateway, "shard_error", "reading shard response: %v", err)
		return
	}
	if resp.StatusCode != http.StatusAccepted {
		w.Header().Set("X-Fleet-Shard", shard.Name)
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody) //nolint:errcheck // passthrough
		return
	}
	rewritten, id := prefixJobID(respBody, shard.Name)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Fleet-Shard", shard.Name)
	w.Header().Set("X-Fleet-Key", key)
	if id != "" {
		w.Header().Set("Location", "/v1/jobs/"+shard.Name+"/"+id)
	}
	w.WriteHeader(http.StatusAccepted)
	w.Write(rewritten) //nolint:errcheck // passthrough
}

// prefixJobID rewrites a shard job payload's "id" to the fleet-scoped
// "<shard>/<id>" form and records which shard owns it. Returns the
// original (unprefixed) id for Location headers; on any decode trouble
// the payload passes through untouched.
func prefixJobID(payload []byte, shardName string) (out []byte, id string) {
	var m map[string]any
	if json.Unmarshal(payload, &m) != nil {
		return payload, ""
	}
	rawID, ok := m["id"].(string)
	if !ok {
		return payload, ""
	}
	m["id"] = shardName + "/" + rawID
	m["shard"] = shardName
	enc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return payload, ""
	}
	return enc, rawID
}

// handleJobProxy forwards GET/DELETE /v1/jobs/<shard>/<id>[/events] to
// the named shard. No failover: the job's state lives on exactly that
// shard, and a draining shard still answers these (liveness vs readiness).
func (rt *Router) handleJobProxy(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("ref")
	shardName, rest, found := strings.Cut(ref, "/")
	if !found || rest == "" {
		writeError(w, http.StatusNotFound, "not_found",
			"fleet job references are \"<shard>/<id>\" (got %q)", ref)
		return
	}
	shard := rt.ring.ShardByName(shardName)
	if shard == nil {
		writeError(w, http.StatusNotFound, "not_found", "no shard %q", shardName)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, shard.URL+"/v1/jobs/"+rest, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, "shard_error", "shard %s: %v", shardName, err)
		return
	}
	defer resp.Body.Close()
	// Plain job-status payloads get their id re-prefixed; event streams
	// (and anything else) relay verbatim.
	if r.Method == http.MethodGet && !strings.Contains(rest, "/") && resp.StatusCode == http.StatusOK {
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxRouterBody))
		if err != nil {
			writeError(w, http.StatusBadGateway, "shard_error", "reading shard response: %v", err)
			return
		}
		rewritten, _ := prefixJobID(respBody, shardName)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Fleet-Shard", shardName)
		w.WriteHeader(http.StatusOK)
		w.Write(rewritten) //nolint:errcheck // passthrough
		return
	}
	copyResponse(w, resp, shard, "")
}

// handleList merges every shard's job list, ids fleet-prefixed. Shards
// that fail to answer are reported in "errors" rather than failing the
// whole listing.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	type shardResult struct {
		name string
		jobs []map[string]any
		err  error
	}
	shards := rt.ring.Shards()
	results := make([]shardResult, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			results[i].name = s.Name
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, s.URL+"/v1/jobs", nil)
			if err != nil {
				results[i].err = err
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			var payload struct {
				Jobs []map[string]any `json:"jobs"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
				results[i].err = err
				return
			}
			results[i].jobs = payload.Jobs
		}(i, s)
	}
	wg.Wait()
	merged := make([]map[string]any, 0)
	errsByShard := map[string]string{}
	for _, res := range results {
		if res.err != nil {
			errsByShard[res.name] = res.err.Error()
			continue
		}
		for _, j := range res.jobs {
			if id, ok := j["id"].(string); ok {
				j["id"] = res.name + "/" + id
			}
			j["shard"] = res.name
			merged = append(merged, j)
		}
	}
	out := map[string]any{"jobs": merged}
	if len(errsByShard) > 0 {
		out["errors"] = errsByShard
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCacheGet looks the content address up across the fleet, owner
// first (the address stands in for the key in the candidate ordering, so
// the walk usually ends on the first shard).
func (rt *Router) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	for _, shard := range rt.ring.Candidates(addr) {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, shard.URL+"/v1/cache/"+addr, nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		copyResponse(w, resp, shard, "")
		return
	}
	writeError(w, http.StatusNotFound, "not_found", "no shard holds cache entry %q", addr)
}

func (rt *Router) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	// The workload suite is identical on every shard; ask the healthiest
	// candidate for an arbitrary constant key.
	resp, shard, err := rt.forward(r.Context(), http.MethodGet, "/v1/workloads", "workloads", nil, "")
	if err != nil {
		writeError(w, http.StatusBadGateway, "no_shard", "no shard answered: %v", err)
		return
	}
	defer resp.Body.Close()
	copyResponse(w, resp, shard, "")
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	healthy := rt.ring.HealthyCount()
	if healthy == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no_healthy_shards", "shards_healthy": 0})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards_healthy": healthy})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP gpurouter_shard_healthy Shard health as seen by the prober (1 = up).\n")
	fmt.Fprintf(w, "# TYPE gpurouter_shard_healthy gauge\n")
	for _, s := range rt.ring.Shards() {
		v := 0
		if s.Healthy() {
			v = 1
		}
		fmt.Fprintf(w, "gpurouter_shard_healthy{shard=%q} %d\n", s.Name, v)
	}
	fmt.Fprintf(w, "# HELP gpurouter_requests_routed_total Requests forwarded, by shard.\n")
	fmt.Fprintf(w, "# TYPE gpurouter_requests_routed_total counter\n")
	for _, s := range rt.ring.Shards() {
		fmt.Fprintf(w, "gpurouter_requests_routed_total{shard=%q} %d\n", s.Name, s.Routed())
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("gpurouter_failovers_total", "Forward attempts that fell over to a lower-preference shard.", rt.failovers.Load())
	counter("gpurouter_forward_errors_total", "Forwards that exhausted every candidate.", rt.fwdErrors.Load())
	counter("gpurouter_batches_total", "Batches accepted on /v1/jobs:batch.", rt.batches.Load())
	counter("gpurouter_batch_items_total", "Batch items fanned out to shards.", rt.batchItems.Load())
	fmt.Fprintf(w, "# HELP gpurouter_shards_healthy Healthy shards in the ring.\n")
	fmt.Fprintf(w, "# TYPE gpurouter_shards_healthy gauge\n")
	fmt.Fprintf(w, "gpurouter_shards_healthy %d\n", rt.ring.HealthyCount())
}

// shardStatsPayload mirrors the shard's GET /v1/stats JSON (the fields
// the router aggregates).
type shardStatsPayload struct {
	Ready    bool      `json:"ready"`
	Draining bool      `json:"draining"`
	Sim      sim.Stats `json:"sim"`
	Jobs     struct {
		Submitted uint64 `json:"submitted"`
		Done      uint64 `json:"done"`
		Failed    uint64 `json:"failed"`
	} `json:"jobs"`
}

// handleFleetStats aggregates per-shard /v1/stats into the fleet view the
// load harness reports: fleet-wide dedup hit rate, per-shard balance, and
// routing counters.
func (rt *Router) handleFleetStats(w http.ResponseWriter, r *http.Request) {
	shards := rt.ring.Shards()
	type shardView struct {
		Name      string     `json:"name"`
		URL       string     `json:"url"`
		Healthy   bool       `json:"healthy"`
		Ready     bool       `json:"ready"`
		Routed    uint64     `json:"routed"`
		LastError string     `json:"last_error,omitempty"`
		Sim       *sim.Stats `json:"sim,omitempty"`
		StatsErr  string     `json:"stats_error,omitempty"`
	}
	views := make([]shardView, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			v := shardView{Name: s.Name, URL: s.URL, Healthy: s.Healthy(), Routed: s.Routed(), LastError: s.LastError()}
			ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.URL+"/v1/stats", nil)
			if err == nil {
				var resp *http.Response
				resp, err = rt.client.Do(req)
				if err == nil {
					var payload shardStatsPayload
					err = json.NewDecoder(resp.Body).Decode(&payload)
					resp.Body.Close()
					if err == nil {
						v.Ready = payload.Ready
						st := payload.Sim
						v.Sim = &st
					}
				}
			}
			if err != nil {
				v.StatsErr = err.Error()
			}
			views[i] = v
		}(i, s)
	}
	wg.Wait()

	var agg sim.Stats
	var routedTotal uint64
	for _, v := range views {
		routedTotal += v.Routed
		if v.Sim == nil {
			continue
		}
		agg.Simulated += v.Sim.Simulated
		agg.MemoHits += v.Sim.MemoHits
		agg.DiskHits += v.Sim.DiskHits
		agg.PeerHits += v.Sim.PeerHits
		agg.DiskEvictions += v.Sim.DiskEvictions
		agg.Evicted += v.Sim.Evicted
		agg.WallSeconds += v.Sim.WallSeconds
		agg.SimCycles += v.Sim.SimCycles
	}
	hits := agg.MemoHits + agg.DiskHits + agg.PeerHits
	total := hits + agg.Simulated
	rate := 0.0
	if total > 0 {
		rate = float64(hits) / float64(total)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"fleet": map[string]any{
			"shards_total":    len(shards),
			"shards_healthy":  rt.ring.HealthyCount(),
			"requests_routed": routedTotal,
			"failovers":       rt.failovers.Load(),
			"forward_errors":  rt.fwdErrors.Load(),
			"batches":         rt.batches.Load(),
			"batch_items":     rt.batchItems.Load(),
			"dedup_hit_rate":  rate,
			"sim":             agg,
		},
		"shards": views,
	})
}

// batchLine is one merged NDJSON line of the router's batch response;
// Index is in the client's original item order.
type batchLine struct {
	Index   int             `json:"index"`
	Key     string          `json:"key"`
	Shard   string          `json:"shard,omitempty"`
	Outcome json.RawMessage `json:"outcome,omitempty"`
	Error   *apiError       `json:"error,omitempty"`
}

// shardBatchLine is the wire shape a shard's batch endpoint emits.
type shardBatchLine struct {
	Index   int             `json:"index"`
	Key     string          `json:"key"`
	Outcome json.RawMessage `json:"outcome,omitempty"`
	Error   *apiError       `json:"error,omitempty"`
}

// handleBatch fans a mixed batch out by cache key: items group by owning
// shard, each group goes down as one shard batch, and the per-item
// completions merge into a single NDJSON stream in completion order with
// the client's original indices.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRouterBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "validation", "reading body: %v", err)
		return
	}
	var env struct {
		Items     []json.RawMessage `json:"items"`
		TimeoutMS int64             `json:"timeout_ms"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		writeError(w, http.StatusBadRequest, "validation", "%v", err)
		return
	}
	if len(env.Items) == 0 {
		writeError(w, http.StatusBadRequest, "validation", "batch has no items")
		return
	}
	if len(env.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest, "validation", "batch has %d items (max %d)", len(env.Items), maxBatchItems)
		return
	}
	keys := make([]string, len(env.Items))
	for i, raw := range env.Items {
		var req sim.Request
		if err := json.Unmarshal(raw, &req); err != nil {
			writeError(w, http.StatusBadRequest, "validation", "item %d: %v", i, err)
			return
		}
		if err := req.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "validation", "item %d: %v", i, err)
			return
		}
		keys[i] = req.Key()
	}

	// Group item indices by owning shard. The map is drained in ring
	// order, so fan-out order is deterministic.
	groups := map[string][]int{}
	for i, key := range keys {
		owner := rt.ring.Owner(key)
		if owner == nil {
			writeError(w, http.StatusBadGateway, "no_shard", "no shards configured")
			return
		}
		groups[owner.Name] = append(groups[owner.Name], i)
	}
	rt.batches.Add(1)
	rt.batchItems.Add(uint64(len(env.Items)))

	lines := make(chan batchLine)
	var wg sync.WaitGroup
	for _, shard := range rt.ring.Shards() {
		indices := groups[shard.Name]
		if len(indices) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard *Shard, indices []int) {
			defer wg.Done()
			rt.forwardSubBatch(r.Context(), shard, indices, env.Items, keys, env.TimeoutMS, lines)
		}(shard, indices)
	}
	go func() {
		wg.Wait()
		close(lines)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for line := range lines {
		enc.Encode(line) //nolint:errcheck // the stream is already committed
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// forwardSubBatch sends one shard's share of a batch and relays its
// completion lines, remapping shard-local indices to the client's. The
// whole sub-batch fails over together (keyed by its first item) if the
// owner is unreachable; items lost to a mid-stream failure come back as
// per-item errors, never silence.
func (rt *Router) forwardSubBatch(ctx context.Context, shard *Shard, indices []int, items []json.RawMessage, keys []string, timeoutMS int64, lines chan<- batchLine) {
	sub := make([]json.RawMessage, len(indices))
	for i, idx := range indices {
		sub[i] = items[idx]
	}
	subBody, err := json.Marshal(map[string]any{"items": sub, "timeout_ms": timeoutMS})
	if err != nil {
		for _, idx := range indices {
			lines <- batchLine{Index: idx, Key: keys[idx], Error: &apiError{Code: "internal", Message: err.Error()}}
		}
		return
	}
	resp, usedShard, err := rt.forward(ctx, http.MethodPost, "/v1/jobs:batch", keys[indices[0]], subBody, "application/json")
	if err != nil {
		for _, idx := range indices {
			lines <- batchLine{Index: idx, Key: keys[idx], Error: &apiError{Code: "no_shard", Message: err.Error()}}
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		for _, idx := range indices {
			lines <- batchLine{Index: idx, Key: keys[idx], Shard: usedShard.Name,
				Error: &apiError{Code: "shard_error", Message: fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(data)))}}
		}
		return
	}
	seen := make([]bool, len(indices))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), maxRouterBody)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var sl shardBatchLine
		if json.Unmarshal(raw, &sl) != nil || sl.Index < 0 || sl.Index >= len(indices) {
			continue
		}
		seen[sl.Index] = true
		lines <- batchLine{Index: indices[sl.Index], Key: sl.Key, Shard: usedShard.Name, Outcome: sl.Outcome, Error: sl.Error}
	}
	scanErr := sc.Err()
	for i, idx := range indices {
		if seen[i] {
			continue
		}
		msg := "shard stream ended before this item completed"
		if scanErr != nil {
			msg = "shard stream broke: " + scanErr.Error()
		}
		lines <- batchLine{Index: idx, Key: keys[idx], Shard: usedShard.Name, Error: &apiError{Code: "shard_error", Message: msg}}
	}
}
