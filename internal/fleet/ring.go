// Package fleet is the serving tier above gpuschedd: a router that
// consistent-hashes simulation requests by their canonical cache key onto
// N gpuschedd shards, so singleflight dedup and the on-disk result cache
// become fleet-wide properties instead of per-process ones.
//
// The pieces:
//
//   - Ring: rendezvous (highest-random-weight) hashing of cache keys onto
//     shards, with per-shard health state. Adding a shard moves ~1/N of
//     the key space; removing one moves only its own keys.
//   - Prober: periodic /readyz probes that mark shards down after
//     consecutive failures and back up on the first success.
//   - PeerCache: the fetch side of the peer-cache protocol
//     (GET /v1/cache/{addr}), wired into sim.Options.PeerFetch on each
//     shard so results that change owners migrate instead of resimulating.
//   - Router: the HTTP front door that forwards by key with bounded
//     retry + failover, fans batches out by owner, and aggregates fleet
//     stats and metrics.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Shard is one gpuschedd backend: a stable name (its ring identity), a
// base URL, and mutable health state. The name, not the URL, feeds the
// hash, so a shard can move hosts without reshuffling the key space.
type Shard struct {
	// Name is the ring identity ("s0"). Must be unique in a ring and must
	// not contain '/' (job references are "<name>/<shard job id>").
	Name string
	// URL is the shard's base URL ("http://10.0.0.7:8080"), no trailing
	// slash.
	URL string

	// routed counts requests this router forwarded to the shard.
	routed atomic.Uint64

	mu sync.Mutex
	//gpulint:guardedby mu
	down bool
	// fails counts consecutive probe/forward failures.
	//gpulint:guardedby mu
	fails int
	//gpulint:guardedby mu
	lastErr string
	//gpulint:guardedby mu
	lastProbe time.Time
}

// Healthy reports whether the shard is currently considered up. A fresh
// shard starts healthy: the prober will demote it if the first probes
// fail, and optimism keeps a cold-started fleet routable immediately.
func (s *Shard) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.down
}

// LastError returns the most recent failure message ("" when none).
func (s *Shard) LastError() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Routed returns how many requests the router forwarded to this shard.
func (s *Shard) Routed() uint64 { return s.routed.Load() }

// noteSuccess resets the failure streak and marks the shard up.
// It reports whether this flipped the shard from down to up.
func (s *Shard) noteSuccess() (recovered bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recovered = s.down
	s.down = false
	s.fails = 0
	s.lastErr = ""
	s.lastProbe = time.Now()
	return recovered
}

// noteFailure records one failed probe or forward; after failAfter
// consecutive failures the shard is marked down (rehashing its keys onto
// the surviving shards). It reports whether this call did the mark-down.
func (s *Shard) noteFailure(msg string, failAfter int) (wentDown bool) {
	if failAfter <= 0 {
		failAfter = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fails++
	s.lastErr = msg
	s.lastProbe = time.Now()
	if !s.down && s.fails >= failAfter {
		s.down = true
		return true
	}
	return false
}

// Ring places cache keys on shards by rendezvous (highest-random-weight)
// hashing: every (shard, key) pair gets a score and the healthy shard
// with the highest score owns the key. Unlike a bucketed ring, adding a
// shard moves exactly the keys the new shard now wins (~1/N of the
// space), and a downed shard's keys redistribute across all survivors
// instead of dogpiling its neighbor.
//
// The shard set is fixed at construction (membership changes are a
// restart concern for now — ROADMAP open item 1 notes dynamic membership
// as the next step); only health flips at runtime, so reads need no lock.
type Ring struct {
	shards []*Shard
}

// NewRing builds a ring over the given shards. Order is irrelevant to
// placement (scores, not positions, decide ownership).
func NewRing(shards []*Shard) *Ring {
	return &Ring{shards: shards}
}

// Shards returns the full membership in construction order.
func (r *Ring) Shards() []*Shard { return r.shards }

// ShardByName resolves a ring member by name (nil when absent).
func (r *Ring) ShardByName(name string) *Shard {
	for _, s := range r.shards {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// score is the rendezvous weight of a (shard, key) pair: the first 8
// bytes of sha256(name, 0x00, key). sha256 keeps placement independent of
// Go's seeded map/string hashes — every router instance, every restart,
// computes the same owner for a key.
func score(name, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// Candidates returns every shard in descending preference order for key:
// healthy shards by score, then down shards by score (the last resort
// when the whole fleet looks down — a probe may simply be stale).
func (r *Ring) Candidates(key string) []*Shard {
	type scored struct {
		s       *Shard
		w       uint64
		healthy bool
	}
	all := make([]scored, len(r.shards))
	for i, s := range r.shards {
		all[i] = scored{s, score(s.Name, key), s.Healthy()}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].healthy != all[j].healthy {
			return all[i].healthy
		}
		return all[i].w > all[j].w
	})
	out := make([]*Shard, len(all))
	for i, sc := range all {
		out[i] = sc.s
	}
	return out
}

// Owner returns the preferred shard for key (nil on an empty ring).
func (r *Ring) Owner(key string) *Shard {
	var (
		best        *Shard
		bestW       uint64
		bestHealthy bool
	)
	for _, s := range r.shards {
		w := score(s.Name, key)
		h := s.Healthy()
		if best == nil || (h && !bestHealthy) || (h == bestHealthy && w > bestW) {
			best, bestW, bestHealthy = s, w, h
		}
	}
	return best
}

// HealthyCount returns how many shards are currently up.
func (r *Ring) HealthyCount() int {
	n := 0
	for _, s := range r.shards {
		if s.Healthy() {
			n++
		}
	}
	return n
}
