package fleet

import (
	"context"
	"io"
	"net/http"
	"time"

	"gpusched/internal/sim"
)

// maxCacheEntryBytes bounds one peer-served cache entry. Outcomes are a
// few KB of counters; anything bigger is a peer misbehaving.
const maxCacheEntryBytes = 4 << 20

// PeerCache is the fetch side of the peer-cache protocol: given the
// canonical key of a local miss, it asks each configured peer for the
// content-addressed entry (GET /v1/cache/{addr}) and verifies the payload
// against the key before trusting it. Wire Fetch into
// sim.Options.PeerFetch on a shard; the service then does
// fetch-before-simulate and stores the migrated entry locally.
type PeerCache struct {
	peers  []string // peer base URLs, tried in order
	client *http.Client
}

// NewPeerCache builds a client over the peer base URLs (no trailing
// slashes). timeout bounds each per-peer request; a whole fetch costs at
// most len(peers)×timeout, which must stay well under the cost of the
// simulation it avoids.
func NewPeerCache(peers []string, timeout time.Duration) *PeerCache {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &PeerCache{peers: peers, client: &http.Client{Timeout: timeout}}
}

// Fetch implements the sim.Options.PeerFetch contract: best-effort, ok
// only for a verified entry. Peers are tried in order; the first verified
// hit wins. Context cancellation stops the walk (the simulation request
// itself was abandoned).
func (p *PeerCache) Fetch(ctx context.Context, key string) (sim.Outcome, bool) {
	addr := sim.CacheAddr(key)
	for _, peer := range p.peers {
		if ctx.Err() != nil {
			return sim.Outcome{}, false
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cache/"+addr, nil)
		if err != nil {
			continue
		}
		resp, err := p.client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheEntryBytes))
		resp.Body.Close()
		if err != nil {
			continue
		}
		if out, ok := sim.DecodeCacheEntry(data, key); ok {
			return out, true
		}
	}
	return sim.Outcome{}, false
}
