package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpusched/internal/server"
	"gpusched/internal/sim"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

// tinyRequest is the cheapest real simulation in the suite; varying seq
// varies the cache key (MaxCycles is part of the identity) without
// changing the work.
func tinyRequest(seq int) sim.Request {
	return sim.Request{
		Workloads: []string{"vadd"},
		Sched:     sim.LCS(),
		Warp:      sm.PolicyGTO,
		Scale:     workloads.ScaleTest,
		Cores:     4,
		MaxCycles: 20_000_000 + uint64(seq),
	}
}

// testFleet is two real gpuschedd shards behind a router, all over
// httptest — the full serving path minus TCP listeners for the router.
type testFleet struct {
	router  *Router
	front   *httptest.Server
	shards  []*httptest.Server
	service []*sim.Service
}

func newTestFleet(t *testing.T, n int, cfg Config, optFor func(i int) sim.Options) *testFleet {
	t.Helper()
	f := &testFleet{}
	members := make([]*Shard, n)
	for i := 0; i < n; i++ {
		opt := sim.Options{CacheDir: t.TempDir()}
		if optFor != nil {
			opt = optFor(i)
		}
		svc := sim.NewService(opt)
		ts := httptest.NewServer(server.New(svc, server.Config{}).Handler())
		t.Cleanup(ts.Close)
		f.service = append(f.service, svc)
		f.shards = append(f.shards, ts)
		members[i] = &Shard{Name: fmt.Sprintf("s%d", i), URL: ts.URL}
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = time.Millisecond
	}
	f.router = NewRouter(members, cfg)
	f.front = httptest.NewServer(f.router.Handler())
	t.Cleanup(f.front.Close)
	return f
}

func (f *testFleet) simulate(t *testing.T, req sim.Request) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(f.front.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	data.ReadFrom(resp.Body) //nolint:errcheck // test helper
	return resp, data.Bytes()
}

// keyOwnedBy finds a tiny request whose cache key the named shard owns.
func (f *testFleet) keyOwnedBy(t *testing.T, name string) sim.Request {
	t.Helper()
	for seq := 0; seq < 1000; seq++ {
		req := tinyRequest(seq)
		if f.router.Ring().Owner(req.Key()).Name == name {
			return req
		}
	}
	t.Fatalf("no tiny request hashes onto shard %s in 1000 tries", name)
	return sim.Request{}
}

func (f *testFleet) fleetStats(t *testing.T) (dedupRate float64, agg sim.Stats) {
	t.Helper()
	resp, err := http.Get(f.front.URL + "/v1/fleet/stats")
	if err != nil {
		t.Fatalf("fleet stats: %v", err)
	}
	defer resp.Body.Close()
	var payload struct {
		Fleet struct {
			DedupHitRate float64   `json:"dedup_hit_rate"`
			Sim          sim.Stats `json:"sim"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("decoding fleet stats: %v", err)
	}
	return payload.Fleet.DedupHitRate, payload.Fleet.Sim
}

// TestFleetWideDedup: duplicate requests arriving at the router on
// separate client connections land on the same shard (key affinity) and
// coalesce there — the fleet simulates each unique request exactly once.
func TestFleetWideDedup(t *testing.T) {
	f := newTestFleet(t, 2, Config{}, nil)
	const unique = 4
	shardFor := map[string]string{}
	for pass := 0; pass < 2; pass++ {
		for seq := 0; seq < unique; seq++ {
			req := tinyRequest(seq)
			resp, body := f.simulate(t, req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("simulate pass %d seq %d: %s: %s", pass, seq, resp.Status, body)
			}
			key := resp.Header.Get("X-Fleet-Key")
			if key != req.Key() {
				t.Errorf("X-Fleet-Key = %q, want the canonical key %q", key, req.Key())
			}
			shard := resp.Header.Get("X-Fleet-Shard")
			if prev, ok := shardFor[key]; ok && prev != shard {
				t.Errorf("key %q routed to %s then %s; duplicates must share a shard", key, prev, shard)
			}
			shardFor[key] = shard
			var payload struct {
				Key     string       `json:"key"`
				Outcome *sim.Outcome `json:"outcome"`
			}
			if err := json.Unmarshal(body, &payload); err != nil || payload.Outcome == nil {
				t.Fatalf("bad simulate payload (err=%v): %s", err, body)
			}
			if payload.Key != req.Key() {
				t.Errorf("response echoes key %q, want %q", payload.Key, req.Key())
			}
		}
	}
	rate, agg := f.fleetStats(t)
	if agg.Simulated != unique {
		t.Errorf("fleet simulated %d times, want %d (dedup across connections)", agg.Simulated, unique)
	}
	if hits := agg.MemoHits + agg.DiskHits + agg.PeerHits; hits != unique {
		t.Errorf("fleet cache hits = %d, want %d", hits, unique)
	}
	if rate < 0.49 || rate > 0.51 {
		t.Errorf("dedup_hit_rate = %.3f, want 0.5", rate)
	}
	// Both shards saw traffic: 4 unique keys over 2 shards collide rarely.
	routed := 0
	for _, s := range f.router.Ring().Shards() {
		if s.Routed() > 0 {
			routed++
		}
	}
	if routed == 0 {
		t.Error("no shard recorded routed requests")
	}
}

// TestPeerCacheFetch: a shard wired with PeerCache satisfies a local miss
// from a peer's /v1/cache endpoint instead of resimulating.
func TestPeerCacheFetch(t *testing.T) {
	svcA := sim.NewService(sim.Options{CacheDir: t.TempDir()})
	shardA := httptest.NewServer(server.New(svcA, server.Config{}).Handler())
	defer shardA.Close()

	svcB := sim.NewService(sim.Options{
		CacheDir:  t.TempDir(),
		PeerFetch: NewPeerCache([]string{shardA.URL}, 0).Fetch,
	})
	shardB := httptest.NewServer(server.New(svcB, server.Config{}).Handler())
	defer shardB.Close()

	req := tinyRequest(0)
	body, _ := json.Marshal(req)
	for _, url := range []string{shardA.URL, shardB.URL} {
		resp, err := http.Post(url+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate on %s: %s", url, resp.Status)
		}
		resp.Body.Close()
	}
	if st := svcA.Stats(); st.Simulated != 1 {
		t.Errorf("shard A stats = %+v, want 1 simulation", st)
	}
	if st := svcB.Stats(); st.PeerHits != 1 || st.Simulated != 0 {
		t.Errorf("shard B stats = %+v, want a peer hit and no simulation", st)
	}

	// A missing entry is a miss, not an error: B still simulates work A
	// never ran.
	req2 := tinyRequest(1)
	body2, _ := json.Marshal(req2)
	resp, err := http.Post(shardB.URL+"/v1/simulate", "application/json", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate uncached on B: %s", resp.Status)
	}
	if st := svcB.Stats(); st.Simulated != 1 {
		t.Errorf("shard B should simulate the peer miss; stats = %+v", st)
	}
}

// TestShardDownFailover: killing a shard mid-fleet reroutes its keys to
// the survivor — the client sees a success, the router records the
// failover, and the dead shard is marked down by traffic alone.
func TestShardDownFailover(t *testing.T) {
	f := newTestFleet(t, 2, Config{FailAfter: 1, Retries: 2}, nil)
	req := f.keyOwnedBy(t, "s0")
	f.shards[0].Close()

	resp, body := f.simulate(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate after shard death: %s: %s", resp.Status, body)
	}
	if shard := resp.Header.Get("X-Fleet-Shard"); shard != "s1" {
		t.Errorf("served by %q, want the survivor s1", shard)
	}
	if got := f.router.failovers.Load(); got == 0 {
		t.Error("failover counter still 0 after a rerouted request")
	}
	if s0 := f.router.Ring().ShardByName("s0"); s0.Healthy() {
		t.Error("dead shard still marked healthy after a forward failure with FailAfter=1")
	}
	// The router stays ready on one healthy shard.
	rr, err := http.Get(f.front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Errorf("readyz = %s with a healthy survivor, want 200", rr.Status)
	}
	// ...and flips unready when the survivor dies too.
	f.shards[1].Close()
	f.router.Ring().ShardByName("s1").noteFailure("closed", 1)
	rr2, err := http.Get(f.front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr2.Body.Close()
	if rr2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz = %s with zero healthy shards, want 503", rr2.Status)
	}
}

// TestProberMarksDownAndRecovers: the prober demotes a shard whose
// /readyz stops answering and promotes it again on recovery.
func TestProberMarksDownAndRecovers(t *testing.T) {
	var healthy atomic.Bool // written by the test, read by the handler goroutines
	healthy.Store(true)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	down := make(chan bool, 16)
	shard := &Shard{Name: "s0", URL: backend.URL}
	ring := NewRing([]*Shard{shard})
	prober := NewProber(ring, 5*time.Millisecond, 0, 1, func(s *Shard, up bool) { down <- up })
	prober.Start()
	defer prober.Stop()

	healthy.Store(false)
	select {
	case up := <-down:
		if up {
			t.Fatal("first transition should be a mark-down")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("prober never marked the failing shard down")
	}
	healthy.Store(true)
	select {
	case up := <-down:
		if !up {
			t.Fatal("expected the recovery transition")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("prober never recovered the shard")
	}
	if !shard.Healthy() {
		t.Error("shard unhealthy after recovery")
	}
}

// TestRouterBatch: a batch with duplicate items fans out by key, streams
// every index back exactly once with its key and outcome, and the
// duplicates coalesce fleet-wide.
func TestRouterBatch(t *testing.T) {
	f := newTestFleet(t, 2, Config{}, nil)
	const unique = 3
	items := make([]json.RawMessage, 0, unique*2)
	for pass := 0; pass < 2; pass++ {
		for seq := 0; seq < unique; seq++ {
			raw, _ := json.Marshal(tinyRequest(seq))
			items = append(items, raw)
		}
	}
	body, _ := json.Marshal(map[string]any{"items": items})
	resp, err := http.Post(f.front.URL+"/v1/jobs:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	seen := map[int]batchLine{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line batchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, dup := seen[line.Index]; dup {
			t.Errorf("index %d emitted twice", line.Index)
		}
		seen[line.Index] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(items) {
		t.Fatalf("got %d lines, want %d", len(seen), len(items))
	}
	for i := range items {
		line, ok := seen[i]
		if !ok {
			t.Errorf("index %d missing from the stream", i)
			continue
		}
		if line.Error != nil {
			t.Errorf("index %d failed: %s", i, line.Error.Message)
		}
		if len(line.Outcome) == 0 {
			t.Errorf("index %d has no outcome", i)
		}
		if want := tinyRequest(i % unique).Key(); line.Key != want {
			t.Errorf("index %d key = %q, want %q", i, line.Key, want)
		}
		if line.Shard == "" {
			t.Errorf("index %d has no shard attribution", i)
		}
	}
	_, agg := f.fleetStats(t)
	if agg.Simulated != unique {
		t.Errorf("fleet simulated %d times for %d unique items, want %d", agg.Simulated, unique, unique)
	}
}

// TestJobSubmitAndProxy: async jobs submitted at the router come back
// fleet-scoped ("<shard>/<id>"), and status/list/cache requests resolve
// through the router.
func TestJobSubmitAndProxy(t *testing.T) {
	f := newTestFleet(t, 2, Config{}, nil)
	req := tinyRequest(0)
	body, _ := json.Marshal(req)
	resp, err := http.Post(f.front.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID    string `json:"id"`
		Shard string `json:"shard"`
		Key   string `json:"key"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if created.Shard == "" || !strings.HasPrefix(created.ID, created.Shard+"/") {
		t.Fatalf("job id %q not fleet-scoped to shard %q", created.ID, created.Shard)
	}
	if created.Key != req.Key() {
		t.Errorf("create response echoes key %q, want %q", created.Key, req.Key())
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+created.ID {
		t.Errorf("Location = %q, want %q", loc, "/v1/jobs/"+created.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		sr, err := http.Get(f.front.URL + "/v1/jobs/" + created.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			ID      string          `json:"id"`
			State   string          `json:"state"`
			Key     string          `json:"key"`
			Outcome json.RawMessage `json:"outcome"`
		}
		if err := json.NewDecoder(sr.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		sr.Body.Close()
		if sr.StatusCode != http.StatusOK {
			t.Fatalf("status: %s", sr.Status)
		}
		if view.ID != created.ID {
			t.Fatalf("status id %q, want the fleet-scoped %q", view.ID, created.ID)
		}
		if view.State == "done" {
			if view.Key != req.Key() {
				t.Errorf("status echoes key %q, want %q", view.Key, req.Key())
			}
			if len(view.Outcome) == 0 {
				t.Error("done job has no outcome")
			}
			break
		}
		if view.State == "failed" || view.State == "canceled" {
			t.Fatalf("job ended %s", view.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	lr, err := http.Get(f.front.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	found := false
	for _, j := range listing.Jobs {
		if j.ID == created.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("merged listing misses job %s", created.ID)
	}

	// The finished result is content-addressed fleet-wide.
	cr, err := http.Get(f.front.URL + "/v1/cache/" + sim.CacheAddr(req.Key()))
	if err != nil {
		t.Fatal(err)
	}
	data := new(bytes.Buffer)
	data.ReadFrom(cr.Body) //nolint:errcheck // test helper
	cr.Body.Close()
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("fleet cache get: %s", cr.Status)
	}
	if _, ok := sim.DecodeCacheEntry(data.Bytes(), req.Key()); !ok {
		t.Error("fleet cache entry fails verification against the job's key")
	}

	// Bad references 404 with a helpful shape.
	for _, ref := range []string{"nope/job-1", "unscoped-id"} {
		br, err := http.Get(f.front.URL + "/v1/jobs/" + ref)
		if err != nil {
			t.Fatal(err)
		}
		br.Body.Close()
		if br.StatusCode != http.StatusNotFound {
			t.Errorf("GET /v1/jobs/%s = %s, want 404", ref, br.Status)
		}
	}
}
