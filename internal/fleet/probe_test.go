package fleet

import (
	"net"
	"sync"
	"testing"
	"time"
)

// TestProberStopCancelsInflightProbes: Stop must return promptly even
// when a probed host is black-holed (accepts the TCP connection, never
// answers the HTTP request). Regression test: probe requests used to be
// built without the prober's lifecycle context, so Stop blocked until the
// per-probe client timeout expired against such a host.
func TestProberStopCancelsInflightProbes(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var (
		connsMu sync.Mutex
		conns   []net.Conn
	)
	defer func() {
		connsMu.Lock()
		defer connsMu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()
	defer ln.Close()
	accepted := make(chan struct{}, 16)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connsMu.Lock()
			conns = append(conns, conn) // hold open, never respond
			connsMu.Unlock()
			accepted <- struct{}{}
		}
	}()

	shard := &Shard{Name: "s0", URL: "http://" + ln.Addr().String()}
	// A one-hour interval isolates the immediate boot-time round; the
	// 30-second probe timeout is what Stop must NOT wait out.
	prober := NewProber(NewRing([]*Shard{shard}), time.Hour, 30*time.Second, 1, nil)
	prober.Start()
	select {
	case <-accepted: // the first probe is in flight against the black hole
	case <-time.After(5 * time.Second):
		t.Fatal("probe never reached the listener")
	}

	start := time.Now()
	prober.Stop()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Stop took %v against a black-holed shard; want prompt cancellation of the in-flight probe", elapsed)
	}
}
