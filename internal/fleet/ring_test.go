package fleet

import (
	"fmt"
	"testing"
)

func testShards(names ...string) []*Shard {
	shards := make([]*Shard, len(names))
	for i, n := range names {
		shards[i] = &Shard{Name: n, URL: "http://" + n + ".invalid"}
	}
	return shards
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("workload=vadd|sched=lcs|key=%d", i)
	}
	return keys
}

// TestRingDistribution: rendezvous hashing spreads keys roughly evenly —
// with 4 shards and 40k keys, every shard should own a healthy fraction
// (the sha256 scores make this overwhelmingly likely; the 15% floor is
// far below the 25% expectation but far above a broken hash).
func TestRingDistribution(t *testing.T) {
	ring := NewRing(testShards("s0", "s1", "s2", "s3"))
	keys := testKeys(40_000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[ring.Owner(k).Name] = counts[ring.Owner(k).Name] + 1
	}
	for _, s := range ring.Shards() {
		frac := float64(counts[s.Name]) / float64(len(keys))
		if frac < 0.15 {
			t.Errorf("shard %s owns %.1f%% of keys, want >= 15%%", s.Name, 100*frac)
		}
	}
}

// TestRingStabilityOnAdd: growing a 4-shard ring to 5 moves ~1/5 of the
// key space, and every key that moves, moves TO the new shard — existing
// keys never reshuffle among the survivors.
func TestRingStabilityOnAdd(t *testing.T) {
	before := NewRing(testShards("s0", "s1", "s2", "s3"))
	after := NewRing(testShards("s0", "s1", "s2", "s3", "s4"))
	keys := testKeys(40_000)
	moved := 0
	for _, k := range keys {
		oldOwner := before.Owner(k).Name
		newOwner := after.Owner(k).Name
		if oldOwner == newOwner {
			continue
		}
		moved++
		if newOwner != "s4" {
			t.Fatalf("key %q moved %s -> %s, but only the new shard may gain keys", k, oldOwner, newOwner)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.30 {
		t.Errorf("adding a 5th shard moved %.1f%% of keys, want ~20%% (10%%-30%%)", 100*frac)
	}
}

// TestRingFailoverAndRecovery: marking a key's owner down hands the key
// to another healthy shard without disturbing keys the downed shard never
// owned; recovery restores the original placement exactly.
func TestRingFailoverAndRecovery(t *testing.T) {
	ring := NewRing(testShards("s0", "s1", "s2"))
	keys := testKeys(300)
	orig := map[string]string{}
	for _, k := range keys {
		orig[k] = ring.Owner(k).Name
	}
	victim := ring.Owner(keys[0])
	if !victim.noteFailure("probe: connection refused", 1) {
		t.Fatal("first failure with failAfter=1 should mark the shard down")
	}
	if victim.Healthy() {
		t.Fatal("shard still healthy after mark-down")
	}
	for _, k := range keys {
		owner := ring.Owner(k)
		if owner.Name == victim.Name {
			t.Fatalf("key %q still owned by downed shard", k)
		}
		if orig[k] != victim.Name && owner.Name != orig[k] {
			t.Fatalf("key %q moved %s -> %s although its owner never went down", k, orig[k], owner.Name)
		}
	}
	if !victim.noteSuccess() {
		t.Fatal("noteSuccess should report the down->up transition")
	}
	for _, k := range keys {
		if got := ring.Owner(k).Name; got != orig[k] {
			t.Fatalf("after recovery key %q owned by %s, want %s", k, got, orig[k])
		}
	}
}

// TestCandidatesOrder: candidates list every shard, healthy ones first,
// and the first candidate is the owner.
func TestCandidatesOrder(t *testing.T) {
	ring := NewRing(testShards("s0", "s1", "s2"))
	key := "some-cache-key"
	cands := ring.Candidates(key)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3", len(cands))
	}
	if cands[0] != ring.Owner(key) {
		t.Error("first candidate is not the owner")
	}
	cands[0].noteFailure("down", 1)
	demoted := ring.Candidates(key)
	if demoted[len(demoted)-1] != cands[0] {
		t.Error("downed shard should sort last")
	}
	if !demoted[0].Healthy() {
		t.Error("first candidate should be healthy when any shard is up")
	}
	if ring.HealthyCount() != 2 {
		t.Errorf("HealthyCount = %d, want 2", ring.HealthyCount())
	}
}

// TestShardFailureStreak: mark-down requires failAfter consecutive
// failures, and a single success resets the streak.
func TestShardFailureStreak(t *testing.T) {
	s := &Shard{Name: "s0", URL: "http://s0.invalid"}
	if s.noteFailure("one", 3) {
		t.Error("went down after 1/3 failures")
	}
	s.noteSuccess()
	if s.noteFailure("two", 3) || s.noteFailure("three", 3) {
		t.Error("streak not reset by success")
	}
	if !s.noteFailure("four", 3) {
		t.Error("should go down on the 3rd consecutive failure")
	}
	if s.noteFailure("five", 3) {
		t.Error("already-down shard reported a second mark-down transition")
	}
	if s.LastError() != "five" {
		t.Errorf("LastError = %q, want %q", s.LastError(), "five")
	}
}
