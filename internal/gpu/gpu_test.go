package gpu

import (
	"reflect"
	"testing"

	"gpusched/internal/core"
	"gpusched/internal/kernel"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

// testConfig shrinks the GPU so ScaleTest workloads finish in milliseconds.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumCores = 4
	cfg.MaxCycles = 3_000_000
	return cfg
}

func mustRun(t *testing.T, cfg Config, d core.Dispatcher, specs ...*kernel.Spec) Result {
	t.Helper()
	g, err := New(cfg, d, specs...)
	if err != nil {
		t.Fatal(err)
	}
	r := g.Run()
	if r.TimedOut {
		t.Fatalf("simulation timed out at %d cycles", r.Cycles)
	}
	return r
}

func TestEveryWorkloadCompletes(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			spec := w.Build(workloads.ScaleTest)
			r := mustRun(t, testConfig(), core.NewRoundRobin(), spec)
			if int(r.Core.CTAsCompleted) != spec.NumCTAs() {
				t.Fatalf("completed %d CTAs, want %d", r.Core.CTAsCompleted, spec.NumCTAs())
			}
			if r.IPC <= 0 {
				t.Fatal("zero IPC")
			}
			if r.Kernels[0].DoneCycle == 0 {
				t.Fatal("kernel completion not stamped")
			}
		})
	}
}

func TestInstructionCountInvariantAcrossDispatchers(t *testing.T) {
	// CTA scheduling changes *when/where* CTAs run, never *what* they
	// execute: total issued instructions must match exactly.
	spec := func() *kernel.Spec {
		w, _ := workloads.ByName("stencil")
		return w.Build(workloads.ScaleTest)
	}
	base := mustRun(t, testConfig(), core.NewRoundRobin(), spec())
	for _, d := range []core.Dispatcher{core.NewLCS(), core.NewBCS(), core.NewSequential()} {
		r := mustRun(t, testConfig(), d, spec())
		if r.InstrIssued != base.InstrIssued {
			t.Errorf("%s issued %d instructions, baseline %d",
				d.Name(), r.InstrIssued, base.InstrIssued)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	w, _ := workloads.ByName("spmv")
	r1 := mustRun(t, testConfig(), core.NewRoundRobin(), w.Build(workloads.ScaleTest))
	r2 := mustRun(t, testConfig(), core.NewRoundRobin(), w.Build(workloads.ScaleTest))
	if r1.Cycles != r2.Cycles || r1.InstrIssued != r2.InstrIssued ||
		r1.L1 != r2.L1 || r1.DRAM != r2.DRAM {
		t.Fatalf("replay diverged: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
}

func TestWarpPolicyAffectsButPreservesWork(t *testing.T) {
	w, _ := workloads.ByName("stencil")
	run := func(p sm.Policy) Result {
		cfg := testConfig()
		cfg.Core.WarpPolicy = p
		return mustRun(t, cfg, core.NewRoundRobin(), w.Build(workloads.ScaleTest))
	}
	lrr := run(sm.PolicyLRR)
	gto := run(sm.PolicyGTO)
	if lrr.InstrIssued != gto.InstrIssued {
		t.Fatalf("warp policy changed instruction count: %d vs %d",
			lrr.InstrIssued, gto.InstrIssued)
	}
}

func TestSequentialSerializesKernels(t *testing.T) {
	a, _ := workloads.ByName("vadd")
	b, _ := workloads.ByName("kmeans")
	r := mustRun(t, testConfig(), core.NewSequential(),
		a.Build(workloads.ScaleTest), b.Build(workloads.ScaleTest))
	k0, k1 := r.Kernels[0], r.Kernels[1]
	if k1.LaunchCycle < k0.DoneCycle {
		t.Fatalf("kernel 1 launched at %d before kernel 0 finished at %d",
			k1.LaunchCycle, k0.DoneCycle)
	}
}

func TestSpatialRunsKernelsConcurrently(t *testing.T) {
	a, _ := workloads.ByName("vadd")
	b, _ := workloads.ByName("kmeans")
	r := mustRun(t, testConfig(), core.NewSpatial(),
		a.Build(workloads.ScaleTest), b.Build(workloads.ScaleTest))
	k0, k1 := r.Kernels[0], r.Kernels[1]
	if k1.LaunchCycle >= k0.DoneCycle {
		t.Fatalf("spatial CKE did not overlap kernels: k1 launch %d, k0 done %d",
			k1.LaunchCycle, k0.DoneCycle)
	}
}

func TestMixedCoResidency(t *testing.T) {
	a, _ := workloads.ByName("spmv")
	b, _ := workloads.ByName("blackscholes")
	cfg := testConfig()
	d := core.NewMixed(2)
	g, err := New(cfg, d, a.Build(workloads.ScaleTest), b.Build(workloads.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	// Probe co-residency on every CTA completion.
	coResident := false
	overLimit := false
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		c := g.Core(coreID)
		if c.ResidentOf(0) > 0 && c.ResidentOf(1) > 0 {
			coResident = true
		}
		if c.ResidentOf(0) > 2 {
			overLimit = true
		}
	})
	r := g.Run()
	if r.TimedOut {
		t.Fatal("timed out")
	}
	if !coResident {
		t.Fatal("mixed CKE never co-located both kernels on one SM")
	}
	if overLimit {
		t.Fatal("mixed CKE exceeded kernel-0 limit")
	}
}

func TestLCSDecidesLimits(t *testing.T) {
	w, _ := workloads.ByName("spmv")
	cfg := testConfig()
	d := core.NewLCS()
	spec := w.Build(workloads.ScaleTest)
	g, err := New(cfg, d, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	maxRes, _ := cfg.Core.Limits.MaxResident(spec)
	decidedAny := false
	for coreID, lim := range d.Limits() {
		if lim == 0 {
			continue
		}
		decidedAny = true
		if lim < 1 || lim > maxRes {
			t.Errorf("core %d limit %d outside [1,%d]", coreID, lim, maxRes)
		}
	}
	if !decidedAny {
		t.Fatal("LCS never decided a limit")
	}
	if d.DecidedLimit(maxRes) < 1 {
		t.Fatal("DecidedLimit degenerate")
	}
}

func TestBCSPairsConsecutiveCTAs(t *testing.T) {
	w, _ := workloads.ByName("stencil")
	cfg := testConfig()
	d := core.NewBCS()
	g, err := New(cfg, d, w.Build(workloads.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	// Record which core each CTA ran on.
	coreOf := map[int]int{}
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		coreOf[cta.ID] = coreID
	})
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	paired := 0
	total := 0
	for id, c := range coreOf {
		if id%2 == 0 {
			total++
			if c2, ok := coreOf[id+1]; ok && c2 == c {
				paired++
			}
		}
	}
	if total == 0 {
		t.Fatal("no CTAs observed")
	}
	if frac := float64(paired) / float64(total); frac < 0.9 {
		t.Fatalf("only %.0f%% of consecutive pairs co-located under BCS", frac*100)
	}
}

func TestRoundRobinSpreadsCTAs(t *testing.T) {
	w, _ := workloads.ByName("vadd")
	cfg := testConfig()
	g, err := New(cfg, core.NewRoundRobin(), w.Build(workloads.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.NumCores)
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		counts[coreID]++
	})
	if r := g.Run(); r.TimedOut {
		t.Fatal("timed out")
	}
	for i, n := range counts {
		if n == 0 {
			t.Errorf("core %d received no CTAs", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	w, _ := workloads.ByName("vadd")
	spec := w.Build(workloads.ScaleTest)
	if _, err := New(Config{NumCores: 0}, core.NewRoundRobin(), spec); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := New(testConfig(), core.NewRoundRobin()); err == nil {
		t.Error("no kernels accepted")
	}
	big := *spec
	big.SharedMemPerCTA = 1 << 20
	if _, err := New(testConfig(), core.NewRoundRobin(), &big); err == nil {
		t.Error("unfittable kernel accepted")
	}
	bad := *spec
	bad.Block = kernel.Dim3{X: 33}
	if _, err := New(testConfig(), core.NewRoundRobin(), &bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestStatsConsistency(t *testing.T) {
	w, _ := workloads.ByName("hotspot")
	spec := w.Build(workloads.ScaleTest)
	r := mustRun(t, testConfig(), core.NewRoundRobin(), spec)
	if r.L1.Accesses != r.L1.Hits+r.L1.Misses {
		t.Errorf("L1 accesses %d != hits %d + misses %d", r.L1.Accesses, r.L1.Hits, r.L1.Misses)
	}
	if r.L2.Accesses != r.L2.Hits+r.L2.Misses {
		t.Errorf("L2 accesses %d != hits %d + misses %d", r.L2.Accesses, r.L2.Hits, r.L2.Misses)
	}
	if r.Kernels[0].InstrIssued != r.InstrIssued {
		t.Errorf("kernel issue bucket %d != total %d", r.Kernels[0].InstrIssued, r.InstrIssued)
	}
	if r.ThreadInstr < r.InstrIssued {
		t.Errorf("thread instrs %d < warp instrs %d", r.ThreadInstr, r.InstrIssued)
	}
	// Memory-touching kernel must show DRAM traffic.
	if r.DRAM.Reads == 0 {
		t.Error("no DRAM reads for a memory workload")
	}
	if r.AvgMemLatency <= 0 {
		t.Error("no memory latency recorded")
	}
}

func TestTimeoutReported(t *testing.T) {
	w, _ := workloads.ByName("sgemm")
	cfg := testConfig()
	cfg.MaxCycles = 100 // absurdly short
	g, err := New(cfg, core.NewRoundRobin(), w.Build(workloads.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	if r := g.Run(); !r.TimedOut {
		t.Fatal("100-cycle budget did not time out")
	}
}

// TestWorkerCountInvariance is the package-level statement of the parallel
// tick's contract: the committed Result is a pure function of the request,
// whatever Config.Workers and Config.Granule say (the harness golden tests
// restate this over every experiment and full Result rendering). Worker
// counts above GOMAXPROCS are included deliberately — oversubscription
// changes the interleaving as violently as extra cores do — and each count
// is crossed with a different parking granule so shard boundaries and
// park/wake cycles shift together.
func TestWorkerCountInvariance(t *testing.T) {
	for _, name := range []string{"stencil", "spmv"} {
		w, _ := workloads.ByName(name)
		for _, d := range []func() core.Dispatcher{
			func() core.Dispatcher { return core.NewRoundRobin() },
			func() core.Dispatcher { return core.NewLCS() },
		} {
			cfg := testConfig()
			cfg.Workers = 1
			base := mustRun(t, cfg, d(), w.Build(workloads.ScaleTest))
			sched := d().Name()
			for _, wc := range []struct {
				workers int
				granule uint64
			}{{2, 1}, {3, 4}, {7, 16}} {
				cfg := testConfig()
				cfg.Workers = wc.workers
				cfg.Granule = wc.granule
				r := mustRun(t, cfg, d(), w.Build(workloads.ScaleTest))
				if !reflect.DeepEqual(r, base) {
					t.Errorf("%s/%s: Workers=%d Granule=%d diverged from Workers=1:\n%+v\nvs\n%+v",
						name, sched, wc.workers, wc.granule, r, base)
				}
			}
		}
	}
}

// TestGranuleInvariance isolates the granule axis: with workers fixed, every
// parking threshold — including one far beyond any real stall — must commit
// the same Result as the serial default. DynCTA is used deliberately: its
// epoch adjustment reads per-core stall counters, so a missing sleeper sync
// would diverge here before anywhere else.
func TestGranuleInvariance(t *testing.T) {
	w, _ := workloads.ByName("spmv")
	cfg := testConfig()
	cfg.Workers = 1
	base := mustRun(t, cfg, core.NewDynCTA(), w.Build(workloads.ScaleTest))
	for _, granule := range []uint64{1, 16, 4096} {
		cfg := testConfig()
		cfg.Workers = 2
		cfg.Granule = granule
		r := mustRun(t, cfg, core.NewDynCTA(), w.Build(workloads.ScaleTest))
		if !reflect.DeepEqual(r, base) {
			t.Errorf("Granule=%d diverged from serial default:\n%+v\nvs\n%+v", granule, r, base)
		}
	}
}

// TestMemShardInvariance is the package-level statement of the phase-A2
// contract: the committed Result is a pure function of the request, whatever
// Config.MemShards and Config.BatchWindow say. The sweep crosses shard
// counts (including more shards than partitions, which leaves the trailing
// shards empty) with batch windows (1 = batching off, 0 = the default) and
// worker counts, against a serial-memory unbatched baseline. Stencil is used
// deliberately: it is the memory-bound workload whose serial memory tick
// motivated the shard split, so partition-order bugs diverge here first.
func TestMemShardInvariance(t *testing.T) {
	w, _ := workloads.ByName("stencil")
	cfg := testConfig()
	cfg.Workers = 1
	cfg.MemShards = 1
	cfg.BatchWindow = 1
	base := mustRun(t, cfg, core.NewLCS(), w.Build(workloads.ScaleTest))
	for _, c := range []struct {
		workers, shards int
		window          uint64
	}{
		{1, 2, 1},  // sharded staging under the serial loop, no batching
		{2, 6, 0},  // one shard per partition, default window
		{3, 9, 2},  // more shards than partitions: trailing shards are empty
		{7, 0, 64}, // derived shard count, window beyond the crossbar clamp
		{2, 1, 0},  // serial memory tick inside a parallel pool, batching on
	} {
		cfg := testConfig()
		cfg.Workers = c.workers
		cfg.MemShards = c.shards
		cfg.BatchWindow = c.window
		r := mustRun(t, cfg, core.NewLCS(), w.Build(workloads.ScaleTest))
		if !reflect.DeepEqual(r, base) {
			t.Errorf("Workers=%d MemShards=%d BatchWindow=%d diverged from serial unbatched baseline:\n%+v\nvs\n%+v",
				c.workers, c.shards, c.window, r, base)
		}
	}
}

// TestMemShardInvarianceNoFastForward pins the shard axis on the reference
// loop. Quiet-window batching needs the fast-forward machinery's sleep
// proofs, so it is structurally off here — what remains under test is the
// per-cycle ingress/egress staging and the shard merge, which must be inert
// however the partitions are cut.
func TestMemShardInvarianceNoFastForward(t *testing.T) {
	w, _ := workloads.ByName("stencil")
	cfg := testConfig()
	cfg.Workers = 1
	cfg.MemShards = 1
	cfg.DisableFastForward = true
	base := mustRun(t, cfg, core.NewRoundRobin(), w.Build(workloads.ScaleTest))
	for _, shards := range []int{2, 6, 9} {
		cfg := testConfig()
		cfg.Workers = 4
		cfg.MemShards = shards
		cfg.DisableFastForward = true
		if r := mustRun(t, cfg, core.NewRoundRobin(), w.Build(workloads.ScaleTest)); !reflect.DeepEqual(r, base) {
			t.Errorf("MemShards=%d (no FF) diverged from serial baseline:\n%+v\nvs\n%+v", shards, r, base)
		}
	}
}

// TestWorkerCountInvarianceNoFastForward pins the same contract on the
// reference loop, so a fast-forward interaction cannot mask a phase-A
// ordering bug (or vice versa). Granule plumbing must be inert here: without
// a fast-forward proof chain no SM is ever parked.
func TestWorkerCountInvarianceNoFastForward(t *testing.T) {
	w, _ := workloads.ByName("stencil")
	cfg := testConfig()
	cfg.Workers = 1
	cfg.DisableFastForward = true
	base := mustRun(t, cfg, core.NewBCS(), w.Build(workloads.ScaleTest))
	for _, granule := range []uint64{0, 16} {
		cfg.Workers = 4
		cfg.Granule = granule
		if r := mustRun(t, cfg, core.NewBCS(), w.Build(workloads.ScaleTest)); !reflect.DeepEqual(r, base) {
			t.Errorf("Workers=4 Granule=%d (no FF) diverged from Workers=1:\n%+v\nvs\n%+v", granule, r, base)
		}
	}
}
