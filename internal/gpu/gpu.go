// Package gpu wires the simulator together: an array of SMs, the shared
// memory system, a launch table of kernels, and a CTA-scheduling Dispatcher
// from internal/core. It owns the cycle loop and produces the Result record
// the experiment harness consumes.
package gpu

import (
	"context"
	"fmt"
	"runtime"

	"gpusched/internal/core"
	"gpusched/internal/gpu/parexec"
	"gpusched/internal/kernel"
	"gpusched/internal/mem"
	"gpusched/internal/sm"
	"gpusched/internal/stats"
)

// Config is the whole-GPU configuration.
type Config struct {
	// NumCores is the SM count.
	NumCores int
	// Core is the per-SM configuration (copied per SM).
	Core sm.Config
	// Mem is the shared memory-system configuration.
	Mem mem.Config
	// MaxCycles aborts runaway simulations; Result.TimedOut is set.
	// Zero means DefaultMaxCycles.
	MaxCycles uint64
	// DisableFastForward forces the reference cycle-by-cycle loop, never
	// skipping provably-idle stretches. Results are bit-identical either
	// way — the flag exists so tests can prove exactly that, and so
	// suspected fast-forward bugs can be bisected against the reference.
	DisableFastForward bool
	// Workers is how many OS threads tick the SMs each cycle (phase A of
	// the two-phase tick). 0 derives the count from GOMAXPROCS; 1 is the
	// serial reference path. The count is execution-only: results are
	// byte-identical for every value (the golden determinism tests diff
	// worker counts against each other), so it never enters a cache key.
	Workers int
	// Granule is the minimum provably-quiet window, in cycles, an SM must
	// have ahead of it before its shard parks it in the activity set's wake
	// heap (0 means DefaultGranule). A parked SM is skipped without being
	// visited until its wake cycle; the skipped cycles' ActiveCycles and
	// stall counters are replayed in one FastForward when it next runs.
	// Like Workers it is execution-only: parking is semantically inert, so
	// results are byte-identical for every granule (the golden determinism
	// tests sweep it) and it never enters a cache key.
	Granule uint64
	// MemShards is how many contiguous partition ranges the memory system's
	// phase-A2 tick is split into (mem.System.SetShards). 0 derives it from
	// the worker count (clamped to the partition count); 1 is the serial
	// reference path; values beyond the partition count leave the extra
	// shards empty. Execution-only: the staged merge makes results
	// byte-identical for every value (the golden determinism tests sweep
	// it), so it never enters a cache key.
	MemShards int
	// BatchWindow caps the quiet-window cycle batch, in cycles: when no SM
	// can run or receive a response for the next k cycles, the loop runs k
	// memory-system ticks inside one barrier crossing instead of k. The
	// effective window is additionally bounded by the crossbar latency (a
	// response delivered inside the window cannot become poppable before the
	// window ends, so no SM interaction is ever skipped). 0 means
	// DefaultBatchWindow; 1 disables batching. Execution-only: results are
	// byte-identical for every value (the golden determinism tests sweep it),
	// so it never enters a cache key.
	BatchWindow uint64
}

// ResolveWorkers maps a Config.Workers value to the machine-derived worker
// count before the per-instance SM clamp: zero and negative mean GOMAXPROCS.
// Daemons use it to report the effective value of the knob they were
// configured with (the gpuschedd_sim_workers gauge).
func ResolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// resolveWorkers maps Config.Workers to the effective phase-A shard count:
// GOMAXPROCS-derived when unset, never more than one shard per SM.
func (c *Config) resolveWorkers() int {
	w := ResolveWorkers(c.Workers)
	if w > c.NumCores {
		w = c.NumCores
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DefaultMaxCycles is the runaway-simulation cap applied when
// Config.MaxCycles is zero — the single definition every layer shares.
const DefaultMaxCycles uint64 = 20_000_000

// DefaultGranule is the parking threshold applied when Config.Granule is
// zero: an SM leaves the activity set only when it can prove at least this
// many quiet cycles ahead. Small enough that short stalls still park, large
// enough that an SM bouncing on 1–2 cycle hazards stays on the active list
// instead of churning the wake heap.
const DefaultGranule uint64 = 4

// resolveGranule maps Config.Granule to the effective parking threshold.
func (c *Config) resolveGranule() uint64 {
	if c.Granule == 0 {
		return DefaultGranule
	}
	return c.Granule
}

// DefaultBatchWindow is the quiet-window batch cap applied when
// Config.BatchWindow is zero. It only bounds the merge buffers: the
// effective window is almost always the crossbar latency (the SM↔memsys
// interaction bound), which is far below it.
const DefaultBatchWindow uint64 = 64

// resolveBatchWindow maps Config.BatchWindow to the effective batch cap:
// the configured (or default) cap, never more than the crossbar latency —
// a response delivered at cycle c becomes poppable at c+XbarLatency, so a
// window bounded by the latency provably contains no SM-visible event.
func (c *Config) resolveBatchWindow() uint64 {
	w := c.BatchWindow
	if w == 0 {
		w = DefaultBatchWindow
	}
	lat := c.Mem.XbarLatency
	if lat < 1 {
		lat = 1
	}
	if w > lat {
		w = lat
	}
	return w
}

// resolveMemShards maps Config.MemShards to the effective phase-A2 shard
// count: derived from the worker count (never more than one shard per
// partition) when unset, the configured value otherwise — mem.System
// tolerates counts beyond the partition count by leaving shards empty.
func (c *Config) resolveMemShards(workers int) int {
	n := c.MemShards
	if n <= 0 {
		n = workers
		if n > c.Mem.Partitions {
			n = c.Mem.Partitions
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// DefaultConfig returns the Fermi-class (GTX480 ballpark) GPU used by the
// paper-reproduction experiments: 15 SMs, 2 schedulers each, 6 memory
// partitions.
func DefaultConfig() Config {
	return Config{
		NumCores:  15,
		Core:      sm.DefaultConfig(),
		Mem:       mem.DefaultConfig(),
		MaxCycles: DefaultMaxCycles,
	}
}

// addrSpaceStride separates kernel global address spaces: lane addresses
// are 32-bit offsets, so 8 GiB spacing guarantees no aliasing while keeping
// cache index bits undisturbed.
const addrSpaceStride = uint64(1) << 33

// Result summarizes one simulation.
type Result struct {
	// Cycles is the total simulated time (launch of first kernel to
	// retirement of the last CTA).
	Cycles uint64
	// TimedOut is set when MaxCycles aborted the run.
	TimedOut bool
	// InstrIssued and ThreadInstr aggregate issue counts over all cores.
	InstrIssued uint64
	ThreadInstr uint64
	// IPC is InstrIssued / Cycles.
	IPC float64
	// Core sums the per-SM pipeline counters.
	Core stats.Core
	// L1 sums the per-SM L1 counters; L2 and DRAM aggregate the shared
	// hierarchy.
	L1   stats.Cache
	L2   stats.Cache
	DRAM stats.DRAM
	// AvgMemLatency is the mean load round-trip in cycles (issue to last
	// transaction), averaged over cores weighted by load count.
	AvgMemLatency float64
	// Kernels holds per-kernel makespans and issue counts, launch order.
	Kernels []stats.Kernel
}

// GPU is one simulated device with a fixed launch table.
//
// GPU is shared state for the two-phase tick: phase-A code (anything
// reachable from SM.Tick or a shard visit) must not mutate it except
// through the declared staging sinks (onCTADone, onCTADrained, the visit
// closure's per-core probe throttles) — gpulint phasepurity enforces this.
//
//gpulint:shared
type GPU struct {
	cfg        Config
	cores      []*sm.SM
	memsys     *mem.System
	dispatcher core.Dispatcher
	kernels    []*core.KernelState
	now        uint64
	doneCount  int
	// observer, when set, sees every CTA retirement (experiment probes).
	observer func(coreID int, cta *sm.CTA, now uint64)
	coreCfgs []sm.Config
	// epochFn, when set, runs every epochEvery cycles (tracing hooks).
	epochFn    func(now uint64)
	epochEvery uint64
	// ctaEvent records that a CTA retired during the current cycle; with
	// the placement and issue counters it decides whether the cycle was
	// idle and the loop may consult the event horizon.
	ctaEvent bool
	// arrived is how many launch-table kernels have reached their Arrival
	// cycle; Kernels() exposes exactly that prefix to dispatchers.
	arrived int
	// pendingRetire[c] collects core c's CTA retirements during phase A of
	// a cycle. A core's SM appends only to its own list (so cores may tick
	// concurrently); commitRetirements replays every list serially in
	// core-index order before the memory system ticks, so the dispatcher,
	// the observer, and the kernel bookkeeping see retirements in one fixed
	// order whatever the phase-A interleaving was.
	pendingRetire [][]*sm.CTA
	// pendingPreempt[c] collects core c's drain evictions during phase A,
	// mirroring pendingRetire: the SM appends only to its own list, and
	// commitPreemptions replays every list serially in core-index order
	// right after commitRetirements. Re-dispatch order after eviction is
	// therefore a deterministic FIFO keyed by (eviction cycle, core index)
	// whatever the phase-A worker interleaving was.
	pendingPreempt [][]*sm.CTA
	// ffNextTry/ffBackoff throttle horizon probes. Probing costs real work
	// (every scheduler and memory queue is consulted), so an attempt that
	// finds nothing to skip doubles the wait before the next attempt; a
	// productive skip resets it. Busy phases therefore pay a bounded,
	// vanishing probe overhead while stall phases skip at full fidelity.
	ffNextTry uint64
	ffBackoff uint64
	// activity tracks which SMs have ready work this cycle (built by
	// RunContext, nil before). Sleeping SMs are skipped by phase A entirely;
	// wakeCore is the only way back in.
	activity *parexec.ActivitySet
	// probeAt[i]/probeBO[i] throttle core i's sleep probes, mirroring
	// ffNextTry/ffBackoff: an SM that stalls without being parkable doubles
	// the wait before its next NextEvent probe, and a successful park resets
	// it. Written only by the shard that owns core i during phase A.
	probeAt []uint64
	probeBO []uint64
	// postTick is true between phase A and the end of the cycle (commits and
	// the memory tick). wakeCore uses it to pick the sync boundary: once
	// phase A has run, a sleeping core provably accounts for the current
	// cycle too, and cannot tick again before the next one.
	postTick bool
	// winFrom/winTo are the current batched quiet window's bounds, written
	// serially before the window's phase-A2 pool release so the reusable
	// shard closure (no per-window allocation) can read them — the same
	// ordering contract g.now relies on.
	winFrom, winTo uint64
}

// New builds a GPU running specs (in launch order) under dispatcher d.
// Every spec must validate and fit on an SM.
func New(cfg Config, d core.Dispatcher, specs ...*kernel.Spec) (*GPU, error) {
	if cfg.NumCores <= 0 {
		return nil, fmt.Errorf("gpu: NumCores = %d", cfg.NumCores)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("gpu: no kernels")
	}
	if cfg.NumCores > 255 {
		return nil, fmt.Errorf("gpu: NumCores %d exceeds response-routing width", cfg.NumCores)
	}
	g := &GPU{cfg: cfg, dispatcher: d}
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if n, binding := cfg.Core.Limits.MaxResident(spec); n == 0 {
			return nil, fmt.Errorf("gpu: kernel %s does not fit one SM (%s)", spec.Name, binding)
		}
		if i > 0 && spec.Arrival < specs[i-1].Arrival {
			// Arrived kernels are always a prefix of the launch table, so
			// dispatchers can keep indexing kernels by launch position.
			return nil, fmt.Errorf("gpu: kernel %s arrives at %d, before its predecessor (%d); arrivals must be nondecreasing in launch order",
				spec.Name, spec.Arrival, specs[i-1].Arrival)
		}
		g.kernels = append(g.kernels, &core.KernelState{
			Spec:     spec,
			Idx:      i,
			AddrBase: uint64(i+1) * addrSpaceStride,
		})
	}
	g.memsys = mem.NewSystem(&cfg.Mem, cfg.NumCores)
	g.pendingRetire = make([][]*sm.CTA, cfg.NumCores)
	g.pendingPreempt = make([][]*sm.CTA, cfg.NumCores)
	g.cores = make([]*sm.SM, cfg.NumCores)
	g.coreCfgs = make([]sm.Config, cfg.NumCores)
	for i := range g.cores {
		g.coreCfgs[i] = cfg.Core // per-SM copy: SetWarpPolicy is per core
		g.cores[i] = sm.New(i, &g.coreCfgs[i], g.memsys, len(specs), g.onCTADone)
		g.cores[i].SetDrainHandler(g.onCTADrained)
		g.cores[i].SetWakeHandler(g.wakeCore)
	}
	g.memsys.SetResponseHook(g.wakeCore)
	return g, nil
}

// wakeCore is the single wake funnel: the SMs' pre-mutation notification
// (AddCTA, and Preempt below) and the memory system's response-delivery hook
// both land here, always in a serial phase. It settles the target core's
// lazily-accrued counters up to the current stage boundary — callers invoke
// it *before* mutating the core, while the parked window is still provably
// quiet — then lowers the core's wake bound so the skipped SM rejoins
// phase A in time. Waking an active core is a harmless no-op.
//
//gpulint:phaseb wake/sync runs in serial phases only; a phase-A caller would race the wake heap and the watermark
func (g *GPU) wakeCore(coreID int, at uint64) {
	sync, wake := at, at
	if g.postTick {
		// Phase A for cycle g.now already ran: the core either ticked this
		// cycle or slept through it (its wake bound is beyond g.now), so
		// cycle g.now is provably accounted for — settle through it while
		// that proof still holds, and wake no earlier than the next cycle.
		sync = g.now + 1
		if wake <= g.now {
			wake = g.now + 1
		}
	}
	g.cores[coreID].SyncTo(sync)
	if g.activity != nil {
		g.activity.Wake(coreID, wake)
	}
}

// syncAllTo settles every core's lazily-accrued counters through cycle t
// (exclusive) — the serial-phase barrier before any consumer that may read a
// sleeping core's Stats: the dispatcher when it is due to act, commit
// callbacks, the epoch hook, and final collection. Cores already synced past
// t are untouched.
//
//gpulint:phaseb the serial-phase sync barrier; running it during phase A would race the cores it settles
func (g *GPU) syncAllTo(t uint64) {
	for _, c := range g.cores {
		c.SyncTo(t)
	}
}

// havePendingCommits reports whether any core recorded a retirement or drain
// eviction this cycle — the trigger for settling sleepers before the commit
// callbacks (observer, dispatcher probes) run.
func (g *GPU) havePendingCommits() bool {
	for c := range g.pendingRetire {
		if len(g.pendingRetire[c]) > 0 || len(g.pendingPreempt[c]) > 0 {
			return true
		}
	}
	return false
}

// SetObserver registers an experiment probe called on every CTA retirement
// (before the dispatcher sees it). Must be set before Run.
func (g *GPU) SetObserver(fn func(coreID int, cta *sm.CTA, now uint64)) {
	g.observer = fn
}

// SetEpochHook registers fn to run every `every` cycles during Run (cycle 0
// included) — the sampling hook the timeline tracer uses. Must be set
// before Run.
func (g *GPU) SetEpochHook(every uint64, fn func(now uint64)) {
	if every == 0 {
		every = 1024
	}
	g.epochEvery = every
	g.epochFn = fn
}

// MemSystem exposes the shared memory hierarchy (tracing and tests).
func (g *GPU) MemSystem() *mem.System { return g.memsys }

// Now implements core.Machine.
func (g *GPU) Now() uint64 { return g.now }

// NumCores implements core.Machine.
func (g *GPU) NumCores() int { return len(g.cores) }

// Core implements core.Machine.
func (g *GPU) Core(i int) *sm.SM { return g.cores[i] }

// Kernels implements core.Machine. It returns only the kernels that have
// arrived: g.kernels holds the full launch table, and because arrivals are
// validated nondecreasing the arrived set is always a prefix, so the slice
// header is the whole gate — no per-call allocation, and launch-position
// indexing stays valid for dispatchers.
func (g *GPU) Kernels() []*core.KernelState { return g.kernels[:g.arrived] }

// admitArrivals moves newly arrived kernels into the dispatchers' view of
// the launch table. An admission changes dispatch state, so the cycle is
// marked non-idle (fast-forward additionally clamps its horizon to the next
// pending arrival, so no admission cycle is ever skipped).
func (g *GPU) admitArrivals() {
	for g.arrived < len(g.kernels) && g.kernels[g.arrived].Spec.Arrival <= g.now {
		g.arrived++
		g.ctaEvent = true
	}
}

// Preempt implements core.Machine: it asks core coreID to drain cta for
// preemption. The request is accepted only for a resident, running CTA (a
// natural completion that raced the request loses it harmlessly). The
// eviction itself lands later, through the phase-B preemption commit.
func (g *GPU) Preempt(coreID int, cta *sm.CTA) bool {
	if coreID < 0 || coreID >= len(g.cores) {
		return false
	}
	// Settle and wake before the drain flag lands: the drain changes what a
	// replayed stall window would look like, so the window must close first.
	// If the request is refused the spurious wake costs one visit.
	g.wakeCore(coreID, g.now)
	return g.cores[coreID].DrainCTA(cta)
}

// onCTADone is the SMs' retirement callback. It may run on a phase-A worker
// goroutine, so it only records the event in the retiring core's private
// list; every side effect that touches shared state happens in
// commitRetirements, serially.
//
//gpulint:staged appends only to the retiring core's own pendingRetire list
func (g *GPU) onCTADone(coreID int, cta *sm.CTA) {
	g.pendingRetire[coreID] = append(g.pendingRetire[coreID], cta)
}

// onCTADrained is the SMs' drain-eviction callback — same phase-A discipline
// as onCTADone: record in the core's private list, commit serially later.
//
//gpulint:staged appends only to the draining core's own pendingPreempt list
func (g *GPU) onCTADrained(coreID int, cta *sm.CTA) {
	g.pendingPreempt[coreID] = append(g.pendingPreempt[coreID], cta)
}

// commitRetirements replays the cycle's CTA retirements strictly in
// core-index order (and, within a core, retirement order): kernel completion
// bookkeeping, the experiment observer, then the dispatcher's
// OnCTAComplete probe — the same per-CTA sequence the serial path has always
// run, now at a fixed point of the cycle (after every core ticked, before
// the memory system ticks).
//
//gpulint:phaseb replays shared-state side effects after the phase-A barrier
func (g *GPU) commitRetirements() {
	for c := range g.pendingRetire {
		list := g.pendingRetire[c]
		if len(list) == 0 {
			continue
		}
		// Detach the list while replaying: no current callback retires a CTA
		// synchronously, but if one ever does, the onCTADone append must not
		// land in list's backing array, where the reset below would silently
		// discard it. Same-core re-entrant retirement is caught by the length
		// check after the loop; appends for other cores land in their own
		// (restored) buffers and replay in this or the next cycle's commit.
		g.pendingRetire[c] = nil
		for i, cta := range list {
			g.ctaEvent = true
			ks := g.kernels[cta.KernelIdx]
			ks.Completed++
			if ks.Done() {
				ks.DoneCycle = g.now
				g.doneCount++
			}
			if g.observer != nil {
				g.observer(c, cta, g.now)
			}
			g.dispatcher.OnCTAComplete(g, c, cta)
			// Every shared-state consumer of this retirement has now run, so
			// the context can go back to its core's pool. A placement made by
			// a later callback this same cycle may already reuse it.
			g.cores[c].Recycle(cta)
			list[i] = nil
		}
		if len(g.pendingRetire[c]) != 0 {
			panic("gpu: retirement callback retired a CTA for the same core re-entrantly; commitRetirements cannot replay it this cycle")
		}
		g.pendingRetire[c] = list[:0]
	}
}

// commitPreemptions replays the cycle's drain evictions strictly in
// core-index order (and, within a core, eviction order), after retirements
// and before the memory system ticks: the evicted CTA id joins its kernel's
// re-dispatch queue, per-kernel eviction counters advance, and a dispatcher
// implementing PreemptionObserver is notified. Because this is the only
// place evictions touch shared state, the requeue order is a pure function
// of (eviction cycle, core index) — independent of phase-A interleaving.
//
//gpulint:phaseb replays shared-state side effects after the phase-A barrier
func (g *GPU) commitPreemptions() {
	po, _ := g.dispatcher.(core.PreemptionObserver)
	for c := range g.pendingPreempt {
		list := g.pendingPreempt[c]
		if len(list) == 0 {
			continue
		}
		g.pendingPreempt[c] = nil
		for i, cta := range list {
			// An eviction changes dispatch state (capacity freed, requeue
			// grown), so the cycle is never idle for fast-forward purposes.
			g.ctaEvent = true
			ks := g.kernels[cta.KernelIdx]
			ks.Requeue(cta.ID)
			if po != nil {
				po.OnCTAEvicted(g, c, cta)
			}
			// Eviction guarantees memRefs == 0, so the context pools
			// immediately; the re-dispatch builds a fresh CTA from the id.
			g.cores[c].Recycle(cta)
			list[i] = nil
		}
		if len(g.pendingPreempt[c]) != 0 {
			panic("gpu: eviction callback drained a CTA for the same core re-entrantly; commitPreemptions cannot replay it this cycle")
		}
		g.pendingPreempt[c] = list[:0]
	}
}

// Run simulates to completion (or MaxCycles) and returns the result.
// A GPU is single-shot: Run must be called once.
func (g *GPU) Run() Result {
	res, _ := g.RunContext(context.Background())
	return res
}

// ctxCheckInterval is how often (in cycles) RunContext polls for
// cancellation — rare enough to keep the cycle loop hot, frequent enough
// that cancellation lands within microseconds of wall time.
const ctxCheckInterval = 4096

// parallelMinRunnable is the smallest phase-A population worth a barrier
// crossing: below it the shards run inline on the caller's goroutine (same
// shard split, same visit order within a shard, so results are unchanged).
// A stall phase with one or two live SMs must not pay a park/wake round trip
// per cycle just because eight workers were configured.
const parallelMinRunnable = 6

// maxProbeBackoff bounds the per-SM sleep-probe backoff (see probeAt/probeBO
// on GPU), for the same reason maxFFBackoff bounds the global one: when a
// busy phase ends, the SM must start parking again within a few dozen cycles.
const maxProbeBackoff = 64

// minParallelParts is the smallest live-partition population worth a
// phase-A2 barrier crossing: below it the memory system ticks serially on
// the caller's goroutine (same shard split, same per-partition order, so
// results are unchanged). A tail phase with one busy DRAM channel must not
// pay a pool release/join per cycle.
const minParallelParts = 4

// RunContext is Run with cooperative cancellation: when ctx is canceled
// the cycle loop stops mid-flight and the context's error is returned
// alongside the partial result.
//
// Each cycle is two phases. Phase A ticks the SMs with ready work —
// concurrently over a persistent worker pool when Config.Workers allows and
// enough SMs are runnable, serially otherwise; either way each SM confines
// itself to core-private state (its pipeline, its L1, its staging slot in
// the memory system, its retirement list). Phase B is always serial: CTA
// retirements replay in core-index order, then the memory system commits the
// staged traffic and ticks. The committed state is a pure function of the
// request, independent of worker count and interleaving (the golden
// determinism tests diff worker counts byte-for-byte).
//
// Which SMs have ready work is tracked by an activity set (parexec): after
// ticking, an SM that issued nothing and can prove at least Granule quiet
// cycles ahead parks in its shard's wake heap and is skipped — not visited
// at all — until its wake cycle arrives or an external event (CTA placement,
// drain request, memory response) lowers its bound through wakeCore. The
// skipped cycles' ActiveCycles and stall counters accrue lazily: each SM
// carries a synced-through watermark and replays the gap in one FastForward
// the next time it runs (or when a serial-phase reader forces syncAllTo).
// Parking is semantically inert — the park/wake decisions are pure per-SM
// functions — so results are byte-identical for every granule; the golden
// determinism tests sweep granules and worker counts against each other.
//
// The loop runs cycle-by-cycle while anything happens. After a cycle in
// which no CTA was placed or retired and no instruction issued, it asks
// every component for its event horizon — the earliest future cycle at
// which it can act — and jumps straight there. Sleeping SMs contribute
// their wake bounds through the activity set's heap minimum instead of
// being probed individually, so the probe cost scales with the live set.
// The jump is exact, not approximate: every NextEvent bound is conservative
// and the skipped window is provably frozen, so results are bit-identical
// to the reference loop (Config.DisableFastForward selects it; the golden
// determinism tests diff the two). Horizon probes always run serially, on
// the fully merged post-commit state.
func (g *GPU) RunContext(ctx context.Context) (Result, error) {
	maxCycles := g.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	ff, _ := g.dispatcher.(core.FastForwarder)
	if g.cfg.DisableFastForward {
		ff = nil
	}
	// Parking rides on the same proof machinery as fast-forward: without a
	// FastForwarder the quiet-window replay has no dispatcher bound, so the
	// reference configuration keeps every SM in the active set permanently.
	sleepOK := ff != nil
	granule := g.cfg.resolveGranule()
	workers := g.cfg.resolveWorkers()
	as := parexec.NewActivitySet(len(g.cores), workers)
	g.activity = as
	g.probeAt = make([]uint64, len(g.cores))
	g.probeBO = make([]uint64, len(g.cores))
	// visit ticks one SM for the current cycle and returns its next wake
	// bound: <= now+1 keeps it active, anything later parks it. It runs on
	// phase-A workers but touches only core i's private state (the probe
	// throttle arrays are per-core, the response pipe is core-private, and
	// g.now is ordered by the pool's release/join edges).
	//
	//gpulint:staged the probe throttle slots probeAt[i]/probeBO[i] are owned by core i's shard; no cross-core state is touched
	visit := func(i int) uint64 {
		c := g.cores[i]
		before := c.Stats.InstrIssued
		now := g.now
		c.Tick(now)
		if !sleepOK || c.Stats.InstrIssued != before || now < g.probeAt[i] {
			return 0 // issued or probe-throttled: stay active
		}
		// The SM stalled this cycle; ask whether the stall provably extends
		// a full granule. Its own bound covers pipeline and L1/LDST state;
		// the response pipe bound covers replies already in flight toward it
		// (later deliveries wake it through the response hook).
		wake := c.NextEvent(now + 1)
		if rv := g.memsys.ResponseNextReady(i); rv < wake {
			wake = rv
		}
		if wake >= now+1+granule {
			g.probeAt[i], g.probeBO[i] = 0, 0
			return wake
		}
		if g.probeBO[i] < maxProbeBackoff {
			g.probeBO[i] = max2(2*g.probeBO[i], 2)
		}
		g.probeAt[i] = now + g.probeBO[i]
		return 0
	}
	tickShard := func(shard int) { as.TickShard(shard, g.now, visit) }
	var pool *parexec.Pool
	if workers > 1 {
		pool = parexec.New(workers)
		defer pool.Close()
	}
	memShards := g.cfg.resolveMemShards(workers)
	g.memsys.SetShards(memShards)
	batchCap := g.cfg.resolveBatchWindow()
	// memShardFn runs phase A2 on a pool worker: pool shard w ticks memory
	// shards w, w+workers, ... — a pure function of (w, workers, memShards),
	// so the partition→worker mapping never depends on scheduling.
	memShardFn := func(shard int) {
		for ms := shard; ms < memShards; ms += workers {
			g.memsys.TickShard(ms, g.now)
		}
	}
	// memWindowFn is memShardFn for a batched quiet window [winFrom, winTo).
	memWindowFn := func(shard int) {
		for ms := shard; ms < memShards; ms += workers {
			g.memsys.TickShardWindow(ms, g.winFrom, g.winTo)
		}
	}
	done := ctx.Done()
	for g.doneCount < len(g.kernels) && g.now < maxCycles {
		if done != nil && g.now%ctxCheckInterval == 0 {
			select { //gpulint:allow nogoroutine cancellation poll only aborts the run; a canceled simulation returns an error and is never cached or reported
			case <-done:
				g.syncAllTo(g.now)
				return g.collect(), ctx.Err()
			default:
			}
		}
		if g.epochFn != nil && g.now%g.epochEvery == 0 {
			if as.Sleeping() > 0 {
				g.syncAllTo(g.now) // the hook may read any core's counters
			}
			g.epochFn(g.now)
		}
		dispatched := g.dispatchedCTAs()
		issued := g.issuedTotal()
		g.ctaEvent = false
		g.admitArrivals()
		if sleepOK && as.Sleeping() > 0 && ff.NextDispatchEvent(g.now) <= g.now {
			// The dispatcher acts this cycle and may read per-core counters
			// (DynCTA's epoch adjustment does); settle the sleepers first.
			// Every sleeper's wake bound is beyond the last ticked cycle, so
			// the replayed window is provably quiet.
			g.syncAllTo(g.now)
		}
		g.dispatcher.Tick(g)
		if sleepOK && batchCap > 1 && as.Runnable(g.now) == 0 &&
			g.memsys.NextEvent(g.now) <= g.now && g.memsys.StagedEmpty() {
			// Quiet window: every SM is parked past this cycle, nothing is
			// staged, and the memory system has work — phase A and the
			// commits are provably no-ops for every cycle before the window
			// end, so run the whole window's memory ticks inside one barrier
			// crossing and merge once.
			if end := g.batchWindowEnd(ff, done != nil, maxCycles, batchCap); end > g.now+1 {
				g.winFrom, g.winTo = g.now, end
				if pool != nil && g.memsys.LiveParts() >= minParallelParts {
					pool.Run(memWindowFn)
				} else {
					for ms := 0; ms < memShards; ms++ {
						g.memsys.TickShardWindow(ms, g.winFrom, g.winTo)
					}
				}
				// Merge with the clock parked on the window's last cycle and
				// postTick set, so the response hooks' wake/sync semantics
				// are exactly what per-cycle execution would have produced:
				// every core provably slept through the window, so wakeCore
				// settles it to the window end and wakes it no earlier.
				g.now = end - 1
				g.postTick = true
				g.memsys.TickMerge(g.now)
				g.now = end
				g.postTick = false
				continue
			}
		}
		if pool != nil && as.Runnable(g.now) >= parallelMinRunnable {
			pool.Run(tickShard)
		} else {
			// Inline phase A: same shards, same order, no barrier. This is
			// the common path late in a run and in deep stall phases, where
			// one or two live SMs don't amortize a pool release/join.
			for s := 0; s < as.Shards(); s++ {
				as.TickShard(s, g.now, visit)
			}
		}
		g.postTick = true
		if as.Sleeping() > 0 && g.havePendingCommits() {
			// Commit callbacks (the observer, dispatcher probes) may read
			// any core's counters; settle sleepers through this cycle —
			// phase A just proved they slept through it.
			g.syncAllTo(g.now + 1)
		}
		g.commitRetirements()
		g.commitPreemptions()
		if pool != nil && g.memsys.LiveParts() >= minParallelParts {
			// Phase A2: the partitions tick concurrently on the same pool,
			// each confined to partition-owned state, then the staging cells
			// fold serially. Identical statements to the serial path in an
			// identical per-partition order, so results cannot differ.
			pool.Run(memShardFn)
			g.memsys.TickMerge(g.now)
		} else {
			g.memsys.Tick(g.now)
		}
		idle := ff != nil && !g.ctaEvent &&
			g.dispatchedCTAs() == dispatched && g.issuedTotal() == issued
		g.now++
		g.postTick = false
		if idle && g.now >= g.ffNextTry {
			if skipped := g.fastForward(ff, done != nil, maxCycles); skipped == 0 {
				if g.ffBackoff < maxFFBackoff {
					g.ffBackoff = max2(2*g.ffBackoff, 2)
				}
				g.ffNextTry = g.now + g.ffBackoff
			} else {
				g.ffBackoff = 0
			}
		}
	}
	g.syncAllTo(g.now)
	return g.collect(), nil
}

// dispatchedCTAs sums placement counts over the launch table; a delta
// across a cycle means the dispatcher placed work. Placed (not NextCTA)
// also counts re-dispatches of evicted CTAs, which pop the requeue without
// advancing NextCTA.
func (g *GPU) dispatchedCTAs() int {
	n := 0
	for _, ks := range g.kernels {
		n += ks.Placed
	}
	return n
}

// issuedTotal sums issued instructions over all cores.
func (g *GPU) issuedTotal() uint64 {
	var n uint64
	for _, c := range g.cores {
		n += c.Stats.InstrIssued
	}
	return n
}

// maxFFBackoff bounds the probe backoff so a long busy phase ending in a
// deep stall starts skipping again within a few hundred cycles. Only a
// probe that skips nothing at all grows the backoff: memory round trips
// ripple through the pipeline in short (1–4 cycle) hops between the long
// DRAM windows, and punishing those small-but-real jumps starves the skip
// chain exactly where it pays most.
const maxFFBackoff = 256

func max2(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// fastForward jumps g.now to the machine's event horizon: the earliest
// cycle at which the dispatcher, any core, or the memory hierarchy can act.
// The skipped window [g.now, horizon) is provably frozen — the previous
// cycle did nothing and no component wakes inside it — so each core merely
// accrues the stall counters its Tick would have produced. The horizon is
// clamped so no epoch-hook cycle (and, when cancellation is armed, no
// context-check cycle) falls strictly inside the skipped window, and never
// exceeds maxCycles: the cap cycle itself is never executed, matching the
// reference loop's exit arithmetic. Returns how many cycles were skipped.
//
//gpulint:hotpath
func (g *GPU) fastForward(ff core.FastForwarder, clampCtx bool, maxCycles uint64) uint64 {
	from := g.now
	horizon := ff.NextDispatchEvent(from)
	if g.arrived < len(g.kernels) {
		// A pending kernel arrival changes dispatch state; its cycle must
		// execute, not be skipped.
		if a := g.kernels[g.arrived].Spec.Arrival; a < horizon {
			horizon = a
		}
	}
	if ev := g.memsys.NextEvent(from); ev < horizon {
		horizon = ev
	}
	// Sleeping SMs contribute through the activity set's heap minimum — one
	// comparison for the whole parked population instead of a NextEvent probe
	// each. A sleeper's bound can only move earlier through wakeCore, which
	// runs in serial phases, so the heap is current here.
	if hv := g.activity.Horizon(); hv < horizon {
		horizon = hv
	}
	if horizon <= from {
		return 0
	}
	stop := false
	g.activity.Actives(func(i int) bool {
		if ev := g.cores[i].NextEvent(from); ev < horizon {
			horizon = ev
		}
		stop = horizon <= from
		return !stop
	})
	if stop {
		return 0
	}
	if horizon > maxCycles {
		horizon = maxCycles
	}
	if g.epochFn != nil {
		horizon = clampToBoundary(horizon, from, g.epochEvery)
	}
	if clampCtx {
		horizon = clampToBoundary(horizon, from, ctxCheckInterval)
	}
	if horizon <= from {
		return 0
	}
	// Only the live set accrues eagerly; sleepers stay lazy (their watermark
	// replay covers the same window when they next run). The horizon never
	// reaches a sleeper's wake cycle, so no parked SM oversleeps the jump.
	g.activity.Actives(func(i int) bool {
		g.cores[i].SyncTo(horizon)
		return true
	})
	g.now = horizon
	return horizon - from
}

// batchWindowEnd bounds a quiet window starting at g.now: the largest end
// such that every cycle in [g.now, end) provably needs only a memory-system
// tick. The caller has established that no SM is runnable at g.now and that
// this cycle's dispatcher tick already ran; the clamps guarantee the rest:
//
//   - cap (≤ crossbar latency): a response delivered at cycle c inside the
//     window becomes poppable at c+XbarLatency ≥ end, and its wake hook
//     lands ≥ end, so no SM needs to tick before the window ends;
//   - NextDispatchEvent(g.now+1): the dispatcher provably does nothing at
//     the skipped cycles (the same contract fastForward uses);
//   - the next kernel arrival, the activity set's earliest wake, MaxCycles,
//     and the epoch/context boundaries, all of which must execute at the
//     top of the loop.
//
// Any end ≤ g.now+1 means "no window": a one-cycle batch is the normal path.
func (g *GPU) batchWindowEnd(ff core.FastForwarder, clampCtx bool, maxCycles, cap uint64) uint64 {
	from := g.now
	end := from + cap
	if nd := ff.NextDispatchEvent(from + 1); nd < end {
		end = nd
	}
	if g.arrived < len(g.kernels) {
		if a := g.kernels[g.arrived].Spec.Arrival; a < end {
			end = a
		}
	}
	if hv := g.activity.Horizon(); hv < end {
		end = hv
	}
	if end > maxCycles {
		end = maxCycles
	}
	if end <= from+1 {
		return from
	}
	// Boundary cycles run hooks/polls at the top of the loop; from itself
	// already ran them, so only (from, end) must stay boundary-free.
	if g.epochFn != nil {
		end = clampToBoundary(end, from+1, g.epochEvery)
	}
	if clampCtx {
		end = clampToBoundary(end, from+1, ctxCheckInterval)
	}
	return end
}

// clampToBoundary caps horizon so that no multiple of every lies in
// [from, horizon): boundary cycles run hooks at the top of the loop, so
// they must be executed, not skipped. A boundary at horizon itself is fine
// — that cycle executes.
func clampToBoundary(horizon, from, every uint64) uint64 {
	next := from + (every-from%every)%every
	if next < horizon {
		return next
	}
	return horizon
}

//gpulint:synced RunContext runs syncAllTo(g.now) before both collect call sites, so every core's lazy counters are settled
func (g *GPU) collect() Result {
	r := Result{
		Cycles:   g.now,
		TimedOut: g.doneCount < len(g.kernels),
	}
	var latSum, latN uint64
	for _, c := range g.cores {
		s := c.Stats
		r.Core.ActiveCycles += s.ActiveCycles
		r.Core.InstrIssued += s.InstrIssued
		r.Core.ThreadInstr += s.ThreadInstr
		r.Core.IssueStallCycles += s.IssueStallCycles
		r.Core.StallScoreboard += s.StallScoreboard
		r.Core.StallLDSTFull += s.StallLDSTFull
		r.Core.StallBarrier += s.StallBarrier
		r.Core.StallDrain += s.StallDrain
		r.Core.CTAsCompleted += s.CTAsCompleted
		r.Core.CTAsDrained += s.CTAsDrained
		r.Core.SharedAccesses += s.SharedAccesses
		r.Core.SharedConflictPasses += s.SharedConflictPasses
		r.L1.Add(c.L1Stats())
		sum, n := c.MemLatencyRaw()
		latSum += sum
		latN += n
	}
	r.InstrIssued = r.Core.InstrIssued
	r.ThreadInstr = r.Core.ThreadInstr
	r.IPC = stats.IPC(r.InstrIssued, r.Cycles)
	r.L2 = g.memsys.L2Stats()
	r.DRAM = g.memsys.DRAMStats()
	if latN > 0 {
		r.AvgMemLatency = float64(latSum) / float64(latN)
	}
	for _, ks := range g.kernels {
		k := stats.Kernel{
			Name:        ks.Spec.Name,
			LaunchCycle: ks.LaunchCycle,
			DoneCycle:   ks.DoneCycle,
			CTAs:        ks.Spec.NumCTAs(),
			Evicted:     ks.Evicted,
		}
		for _, c := range g.cores {
			k.InstrIssued += c.KernelIssued[ks.Idx]
		}
		r.Kernels = append(r.Kernels, k)
	}
	return r
}
