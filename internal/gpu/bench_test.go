package gpu

import (
	"testing"

	"gpusched/internal/core"
	"gpusched/internal/kernel"
	"gpusched/internal/workloads"
)

// benchSpecs builds the benchmark launch fresh per run (programs are
// stateful cursors and a GPU is single-shot).
func benchSpec(b *testing.B, stallHeavy bool) *kernel.Spec {
	b.Helper()
	if stallHeavy {
		// A single dependent-load warp: between load returns the whole
		// machine is provably idle — the fast-forward's designed case, a
		// latency-bound kernel that cannot fill the machine.
		return workloads.ChaseSpec(1, 1, 1024)
	}
	w, ok := workloads.ByName("stencil")
	if !ok {
		b.Fatal("stencil workload missing")
	}
	return w.Build(workloads.ScaleTest)
}

func benchLoop(b *testing.B, stallHeavy, disableFF bool) {
	cfg := DefaultConfig()
	cfg.NumCores = 4
	cfg.DisableFastForward = disableFF
	b.ReportAllocs()
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		spec := benchSpec(b, stallHeavy)
		g, err := New(cfg, core.NewRoundRobin(), spec)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		r := g.Run()
		if r.TimedOut {
			b.Fatal("benchmark kernel timed out")
		}
		cycles += r.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkStallHeavy measures the all-warps-memory-blocked case the
// event-horizon fast-forward targets; the reference variant pins the
// before/after ratio in one `go test -bench StallHeavy` run.
func BenchmarkStallHeavy(b *testing.B) {
	b.Run("fastforward", func(b *testing.B) { benchLoop(b, true, false) })
	b.Run("reference", func(b *testing.B) { benchLoop(b, true, true) })
}

// BenchmarkStencil measures a moderately memory-bound stencil — busier than
// the chase kernel, so the fast-forward win is smaller but must still hold.
func BenchmarkStencil(b *testing.B) {
	b.Run("fastforward", func(b *testing.B) { benchLoop(b, false, false) })
	b.Run("reference", func(b *testing.B) { benchLoop(b, false, true) })
}
