package parexec

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunInvokesEveryShardOnce(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8, 17} {
		p := New(shards)
		hits := make([]atomic.Int64, shards)
		for round := 0; round < 200; round++ {
			p.Run(func(shard int) { hits[shard].Add(1) })
		}
		p.Close()
		for i := range hits {
			if got := hits[i].Load(); got != 200 {
				t.Fatalf("shards=%d: shard %d ran %d times, want 200", shards, i, got)
			}
		}
	}
}

func TestRunIsABarrier(t *testing.T) {
	// Phase B code after Run must see every shard's writes. Alternate two
	// dependent phases many times; any missing join or release edge makes
	// the accumulated sum diverge (and the race detector scream).
	const shards = 4
	p := New(shards)
	defer p.Close()
	partial := make([]int64, shards*16) // spaced to keep the test honest, not the cache
	var sum int64
	for round := 0; round < 500; round++ {
		p.Run(func(shard int) { partial[shard*16] = int64(shard + round) })
		for i := 0; i < shards; i++ {
			sum += partial[i*16]
		}
	}
	var want int64
	for round := 0; round < 500; round++ {
		for i := 0; i < shards; i++ {
			want += int64(i + round)
		}
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestWorkersParkAndRewake(t *testing.T) {
	// Force the park path: give the workers far longer than the spin budget
	// between runs, then verify the next Run still reaches every shard.
	p := New(3)
	defer p.Close()
	var n atomic.Int64
	fn := func(shard int) { n.Add(1) }
	for round := 0; round < 3; round++ {
		p.Run(fn)
		// Burn enough scheduler quanta that spinning workers give up.
		for i := 0; i < 3*spinIters; i++ {
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	}
	if got := n.Load(); got != 9 {
		t.Fatalf("ran %d shard invocations, want 9", got)
	}
}

func TestCloseIsIdempotentAndStopsWorkers(t *testing.T) {
	p := New(4)
	p.Run(func(int) {})
	p.Close()
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	p.Run(func(int) {})
}

func TestSingleShardPoolRunsInline(t *testing.T) {
	p := New(1)
	defer p.Close()
	if p.Shards() != 1 {
		t.Fatalf("Shards() = %d", p.Shards())
	}
	ran := false
	p.Run(func(shard int) {
		if shard != 0 {
			t.Fatalf("shard = %d", shard)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn not invoked")
	}
}
