// Package parexec is the one deliberate concurrency carve-out inside the
// cycle-loop packages: a fixed-size pool of persistent workers that executes
// one "tick the shard" closure per simulated cycle and then joins. The model
// packages (sm, mem, core) stay goroutine-free — they never import this
// package and never observe it; gpu.RunContext alone decides what runs in
// parallel, and only state that is provably core-private (each SM, its L1,
// its staging slot in mem.System) is touched between release and join.
// Determinism is therefore preserved by construction: the pool controls
// *when* work happens, never *what* the committed state becomes. See
// DESIGN.md "Two-phase parallel tick" for the commit protocol this serves
// and the rationale for the //gpulint:allow nogoroutine annotations below.
//
// The barrier is spin-then-park on both edges. A simulated cycle is a few
// microseconds of work, so workers poll the release epoch for a bounded
// number of iterations (the common case: the next cycle arrives while they
// spin) and only then park on a buffered channel; the releaser wakes exactly
// the workers that committed to parking, via a three-state CAS handshake
// that cannot lose a wakeup. No goroutine is spawned after New.
package parexec

import (
	"runtime"
	"sync/atomic"
)

// Worker park states. Only the owning worker moves spinning->parked and
// back to spinning; only a releaser moves parked->waking (claiming the
// wake and the right to send the park token).
const (
	stateSpinning int32 = iota // running, or polling the epoch
	stateParked                // committed to sleeping on the park channel
	stateWaking                // a releaser claimed the wake; token in flight
)

// spinIters bounds epoch polling before a worker parks. At ~1ns per atomic
// load this is several microseconds — about one simulated cycle — so parking
// only happens across genuinely idle stretches (serial phases, the caller
// doing non-simulation work between runs).
const spinIters = 1 << 12

// joinSpinIters bounds the caller's poll for stragglers after finishing its
// own shard. Shards are balanced, so the join usually succeeds in the first
// few iterations.
const joinSpinIters = 1 << 12

// spinYield is how often a spin loop yields the processor. It keeps the
// barrier honest when shards outnumber cores (GOMAXPROCS < pool size): a
// spinning goroutine must not starve the one that has the work.
const spinYield = 1 << 9

type worker struct {
	_     [64]byte     // keep each worker's state off its neighbours' cache lines
	state atomic.Int32 // stateSpinning / stateParked / stateWaking
	//gpulint:allow nogoroutine park is the worker's wake channel; the CAS handshake on state guarantees at most one token in flight, and no simulated state crosses it
	park chan struct{}
}

// Pool executes fn(shard) for every shard on each Run, reusing the same
// goroutines for the lifetime of the pool. Shard count is fixed at New.
// Run and Close must be called from one goroutine (the cycle loop's owner).
type Pool struct {
	fn      func(shard int)
	epoch   atomic.Uint64 // incremented by release; workers wait on it
	pending atomic.Int32  // workers that have not finished the current Run
	// waiting holds the epoch of the Run whose caller is parked on done, or 0
	// when disarmed. Arming with the epoch (not a plain flag) makes the join
	// handshake generation-aware: a finisher claims the send with
	// CompareAndSwap(itsRunEpoch, 0), so a stale finisher that was preempted
	// between its pending decrement and the claim can never win a *later*
	// run's flag and wake that run's caller early. Epochs are uint64 and
	// start at 1, so an armed value is never the disarmed sentinel.
	waiting atomic.Uint64
	//gpulint:allow nogoroutine done carries the join signal from the last finisher to a parked caller; the epoch-aware waiting CAS guarantees exactly one matched send/receive per Run
	done    chan struct{}
	workers []*worker
	shards  int
	closed  bool
}

// New builds a pool of `shards` shards. The caller's goroutine runs the
// highest shard inline during Run, so shards-1 worker goroutines are
// spawned. shards < 1 is treated as 1 (a pool that runs everything inline).
func New(shards int) *Pool {
	if shards < 1 {
		shards = 1
	}
	p := &Pool{shards: shards}
	//gpulint:allow nogoroutine the join channel of the carve-out barrier (see package comment)
	p.done = make(chan struct{}, 1)
	for i := 0; i < shards-1; i++ {
		w := &worker{}
		//gpulint:allow nogoroutine per-worker wake channel of the carve-out barrier; buffered so the releaser never blocks
		w.park = make(chan struct{}, 1)
		p.workers = append(p.workers, w)
		//gpulint:allow nogoroutine the pool's persistent workers, spawned once at construction — never per cycle; they only ever execute the closure Run installs
		go p.loop(w, i)
	}
	return p
}

// Shards returns the shard count fn is invoked with.
func (p *Pool) Shards() int { return p.shards }

// Run invokes fn(shard) for shard in [0, Shards()) — shards 0..n-2 on the
// persistent workers, the last shard on the calling goroutine — and returns
// after every invocation has completed. fn must confine itself to
// shard-private state; Run provides the memory barrier on both edges
// (release via the epoch, join via the pending counter), so phase B code
// running after Run sees every write the shards made.
func (p *Pool) Run(fn func(shard int)) {
	if p.closed {
		panic("parexec: Run on closed Pool")
	}
	n := len(p.workers)
	if n > 0 {
		p.fn = fn
		p.pending.Store(int32(n))
		p.release()
	}
	fn(p.shards - 1)
	if n == 0 {
		return
	}
	for i := 1; i <= joinSpinIters; i++ {
		if p.pending.Load() == 0 {
			return
		}
		if i%spinYield == 0 {
			runtime.Gosched()
		}
	}
	// Park until the last finisher signals. Arm the waiting flag with this
	// run's epoch, then re-check: if the stragglers finished between the poll
	// and the arm, disarming tells us whether a send is already committed
	// (the finisher CASes the flag to 0 before sending, so exactly one side
	// wins it — and only a finisher of *this* run can win, because the CAS
	// compares against the run's epoch).
	runEpoch := p.epoch.Load()
	p.waiting.Store(runEpoch)
	if p.pending.Load() == 0 && p.waiting.CompareAndSwap(runEpoch, 0) {
		return // finisher never saw the armed flag; no token in flight
	}
	//gpulint:allow nogoroutine join edge of the carve-out barrier: consumes the single token the matched finisher sent
	<-p.done
}

// Close stops the worker goroutines. The pool must be idle (no Run in
// flight). Safe to call more than once.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if len(p.workers) > 0 {
		p.release()
	}
}

// release publishes a new epoch and wakes every worker that committed to
// parking. Workers still spinning observe the epoch themselves; a worker
// racing into the park path re-checks the epoch after flagging itself
// parked, so the wakeup cannot be lost.
func (p *Pool) release() {
	p.epoch.Add(1)
	for _, w := range p.workers {
		if w.state.CompareAndSwap(stateParked, stateWaking) {
			//gpulint:allow nogoroutine wake a parked worker; the parked->waking CAS above claimed the sole right to send this token
			w.park <- struct{}{}
		}
	}
}

// loop is one persistent worker: wait for the next epoch (spin, then park),
// run the installed closure on this worker's shard, and report completion.
func (p *Pool) loop(w *worker, shard int) {
	seen := uint64(0)
	for {
		for spins := 0; p.epoch.Load() == seen; {
			spins++
			if spins%spinYield == 0 {
				runtime.Gosched()
			}
			if spins < spinIters {
				continue
			}
			spins = 0
			// Commit to parking, then re-check the epoch: a release that
			// raced in between the poll and the CAS either sees our parked
			// state (and sends a token) or we un-park ourselves.
			if w.state.CompareAndSwap(stateSpinning, stateParked) {
				if p.epoch.Load() != seen && w.state.CompareAndSwap(stateParked, stateSpinning) {
					continue // released ourselves; no token in flight
				}
				//gpulint:allow nogoroutine park edge of the carve-out barrier: sleeps until release; the state machine guarantees the matched token arrives
				<-w.park
				w.state.Store(stateSpinning)
			}
		}
		seen++
		if p.closed {
			return
		}
		p.fn(shard)
		// seen is this run's epoch, so the CAS can only claim the flag of the
		// run we just finished: if we are preempted here and a later run arms
		// waiting with a newer epoch, the CAS fails and no spurious token is
		// sent into that run's join.
		if p.pending.Add(-1) == 0 && p.waiting.CompareAndSwap(seen, 0) {
			//gpulint:allow nogoroutine last finisher wakes a parked caller; the epoch-aware waiting CAS claimed the sole right to send
			p.done <- struct{}{}
		}
	}
}
