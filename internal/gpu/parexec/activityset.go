package parexec

// NeverWake is the wake bound meaning "only an external Wake can reactivate
// the item" — the parexec mirror of sm.NeverEvent / mem.NeverEvent.
const NeverWake = ^uint64(0)

// ActivitySet tracks which of n items (SMs, in the GPU's use) have ready
// work this cycle, sharded the same way the two-phase tick shards the cores:
// shard s owns the contiguous index range [s*n/shards, (s+1)*n/shards). Each
// shard keeps the items it owns in exactly one of two places:
//
//   - its active list: items visited every TickShard call, or
//   - its wake heap: sleeping items keyed by the cycle they become runnable.
//
// Membership is *derived* state — an item's authoritative status is its
// wakeAt entry (0 = active, otherwise the pending wake cycle), and the list
// and heap are indexes over it. The heap uses lazy deletion: Wake lowers an
// item's bound by pushing a second entry, and TickShard/Horizon discard any
// popped entry whose cycle no longer matches wakeAt. A stale entry can
// therefore make Horizon conservative (too low), never unsafe (too high).
//
// Concurrency discipline (the package's usual carve-out rules): TickShard is
// the only phase-A entry point and shard s touches only shard s's list,
// heap, and owned wakeAt entries, so distinct shards may run on distinct
// workers. Wake, Horizon, Runnable, Sleeping, and Actives touch shared state
// and must only run in the serial phases, ordered against TickShard by the
// pool's release/join edges.
type ActivitySet struct {
	shards  []activityShard
	wakeAt  []uint64 // 0 = active; else pending wake cycle (never 0 while asleep)
	shardOf []int32
}

// activityShard is one shard's membership state. The trailing pad keeps
// neighbouring shards' headers off each other's cache lines while phase-A
// workers mutate them concurrently.
type activityShard struct {
	active []int
	heap   []wakeItem
	asleep int
	_      [64]byte
}

// wakeItem is one heap entry: item idx wants to run at cycle at.
type wakeItem struct {
	at  uint64
	idx int
}

// NewActivitySet builds a set of n items, all initially active, owned by
// `shards` shards with the same contiguous split the tick loop uses.
func NewActivitySet(n, shards int) *ActivitySet {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	a := &ActivitySet{
		shards:  make([]activityShard, shards),
		wakeAt:  make([]uint64, n),
		shardOf: make([]int32, n),
	}
	for s := range a.shards {
		lo, hi := s*n/shards, (s+1)*n/shards
		sh := &a.shards[s]
		sh.active = make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			sh.active = append(sh.active, i)
			a.shardOf[i] = int32(s)
		}
	}
	return a
}

// Shards returns the shard count.
func (a *ActivitySet) Shards() int { return len(a.shards) }

// TickShard runs one shard's phase-A step for cycle now: sleeping items
// whose wake cycle has arrived rejoin the active list, then every active
// item is visited exactly once. visit returns the item's next wake bound —
// any value <= now+1 keeps it active; a later cycle (or NeverWake) parks it
// in the wake heap until that cycle or an external Wake. The bound must be
// conservative: the item must provably have nothing to do before it.
//
// TickShard is a phase-A root: shards run concurrently, so everything
// reachable from it (including the visit callback) must confine itself to
// shard- and core-private state (gpulint phasepurity polices this).
//
//gpulint:hotpath
//gpulint:phasea
func (a *ActivitySet) TickShard(shard int, now uint64, visit func(i int) uint64) {
	sh := &a.shards[shard]
	for len(sh.heap) > 0 && sh.heap[0].at <= now {
		it := heapPop(&sh.heap)
		if a.wakeAt[it.idx] != it.at {
			continue // stale: the item re-slept or was woken to another cycle
		}
		a.wakeAt[it.idx] = 0
		sh.asleep--
		//gpulint:allow hotalloc append reuses the active list's backing array; capacity is bounded by the shard's item count
		sh.active = append(sh.active, it.idx)
	}
	out := sh.active[:0]
	for _, i := range sh.active {
		w := visit(i)
		if w <= now+1 {
			out = append(out, i)
			continue
		}
		a.wakeAt[i] = w
		sh.asleep++
		if w != NeverWake {
			heapPush(&sh.heap, wakeItem{at: w, idx: i})
		}
	}
	sh.active = out
}

// Wake lowers item i's wake bound to at (serial phases only): a CTA was
// placed on a sleeping SM, a drain was requested, or a memory response is
// in flight toward it. Waking an active item, or waking a sleeper to a later
// cycle than it already has, is a no-op — Wake can only make an item run
// sooner, so a spurious call is harmless.
func (a *ActivitySet) Wake(i int, at uint64) {
	if at == 0 {
		at = 1 // cycle-0 wakes cannot exist: items start active at cycle 0
	}
	cur := a.wakeAt[i]
	if cur == 0 || cur <= at {
		return
	}
	a.wakeAt[i] = at
	sh := &a.shards[a.shardOf[i]]
	heapPush(&sh.heap, wakeItem{at: at, idx: i})
}

// Horizon returns the earliest pending wake over every shard's heap —
// the sleepers' contribution to the global fast-forward horizon. Stale
// heads are discarded on the way (serial phases only). NeverWake means
// every sleeping item waits on an external event.
func (a *ActivitySet) Horizon() uint64 {
	h := uint64(NeverWake)
	for s := range a.shards {
		sh := &a.shards[s]
		for len(sh.heap) > 0 && a.wakeAt[sh.heap[0].idx] != sh.heap[0].at {
			heapPop(&sh.heap)
		}
		if len(sh.heap) > 0 && sh.heap[0].at < h {
			h = sh.heap[0].at
		}
	}
	return h
}

// Runnable returns how many items will be visited by a TickShard pass at
// cycle now: the active items plus the sleepers whose wake cycle has
// arrived. It is a cheap pre-barrier estimate (stale heap entries may be
// counted), used to decide whether a parallel phase A is worth its barrier.
func (a *ActivitySet) Runnable(now uint64) int {
	n := 0
	for s := range a.shards {
		sh := &a.shards[s]
		n += len(sh.active)
		for _, it := range sh.heap {
			if it.at <= now && a.wakeAt[it.idx] == it.at {
				n++
			}
		}
	}
	return n
}

// Sleeping returns how many items are currently parked (serial phases only).
func (a *ActivitySet) Sleeping() int {
	n := 0
	for s := range a.shards {
		n += a.shards[s].asleep
	}
	return n
}

// Actives calls f for every currently-active item, shard by shard, until f
// returns false (serial phases only). Sleepers due at the current cycle are
// not included: callers that need them use Horizon, which bounds exactly
// those items.
func (a *ActivitySet) Actives(f func(i int) bool) {
	for s := range a.shards {
		for _, i := range a.shards[s].active {
			if !f(i) {
				return
			}
		}
	}
}

// ---- binary min-heap over (at, idx) ----
// Ordered by wake cycle, ties by index, so pop order — and therefore the
// order items rejoin an active list — is a pure function of the set's
// contents, independent of insertion history.

func wakeLess(x, y wakeItem) bool {
	return x.at < y.at || (x.at == y.at && x.idx < y.idx)
}

//gpulint:hotpath
func heapPush(h *[]wakeItem, it wakeItem) {
	*h = append(*h, it)
	j := len(*h) - 1
	for j > 0 {
		p := (j - 1) / 2
		if !wakeLess((*h)[j], (*h)[p]) {
			break
		}
		(*h)[j], (*h)[p] = (*h)[p], (*h)[j]
		j = p
	}
}

//gpulint:hotpath
func heapPop(h *[]wakeItem) wakeItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		if l >= n {
			break
		}
		c := l
		if r < n && wakeLess(s[r], s[l]) {
			c = r
		}
		if !wakeLess(s[c], s[j]) {
			break
		}
		s[j], s[c] = s[c], s[j]
		j = c
	}
	return top
}
