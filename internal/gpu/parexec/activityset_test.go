package parexec

import "testing"

// xorshift32 keeps the schedules deterministic across runs and Go versions.
func xs(s uint32) uint32 {
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	return s
}

// TestActivitySetNeverDoubleTicksOrSkips drives an ActivitySet against a
// naive reference model with items entering and leaving the set mid-run:
// every cycle, each item that is runnable must be visited exactly once and
// no parked item may be visited at all. Sharding must not change the visit
// set, only which shard performs it.
func TestActivitySetNeverDoubleTicksOrSkips(t *testing.T) {
	const n = 13
	const cycles = 400
	for _, shards := range []int{1, 2, 5, 13} {
		a := NewActivitySet(n, shards)
		// Reference model: parked[i] says item i is in the wake heap; wake[i]
		// is its pending wake cycle (meaningful only while parked).
		parked := make([]bool, n)
		wake := make([]uint64, n)
		seed := uint32(0x1234)
		visited := make([]int, n)
		for now := uint64(0); now < cycles; now++ {
			// External wakes from the "serial phase": occasionally lower a
			// sleeper's bound, sometimes to a cycle that has already passed.
			seed = xs(seed)
			if seed%5 == 0 {
				i := int(seed>>8) % n
				at := now + uint64(seed>>16)%4 // may be <= now: runnable immediately
				if parked[i] && at < wake[i] {
					wake[i] = at
					a.Wake(i, at)
				}
			}
			for i := range visited {
				visited[i] = 0
			}
			runnable := make([]bool, n)
			for i := 0; i < n; i++ {
				runnable[i] = !parked[i] || wake[i] <= now
			}
			for s := 0; s < shards; s++ {
				a.TickShard(s, now, func(i int) uint64 {
					visited[i]++
					// Deterministic per-(item, cycle) next bound: mostly stay
					// active, sometimes nap, occasionally sleep indefinitely.
					h := xs(uint32(i+1)*2654435761 + uint32(now+1)*40503)
					switch h % 8 {
					case 0, 1, 2, 3:
						parked[i] = false
						return now + 1
					case 4, 5:
						parked[i], wake[i] = true, now+2+uint64(h>>8)%7
						return wake[i]
					case 6:
						parked[i], wake[i] = true, now+20
						return now + 20
					default:
						parked[i], wake[i] = true, NeverWake
						return NeverWake
					}
				})
			}
			for i := 0; i < n; i++ {
				if runnable[i] && visited[i] != 1 {
					t.Fatalf("shards=%d cycle=%d: runnable item %d visited %d times", shards, now, i, visited[i])
				}
				if !runnable[i] && visited[i] != 0 {
					t.Fatalf("shards=%d cycle=%d: parked item %d (wake %d) visited %d times", shards, now, i, wake[i], visited[i])
				}
			}
			// Horizon must never overshoot the earliest true pending wake,
			// and the sleeper count must match the model exactly.
			min := uint64(NeverWake)
			sleeping := 0
			for i := 0; i < n; i++ {
				if parked[i] {
					sleeping++
					if wake[i] < min {
						min = wake[i]
					}
				}
			}
			if h := a.Horizon(); h > min {
				t.Fatalf("shards=%d cycle=%d: Horizon %d > earliest wake %d", shards, now, h, min)
			}
			if got := a.Sleeping(); got != sleeping {
				t.Fatalf("shards=%d cycle=%d: Sleeping() = %d, want %d", shards, now, got, sleeping)
			}
		}
	}
}

// TestActivitySetWakeSemantics pins the Wake edge cases: waking an active
// item is a no-op, waking to a later cycle never postpones, and a wake to
// cycle 0 is clamped (items start active; a zero wake would alias the
// active sentinel).
func TestActivitySetWakeSemantics(t *testing.T) {
	a := NewActivitySet(4, 2)
	park := func(i int, until uint64) {
		a.TickShard(int(a.shardOf[i]), 0, func(j int) uint64 {
			if j == i {
				return until
			}
			return 1
		})
	}
	park(1, 100)
	if got := a.Horizon(); got != 100 {
		t.Fatalf("Horizon = %d, want 100", got)
	}
	a.Wake(1, 200) // later than current bound: must not postpone
	if got := a.Horizon(); got != 100 {
		t.Fatalf("after late Wake: Horizon = %d, want 100", got)
	}
	a.Wake(1, 7)
	if got := a.Horizon(); got != 7 {
		t.Fatalf("after Wake(7): Horizon = %d, want 7", got)
	}
	a.Wake(0, 3) // item 0 is active: no-op
	if got := a.Horizon(); got != 7 {
		t.Fatalf("after waking active item: Horizon = %d, want 7", got)
	}
	a.Wake(1, 0) // clamps to 1
	if got := a.Horizon(); got != 1 {
		t.Fatalf("after Wake(0): Horizon = %d, want 1", got)
	}
	// The re-sleep-to-same-cycle race: item parks to w, is woken, runs, and
	// parks to the same w again while the stale entry is still heaped. The
	// first pop activates it; the duplicate must be discarded, not double-run.
	b := NewActivitySet(1, 1)
	park2 := func(until uint64, now uint64) {
		b.TickShard(0, now, func(int) uint64 { return until })
	}
	park2(10, 0) // sleep until 10
	b.Wake(0, 5)
	visits := 0
	b.TickShard(0, 5, func(int) uint64 { visits++; return 10 }) // re-sleep to 10: duplicate heap entry
	b.TickShard(0, 10, func(int) uint64 { visits++; return NeverWake })
	b.TickShard(0, 11, func(int) uint64 { visits++; return NeverWake })
	if visits != 2 {
		t.Fatalf("duplicate wake entries: %d visits, want 2", visits)
	}
}

// TestActivitySetRunnable checks the pre-barrier estimate counts actives
// plus due sleepers.
func TestActivitySetRunnable(t *testing.T) {
	a := NewActivitySet(6, 3)
	if got := a.Runnable(0); got != 6 {
		t.Fatalf("Runnable(0) = %d, want 6", got)
	}
	// Park everything: 0,1 until cycle 5; 2,3 until cycle 9; 4,5 forever.
	for s := 0; s < 3; s++ {
		a.TickShard(s, 0, func(i int) uint64 {
			switch {
			case i < 2:
				return 5
			case i < 4:
				return 9
			default:
				return NeverWake
			}
		})
	}
	for _, tc := range []struct {
		now  uint64
		want int
	}{{1, 0}, {5, 2}, {8, 2}, {9, 4}} {
		if got := a.Runnable(tc.now); got != tc.want {
			t.Fatalf("Runnable(%d) = %d, want %d", tc.now, got, tc.want)
		}
	}
}
