package gpu

import (
	"testing"

	"gpusched/internal/core"
	"gpusched/internal/isa"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

// expectedInstructions drains every warp program of a workload and counts
// the dynamic instructions the simulator must issue.
func expectedInstructions(t *testing.T, name string) uint64 {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	spec := w.Build(workloads.ScaleTest)
	var total uint64
	var buf isa.WarpInstr
	for cta := 0; cta < spec.NumCTAs(); cta++ {
		for warp := 0; warp < spec.WarpsPerCTA(); warp++ {
			p := spec.Program(cta, warp)
			for p.Next(&buf) {
				total++
			}
		}
	}
	return total
}

// TestInstructionAccounting checks the strongest end-to-end invariant: the
// simulator issues exactly the instructions the generators produce — no
// replays, drops, or double counting — regardless of scheduler.
func TestInstructionAccounting(t *testing.T) {
	for _, name := range []string{"vadd", "spmv", "stencil", "sgemm", "reduce", "histo"} {
		name := name
		t.Run(name, func(t *testing.T) {
			want := expectedInstructions(t, name)
			w, _ := workloads.ByName(name)
			for _, tc := range []struct {
				sched  core.Dispatcher
				policy sm.Policy
			}{
				{core.NewRoundRobin(), sm.PolicyGTO},
				{core.NewAdaptiveLCS(), sm.PolicyGTO},
				{core.NewBCS(), sm.PolicyBAWS},
			} {
				cfg := testConfig()
				cfg.Core.WarpPolicy = tc.policy
				g, err := New(cfg, tc.sched, w.Build(workloads.ScaleTest))
				if err != nil {
					t.Fatal(err)
				}
				r := g.Run()
				if r.TimedOut {
					t.Fatalf("%s timed out", tc.sched.Name())
				}
				if r.InstrIssued != want {
					t.Errorf("%s: issued %d instructions, generators produced %d",
						tc.sched.Name(), r.InstrIssued, want)
				}
			}
		})
	}
}

// TestResponseRoutingManyCores stresses token routing with every core
// hammering the same partitions simultaneously.
func TestResponseRoutingManyCores(t *testing.T) {
	w, _ := workloads.ByName("bfs") // scattered gathers, maximal routing churn
	cfg := testConfig()
	cfg.NumCores = 8
	g, err := New(cfg, core.NewRoundRobin(), w.Build(workloads.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	r := g.Run()
	if r.TimedOut {
		t.Fatal("timed out")
	}
	if int(r.Core.CTAsCompleted) != 24 {
		t.Fatalf("completed %d CTAs, want 24", r.Core.CTAsCompleted)
	}
}

// TestEpochHookCadence verifies the tracing hook fires exactly once per
// epoch boundary.
func TestEpochHookCadence(t *testing.T) {
	w, _ := workloads.ByName("vadd")
	g, err := New(testConfig(), core.NewRoundRobin(), w.Build(workloads.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	var fired []uint64
	g.SetEpochHook(500, func(now uint64) { fired = append(fired, now) })
	r := g.Run()
	if len(fired) == 0 {
		t.Fatal("hook never fired")
	}
	for i, at := range fired {
		if at != uint64(i)*500 {
			t.Fatalf("firing %d at cycle %d, want %d", i, at, i*500)
		}
	}
	if want := r.Cycles/500 + 1; uint64(len(fired)) != want {
		t.Fatalf("fired %d times over %d cycles, want %d", len(fired), r.Cycles, want)
	}
}

// TestEpochHookZeroDefaults verifies the 0 epoch falls back sanely.
func TestEpochHookZeroDefaults(t *testing.T) {
	w, _ := workloads.ByName("vadd")
	g, err := New(testConfig(), core.NewRoundRobin(), w.Build(workloads.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	g.SetEpochHook(0, func(uint64) { n++ })
	g.Run()
	if n == 0 {
		t.Fatal("default-epoch hook never fired")
	}
}

// TestDeterminismAcrossSchedulers: same scheduler twice on a divergent
// atomic-heavy workload must agree bit-for-bit in every counter.
func TestDeterminismAtomicWorkload(t *testing.T) {
	w, _ := workloads.ByName("histo")
	run := func() Result {
		g, err := New(testConfig(), core.NewBCS(), w.Build(workloads.ScaleTest))
		if err != nil {
			t.Fatal(err)
		}
		return g.Run()
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.DRAM != b.DRAM || a.L2 != b.L2 {
		t.Fatalf("replay diverged: %+v vs %+v", a.DRAM, b.DRAM)
	}
}
