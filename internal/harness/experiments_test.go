package harness

import (
	"io"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsTinyScale runs the entire registry end to end at the
// smallest scale — the harness's integration test. Besides not crashing,
// every table must have coherent geometry and parseable numeric cells.
func TestAllExperimentsTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~200 small simulations")
	}
	h := tinyHarness()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table, err := e.Run(h)
			if err != nil {
				t.Fatal(err)
			}
			if table.ID != e.ID {
				t.Errorf("table ID %q, want %q", table.ID, e.ID)
			}
			if len(table.Headers) == 0 || len(table.Rows) == 0 {
				t.Fatalf("empty table %q", e.ID)
			}
			for i, row := range table.Rows {
				if len(row) > len(table.Headers) {
					t.Errorf("row %d has %d cells for %d headers", i, len(row), len(table.Headers))
				}
			}
			// Render and CSV must not panic and must include the id/title.
			table.Render(io.Discard)
			var sb strings.Builder
			table.CSV(&sb)
			if !strings.Contains(sb.String(), table.Headers[0]) {
				t.Error("CSV lost the header row")
			}
		})
	}
}

// TestSpeedupColumnsArePositive sanity-checks the figures that report
// speedups: every speedup cell must parse as a positive float in a sane
// band (0.2x .. 5x for this simulator).
func TestSpeedupColumnsArePositive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs small simulations")
	}
	h := tinyHarness()
	fig9, err := h.Fig9BAWS()
	if err != nil {
		t.Fatal(err)
	}
	fig12, err := h.Fig12WarpSched()
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		table *Table
		cols  []int
	}{
		{fig9, []int{1, 2}},
		{fig12, []int{1, 2}},
	}
	for _, c := range checks {
		for _, row := range c.table.Rows {
			for _, col := range c.cols {
				if col >= len(row) || row[col] == "" {
					continue
				}
				v, err := strconv.ParseFloat(row[col], 64)
				if err != nil {
					t.Errorf("%s: cell %q not numeric", c.table.ID, row[col])
					continue
				}
				if v < 0.2 || v > 5 {
					t.Errorf("%s: speedup %v out of sane band", c.table.ID, v)
				}
			}
		}
	}
}

func TestOracleNeverBelowOne(t *testing.T) {
	if testing.Short() {
		t.Skip("runs small simulations")
	}
	h := tinyHarness()
	// The oracle includes the occupancy maximum itself, so its speedup is
	// >= 1 by construction.
	r := h.resolve()
	for _, n := range []string{"vadd", "spmv"} {
		best, lim := h.oracle(r, n)
		if r.err != nil {
			t.Fatal(r.err)
		}
		if best < 0.999 {
			t.Errorf("%s oracle %.3f < 1", n, best)
		}
		if lim < 1 || lim > 8 {
			t.Errorf("%s oracle limit %d", n, lim)
		}
	}
}
