package harness

// Experiment couples an id with its generator. Run reports a wrapped
// error (unknown workload, build failure, simulation timeout) instead of
// panicking; callers decide whether one failure aborts the batch.
type Experiment struct {
	ID   string
	Desc string
	Run  func(h *Harness) (*Table, error)
}

// Experiments lists every reproduced table and figure in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "simulated GPU configuration", (*Harness).Table1Config},
		{"table2", "benchmark characteristics", (*Harness).Table2Characteristics},
		{"fig3", "IPC vs CTA limit (motivation)", (*Harness).Fig3CTASweep},
		{"fig4", "per-CTA issue share under GTO (motivation)", (*Harness).Fig4IssueShare},
		{"fig5", "LCS speedup vs baseline and oracle", (*Harness).Fig5LCS},
		{"fig6", "memory system under LCS throttling", (*Harness).Fig6LCSMemory},
		{"fig7", "chosen CTA counts vs oracle", (*Harness).Fig7LCSChoice},
		{"fig8", "BCS+BAWS speedup on locality workloads", (*Harness).Fig8BCS},
		{"fig9", "BAWS warp-scheduler ablation", (*Harness).Fig9BAWS},
		{"fig10", "concurrent kernel execution modes", (*Harness).Fig10MCKE},
		{"fig11", "sensitivity: gang width, L1 capacity", (*Harness).Fig11Sensitivity},
		{"fig12", "warp-scheduler interaction", (*Harness).Fig12WarpSched},
		{"fig13", "throttling vs DYNCTA prior work", (*Harness).Fig13PriorWork},
		{"fig14", "drain preemption: priority mixes, ANTT/STP", (*Harness).Fig14Preemption},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
