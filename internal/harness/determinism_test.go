package harness

import (
	"bytes"
	"runtime"
	"testing"

	"gpusched/internal/workloads"
)

// renderExperiment runs one experiment on a fresh harness and returns its
// rendered table.
func renderExperiment(t *testing.T, e Experiment, opt Options) []byte {
	t.Helper()
	tab, err := e.Run(New(opt))
	if err != nil {
		t.Fatalf("%s (noff=%t): %v", e.ID, opt.NoFastForward, err)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	return buf.Bytes()
}

// TestGoldenFastForwardDeterminism is the gate on the event-horizon
// fast-forward: every experiment, run with the fast-forward active and with
// it force-disabled, must render byte-identical tables. The skip logic is
// only allowed to elide cycles it can prove change nothing — any divergence
// in Cycles, InstrIssued, stall attribution, or per-kernel stats shows up
// here as a table diff.
func TestGoldenFastForwardDeterminism(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			fast := renderExperiment(t, e, Options{Scale: workloads.ScaleTest})
			ref := renderExperiment(t, e, Options{Scale: workloads.ScaleTest, NoFastForward: true})
			if !bytes.Equal(fast, ref) {
				t.Errorf("fast-forward changed %s:\n--- fast-forward ---\n%s--- reference ---\n%s",
					e.ID, fast, ref)
			}
		})
	}
}

// TestGoldenTickWorkerDeterminism is the gate on the two-phase parallel
// tick and the activity set riding on it: every experiment, run with the
// serial reference path (TickWorkers=1, default granule) and with parallel
// shard counts crossed against parking granules and the fast-forward
// toggle, must render byte-identical tables. The worker counts cross the
// SM count (7 shards over 15 cores, GOMAXPROCS whatever the host has) so
// uneven shard boundaries are exercised; the granules cover park-eagerly
// (1), the default (4), and park-reluctantly (16); the NoFastForward combo
// pins that the reference loop is untouched by granule plumbing.
func TestGoldenTickWorkerDeterminism(t *testing.T) {
	combos := []Options{
		{TickWorkers: 2, TickGranule: 1},
		{TickWorkers: 7, TickGranule: 4},
		{TickWorkers: runtime.GOMAXPROCS(0), TickGranule: 16},
		{TickWorkers: 7, TickGranule: 16, NoFastForward: true},
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			serial := renderExperiment(t, e, Options{Scale: workloads.ScaleTest, TickWorkers: 1})
			for _, c := range combos {
				c.Scale = workloads.ScaleTest
				par := renderExperiment(t, e, c)
				if !bytes.Equal(serial, par) {
					t.Errorf("tick workers=%d granule=%d noff=%t changed %s:\n--- workers=1 ---\n%s--- variant ---\n%s",
						c.TickWorkers, c.TickGranule, c.NoFastForward, e.ID, serial, par)
				}
			}
		})
	}
}

// TestGoldenMemShardDeterminism is the gate on the phase-A2 sharded memory
// tick and quiet-window cycle batching: one experiment, rendered with the
// fully serial unbatched configuration (TickWorkers=1, MemShards=1,
// BatchWindow=1), must be byte-identical under every shard/window cut. The
// combos cross shard counts (2, one per partition, and more shards than
// partitions — trailing shards own nothing), batch windows (off, default,
// explicit beyond the crossbar clamp), and the fast-forward toggle (batching
// is structurally off without fast-forward sleep proofs). One experiment,
// not all: the full cross is covered cheaply in internal/gpu, and this
// package's race-mode budget is already dominated by the worker sweep.
func TestGoldenMemShardDeterminism(t *testing.T) {
	e, ok := ByID("fig5")
	if !ok {
		t.Fatal("fig5 experiment missing")
	}
	serial := renderExperiment(t, e, Options{
		Scale: workloads.ScaleTest, TickWorkers: 1, MemShards: 1, BatchWindow: 1,
	})
	for _, c := range []Options{
		{TickWorkers: 2, MemShards: 2, BatchWindow: 1},
		{TickWorkers: 7, MemShards: 6},
		{TickWorkers: 2, MemShards: 8, BatchWindow: 64},
		{TickWorkers: 7, MemShards: 6, NoFastForward: true},
	} {
		c.Scale = workloads.ScaleTest
		got := renderExperiment(t, e, c)
		if !bytes.Equal(serial, got) {
			t.Errorf("mem shards=%d window=%d workers=%d noff=%t changed fig5:\n--- serial ---\n%s--- variant ---\n%s",
				c.MemShards, c.BatchWindow, c.TickWorkers, c.NoFastForward, serial, got)
		}
	}
}

// TestGoldenDeterminismAcrossGOMAXPROCS pins down that worker parallelism
// never leaks into results: one experiment run on a single-threaded
// scheduler must match the default parallel run bit for bit.
func TestGoldenDeterminismAcrossGOMAXPROCS(t *testing.T) {
	e, ok := ByID("fig5")
	if !ok {
		t.Fatal("fig5 experiment missing")
	}
	wide := renderExperiment(t, e, Options{Scale: workloads.ScaleTest})
	prev := runtime.GOMAXPROCS(1)
	narrow := renderExperiment(t, e, Options{Scale: workloads.ScaleTest})
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(wide, narrow) {
		t.Errorf("GOMAXPROCS changed fig5:\n--- parallel ---\n%s--- serial ---\n%s", wide, narrow)
	}
}
