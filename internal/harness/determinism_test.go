package harness

import (
	"bytes"
	"runtime"
	"testing"

	"gpusched/internal/workloads"
)

// renderExperiment runs one experiment on a fresh harness and returns its
// rendered table.
func renderExperiment(t *testing.T, e Experiment, opt Options) []byte {
	t.Helper()
	tab, err := e.Run(New(opt))
	if err != nil {
		t.Fatalf("%s (noff=%t): %v", e.ID, opt.NoFastForward, err)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	return buf.Bytes()
}

// TestGoldenFastForwardDeterminism is the gate on the event-horizon
// fast-forward: every experiment, run with the fast-forward active and with
// it force-disabled, must render byte-identical tables. The skip logic is
// only allowed to elide cycles it can prove change nothing — any divergence
// in Cycles, InstrIssued, stall attribution, or per-kernel stats shows up
// here as a table diff.
func TestGoldenFastForwardDeterminism(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			fast := renderExperiment(t, e, Options{Scale: workloads.ScaleTest})
			ref := renderExperiment(t, e, Options{Scale: workloads.ScaleTest, NoFastForward: true})
			if !bytes.Equal(fast, ref) {
				t.Errorf("fast-forward changed %s:\n--- fast-forward ---\n%s--- reference ---\n%s",
					e.ID, fast, ref)
			}
		})
	}
}

// TestGoldenTickWorkerDeterminism is the gate on the two-phase parallel
// tick: every experiment, run with the serial reference path (TickWorkers=1)
// and with explicitly parallel shard counts, must render byte-identical
// tables. The worker counts cross the SM count (7 shards over 15 cores,
// GOMAXPROCS whatever the host has) so uneven shard boundaries are
// exercised, not just the balanced split.
func TestGoldenTickWorkerDeterminism(t *testing.T) {
	counts := []int{2, 7, runtime.GOMAXPROCS(0)}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			serial := renderExperiment(t, e, Options{Scale: workloads.ScaleTest, TickWorkers: 1})
			for _, n := range counts {
				par := renderExperiment(t, e, Options{Scale: workloads.ScaleTest, TickWorkers: n})
				if !bytes.Equal(serial, par) {
					t.Errorf("tick workers=%d changed %s:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
						n, e.ID, serial, n, par)
				}
			}
		})
	}
}

// TestGoldenDeterminismAcrossGOMAXPROCS pins down that worker parallelism
// never leaks into results: one experiment run on a single-threaded
// scheduler must match the default parallel run bit for bit.
func TestGoldenDeterminismAcrossGOMAXPROCS(t *testing.T) {
	e, ok := ByID("fig5")
	if !ok {
		t.Fatal("fig5 experiment missing")
	}
	wide := renderExperiment(t, e, Options{Scale: workloads.ScaleTest})
	prev := runtime.GOMAXPROCS(1)
	narrow := renderExperiment(t, e, Options{Scale: workloads.ScaleTest})
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(wide, narrow) {
		t.Errorf("GOMAXPROCS changed fig5:\n--- parallel ---\n%s--- serial ---\n%s", wide, narrow)
	}
}
