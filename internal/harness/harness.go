// Package harness regenerates the paper's tables and figures. Each
// experiment is a function from Options to a Table; cmd/paperbench renders
// them as aligned text and CSV, and bench_test.go wraps each as a Go
// benchmark. All simulations flow through the internal/sim service layer,
// which memoizes and deduplicates runs across experiments (the oracle
// sweep feeds three figures but pays for its simulations once), executes
// independent runs on all cores, and can persist results on disk so
// repeated invocations skip completed work.
package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"gpusched/internal/sim"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

// Options configures a harness run.
type Options struct {
	// Scale selects the problem size (ScaleSmall for quick runs,
	// ScaleFull for the paper experiments).
	Scale workloads.Scale
	// Cores overrides the SM count (0 = the 15-SM default).
	Cores int
	// Progress, when non-nil, receives one line per completed simulation.
	Progress io.Writer
	// CacheDir, when non-empty, persists simulation results on disk
	// (conventionally results/.simcache) so repeated runs skip them.
	CacheDir string
	// NoFastForward forces every simulation onto the reference
	// cycle-by-cycle loop (see gpu.Config.DisableFastForward). The
	// determinism tests run every experiment both ways and require
	// identical tables.
	NoFastForward bool
	// TickWorkers is the per-simulation worker count for the two-phase
	// parallel tick (0 = GOMAXPROCS, 1 = serial reference). Execution
	// only: the golden determinism tests require identical tables for
	// every value.
	TickWorkers int
	// TickGranule is the per-SM parking threshold for the activity-set tick
	// (0 = gpu.DefaultGranule). Execution only, like TickWorkers: the golden
	// determinism tests sweep granules and require identical tables.
	TickGranule uint64
	// MemShards is the memory system's phase-A2 shard count (0 = derived
	// from TickWorkers, 1 = serial memory tick). Execution only, like
	// TickWorkers: the golden determinism tests sweep shard counts and
	// require identical tables.
	MemShards int
	// BatchWindow caps the quiet-window cycle batch (0 = the default, 1 =
	// batching off). Execution only, like TickWorkers: the golden
	// determinism tests sweep windows and require identical tables.
	BatchWindow uint64
}

// Table is one rendered experiment.
type Table struct {
	// ID is the experiment identifier ("fig5", "table2", ...).
	ID string
	// Title describes what the paper's counterpart shows.
	Title string
	// Headers and Rows are the tabular payload.
	Headers []string
	Rows    [][]string
	// Notes carry interpretation (who wins, by how much) for
	// EXPERIMENTS.md.
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	rows := append([][]string{t.Headers}, t.Rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Harness binds the experiment generators to a simulation service.
type Harness struct {
	opt Options
	svc *sim.Service
}

// New builds a harness.
func New(opt Options) *Harness {
	return &Harness{
		opt: opt,
		svc: sim.NewService(sim.Options{
			Progress:    opt.Progress,
			CacheDir:    opt.CacheDir,
			TickWorkers: opt.TickWorkers,
			TickGranule: opt.TickGranule,
			MemShards:   opt.MemShards,
			BatchWindow: opt.BatchWindow,
		}),
	}
}

// Service exposes the underlying simulation service (request statistics).
func (h *Harness) Service() *sim.Service { return h.svc }

// single builds a one-workload request at the harness's scale/core count.
func (h *Harness) single(name string, sched sim.SchedSpec, policy sm.Policy) sim.Request {
	return h.multi([]string{name}, sched, policy)
}

// multi builds a multi-kernel request at the harness's scale/core count.
func (h *Harness) multi(names []string, sched sim.SchedSpec, policy sm.Policy) sim.Request {
	return sim.Request{
		Workloads:     names,
		Sched:         sched,
		Warp:          policy,
		Scale:         h.opt.Scale,
		Cores:         h.opt.Cores,
		NoFastForward: h.opt.NoFastForward,
	}
}

// resolver threads one experiment's simulation lookups through the
// service, capturing the first error so the table-building code stays
// linear. After any failure, get returns zero outcomes and the experiment
// surfaces r.err to its caller.
type resolver struct {
	h   *Harness
	err error
}

func (h *Harness) resolve() *resolver { return &resolver{h: h} }

// get executes (or recalls) one simulation.
func (r *resolver) get(req sim.Request) sim.Outcome {
	if r.err != nil {
		return sim.Outcome{}
	}
	out, err := r.h.svc.Run(context.Background(), req)
	if err != nil {
		r.err = err
		return sim.Outcome{}
	}
	return out
}

// warm executes all missing requests concurrently before the sequential
// table-assembly reads, so independent simulations use every core.
func (r *resolver) warm(reqs []sim.Request) {
	if r.err != nil {
		return
	}
	if err := r.h.svc.RunAll(context.Background(), reqs); err != nil {
		r.err = err
	}
}

// maxResident returns the occupancy-maximal CTAs/SM for a workload.
func (h *Harness) maxResident(name string) int {
	w, ok := workloads.ByName(name)
	if !ok {
		return 0
	}
	n, _ := sm.DefaultConfig().Limits.MaxResident(w.Build(h.opt.Scale))
	return n
}

// lowQuartile returns the 25th-percentile positive limit (the conservative
// consensus the mixed-CKE allocator uses).
func lowQuartile(limits []int) int {
	var vs []int
	for _, v := range limits {
		if v > 0 {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return 0
	}
	sort.Ints(vs)
	return vs[len(vs)/4]
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// speedup returns base/cur as a ratio (0 when cur is degenerate).
func speedup(base, cur uint64) float64 {
	if cur == 0 {
		return 0
	}
	return float64(base) / float64(cur)
}
