// Package harness regenerates the paper's tables and figures. Each
// experiment is a function from Options to a Table; cmd/paperbench renders
// them as aligned text and CSV, and bench_test.go wraps each as a Go
// benchmark. Simulation results are memoized per harness so experiments
// that share runs (the oracle sweep feeds three figures) pay for them once,
// and independent runs execute on all cores.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"gpusched/internal/core"
	"gpusched/internal/gpu"
	"gpusched/internal/kernel"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

// Options configures a harness run.
type Options struct {
	// Scale selects the problem size (ScaleSmall for quick runs,
	// ScaleFull for the paper experiments).
	Scale workloads.Scale
	// Cores overrides the SM count (0 = the 15-SM default).
	Cores int
	// Progress, when non-nil, receives one line per completed simulation.
	Progress io.Writer
}

// Table is one rendered experiment.
type Table struct {
	// ID is the experiment identifier ("fig5", "table2", ...).
	ID string
	// Title describes what the paper's counterpart shows.
	Title string
	// Headers and Rows are the tabular payload.
	Headers []string
	Rows    [][]string
	// Notes carry interpretation (who wins, by how much) for
	// EXPERIMENTS.md.
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	rows := append([][]string{t.Headers}, t.Rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Harness memoizes simulation runs across experiments.
type Harness struct {
	opt  Options
	mu   sync.Mutex
	memo map[string]runOut
}

// New builds a harness.
func New(opt Options) *Harness {
	return &Harness{opt: opt, memo: make(map[string]runOut)}
}

// runSpec is one simulation request.
type runSpec struct {
	// names are the workloads to launch, in order.
	names []string
	// sched encodes the CTA scheduler: "base", "lcs", "adaptive",
	// "bcs:N", "static:N", "seq", "spatial", "mixed:N".
	sched string
	// policy is the warp scheduler.
	policy sm.Policy
	// l1Bytes optionally overrides the L1 capacity (sensitivity study).
	l1Bytes int
	// fcfs selects plain FCFS DRAM scheduling (sensitivity study).
	fcfs bool
}

func (s runSpec) key() string {
	return fmt.Sprintf("%s|%s|%v|%d|%v", strings.Join(s.names, "+"), s.sched, s.policy, s.l1Bytes, s.fcfs)
}

// runOut couples the simulation result with scheduler-internal state.
type runOut struct {
	res gpu.Result
	// limits holds LCS-family per-core decisions (nil otherwise).
	limits []int
}

func (h *Harness) dispatcher(sched string) core.Dispatcher {
	parts := strings.SplitN(sched, ":", 2)
	arg := 0
	if len(parts) == 2 {
		fmt.Sscanf(parts[1], "%d", &arg)
	}
	switch parts[0] {
	case "lcs":
		return core.NewLCS()
	case "adaptive":
		return core.NewAdaptiveLCS()
	case "dyncta":
		return core.NewDynCTA()
	case "bcs":
		b := core.NewBCS()
		if arg > 0 {
			b.BlockSize = arg
		}
		return b
	case "static":
		return core.NewLimited(arg)
	case "seq":
		return core.NewSequential()
	case "spatial":
		return core.NewSpatial()
	case "mixed":
		return core.NewMixed(arg)
	default:
		return core.NewRoundRobin()
	}
}

// run executes (or recalls) one simulation.
func (h *Harness) run(spec runSpec) runOut {
	key := spec.key()
	h.mu.Lock()
	if out, ok := h.memo[key]; ok {
		h.mu.Unlock()
		return out
	}
	h.mu.Unlock()

	cfg := gpu.DefaultConfig()
	if h.opt.Cores > 0 {
		cfg.NumCores = h.opt.Cores
	}
	cfg.Core.WarpPolicy = spec.policy
	if spec.l1Bytes > 0 {
		cfg.Mem.L1Bytes = spec.l1Bytes
	}
	cfg.Mem.DRAMSchedFCFS = spec.fcfs
	d := h.dispatcher(spec.sched)
	ks := h.buildKernels(spec.names)
	g, err := gpu.New(cfg, d, ks...)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	res := g.Run()
	if res.TimedOut {
		panic(fmt.Sprintf("harness: %s timed out after %d cycles", key, res.Cycles))
	}
	out := runOut{res: res}
	switch dd := d.(type) {
	case *core.LCS:
		out.limits = append([]int(nil), dd.Limits()...)
	case *core.AdaptiveLCS:
		out.limits = append([]int(nil), dd.Limits()...)
	case *core.DynCTA:
		out.limits = append([]int(nil), dd.Limits()...)
	}
	h.mu.Lock()
	h.memo[key] = out
	h.mu.Unlock()
	if h.opt.Progress != nil {
		fmt.Fprintf(h.opt.Progress, "ran %-40s %10d cycles\n", key, res.Cycles)
	}
	return out
}

// prefetch executes all missing specs concurrently.
func (h *Harness) prefetch(specs []runSpec) {
	workers := runtime.NumCPU()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan runSpec)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				h.run(s)
			}
		}()
	}
	for _, s := range specs {
		ch <- s
	}
	close(ch)
	wg.Wait()
}

func (h *Harness) buildKernels(names []string) []*kernel.Spec {
	out := make([]*kernel.Spec, len(names))
	for i, n := range names {
		w, ok := workloads.ByName(n)
		if !ok {
			panic("harness: unknown workload " + n)
		}
		out[i] = w.Build(h.opt.Scale)
	}
	return out
}

// maxResident returns the occupancy-maximal CTAs/SM for a workload.
func (h *Harness) maxResident(name string) int {
	w, _ := workloads.ByName(name)
	n, _ := sm.DefaultConfig().Limits.MaxResident(w.Build(h.opt.Scale))
	return n
}

// lowQuartile returns the 25th-percentile positive limit (the conservative
// consensus the mixed-CKE allocator uses).
func lowQuartile(limits []int) int {
	var vs []int
	for _, v := range limits {
		if v > 0 {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return 0
	}
	sort.Ints(vs)
	return vs[len(vs)/4]
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

func speedup(base, new uint64) float64 {
	if new == 0 {
		return 0
	}
	return float64(base) / float64(new)
}
