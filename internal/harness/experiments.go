package harness

import (
	"fmt"
	"sort"

	"gpusched/internal/gpu"
	"gpusched/internal/mem"
	"gpusched/internal/sm"
	"gpusched/internal/stats"
	"gpusched/internal/workloads"
)

// fig3Set is the representative subset the motivation sweep plots.
var fig3Set = []string{"spmv", "conv2d", "stencil", "sgemm", "vadd", "bfs"}

// memSet is the memory-intensive subset figure 6 and the fig5 subset
// geomean use.
var memSet = []string{"spmv", "conv2d", "stencil", "hotspot", "vadd", "nn", "streamcluster"}

// localitySet is the BCS-candidate subset (figures 8 and 9).
var localitySet = []string{"stencil", "hotspot", "conv2d", "pathfinder", "srad", "sgemm"}

// ckePairs are the (memory-or-cache-bound, compute-bound) kernel pairs of
// the mixed concurrent kernel execution study.
var ckePairs = [][2]string{
	{"spmv", "blackscholes"},
	{"spmv", "kmeans"},
	{"conv2d", "blackscholes"},
	{"stencil", "kmeans"},
	{"streamcluster", "dct8x8"},
	{"nn", "sgemm"},
}

// Table1Config reports the simulated GPU configuration [reconstructed:
// Fermi/GTX480-class, the standard HPCA'14 GPGPU-Sim setup].
func (h *Harness) Table1Config() *Table {
	g := gpu.DefaultConfig()
	m := mem.DefaultConfig()
	c := sm.DefaultConfig()
	rows := [][]string{
		{"SMs (cores)", fmt.Sprint(g.NumCores)},
		{"Warp size", "32"},
		{"Warp schedulers / SM", fmt.Sprint(c.NumSchedulers)},
		{"Max threads / SM", fmt.Sprint(c.Limits.MaxThreads)},
		{"Max CTAs / SM", fmt.Sprint(c.Limits.MaxCTAs)},
		{"Max warps / SM", fmt.Sprint(c.Limits.MaxWarps)},
		{"Registers / SM", fmt.Sprint(c.Limits.Registers)},
		{"Shared memory / SM", fmt.Sprintf("%d KB", c.Limits.SharedMemBytes/1024)},
		{"ALU result latency", fmt.Sprintf("%d cycles", c.ALULatency)},
		{"SFU latency / interval", fmt.Sprintf("%d / %d cycles", c.SFULatency, c.SFUInterval)},
		{"L1D / SM", fmt.Sprintf("%d KB, %d-way, %dB lines, %d MSHRs", m.L1Bytes/1024, m.L1Ways, m.LineBytes, m.L1MSHREntries)},
		{"L2 total", fmt.Sprintf("%d KB in %d partitions, %d-way", m.L2BytesPerPartition*m.Partitions/1024, m.Partitions, m.L2Ways)},
		{"Interconnect", fmt.Sprintf("crossbar, %d-cycle latency", m.XbarLatency)},
		{"DRAM", fmt.Sprintf("%d channels, FR-FCFS, %d banks, %dB rows", m.Partitions, m.DRAMBanks, m.DRAMRowBytes)},
		{"DRAM timing (CAS/act/burst)", fmt.Sprintf("%d/%d/%d cycles", m.DRAMtCAS, m.DRAMtRowExtra, m.DRAMtBurst)},
	}
	return &Table{
		ID: "table1", Title: "Simulated GPU configuration",
		Headers: []string{"parameter", "value"},
		Rows:    rows,
	}
}

// Table2Characteristics reports the benchmark suite: shape, occupancy, and
// measured memory character under the baseline.
func (h *Harness) Table2Characteristics() *Table {
	var specs []runSpec
	for _, w := range workloads.All() {
		specs = append(specs, runSpec{names: []string{w.Name}, sched: "base", policy: sm.PolicyGTO})
	}
	h.prefetch(specs)
	t := &Table{
		ID: "table2", Title: "Benchmark characteristics",
		Headers: []string{"workload", "modeled on", "class", "CTAs", "thr/CTA", "max CTA/SM", "bound-by", "IPC", "L1 hit", "inter-CTA"},
	}
	for _, w := range workloads.All() {
		spec := w.Build(h.opt.Scale)
		maxRes, binding := sm.DefaultConfig().Limits.MaxResident(spec)
		r := h.run(runSpec{names: []string{w.Name}, sched: "base", policy: sm.PolicyGTO}).res
		loc := ""
		if w.InterCTALocality {
			loc = "yes"
		}
		t.Rows = append(t.Rows, []string{
			w.Name, w.ModeledOn, string(w.Class),
			fmt.Sprint(spec.NumCTAs()), fmt.Sprint(spec.ThreadsPerCTA()),
			fmt.Sprint(maxRes), binding,
			fmt.Sprintf("%.2f", r.IPC), pct(r.L1.HitRate()), loc,
		})
	}
	return t
}

// Fig3CTASweep is the motivation figure: normalized IPC as the per-SM CTA
// limit sweeps from 1 to the occupancy maximum. The paper's observation —
// the maximum CTA count does not maximize performance — appears as curves
// peaking below the right edge.
func (h *Harness) Fig3CTASweep() *Table {
	var specs []runSpec
	for _, name := range fig3Set {
		for lim := 1; lim <= h.maxResident(name); lim++ {
			specs = append(specs, runSpec{names: []string{name}, sched: fmt.Sprintf("static:%d", lim), policy: sm.PolicyGTO})
		}
	}
	h.prefetch(specs)
	t := &Table{
		ID: "fig3", Title: "Normalized IPC vs. CTAs-per-SM limit (GTO)",
		Headers: []string{"workload", "1", "2", "3", "4", "5", "6", "7", "8", "best@"},
	}
	for _, name := range fig3Set {
		maxRes := h.maxResident(name)
		baseCycles := h.run(runSpec{names: []string{name}, sched: fmt.Sprintf("static:%d", maxRes), policy: sm.PolicyGTO}).res.Cycles
		row := []string{name}
		best, bestLim := 0.0, 0
		for lim := 1; lim <= 8; lim++ {
			if lim > maxRes {
				row = append(row, "-")
				continue
			}
			r := h.run(runSpec{names: []string{name}, sched: fmt.Sprintf("static:%d", lim), policy: sm.PolicyGTO}).res
			norm := speedup(baseCycles, r.Cycles)
			if norm > best {
				best, bestLim = norm, lim
			}
			row = append(row, fmt.Sprintf("%.2f", norm))
		}
		row = append(row, fmt.Sprintf("%d (%.2fx)", bestLim, best))
		t.Rows = append(t.Rows, row)
		if bestLim < maxRes {
			t.Notes = append(t.Notes, fmt.Sprintf("%s peaks at %d of %d CTAs/SM (%.0f%% over max occupancy)", name, bestLim, maxRes, (best-1)*100))
		}
	}
	return t
}

// Fig4IssueShare shows the per-CTA issued-instruction share on core 0 when
// its first CTA completes — the histogram LCS reads. GTO concentrates issue
// on older CTAs; the total/greedy ratio is the LCS decision.
func (h *Harness) Fig4IssueShare() *Table {
	t := &Table{
		ID: "fig4", Title: "Per-CTA issue share at sampling-epoch end (GTO, core 0)",
		Headers: []string{"workload", "shares oldest..youngest (%)", "total/greedy", "LCS nOpt"},
	}
	for _, name := range []string{"sgemm", "blackscholes", "spmv", "stencil", "vadd", "bfs"} {
		hist, ratio := h.issueHistogram(name)
		if len(hist) == 0 {
			continue
		}
		total := 0.0
		for _, v := range hist {
			total += v
		}
		parts := ""
		for i, v := range hist {
			if i > 0 {
				parts += " "
			}
			parts += fmt.Sprintf("%.0f", 100*v/total)
		}
		nOpt := int(ratio + 0.5)
		if nOpt > len(hist) {
			nOpt = len(hist)
		}
		t.Rows = append(t.Rows, []string{name, parts, fmt.Sprintf("%.2f", ratio), fmt.Sprint(nOpt)})
	}
	t.Notes = append(t.Notes,
		"compute-bound kernels concentrate issue in the oldest CTAs (small ratio);",
		"latency-bound kernels spread issue almost evenly (ratio near occupancy)")
	return t
}

// issueHistogram runs a workload under the baseline and captures core 0's
// per-CTA issue counts at its first CTA completion (not memoized: needs an
// observer).
func (h *Harness) issueHistogram(name string) ([]float64, float64) {
	cfg := gpu.DefaultConfig()
	if h.opt.Cores > 0 {
		cfg.NumCores = h.opt.Cores
	}
	cfg.Core.WarpPolicy = sm.PolicyGTO
	g, err := gpu.New(cfg, h.dispatcher("base"), h.buildKernels([]string{name})...)
	if err != nil {
		panic(err)
	}
	var hist []float64
	done := false
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		if done || coreID != 0 {
			return
		}
		done = true
		hist = append(hist, float64(cta.Issued))
		c := g.Core(coreID)
		var rest []float64
		for _, r := range c.CTAs() {
			rest = append(rest, float64(r.Issued))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(rest)))
		hist = append(hist, rest...)
	})
	g.Run()
	if len(hist) == 0 {
		return nil, 0
	}
	total := 0.0
	for _, v := range hist {
		total += v
	}
	return hist, total / hist[0]
}

// Fig5LCS is the headline LCS figure: speedup over the max-occupancy GTO
// baseline for LCS, the adaptive extension, and the oracle static limit.
func (h *Harness) Fig5LCS() *Table {
	names := workloads.Names()
	var specs []runSpec
	for _, n := range names {
		specs = append(specs,
			runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "lcs", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "adaptive", policy: sm.PolicyGTO},
		)
		for lim := 1; lim <= h.maxResident(n); lim++ {
			specs = append(specs, runSpec{names: []string{n}, sched: fmt.Sprintf("static:%d", lim), policy: sm.PolicyGTO})
		}
	}
	h.prefetch(specs)
	t := &Table{
		ID: "fig5", Title: "LCS speedup over max-occupancy GTO baseline",
		Headers: []string{"workload", "LCS", "LCS-adaptive", "oracle static", "oracle limit"},
	}
	var lcsAll, adAll, orAll []float64
	var lcsMem, adMem, orMem []float64
	inMemSet := map[string]bool{}
	for _, n := range memSet {
		inMemSet[n] = true
	}
	for _, n := range names {
		base := h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO}).res.Cycles
		lcs := speedup(base, h.run(runSpec{names: []string{n}, sched: "lcs", policy: sm.PolicyGTO}).res.Cycles)
		ad := speedup(base, h.run(runSpec{names: []string{n}, sched: "adaptive", policy: sm.PolicyGTO}).res.Cycles)
		orBest, orLim := h.oracle(n)
		lcsAll, adAll, orAll = append(lcsAll, lcs), append(adAll, ad), append(orAll, orBest)
		if inMemSet[n] {
			lcsMem, adMem, orMem = append(lcsMem, lcs), append(adMem, ad), append(orMem, orBest)
		}
		t.Rows = append(t.Rows, []string{
			n, fmt.Sprintf("%.3f", lcs), fmt.Sprintf("%.3f", ad),
			fmt.Sprintf("%.3f", orBest), fmt.Sprint(orLim),
		})
	}
	t.Rows = append(t.Rows, []string{
		"geomean (mem-intensive)",
		fmt.Sprintf("%.3f", stats.GeoMean(lcsMem)),
		fmt.Sprintf("%.3f", stats.GeoMean(adMem)),
		fmt.Sprintf("%.3f", stats.GeoMean(orMem)),
		"",
	})
	t.Rows = append(t.Rows, []string{
		"geomean",
		fmt.Sprintf("%.3f", stats.GeoMean(lcsAll)),
		fmt.Sprintf("%.3f", stats.GeoMean(adAll)),
		fmt.Sprintf("%.3f", stats.GeoMean(orAll)),
		"",
	})
	return t
}

// oracle returns the best static-limit speedup for a workload and its limit.
func (h *Harness) oracle(name string) (float64, int) {
	base := h.run(runSpec{names: []string{name}, sched: "base", policy: sm.PolicyGTO}).res.Cycles
	best, bestLim := 0.0, 0
	for lim := 1; lim <= h.maxResident(name); lim++ {
		r := h.run(runSpec{names: []string{name}, sched: fmt.Sprintf("static:%d", lim), policy: sm.PolicyGTO}).res
		if s := speedup(base, r.Cycles); s > best {
			best, bestLim = s, lim
		}
	}
	return best, bestLim
}

// Fig6LCSMemory explains the LCS wins: L1 miss rate, DRAM queueing, and
// load latency under baseline vs. the adaptive throttle on the
// memory-intensive subset.
func (h *Harness) Fig6LCSMemory() *Table {
	var specs []runSpec
	for _, n := range memSet {
		specs = append(specs,
			runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "adaptive", policy: sm.PolicyGTO},
		)
	}
	h.prefetch(specs)
	t := &Table{
		ID: "fig6", Title: "Why throttling helps: memory system under baseline vs LCS-adaptive",
		Headers: []string{"workload", "L1 miss base", "L1 miss lcs", "DRAM queue base", "DRAM queue lcs", "load lat base", "load lat lcs"},
	}
	for _, n := range memSet {
		b := h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO}).res
		l := h.run(runSpec{names: []string{n}, sched: "adaptive", policy: sm.PolicyGTO}).res
		t.Rows = append(t.Rows, []string{
			n,
			pct(b.L1.MissRate()), pct(l.L1.MissRate()),
			fmt.Sprintf("%.0f", b.DRAM.AvgQueueLatency()), fmt.Sprintf("%.0f", l.DRAM.AvgQueueLatency()),
			fmt.Sprintf("%.0f", b.AvgMemLatency), fmt.Sprintf("%.0f", l.AvgMemLatency),
		})
	}
	return t
}

// Fig7LCSChoice compares the CTA count LCS (and the adaptive extension)
// settles on against the oracle static limit.
func (h *Harness) Fig7LCSChoice() *Table {
	names := workloads.Names()
	var specs []runSpec
	for _, n := range names {
		specs = append(specs,
			runSpec{names: []string{n}, sched: "lcs", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "adaptive", policy: sm.PolicyGTO},
		)
		for lim := 1; lim <= h.maxResident(n); lim++ {
			specs = append(specs, runSpec{names: []string{n}, sched: fmt.Sprintf("static:%d", lim), policy: sm.PolicyGTO})
		}
	}
	h.prefetch(specs)
	t := &Table{
		ID: "fig7", Title: "Chosen CTAs/SM: LCS vs adaptive vs oracle",
		Headers: []string{"workload", "max", "LCS (median)", "adaptive (median)", "oracle"},
	}
	for _, n := range names {
		lcs := h.run(runSpec{names: []string{n}, sched: "lcs", policy: sm.PolicyGTO})
		ad := h.run(runSpec{names: []string{n}, sched: "adaptive", policy: sm.PolicyGTO})
		_, orLim := h.oracle(n)
		t.Rows = append(t.Rows, []string{
			n, fmt.Sprint(h.maxResident(n)),
			fmt.Sprint(median(lcs.limits)), fmt.Sprint(median(ad.limits)), fmt.Sprint(orLim),
		})
	}
	return t
}

func median(limits []int) int {
	var vs []int
	for _, v := range limits {
		if v > 0 {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return 0
	}
	sort.Ints(vs)
	return vs[len(vs)/2]
}

// Fig8BCS is the headline BCS figure: speedup of BCS gang dispatch with the
// BAWS warp scheduler over the baseline, on the inter-CTA-locality subset,
// with the L1 sharing it creates (hits plus MSHR merges).
func (h *Harness) Fig8BCS() *Table {
	var specs []runSpec
	for _, n := range localitySet {
		specs = append(specs,
			runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "bcs:2", policy: sm.PolicyBAWS},
		)
	}
	h.prefetch(specs)
	t := &Table{
		ID: "fig8", Title: "BCS(+BAWS) speedup over baseline on locality workloads",
		Headers: []string{"workload", "speedup", "L1 hit+merge base", "L1 hit+merge bcs", "DRAM reads saved"},
	}
	var all []float64
	for _, n := range localitySet {
		b := h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO}).res
		x := h.run(runSpec{names: []string{n}, sched: "bcs:2", policy: sm.PolicyBAWS}).res
		s := speedup(b.Cycles, x.Cycles)
		all = append(all, s)
		share := func(r gpu.Result) float64 {
			if r.L1.Accesses == 0 {
				return 0
			}
			return float64(r.L1.Hits+r.L1.MSHRMerges) / float64(r.L1.Accesses)
		}
		saved := 0.0
		if b.DRAM.Reads > 0 {
			saved = 1 - float64(x.DRAM.Reads)/float64(b.DRAM.Reads)
		}
		t.Rows = append(t.Rows, []string{
			n, fmt.Sprintf("%.3f", s), pct(share(b)), pct(share(x)), pct(saved),
		})
	}
	t.Rows = append(t.Rows, []string{"geomean", fmt.Sprintf("%.3f", stats.GeoMean(all)), "", "", ""})
	return t
}

// Fig9BAWS is the warp-scheduler ablation: BCS dispatch under plain GTO
// (gangs co-located but serialized) vs under BAWS (gangs in lockstep).
func (h *Harness) Fig9BAWS() *Table {
	var specs []runSpec
	for _, n := range localitySet {
		specs = append(specs,
			runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "bcs:2", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "bcs:2", policy: sm.PolicyBAWS},
		)
	}
	h.prefetch(specs)
	t := &Table{
		ID: "fig9", Title: "BAWS ablation: BCS+GTO vs BCS+BAWS (speedup over baseline)",
		Headers: []string{"workload", "BCS+GTO", "BCS+BAWS", "BAWS contribution"},
	}
	var g, bw []float64
	for _, n := range localitySet {
		b := h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO}).res.Cycles
		sg := speedup(b, h.run(runSpec{names: []string{n}, sched: "bcs:2", policy: sm.PolicyGTO}).res.Cycles)
		sb := speedup(b, h.run(runSpec{names: []string{n}, sched: "bcs:2", policy: sm.PolicyBAWS}).res.Cycles)
		g, bw = append(g, sg), append(bw, sb)
		t.Rows = append(t.Rows, []string{
			n, fmt.Sprintf("%.3f", sg), fmt.Sprintf("%.3f", sb), fmt.Sprintf("%+.1f%%", (sb/sg-1)*100),
		})
	}
	t.Rows = append(t.Rows, []string{
		"geomean", fmt.Sprintf("%.3f", stats.GeoMean(g)), fmt.Sprintf("%.3f", stats.GeoMean(bw)), "",
	})
	return t
}

// Fig10MCKE is the concurrent-kernel figure: total throughput of kernel
// pairs under sequential execution, spatial core partitioning, and the
// paper's mixed intra-SM co-scheduling with an LCS-derived limit.
func (h *Harness) Fig10MCKE() *Table {
	// Profile phase: adaptive LCS decides each leading kernel's limit.
	var profile []runSpec
	for _, p := range ckePairs {
		profile = append(profile, runSpec{names: []string{p[0]}, sched: "adaptive", policy: sm.PolicyGTO})
	}
	h.prefetch(profile)
	var specs []runSpec
	limits := map[string]int{}
	for _, p := range ckePairs {
		lim := lowQuartile(h.run(runSpec{names: []string{p[0]}, sched: "adaptive", policy: sm.PolicyGTO}).limits)
		if lim < 1 {
			lim = 1
		}
		limits[p[0]] = lim
		pair := []string{p[0], p[1]}
		specs = append(specs,
			runSpec{names: pair, sched: "seq", policy: sm.PolicyGTO},
			runSpec{names: pair, sched: "spatial", policy: sm.PolicyGTO},
			runSpec{names: pair, sched: fmt.Sprintf("mixed:%d", lim), policy: sm.PolicyGTO},
		)
	}
	h.prefetch(specs)
	t := &Table{
		ID: "fig10", Title: "Concurrent kernel execution: normalized throughput (higher is better)",
		Headers: []string{"pair", "nOpt(A)", "sequential", "spatial", "mixed"},
	}
	var sp, mx []float64
	for _, p := range ckePairs {
		pair := []string{p[0], p[1]}
		lim := limits[p[0]]
		seq := h.run(runSpec{names: pair, sched: "seq", policy: sm.PolicyGTO}).res.Cycles
		spa := speedup(seq, h.run(runSpec{names: pair, sched: "spatial", policy: sm.PolicyGTO}).res.Cycles)
		mix := speedup(seq, h.run(runSpec{names: pair, sched: fmt.Sprintf("mixed:%d", lim), policy: sm.PolicyGTO}).res.Cycles)
		sp, mx = append(sp, spa), append(mx, mix)
		t.Rows = append(t.Rows, []string{
			p[0] + "+" + p[1], fmt.Sprint(lim), "1.000",
			fmt.Sprintf("%.3f", spa), fmt.Sprintf("%.3f", mix),
		})
	}
	t.Rows = append(t.Rows, []string{
		"geomean", "", "1.000",
		fmt.Sprintf("%.3f", stats.GeoMean(sp)), fmt.Sprintf("%.3f", stats.GeoMean(mx)),
	})
	return t
}

// Fig11Sensitivity sweeps the mechanisms' tuning: BCS gang width and the
// L1 capacity dependence of throttling.
func (h *Harness) Fig11Sensitivity() *Table {
	sub := []string{"stencil", "conv2d", "hotspot"}
	var specs []runSpec
	for _, n := range sub {
		specs = append(specs,
			runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "bcs:2", policy: sm.PolicyBAWS},
			runSpec{names: []string{n}, sched: "bcs:4", policy: sm.PolicyBAWS},
		)
	}
	for _, n := range []string{"spmv", "conv2d"} {
		for _, l1 := range []int{16 * 1024, 32 * 1024} {
			specs = append(specs,
				runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO, l1Bytes: l1},
				runSpec{names: []string{n}, sched: "adaptive", policy: sm.PolicyGTO, l1Bytes: l1},
			)
		}
	}
	h.prefetch(specs)
	t := &Table{
		ID: "fig11", Title: "Sensitivity: BCS gang width and L1 capacity",
		Headers: []string{"study", "workload", "config", "speedup"},
	}
	for _, n := range sub {
		b := h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO}).res.Cycles
		for _, bs := range []int{2, 4} {
			s := speedup(b, h.run(runSpec{names: []string{n}, sched: fmt.Sprintf("bcs:%d", bs), policy: sm.PolicyBAWS}).res.Cycles)
			t.Rows = append(t.Rows, []string{"bcs-width", n, fmt.Sprintf("gang=%d", bs), fmt.Sprintf("%.3f", s)})
		}
	}
	for _, n := range []string{"spmv", "conv2d"} {
		for _, l1 := range []int{16 * 1024, 32 * 1024} {
			b := h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO, l1Bytes: l1}).res.Cycles
			s := speedup(b, h.run(runSpec{names: []string{n}, sched: "adaptive", policy: sm.PolicyGTO, l1Bytes: l1}).res.Cycles)
			t.Rows = append(t.Rows, []string{"l1-capacity", n, fmt.Sprintf("L1=%dKB", l1/1024), fmt.Sprintf("%.3f", s)})
		}
	}
	// DRAM scheduling: how much baseline performance rides on FR-FCFS row
	// reuse (FCFS speedup < 1 = slowdown from losing it).
	for _, n := range []string{"stencil", "vadd"} {
		base := h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO}).res
		fcfs := h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO, fcfs: true}).res
		t.Rows = append(t.Rows, []string{"dram-sched", n,
			fmt.Sprintf("FCFS (rowhit %s vs %s)", pct(fcfs.DRAM.RowHitRate()), pct(base.DRAM.RowHitRate())),
			fmt.Sprintf("%.3f", speedup(base.Cycles, fcfs.Cycles))})
	}
	return t
}

// Fig12WarpSched crosses warp schedulers with CTA scheduling: LRR,
// two-level, and GTO baselines, and LCS on top of GTO (LCS depends on
// greedy concentration).
func (h *Harness) Fig12WarpSched() *Table {
	names := workloads.Names()
	var specs []runSpec
	for _, n := range names {
		specs = append(specs,
			runSpec{names: []string{n}, sched: "base", policy: sm.PolicyLRR},
			runSpec{names: []string{n}, sched: "base", policy: sm.PolicyTwoLevel},
			runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "lcs", policy: sm.PolicyGTO},
		)
	}
	h.prefetch(specs)
	t := &Table{
		ID: "fig12", Title: "Warp-scheduler interaction (speedup over LRR baseline)",
		Headers: []string{"workload", "two-level", "GTO", "GTO+LCS"},
	}
	var tl, g, gl []float64
	for _, n := range names {
		lrr := h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyLRR}).res.Cycles
		st := speedup(lrr, h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyTwoLevel}).res.Cycles)
		sg := speedup(lrr, h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO}).res.Cycles)
		sl := speedup(lrr, h.run(runSpec{names: []string{n}, sched: "lcs", policy: sm.PolicyGTO}).res.Cycles)
		tl, g, gl = append(tl, st), append(g, sg), append(gl, sl)
		t.Rows = append(t.Rows, []string{n,
			fmt.Sprintf("%.3f", st), fmt.Sprintf("%.3f", sg), fmt.Sprintf("%.3f", sl)})
	}
	t.Rows = append(t.Rows, []string{"geomean",
		fmt.Sprintf("%.3f", stats.GeoMean(tl)),
		fmt.Sprintf("%.3f", stats.GeoMean(g)),
		fmt.Sprintf("%.3f", stats.GeoMean(gl))})
	return t
}

// Fig13PriorWork contrasts LCS with the DYNCTA-style feedback throttler —
// the closest prior-work CTA scheduler the paper is positioned against.
func (h *Harness) Fig13PriorWork() *Table {
	names := workloads.Names()
	var specs []runSpec
	for _, n := range names {
		specs = append(specs,
			runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "dyncta", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "lcs", policy: sm.PolicyGTO},
			runSpec{names: []string{n}, sched: "adaptive", policy: sm.PolicyGTO},
		)
	}
	h.prefetch(specs)
	t := &Table{
		ID: "fig13", Title: "CTA throttling vs prior work (speedup over baseline)",
		Headers: []string{"workload", "DYNCTA", "LCS", "LCS-adaptive"},
	}
	var dy, lc, ad []float64
	for _, n := range names {
		base := h.run(runSpec{names: []string{n}, sched: "base", policy: sm.PolicyGTO}).res.Cycles
		sd := speedup(base, h.run(runSpec{names: []string{n}, sched: "dyncta", policy: sm.PolicyGTO}).res.Cycles)
		sl := speedup(base, h.run(runSpec{names: []string{n}, sched: "lcs", policy: sm.PolicyGTO}).res.Cycles)
		sa := speedup(base, h.run(runSpec{names: []string{n}, sched: "adaptive", policy: sm.PolicyGTO}).res.Cycles)
		dy, lc, ad = append(dy, sd), append(lc, sl), append(ad, sa)
		t.Rows = append(t.Rows, []string{n,
			fmt.Sprintf("%.3f", sd), fmt.Sprintf("%.3f", sl), fmt.Sprintf("%.3f", sa)})
	}
	t.Rows = append(t.Rows, []string{"geomean",
		fmt.Sprintf("%.3f", stats.GeoMean(dy)),
		fmt.Sprintf("%.3f", stats.GeoMean(lc)),
		fmt.Sprintf("%.3f", stats.GeoMean(ad))})
	return t
}
