package harness

import (
	"fmt"
	"sort"

	"gpusched/internal/gpu"
	"gpusched/internal/mem"
	"gpusched/internal/sim"
	"gpusched/internal/sm"
	"gpusched/internal/stats"
	"gpusched/internal/workloads"
)

// fig3Set is the representative subset the motivation sweep plots.
var fig3Set = []string{"spmv", "conv2d", "stencil", "sgemm", "vadd", "bfs"}

// memSet is the memory-intensive subset figure 6 and the fig5 subset
// geomean use.
var memSet = []string{"spmv", "conv2d", "stencil", "hotspot", "vadd", "nn", "streamcluster"}

// localitySet is the BCS-candidate subset (figures 8 and 9).
var localitySet = []string{"stencil", "hotspot", "conv2d", "pathfinder", "srad", "sgemm"}

// ckePairs are the (memory-or-cache-bound, compute-bound) kernel pairs of
// the mixed concurrent kernel execution study.
var ckePairs = [][2]string{
	{"spmv", "blackscholes"},
	{"spmv", "kmeans"},
	{"conv2d", "blackscholes"},
	{"stencil", "kmeans"},
	{"streamcluster", "dct8x8"},
	{"nn", "sgemm"},
}

// Table1Config reports the simulated GPU configuration [reconstructed:
// Fermi/GTX480-class, the standard HPCA'14 GPGPU-Sim setup].
func (h *Harness) Table1Config() (*Table, error) {
	g := gpu.DefaultConfig()
	m := mem.DefaultConfig()
	c := sm.DefaultConfig()
	rows := [][]string{
		{"SMs (cores)", fmt.Sprint(g.NumCores)},
		{"Warp size", "32"},
		{"Warp schedulers / SM", fmt.Sprint(c.NumSchedulers)},
		{"Max threads / SM", fmt.Sprint(c.Limits.MaxThreads)},
		{"Max CTAs / SM", fmt.Sprint(c.Limits.MaxCTAs)},
		{"Max warps / SM", fmt.Sprint(c.Limits.MaxWarps)},
		{"Registers / SM", fmt.Sprint(c.Limits.Registers)},
		{"Shared memory / SM", fmt.Sprintf("%d KB", c.Limits.SharedMemBytes/1024)},
		{"ALU result latency", fmt.Sprintf("%d cycles", c.ALULatency)},
		{"SFU latency / interval", fmt.Sprintf("%d / %d cycles", c.SFULatency, c.SFUInterval)},
		{"L1D / SM", fmt.Sprintf("%d KB, %d-way, %dB lines, %d MSHRs", m.L1Bytes/1024, m.L1Ways, m.LineBytes, m.L1MSHREntries)},
		{"L2 total", fmt.Sprintf("%d KB in %d partitions, %d-way", m.L2BytesPerPartition*m.Partitions/1024, m.Partitions, m.L2Ways)},
		{"Interconnect", fmt.Sprintf("crossbar, %d-cycle latency", m.XbarLatency)},
		{"DRAM", fmt.Sprintf("%d channels, FR-FCFS, %d banks, %dB rows", m.Partitions, m.DRAMBanks, m.DRAMRowBytes)},
		{"DRAM timing (CAS/act/burst)", fmt.Sprintf("%d/%d/%d cycles", m.DRAMtCAS, m.DRAMtRowExtra, m.DRAMtBurst)},
	}
	return &Table{
		ID: "table1", Title: "Simulated GPU configuration",
		Headers: []string{"parameter", "value"},
		Rows:    rows,
	}, nil
}

// Table2Characteristics reports the benchmark suite: shape, occupancy, and
// measured memory character under the baseline.
func (h *Harness) Table2Characteristics() (*Table, error) {
	r := h.resolve()
	var reqs []sim.Request
	for _, w := range workloads.All() {
		reqs = append(reqs, h.single(w.Name, sim.Baseline(), sm.PolicyGTO))
	}
	r.warm(reqs)
	t := &Table{
		ID: "table2", Title: "Benchmark characteristics",
		Headers: []string{"workload", "modeled on", "class", "CTAs", "thr/CTA", "max CTA/SM", "bound-by", "IPC", "L1 hit", "inter-CTA"},
	}
	for _, w := range workloads.All() {
		spec := w.Build(h.opt.Scale)
		maxRes, binding := sm.DefaultConfig().Limits.MaxResident(spec)
		res := r.get(h.single(w.Name, sim.Baseline(), sm.PolicyGTO)).Result
		if r.err != nil {
			return nil, r.err
		}
		loc := ""
		if w.InterCTALocality {
			loc = "yes"
		}
		t.Rows = append(t.Rows, []string{
			w.Name, w.ModeledOn, string(w.Class),
			fmt.Sprint(spec.NumCTAs()), fmt.Sprint(spec.ThreadsPerCTA()),
			fmt.Sprint(maxRes), binding,
			fmt.Sprintf("%.2f", res.IPC), pct(res.L1.HitRate()), loc,
		})
	}
	return t, r.err
}

// Fig3CTASweep is the motivation figure: normalized IPC as the per-SM CTA
// limit sweeps from 1 to the occupancy maximum. The paper's observation —
// the maximum CTA count does not maximize performance — appears as curves
// peaking below the right edge.
func (h *Harness) Fig3CTASweep() (*Table, error) {
	r := h.resolve()
	var reqs []sim.Request
	for _, name := range fig3Set {
		for lim := 1; lim <= h.maxResident(name); lim++ {
			reqs = append(reqs, h.single(name, sim.Static(lim), sm.PolicyGTO))
		}
	}
	r.warm(reqs)
	t := &Table{
		ID: "fig3", Title: "Normalized IPC vs. CTAs-per-SM limit (GTO)",
		Headers: []string{"workload", "1", "2", "3", "4", "5", "6", "7", "8", "best@"},
	}
	for _, name := range fig3Set {
		maxRes := h.maxResident(name)
		baseCycles := r.get(h.single(name, sim.Static(maxRes), sm.PolicyGTO)).Result.Cycles
		row := []string{name}
		best, bestLim := 0.0, 0
		for lim := 1; lim <= 8; lim++ {
			if lim > maxRes {
				row = append(row, "-")
				continue
			}
			res := r.get(h.single(name, sim.Static(lim), sm.PolicyGTO)).Result
			if r.err != nil {
				return nil, r.err
			}
			norm := speedup(baseCycles, res.Cycles)
			if norm > best {
				best, bestLim = norm, lim
			}
			row = append(row, fmt.Sprintf("%.2f", norm))
		}
		row = append(row, fmt.Sprintf("%d (%.2fx)", bestLim, best))
		t.Rows = append(t.Rows, row)
		if bestLim < maxRes {
			t.Notes = append(t.Notes, fmt.Sprintf("%s peaks at %d of %d CTAs/SM (%.0f%% over max occupancy)", name, bestLim, maxRes, (best-1)*100))
		}
	}
	return t, r.err
}

// Fig4IssueShare shows the per-CTA issued-instruction share on core 0 when
// its first CTA completes — the histogram LCS reads. GTO concentrates issue
// on older CTAs; the total/greedy ratio is the LCS decision.
func (h *Harness) Fig4IssueShare() (*Table, error) {
	t := &Table{
		ID: "fig4", Title: "Per-CTA issue share at sampling-epoch end (GTO, core 0)",
		Headers: []string{"workload", "shares oldest..youngest (%)", "total/greedy", "LCS nOpt"},
	}
	for _, name := range []string{"sgemm", "blackscholes", "spmv", "stencil", "vadd", "bfs"} {
		hist, ratio, err := h.issueHistogram(name)
		if err != nil {
			return nil, err
		}
		if len(hist) == 0 {
			continue
		}
		total := 0.0
		for _, v := range hist {
			total += v
		}
		parts := ""
		for i, v := range hist {
			if i > 0 {
				parts += " "
			}
			parts += fmt.Sprintf("%.0f", 100*v/total)
		}
		nOpt := int(ratio + 0.5)
		if nOpt > len(hist) {
			nOpt = len(hist)
		}
		t.Rows = append(t.Rows, []string{name, parts, fmt.Sprintf("%.2f", ratio), fmt.Sprint(nOpt)})
	}
	t.Notes = append(t.Notes,
		"compute-bound kernels concentrate issue in the oldest CTAs (small ratio);",
		"latency-bound kernels spread issue almost evenly (ratio near occupancy)")
	return t, nil
}

// issueHistogram runs a workload under the baseline and captures core 0's
// per-CTA issue counts at its first CTA completion. It needs an observer on
// the live GPU, so it bypasses the service memo and builds the simulation
// directly from the request's pieces.
func (h *Harness) issueHistogram(name string) ([]float64, float64, error) {
	req := h.single(name, sim.Baseline(), sm.PolicyGTO)
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, 0, fmt.Errorf("harness: unknown workload %q", name)
	}
	cfg := gpu.DefaultConfig()
	if h.opt.Cores > 0 {
		cfg.NumCores = h.opt.Cores
	}
	cfg.Core.WarpPolicy = sm.PolicyGTO
	g, err := gpu.New(cfg, req.Sched.NewDispatcher(), w.Build(h.opt.Scale))
	if err != nil {
		return nil, 0, fmt.Errorf("harness: %s: %w", name, err)
	}
	var hist []float64
	done := false
	g.SetObserver(func(coreID int, cta *sm.CTA, now uint64) {
		if done || coreID != 0 {
			return
		}
		done = true
		hist = append(hist, float64(cta.Issued))
		c := g.Core(coreID)
		var rest []float64
		for _, r := range c.CTAs() {
			rest = append(rest, float64(r.Issued))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(rest)))
		hist = append(hist, rest...)
	})
	g.Run()
	if len(hist) == 0 {
		return nil, 0, nil
	}
	total := 0.0
	for _, v := range hist {
		total += v
	}
	return hist, total / hist[0], nil
}

// Fig5LCS is the headline LCS figure: speedup over the max-occupancy GTO
// baseline for LCS, the adaptive extension, and the oracle static limit.
func (h *Harness) Fig5LCS() (*Table, error) {
	r := h.resolve()
	names := workloads.Names()
	var reqs []sim.Request
	for _, n := range names {
		reqs = append(reqs,
			h.single(n, sim.Baseline(), sm.PolicyGTO),
			h.single(n, sim.LCS(), sm.PolicyGTO),
			h.single(n, sim.AdaptiveLCS(), sm.PolicyGTO),
		)
		for lim := 1; lim <= h.maxResident(n); lim++ {
			reqs = append(reqs, h.single(n, sim.Static(lim), sm.PolicyGTO))
		}
	}
	r.warm(reqs)
	t := &Table{
		ID: "fig5", Title: "LCS speedup over max-occupancy GTO baseline",
		Headers: []string{"workload", "LCS", "LCS-adaptive", "oracle static", "oracle limit"},
	}
	var lcsAll, adAll, orAll []float64
	var lcsMem, adMem, orMem []float64
	inMemSet := map[string]bool{}
	for _, n := range memSet {
		inMemSet[n] = true
	}
	for _, n := range names {
		base := r.get(h.single(n, sim.Baseline(), sm.PolicyGTO)).Result.Cycles
		lcs := speedup(base, r.get(h.single(n, sim.LCS(), sm.PolicyGTO)).Result.Cycles)
		ad := speedup(base, r.get(h.single(n, sim.AdaptiveLCS(), sm.PolicyGTO)).Result.Cycles)
		orBest, orLim := h.oracle(r, n)
		if r.err != nil {
			return nil, r.err
		}
		lcsAll, adAll, orAll = append(lcsAll, lcs), append(adAll, ad), append(orAll, orBest)
		if inMemSet[n] {
			lcsMem, adMem, orMem = append(lcsMem, lcs), append(adMem, ad), append(orMem, orBest)
		}
		t.Rows = append(t.Rows, []string{
			n, fmt.Sprintf("%.3f", lcs), fmt.Sprintf("%.3f", ad),
			fmt.Sprintf("%.3f", orBest), fmt.Sprint(orLim),
		})
	}
	t.Rows = append(t.Rows, []string{
		"geomean (mem-intensive)",
		fmt.Sprintf("%.3f", stats.GeoMean(lcsMem)),
		fmt.Sprintf("%.3f", stats.GeoMean(adMem)),
		fmt.Sprintf("%.3f", stats.GeoMean(orMem)),
		"",
	})
	t.Rows = append(t.Rows, []string{
		"geomean",
		fmt.Sprintf("%.3f", stats.GeoMean(lcsAll)),
		fmt.Sprintf("%.3f", stats.GeoMean(adAll)),
		fmt.Sprintf("%.3f", stats.GeoMean(orAll)),
		"",
	})
	return t, r.err
}

// oracle returns the best static-limit speedup for a workload and its limit.
func (h *Harness) oracle(r *resolver, name string) (float64, int) {
	base := r.get(h.single(name, sim.Baseline(), sm.PolicyGTO)).Result.Cycles
	best, bestLim := 0.0, 0
	for lim := 1; lim <= h.maxResident(name); lim++ {
		res := r.get(h.single(name, sim.Static(lim), sm.PolicyGTO)).Result
		if r.err != nil {
			return 0, 0
		}
		if s := speedup(base, res.Cycles); s > best {
			best, bestLim = s, lim
		}
	}
	return best, bestLim
}

// Fig6LCSMemory explains the LCS wins: L1 miss rate, DRAM queueing, and
// load latency under baseline vs. the adaptive throttle on the
// memory-intensive subset.
func (h *Harness) Fig6LCSMemory() (*Table, error) {
	r := h.resolve()
	var reqs []sim.Request
	for _, n := range memSet {
		reqs = append(reqs,
			h.single(n, sim.Baseline(), sm.PolicyGTO),
			h.single(n, sim.AdaptiveLCS(), sm.PolicyGTO),
		)
	}
	r.warm(reqs)
	t := &Table{
		ID: "fig6", Title: "Why throttling helps: memory system under baseline vs LCS-adaptive",
		Headers: []string{"workload", "L1 miss base", "L1 miss lcs", "DRAM queue base", "DRAM queue lcs", "load lat base", "load lat lcs"},
	}
	for _, n := range memSet {
		b := r.get(h.single(n, sim.Baseline(), sm.PolicyGTO)).Result
		l := r.get(h.single(n, sim.AdaptiveLCS(), sm.PolicyGTO)).Result
		if r.err != nil {
			return nil, r.err
		}
		t.Rows = append(t.Rows, []string{
			n,
			pct(b.L1.MissRate()), pct(l.L1.MissRate()),
			fmt.Sprintf("%.0f", b.DRAM.AvgQueueLatency()), fmt.Sprintf("%.0f", l.DRAM.AvgQueueLatency()),
			fmt.Sprintf("%.0f", b.AvgMemLatency), fmt.Sprintf("%.0f", l.AvgMemLatency),
		})
	}
	return t, r.err
}

// Fig7LCSChoice compares the CTA count LCS (and the adaptive extension)
// settles on against the oracle static limit.
func (h *Harness) Fig7LCSChoice() (*Table, error) {
	r := h.resolve()
	names := workloads.Names()
	var reqs []sim.Request
	for _, n := range names {
		reqs = append(reqs,
			h.single(n, sim.LCS(), sm.PolicyGTO),
			h.single(n, sim.AdaptiveLCS(), sm.PolicyGTO),
		)
		for lim := 1; lim <= h.maxResident(n); lim++ {
			reqs = append(reqs, h.single(n, sim.Static(lim), sm.PolicyGTO))
		}
	}
	r.warm(reqs)
	t := &Table{
		ID: "fig7", Title: "Chosen CTAs/SM: LCS vs adaptive vs oracle",
		Headers: []string{"workload", "max", "LCS (median)", "adaptive (median)", "oracle"},
	}
	for _, n := range names {
		lcs := r.get(h.single(n, sim.LCS(), sm.PolicyGTO))
		ad := r.get(h.single(n, sim.AdaptiveLCS(), sm.PolicyGTO))
		_, orLim := h.oracle(r, n)
		if r.err != nil {
			return nil, r.err
		}
		t.Rows = append(t.Rows, []string{
			n, fmt.Sprint(h.maxResident(n)),
			fmt.Sprint(median(lcs.Limits)), fmt.Sprint(median(ad.Limits)), fmt.Sprint(orLim),
		})
	}
	return t, r.err
}

func median(limits []int) int {
	var vs []int
	for _, v := range limits {
		if v > 0 {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return 0
	}
	sort.Ints(vs)
	return vs[len(vs)/2]
}

// Fig8BCS is the headline BCS figure: speedup of BCS gang dispatch with the
// BAWS warp scheduler over the baseline, on the inter-CTA-locality subset,
// with the L1 sharing it creates (hits plus MSHR merges).
func (h *Harness) Fig8BCS() (*Table, error) {
	r := h.resolve()
	var reqs []sim.Request
	for _, n := range localitySet {
		reqs = append(reqs,
			h.single(n, sim.Baseline(), sm.PolicyGTO),
			h.single(n, sim.BCS(2), sm.PolicyBAWS),
		)
	}
	r.warm(reqs)
	t := &Table{
		ID: "fig8", Title: "BCS(+BAWS) speedup over baseline on locality workloads",
		Headers: []string{"workload", "speedup", "L1 hit+merge base", "L1 hit+merge bcs", "DRAM reads saved"},
	}
	var all []float64
	for _, n := range localitySet {
		b := r.get(h.single(n, sim.Baseline(), sm.PolicyGTO)).Result
		x := r.get(h.single(n, sim.BCS(2), sm.PolicyBAWS)).Result
		if r.err != nil {
			return nil, r.err
		}
		s := speedup(b.Cycles, x.Cycles)
		all = append(all, s)
		share := func(res gpu.Result) float64 {
			if res.L1.Accesses == 0 {
				return 0
			}
			return float64(res.L1.Hits+res.L1.MSHRMerges) / float64(res.L1.Accesses)
		}
		saved := 0.0
		if b.DRAM.Reads > 0 {
			saved = 1 - float64(x.DRAM.Reads)/float64(b.DRAM.Reads)
		}
		t.Rows = append(t.Rows, []string{
			n, fmt.Sprintf("%.3f", s), pct(share(b)), pct(share(x)), pct(saved),
		})
	}
	t.Rows = append(t.Rows, []string{"geomean", fmt.Sprintf("%.3f", stats.GeoMean(all)), "", "", ""})
	return t, r.err
}

// Fig9BAWS is the warp-scheduler ablation: BCS dispatch under plain GTO
// (gangs co-located but serialized) vs under BAWS (gangs in lockstep).
func (h *Harness) Fig9BAWS() (*Table, error) {
	r := h.resolve()
	var reqs []sim.Request
	for _, n := range localitySet {
		reqs = append(reqs,
			h.single(n, sim.Baseline(), sm.PolicyGTO),
			h.single(n, sim.BCS(2), sm.PolicyGTO),
			h.single(n, sim.BCS(2), sm.PolicyBAWS),
		)
	}
	r.warm(reqs)
	t := &Table{
		ID: "fig9", Title: "BAWS ablation: BCS+GTO vs BCS+BAWS (speedup over baseline)",
		Headers: []string{"workload", "BCS+GTO", "BCS+BAWS", "BAWS contribution"},
	}
	var g, bw []float64
	for _, n := range localitySet {
		b := r.get(h.single(n, sim.Baseline(), sm.PolicyGTO)).Result.Cycles
		sg := speedup(b, r.get(h.single(n, sim.BCS(2), sm.PolicyGTO)).Result.Cycles)
		sb := speedup(b, r.get(h.single(n, sim.BCS(2), sm.PolicyBAWS)).Result.Cycles)
		if r.err != nil {
			return nil, r.err
		}
		g, bw = append(g, sg), append(bw, sb)
		t.Rows = append(t.Rows, []string{
			n, fmt.Sprintf("%.3f", sg), fmt.Sprintf("%.3f", sb), fmt.Sprintf("%+.1f%%", (sb/sg-1)*100),
		})
	}
	t.Rows = append(t.Rows, []string{
		"geomean", fmt.Sprintf("%.3f", stats.GeoMean(g)), fmt.Sprintf("%.3f", stats.GeoMean(bw)), "",
	})
	return t, r.err
}

// Fig10MCKE is the concurrent-kernel figure: total throughput of kernel
// pairs under sequential execution, spatial core partitioning, and the
// paper's mixed intra-SM co-scheduling with an LCS-derived limit.
func (h *Harness) Fig10MCKE() (*Table, error) {
	r := h.resolve()
	// Profile phase: adaptive LCS decides each leading kernel's limit.
	var profile []sim.Request
	for _, p := range ckePairs {
		profile = append(profile, h.single(p[0], sim.AdaptiveLCS(), sm.PolicyGTO))
	}
	r.warm(profile)
	var reqs []sim.Request
	limits := map[string]int{}
	for _, p := range ckePairs {
		lim := lowQuartile(r.get(h.single(p[0], sim.AdaptiveLCS(), sm.PolicyGTO)).Limits)
		if r.err != nil {
			return nil, r.err
		}
		if lim < 1 {
			lim = 1
		}
		limits[p[0]] = lim
		pair := []string{p[0], p[1]}
		reqs = append(reqs,
			h.multi(pair, sim.Sequential(), sm.PolicyGTO),
			h.multi(pair, sim.Spatial(0), sm.PolicyGTO),
			h.multi(pair, sim.Mixed(lim), sm.PolicyGTO),
		)
	}
	r.warm(reqs)
	t := &Table{
		ID: "fig10", Title: "Concurrent kernel execution: normalized throughput (higher is better)",
		Headers: []string{"pair", "nOpt(A)", "sequential", "spatial", "mixed"},
	}
	var sp, mx []float64
	for _, p := range ckePairs {
		pair := []string{p[0], p[1]}
		lim := limits[p[0]]
		seq := r.get(h.multi(pair, sim.Sequential(), sm.PolicyGTO)).Result.Cycles
		spa := speedup(seq, r.get(h.multi(pair, sim.Spatial(0), sm.PolicyGTO)).Result.Cycles)
		mix := speedup(seq, r.get(h.multi(pair, sim.Mixed(lim), sm.PolicyGTO)).Result.Cycles)
		if r.err != nil {
			return nil, r.err
		}
		sp, mx = append(sp, spa), append(mx, mix)
		t.Rows = append(t.Rows, []string{
			p[0] + "+" + p[1], fmt.Sprint(lim), "1.000",
			fmt.Sprintf("%.3f", spa), fmt.Sprintf("%.3f", mix),
		})
	}
	t.Rows = append(t.Rows, []string{
		"geomean", "", "1.000",
		fmt.Sprintf("%.3f", stats.GeoMean(sp)), fmt.Sprintf("%.3f", stats.GeoMean(mx)),
	})
	return t, r.err
}

// Fig11Sensitivity sweeps the mechanisms' tuning: BCS gang width and the
// L1 capacity dependence of throttling.
func (h *Harness) Fig11Sensitivity() (*Table, error) {
	r := h.resolve()
	sub := []string{"stencil", "conv2d", "hotspot"}
	l1Req := func(name string, sched sim.SchedSpec, l1 int) sim.Request {
		req := h.single(name, sched, sm.PolicyGTO)
		req.L1Bytes = l1
		return req
	}
	fcfsReq := func(name string) sim.Request {
		req := h.single(name, sim.Baseline(), sm.PolicyGTO)
		req.DRAMSchedFCFS = true
		return req
	}
	var reqs []sim.Request
	for _, n := range sub {
		reqs = append(reqs,
			h.single(n, sim.Baseline(), sm.PolicyGTO),
			h.single(n, sim.BCS(2), sm.PolicyBAWS),
			h.single(n, sim.BCS(4), sm.PolicyBAWS),
		)
	}
	for _, n := range []string{"spmv", "conv2d"} {
		for _, l1 := range []int{16 * 1024, 32 * 1024} {
			reqs = append(reqs,
				l1Req(n, sim.Baseline(), l1),
				l1Req(n, sim.AdaptiveLCS(), l1),
			)
		}
	}
	r.warm(reqs)
	t := &Table{
		ID: "fig11", Title: "Sensitivity: BCS gang width and L1 capacity",
		Headers: []string{"study", "workload", "config", "speedup"},
	}
	for _, n := range sub {
		b := r.get(h.single(n, sim.Baseline(), sm.PolicyGTO)).Result.Cycles
		for _, bs := range []int{2, 4} {
			s := speedup(b, r.get(h.single(n, sim.BCS(bs), sm.PolicyBAWS)).Result.Cycles)
			if r.err != nil {
				return nil, r.err
			}
			t.Rows = append(t.Rows, []string{"bcs-width", n, fmt.Sprintf("gang=%d", bs), fmt.Sprintf("%.3f", s)})
		}
	}
	for _, n := range []string{"spmv", "conv2d"} {
		for _, l1 := range []int{16 * 1024, 32 * 1024} {
			b := r.get(l1Req(n, sim.Baseline(), l1)).Result.Cycles
			s := speedup(b, r.get(l1Req(n, sim.AdaptiveLCS(), l1)).Result.Cycles)
			if r.err != nil {
				return nil, r.err
			}
			t.Rows = append(t.Rows, []string{"l1-capacity", n, fmt.Sprintf("L1=%dKB", l1/1024), fmt.Sprintf("%.3f", s)})
		}
	}
	// DRAM scheduling: how much baseline performance rides on FR-FCFS row
	// reuse (FCFS speedup < 1 = slowdown from losing it).
	for _, n := range []string{"stencil", "vadd"} {
		base := r.get(h.single(n, sim.Baseline(), sm.PolicyGTO)).Result
		fcfs := r.get(fcfsReq(n)).Result
		if r.err != nil {
			return nil, r.err
		}
		t.Rows = append(t.Rows, []string{"dram-sched", n,
			fmt.Sprintf("FCFS (rowhit %s vs %s)", pct(fcfs.DRAM.RowHitRate()), pct(base.DRAM.RowHitRate())),
			fmt.Sprintf("%.3f", speedup(base.Cycles, fcfs.Cycles))})
	}
	return t, r.err
}

// Fig12WarpSched crosses warp schedulers with CTA scheduling: LRR,
// two-level, and GTO baselines, and LCS on top of GTO (LCS depends on
// greedy concentration).
func (h *Harness) Fig12WarpSched() (*Table, error) {
	r := h.resolve()
	names := workloads.Names()
	var reqs []sim.Request
	for _, n := range names {
		reqs = append(reqs,
			h.single(n, sim.Baseline(), sm.PolicyLRR),
			h.single(n, sim.Baseline(), sm.PolicyTwoLevel),
			h.single(n, sim.Baseline(), sm.PolicyGTO),
			h.single(n, sim.LCS(), sm.PolicyGTO),
		)
	}
	r.warm(reqs)
	t := &Table{
		ID: "fig12", Title: "Warp-scheduler interaction (speedup over LRR baseline)",
		Headers: []string{"workload", "two-level", "GTO", "GTO+LCS"},
	}
	var tl, g, gl []float64
	for _, n := range names {
		lrr := r.get(h.single(n, sim.Baseline(), sm.PolicyLRR)).Result.Cycles
		st := speedup(lrr, r.get(h.single(n, sim.Baseline(), sm.PolicyTwoLevel)).Result.Cycles)
		sg := speedup(lrr, r.get(h.single(n, sim.Baseline(), sm.PolicyGTO)).Result.Cycles)
		sl := speedup(lrr, r.get(h.single(n, sim.LCS(), sm.PolicyGTO)).Result.Cycles)
		if r.err != nil {
			return nil, r.err
		}
		tl, g, gl = append(tl, st), append(g, sg), append(gl, sl)
		t.Rows = append(t.Rows, []string{n,
			fmt.Sprintf("%.3f", st), fmt.Sprintf("%.3f", sg), fmt.Sprintf("%.3f", sl)})
	}
	t.Rows = append(t.Rows, []string{"geomean",
		fmt.Sprintf("%.3f", stats.GeoMean(tl)),
		fmt.Sprintf("%.3f", stats.GeoMean(g)),
		fmt.Sprintf("%.3f", stats.GeoMean(gl))})
	return t, r.err
}

// Fig13PriorWork contrasts LCS with the DYNCTA-style feedback throttler —
// the closest prior-work CTA scheduler the paper is positioned against.
func (h *Harness) Fig13PriorWork() (*Table, error) {
	r := h.resolve()
	names := workloads.Names()
	var reqs []sim.Request
	for _, n := range names {
		reqs = append(reqs,
			h.single(n, sim.Baseline(), sm.PolicyGTO),
			h.single(n, sim.DynCTA(), sm.PolicyGTO),
			h.single(n, sim.LCS(), sm.PolicyGTO),
			h.single(n, sim.AdaptiveLCS(), sm.PolicyGTO),
		)
	}
	r.warm(reqs)
	t := &Table{
		ID: "fig13", Title: "CTA throttling vs prior work (speedup over baseline)",
		Headers: []string{"workload", "DYNCTA", "LCS", "LCS-adaptive"},
	}
	var dy, lc, ad []float64
	for _, n := range names {
		base := r.get(h.single(n, sim.Baseline(), sm.PolicyGTO)).Result.Cycles
		sd := speedup(base, r.get(h.single(n, sim.DynCTA(), sm.PolicyGTO)).Result.Cycles)
		sl := speedup(base, r.get(h.single(n, sim.LCS(), sm.PolicyGTO)).Result.Cycles)
		sa := speedup(base, r.get(h.single(n, sim.AdaptiveLCS(), sm.PolicyGTO)).Result.Cycles)
		if r.err != nil {
			return nil, r.err
		}
		dy, lc, ad = append(dy, sd), append(lc, sl), append(ad, sa)
		t.Rows = append(t.Rows, []string{n,
			fmt.Sprintf("%.3f", sd), fmt.Sprintf("%.3f", sl), fmt.Sprintf("%.3f", sa)})
	}
	t.Rows = append(t.Rows, []string{"geomean",
		fmt.Sprintf("%.3f", stats.GeoMean(dy)),
		fmt.Sprintf("%.3f", stats.GeoMean(lc)),
		fmt.Sprintf("%.3f", stats.GeoMean(ad))})
	return t, r.err
}

// fig14Mixes pair a batch kernel (launched first, kernel 0) with a
// latency-sensitive kernel that arrives while the batch owns every SM. The
// batch partners span the occupancy spectrum — compute-bound (dct8x8),
// cache-sensitive (stencil), and streaming (vadd) — because the batch
// kernel's profile decides how much capacity an occupancy cap (MCKE) can
// donate: a compute-bound batch keeps a high optimal CTA count, so only
// eviction frees slots for the late kernel.
var fig14Mixes = [][2]string{
	{"sgemm", "dct8x8"},
	{"stencil", "blackscholes"},
	{"vadd", "kmeans"},
}

// fig14ArrivalFrac places the priority kernel's arrival this far into the
// batch kernel's solo makespan: late enough that the machine is saturated,
// early enough that plenty of batch work remains.
const fig14ArrivalFrac = 4 // arrival = batch solo cycles / 4

// Fig14Preemption evaluates drain/switch CTA preemption on two-kernel
// priority mixes: a batch kernel saturates the GPU, a latency-sensitive
// kernel arrives a quarter into its makespan, and the schedulers differ in
// how the newcomer gets on. Turnarounds are normalized per kernel against
// its solo run (NT = T_shared/T_alone, lower is better); ANTT averages them
// and STP sums their reciprocals (higher is better). The preemptive rows
// also report how many batch CTAs were evicted — each is redone work.
func (h *Harness) Fig14Preemption() (*Table, error) {
	r := h.resolve()
	// Solo runs anchor everything: T_alone for both kernels, the batch
	// makespan that fixes the arrival cycle, and the adaptive-LCS profile
	// that sizes the MCKE limit (the Fig10 recipe).
	var solo []sim.Request
	for _, mix := range fig14Mixes {
		solo = append(solo,
			h.single(mix[0], sim.Baseline(), sm.PolicyGTO),
			h.single(mix[1], sim.Baseline(), sm.PolicyGTO),
			h.single(mix[0], sim.AdaptiveLCS(), sm.PolicyGTO))
	}
	r.warm(solo)
	type plan struct {
		pair     []string
		arrivals []uint64
		arrival  uint64
		aloneB   uint64 // batch solo makespan
		aloneP   uint64 // priority solo makespan
		lim      int    // MCKE cap for the batch kernel
		deadline int    // absolute completion deadline for the priority kernel
		scheds   []sim.SchedSpec
	}
	var plans []plan
	var shared []sim.Request
	for _, mix := range fig14Mixes {
		aloneB := r.get(h.single(mix[0], sim.Baseline(), sm.PolicyGTO)).Result.Cycles
		aloneP := r.get(h.single(mix[1], sim.Baseline(), sm.PolicyGTO)).Result.Cycles
		lim := lowQuartile(r.get(h.single(mix[0], sim.AdaptiveLCS(), sm.PolicyGTO)).Limits)
		if r.err != nil {
			return nil, r.err
		}
		if lim < 1 {
			lim = 1
		}
		arrival := aloneB / fig14ArrivalFrac
		p := plan{
			pair:     []string{mix[0], mix[1]},
			arrivals: []uint64{0, arrival},
			arrival:  arrival,
			aloneB:   aloneB,
			aloneP:   aloneP,
			lim:      lim,
			// The deadline grants the priority kernel twice its solo
			// makespan after arrival; the predictor only preempts while it
			// forecasts a miss.
			deadline: int(arrival + 2*aloneP),
		}
		p.scheds = []sim.SchedSpec{
			sim.Baseline(),
			sim.Mixed(p.lim),
			sim.Preemptive(1, 0),
			sim.Preemptive(1, p.deadline),
		}
		for _, s := range p.scheds {
			req := h.multi(p.pair, s, sm.PolicyGTO)
			req.Arrivals = p.arrivals
			shared = append(shared, req)
		}
		plans = append(plans, p)
	}
	r.warm(shared)
	t := &Table{
		ID: "fig14", Title: "Drain preemption on priority mixes: normalized turnaround (lower is better), STP (higher is better)",
		Headers: []string{"mix", "sched", "NT(batch)", "NT(prio)", "ANTT", "STP", "evicted"},
	}
	labels := []string{"rr", "mcke", "preempt", "preempt:dl"}
	sums := make(map[string][]float64) // label -> ANTT then STP samples interleaved via two slices
	ntPrio := make(map[string][]float64)
	for _, p := range plans {
		for i, s := range p.scheds {
			req := h.multi(p.pair, s, sm.PolicyGTO)
			req.Arrivals = p.arrivals
			res := r.get(req).Result
			if r.err != nil {
				return nil, r.err
			}
			// Turnaround runs from the kernel's arrival to its last CTA.
			ntB := stats.NormalizedTurnaround(p.aloneB, res.Kernels[0].DoneCycle)
			ntP := stats.NormalizedTurnaround(p.aloneP, res.Kernels[1].DoneCycle-p.arrival)
			nts := []float64{ntB, ntP}
			t.Rows = append(t.Rows, []string{
				p.pair[0] + "+" + p.pair[1], labels[i],
				fmt.Sprintf("%.3f", ntB), fmt.Sprintf("%.3f", ntP),
				fmt.Sprintf("%.3f", stats.ANTT(nts)),
				fmt.Sprintf("%.3f", stats.STP(nts)),
				fmt.Sprint(res.Kernels[0].Evicted),
			})
			sums[labels[i]] = append(sums[labels[i]], stats.ANTT(nts), stats.STP(nts))
			ntPrio[labels[i]] = append(ntPrio[labels[i]], ntP)
		}
	}
	for _, l := range labels {
		vs := sums[l]
		var antt, stp float64
		for i := 0; i < len(vs); i += 2 {
			antt += vs[i]
			stp += vs[i+1]
		}
		n := float64(len(vs) / 2)
		var pm float64
		for _, v := range ntPrio[l] {
			pm += v
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: mean ANTT %.3f, mean STP %.3f, mean NT(prio) %.3f",
			l, antt/n, stp/n, pm/float64(len(ntPrio[l]))))
	}
	return t, r.err
}
