package harness

import (
	"strings"
	"testing"

	"gpusched/internal/sim"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

func tinyHarness() *Harness {
	return New(Options{Scale: workloads.ScaleTest, Cores: 4})
}

func TestTableRender(t *testing.T) {
	table := &Table{
		ID: "t", Title: "demo",
		Headers: []string{"a", "longheader"},
		Rows:    [][]string{{"xx", "1"}, {"y", "22"}},
		Notes:   []string{"a note"},
	}
	var sb strings.Builder
	table.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== t: demo ==", "longheader", "a note", "xx"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	table := &Table{
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"x,y", `q"u`}},
	}
	var sb strings.Builder
	table.CSV(&sb)
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("fig5"); !ok {
		t.Error("ByID(fig5) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestTable1IsStatic(t *testing.T) {
	h := tinyHarness()
	table, err := h.Table1Config()
	if err != nil {
		t.Fatal(err)
	}
	if table.ID != "table1" || len(table.Rows) < 10 {
		t.Fatalf("table1 = %+v", table)
	}
}

func TestMemoizationReturnsSameResult(t *testing.T) {
	h := tinyHarness()
	r := h.resolve()
	req := h.single("vadd", sim.Baseline(), sm.PolicyGTO)
	a := r.get(req)
	b := r.get(req)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if a.Result.Cycles != b.Result.Cycles {
		t.Fatal("memoized run differed")
	}
	if st := h.Service().Stats(); st.Simulated != 1 {
		t.Fatalf("service simulated %d runs, want 1", st.Simulated)
	}
}

func TestResolverStopsAfterFirstError(t *testing.T) {
	h := tinyHarness()
	r := h.resolve()
	bad := h.single("no-such-workload", sim.Baseline(), sm.PolicyGTO)
	if out := r.get(bad); out.Result.Cycles != 0 {
		t.Fatal("failed request returned a non-zero outcome")
	}
	if r.err == nil {
		t.Fatal("resolver swallowed the error")
	}
	// Later lookups are no-ops that keep the first error.
	first := r.err
	r.get(h.single("vadd", sim.Baseline(), sm.PolicyGTO))
	if r.err != first {
		t.Fatalf("resolver error changed: %v", r.err)
	}
	if st := h.Service().Stats(); st.Simulated != 0 {
		t.Fatalf("service simulated %d runs after failure, want 0", st.Simulated)
	}
}

func TestFig9SmallEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	h := tinyHarness()
	table, err := h.Fig9BAWS()
	if err != nil {
		t.Fatal(err)
	}
	// localitySet rows + geomean.
	if len(table.Rows) != len(localitySet)+1 {
		t.Fatalf("fig9 rows = %d, want %d", len(table.Rows), len(localitySet)+1)
	}
	last := table.Rows[len(table.Rows)-1]
	if last[0] != "geomean" {
		t.Fatalf("last row %v, want geomean", last)
	}
}

func TestIssueHistogramShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	h := tinyHarness()
	hist, ratio, err := h.issueHistogram("vadd")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 {
		t.Fatal("empty histogram")
	}
	if ratio < 1 || ratio > float64(len(hist))+0.01 {
		t.Fatalf("ratio %.2f outside [1,%d]", ratio, len(hist))
	}
	// First entry is the completed (greedy) CTA: it must hold the max.
	for _, v := range hist[1:] {
		if v > hist[0] {
			t.Fatalf("resident CTA issued %v > completed CTA %v", v, hist[0])
		}
	}
}

func TestLowQuartileAndMedian(t *testing.T) {
	if got := lowQuartile([]int{0, 0, 0}); got != 0 {
		t.Errorf("lowQuartile(all zero) = %d", got)
	}
	if got := lowQuartile([]int{5, 1, 4, 2, 3}); got != 2 {
		t.Errorf("lowQuartile = %d, want 2", got)
	}
	if got := median([]int{5, 1, 4, 2, 3}); got != 3 {
		t.Errorf("median = %d, want 3", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %d", got)
	}
}

func TestRequestBuildersCarryOptions(t *testing.T) {
	h := tinyHarness()
	req := h.single("vadd", sim.Static(3), sm.PolicyBAWS)
	if len(req.Workloads) != 1 || req.Workloads[0] != "vadd" {
		t.Fatalf("workloads = %v", req.Workloads)
	}
	if req.Scale != workloads.ScaleTest || req.Cores != 4 {
		t.Fatalf("request lost harness options: %+v", req)
	}
	multi := h.multi([]string{"spmv", "sgemm"}, sim.Mixed(2), sm.PolicyGTO)
	if len(multi.Workloads) != 2 || multi.Sched.Name() != "mixed" {
		t.Fatalf("multi request = %+v", multi)
	}
}
