package harness

import (
	"strings"
	"testing"

	"gpusched/internal/workloads"
)

func tinyHarness() *Harness {
	return New(Options{Scale: workloads.ScaleTest, Cores: 4})
}

func TestTableRender(t *testing.T) {
	table := &Table{
		ID: "t", Title: "demo",
		Headers: []string{"a", "longheader"},
		Rows:    [][]string{{"xx", "1"}, {"y", "22"}},
		Notes:   []string{"a note"},
	}
	var sb strings.Builder
	table.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== t: demo ==", "longheader", "a note", "xx"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	table := &Table{
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"x,y", `q"u`}},
	}
	var sb strings.Builder
	table.CSV(&sb)
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 13 {
		t.Fatalf("registry has %d experiments, want 13", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("fig5"); !ok {
		t.Error("ByID(fig5) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestTable1IsStatic(t *testing.T) {
	h := tinyHarness()
	table := h.Table1Config()
	if table.ID != "table1" || len(table.Rows) < 10 {
		t.Fatalf("table1 = %+v", table)
	}
}

func TestMemoizationReturnsSameResult(t *testing.T) {
	h := tinyHarness()
	spec := runSpec{names: []string{"vadd"}, sched: "base", policy: 1}
	a := h.run(spec)
	b := h.run(spec)
	if a.res.Cycles != b.res.Cycles {
		t.Fatal("memoized run differed")
	}
	if len(h.memo) != 1 {
		t.Fatalf("memo has %d entries, want 1", len(h.memo))
	}
}

func TestFig9SmallEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	h := tinyHarness()
	table := h.Fig9BAWS()
	// localitySet rows + geomean.
	if len(table.Rows) != len(localitySet)+1 {
		t.Fatalf("fig9 rows = %d, want %d", len(table.Rows), len(localitySet)+1)
	}
	last := table.Rows[len(table.Rows)-1]
	if last[0] != "geomean" {
		t.Fatalf("last row %v, want geomean", last)
	}
}

func TestIssueHistogramShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	h := tinyHarness()
	hist, ratio := h.issueHistogram("vadd")
	if len(hist) == 0 {
		t.Fatal("empty histogram")
	}
	if ratio < 1 || ratio > float64(len(hist))+0.01 {
		t.Fatalf("ratio %.2f outside [1,%d]", ratio, len(hist))
	}
	// First entry is the completed (greedy) CTA: it must hold the max.
	for _, v := range hist[1:] {
		if v > hist[0] {
			t.Fatalf("resident CTA issued %v > completed CTA %v", v, hist[0])
		}
	}
}

func TestLowQuartileAndMedian(t *testing.T) {
	if got := lowQuartile([]int{0, 0, 0}); got != 0 {
		t.Errorf("lowQuartile(all zero) = %d", got)
	}
	if got := lowQuartile([]int{5, 1, 4, 2, 3}); got != 2 {
		t.Errorf("lowQuartile = %d, want 2", got)
	}
	if got := median([]int{5, 1, 4, 2, 3}); got != 3 {
		t.Errorf("median = %d, want 3", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %d", got)
	}
}

func TestDispatcherFactoryParsing(t *testing.T) {
	h := tinyHarness()
	cases := map[string]string{
		"base":     "rr",
		"lcs":      "lcs",
		"adaptive": "lcs-adaptive",
		"bcs:4":    "bcs",
		"static:3": "limited",
		"seq":      "sequential",
		"spatial":  "spatial",
		"mixed:2":  "mixed",
	}
	for spec, want := range cases {
		if got := h.dispatcher(spec).Name(); got != want {
			t.Errorf("dispatcher(%q).Name() = %q, want %q", spec, got, want)
		}
	}
}
