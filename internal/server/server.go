// Package server implements gpuschedd's HTTP front door over the
// internal/sim service layer: an asynchronous job API with a bounded
// admission queue (backpressure, not unbounded buffering), per-job
// deadlines, cancellation, Server-Sent-Events progress streaming,
// Prometheus-format metrics, and a graceful drain for shutdown.
//
// The API surface:
//
//	POST   /v1/jobs             submit a simulation; 202 + job, 429 when the queue is full
//	GET    /v1/jobs             list tracked jobs
//	GET    /v1/jobs/{id}        job status; includes the outcome once done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events SSE lifecycle stream (queued/running/terminal)
//	POST   /v1/jobs:batch       synchronous batch; streams per-item completion as NDJSON
//	POST   /v1/simulate         synchronous simulation for small requests
//	GET    /v1/cache/{addr}     content-addressed cache entry (peer-cache protocol)
//	GET    /v1/stats            JSON stats snapshot (router aggregation, load tests)
//	GET    /v1/workloads        the workload suite, with class metadata
//	GET    /healthz             liveness; 200 for the life of the process
//	GET    /readyz              readiness; 503 while draining or the queue is saturated
//	GET    /metrics             Prometheus text format
//
// Request bodies are the flat sim.Request wire form (see internal/sim's
// JSON round-trip) plus the envelope field "timeout_ms" for a per-job
// deadline. Errors are structured JSON: {"error":{"code","message"}},
// with validation failures as 400 and simulation failures as 500.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"gpusched/internal/sim"
	"gpusched/internal/workloads"
)

// Config tunes the daemon. Zero values select daemon-sane defaults.
type Config struct {
	// Workers is the number of job runner goroutines (0 = NumCPU). The
	// sim.Service's own worker pool additionally bounds simulator
	// concurrency, so this mostly bounds how many jobs can be mid-flight.
	Workers int
	// QueueDepth bounds the admission queue (0 = 64). A full queue
	// rejects submissions with 429 + Retry-After.
	QueueDepth int
	// DefaultTimeout is the per-job deadline applied when a submission
	// doesn't set timeout_ms (0 = no deadline).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (0 = uncapped).
	MaxTimeout time.Duration
	// ResultTTL is how long finished jobs stay queryable (0 = 15m).
	ResultTTL time.Duration
	// SyncTimeout bounds POST /v1/simulate requests (0 = 2m).
	SyncTimeout time.Duration
}

// Server wires the job Manager and the sim.Service into an http.Handler.
type Server struct {
	svc      *sim.Service
	jobs     *Manager
	mux      *http.ServeMux
	cfg      Config
	draining atomic.Bool
	batch    batchCounters
}

// batchCounters tracks the synchronous batch endpoint.
type batchCounters struct {
	batches     atomic.Uint64
	itemsDone   atomic.Uint64
	itemsFailed atomic.Uint64
}

// batchView is the JSON/metrics snapshot of the batch counters.
type batchView struct {
	Batches     uint64 `json:"batches"`
	ItemsDone   uint64 `json:"items_done"`
	ItemsFailed uint64 `json:"items_failed"`
}

func (s *Server) batchStats() batchView {
	return batchView{
		Batches:     s.batch.batches.Load(),
		ItemsDone:   s.batch.itemsDone.Load(),
		ItemsFailed: s.batch.itemsFailed.Load(),
	}
}

// New builds a Server (and starts its job runners) over svc.
func New(svc *sim.Service, cfg Config) *Server {
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 2 * time.Minute
	}
	s := &Server{svc: svc, jobs: newManager(svc, cfg), cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("POST /v1/jobs:batch", s.handleBatch)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("GET /v1/cache/{addr}", s.handleCacheGet)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown starts the graceful drain: health flips to 503, admission
// closes, queued and running jobs finish. When ctx expires first, live
// jobs are canceled. Call it after http.Server.Shutdown so no request
// races the closing queue.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.jobs.Shutdown(ctx)
}

// apiError is the structured error envelope: code is machine-matchable
// ("validation", "queue_full", ...), message is for humans.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]apiError{"error": {Code: code, Message: fmt.Sprintf(format, args...)}})
}

// maxBodyBytes bounds request bodies; simulation requests are tiny.
const maxBodyBytes = 1 << 20

// decodeRequest reads a flat simulation-request body plus the envelope
// fields, writing a structured 400 itself when the payload is bad.
func decodeRequest(w http.ResponseWriter, r *http.Request) (req sim.Request, timeout time.Duration, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "validation", "reading body: %v", err)
		return req, 0, false
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "validation", "%v", err)
		return req, 0, false
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "validation", "%v", err)
		return req, 0, false
	}
	var env struct {
		TimeoutMS int64 `json:"timeout_ms"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		writeError(w, http.StatusBadRequest, "validation", "envelope: %v", err)
		return req, 0, false
	}
	if env.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "validation", "timeout_ms must be >= 0 (got %d)", env.TimeoutMS)
		return req, 0, false
	}
	return req, time.Duration(env.TimeoutMS) * time.Millisecond, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, timeout, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	job, err := s.jobs.Submit(req, timeout)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue_full",
			"admission queue full (%d queued); retry later", s.jobs.stats().QueueDepth)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "daemon is draining; no new jobs")
	case err != nil:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job.view())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.List()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job %q (expired results are reaped after %v)",
			r.PathValue("id"), s.jobs.cfg.ResultTTL)
		return
	}
	writeJSON(w, http.StatusOK, job.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	state, found := s.jobs.Cancel(r.PathValue("id"))
	if !found {
		writeError(w, http.StatusNotFound, "not_found", "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": r.PathValue("id"), "state": state})
}

// handleSimulate is the synchronous path for small requests: run under
// the sync timeout and return the outcome in one round trip. Large sweeps
// belong on the job API.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, timeout, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	if timeout <= 0 || timeout > s.cfg.SyncTimeout {
		timeout = s.cfg.SyncTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	out, err := s.svc.Run(ctx, req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]any{"key": req.Key(), "outcome": out})
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline", "simulation exceeded %v; submit it as a job instead", timeout)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusInternalServerError, "canceled", "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "simulation", "%v", err)
	}
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type wl struct {
		Name             string `json:"name"`
		ModeledOn        string `json:"modeled_on"`
		Class            string `json:"class"`
		InterCTALocality bool   `json:"inter_cta_locality"`
	}
	all := workloads.All()
	out := make([]wl, len(all))
	for i, x := range all {
		out[i] = wl{Name: x.Name, ModeledOn: x.ModeledOn, Class: string(x.Class), InterCTALocality: x.InterCTALocality}
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

// handleHealth is liveness: 200 for the life of the process, even while
// draining. A fleet router must keep /v1/jobs/{id} queries flowing to a
// draining shard (its in-flight jobs finish there); only *readiness*
// flips, steering new work away.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// Ready reports whether the shard should receive new work, and why not.
// Not ready while draining (SIGTERM arrived, admission is closing) and
// while the admission queue is saturated (a 429 is the likely answer, so
// the router should prefer a sibling).
func (s *Server) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	st := s.jobs.stats()
	if st.QueueDepth >= st.QueueCap {
		return false, "queue_saturated"
	}
	return true, "ok"
}

// handleReady is readiness: the signal health probes and routers act on.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ok, reason := s.Ready()
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": reason})
}

// handleCacheGet serves one content-addressed result-cache entry — the
// peer-cache protocol. The response is the raw on-disk entry (version,
// canonical key, outcome); the fetching peer verifies it against the key
// it wanted, so a stale or corrupt entry degrades to a miss on its side.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	data, ok := s.svc.CacheEntryBytes(addr)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no cache entry %q", addr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // best-effort cache protocol
}

// statsView is the JSON shape of GET /v1/stats: everything a router or a
// load harness needs to aggregate fleet behaviour without parsing the
// Prometheus text form.
type statsView struct {
	Ready    bool      `json:"ready"`
	Draining bool      `json:"draining"`
	Jobs     jobsStats `json:"jobs"`
	Batch    batchView `json:"batch"`
	Sim      sim.Stats `json:"sim"`
}

// jobsStats is the JSON rendering of the Manager's counters.
type jobsStats struct {
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_capacity"`
	Tracked    int    `json:"tracked"`
	Submitted  uint64 `json:"submitted"`
	Rejected   uint64 `json:"rejected"`
	Done       uint64 `json:"done"`
	Failed     uint64 `json:"failed"`
	Canceled   uint64 `json:"canceled"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ready, _ := s.Ready()
	ms := s.jobs.stats()
	writeJSON(w, http.StatusOK, statsView{
		Ready:    ready,
		Draining: s.draining.Load(),
		Jobs: jobsStats{
			Queued: ms.Queued, Running: ms.Running,
			QueueDepth: ms.QueueDepth, QueueCap: ms.QueueCap,
			Tracked: ms.Tracked, Submitted: ms.Submitted, Rejected: ms.Rejected,
			Done: ms.Done, Failed: ms.Failed, Canceled: ms.Canceled,
		},
		Batch: s.batchStats(),
		Sim:   s.svc.Stats(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	ready, _ := s.Ready()
	writeMetrics(w, s.jobs.stats(), s.svc.Stats(), s.batchStats(), ready, s.svc.TickWorkers(), s.jobs.cycles)
}
