package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// handleJobEvents streams a job's lifecycle as Server-Sent Events: one
// event per state transition, in order, starting from the queued event
// (or from Last-Event-ID + 1 on a reconnect). The stream ends when the
// job reaches a terminal state or the client goes away — a finished job
// yields its full history immediately and closes, so late subscribers
// never hang.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}

	// Resume after the client's last seen event, per the SSE convention.
	from := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if n, err := strconv.Atoi(last); err == nil && n > 0 {
			from = n
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		evs, changed, terminal := job.EventsSince(from)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			// The SSE id field carries Seq so reconnects resume cleanly.
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.State, data)
		}
		from += len(evs)
		fl.Flush()
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
