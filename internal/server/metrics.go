package server

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"

	"gpusched/internal/sim"
)

// cycleBuckets are the upper bounds (simulated cycles) of the per-job
// makespan histogram. Tiny-scale smoke kernels land in the low buckets,
// full-scale paper workloads in the 1e6..1e8 range; the default 20M-cycle
// simulation bound keeps everything under the last finite bucket.
var cycleBuckets = []float64{1e4, 1e5, 1e6, 1e7, 1e8}

// histogram is a fixed-bucket Prometheus-style histogram. It stores
// per-bucket (non-cumulative) counts; rendering accumulates.
type histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; the last bucket is +Inf
	sum    float64
	n      uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// write renders the histogram in Prometheus text exposition format.
func (h *histogram) write(w io.Writer, name, help string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatBound(sum))
	fmt.Fprintf(w, "%s_count %d\n", name, n)
}

// formatBound renders a float the way Prometheus clients expect (no
// exponent for integral values below 1e15, shortest otherwise).
func formatBound(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeMetrics renders the full /metrics payload: job lifecycle counters
// and gauges from the Manager, request-satisfaction counters from the
// sim.Service, and the per-job simulated-cycle histogram.
func writeMetrics(w io.Writer, ms managerStats, ss sim.Stats, bs batchView, ready bool, tickWorkers int, cycles *histogram) {
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	readyVal := 0
	if ready {
		readyVal = 1
	}
	gauge("gpuschedd_ready", "Readiness (1 = accepting new work; 0 while draining or the admission queue is saturated).", readyVal)

	counter("gpuschedd_batches_total", "Synchronous batches accepted on /v1/jobs:batch.", bs.Batches)
	fmt.Fprintf(w, "# HELP gpuschedd_batch_items_total Batch items completed, by outcome.\n")
	fmt.Fprintf(w, "# TYPE gpuschedd_batch_items_total counter\n")
	fmt.Fprintf(w, "gpuschedd_batch_items_total{outcome=\"done\"} %d\n", bs.ItemsDone)
	fmt.Fprintf(w, "gpuschedd_batch_items_total{outcome=\"failed\"} %d\n", bs.ItemsFailed)

	counter("gpuschedd_jobs_submitted_total", "Jobs accepted into the admission queue.", ms.Submitted)
	counter("gpuschedd_jobs_rejected_total", "Submissions rejected because the admission queue was full.", ms.Rejected)

	fmt.Fprintf(w, "# HELP gpuschedd_jobs_finished_total Jobs that reached a terminal state.\n")
	fmt.Fprintf(w, "# TYPE gpuschedd_jobs_finished_total counter\n")
	fmt.Fprintf(w, "gpuschedd_jobs_finished_total{state=\"done\"} %d\n", ms.Done)
	fmt.Fprintf(w, "gpuschedd_jobs_finished_total{state=\"failed\"} %d\n", ms.Failed)
	fmt.Fprintf(w, "gpuschedd_jobs_finished_total{state=\"canceled\"} %d\n", ms.Canceled)

	fmt.Fprintf(w, "# HELP gpuschedd_jobs Jobs currently in a live state.\n")
	fmt.Fprintf(w, "# TYPE gpuschedd_jobs gauge\n")
	fmt.Fprintf(w, "gpuschedd_jobs{state=\"queued\"} %d\n", ms.Queued)
	fmt.Fprintf(w, "gpuschedd_jobs{state=\"running\"} %d\n", ms.Running)

	gauge("gpuschedd_queue_depth", "Jobs waiting in the bounded admission queue.", ms.QueueDepth)
	gauge("gpuschedd_queue_capacity", "Capacity of the admission queue.", ms.QueueCap)
	gauge("gpuschedd_inflight_simulations", "Job simulations executing right now.", ms.Running)
	gauge("gpuschedd_jobs_tracked", "Jobs retained for status queries (bounded by the result TTL).", ms.Tracked)

	gauge("gpuschedd_sim_workers", "Worker threads ticking the SMs inside each simulation (execution-only; never affects results).", tickWorkers)
	counter("gpuschedd_sim_simulated_total", "Actual simulator executions.", uint64(ss.Simulated))
	counter("gpuschedd_sim_memo_hits_total", "Requests coalesced into or satisfied by an in-memory flight.", uint64(ss.MemoHits))
	counter("gpuschedd_sim_disk_hits_total", "Requests satisfied by the on-disk result cache.", uint64(ss.DiskHits))
	counter("gpuschedd_sim_peer_hits_total", "Requests satisfied by a fleet peer's cache (fetch-before-simulate).", uint64(ss.PeerHits))
	counter("gpuschedd_simcache_evictions_total", "On-disk cache entries evicted by the entry/byte budget.", uint64(ss.DiskEvictions))
	counter("gpuschedd_sim_flights_evicted_total", "Completed flights evicted from the in-memory memo.", uint64(ss.Evicted))
	counter("gpuschedd_sim_cycles_total", "Simulated cycles produced by the cycle loop.", ss.SimCycles)
	fmt.Fprintf(w, "# HELP gpuschedd_sim_wall_seconds_total Wall-clock seconds spent inside the cycle loop.\n")
	fmt.Fprintf(w, "# TYPE gpuschedd_sim_wall_seconds_total counter\n")
	fmt.Fprintf(w, "gpuschedd_sim_wall_seconds_total %s\n", formatBound(ss.WallSeconds))

	cycles.write(w, "gpuschedd_job_cycles", "Simulated cycles per completed job.")
}
