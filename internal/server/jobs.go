package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"gpusched/internal/sim"
)

// Submission outcomes a handler must distinguish.
var (
	// ErrQueueFull means the bounded admission queue rejected the job;
	// the client should back off and retry (HTTP 429).
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrShuttingDown means the daemon is draining and admits no new work
	// (HTTP 503).
	ErrShuttingDown = errors.New("server: shutting down")
)

// State is a job's lifecycle position. Jobs move
// queued -> running -> done|failed, with canceled reachable from either
// non-terminal state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one lifecycle notification, streamed to clients as a
// Server-Sent Event. Seq increases by one per event of a job, starting
// at 1 (the queued event), so clients can detect gaps after a reconnect.
type Event struct {
	Seq   int    `json:"seq"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Cycles is the simulated makespan, set on the done event.
	Cycles uint64 `json:"cycles,omitempty"`
}

// Job is one asynchronous simulation submission.
type Job struct {
	// ID is the daemon-assigned handle ("job-7").
	ID string
	// seq is the admission order (the number in ID). List sorts by it:
	// created timestamps can collide within clock resolution, and breaking
	// such ties by map iteration order made /v1/jobs ordering flap between
	// requests.
	seq uint64
	// Key is the request's canonical cache identity; jobs with equal keys
	// deduplicate inside sim.Service.
	Key string
	// Req is the submitted simulation request.
	Req sim.Request

	timeout time.Duration

	mu sync.Mutex
	//gpulint:guardedby mu
	state State
	//gpulint:guardedby mu
	outcome *sim.Outcome
	//gpulint:guardedby mu
	err error
	//gpulint:guardedby mu
	created time.Time
	//gpulint:guardedby mu
	started time.Time
	//gpulint:guardedby mu
	finished time.Time
	//gpulint:guardedby mu
	cancel context.CancelFunc
	//gpulint:guardedby mu
	events []Event
	// changed is closed and replaced on every publish.
	//gpulint:guardedby mu
	changed chan struct{}
}

// publishLocked appends a lifecycle event and wakes every waiter.
// Callers hold j.mu.
func (j *Job) publishLocked(e Event) {
	e.Seq = len(j.events) + 1
	j.events = append(j.events, e)
	close(j.changed)
	j.changed = make(chan struct{})
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// EventsSince returns a copy of the events after index from, a channel
// that closes on the next publish, and whether the job was terminal as of
// this snapshot (in which case the returned events end with the terminal
// event and no further ones will arrive).
func (j *Job) EventsSince(from int) (evs []Event, changed <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(j.events) {
		from = len(j.events)
	}
	return append([]Event(nil), j.events[from:]...), j.changed, j.state.Terminal()
}

// markRunning transitions queued -> running and installs the cancel
// function. It reports false when the job was canceled while queued, in
// which case the runner must skip it.
func (j *Job) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.publishLocked(Event{State: StateRunning})
	return true
}

// finish records the simulation outcome and returns the terminal state:
// done on success, canceled when the job's context was canceled, failed on
// a per-job deadline or a simulation error.
func (j *Job) finish(out sim.Outcome, err error) State {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		o := out
		j.outcome = &o
		j.publishLocked(Event{State: StateDone, Cycles: out.Result.Cycles})
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.err = fmt.Errorf("job deadline (%v) exceeded", j.timeout)
		j.publishLocked(Event{State: StateFailed, Error: j.err.Error()})
	case errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.err = err
		j.publishLocked(Event{State: StateCanceled, Error: "canceled"})
	default:
		j.state = StateFailed
		j.err = err
		j.publishLocked(Event{State: StateFailed, Error: err.Error()})
	}
	return j.state
}

// cancelJob cancels a queued or running job (idempotently: terminal jobs
// are left alone). queuedCancel reports a direct queued -> canceled
// transition, which the Manager must count itself because the job never
// reaches a runner's finish path.
func (j *Job) cancelJob() (queuedCancel bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.finished = time.Now()
		j.err = context.Canceled
		j.publishLocked(Event{State: StateCanceled, Error: "canceled"})
		return true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return false
}

// jobView is the JSON rendering of a job.
type jobView struct {
	ID       string       `json:"id"`
	Key      string       `json:"key"`
	State    State        `json:"state"`
	Request  sim.Request  `json:"request"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	Error    string       `json:"error,omitempty"`
	Outcome  *sim.Outcome `json:"outcome,omitempty"`
}

// view snapshots the job for JSON responses.
func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:      j.ID,
		Key:     j.Key,
		State:   j.state,
		Request: j.Req,
		Created: j.created,
		Outcome: j.outcome,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// Manager owns the job table, the bounded admission queue, and the runner
// pool that feeds jobs into a sim.Service. The queue is the backpressure
// mechanism: when it is full, Submit fails with ErrQueueFull instead of
// letting a burst of clients grow the daemon without bound.
type Manager struct {
	cfg    Config
	queue  chan *Job
	wg     sync.WaitGroup
	cycles *histogram

	// runSim is sim.Service.Run; tests substitute a deterministic stand-in
	// to hold jobs in chosen states without racing real simulations.
	runSim func(context.Context, sim.Request) (sim.Outcome, error)

	stopReaper chan struct{}

	mu sync.Mutex
	//gpulint:guardedby mu
	jobs map[string]*Job
	//gpulint:guardedby mu
	nextID uint64
	//gpulint:guardedby mu
	closed bool
	//gpulint:guardedby mu
	running int
	//gpulint:guardedby mu
	counts struct {
		submitted, rejected, done, failed, canceled uint64
	}
}

// newManager builds and starts a Manager: cfg.Workers runner goroutines
// plus the TTL reaper.
func newManager(svc *sim.Service, cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ResultTTL <= 0 {
		cfg.ResultTTL = 15 * time.Minute
	}
	m := &Manager{
		cfg:        cfg,
		queue:      make(chan *Job, cfg.QueueDepth),
		cycles:     newHistogram(cycleBuckets),
		runSim:     svc.Run,
		stopReaper: make(chan struct{}),
		jobs:       make(map[string]*Job),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	go m.reaper()
	return m
}

// Submit admits one job or fails fast: ErrQueueFull when the admission
// queue is at capacity, ErrShuttingDown once Shutdown began. A timeout of
// zero takes cfg.DefaultTimeout; cfg.MaxTimeout (when set) caps whatever
// the client asked for.
func (m *Manager) Submit(req sim.Request, timeout time.Duration) (*Job, error) {
	if timeout <= 0 {
		timeout = m.cfg.DefaultTimeout
	}
	if m.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > m.cfg.MaxTimeout) {
		timeout = m.cfg.MaxTimeout
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	m.nextID++
	job := &Job{
		ID:      fmt.Sprintf("job-%d", m.nextID),
		seq:     m.nextID,
		Key:     req.Key(),
		Req:     req,
		timeout: timeout,
		state:   StateQueued,
		created: time.Now(),
		changed: make(chan struct{}),
		events:  []Event{{Seq: 1, State: StateQueued}},
	}
	select {
	case m.queue <- job:
		m.jobs[job.ID] = job
		m.counts.submitted++
		return job, nil
	default:
		m.counts.rejected++
		return nil, ErrQueueFull
	}
}

// Get returns a tracked job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every tracked job in admission order. Sorting by the
// monotone admission sequence (not the created timestamp) keeps the order
// total even when two submissions land on the same clock reading.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	return jobs
}

// Cancel cancels a queued or running job. found reports whether the ID is
// tracked; the returned state is the job's state after the cancel took
// effect on the queued path (running jobs report canceled asynchronously,
// once the simulation observes its context).
func (m *Manager) Cancel(id string) (state State, found bool) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return "", false
	}
	if job.cancelJob() {
		m.mu.Lock()
		m.counts.canceled++
		m.mu.Unlock()
	}
	return job.State(), true
}

// runner drains the admission queue until Shutdown closes it.
func (m *Manager) runner() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// runJob executes one job under its own cancelable (and possibly
// deadlined) context, then folds the terminal state into the counters and
// the cycle histogram.
func (m *Manager) runJob(job *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	if job.timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), job.timeout)
	}
	defer cancel()
	if !job.markRunning(cancel) {
		return // canceled while queued; already counted
	}
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
	out, err := m.runSim(ctx, job.Req)
	state := job.finish(out, err)
	m.mu.Lock()
	m.running--
	switch state {
	case StateDone:
		m.counts.done++
	case StateFailed:
		m.counts.failed++
	case StateCanceled:
		m.counts.canceled++
	}
	m.mu.Unlock()
	if state == StateDone {
		m.cycles.observe(float64(out.Result.Cycles))
	}
}

// reaper prunes expired terminal jobs on a timer so a long-lived daemon's
// job table stays bounded by traffic x TTL.
func (m *Manager) reaper() {
	tick := m.cfg.ResultTTL / 4
	if tick < time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stopReaper:
			return
		case <-t.C:
			m.reap(time.Now())
		}
	}
}

// reap drops terminal jobs older than the result TTL as of now, returning
// how many it removed.
func (m *Manager) reap(now time.Time) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	//gpulint:ordered-irrelevant every expired job is deleted regardless of visit order
	for id, j := range m.jobs {
		j.mu.Lock()
		expired := j.state.Terminal() && now.Sub(j.finished) > m.cfg.ResultTTL
		j.mu.Unlock()
		if expired {
			delete(m.jobs, id)
			n++
		}
	}
	return n
}

// Shutdown stops admission and drains: queued jobs still run, runners
// exit when the queue is empty. If ctx expires before the drain
// completes, every live job is canceled and Shutdown waits for the
// runners to observe that before returning ctx.Err().
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	alreadyClosed := m.closed
	m.closed = true
	if !alreadyClosed {
		close(m.queue)
		close(m.stopReaper)
	}
	m.mu.Unlock()
	if alreadyClosed {
		return nil
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, j := range m.List() {
			if j.cancelJob() {
				m.mu.Lock()
				m.counts.canceled++
				m.mu.Unlock()
			}
		}
		<-done
		return ctx.Err()
	}
}

// managerStats is a point-in-time snapshot for /metrics.
type managerStats struct {
	Queued, Running      int
	QueueDepth, QueueCap int
	Tracked              int
	Submitted, Rejected  uint64
	Done, Failed         uint64
	Canceled             uint64
}

// stats snapshots the counters and derives the live-state gauges.
func (m *Manager) stats() managerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := managerStats{
		Running:    m.running,
		QueueDepth: len(m.queue),
		QueueCap:   cap(m.queue),
		Tracked:    len(m.jobs),
		Submitted:  m.counts.submitted,
		Rejected:   m.counts.rejected,
		Done:       m.counts.done,
		Failed:     m.counts.failed,
		Canceled:   m.counts.canceled,
	}
	//gpulint:ordered-irrelevant counting jobs in a state is order-free
	for _, j := range m.jobs {
		if j.State() == StateQueued {
			st.Queued++
		}
	}
	return st
}
