package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gpusched/internal/gpu"
	"gpusched/internal/sim"
)

// newTestServer builds a Server over a fresh sim.Service and serves it via
// httptest. A non-nil stub replaces the simulation function before any job
// can reference it, so tests can hold jobs in chosen states.
func newTestServer(t *testing.T, cfg Config, stub func(context.Context, sim.Request) (sim.Outcome, error)) (*Server, *httptest.Server) {
	t.Helper()
	svc := sim.NewService(sim.Options{})
	s := New(svc, cfg)
	if stub != nil {
		s.jobs.runSim = stub
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	})
	return s, ts
}

// gatedStub returns a simulation stand-in that reports each start on
// started and blocks until release closes (or the job's context ends).
func gatedStub() (stub func(context.Context, sim.Request) (sim.Outcome, error), started chan string, release chan struct{}) {
	started = make(chan string, 64)
	release = make(chan struct{})
	stub = func(ctx context.Context, req sim.Request) (sim.Outcome, error) {
		started <- req.Key()
		select {
		case <-release:
			return sim.Outcome{Result: gpu.Result{Cycles: 42}}, nil
		case <-ctx.Done():
			return sim.Outcome{}, ctx.Err()
		}
	}
	return stub, started, release
}

func doJSON(t *testing.T, method, url, body string) (int, []byte, http.Header) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// jobJSON mirrors jobView for decoding responses.
type jobJSON struct {
	ID      string `json:"id"`
	Key     string `json:"key"`
	State   State  `json:"state"`
	Error   string `json:"error"`
	Outcome *struct {
		Result struct {
			Cycles uint64 `json:"Cycles"`
		} `json:"Result"`
	} `json:"outcome"`
}

func submitJob(t *testing.T, base, body string) jobJSON {
	t.Helper()
	code, data, hdr := doJSON(t, http.MethodPost, base+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, data)
	}
	var j jobJSON
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatalf("decoding submit response %s: %v", data, err)
	}
	if want := "/v1/jobs/" + j.ID; hdr.Get("Location") != want {
		t.Errorf("Location = %q, want %q", hdr.Get("Location"), want)
	}
	return j
}

// pollJob GETs the job until it reaches a terminal state or the deadline.
func pollJob(t *testing.T, base, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, data, _ := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("status %s = %d: %s", id, code, data)
		}
		var j jobJSON
		if err := json.Unmarshal(data, &j); err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

const tinyBody = `{"workloads":["vadd"],"scale":"tiny","cores":4}`

// TestJobLifecycleEndToEnd drives a real simulation through the async API:
// submit, poll to done, read the outcome, and see it in /metrics.
func TestJobLifecycleEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	j := submitJob(t, ts.URL, tinyBody)
	if j.State != StateQueued && j.State != StateRunning && j.State != StateDone {
		t.Fatalf("fresh job state = %q", j.State)
	}
	got := pollJob(t, ts.URL, j.ID)
	if got.State != StateDone {
		t.Fatalf("job finished %q (%s), want done", got.State, got.Error)
	}
	if got.Outcome == nil || got.Outcome.Result.Cycles == 0 {
		t.Fatalf("done job has no outcome: %+v", got)
	}
	code, data, _ := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"gpuschedd_sim_simulated_total 1",
		`gpuschedd_jobs_finished_total{state="done"} 1`,
		"gpuschedd_job_cycles_count 1",
		"gpuschedd_queue_capacity 64",
		fmt.Sprintf("gpuschedd_sim_workers %d", runtime.GOMAXPROCS(0)),
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The job list includes it.
	code, data, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "")
	if code != http.StatusOK || !strings.Contains(string(data), j.ID) {
		t.Errorf("/v1/jobs = %d, missing %s: %s", code, j.ID, data)
	}
}

func TestSyncSimulate(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	code, data, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/simulate", tinyBody)
	if code != http.StatusOK {
		t.Fatalf("/v1/simulate = %d: %s", code, data)
	}
	var resp struct {
		Key     string `json:"key"`
		Outcome struct {
			Result struct {
				Cycles uint64 `json:"Cycles"`
			} `json:"Result"`
		} `json:"outcome"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Outcome.Result.Cycles == 0 || !strings.Contains(resp.Key, "vadd") {
		t.Fatalf("sync outcome %s", data)
	}
}

// TestPreemptiveJobEndToEnd submits a priority/deadline job through the
// async API: the convenience fields fold into the preemptive sched spec (and
// its cache key), the late arrival sets up the contention, and the job runs
// to completion.
func TestPreemptiveJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	body := `{"workloads":["spmv","vadd"],"arrivals":[0,500],"scale":"tiny","cores":4,` +
		`"sched":"preemptive","priority_kernel":1,"deadline_cycles":200000}`
	j := submitJob(t, ts.URL, body)
	if !strings.Contains(j.Key, "preemptive:1:200000") {
		t.Fatalf("job key %q does not carry the preemptive spec", j.Key)
	}
	if !strings.Contains(j.Key, "arr=0+500") {
		t.Fatalf("job key %q does not carry the arrivals", j.Key)
	}
	got := pollJob(t, ts.URL, j.ID)
	if got.State != StateDone {
		t.Fatalf("job finished %q (%s), want done", got.State, got.Error)
	}
	if got.Outcome == nil || got.Outcome.Result.Cycles == 0 {
		t.Fatalf("done job has no outcome: %+v", got)
	}

	// The convenience fields without the preemptive scheduler are a
	// validation error, not a silent drop.
	code, data, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		`{"workloads":["vadd"],"scale":"tiny","cores":4,"priority_kernel":1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("priority_kernel without preemptive sched = %d: %s", code, data)
	}
}

// TestErrorShapes pins the structured error envelope: validation failures
// are 400 with code "validation", unknown jobs are 404, simulation
// failures on the sync path are 500 with code "simulation".
func TestErrorShapes(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{http.MethodPost, "/v1/jobs", `{"workloads":["no-such"]}`, http.StatusBadRequest, "validation"},
		{http.MethodPost, "/v1/jobs", `{"workloads":[]}`, http.StatusBadRequest, "validation"},
		{http.MethodPost, "/v1/jobs", `not json`, http.StatusBadRequest, "validation"},
		{http.MethodPost, "/v1/jobs", `{"workloads":["vadd"],"sched":"nope"}`, http.StatusBadRequest, "validation"},
		{http.MethodPost, "/v1/jobs", `{"workloads":["vadd"],"timeout_ms":-1}`, http.StatusBadRequest, "validation"},
		{http.MethodGet, "/v1/jobs/job-999", "", http.StatusNotFound, "not_found"},
		{http.MethodDelete, "/v1/jobs/job-999", "", http.StatusNotFound, "not_found"},
		{http.MethodGet, "/v1/jobs/job-999/events", "", http.StatusNotFound, "not_found"},
		// An impossible machine is a simulation failure, not a validation one.
		{http.MethodPost, "/v1/simulate", `{"workloads":["vadd"],"scale":"tiny","cores":100000}`, http.StatusInternalServerError, "simulation"},
	}
	for _, c := range cases {
		code, data, _ := doJSON(t, c.method, ts.URL+c.path, c.body)
		if code != c.status {
			t.Errorf("%s %s = %d, want %d (%s)", c.method, c.path, code, c.status, data)
			continue
		}
		var env struct {
			Error apiError `json:"error"`
		}
		if err := json.Unmarshal(data, &env); err != nil || env.Error.Code != c.code {
			t.Errorf("%s %s error envelope = %s, want code %q", c.method, c.path, data, c.code)
		}
	}
}

// TestQueueFullBackpressure fills the 1-deep queue behind a blocked worker
// and expects 429 + Retry-After, with the rejection counted in /metrics.
func TestQueueFullBackpressure(t *testing.T) {
	stub, started, release := gatedStub()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1}, stub)

	a := submitJob(t, ts.URL, tinyBody)
	<-started // the worker holds job a now; the queue is empty again
	b := submitJob(t, ts.URL, `{"workloads":["spmv"],"scale":"tiny","cores":4}`)

	code, data, hdr := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"workloads":["stencil"],"scale":"tiny","cores":4}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d: %s", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(string(data), "queue_full") {
		t.Errorf("429 body %s missing code queue_full", data)
	}

	close(release)
	for _, id := range []string{a.ID, b.ID} {
		if got := pollJob(t, ts.URL, id); got.State != StateDone {
			t.Errorf("job %s = %q after release", id, got.State)
		}
	}
	_, data, _ = doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	if !strings.Contains(string(data), "gpuschedd_jobs_rejected_total 1") {
		t.Errorf("/metrics missing rejected counter:\n%s", data)
	}
}

// TestCancelRunningAndQueued cancels a running job (via its context) and a
// queued one (before any worker sees it).
func TestCancelRunningAndQueued(t *testing.T) {
	stub, started, release := gatedStub()
	defer close(release)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, stub)

	running := submitJob(t, ts.URL, tinyBody)
	<-started
	queued := submitJob(t, ts.URL, `{"workloads":["spmv"],"scale":"tiny","cores":4}`)

	// Cancel the queued job first: it must never start.
	code, data, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, "")
	if code != http.StatusOK {
		t.Fatalf("cancel queued = %d: %s", code, data)
	}
	if got := pollJob(t, ts.URL, queued.ID); got.State != StateCanceled {
		t.Errorf("queued job after cancel = %q", got.State)
	}

	code, data, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, "")
	if code != http.StatusOK {
		t.Fatalf("cancel running = %d: %s", code, data)
	}
	if got := pollJob(t, ts.URL, running.ID); got.State != StateCanceled {
		t.Errorf("running job after cancel = %q (%s)", got.State, got.Error)
	}
	select {
	case <-started:
		t.Error("canceled queued job reached a worker")
	default:
	}
}

// TestPerJobDeadline: a job whose timeout_ms elapses fails with a deadline
// error rather than running forever.
func TestPerJobDeadline(t *testing.T) {
	stub, _, release := gatedStub()
	defer close(release)
	_, ts := newTestServer(t, Config{Workers: 1}, stub)
	j := submitJob(t, ts.URL, `{"workloads":["vadd"],"scale":"tiny","cores":4,"timeout_ms":50}`)
	got := pollJob(t, ts.URL, j.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "deadline") {
		t.Fatalf("deadlined job = %q (%s), want failed with deadline error", got.State, got.Error)
	}
}

// readSSEEvent reads one "event:/id:/data:" block from an SSE stream.
func readSSEEvent(t *testing.T, r *bufio.Reader) (name string, ev Event, eof bool) {
	t.Helper()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return "", Event{}, true
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "" && name != "":
			return name, ev, false
		}
	}
}

// TestSSEEventOrdering subscribes while the job is running and must see
// queued, running, done in order with consecutive sequence numbers, then
// a clean end of stream.
func TestSSEEventOrdering(t *testing.T) {
	stub, started, release := gatedStub()
	_, ts := newTestServer(t, Config{Workers: 1}, stub)
	j := submitJob(t, ts.URL, tinyBody)
	<-started

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)

	want := []State{StateQueued, StateRunning}
	for i, w := range want {
		name, ev, eof := readSSEEvent(t, r)
		if eof {
			t.Fatalf("stream ended before %q", w)
		}
		if State(name) != w || ev.State != w || ev.Seq != i+1 {
			t.Fatalf("event %d = %s/%+v, want %q seq %d", i, name, ev, w, i+1)
		}
	}
	close(release)
	name, ev, eof := readSSEEvent(t, r)
	if eof || State(name) != StateDone || ev.Seq != 3 || ev.Cycles != 42 {
		t.Fatalf("terminal event = %s/%+v (eof=%t), want done seq 3 cycles 42", name, ev, eof)
	}
	if _, _, eof := readSSEEvent(t, r); !eof {
		t.Error("stream did not close after the terminal event")
	}

	// A late subscriber to a finished job replays history and closes.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var seen []string
	r2 := bufio.NewReader(resp2.Body)
	for {
		name, _, eof := readSSEEvent(t, r2)
		if eof {
			break
		}
		seen = append(seen, name)
	}
	if got := strings.Join(seen, ","); got != "queued,running,done" {
		t.Errorf("replayed events = %q", got)
	}
}

// TestGracefulShutdownDrains: Shutdown must flip readiness to draining
// (while liveness stays 200 so routers keep status queries flowing),
// refuse new jobs with 503, and wait for in-flight jobs to finish.
func TestGracefulShutdownDrains(t *testing.T) {
	stub, started, release := gatedStub()
	s, ts := newTestServer(t, Config{Workers: 1}, stub)
	j := submitJob(t, ts.URL, tinyBody)
	<-started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining is visible on readiness before the drain completes, while
	// liveness stays 200 (draining shards still answer status queries).
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, data, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz during drain = %d (%s), want 200: liveness must not flip", code, data)
	}
	code, data, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", tinyBody)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(data), "shutting_down") {
		t.Fatalf("submit during drain = %d: %s", code, data)
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	if got := pollJob(t, ts.URL, j.ID); got.State != StateDone {
		t.Errorf("drained job = %q, want done", got.State)
	}
}

// TestShutdownDeadlineCancelsJobs: when the drain context expires, live
// jobs are canceled instead of blocking exit forever.
func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	stub, started, release := gatedStub()
	defer close(release)
	s, ts := newTestServer(t, Config{Workers: 1}, stub)
	j := submitJob(t, ts.URL, tinyBody)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if got := pollJob(t, ts.URL, j.ID); got.State != StateCanceled {
		t.Errorf("job after forced shutdown = %q", got.State)
	}
}

// TestConcurrentSubmissionsDeduplicate is the -race end-to-end check: N
// concurrent HTTP submissions of one request simulate exactly once, and
// the memo hits show up in /metrics.
func TestConcurrentSubmissionsDeduplicate(t *testing.T) {
	s, ts := newTestServer(t, Config{}, nil)
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(tinyBody)))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d = %d: %s", i, resp.StatusCode, data)
				return
			}
			var j jobJSON
			if err := json.Unmarshal(data, &j); err != nil {
				t.Error(err)
				return
			}
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()
	var cycles uint64
	for _, id := range ids {
		if id == "" {
			t.Fatal("missing job id")
		}
		got := pollJob(t, ts.URL, id)
		if got.State != StateDone {
			t.Fatalf("job %s = %q (%s)", id, got.State, got.Error)
		}
		if cycles == 0 {
			cycles = got.Outcome.Result.Cycles
		} else if got.Outcome.Result.Cycles != cycles {
			t.Errorf("job %s saw %d cycles, others saw %d", id, got.Outcome.Result.Cycles, cycles)
		}
	}
	if st := s.svc.Stats(); st.Simulated != 1 || st.MemoHits != n-1 {
		t.Fatalf("sim stats = %+v, want 1 simulated, %d memo hits", st, n-1)
	}
	_, data, _ := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	for _, want := range []string{
		"gpuschedd_sim_simulated_total 1",
		fmt.Sprintf("gpuschedd_sim_memo_hits_total %d", n-1),
		fmt.Sprintf(`gpuschedd_jobs_finished_total{state="done"} %d`, n),
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestResultTTLReap: finished jobs expire from the table after the TTL
// and then 404, keeping a long-lived daemon bounded.
func TestResultTTLReap(t *testing.T) {
	s, ts := newTestServer(t, Config{ResultTTL: time.Minute}, nil)
	j := submitJob(t, ts.URL, tinyBody)
	pollJob(t, ts.URL, j.ID)
	if n := s.jobs.reap(time.Now()); n != 0 {
		t.Fatalf("fresh job reaped (%d)", n)
	}
	if n := s.jobs.reap(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("reap after TTL = %d, want 1", n)
	}
	code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID, "")
	if code != http.StatusNotFound {
		t.Fatalf("expired job GET = %d, want 404", code)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	code, data, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/workloads", "")
	if code != http.StatusOK {
		t.Fatalf("/v1/workloads = %d", code)
	}
	for _, want := range []string{`"vadd"`, `"spmv"`, `"class"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/v1/workloads missing %s", want)
		}
	}
}

// TestHistogramRendering pins the Prometheus text rendering: cumulative
// buckets, +Inf, sum and count.
func TestHistogramRendering(t *testing.T) {
	h := newHistogram([]float64{10, 100})
	for _, v := range []float64{5, 50, 500, 7} {
		h.observe(v)
	}
	var buf bytes.Buffer
	h.write(&buf, "x", "test histogram")
	got := buf.String()
	for _, want := range []string{
		`x_bucket{le="10"} 2`,
		`x_bucket{le="100"} 3`,
		`x_bucket{le="+Inf"} 4`,
		"x_sum 562",
		"x_count 4",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("histogram output missing %q:\n%s", want, got)
		}
	}
}
