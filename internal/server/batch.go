package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"gpusched/internal/sim"
)

// maxBatchItems bounds one POST /v1/jobs:batch submission. The cap keeps
// a single connection from monopolizing the simulation pool; bigger
// sweeps belong on the async job API (or across several batches).
const maxBatchItems = 256

// batchEnvelope is the request body of POST /v1/jobs:batch: a list of
// flat simulation requests plus one deadline covering the whole batch.
type batchEnvelope struct {
	Items     []json.RawMessage `json:"items"`
	TimeoutMS int64             `json:"timeout_ms"`
}

// batchItemResult is one NDJSON line of the batch response, emitted in
// completion order (not submission order — Index correlates). Key is the
// canonical cache identity, echoed so clients and routers can correlate
// items with cache entries and shard placement without recomputing it.
type batchItemResult struct {
	Index   int          `json:"index"`
	Key     string       `json:"key"`
	Outcome *sim.Outcome `json:"outcome,omitempty"`
	Error   *apiError    `json:"error,omitempty"`
}

// handleBatch runs a mixed batch synchronously, fanning the items into
// the sim.Service (whose worker pool bounds actual concurrency — identical
// items coalesce via singleflight) and streaming one NDJSON line per item
// as it completes. Streaming means a batch of one slow and many cached
// requests delivers the cached answers immediately.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "daemon is draining; no new batches")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "validation", "reading body: %v", err)
		return
	}
	var env batchEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		writeError(w, http.StatusBadRequest, "validation", "%v", err)
		return
	}
	if len(env.Items) == 0 {
		writeError(w, http.StatusBadRequest, "validation", "batch has no items")
		return
	}
	if len(env.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest, "validation", "batch has %d items (max %d)", len(env.Items), maxBatchItems)
		return
	}
	if env.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "validation", "timeout_ms must be >= 0 (got %d)", env.TimeoutMS)
		return
	}
	// Decode and validate every item up front: a malformed item fails the
	// whole batch with a 400 naming its index, before any work starts.
	reqs := make([]sim.Request, len(env.Items))
	for i, raw := range env.Items {
		if err := json.Unmarshal(raw, &reqs[i]); err != nil {
			writeError(w, http.StatusBadRequest, "validation", "item %d: %v", i, err)
			return
		}
		if err := reqs[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "validation", "item %d: %v", i, err)
			return
		}
	}

	timeout := time.Duration(env.TimeoutMS) * time.Millisecond
	if timeout <= 0 || timeout > s.cfg.SyncTimeout {
		timeout = s.cfg.SyncTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	s.batch.batches.Add(1)
	results := make(chan batchItemResult)
	for i := range reqs {
		go func(i int, req sim.Request) {
			out, err := s.svc.Run(ctx, req)
			res := batchItemResult{Index: i, Key: req.Key()}
			if err != nil {
				res.Error = &apiError{Code: "simulation", Message: err.Error()}
			} else {
				res.Outcome = &out
			}
			results <- res
		}(i, reqs[i])
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for range reqs {
		res := <-results
		if res.Error != nil {
			s.batch.itemsFailed.Add(1)
		} else {
			s.batch.itemsDone.Add(1)
		}
		enc.Encode(res) //nolint:errcheck // the stream is already committed
		if flusher != nil {
			flusher.Flush()
		}
	}
}
