package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpusched/internal/sim"
	"gpusched/internal/sm"
	"gpusched/internal/workloads"
)

// tinyReq is the cheapest real simulation; seq varies the cache key.
func tinyReq(seq int) sim.Request {
	return sim.Request{
		Workloads: []string{"vadd"},
		Sched:     sim.LCS(),
		Warp:      sm.PolicyGTO,
		Scale:     workloads.ScaleTest,
		Cores:     4,
		MaxCycles: 20_000_000 + uint64(seq),
	}
}

func batchBody(t *testing.T, reqs ...sim.Request) string {
	t.Helper()
	items := make([]json.RawMessage, len(reqs))
	for i, r := range reqs {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = raw
	}
	body, err := json.Marshal(map[string]any{"items": items})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestBatchRoundTrip: a batch with duplicates streams NDJSON, echoes
// every item's canonical key, coalesces duplicates via singleflight, and
// counts items in the batch metrics.
func TestBatchRoundTrip(t *testing.T) {
	svc := sim.NewService(sim.Options{})
	s := New(svc, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqs := []sim.Request{tinyReq(0), tinyReq(1), tinyReq(0), tinyReq(1), tinyReq(0)}
	resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(batchBody(t, reqs...)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	type line struct {
		Index   int          `json:"index"`
		Key     string       `json:"key"`
		Outcome *sim.Outcome `json:"outcome"`
		Error   *apiError    `json:"error"`
	}
	seen := map[int]line{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, dup := seen[l.Index]; dup {
			t.Fatalf("index %d emitted twice", l.Index)
		}
		seen[l.Index] = l
	}
	if len(seen) != len(reqs) {
		t.Fatalf("got %d lines, want %d", len(seen), len(reqs))
	}
	for i, req := range reqs {
		l, ok := seen[i]
		if !ok {
			t.Errorf("index %d missing", i)
			continue
		}
		if l.Error != nil {
			t.Errorf("index %d failed: %s", i, l.Error.Message)
		}
		if l.Key != req.Key() {
			t.Errorf("index %d key = %q, want %q", i, l.Key, req.Key())
		}
		if l.Outcome == nil {
			t.Errorf("index %d has no outcome", i)
		}
	}
	// Duplicates coalesce: 5 items, 2 unique keys, at most 2 simulations
	// (singleflight may miss a coalesce window, never the memo afterwards).
	if st := svc.Stats(); st.Simulated != 2 {
		t.Errorf("batch of 5 with 2 unique keys simulated %d times, want 2", st.Simulated)
	}
	if bs := s.batchStats(); bs.Batches != 1 || bs.ItemsDone != 5 || bs.ItemsFailed != 0 {
		t.Errorf("batch stats = %+v, want 1 batch / 5 done / 0 failed", bs)
	}
}

// TestBatchValidation: malformed batches fail whole with a 400 naming
// the offending item, before any work starts.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	cases := []struct {
		name, body, wantFrag string
	}{
		{"empty", `{"items":[]}`, "no items"},
		{"not json", `{`, "unexpected end"},
		{"bad item", `{"items":[{"workloads":["no-such-workload"]}]}`, "item 0"},
		{"bad second item", batchBody(t, tinyReq(0))[:0] + `{"items":[` + mustItem(t, tinyReq(0)) + `,{"workloads":[]}]}`, "item 1"},
		{"negative timeout", `{"items":[` + mustItem(t, tinyReq(0)) + `],"timeout_ms":-5}`, "timeout_ms"},
	}
	for _, tc := range cases {
		code, data, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs:batch", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
		if !bytes.Contains(data, []byte(tc.wantFrag)) {
			t.Errorf("%s: error %s does not mention %q", tc.name, data, tc.wantFrag)
		}
	}

	// Oversized batches bounce on the count alone.
	items := make([]string, maxBatchItems+1)
	for i := range items {
		items[i] = mustItem(t, tinyReq(i))
	}
	code, data, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs:batch",
		`{"items":[`+strings.Join(items, ",")+`]}`)
	if code != http.StatusBadRequest || !bytes.Contains(data, []byte("max")) {
		t.Errorf("oversized batch: %d %s, want 400 naming the cap", code, data)
	}
}

func mustItem(t *testing.T, r sim.Request) string {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestCacheEndpoint: /v1/cache/{addr} serves the raw content-addressed
// entry after a simulation, 404s on unknown or malformed addresses, and
// the key round-trips through DecodeCacheEntry.
func TestCacheEndpoint(t *testing.T) {
	svc := sim.NewService(sim.Options{CacheDir: t.TempDir()})
	s := New(svc, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := tinyReq(0)
	code, _, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/simulate", mustItem(t, req))
	if code != http.StatusOK {
		t.Fatalf("simulate: %d", code)
	}
	addr := sim.CacheAddr(req.Key())
	code, data, hdr := doJSON(t, http.MethodGet, ts.URL+"/v1/cache/"+addr, "")
	if code != http.StatusOK {
		t.Fatalf("cache get: %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if _, ok := sim.DecodeCacheEntry(data, req.Key()); !ok {
		t.Error("served entry fails verification against its key")
	}
	for _, bad := range []string{strings.Repeat("0", 64), "shortaddr", "../escape"} {
		code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/cache/"+bad, "")
		if code != http.StatusNotFound {
			t.Errorf("GET /v1/cache/%s = %d, want 404", bad, code)
		}
	}
}

// TestStatsEndpoint: /v1/stats reports readiness, job counters, batch
// counters, and the sim cache/dedup counters the router aggregates.
func TestStatsEndpoint(t *testing.T) {
	svc := sim.NewService(sim.Options{})
	s := New(svc, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ { // same key twice: 1 simulated + 1 memo hit
		if code, data, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/simulate", mustItem(t, tinyReq(0))); code != http.StatusOK {
			t.Fatalf("simulate %d: %d %s", i, code, data)
		}
	}
	code, data, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var view struct {
		Ready    bool      `json:"ready"`
		Draining bool      `json:"draining"`
		Sim      sim.Stats `json:"sim"`
		Jobs     struct {
			Submitted uint64 `json:"submitted"`
		} `json:"jobs"`
		Batch struct {
			Batches uint64 `json:"batches"`
		} `json:"batch"`
	}
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatalf("decoding stats: %v (%s)", err, data)
	}
	if !view.Ready || view.Draining {
		t.Errorf("fresh server stats: ready=%t draining=%t", view.Ready, view.Draining)
	}
	if view.Sim.Simulated != 1 || view.Sim.MemoHits != 1 {
		t.Errorf("sim counters = %+v, want 1 simulated + 1 memo hit", view.Sim)
	}
}

// TestReadyzQueueSaturation: readiness (not liveness) flips 503 when the
// admission queue is full, and recovers as the queue drains.
func TestReadyzQueueSaturation(t *testing.T) {
	stub, started, release := gatedStub()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1}, stub)

	expectReady := func(want int, when string) {
		t.Helper()
		code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
		if code != want {
			t.Errorf("readyz %s = %d, want %d", when, code, want)
		}
	}
	expectReady(http.StatusOK, "on a fresh server")

	// One job runs (occupying the worker), one sits queued: the queue is
	// full and readiness must flip.
	for i := 0; i < 2; i++ {
		code, data, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
			fmt.Sprintf(`{"workloads":["vadd"],"scale":"test","cores":4,"maxcycles":%d}`, 20_000_000+i))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, code, data)
		}
	}
	<-started
	expectReady(http.StatusServiceUnavailable, "with a saturated queue")
	// Liveness stays green the whole time.
	if code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Errorf("healthz = %d during saturation, want 200", code)
	}
	close(release)
	deadline := 200
	for ; deadline > 0; deadline-- {
		code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
		if code == http.StatusOK {
			break
		}
	}
	if deadline == 0 {
		t.Error("readyz never recovered after the queue drained")
	}
}
