package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheGeometry(t *testing.T) {
	c := NewCache(16*1024, 128, 4)
	if c.NumSets() != 32 || c.Ways() != 4 {
		t.Fatalf("geometry = %d sets x %d ways, want 32x4", c.NumSets(), c.Ways())
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two set count did not panic")
		}
	}()
	NewCache(3*128, 128, 1) // 3 sets
}

func TestCacheFillThenLookup(t *testing.T) {
	c := NewCache(1024, 128, 2)
	if c.Lookup(0, false) {
		t.Fatal("empty cache hit")
	}
	ev := c.Fill(0, false)
	if ev.Valid {
		t.Fatalf("fill into empty set evicted %+v", ev)
	}
	if !c.Lookup(0, false) {
		t.Fatal("filled line missed")
	}
	if !c.Contains(0) {
		t.Fatal("Contains false for resident line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 4 sets, 128B lines. Same-set addresses differ by 4*128.
	c := NewCache(1024, 128, 2)
	setStride := uint64(4 * 128)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Fill(a, false)
	c.Fill(b, false)
	c.Lookup(a, false) // refresh a: b is now LRU
	ev := c.Fill(d, false)
	if !ev.Valid || ev.LineAddr != b {
		t.Fatalf("evicted %+v, want line %d", ev, b)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := NewCache(256, 128, 1) // direct-mapped, 2 sets
	c.Fill(0, true)
	ev := c.Fill(2*128, false) // same set 0
	if !ev.Valid || !ev.Dirty || ev.LineAddr != 0 {
		t.Fatalf("dirty eviction = %+v", ev)
	}
}

func TestCacheLookupMarkDirty(t *testing.T) {
	c := NewCache(256, 128, 1)
	c.Fill(0, false)
	c.Lookup(0, true)
	ev := c.Fill(2*128, false)
	if !ev.Dirty {
		t.Fatal("markDirty lookup did not dirty the line")
	}
}

func TestCacheRefillRefreshesNotEvicts(t *testing.T) {
	c := NewCache(256, 128, 2) // 1 set, 2 ways
	c.Fill(0, false)
	c.Fill(128, false)
	ev := c.Fill(0, true) // already present
	if ev.Valid {
		t.Fatalf("refill evicted %+v", ev)
	}
	// 0 was refreshed, so 128 is LRU.
	ev = c.Fill(256, false)
	if ev.LineAddr != 128 {
		t.Fatalf("evicted %d, want 128", ev.LineAddr)
	}
	// Refill marked 0 dirty.
	ev = c.Fill(384, false)
	if ev.LineAddr != 0 || !ev.Dirty {
		t.Fatalf("eviction = %+v, want dirty line 0", ev)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(256, 128, 1)
	c.Fill(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(0) {
		t.Fatal("line survived invalidate")
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Fatal("double invalidate reported present")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(1024, 128, 2)
	c.Fill(0, true)
	c.Fill(128, false)
	c.Fill(256, true)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("Flush returned %d dirty lines, want 2", len(dirty))
	}
	if c.Contains(0) || c.Contains(128) {
		t.Fatal("lines survived flush")
	}
}

func TestCacheCapacityProperty(t *testing.T) {
	// Property: after filling W distinct same-set lines into a W-way cache,
	// all W remain resident; a W+1'th evicts exactly one of them.
	f := func(waysRaw uint8, seed uint16) bool {
		ways := int(waysRaw%7) + 1
		sets := 8
		c := NewCache(sets*ways*128, 128, ways)
		set := uint64(seed) % uint64(sets)
		lineFor := func(i int) uint64 { return (uint64(i)*uint64(sets) + set) * 128 }
		for i := 0; i < ways; i++ {
			if ev := c.Fill(lineFor(i), false); ev.Valid {
				return false
			}
		}
		for i := 0; i < ways; i++ {
			if !c.Contains(lineFor(i)) {
				return false
			}
		}
		ev := c.Fill(lineFor(ways), false)
		return ev.Valid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMSHRBasic(t *testing.T) {
	m := NewMSHR(2, 2)
	if m.Pending(0) {
		t.Fatal("empty MSHR pending")
	}
	if !m.Allocate(0, 10) {
		t.Fatal("allocate failed on empty MSHR")
	}
	if !m.Pending(0) {
		t.Fatal("allocated line not pending")
	}
	if !m.Merge(0, 11) {
		t.Fatal("merge failed with capacity")
	}
	if m.Merge(0, 12) {
		t.Fatal("merge succeeded past capacity")
	}
	if !m.Allocate(128, 20) {
		t.Fatal("second allocate failed")
	}
	if !m.Full() {
		t.Fatal("MSHR not full at capacity")
	}
	if m.Allocate(256, 30) {
		t.Fatal("allocate succeeded on full MSHR")
	}
	toks := m.Complete(0)
	if len(toks) != 2 || toks[0] != 10 || toks[1] != 11 {
		t.Fatalf("Complete = %v, want [10 11]", toks)
	}
	if m.Pending(0) || m.Used() != 1 {
		t.Fatal("completion did not retire entry")
	}
	if got := m.Complete(999); got != nil {
		t.Fatalf("Complete on unknown line = %v, want nil", got)
	}
}

func TestMSHRAllocatePendingPanics(t *testing.T) {
	m := NewMSHR(4, 4)
	m.Allocate(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("Allocate on pending line did not panic")
		}
	}()
	m.Allocate(0, 2)
}

func TestMSHRMergeUnknownPanics(t *testing.T) {
	m := NewMSHR(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("Merge on unknown line did not panic")
		}
	}()
	m.Merge(0, 1)
}
