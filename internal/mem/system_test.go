package mem

import (
	"testing"
)

// harness drives a System as a single fake core.
type harness struct {
	t   *testing.T
	cfg *Config
	sys *System
	l1  *L1
	now uint64
}

func newHarness(t *testing.T, mut func(*Config)) *harness {
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	sys := NewSystem(&cfg, 1)
	return &harness{
		t:   t,
		cfg: &cfg,
		sys: sys,
		l1:  NewL1(&cfg, 0, sys.Port(0)),
	}
}

// step advances one cycle and returns any response delivered this cycle.
func (h *harness) step() (Response, bool) {
	h.sys.Tick(h.now)
	resp, ok := h.sys.PopResponse(0, h.now)
	h.now++
	return resp, ok
}

// waitResponse runs until a response arrives or the deadline passes.
func (h *harness) waitResponse(deadline uint64) (Response, uint64) {
	for h.now < deadline {
		if resp, ok := h.step(); ok {
			return resp, h.now - 1
		}
	}
	h.t.Fatalf("no response by cycle %d", deadline)
	return Response{}, 0
}

func TestLoadMissRoundTrip(t *testing.T) {
	h := newHarness(t, nil)
	if res := h.l1.Load(0, 42, h.now); res != AccessPending {
		t.Fatalf("cold load = %v, want pending", res)
	}
	resp, at := h.waitResponse(2000)
	if resp.Token != 42 || resp.LineAddr != 0 {
		t.Fatalf("response = %+v", resp)
	}
	// Round trip must include xbar both ways plus DRAM service.
	wantMin := 2*h.cfg.XbarLatency + h.cfg.DRAMtCAS + h.cfg.DRAMtBurst
	if at < wantMin {
		t.Fatalf("round trip %d cycles, want >= %d", at, wantMin)
	}
	toks := h.l1.OnResponse(resp, false)
	if len(toks) != 1 || toks[0] != 42 {
		t.Fatalf("OnResponse tokens = %v", toks)
	}
	if !h.l1.Contains(0) {
		t.Fatal("L1 not filled by response")
	}
	// Second access now hits.
	if res := h.l1.Load(0, 43, h.now); res != AccessHit {
		t.Fatalf("warm load = %v, want hit", res)
	}
	if !h.sys.Drained(h.now) {
		t.Fatal("system not drained")
	}
}

func TestL1MergeSingleRequest(t *testing.T) {
	h := newHarness(t, nil)
	if res := h.l1.Load(0, 1, h.now); res != AccessPending {
		t.Fatal("primary miss not pending")
	}
	if res := h.l1.Load(0, 2, h.now); res != AccessPending {
		t.Fatal("secondary miss not merged")
	}
	resp, _ := h.waitResponse(2000)
	toks := h.l1.OnResponse(resp, false)
	if len(toks) != 2 {
		t.Fatalf("merged tokens = %v, want two", toks)
	}
	// Exactly one DRAM read happened.
	d := h.sys.DRAMStats()
	if d.Reads != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (merge failed)", d.Reads)
	}
}

func TestL2HitFasterThanDRAM(t *testing.T) {
	h := newHarness(t, nil)
	h.l1.Load(0, 1, h.now)
	resp, coldAt := h.waitResponse(2000)
	h.l1.OnResponse(resp, false)
	// Evict from L1 only: load many distinct lines mapping to the same L1
	// set but different L2 sets... simpler: invalidate L1 by constructing a
	// fresh one sharing the same system (the L2 retains the line).
	h.l1 = NewL1(h.cfg, 0, h.sys.Port(0))
	start := h.now
	h.l1.Load(0, 2, h.now)
	_, warmAt := h.waitResponse(h.now + 2000)
	warm := warmAt - start
	if warm >= coldAt {
		t.Fatalf("L2 hit took %d cycles, cold miss took %d", warm, coldAt)
	}
	l2 := h.sys.L2Stats()
	if l2.Hits != 1 {
		t.Fatalf("L2 stats = %+v, want one hit", l2)
	}
}

func TestStoreReachesDRAMOnL2Miss(t *testing.T) {
	h := newHarness(t, nil)
	if res := h.l1.Store(0, h.now); res != AccessPending {
		t.Fatalf("store = %v", res)
	}
	for i := 0; i < 500; i++ {
		h.step()
	}
	d := h.sys.DRAMStats()
	if d.Writes != 1 {
		t.Fatalf("DRAM writes = %d, want 1 (no-allocate store miss)", d.Writes)
	}
	if !h.sys.Drained(h.now) {
		t.Fatal("store left system undrained")
	}
}

func TestStoreHitsInL2(t *testing.T) {
	h := newHarness(t, nil)
	// Warm the line into L2 via a load.
	h.l1.Load(0, 1, h.now)
	resp, _ := h.waitResponse(2000)
	h.l1.OnResponse(resp, false)
	before := h.sys.DRAMStats().Writes
	h.l1.Store(0, h.now)
	for i := 0; i < 500; i++ {
		h.step()
	}
	d := h.sys.DRAMStats()
	if d.Writes != before {
		t.Fatalf("store hit still wrote DRAM (%d -> %d writes)", before, d.Writes)
	}
	l2 := h.sys.L2Stats()
	if l2.Hits == 0 {
		t.Fatal("store did not hit in L2")
	}
}

func TestAtomicRoundTripBypassesL1(t *testing.T) {
	h := newHarness(t, nil)
	if res := h.l1.Atomic(0, 9, h.now); res != AccessPending {
		t.Fatalf("atomic = %v", res)
	}
	resp, _ := h.waitResponse(2000)
	toks := h.l1.OnResponse(resp, true)
	if len(toks) != 1 || toks[0] != 9 {
		t.Fatalf("atomic tokens = %v", toks)
	}
	if h.l1.Contains(0) {
		t.Fatal("atomic filled L1")
	}
	// Atomics dirty the L2 line: spill it and expect a write-back.
	// (White-box check via partition stats after flush is indirect; just
	// verify the L2 holds it dirty by checking a subsequent store-hit.)
	l2 := h.sys.L2Stats()
	if l2.Accesses == 0 {
		t.Fatal("atomic never reached L2")
	}
}

func TestResponseTokenRoutingManyLoads(t *testing.T) {
	h := newHarness(t, nil)
	const n = 16
	issued := 0
	got := map[uint32]bool{}
	for h.now < 5000 && len(got) < n {
		if issued < n {
			res := h.l1.Load(uint64(issued*h.cfg.LineBytes), uint32(issued), h.now)
			if res == AccessPending {
				issued++
			} else if res == AccessHit {
				t.Fatalf("unexpected hit on cold line %d", issued)
			}
		}
		if resp, ok := h.step(); ok {
			for _, tok := range h.l1.OnResponse(resp, false) {
				if got[tok] {
					t.Fatalf("token %d delivered twice", tok)
				}
				got[tok] = true
			}
		}
	}
	if len(got) != n {
		t.Fatalf("received %d/%d responses", len(got), n)
	}
	if !h.sys.Drained(h.now) {
		t.Fatal("system not drained after all responses")
	}
}

func TestBackpressureStallsNotDrops(t *testing.T) {
	// Tiny queues everywhere: hammer one partition and verify every issued
	// load still completes exactly once.
	h := newHarness(t, func(c *Config) {
		c.XbarQueueCap = 2
		c.DRAMQueueCap = 2
		c.L2MSHREntries = 2
		c.L1MSHREntries = 4
		c.L1MissQueueCap = 2
	})
	const n = 32
	issued, completed := 0, 0
	stalls := 0
	for h.now < 50000 && completed < n {
		if issued < n {
			// All lines map to partition 0 (stride = partitions*line).
			addr := uint64(issued) * uint64(h.cfg.Partitions*h.cfg.LineBytes)
			switch h.l1.Load(addr, uint32(issued), h.now) {
			case AccessPending:
				issued++
			case AccessStall:
				stalls++
			case AccessHit:
				t.Fatalf("cold line %d hit", issued)
			}
		}
		if resp, ok := h.step(); ok {
			completed += len(h.l1.OnResponse(resp, false))
		}
	}
	if completed != n {
		t.Fatalf("completed %d/%d under backpressure", completed, n)
	}
	if stalls == 0 {
		t.Fatal("expected structural stalls with tiny queues")
	}
	if !h.sys.Drained(h.now) {
		t.Fatal("undrained after backpressure test")
	}
}

func TestL1MSHRStallWhenFull(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.L1MSHREntries = 2
	})
	if h.l1.Load(0, 1, h.now) != AccessPending {
		t.Fatal("load 1")
	}
	if h.l1.Load(uint64(h.cfg.LineBytes), 2, h.now) != AccessPending {
		t.Fatal("load 2")
	}
	if res := h.l1.Load(uint64(2*h.cfg.LineBytes), 3, h.now); res != AccessStall {
		t.Fatalf("third distinct miss = %v, want stall (MSHR full)", res)
	}
	if h.l1.CacheStats().MSHRStalls == 0 {
		t.Fatal("MSHR stall not counted")
	}
}

func TestL1MergeCapStall(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.L1MSHRMerges = 2
	})
	h.l1.Load(0, 1, h.now)
	if h.l1.Load(0, 2, h.now) != AccessPending {
		t.Fatal("first merge rejected")
	}
	if res := h.l1.Load(0, 3, h.now); res != AccessStall {
		t.Fatalf("merge past cap = %v, want stall", res)
	}
}

func TestDirtyL2EvictionWritesBack(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.Partitions = 1
		c.L2BytesPerPartition = 2 * 128 // 1 set... need pow2 sets: 2 lines, 2 ways -> 1 set
		c.L2Ways = 2
	})
	// Dirty line 0 in L2 via atomic.
	h.l1.Atomic(0, 1, h.now)
	resp, _ := h.waitResponse(3000)
	h.l1.OnResponse(resp, true)
	// Displace it with two more distinct lines (fills via loads).
	for i := 1; i <= 2; i++ {
		for h.l1.Load(uint64(i*128), uint32(10+i), h.now) == AccessStall {
			h.step()
		}
		r, _ := h.waitResponse(h.now + 3000)
		h.l1.OnResponse(r, false)
	}
	for i := 0; i < 1000; i++ {
		h.step()
	}
	d := h.sys.DRAMStats()
	if d.Writes == 0 {
		t.Fatal("dirty eviction never wrote back to DRAM")
	}
	l2 := h.sys.L2Stats()
	if l2.WriteBacks == 0 || l2.Evictions == 0 {
		t.Fatalf("L2 stats = %+v, want evictions and writebacks", l2)
	}
}

func TestPackWaiterRoundTrip(t *testing.T) {
	for _, c := range []int{0, 1, 14, 255} {
		for _, tok := range []uint32{0, 1, 0xFFFFFF} {
			core, got := unpackWaiter(packWaiter(c, tok))
			if core != c || got != tok {
				t.Fatalf("pack/unpack (%d,%d) = (%d,%d)", c, tok, core, got)
			}
		}
	}
}

// TestDrainedCounterMatchesScan drives mixed traffic (loads, stores,
// atomics, plus write-backs from dirty evictions) and checks every cycle
// that the O(1) in-flight counter agrees with the structural scan it
// replaced. Any request the counter leaks or double-frees diverges here.
func TestDrainedCounterMatchesScan(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.XbarQueueCap = 2
		c.DRAMQueueCap = 2
		c.L2MSHREntries = 2
		c.L2BytesPerPartition = 4 * 128
		c.L2Ways = 2
	})
	check := func() {
		if got, want := h.sys.Drained(h.now), h.sys.drainedScan(); got != want {
			t.Fatalf("cycle %d: Drained() = %t, scan = %t (inflight=%d)",
				h.now, got, want, h.sys.inflight)
		}
	}
	issued := 0
	for h.now < 20000 && (issued < 48 || !h.sys.Drained(h.now)) {
		if issued < 48 {
			addr := uint64(issued) * uint64(h.cfg.LineBytes)
			var res AccessResult
			switch issued % 3 {
			case 0:
				res = h.l1.Load(addr, uint32(issued), h.now)
			case 1:
				res = h.l1.Store(addr, h.now)
			default:
				res = h.l1.Atomic(addr, uint32(issued), h.now)
			}
			if res != AccessStall {
				issued++
			}
		}
		if resp, ok := h.step(); ok {
			h.l1.OnResponse(resp, resp.Atomic)
		}
		check()
	}
	if issued < 48 {
		t.Fatalf("only issued %d/48 accesses", issued)
	}
	if !h.sys.Drained(h.now) {
		t.Fatal("system never drained")
	}
	check()
}

// TestSystemNextEventBounds checks the event bound's two edges: a quiescent
// hierarchy reports NeverEvent, and in-flight work always reports a finite
// wake-up no earlier than now.
func TestSystemNextEventBounds(t *testing.T) {
	h := newHarness(t, nil)
	if ev := h.sys.NextEvent(h.now); ev != NeverEvent {
		t.Fatalf("quiescent NextEvent = %d, want NeverEvent", ev)
	}
	h.l1.Load(0, 7, h.now)
	for !h.sys.Drained(h.now) {
		ev := h.sys.NextEvent(h.now)
		if ev == NeverEvent {
			t.Fatalf("cycle %d: in-flight work but NextEvent = NeverEvent", h.now)
		}
		if ev < h.now {
			t.Fatalf("cycle %d: NextEvent = %d in the past", h.now, ev)
		}
		if resp, ok := h.step(); ok {
			h.l1.OnResponse(resp, false)
		}
		if h.now > 5000 {
			t.Fatal("load never completed")
		}
	}
	if ev := h.sys.NextEvent(h.now); ev != NeverEvent {
		t.Fatalf("drained NextEvent = %d, want NeverEvent", ev)
	}
}
