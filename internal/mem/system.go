package mem

import "gpusched/internal/stats"

// System is the shared memory hierarchy below the cores: a request crossbar
// to the L2/DRAM partitions and a response crossbar back. Cores inject
// through per-core Port values (which implement Sender for their L1) and
// drain responses with PopResponse each cycle.
//
// Injection is *staged*: within a cycle, a port's Send appends to its core's
// private staging slot and CanSend admits against the crossbar occupancy
// snapshotted at the end of the previous Tick (plus the core's own staged
// requests). Tick then commits every staged request into the request
// crossbar in core-index order before the partitions run. Two properties
// follow, and both are load-bearing:
//
//   - Core isolation: while the cores tick, a core touches only its own
//     staging slot and its own response pipe, so the GPU may tick cores
//     concurrently (phase A of the two-phase tick, DESIGN.md) without any
//     core observing another's same-cycle traffic.
//   - Determinism: a core's admission verdict depends only on the snapshot
//     and its own staged requests — never on how the other cores' same-cycle
//     sends are interleaved — so the committed state is identical whatever
//     order (or parallelism) the cores ticked in.
//
// The snapshot admits optimistically against the *committed* queue: every
// core sees the same free space f in a partition and may stage up to f
// requests there, so a commit can transiently exceed the configured capacity
// by up to (numCores-1)*f entries — as much as (numCores-1)*capacity when
// the queue started the cycle empty. The pipe absorbs the overshoot and
// CanSend reports the partition full until it drains back under the bound —
// backpressure is preserved (the overfill is bounded and cleared before new
// admissions), just assessed once per cycle instead of once per send, which
// admits one cycle's burst more than a per-send check would.
//
// Tick order within a cycle is fixed and deterministic: staged requests
// commit in core-index order, then partitions are visited in index order, so
// identical configurations and workloads replay identical cycle counts.
//
// System is shared state for the two-phase tick: phase-A code may touch it
// only through the declared staging sinks (a port's Send, PopResponse) and
// read-only probes — gpulint phasepurity enforces this.
//
//gpulint:shared
type System struct {
	cfg        *Config
	partitions []*L2Partition
	// toPart[i] carries requests to partition i (request crossbar).
	toPart []*pipe[Request]
	// toCore[c] carries responses back to core c (response crossbar).
	toCore []*pipe[Response]
	// slots[c] is core c's staging area. During a cycle each core mutates
	// only its own slot; Tick folds every slot serially.
	slots []coreSlot
	// snapLen[i] is toPart[i].Len() at the end of the previous Tick — the
	// occupancy CanSend admits against.
	snapLen []int
	// xbarCap mirrors the request pipes' capacity clamp (see newPipe).
	xbarCap int
	// inflight counts requests anywhere in the hierarchy: +1 where a staged
	// request commits and on write-back spawn, -1 where a request leaves (a
	// response popped, a store absorbed by an L2 hit, a write burst scheduled
	// at DRAM). Pops are recorded per-core during the cycle and folded here
	// by Tick, so Drained stays cheap and the cores never write shared state.
	inflight int
	// onResponse, when set, observes every response committed into a core's
	// return pipe, with the cycle it becomes poppable. The GPU's activity set
	// uses it to lower a parked core's wake bound — a response headed for a
	// sleeping SM must wake it no later than the cycle it can be popped. The
	// hook fires inside Tick (serial, phase B), never from core goroutines.
	onResponse func(core int, ready uint64)
}

// coreSlot is one core's cycle-private staging area. The trailing pad keeps
// neighbouring cores' slots off each other's cache lines when the cores tick
// in parallel.
type coreSlot struct {
	// staged holds the requests sent this cycle, in send order.
	staged []Request
	// perPart counts staged requests by target partition (CanSend adds
	// these to the snapshot so a core cannot overrun a queue on its own).
	perPart []int
	// pops counts responses popped this cycle, folded into inflight at Tick.
	pops int
	_    [64]byte
}

// NeverEvent is the NextEvent bound meaning "no time-driven work pending".
const NeverEvent = ^uint64(0)

// NewSystem builds the memory system for numCores cores.
func NewSystem(cfg *Config, numCores int) *System {
	s := &System{cfg: cfg}
	s.partitions = make([]*L2Partition, cfg.Partitions)
	s.toPart = make([]*pipe[Request], cfg.Partitions)
	for i := range s.partitions {
		s.partitions[i] = NewL2Partition(cfg, i)
		s.partitions[i].bindInflight(&s.inflight)
		s.toPart[i] = newPipe[Request](cfg.XbarQueueCap, cfg.XbarLatency)
	}
	s.toCore = make([]*pipe[Response], numCores)
	for c := range s.toCore {
		// The return path is sized generously relative to request queues:
		// responses must always drain or the hierarchy deadlocks.
		s.toCore[c] = newPipe[Response](cfg.XbarQueueCap*cfg.Partitions, cfg.XbarLatency)
	}
	s.slots = make([]coreSlot, numCores)
	for c := range s.slots {
		s.slots[c].perPart = make([]int, cfg.Partitions)
	}
	s.snapLen = make([]int, cfg.Partitions)
	s.xbarCap = s.toPart[0].cap
	return s
}

// Config returns the memory configuration.
func (s *System) Config() *Config { return s.cfg }

// Port returns core coreID's injection port.
func (s *System) Port(coreID int) Sender { return &port{sys: s, core: coreID} }

type port struct {
	sys  *System
	core int
}

// CanSend admits against the start-of-cycle snapshot plus this core's own
// staged requests — deliberately blind to other cores' same-cycle sends, so
// the verdict is identical however the cores' ticks interleave.
func (p *port) CanSend(lineAddr uint64) bool {
	s := p.sys
	tgt := s.cfg.PartitionOf(lineAddr)
	return s.snapLen[tgt]+s.slots[p.core].perPart[tgt] < s.xbarCap
}

// Send stages the request in the core's private slot; Tick commits it.
//
//gpulint:staged writes only the sending core's own staging slot
func (p *port) Send(req Request, now uint64) {
	s := p.sys
	tgt := s.cfg.PartitionOf(req.LineAddr)
	sl := &s.slots[p.core]
	if s.snapLen[tgt]+sl.perPart[tgt] >= s.xbarCap {
		panic("mem: Send without CanSend")
	}
	sl.staged = append(sl.staged, req)
	sl.perPart[tgt]++
}

// SetResponseHook registers the response-delivery observer (see the
// onResponse field). Must be set before the first Tick.
func (s *System) SetResponseHook(fn func(core int, ready uint64)) { s.onResponse = fn }

// ResponseNextReady returns the cycle core's next buffered response becomes
// poppable, NeverEvent when none is buffered. The return pipes are FIFO with
// uniform latency, so no later response can become poppable earlier; later
// deliveries are covered by the response hook. Phase-A shard visits call it
// while probing for parkability, so it must stay a pure read.
//
//gpulint:phasea
func (s *System) ResponseNextReady(core int) uint64 { return s.toCore[core].NextReady() }

// PopResponse returns the next ready response for coreID, if any. The
// in-flight accounting is deferred to the core's slot so concurrent cores
// never write shared state.
//
//gpulint:staged pops the core's own return pipe and counts in its own slot
func (s *System) PopResponse(coreID int, now uint64) (Response, bool) {
	q := s.toCore[coreID]
	if !q.CanPop(now) {
		return Response{}, false
	}
	s.slots[coreID].pops++
	return q.Pop(), true
}

// Tick commits the cycle's staged traffic, advances every partition and both
// crossbars one cycle, and refreshes the admission snapshot. It must be
// called serially (phase B of the two-phase tick).
//
//gpulint:phaseb commits every core's staged traffic; racing phase A would tear the slots
func (s *System) Tick(now uint64) {
	s.commitStaged(now)
	for i, p := range s.partitions {
		in := s.toPart[i]
		p.Tick(now, in, func(core int, resp Response) bool {
			if !s.toCore[core].Push(now, resp) {
				return false
			}
			if s.onResponse != nil {
				s.onResponse(core, now+s.cfg.XbarLatency)
			}
			return true
		})
	}
	for i, q := range s.toPart {
		s.snapLen[i] = q.Len()
	}
}

// commitStaged drains every core's staging slot into the request crossbar in
// core-index order and folds the per-core pop counts into inflight. The
// force-push may exceed the queue bound transiently (see the type comment);
// entries keep the same ready cycle a direct send would have had.
//
//gpulint:phaseb folds every core's slot; serial by contract
func (s *System) commitStaged(now uint64) {
	for c := range s.slots {
		sl := &s.slots[c]
		for i := range sl.staged {
			tgt := s.cfg.PartitionOf(sl.staged[i].LineAddr)
			s.toPart[tgt].forcePush(now, sl.staged[i])
			s.inflight++
		}
		sl.staged = sl.staged[:0]
		for i := range sl.perPart {
			sl.perPart[i] = 0
		}
		s.inflight -= sl.pops
		sl.pops = 0
	}
}

// Drained reports whether no requests or responses remain anywhere in the
// hierarchy — staged-but-uncommitted sends count as in flight, responses
// popped but not yet folded do not. Used by the top-level loop to detect
// quiescence and by tests as a leak check. O(numCores): the in-flight
// counter tracks every committed request, corrected by the cycle's
// not-yet-folded slot activity (drainedScan is the checkable definition it
// must agree with).
func (s *System) Drained(now uint64) bool {
	n := s.inflight
	for c := range s.slots {
		n += len(s.slots[c].staged) - s.slots[c].pops
	}
	return n == 0
}

// drainedScan is the structural definition of quiescence: no request or
// response buffered (or staged) anywhere. Tests assert it stays equivalent
// to the counter-based Drained.
func (s *System) drainedScan() bool {
	for _, p := range s.partitions {
		if !p.Drained() {
			return false
		}
	}
	for _, q := range s.toPart {
		if q.Len() > 0 {
			return false
		}
	}
	for _, q := range s.toCore {
		if q.Len() > 0 {
			return false
		}
	}
	for c := range s.slots {
		if len(s.slots[c].staged) > 0 {
			return false
		}
	}
	return true
}

// NextEvent returns the earliest cycle >= now at which the hierarchy can
// make progress on its own: a staged request committing at the next Tick, a
// partition acting (its request pipe included) or a response reaching a
// core's pop point. NeverEvent means the hierarchy is quiescent until a core
// sends a new request. (Unfolded pop counts are bookkeeping, not progress,
// and do not bound the event.)
func (s *System) NextEvent(now uint64) uint64 {
	for c := range s.slots {
		if len(s.slots[c].staged) > 0 {
			return now
		}
	}
	next := uint64(NeverEvent)
	for i, p := range s.partitions {
		if ev := p.NextEvent(now, s.toPart[i]); ev < next {
			next = ev
		}
		if next <= now {
			return now
		}
	}
	for _, q := range s.toCore {
		if ev := q.NextReady(); ev < next {
			next = ev
		}
		if next <= now {
			return now
		}
	}
	return next
}

// L2Stats sums the per-partition L2 counters.
func (s *System) L2Stats() stats.Cache {
	var sum stats.Cache
	for _, p := range s.partitions {
		sum.Add(&p.Stats)
	}
	return sum
}

// DRAMStats sums the per-channel DRAM counters.
func (s *System) DRAMStats() stats.DRAM {
	var sum stats.DRAM
	for _, p := range s.partitions {
		sum.Add(p.DRAMStats())
	}
	return sum
}

// Partition exposes partition i for white-box tests.
func (s *System) Partition(i int) *L2Partition { return s.partitions[i] }
