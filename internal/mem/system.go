package mem

import "gpusched/internal/stats"

// System is the shared memory hierarchy below the cores: a request crossbar
// to the L2/DRAM partitions and a response crossbar back. Cores inject
// through per-core Port values (which implement Sender for their L1) and
// drain responses with PopResponse each cycle.
//
// Injection is *staged*: within a cycle, a port's Send appends to its core's
// private per-partition bucket and CanSend admits against the crossbar
// occupancy snapshotted at the end of the previous tick (plus the core's own
// staged requests). The partition tick then commits the staged requests into
// the request crossbar in core-index order before the partition runs. Two
// properties follow, and both are load-bearing:
//
//   - Core isolation: while the cores tick, a core touches only its own
//     staging buckets and its own response lanes, so the GPU may tick cores
//     concurrently (phase A of the two-phase tick, DESIGN.md) without any
//     core observing another's same-cycle traffic.
//   - Determinism: a core's admission verdict depends only on the snapshot
//     and its own staged requests — never on how the other cores' same-cycle
//     sends are interleaved — so the committed state is identical whatever
//     order (or parallelism) the cores ticked in.
//
// The snapshot admits optimistically against the *committed* queue: every
// core sees the same free space f in a partition and may stage up to f
// requests there, so a commit can transiently exceed the configured capacity
// by up to (numCores-1)*f entries — as much as (numCores-1)*capacity when
// the queue started the cycle empty. The pipe absorbs the overshoot and
// CanSend reports the partition full until it drains back under the bound —
// backpressure is preserved (the overfill is bounded and cleared before new
// admissions), just assessed once per cycle instead of once per send, which
// admits one cycle's burst more than a per-send check would.
//
// The partitions themselves tick as phase A2 of the cycle: TickShard runs a
// contiguous range of partitions, and distinct shards may run on distinct
// workers because a partition's whole working set is partition-owned —
// its request pipe, its L2/MSHR/DRAM state, its response lanes (one
// virtual-channel pipe per (partition, core) pair, written by exactly one
// partition and popped by exactly one core), and its staging cell (the
// in-flight delta and the response-hook buffer). TickMerge then folds the
// per-partition staging cells serially in partition-index order — the
// staging semantics are THE semantics at every shard count, so results are
// byte-identical across shard counts by construction (the golden
// determinism tests sweep them). Tick is the serial wrapper: every shard in
// index order, then the merge.
//
// Tick order within a cycle is therefore fixed and deterministic: each
// partition commits its cores' staged requests in core-index order
// immediately before it runs, partitions are merged in index order, and a
// core pops its response lanes by (ready cycle, partition index) — exactly
// the order a single shared FIFO fed in partition order would have produced.
//
// System is shared state for the two-phase tick: phase-A code may touch it
// only through the declared staging sinks (a port's Send, PopResponse) and
// read-only probes, and phase-A2 code only through tickPartition's
// partition-owned carve-out — gpulint phasepurity enforces both.
//
//gpulint:shared
type System struct {
	cfg        *Config
	partitions []*L2Partition
	// toPart[i] carries requests to partition i (request crossbar).
	toPart []*pipe[Request]
	// vc[i*numCores+c] carries responses from partition i back to core c —
	// the response crossbar as per-(partition,core) virtual channels. Each
	// lane has a single writer (partition i, during its tick) and a single
	// reader (core c, during its tick), which is what lets partitions and
	// cores run concurrently without observing each other's same-cycle
	// traffic. PopResponse merges the lanes by (ready, partition index).
	vc       []*pipe[Response]
	numCores int
	// slots[c] is core c's staging area. During a cycle each core mutates
	// only its own slot; partition i drains every slot's bucket i.
	slots []coreSlot
	// parts[i] is partition i's staging cell: the state a partition must
	// export to the serial merge instead of writing shared fields directly.
	parts []partCell
	// respCount[i] is the number of responses buffered in partition i's
	// lanes as of the last merge: deliveries accrue in the partition's cell
	// (respDelta), pops in the popping core's slot (popsByPart), and the
	// merge folds both. Phase-A readers (PopResponse, ResponseNextReady) may
	// use a zero to skip the partition's lanes outright: nothing delivers
	// between the merge and phase A, so a zero is exact there, and pops only
	// empty lanes further.
	respCount []int
	// snapLen[i] is toPart[i].Len() at the end of the previous merge — the
	// occupancy CanSend admits against.
	snapLen []int
	// xbarCap mirrors the request pipes' capacity clamp (see newPipe).
	xbarCap int
	// shards is how many TickShard ranges the partitions are split into
	// (SetShards; 1 until told otherwise). Execution-only: results are
	// byte-identical for every value.
	shards int
	// inflight counts requests anywhere in the hierarchy: +1 where a staged
	// request commits and on write-back spawn, -1 where a request leaves (a
	// response popped, a store absorbed by an L2 hit, a write burst scheduled
	// at DRAM). Commits and absorptions are recorded in the owning
	// partition's delta and pops in the owning core's slot during the cycle;
	// TickMerge folds both, so Drained stays cheap and neither cores nor
	// partitions ever write this shared field.
	inflight int
	// onResponse, when set, observes every response committed into a core's
	// return lane, with the cycle it becomes poppable. The GPU's activity set
	// uses it to lower a parked core's wake bound — a response headed for a
	// sleeping SM must wake it no later than the cycle it can be popped. The
	// events are staged in the delivering partition's cell and fired by
	// TickMerge in (ready, partition) order — serial phase B, never from a
	// worker.
	onResponse func(core int, ready uint64)
}

// coreSlot is one core's cycle-private staging area. The trailing pad keeps
// neighbouring cores' slots off each other's cache lines when the cores tick
// in parallel.
type coreSlot struct {
	// staged[i] holds the requests sent to partition i this cycle, in send
	// order. Bucketing by destination is what lets partition i commit its
	// ingress without scanning other partitions' traffic — bucket (c,i) has
	// one writer (core c, phase A) and one consumer (partition i, phase A2).
	staged [][]Request
	// stagedTotal counts the core's staged requests across every bucket.
	// Written only by the owning core (phase A) and reset at the merge, so
	// the partition ticks may read it concurrently to skip cores that staged
	// nothing — the common case — without touching each bucket.
	stagedTotal int
	// pops counts responses popped this cycle, folded into inflight at the
	// merge; popsByPart[i] attributes them to partition i's respCount.
	pops       int
	popsByPart []int
	_          [64]byte
}

// partCell is one partition's staging cell for the sharded tick: everything
// a partition tick produces that the serial world consumes. The trailing pad
// keeps neighbouring partitions' cells off each other's cache lines.
type partCell struct {
	// now is the cycle the partition is currently ticking — written by
	// tickPartition before the partition runs so the deliver closure (built
	// once, no per-cycle allocation) can stamp response ready times.
	now uint64
	// delta accrues this partition's in-flight adjustments since the last
	// merge: ingress commits and write-back spawns increment, store
	// absorptions and scheduled write bursts decrement (the partition and
	// its DRAM channel hold a pointer to this field, not to System.inflight).
	delta int
	// respDelta counts this partition's lane deliveries since the last
	// merge, folded into System.respCount.
	respDelta int
	// hooks stages the response-delivery events for onResponse, in delivery
	// order (nondecreasing ready). hookPos is the merge's read cursor.
	hooks   []respHook
	hookPos int
	// deliver is the partition's egress: push into the (partition, core)
	// lane and stage the wake event. Built once at NewSystem.
	deliver func(core int, resp Response) bool
	_       [64]byte
}

// respHook is one staged response-delivery event: core's lane has a response
// poppable at ready.
type respHook struct {
	core  int
	ready uint64
}

// NeverEvent is the NextEvent bound meaning "no time-driven work pending".
const NeverEvent = ^uint64(0)

// NewSystem builds the memory system for numCores cores.
func NewSystem(cfg *Config, numCores int) *System {
	s := &System{cfg: cfg, numCores: numCores, shards: 1}
	s.partitions = make([]*L2Partition, cfg.Partitions)
	s.toPart = make([]*pipe[Request], cfg.Partitions)
	s.parts = make([]partCell, cfg.Partitions)
	s.vc = make([]*pipe[Response], cfg.Partitions*numCores)
	for i := range s.vc {
		// Return lanes are sized generously relative to request queues:
		// responses must always drain or the hierarchy deadlocks.
		s.vc[i] = newPipe[Response](cfg.XbarQueueCap*cfg.Partitions, cfg.XbarLatency)
	}
	for i := range s.partitions {
		s.partitions[i] = NewL2Partition(cfg, i)
		s.partitions[i].bindInflight(&s.parts[i].delta)
		s.toPart[i] = newPipe[Request](cfg.XbarQueueCap, cfg.XbarLatency)
		cell := &s.parts[i]
		base := i * numCores
		// The deliver closure runs on phase-A2 workers: it writes only this
		// partition's own lanes and staging cell, reading the tick cycle from
		// the cell rather than capturing it per cycle.
		//
		//gpulint:staged writes only the owning partition's response lanes and staging cell
		cell.deliver = func(core int, resp Response) bool {
			if !s.vc[base+core].Push(cell.now, resp) {
				return false
			}
			cell.respDelta++
			if s.onResponse != nil {
				cell.hooks = append(cell.hooks, respHook{core: core, ready: cell.now + s.cfg.XbarLatency})
			}
			return true
		}
	}
	s.slots = make([]coreSlot, numCores)
	for c := range s.slots {
		s.slots[c].staged = make([][]Request, cfg.Partitions)
		s.slots[c].popsByPart = make([]int, cfg.Partitions)
	}
	s.respCount = make([]int, cfg.Partitions)
	s.snapLen = make([]int, cfg.Partitions)
	s.xbarCap = s.toPart[0].cap
	return s
}

// Config returns the memory configuration.
func (s *System) Config() *Config { return s.cfg }

// Port returns core coreID's injection port.
func (s *System) Port(coreID int) Sender { return &port{sys: s, core: coreID} }

type port struct {
	sys  *System
	core int
}

// CanSend admits against the start-of-cycle snapshot plus this core's own
// staged requests — deliberately blind to other cores' same-cycle sends, so
// the verdict is identical however the cores' ticks interleave.
func (p *port) CanSend(lineAddr uint64) bool {
	s := p.sys
	tgt := s.cfg.PartitionOf(lineAddr)
	return s.snapLen[tgt]+len(s.slots[p.core].staged[tgt]) < s.xbarCap
}

// Send stages the request in the core's private bucket for the target
// partition; that partition's next tick commits it.
//
//gpulint:staged writes only the sending core's own staging buckets
func (p *port) Send(req Request, now uint64) {
	s := p.sys
	tgt := s.cfg.PartitionOf(req.LineAddr)
	sl := &s.slots[p.core]
	if s.snapLen[tgt]+len(sl.staged[tgt]) >= s.xbarCap {
		panic("mem: Send without CanSend")
	}
	sl.staged[tgt] = append(sl.staged[tgt], req)
	sl.stagedTotal++
}

// SetResponseHook registers the response-delivery observer (see the
// onResponse field). Must be set before the first Tick.
func (s *System) SetResponseHook(fn func(core int, ready uint64)) { s.onResponse = fn }

// SetShards splits the partitions into n contiguous TickShard ranges
// (clamped to at least 1; values beyond the partition count leave the extra
// shards empty, which is legal and covered by the determinism sweeps).
// Execution-only — results are byte-identical for every value.
func (s *System) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	s.shards = n
}

// Shards returns the configured TickShard range count.
func (s *System) Shards() int { return s.shards }

// partRange returns shard's contiguous partition range [lo, hi) — the same
// split rule parexec uses for cores, so the mapping is a pure function of
// (shard, shards, partitions).
func (s *System) partRange(shard int) (lo, hi int) {
	n := len(s.partitions)
	return shard * n / s.shards, (shard + 1) * n / s.shards
}

// ResponseNextReady returns the cycle core's next buffered response becomes
// poppable, NeverEvent when none is buffered. Each lane is FIFO with uniform
// latency, so no later response can become poppable earlier; later
// deliveries are covered by the response hook. Phase-A shard visits call it
// while probing for parkability, so it must stay a pure read.
//
//gpulint:phasea
func (s *System) ResponseNextReady(core int) uint64 {
	next := uint64(NeverEvent)
	for p := 0; p < len(s.partitions); p++ {
		if s.respCount[p] == 0 {
			continue
		}
		if ev := s.vc[p*s.numCores+core].NextReady(); ev < next {
			next = ev
		}
	}
	return next
}

// PopResponse returns the next ready response for coreID, if any: the ready
// lane head with the earliest ready cycle, ties to the lowest partition
// index — the exact order a single shared FIFO fed in partition order would
// pop, so the lane split is invisible to the cores. The in-flight accounting
// is deferred to the core's slot so concurrent cores never write shared
// state.
//
//gpulint:staged pops the core's own response lanes and counts in its own slot
func (s *System) PopResponse(coreID int, now uint64) (Response, bool) {
	best := -1
	var bestReady uint64
	for p := 0; p < len(s.partitions); p++ {
		if s.respCount[p] == 0 {
			continue
		}
		q := s.vc[p*s.numCores+coreID]
		if r := q.NextReady(); r <= now && (best < 0 || r < bestReady) {
			best, bestReady = p, r
		}
	}
	if best < 0 {
		return Response{}, false
	}
	s.slots[coreID].pops++
	s.slots[coreID].popsByPart[best]++
	return s.vc[best*s.numCores+coreID].Pop(), true
}

// Tick advances the whole hierarchy one cycle serially: every shard in index
// order, then the merge. It is the reference path (and the standalone-user
// entry point); the GPU's cycle loop calls TickShard from its phase-A2
// workers and TickMerge from phase B, which executes the exact same
// statements in the exact same per-partition order.
//
//gpulint:phaseb commits every core's staged traffic; racing phase A would tear the slots
func (s *System) Tick(now uint64) {
	for sh := 0; sh < s.shards; sh++ {
		s.TickShard(sh, now)
	}
	s.TickMerge(now)
}

// TickShard advances shard's partitions one cycle: each partition commits
// its cores' staged ingress (core-index order) and then runs, writing egress
// into its own lanes and staging cell. Distinct shards touch disjoint
// partition-owned state, so the GPU runs them concurrently as phase A2;
// TickMerge folds the cells afterwards. Everything reachable from here must
// confine itself to partition-owned state (gpulint phasepurity polices the
// carve-out through tickPartition).
//
//gpulint:hotpath
//gpulint:phasea
func (s *System) TickShard(shard int, now uint64) {
	lo, hi := s.partRange(shard)
	for i := lo; i < hi; i++ {
		s.tickPartition(i, now, true)
	}
}

// TickShardWindow runs shard's partitions for every cycle in [from, to) in
// one call — the quiet-window batch path. The caller must guarantee no core
// ticks (and so nothing is staged or popped) inside the window; ingress is
// therefore only scanned at the first cycle, and a window of one cycle is
// exactly TickShard. Same concurrency contract as TickShard.
//
//gpulint:hotpath
//gpulint:phasea
func (s *System) TickShardWindow(shard int, from, to uint64) {
	lo, hi := s.partRange(shard)
	for cy := from; cy < to; cy++ {
		ingress := cy == from
		for i := lo; i < hi; i++ {
			s.tickPartition(i, cy, ingress)
		}
	}
}

// tickPartition is the phase-A2 staging sink: partition i's ingress commit
// and tick. It writes only partition-owned state — partition i's request
// pipe, cache/MSHR/DRAM internals, response lanes, and staging cell — plus
// the cores' partition-i staging buckets, each of which has exactly this one
// phase-A2 consumer. The ingress commit drains every core's bucket i into
// the request crossbar in core-index order with the same ready cycle a
// direct send would have had; running it immediately before partition i's
// tick is indistinguishable from committing all partitions up front, because
// no partition reads another partition's pipe.
//
//gpulint:staged writes only partition i's pipes, staging cell, and the cores' partition-i buckets
func (s *System) tickPartition(i int, now uint64, ingress bool) {
	cell := &s.parts[i]
	if ingress {
		q := s.toPart[i]
		n := 0
		for c := range s.slots {
			if s.slots[c].stagedTotal == 0 {
				continue
			}
			b := s.slots[c].staged[i]
			if len(b) == 0 {
				continue
			}
			for j := range b {
				q.forcePush(now, b[j])
			}
			n += len(b)
			s.slots[c].staged[i] = b[:0]
		}
		cell.delta += n
	}
	cell.now = now
	s.partitions[i].Tick(now, s.toPart[i], cell.deliver)
}

// TickMerge folds the cycle's per-partition staging cells serially, in
// partition-index order: in-flight deltas, then the staged response-hook
// events in (ready, partition) order — the order a per-cycle serial tick
// would have fired them — then the cores' pop counts, and finally the
// admission snapshot. It must run after every shard of the cycle (or
// window) and before any serial-phase consumer reads the system.
//
//gpulint:phaseb folds every partition's staging cell and every core's slot; racing phase A would tear them
func (s *System) TickMerge(now uint64) {
	for i := range s.parts {
		s.inflight += s.parts[i].delta
		s.parts[i].delta = 0
		s.respCount[i] += s.parts[i].respDelta
		s.parts[i].respDelta = 0
	}
	s.fireHooks()
	for c := range s.slots {
		sl := &s.slots[c]
		if sl.pops > 0 {
			for i := range sl.popsByPart {
				s.respCount[i] -= sl.popsByPart[i]
				sl.popsByPart[i] = 0
			}
		}
		s.inflight -= sl.pops
		sl.pops = 0
		// Every partition ticked since the cores last staged, so every
		// bucket has drained; the totals restart from zero.
		sl.stagedTotal = 0
	}
	for i, q := range s.toPart {
		s.snapLen[i] = q.Len()
	}
	_ = now
}

// fireHooks replays the staged response-delivery events through onResponse
// in (ready, partition index) order — a P-way merge over the per-partition
// buffers, each already nondecreasing in ready because a partition delivers
// in cycle order. Within one cycle every ready is equal and the merge
// degenerates to partition order, exactly the serial tick's firing order.
func (s *System) fireHooks() {
	if s.onResponse == nil {
		return
	}
	for {
		best := -1
		var bestReady uint64
		for i := range s.parts {
			cell := &s.parts[i]
			if cell.hookPos >= len(cell.hooks) {
				continue
			}
			if r := cell.hooks[cell.hookPos].ready; best < 0 || r < bestReady {
				best, bestReady = i, r
			}
		}
		if best < 0 {
			break
		}
		cell := &s.parts[best]
		h := cell.hooks[cell.hookPos]
		cell.hookPos++
		s.onResponse(h.core, h.ready)
	}
	for i := range s.parts {
		s.parts[i].hooks = s.parts[i].hooks[:0]
		s.parts[i].hookPos = 0
	}
}

// StagedEmpty reports whether no core has a staged, uncommitted request —
// a precondition the GPU checks before entering a batched quiet window
// (serial phases only).
func (s *System) StagedEmpty() bool {
	for c := range s.slots {
		if s.slots[c].stagedTotal > 0 {
			return false
		}
	}
	return true
}

// LiveParts counts partitions with any buffered or in-flight work — the
// GPU's cheap estimate of whether a parallel phase A2 is worth its barrier
// (serial phases only).
func (s *System) LiveParts() int {
	n := 0
	for i, p := range s.partitions {
		if !p.Drained() || s.toPart[i].Len() > 0 {
			n++
		}
	}
	return n
}

// Drained reports whether no requests or responses remain anywhere in the
// hierarchy — staged-but-uncommitted sends count as in flight, responses
// popped but not yet folded do not. Used by tests and quiescence checks.
// O(numCores·partitions): the in-flight counter tracks every committed
// request, corrected by the cycle's not-yet-folded slot and cell activity
// (drainedScan is the checkable definition it must agree with).
func (s *System) Drained(now uint64) bool {
	n := s.inflight
	for i := range s.parts {
		n += s.parts[i].delta
	}
	for c := range s.slots {
		sl := &s.slots[c]
		for p := range sl.staged {
			n += len(sl.staged[p])
		}
		n -= sl.pops
	}
	return n == 0
}

// drainedScan is the structural definition of quiescence: no request or
// response buffered (or staged) anywhere. Tests assert it stays equivalent
// to the counter-based Drained.
func (s *System) drainedScan() bool {
	for _, p := range s.partitions {
		if !p.Drained() {
			return false
		}
	}
	for _, q := range s.toPart {
		if q.Len() > 0 {
			return false
		}
	}
	for _, q := range s.vc {
		if q.Len() > 0 {
			return false
		}
	}
	for c := range s.slots {
		for p := range s.slots[c].staged {
			if len(s.slots[c].staged[p]) > 0 {
				return false
			}
		}
	}
	return true
}

// NextEvent returns the earliest cycle >= now at which the hierarchy can
// make progress on its own: a staged request committing at the next tick, a
// partition acting (its request pipe included) or a response reaching a
// core's pop point. NeverEvent means the hierarchy is quiescent until a core
// sends a new request. (Unfolded pop counts are bookkeeping, not progress,
// and do not bound the event.)
func (s *System) NextEvent(now uint64) uint64 {
	for c := range s.slots {
		if s.slots[c].stagedTotal > 0 {
			return now
		}
	}
	next := uint64(NeverEvent)
	for i, p := range s.partitions {
		if ev := p.NextEvent(now, s.toPart[i]); ev < next {
			next = ev
		}
		if next <= now {
			return now
		}
	}
	for i := range s.partitions {
		if s.respCount[i] == 0 {
			continue
		}
		base := i * s.numCores
		for c := 0; c < s.numCores; c++ {
			if ev := s.vc[base+c].NextReady(); ev < next {
				next = ev
			}
			if next <= now {
				return now
			}
		}
	}
	return next
}

// L2Stats sums the per-partition L2 counters.
func (s *System) L2Stats() stats.Cache {
	var sum stats.Cache
	for _, p := range s.partitions {
		sum.Add(&p.Stats)
	}
	return sum
}

// DRAMStats sums the per-channel DRAM counters.
func (s *System) DRAMStats() stats.DRAM {
	var sum stats.DRAM
	for _, p := range s.partitions {
		sum.Add(p.DRAMStats())
	}
	return sum
}

// Partition exposes partition i for white-box tests.
func (s *System) Partition(i int) *L2Partition { return s.partitions[i] }
