package mem

import "gpusched/internal/stats"

// System is the shared memory hierarchy below the cores: a request crossbar
// to the L2/DRAM partitions and a response crossbar back. Cores inject
// through per-core Port values (which implement Sender for their L1) and
// drain responses with PopResponse each cycle.
//
// Tick order within a cycle is fixed and deterministic: partitions are
// visited in index order, so identical configurations and workloads replay
// identical cycle counts.
type System struct {
	cfg        *Config
	partitions []*L2Partition
	// toPart[i] carries requests to partition i (request crossbar).
	toPart []*pipe[Request]
	// toCore[c] carries responses back to core c (response crossbar).
	toCore []*pipe[Response]
	// inflight counts requests anywhere in the hierarchy: +1 on Send and on
	// write-back spawn, -1 where a request leaves (a response popped, a
	// store absorbed by an L2 hit, a write burst scheduled at DRAM). It
	// makes Drained — probed every cycle by the top-level loop — O(1).
	inflight int
}

// NeverEvent is the NextEvent bound meaning "no time-driven work pending".
const NeverEvent = ^uint64(0)

// NewSystem builds the memory system for numCores cores.
func NewSystem(cfg *Config, numCores int) *System {
	s := &System{cfg: cfg}
	s.partitions = make([]*L2Partition, cfg.Partitions)
	s.toPart = make([]*pipe[Request], cfg.Partitions)
	for i := range s.partitions {
		s.partitions[i] = NewL2Partition(cfg, i)
		s.partitions[i].bindInflight(&s.inflight)
		s.toPart[i] = newPipe[Request](cfg.XbarQueueCap, cfg.XbarLatency)
	}
	s.toCore = make([]*pipe[Response], numCores)
	for c := range s.toCore {
		// The return path is sized generously relative to request queues:
		// responses must always drain or the hierarchy deadlocks.
		s.toCore[c] = newPipe[Response](cfg.XbarQueueCap*cfg.Partitions, cfg.XbarLatency)
	}
	return s
}

// Config returns the memory configuration.
func (s *System) Config() *Config { return s.cfg }

// Port returns core coreID's injection port.
func (s *System) Port(coreID int) Sender { return &port{sys: s, core: coreID} }

type port struct {
	sys  *System
	core int
}

func (p *port) CanSend(lineAddr uint64) bool {
	return p.sys.toPart[p.sys.cfg.PartitionOf(lineAddr)].CanPush()
}

func (p *port) Send(req Request, now uint64) {
	tgt := p.sys.cfg.PartitionOf(req.LineAddr)
	if !p.sys.toPart[tgt].Push(now, req) {
		panic("mem: Send without CanSend")
	}
	p.sys.inflight++
}

// PopResponse returns the next ready response for coreID, if any.
func (s *System) PopResponse(coreID int, now uint64) (Response, bool) {
	q := s.toCore[coreID]
	if !q.CanPop(now) {
		return Response{}, false
	}
	s.inflight--
	return q.Pop(), true
}

// Tick advances every partition and both crossbars one cycle.
func (s *System) Tick(now uint64) {
	for i, p := range s.partitions {
		in := s.toPart[i]
		p.Tick(now, in, func(core int, resp Response) bool {
			return s.toCore[core].Push(now, resp)
		})
	}
}

// Drained reports whether no requests or responses remain anywhere in the
// hierarchy. Used by the top-level loop to detect quiescence and by tests as
// a leak check. O(1): the in-flight counter tracks every request from Send
// to the point it leaves the hierarchy (drainedScan is the checkable
// definition it must agree with).
func (s *System) Drained(now uint64) bool {
	return s.inflight == 0
}

// drainedScan is the structural definition of quiescence: no request or
// response buffered anywhere. Tests assert it stays equivalent to the
// counter-based Drained.
func (s *System) drainedScan() bool {
	for _, p := range s.partitions {
		if !p.Drained() {
			return false
		}
	}
	for _, q := range s.toPart {
		if q.Len() > 0 {
			return false
		}
	}
	for _, q := range s.toCore {
		if q.Len() > 0 {
			return false
		}
	}
	return true
}

// NextEvent returns the earliest cycle >= now at which the hierarchy can
// make progress on its own: a partition acting (its request pipe included)
// or a response reaching a core's pop point. NeverEvent means the hierarchy
// is quiescent until a core sends a new request.
func (s *System) NextEvent(now uint64) uint64 {
	next := uint64(NeverEvent)
	for i, p := range s.partitions {
		if ev := p.NextEvent(now, s.toPart[i]); ev < next {
			next = ev
		}
		if next <= now {
			return now
		}
	}
	for _, q := range s.toCore {
		if ev := q.NextReady(); ev < next {
			next = ev
		}
		if next <= now {
			return now
		}
	}
	return next
}

// L2Stats sums the per-partition L2 counters.
func (s *System) L2Stats() stats.Cache {
	var sum stats.Cache
	for _, p := range s.partitions {
		sum.Add(&p.Stats)
	}
	return sum
}

// DRAMStats sums the per-channel DRAM counters.
func (s *System) DRAMStats() stats.DRAM {
	var sum stats.DRAM
	for _, p := range s.partitions {
		sum.Add(p.DRAMStats())
	}
	return sum
}

// Partition exposes partition i for white-box tests.
func (s *System) Partition(i int) *L2Partition { return s.partitions[i] }
