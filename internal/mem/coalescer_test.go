package mem

import (
	"testing"
	"testing/quick"

	"gpusched/internal/isa"
)

func TestCoalescePerfect(t *testing.T) {
	var wi isa.WarpInstr
	wi.Op = isa.OpLoadGlobal
	wi.Mask = isa.FullMask
	isa.FillLinear(&wi, 0, 4) // 32 lanes x 4B = one 128B line
	lines := Coalesce(nil, &wi, 0, 128)
	if len(lines) != 1 || lines[0] != 0 {
		t.Fatalf("lines = %v, want [0]", lines)
	}
}

func TestCoalesceMisaligned(t *testing.T) {
	var wi isa.WarpInstr
	wi.Mask = isa.FullMask
	isa.FillLinear(&wi, 64, 4) // straddles two lines
	lines := Coalesce(nil, &wi, 0, 128)
	if len(lines) != 2 || lines[0] != 0 || lines[1] != 128 {
		t.Fatalf("lines = %v, want [0 128]", lines)
	}
}

func TestCoalesceFullyDiverged(t *testing.T) {
	var wi isa.WarpInstr
	wi.Mask = isa.FullMask
	isa.FillLinear(&wi, 0, 128) // one line per lane
	lines := Coalesce(nil, &wi, 0, 128)
	if len(lines) != 32 {
		t.Fatalf("got %d lines, want 32", len(lines))
	}
	for i, l := range lines {
		if l != uint64(i*128) {
			t.Fatalf("line %d = %d (first-lane order violated)", i, l)
		}
	}
}

func TestCoalesceRespectsMask(t *testing.T) {
	var wi isa.WarpInstr
	wi.Mask = 0x1 // only lane 0
	isa.FillLinear(&wi, 0, 128)
	lines := Coalesce(nil, &wi, 0, 128)
	if len(lines) != 1 {
		t.Fatalf("masked coalesce = %v, want 1 line", lines)
	}
	wi.Mask = 0
	if lines = Coalesce(nil, &wi, 0, 128); len(lines) != 0 {
		t.Fatalf("all-inactive coalesce = %v, want none", lines)
	}
}

func TestCoalesceAppliesBase(t *testing.T) {
	var wi isa.WarpInstr
	wi.Mask = 1
	wi.Addrs[0] = 100
	base := uint64(1) << 40
	lines := Coalesce(nil, &wi, base, 128)
	if len(lines) != 1 || lines[0] != base {
		t.Fatalf("lines = %v, want [%d]", lines, base)
	}
}

func TestCoalesceReusesDst(t *testing.T) {
	var wi isa.WarpInstr
	wi.Mask = isa.FullMask
	isa.FillLinear(&wi, 0, 4)
	buf := make([]uint64, 0, 32)
	lines := Coalesce(buf[:0], &wi, 0, 128)
	if len(lines) != 1 {
		t.Fatalf("reused-buffer coalesce = %v", lines)
	}
}

func TestCoalesceProperties(t *testing.T) {
	// Properties: (1) every produced line is line-aligned, (2) every active
	// lane's line appears in the output, (3) no duplicates, (4) count is
	// between 1 and the active-lane count.
	f := func(mask uint32, addrs [32]uint32) bool {
		var wi isa.WarpInstr
		wi.Mask = mask
		wi.Addrs = addrs
		lines := Coalesce(nil, &wi, 0, 128)
		seen := map[uint64]bool{}
		for _, l := range lines {
			if l%128 != 0 || seen[l] {
				return false
			}
			seen[l] = true
		}
		active := 0
		for lane := 0; lane < 32; lane++ {
			if mask&(1<<lane) == 0 {
				continue
			}
			active++
			if !seen[uint64(addrs[lane])&^127] {
				return false
			}
		}
		if active == 0 {
			return len(lines) == 0
		}
		return len(lines) >= 1 && len(lines) <= active
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipeLatencyAndCapacity(t *testing.T) {
	p := newPipe[int](2, 10)
	if !p.Push(0, 1) || !p.Push(0, 2) {
		t.Fatal("pushes within capacity failed")
	}
	if p.Push(0, 3) {
		t.Fatal("push past capacity succeeded")
	}
	if p.CanPop(9) {
		t.Fatal("entry visible before latency elapsed")
	}
	if !p.CanPop(10) {
		t.Fatal("entry not visible at latency")
	}
	if got := p.Pop(); got != 1 {
		t.Fatalf("Pop = %d, want 1 (FIFO order)", got)
	}
	if got := p.Peek(); got != 2 {
		t.Fatalf("Peek = %d, want 2", got)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
}

func TestPipeOrdering(t *testing.T) {
	p := newPipe[int](8, 5)
	for i := 0; i < 5; i++ {
		p.Push(uint64(i), i)
	}
	now := uint64(100)
	var got []int
	for p.CanPop(now) {
		got = append(got, p.Pop())
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("drained %d, want 5", len(got))
	}
}

func TestConfigAddressHelpers(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LineShift() != 7 {
		t.Fatalf("LineShift = %d, want 7", cfg.LineShift())
	}
	if cfg.LineAddr(1000) != 896 {
		t.Fatalf("LineAddr(1000) = %d, want 896", cfg.LineAddr(1000))
	}
	// Consecutive lines interleave across partitions.
	seen := map[int]bool{}
	for i := 0; i < cfg.Partitions; i++ {
		seen[cfg.PartitionOf(uint64(i*cfg.LineBytes))] = true
	}
	if len(seen) != cfg.Partitions {
		t.Fatalf("line interleave covered %d partitions, want %d", len(seen), cfg.Partitions)
	}
}
