package mem

// ReqKind distinguishes memory-transaction types below the core.
type ReqKind uint8

const (
	// ReqLoad fetches one line; a response is returned to the core.
	ReqLoad ReqKind = iota
	// ReqStore writes through to L2; no response is returned.
	ReqStore
	// ReqAtomic performs a read-modify-write at L2 and returns a response.
	ReqAtomic
	// reqWriteBack carries a dirty L2 eviction to DRAM (internal).
	reqWriteBack
)

// String returns a short mnemonic for the request kind.
func (k ReqKind) String() string {
	switch k {
	case ReqLoad:
		return "load"
	case ReqStore:
		return "store"
	case ReqAtomic:
		return "atomic"
	case reqWriteBack:
		return "wb"
	default:
		return "?"
	}
}

// Request is one line-granularity memory transaction traveling between the
// core and the memory partitions. Requests are small and passed by value
// through queues.
type Request struct {
	Kind ReqKind
	// LineAddr is the line-aligned physical address.
	LineAddr uint64
	// CoreID identifies the requesting SM for response routing.
	CoreID int
	// Token is an opaque core-side identifier tying the response back to
	// the pending warp access. The memory system echoes it untouched.
	Token uint32
	// Born is the cycle the request entered the memory system, for
	// latency accounting.
	Born uint64
}

// Response is the completion notice delivered back to the requesting core.
type Response struct {
	LineAddr uint64
	Token    uint32
	// Atomic marks responses to atomic requests (no L1 fill on these:
	// atomics bypass L1, Fermi-style).
	Atomic bool
}
