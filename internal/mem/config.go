// Package mem implements the GPU memory system below the SM: per-core L1
// data caches with MSHRs, a crossbar interconnect, banked L2 partitions, and
// GDDR-style DRAM channels with row-buffer state and FR-FCFS scheduling.
//
// All timing is expressed in core-clock cycles. The design goal is not
// nanosecond fidelity but faithful *relative* behaviour: latency grows with
// queueing, bandwidth is finite at every level, caches thrash when resident
// working sets exceed capacity, and row-buffer locality matters. Those are
// the levers CTA scheduling pulls on.
package mem

// Config collects the memory-system parameters. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// LineBytes is the cache-line (and DRAM-burst) size at every level.
	LineBytes int

	// L1 per-core cache geometry.
	L1Bytes       int
	L1Ways        int
	L1HitLatency  uint64 // LDST access to result writeback
	L1MSHREntries int
	L1MSHRMerges  int
	// L1MissQueueCap bounds L1 miss requests waiting to enter the
	// interconnect; when full the LDST unit stalls.
	L1MissQueueCap int

	// Partitions is the number of L2 slices; each owns one DRAM channel.
	Partitions int

	// XbarLatency is the one-way interconnect traversal time.
	XbarLatency uint64
	// XbarQueueCap bounds each partition-side (and core-side return)
	// queue; full queues backpressure the sender.
	XbarQueueCap int

	// L2 per-partition cache geometry.
	L2BytesPerPartition int
	L2Ways              int
	L2Latency           uint64 // lookup to response injection
	L2MSHREntries       int
	L2MSHRMerges        int
	// L2AtomicLatency is the extra read-modify-write occupancy for atomics.
	L2AtomicLatency uint64

	// DRAMSchedFCFS selects plain first-come-first-served request
	// scheduling instead of the default FR-FCFS (row hits first). FCFS
	// sacrifices row-buffer locality — the ablation that shows how much
	// of the BCS benefit flows through DRAM row reuse.
	DRAMSchedFCFS bool

	// DRAM channel timing (core cycles).
	DRAMQueueCap   int
	DRAMBanks      int
	DRAMRowBytes   int
	DRAMtCAS       uint64 // column access (row already open)
	DRAMtRowExtra  uint64 // extra precharge+activate on a row miss
	DRAMtBurst     uint64 // data-bus occupancy per line transfer
	DRAMWriteQueue int    // pending write-back buffer per channel
}

// DefaultConfig returns a Fermi-class (GTX480-like) memory system matched to
// the 15-SM core configuration in the top-level simulator defaults.
func DefaultConfig() Config {
	return Config{
		LineBytes: 128,

		L1Bytes:        16 * 1024,
		L1Ways:         4,
		L1HitLatency:   30,
		L1MSHREntries:  32,
		L1MSHRMerges:   8,
		L1MissQueueCap: 8,

		Partitions: 6,

		XbarLatency:  12,
		XbarQueueCap: 8,

		L2BytesPerPartition: 128 * 1024,
		L2Ways:              8,
		L2Latency:           40,
		L2MSHREntries:       32,
		L2MSHRMerges:        8,
		L2AtomicLatency:     16,

		DRAMQueueCap:   32,
		DRAMBanks:      8,
		DRAMRowBytes:   2 * 1024,
		DRAMtCAS:       20,
		DRAMtRowExtra:  30,
		DRAMtBurst:     8,
		DRAMWriteQueue: 16,
	}
}

// LineShift returns log2(LineBytes). LineBytes must be a power of two.
func (c *Config) LineShift() uint {
	s := uint(0)
	for 1<<s < c.LineBytes {
		s++
	}
	return s
}

// LineAddr truncates a byte address to its line address.
func (c *Config) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.LineBytes-1)
}

// PartitionOf maps a line address to its owning L2/DRAM partition.
// Lines are interleaved across partitions.
func (c *Config) PartitionOf(lineAddr uint64) int {
	return int((lineAddr >> c.LineShift()) % uint64(c.Partitions))
}
