package mem

import (
	"testing"

	"gpusched/internal/isa"
)

func BenchmarkCacheLookupHit(b *testing.B) {
	c := NewCache(16*1024, 128, 4)
	for i := 0; i < 128; i++ {
		c.Fill(uint64(i*128), false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64((i%128)*128), false)
	}
}

func BenchmarkCacheFillEvict(b *testing.B) {
	c := NewCache(16*1024, 128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*128, false)
	}
}

func BenchmarkCoalescePerfect(b *testing.B) {
	var wi isa.WarpInstr
	wi.Mask = isa.FullMask
	isa.FillLinear(&wi, 0, 4)
	buf := make([]uint64, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Coalesce(buf[:0], &wi, 0, 128)
	}
}

func BenchmarkCoalesceDiverged(b *testing.B) {
	var wi isa.WarpInstr
	wi.Mask = isa.FullMask
	isa.FillLinear(&wi, 0, 128)
	buf := make([]uint64, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Coalesce(buf[:0], &wi, 0, 128)
	}
}

func BenchmarkMSHRAllocateComplete(b *testing.B) {
	m := NewMSHR(32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64(i%32) * 128
		if m.Pending(line) {
			m.Complete(line)
		}
		m.Allocate(line, uint32(i))
	}
}

func BenchmarkDRAMChannelStreaming(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Partitions = 1
	d := NewDRAMChannel(&cfg, func(Request, uint64) {})
	next := uint64(0)
	b.ResetTimer()
	for now := uint64(0); now < uint64(b.N); now++ {
		if d.CanAccept() {
			d.Enqueue(Request{Kind: ReqLoad, LineAddr: next * 128}, now)
			next++
		}
		d.Tick(now)
	}
}

func BenchmarkSystemLoadRoundTrips(b *testing.B) {
	cfg := DefaultConfig()
	sys := NewSystem(&cfg, 1)
	l1 := NewL1(&cfg, 0, sys.Port(0))
	now := uint64(0)
	inflight := 0
	line := uint64(0)
	b.ResetTimer()
	for done := 0; done < b.N; {
		if inflight < 32 {
			if l1.Load(line, uint32(line/128%1000), now) == AccessPending {
				inflight++
				line += 128
			}
		}
		sys.Tick(now)
		if resp, ok := sys.PopResponse(0, now); ok {
			l1.OnResponse(resp, false)
			inflight--
			done++
		}
		now++
	}
}
