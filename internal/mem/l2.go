package mem

import "gpusched/internal/stats"

// routedResponse is a Response plus its destination core, buffered inside a
// partition until the return network accepts it.
type routedResponse struct {
	resp  Response
	core  int
	ready uint64
}

// L2Partition is one slice of the shared L2 plus its DRAM channel. It
// accepts requests from the interconnect at one lookup per cycle, services
// hits after L2Latency, tracks misses in an MSHR file, and spills/fills
// through its channel. Dirty evictions become DRAM write-backs.
type L2Partition struct {
	cfg   *Config
	id    int
	cache *Cache
	mshr  *MSHR
	dram  *DRAMChannel

	// atomicPending marks MSHR lines allocated by an atomic primary miss;
	// their responses must not fill the requester's L1.
	atomicPending map[uint64]bool
	// out holds responses ordered by ready time, waiting for the return
	// network.
	out []routedResponse
	// wbBuf holds dirty evictions waiting for DRAM queue space.
	wbBuf []Request
	// lookupFreeAt models the tag-pipeline occupancy for atomics.
	lookupFreeAt uint64
	// inflight, when bound, is the owning System's per-partition in-flight
	// delta cell (partCell.delta — partition-owned so phase-A2 shards never
	// write shared state; TickMerge folds it); the partition adjusts it where
	// requests are absorbed (store hits) or spawned (dirty write-backs). Nil
	// for standalone partitions (tests).
	inflight *int

	Stats stats.Cache
}

// bindInflight attaches the System's per-partition in-flight delta cell to
// the partition and its DRAM channel.
func (p *L2Partition) bindInflight(ctr *int) {
	p.inflight = ctr
	p.dram.inflight = ctr
}

// NewL2Partition builds partition id.
func NewL2Partition(cfg *Config, id int) *L2Partition {
	p := &L2Partition{
		cfg:           cfg,
		id:            id,
		cache:         NewCache(cfg.L2BytesPerPartition, cfg.LineBytes, cfg.L2Ways),
		mshr:          NewMSHR(cfg.L2MSHREntries, cfg.L2MSHRMerges),
		atomicPending: make(map[uint64]bool),
	}
	p.dram = NewDRAMChannel(cfg, p.onDRAMComplete)
	return p
}

// DRAMStats exposes the channel counters.
func (p *L2Partition) DRAMStats() *stats.DRAM { return &p.dram.Stats }

// onDRAMComplete fills the cache from a finished DRAM read and releases the
// MSHR waiters.
func (p *L2Partition) onDRAMComplete(req Request, now uint64) {
	dirty := p.atomicPending[req.LineAddr]
	delete(p.atomicPending, req.LineAddr)
	ev := p.cache.Fill(req.LineAddr, dirty)
	if ev.Valid {
		p.Stats.Evictions++
		if ev.Dirty {
			p.Stats.WriteBacks++
			p.wbBuf = append(p.wbBuf, Request{Kind: reqWriteBack, LineAddr: ev.LineAddr, Born: now})
			if p.inflight != nil {
				*p.inflight++
			}
		}
	}
	for _, tok := range p.mshr.Complete(req.LineAddr) {
		// Waiters were stamped with their core in the token's upper bits
		// by pendingKey; unpack.
		core, t := unpackWaiter(tok)
		p.pushResponse(routedResponse{
			resp:  Response{LineAddr: req.LineAddr, Token: t, Atomic: dirty},
			core:  core,
			ready: now, // DRAM latency already paid; fill forwarding is free
		})
	}
}

// packWaiter folds (core, token) into the 32-bit MSHR token space. Cores
// are < 2^8; core-side tokens < 2^24 (the SM pending table is far smaller).
func packWaiter(core int, token uint32) uint32 {
	return uint32(core)<<24 | (token & 0xFFFFFF)
}

func unpackWaiter(w uint32) (core int, token uint32) {
	return int(w >> 24), w & 0xFFFFFF
}

func (p *L2Partition) pushResponse(r routedResponse) {
	i := len(p.out)
	for i > 0 && p.out[i-1].ready > r.ready {
		i--
	}
	p.out = append(p.out, routedResponse{})
	copy(p.out[i+1:], p.out[i:])
	p.out[i] = r
}

// Tick advances the partition one cycle. in is the interconnect queue
// feeding it; deliver pushes a ready response into the return network and
// reports acceptance.
func (p *L2Partition) Tick(now uint64, in *pipe[Request], deliver func(core int, resp Response) bool) {
	// 1. Drain ready responses into the return network.
	for len(p.out) > 0 && p.out[0].ready <= now {
		if !deliver(p.out[0].core, p.out[0].resp) {
			break
		}
		copy(p.out, p.out[1:])
		p.out = p.out[:len(p.out)-1]
	}

	// 2. Retry buffered write-backs.
	for len(p.wbBuf) > 0 && p.dram.CanAccept() {
		p.dram.Enqueue(p.wbBuf[0], now)
		copy(p.wbBuf, p.wbBuf[1:])
		p.wbBuf = p.wbBuf[:len(p.wbBuf)-1]
	}

	// 3. Advance the DRAM channel (may call onDRAMComplete).
	p.dram.Tick(now)

	// 4. Accept at most one request from the interconnect.
	if !in.CanPop(now) || p.lookupFreeAt > now {
		return
	}
	req := in.Peek()
	if p.handle(req, now) {
		in.Pop()
	}
}

// handle processes one request; it returns false when the request must stay
// queued (a structural stall).
func (p *L2Partition) handle(req Request, now uint64) bool {
	switch req.Kind {
	case ReqLoad:
		return p.handleLoad(req, now, false)
	case ReqAtomic:
		return p.handleLoad(req, now, true)
	case ReqStore:
		p.Stats.Accesses++
		if p.cache.Lookup(req.LineAddr, true) {
			p.Stats.Hits++
			// The store is absorbed by the L2: it leaves the hierarchy here.
			if p.inflight != nil {
				*p.inflight--
			}
			return true
		}
		p.Stats.Misses++
		// No-write-allocate: forward the write to DRAM.
		if !p.dram.CanAccept() {
			return false
		}
		p.dram.Enqueue(req, now)
		return true
	default:
		// Write-backs never arrive from the interconnect.
		return true
	}
}

func (p *L2Partition) handleLoad(req Request, now uint64, atomic bool) bool {
	waiter := packWaiter(req.CoreID, req.Token)
	if p.mshr.Pending(req.LineAddr) {
		if !p.mshr.Merge(req.LineAddr, waiter) {
			p.Stats.MSHRStalls++
			return false
		}
		p.Stats.Accesses++
		p.Stats.Misses++
		p.Stats.MSHRMerges++
		if atomic {
			p.atomicPending[req.LineAddr] = true
		}
		return true
	}
	p.Stats.Accesses++
	if p.cache.Lookup(req.LineAddr, atomic) {
		p.Stats.Hits++
		lat := p.cfg.L2Latency
		if atomic {
			lat += p.cfg.L2AtomicLatency
			// RMW holds the tag/data pipeline longer.
			p.lookupFreeAt = now + p.cfg.L2AtomicLatency
		}
		p.pushResponse(routedResponse{
			resp:  Response{LineAddr: req.LineAddr, Token: req.Token, Atomic: atomic},
			core:  req.CoreID,
			ready: now + lat,
		})
		return true
	}
	p.Stats.Misses++
	if p.mshr.Full() || !p.dram.CanAccept() {
		if p.mshr.Full() {
			p.Stats.MSHRStalls++
		}
		return false
	}
	if !p.mshr.Allocate(req.LineAddr, waiter) {
		return false
	}
	if atomic {
		p.atomicPending[req.LineAddr] = true
	}
	p.dram.Enqueue(Request{Kind: ReqLoad, LineAddr: req.LineAddr, Born: now}, now)
	return true
}

// Drained reports whether the partition holds no in-flight work.
func (p *L2Partition) Drained() bool {
	return len(p.out) == 0 && len(p.wbBuf) == 0 && p.mshr.Used() == 0 && p.dram.Drained()
}

// NextEvent returns the earliest cycle >= now at which Tick(in) does work.
// Each of the partition's per-cycle actions has a known wake time: the
// response buffer is sorted by ready time; buffered write-backs retry the
// moment DRAM has queue space; the DRAM channel reports its own bound; and
// a ripe interconnect request is handled (mutating counters even when it
// structurally stalls) as soon as the tag pipeline is free.
func (p *L2Partition) NextEvent(now uint64, in *pipe[Request]) uint64 {
	next := uint64(NeverEvent)
	if len(p.out) > 0 {
		if p.out[0].ready <= now {
			return now
		}
		next = p.out[0].ready
	}
	if len(p.wbBuf) > 0 && p.dram.CanAccept() {
		return now
	}
	if ev := p.dram.NextEvent(now); ev < next {
		next = ev
	}
	if next <= now {
		return now
	}
	if in.Len() > 0 {
		at := max64(in.NextReady(), p.lookupFreeAt)
		if at <= now {
			return now
		}
		if at < next {
			next = at
		}
	}
	return next
}
