package mem

import (
	"fmt"

	"gpusched/internal/stats"
)

// Cache is a set-associative, LRU, line-granularity cache model. It tracks
// tags only (the simulator carries no data), so a "fill" installs presence
// and an "access" tests it. Write policy is the caller's concern: L1 uses it
// read-only (write-through no-allocate), L2 marks lines dirty and collects
// write-backs on eviction.
type Cache struct {
	// lines is the whole tag store, set-major: set i occupies
	// lines[i*ways : (i+1)*ways]. One flat backing array instead of a slice
	// per set — a simulation builds one cache per core plus the L2 slices,
	// and the per-set headers were a measurable share of its setup
	// allocations.
	lines     []cacheLine
	ways      int
	setMask   uint64
	lineShift uint
	useClock  uint64
	// Stats accumulates hit/miss counters. Accesses through helper methods
	// on L1/L2 front-ends update it; direct Lookup/Fill calls do not.
	Stats stats.Cache
}

type cacheLine struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// NewCache builds a cache of sizeBytes capacity with the given line size and
// associativity. sizeBytes must divide evenly into ways*lineBytes sets and
// the set count must be a power of two.
func NewCache(sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("mem: invalid cache geometry %d/%d/%d", sizeBytes, lineBytes, ways))
	}
	numLines := sizeBytes / lineBytes
	numSets := numLines / ways
	if numSets == 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("mem: set count %d not a power of two", numSets))
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Cache{
		lines:     make([]cacheLine, numSets*ways),
		ways:      ways,
		setMask:   uint64(numSets - 1),
		lineShift: shift,
	}
}

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.lines) / c.ways }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) index(lineAddr uint64) (set []cacheLine, tag uint64) {
	idx := (lineAddr >> c.lineShift) & c.setMask
	base := int(idx) * c.ways
	return c.lines[base : base+c.ways], lineAddr >> c.lineShift
}

// Lookup probes for lineAddr. On a hit it refreshes LRU state and, when
// markDirty is set, marks the line dirty. It does not touch Stats.
func (c *Cache) Lookup(lineAddr uint64, markDirty bool) bool {
	set, tag := c.index(lineAddr)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			c.useClock++
			ln.lastUse = c.useClock
			if markDirty {
				ln.dirty = true
			}
			return true
		}
	}
	return false
}

// Contains probes for lineAddr without perturbing LRU or dirty state.
func (c *Cache) Contains(lineAddr uint64) bool {
	set, tag := c.index(lineAddr)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Eviction describes a line displaced by Fill.
type Eviction struct {
	LineAddr uint64
	Dirty    bool
	Valid    bool // false when the fill used an empty way
}

// Fill installs lineAddr (evicting the LRU way if the set is full) and
// returns what was displaced. If the line is already present the call only
// refreshes LRU/dirty state. It does not touch Stats.
func (c *Cache) Fill(lineAddr uint64, dirty bool) Eviction {
	set, tag := c.index(lineAddr)
	c.useClock++
	victim := -1
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ln.lastUse = c.useClock
			if dirty {
				ln.dirty = true
			}
			return Eviction{}
		}
		if !ln.valid {
			if victim == -1 || set[victim].valid {
				victim = i
			}
			continue
		}
		if victim == -1 || (set[victim].valid && ln.lastUse < set[victim].lastUse) {
			victim = i
		}
	}
	ev := Eviction{}
	v := &set[victim]
	if v.valid {
		ev = Eviction{LineAddr: v.tag << c.lineShift, Dirty: v.dirty, Valid: true}
	}
	*v = cacheLine{tag: tag, valid: true, dirty: dirty, lastUse: c.useClock}
	return ev
}

// Invalidate drops lineAddr if present, returning whether it was dirty.
func (c *Cache) Invalidate(lineAddr uint64) (present, dirty bool) {
	set, tag := c.index(lineAddr)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			d := ln.dirty
			*ln = cacheLine{}
			return true, d
		}
	}
	return false, false
}

// Flush invalidates everything and returns the dirty line addresses.
func (c *Cache) Flush() []uint64 {
	var dirty []uint64
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.dirty {
			dirty = append(dirty, ln.tag<<c.lineShift)
		}
		*ln = cacheLine{}
	}
	return dirty
}
