package mem

import "gpusched/internal/isa"

// Coalesce reduces the active lanes of a warp memory instruction to the set
// of distinct line addresses they touch, in first-lane order — the memory
// transactions the access generates. base is the kernel's global address
// offset added to every lane address. The result is appended to dst (which
// may be reused across calls to avoid allocation).
//
// A fully-coalesced 4-byte-per-lane access yields 1 transaction per 128B
// line; a 128B-strided access yields 32. This 1..32 fan-out is exactly the
// memory-divergence behaviour the workloads encode.
func Coalesce(dst []uint64, wi *isa.WarpInstr, base uint64, lineBytes int) []uint64 {
	mask := wi.Mask
	lineMask := ^uint64(lineBytes - 1)
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		line := (base + uint64(wi.Addrs[lane])) & lineMask
		found := false
		for _, d := range dst {
			if d == line {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, line)
		}
	}
	return dst
}
