package mem

import "gpusched/internal/stats"

// dramReq is a queued DRAM transaction. The bank/row mapping is fixed by
// the line address, so it is computed once at enqueue rather than on every
// FR-FCFS scan.
type dramReq struct {
	req     Request
	arrived uint64
	bank    int
	row     uint64
}

// DRAMChannel models one GDDR channel: a bounded request queue scheduled
// FR-FCFS (row hits first, then oldest), per-bank open-row state, and a
// shared data bus occupied tBurst cycles per line. Reads complete with a
// callback; writes (stores and L2 write-backs) complete silently.
type DRAMChannel struct {
	cfg   *Config
	queue []dramReq
	banks []dramBank
	// Cached address-mapping constants (hot path).
	lineShift   uint
	linesPerRow uint64
	// busFreeAt is when the data bus can start the next transfer.
	busFreeAt uint64
	// nextSchedAt caches the outcome of an empty FR-FCFS scan: no queued
	// request's bank frees before this cycle, so Tick skips the scan until
	// then. Bank states only change when a request is scheduled (impossible
	// while every candidate bank is busy) and Enqueue resets the bound, so
	// the gate never alters a scheduling decision.
	nextSchedAt uint64
	// onComplete receives finished read requests (loads/atomics).
	onComplete func(req Request, now uint64)
	// completions holds in-flight transfers ordered by finish time.
	completions []dramCompletion
	// inflight, when bound, is the owning System's in-flight request count;
	// a write leaves the hierarchy the cycle its burst is scheduled, so the
	// channel decrements it there. Nil for standalone channels (tests).
	inflight *int

	Stats stats.DRAM
}

type dramBank struct {
	openRow  uint64
	rowValid bool
	// freeAt is when the bank can accept its next activation/column op.
	freeAt uint64
}

type dramCompletion struct {
	at  uint64
	req Request
}

// NewDRAMChannel builds a channel with the config's timing. onComplete is
// invoked for each finished read in completion-time order.
func NewDRAMChannel(cfg *Config, onComplete func(req Request, now uint64)) *DRAMChannel {
	return &DRAMChannel{
		cfg:         cfg,
		banks:       make([]dramBank, cfg.DRAMBanks),
		queue:       make([]dramReq, 0, cfg.DRAMQueueCap),
		onComplete:  onComplete,
		lineShift:   cfg.LineShift(),
		linesPerRow: uint64(cfg.DRAMRowBytes / cfg.LineBytes),
	}
}

// CanAccept reports whether the request queue has space.
func (d *DRAMChannel) CanAccept() bool { return len(d.queue) < d.cfg.DRAMQueueCap }

// Enqueue adds a request; the caller must have checked CanAccept.
func (d *DRAMChannel) Enqueue(req Request, now uint64) {
	if !d.CanAccept() {
		panic("mem: DRAM enqueue past capacity")
	}
	bank, row := d.bankAndRow(req.LineAddr)
	d.queue = append(d.queue, dramReq{req: req, arrived: now, bank: bank, row: row})
	d.nextSchedAt = 0
}

// QueueLen returns the number of waiting (unscheduled) requests.
func (d *DRAMChannel) QueueLen() int { return len(d.queue) }

// bankAndRow maps a line address to its bank index and row id within the
// channel. Lines are already channel-interleaved by PartitionOf, so the
// per-channel line index is lineAddr/(lineBytes*partitions); consecutive
// in-channel lines fall in the same row until the row is exhausted, then
// move to the next bank — the standard row-interleaved mapping that rewards
// spatial locality with row hits.
func (d *DRAMChannel) bankAndRow(lineAddr uint64) (bank int, row uint64) {
	chLine := (lineAddr >> d.lineShift) / uint64(d.cfg.Partitions)
	rowGlobal := chLine / d.linesPerRow
	bank = int(rowGlobal % uint64(d.cfg.DRAMBanks))
	row = rowGlobal / uint64(d.cfg.DRAMBanks)
	return bank, row
}

// Tick advances the channel one cycle: it delivers finished transfers, then
// schedules at most one queued request (FR-FCFS: oldest row hit whose bank
// is free, else oldest request whose bank is free).
//
//gpulint:hotpath
func (d *DRAMChannel) Tick(now uint64) {
	for len(d.completions) > 0 && d.completions[0].at <= now {
		c := d.completions[0]
		copy(d.completions, d.completions[1:])
		d.completions = d.completions[:len(d.completions)-1]
		if d.onComplete != nil {
			d.onComplete(c.req, now)
		}
	}

	if len(d.queue) == 0 || now < d.nextSchedAt {
		return
	}
	pick := -1
	pickHit := false
	for i := range d.queue {
		qr := &d.queue[i]
		b := &d.banks[qr.bank]
		if b.freeAt > now {
			continue
		}
		hit := b.rowValid && b.openRow == qr.row
		if d.cfg.DRAMSchedFCFS {
			// Strict arrival order: take the oldest serviceable request.
			pick, pickHit = i, hit
			break
		}
		if hit {
			pick = i
			pickHit = true
			break // queue is in arrival order: first row hit is oldest row hit
		}
		if pick == -1 {
			pick = i
		}
	}
	if pick == -1 {
		// All candidate banks busy: nothing schedules until the earliest
		// of their free times, so park the scan there.
		next := uint64(NeverEvent)
		for i := range d.queue {
			if at := d.banks[d.queue[i].bank].freeAt; at < next {
				next = at
			}
		}
		d.nextSchedAt = next
		return
	}
	qr := d.queue[pick]
	copy(d.queue[pick:], d.queue[pick+1:])
	d.queue = d.queue[:len(d.queue)-1]

	bank, row := qr.bank, qr.row
	b := &d.banks[bank]
	act := uint64(0)
	if pickHit {
		d.Stats.RowHits++
	} else {
		d.Stats.RowMisses++
		act = d.cfg.DRAMtRowExtra
	}
	b.openRow = row
	b.rowValid = true

	// The column access begins after any activation; the burst begins when
	// both the column data is ready and the bus is free.
	colReady := now + act + d.cfg.DRAMtCAS
	busStart := max64(colReady, d.busFreeAt)
	busEnd := busStart + d.cfg.DRAMtBurst
	d.busFreeAt = busEnd
	b.freeAt = busEnd // simplification: bank busy until its burst drains
	d.Stats.BusyCycles += d.cfg.DRAMtBurst
	d.Stats.QueueLatencySum += now - qr.arrived
	d.Stats.ServicedRequests++

	switch qr.req.Kind {
	case ReqStore, reqWriteBack:
		d.Stats.Writes++
		// Writes complete silently once the burst drains.
		if d.inflight != nil {
			*d.inflight--
		}
	default:
		d.Stats.Reads++
		d.insertCompletion(dramCompletion{at: busEnd, req: qr.req})
	}
}

func (d *DRAMChannel) insertCompletion(c dramCompletion) {
	i := len(d.completions)
	for i > 0 && d.completions[i-1].at > c.at {
		i--
	}
	d.completions = append(d.completions, dramCompletion{})
	copy(d.completions[i+1:], d.completions[i:])
	d.completions[i] = c
}

// Drained reports whether no requests are queued or in flight.
func (d *DRAMChannel) Drained() bool {
	return len(d.queue) == 0 && len(d.completions) == 0
}

// NextEvent returns the earliest cycle >= now at which Tick does work: the
// head completion delivers (completions are sorted by finish time), or a
// queued request's bank frees so the FR-FCFS scan can schedule it. Bank
// free times only move when a request is scheduled, so within a frozen
// window the earliest of them is exact.
func (d *DRAMChannel) NextEvent(now uint64) uint64 {
	next := uint64(NeverEvent)
	if len(d.completions) > 0 {
		if d.completions[0].at <= now {
			return now
		}
		next = d.completions[0].at
	}
	for i := range d.queue {
		at := d.banks[d.queue[i].bank].freeAt
		if at <= now {
			return now
		}
		if at < next {
			next = at
		}
	}
	return next
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
