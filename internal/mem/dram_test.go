package mem

import "testing"

func testDRAMConfig() *Config {
	cfg := DefaultConfig()
	cfg.Partitions = 1 // channel-local line index == global line index
	return &cfg
}

func runChannel(d *DRAMChannel, cycles uint64) {
	for now := uint64(0); now < cycles; now++ {
		d.Tick(now)
	}
}

func TestDRAMReadCompletes(t *testing.T) {
	cfg := testDRAMConfig()
	var done []Request
	var doneAt []uint64
	d := NewDRAMChannel(cfg, func(req Request, now uint64) {
		done = append(done, req)
		doneAt = append(doneAt, now)
	})
	d.Enqueue(Request{Kind: ReqLoad, LineAddr: 0, Token: 7}, 0)
	runChannel(d, 200)
	if len(done) != 1 || done[0].Token != 7 {
		t.Fatalf("completions = %v", done)
	}
	// Cold row: tick at cycle 1 schedules, row-miss latency applies.
	wantMin := cfg.DRAMtRowExtra + cfg.DRAMtCAS + cfg.DRAMtBurst
	if doneAt[0] < wantMin {
		t.Fatalf("completed at %d, want >= %d", doneAt[0], wantMin)
	}
	if !d.Drained() {
		t.Fatal("channel not drained")
	}
	if d.Stats.Reads != 1 || d.Stats.RowMisses != 1 {
		t.Fatalf("stats = %+v", d.Stats)
	}
}

func TestDRAMRowHitFasterThanMiss(t *testing.T) {
	cfg := testDRAMConfig()
	var doneAt []uint64
	d := NewDRAMChannel(cfg, func(req Request, now uint64) {
		doneAt = append(doneAt, now)
	})
	// Two lines in the same row: second should be a row hit.
	d.Enqueue(Request{Kind: ReqLoad, LineAddr: 0}, 0)
	d.Enqueue(Request{Kind: ReqLoad, LineAddr: uint64(cfg.LineBytes)}, 0)
	runChannel(d, 400)
	if len(doneAt) != 2 {
		t.Fatalf("%d completions", len(doneAt))
	}
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 {
		t.Fatalf("row stats = %+v", d.Stats)
	}
	gap := doneAt[1] - doneAt[0]
	// A row hit behind a row miss is limited by bus occupancy, far less
	// than a full activate.
	if gap > cfg.DRAMtCAS+cfg.DRAMtBurst {
		t.Fatalf("row-hit gap %d too large", gap)
	}
}

func TestDRAMFRFCFSPrefersRowHit(t *testing.T) {
	cfg := testDRAMConfig()
	linesPerRow := uint64(cfg.DRAMRowBytes / cfg.LineBytes)
	rowStride := linesPerRow * uint64(cfg.LineBytes) * uint64(cfg.DRAMBanks)
	var order []uint64
	d := NewDRAMChannel(cfg, func(req Request, now uint64) {
		order = append(order, req.LineAddr)
	})
	// Open row 0 on bank 0.
	d.Enqueue(Request{Kind: ReqLoad, LineAddr: 0}, 0)
	runChannel(d, 100)
	// Now queue: a row-conflict request (same bank, different row) first,
	// then a row hit. FR-FCFS should reorder.
	conflict := rowStride // bank 0, row 1
	hit := uint64(cfg.LineBytes)
	d.Enqueue(Request{Kind: ReqLoad, LineAddr: conflict}, 100)
	d.Enqueue(Request{Kind: ReqLoad, LineAddr: hit}, 100)
	runChannel(d, 600)
	if len(order) != 3 {
		t.Fatalf("completions = %v", order)
	}
	if order[1] != hit || order[2] != conflict {
		t.Fatalf("service order = %v, want row hit %d before conflict %d", order[1:], hit, conflict)
	}
}

func TestDRAMFCFSKeepsArrivalOrder(t *testing.T) {
	cfg := testDRAMConfig()
	cfg.DRAMSchedFCFS = true
	linesPerRow := uint64(cfg.DRAMRowBytes / cfg.LineBytes)
	rowStride := linesPerRow * uint64(cfg.LineBytes) * uint64(cfg.DRAMBanks)
	var order []uint64
	d := NewDRAMChannel(cfg, func(req Request, now uint64) {
		order = append(order, req.LineAddr)
	})
	d.Enqueue(Request{Kind: ReqLoad, LineAddr: 0}, 0)
	runChannel(d, 100)
	// Conflict first, then a row hit: FCFS must NOT reorder.
	conflict := rowStride
	hit := uint64(cfg.LineBytes)
	d.Enqueue(Request{Kind: ReqLoad, LineAddr: conflict}, 100)
	d.Enqueue(Request{Kind: ReqLoad, LineAddr: hit}, 100)
	runChannel(d, 600)
	if len(order) != 3 || order[1] != conflict || order[2] != hit {
		t.Fatalf("FCFS order = %v, want arrival order [0 %d %d]", order, conflict, hit)
	}
}

func TestDRAMWritesSilent(t *testing.T) {
	cfg := testDRAMConfig()
	calls := 0
	d := NewDRAMChannel(cfg, func(req Request, now uint64) { calls++ })
	d.Enqueue(Request{Kind: ReqStore, LineAddr: 0}, 0)
	d.Enqueue(Request{Kind: reqWriteBack, LineAddr: 128}, 0)
	runChannel(d, 300)
	if calls != 0 {
		t.Fatalf("write completion callback fired %d times", calls)
	}
	if d.Stats.Writes != 2 || d.Stats.Reads != 0 {
		t.Fatalf("stats = %+v", d.Stats)
	}
	if !d.Drained() {
		t.Fatal("writes left channel undrained")
	}
}

func TestDRAMQueueCapacity(t *testing.T) {
	cfg := testDRAMConfig()
	d := NewDRAMChannel(cfg, nil)
	for i := 0; i < cfg.DRAMQueueCap; i++ {
		if !d.CanAccept() {
			t.Fatalf("queue full after %d", i)
		}
		d.Enqueue(Request{Kind: ReqStore, LineAddr: uint64(i * 128)}, 0)
	}
	if d.CanAccept() {
		t.Fatal("queue accepted past capacity")
	}
	defer func() {
		if recover() == nil {
			t.Error("Enqueue past capacity did not panic")
		}
	}()
	d.Enqueue(Request{Kind: ReqStore}, 0)
}

func TestDRAMBankMapping(t *testing.T) {
	cfg := testDRAMConfig()
	d := NewDRAMChannel(cfg, nil)
	// Consecutive lines within one row share bank and row.
	b0, r0 := d.bankAndRow(0)
	b1, r1 := d.bankAndRow(uint64(cfg.LineBytes))
	if b0 != b1 || r0 != r1 {
		t.Fatalf("same-row lines mapped to (%d,%d) and (%d,%d)", b0, r0, b1, r1)
	}
	// Next row moves to the next bank.
	b2, _ := d.bankAndRow(uint64(cfg.DRAMRowBytes))
	if b2 != (b0+1)%cfg.DRAMBanks {
		t.Fatalf("row-crossing line in bank %d, want %d", b2, (b0+1)%cfg.DRAMBanks)
	}
}

func TestDRAMBandwidthBound(t *testing.T) {
	// Saturating the channel with row hits: steady-state service rate must
	// be one line per tBurst (bus-bound), not one per tCAS+tBurst.
	cfg := testDRAMConfig()
	served := 0
	d := NewDRAMChannel(cfg, func(req Request, now uint64) { served++ })
	next := uint64(0)
	total := uint64(4000)
	for now := uint64(0); now < total; now++ {
		for d.CanAccept() {
			d.Enqueue(Request{Kind: ReqLoad, LineAddr: next * uint64(cfg.LineBytes)}, now)
			next++
		}
		d.Tick(now)
	}
	// Perfect bus utilization would serve total/tBurst; allow 25% slack for
	// row misses at row boundaries and ramp-up.
	wantMin := int(float64(total/cfg.DRAMtBurst) * 0.75)
	if served < wantMin {
		t.Fatalf("served %d lines in %d cycles, want >= %d", served, total, wantMin)
	}
}
