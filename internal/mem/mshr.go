package mem

// MSHR is a miss-status holding register file: it tracks lines with an
// outstanding fill and merges subsequent misses to the same line so only one
// request per line leaves the cache. Tokens of merged requesters are
// released together when the fill completes.
type MSHR struct {
	entries    map[uint64][]uint32
	maxEntries int
	maxMerges  int
}

// NewMSHR builds an MSHR file with maxEntries distinct pending lines and up
// to maxMerges requesters per line (the primary miss counts as one).
func NewMSHR(maxEntries, maxMerges int) *MSHR {
	if maxEntries <= 0 {
		maxEntries = 1
	}
	if maxMerges <= 0 {
		maxMerges = 1
	}
	return &MSHR{
		entries:    make(map[uint64][]uint32, maxEntries),
		maxEntries: maxEntries,
		maxMerges:  maxMerges,
	}
}

// Pending reports whether lineAddr already has an outstanding fill.
func (m *MSHR) Pending(lineAddr uint64) bool {
	_, ok := m.entries[lineAddr]
	return ok
}

// Full reports whether no new line entry can be allocated.
func (m *MSHR) Full() bool { return len(m.entries) >= m.maxEntries }

// Allocate records a primary miss for lineAddr carrying token. It returns
// false when the MSHR file is full (the access must retry). lineAddr must
// not already be pending; merge those with Merge.
func (m *MSHR) Allocate(lineAddr uint64, token uint32) bool {
	if m.Full() {
		return false
	}
	if _, ok := m.entries[lineAddr]; ok {
		panic("mem: MSHR Allocate on already-pending line")
	}
	m.entries[lineAddr] = append(make([]uint32, 0, 2), token)
	return true
}

// Merge attaches token to the pending entry for lineAddr. It returns false
// when the per-line merge capacity is exhausted (the access must retry).
func (m *MSHR) Merge(lineAddr uint64, token uint32) bool {
	toks, ok := m.entries[lineAddr]
	if !ok {
		panic("mem: MSHR Merge on non-pending line")
	}
	if len(toks) >= m.maxMerges {
		return false
	}
	m.entries[lineAddr] = append(toks, token)
	return true
}

// Complete retires the entry for lineAddr and returns all waiting tokens in
// arrival order. Completing a non-pending line returns nil (a response can
// race a flush only in tests; real fills always have an entry).
func (m *MSHR) Complete(lineAddr uint64) []uint32 {
	toks, ok := m.entries[lineAddr]
	if !ok {
		return nil
	}
	delete(m.entries, lineAddr)
	return toks
}

// Used returns the number of occupied line entries.
func (m *MSHR) Used() int { return len(m.entries) }
