package mem

// MSHR is a miss-status holding register file: it tracks lines with an
// outstanding fill and merges subsequent misses to the same line so only one
// request per line leaves the cache. Tokens of merged requesters are
// released together when the fill completes.
//
// The file is slot-based: maxEntries token buffers are allocated once and
// recycled through a free list, so steady-state operation allocates nothing
// (primary misses are the hottest allocation site in long simulations
// otherwise). The slice Complete returns aliases the retired entry's slot
// buffer and is valid only until the next Allocate — both cache levels
// consume it before returning to the cycle loop.
type MSHR struct {
	// entries maps a pending line to its slot index.
	entries map[uint64]int32
	// slots holds the per-entry token buffers; retired buffers keep their
	// backing arrays (capacity grows to maxMerges once and stays).
	slots [][]uint32
	free  []int32

	maxEntries int
	maxMerges  int
}

// NewMSHR builds an MSHR file with maxEntries distinct pending lines and up
// to maxMerges requesters per line (the primary miss counts as one).
func NewMSHR(maxEntries, maxMerges int) *MSHR {
	if maxEntries <= 0 {
		maxEntries = 1
	}
	if maxMerges <= 0 {
		maxMerges = 1
	}
	m := &MSHR{
		entries:    make(map[uint64]int32, maxEntries),
		slots:      make([][]uint32, maxEntries),
		free:       make([]int32, 0, maxEntries),
		maxEntries: maxEntries,
		maxMerges:  maxMerges,
	}
	// One slab backs every slot at full merge capacity: Merge's len check
	// keeps a slot at <= maxMerges tokens, so no append ever reallocates and
	// the whole file costs one buffer allocation instead of maxEntries.
	slab := make([]uint32, maxEntries*maxMerges)
	for i := maxEntries - 1; i >= 0; i-- {
		m.slots[i] = slab[i*maxMerges : i*maxMerges : (i+1)*maxMerges]
		m.free = append(m.free, int32(i))
	}
	return m
}

// Pending reports whether lineAddr already has an outstanding fill.
func (m *MSHR) Pending(lineAddr uint64) bool {
	_, ok := m.entries[lineAddr]
	return ok
}

// Full reports whether no new line entry can be allocated.
func (m *MSHR) Full() bool { return len(m.free) == 0 }

// Allocate records a primary miss for lineAddr carrying token. It returns
// false when the MSHR file is full (the access must retry). lineAddr must
// not already be pending; merge those with Merge.
func (m *MSHR) Allocate(lineAddr uint64, token uint32) bool {
	if m.Full() {
		return false
	}
	if _, ok := m.entries[lineAddr]; ok {
		panic("mem: MSHR Allocate on already-pending line")
	}
	s := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.slots[s] = append(m.slots[s][:0], token)
	m.entries[lineAddr] = s
	return true
}

// Merge attaches token to the pending entry for lineAddr. It returns false
// when the per-line merge capacity is exhausted (the access must retry).
func (m *MSHR) Merge(lineAddr uint64, token uint32) bool {
	s, ok := m.entries[lineAddr]
	if !ok {
		panic("mem: MSHR Merge on non-pending line")
	}
	if len(m.slots[s]) >= m.maxMerges {
		return false
	}
	m.slots[s] = append(m.slots[s], token)
	return true
}

// Complete retires the entry for lineAddr and returns all waiting tokens in
// arrival order. The returned slice aliases the recycled slot buffer: it is
// valid only until the next Allocate, so callers must consume it before
// issuing new misses. Completing a non-pending line returns nil (a response
// can race a flush only in tests; real fills always have an entry).
func (m *MSHR) Complete(lineAddr uint64) []uint32 {
	s, ok := m.entries[lineAddr]
	if !ok {
		return nil
	}
	delete(m.entries, lineAddr)
	m.free = append(m.free, s)
	return m.slots[s]
}

// Used returns the number of occupied line entries.
func (m *MSHR) Used() int { return len(m.entries) }
