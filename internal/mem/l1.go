package mem

import "gpusched/internal/stats"

// Sender is the injection port an L1 uses to push misses and write-throughs
// into the interconnect. MemSystem provides one per core.
type Sender interface {
	// CanSend reports whether a request to lineAddr's partition would be
	// accepted this cycle.
	CanSend(lineAddr uint64) bool
	// Send injects the request. Call only after CanSend.
	Send(req Request, now uint64)
}

// AccessResult is the outcome of an L1 access attempt.
type AccessResult uint8

const (
	// AccessHit completed in L1; the data is ready after L1HitLatency.
	AccessHit AccessResult = iota
	// AccessPending left the core (miss sent or merged, or store/atomic
	// forwarded); loads and atomics will produce a Response later.
	AccessPending
	// AccessStall could not be processed (MSHR or interconnect full);
	// the LDST unit must retry the same transaction next cycle.
	AccessStall
)

// L1 is the per-core data-cache front end: a tag array for loads (Fermi
// style — write-through, no write-allocate, atomics bypass), an MSHR file,
// and the injection port toward the core's memory partitions.
//
// The L1 is deliberately owned by the SM and ticked inside the core loop;
// only misses cross into the shared memory system.
type L1 struct {
	cache *Cache
	mshr  *MSHR
	cfg   *Config
	port  Sender
	core  int

	// atomicToken is the reusable one-element buffer OnResponse returns for
	// atomic completions, valid (like MSHR.Complete's result) only until the
	// next response.
	atomicToken [1]uint32
}

// NewL1 builds the L1 for core coreID with injection port p.
func NewL1(cfg *Config, coreID int, p Sender) *L1 {
	return &L1{
		cache: NewCache(cfg.L1Bytes, cfg.LineBytes, cfg.L1Ways),
		mshr:  NewMSHR(cfg.L1MSHREntries, cfg.L1MSHRMerges),
		cfg:   cfg,
		port:  p,
		core:  coreID,
	}
}

// Load attempts a load of lineAddr for the pending-access token. On
// AccessHit the caller schedules its own writeback after L1HitLatency; on
// AccessPending a Response carrying token will arrive later.
func (l *L1) Load(lineAddr uint64, token uint32, now uint64) AccessResult {
	l.cache.Stats.Accesses++
	if l.cache.Lookup(lineAddr, false) {
		l.cache.Stats.Hits++
		return AccessHit
	}
	l.cache.Stats.Misses++
	if l.mshr.Pending(lineAddr) {
		if l.mshr.Merge(lineAddr, token) {
			l.cache.Stats.MSHRMerges++
			return AccessPending
		}
		l.cache.Stats.MSHRStalls++
		return AccessStall
	}
	if l.mshr.Full() || !l.port.CanSend(lineAddr) {
		if l.mshr.Full() {
			l.cache.Stats.MSHRStalls++
		}
		return AccessStall
	}
	if !l.mshr.Allocate(lineAddr, token) {
		l.cache.Stats.MSHRStalls++
		return AccessStall
	}
	l.port.Send(Request{Kind: ReqLoad, LineAddr: lineAddr, CoreID: l.core, Token: token, Born: now}, now)
	return AccessPending
}

// Store write-throughs lineAddr. Stores carry no token: the warp does not
// wait for them. The line is not allocated on miss.
func (l *L1) Store(lineAddr uint64, now uint64) AccessResult {
	if !l.port.CanSend(lineAddr) {
		return AccessStall
	}
	l.port.Send(Request{Kind: ReqStore, LineAddr: lineAddr, CoreID: l.core, Born: now}, now)
	return AccessPending
}

// Atomic forwards a read-modify-write to the owning L2 partition, bypassing
// the L1 tag array entirely.
func (l *L1) Atomic(lineAddr uint64, token uint32, now uint64) AccessResult {
	if !l.port.CanSend(lineAddr) {
		return AccessStall
	}
	l.port.Send(Request{Kind: ReqAtomic, LineAddr: lineAddr, CoreID: l.core, Token: token, Born: now}, now)
	return AccessPending
}

// OnResponse handles a returning memory-system response: load fills install
// the line and release every merged token; atomic completions release only
// their own token (no fill). The caller distinguishes the two via wasAtomic
// from its own pending-access table — resp.Atomic is advisory only (an L2
// merge can stamp a plain load's response with it, but that load still owns
// an L1 MSHR entry that must complete). The returned slice aliases a
// recycled buffer; consume it before the next access or response.
func (l *L1) OnResponse(resp Response, wasAtomic bool) []uint32 {
	if wasAtomic {
		l.atomicToken[0] = resp.Token
		return l.atomicToken[:]
	}
	l.cache.Fill(resp.LineAddr, false)
	return l.mshr.Complete(resp.LineAddr)
}

// MSHRUsed returns the number of outstanding miss entries (for drain checks).
func (l *L1) MSHRUsed() int { return l.mshr.Used() }

// Contains probes the tag array without side effects (tests/invariants).
func (l *L1) Contains(lineAddr uint64) bool { return l.cache.Contains(lineAddr) }

// CacheStats returns a pointer to the underlying hit/miss counters.
func (l *L1) CacheStats() *stats.Cache { return &l.cache.Stats }
