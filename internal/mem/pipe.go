package mem

// pipe is a bounded FIFO whose entries become visible to the consumer only
// after a fixed delay, modeling a pipelined link (wire latency) with finite
// buffering (backpressure). The zero value is unusable; use newPipe.
type pipe[T any] struct {
	entries []pipeEntry[T]
	cap     int
	latency uint64
}

type pipeEntry[T any] struct {
	ready uint64
	val   T
}

func newPipe[T any](capacity int, latency uint64) *pipe[T] {
	if capacity <= 0 {
		capacity = 1
	}
	return &pipe[T]{cap: capacity, latency: latency}
}

// CanPush reports whether the pipe has buffer space.
func (p *pipe[T]) CanPush() bool { return len(p.entries) < p.cap }

// Push enqueues v at cycle now; it becomes poppable at now+latency.
// Returns false (and drops nothing) when full.
func (p *pipe[T]) Push(now uint64, v T) bool {
	if !p.CanPush() {
		return false
	}
	p.entries = append(p.entries, pipeEntry[T]{ready: now + p.latency, val: v})
	return true
}

// forcePush enqueues v at cycle now regardless of the capacity bound — the
// commit path for admission decisions already taken against a snapshot (see
// System.tickPartition). The pipe may transiently exceed cap; CanPush then
// reports full until it drains back under the bound.
func (p *pipe[T]) forcePush(now uint64, v T) {
	p.entries = append(p.entries, pipeEntry[T]{ready: now + p.latency, val: v})
}

// CanPop reports whether the head entry has traversed the pipe.
func (p *pipe[T]) CanPop(now uint64) bool {
	return len(p.entries) > 0 && p.entries[0].ready <= now
}

// Pop removes and returns the head entry. Call only after CanPop.
func (p *pipe[T]) Pop() T {
	v := p.entries[0].val
	// Shift rather than reslice so the backing array does not grow
	// unboundedly over a long simulation.
	copy(p.entries, p.entries[1:])
	p.entries = p.entries[:len(p.entries)-1]
	return v
}

// Peek returns the head entry without removing it. Call only after CanPop.
func (p *pipe[T]) Peek() T { return p.entries[0].val }

// Len returns the number of buffered entries (ready or in flight).
func (p *pipe[T]) Len() int { return len(p.entries) }

// NextReady returns the cycle the head entry becomes poppable. The pipe is
// FIFO with uniform latency, so no later entry can become poppable earlier.
// Empty pipes return NeverEvent.
func (p *pipe[T]) NextReady() uint64 {
	if len(p.entries) == 0 {
		return NeverEvent
	}
	return p.entries[0].ready
}
