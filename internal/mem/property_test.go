package mem

import (
	"testing"
	"testing/quick"
)

// TestPipeFIFOProperty: any interleaving of pushes and pops preserves FIFO
// order and never loses or duplicates entries.
func TestPipeFIFOProperty(t *testing.T) {
	f := func(ops []bool, capRaw, latRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		latency := uint64(latRaw % 16)
		p := newPipe[int](capacity, latency)
		next, expect := 0, 0
		now := uint64(0)
		for _, isPush := range ops {
			if isPush {
				if p.Push(now, next) {
					next++
				} else if p.Len() != capacity {
					return false // rejected while not full
				}
			} else if p.CanPop(now) {
				if p.Pop() != expect {
					return false
				}
				expect++
			}
			now++
		}
		// Drain the rest.
		now += latency
		for p.CanPop(now) {
			if p.Pop() != expect {
				return false
			}
			expect++
		}
		return expect == next && p.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMSHRConservationProperty: every token allocated or merged comes back
// exactly once through Complete.
func TestMSHRConservationProperty(t *testing.T) {
	f := func(lines []uint8, entriesRaw, mergesRaw uint8) bool {
		m := NewMSHR(int(entriesRaw%8)+1, int(mergesRaw%4)+1)
		in := map[uint32]bool{}
		tok := uint32(0)
		for _, l := range lines {
			line := uint64(l%16) * 128
			if m.Pending(line) {
				if m.Merge(line, tok) {
					in[tok] = true
					tok++
				}
			} else if m.Allocate(line, tok) {
				in[tok] = true
				tok++
			}
		}
		out := map[uint32]bool{}
		for line := uint64(0); line < 16*128; line += 128 {
			for _, tk := range m.Complete(line) {
				if out[tk] {
					return false // duplicate release
				}
				out[tk] = true
			}
		}
		if len(out) != len(in) {
			return false
		}
		for tk := range in {
			if !out[tk] {
				return false
			}
		}
		return m.Used() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDRAMCompletionConservation: every enqueued read completes exactly
// once, regardless of address pattern; writes never produce completions.
func TestDRAMCompletionConservation(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		cfg := testDRAMConfig()
		got := map[uint32]int{}
		d := NewDRAMChannel(cfg, func(req Request, now uint64) {
			got[req.Token]++
		})
		reads := 0
		now := uint64(0)
		i := 0
		for i < len(addrs) {
			if d.CanAccept() {
				kind := ReqLoad
				if i < len(writes) && writes[i] {
					kind = ReqStore
				} else {
					reads++
				}
				d.Enqueue(Request{
					Kind:     kind,
					LineAddr: uint64(addrs[i]) * 128,
					Token:    uint32(i),
				}, now)
				i++
			}
			d.Tick(now)
			now++
		}
		for j := 0; j < 5000 && !d.Drained(); j++ {
			d.Tick(now)
			now++
		}
		if !d.Drained() {
			return false
		}
		total := 0
		for _, n := range got {
			if n != 1 {
				return false
			}
			total++
		}
		return total == reads
	}
	cfgQ := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Error(err)
	}
}

// TestCacheNoPhantomHits: a lookup can only hit a line that was filled and
// not yet displaced.
func TestCacheNoPhantomHits(t *testing.T) {
	f := func(fills, probes []uint8) bool {
		c := NewCache(1024, 128, 2)
		resident := map[uint64]bool{}
		for _, a := range fills {
			line := uint64(a%64) * 128
			ev := c.Fill(line, false)
			resident[line] = true
			if ev.Valid {
				if !resident[ev.LineAddr] {
					return false // evicted something never filled
				}
				delete(resident, ev.LineAddr)
			}
		}
		for _, a := range probes {
			line := uint64(a%64) * 128
			if c.Contains(line) != resident[line] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
