package gpusched_test

import (
	"strings"
	"testing"

	"gpusched"
)

func tinyConfig() gpusched.Config {
	cfg := gpusched.DefaultConfig()
	cfg.Cores = 4
	return cfg
}

func TestWorkloadCatalogPublic(t *testing.T) {
	ws := gpusched.Workloads()
	if len(ws) != 19 {
		t.Fatalf("got %d workloads, want 19", len(ws))
	}
	for _, w := range ws {
		if w.Name == "" || w.Class == "" || w.ModeledOn == "" {
			t.Errorf("incomplete workload %+v", w)
		}
		k := w.Kernel(gpusched.SizeTiny)
		if k.CTAs() <= 0 || k.ThreadsPerCTA()%32 != 0 {
			t.Errorf("%s: bad kernel shape %d x %d", w.Name, k.CTAs(), k.ThreadsPerCTA())
		}
	}
	if _, ok := gpusched.WorkloadByName("spmv"); !ok {
		t.Error("WorkloadByName(spmv) failed")
	}
	if _, ok := gpusched.WorkloadByName("missing"); ok {
		t.Error("WorkloadByName(missing) succeeded")
	}
}

func TestRunBaseline(t *testing.T) {
	w, _ := gpusched.WorkloadByName("vadd")
	res, err := gpusched.Run(tinyConfig(), gpusched.Baseline(), w.Kernel(gpusched.SizeTiny))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.Cycles == 0 || res.IPC <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if len(res.Kernels) != 1 || res.Kernels[0].Name != "vadd" {
		t.Fatalf("kernel stats %+v", res.Kernels)
	}
	if res.CTALimits != nil {
		t.Error("baseline reported CTA limits")
	}
}

func TestRunLCSExposesLimits(t *testing.T) {
	w, _ := gpusched.WorkloadByName("spmv")
	for _, sched := range []gpusched.Scheduler{gpusched.LCS(), gpusched.AdaptiveLCS()} {
		res, err := gpusched.Run(tinyConfig(), sched, w.Kernel(gpusched.SizeTiny))
		if err != nil {
			t.Fatal(err)
		}
		if res.CTALimits == nil {
			t.Errorf("%s: no CTA limits exposed", sched.Name())
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := map[string]gpusched.Scheduler{
		"baseline":     gpusched.Baseline(),
		"lcs":          gpusched.LCS(),
		"lcs-adaptive": gpusched.AdaptiveLCS(),
		"bcs":          gpusched.BCS(2),
		"static-3":     gpusched.StaticLimit(3),
		"sequential":   gpusched.Sequential(),
		"spatial":      gpusched.SpatialCKE(0),
		"mixed":        gpusched.MixedCKE(2),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name = %q, want %q", s.Name(), want)
		}
	}
}

func TestWarpPolicyString(t *testing.T) {
	for p, want := range map[gpusched.WarpPolicy]string{
		gpusched.WarpLRR:  "lrr",
		gpusched.WarpGTO:  "gto",
		gpusched.WarpBAWS: "baws",
	} {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestMultiKernelRun(t *testing.T) {
	a, _ := gpusched.WorkloadByName("vadd")
	b, _ := gpusched.WorkloadByName("kmeans")
	res, err := gpusched.Run(tinyConfig(), gpusched.Sequential(),
		a.Kernel(gpusched.SizeTiny), b.Kernel(gpusched.SizeTiny))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != 2 {
		t.Fatalf("got %d kernel records", len(res.Kernels))
	}
	if res.Kernels[1].LaunchCycle < res.Kernels[0].DoneCycle {
		t.Error("sequential scheduler overlapped kernels")
	}
}

func TestSpeedupHelper(t *testing.T) {
	base := gpusched.Result{Cycles: 2000}
	faster := gpusched.Result{Cycles: 1000}
	if got := faster.Speedup(base); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
}

func TestKernelBuilder(t *testing.T) {
	k, err := gpusched.NewKernelBuilder("custom", 8, 64).
		Regs(20).
		SharedMem(1024).
		Program(func(ctaID, warp int, p *gpusched.ProgramBuilder) {
			p.LoadGlobal(1, uint32(ctaID*256+warp*128))
			p.FAdd(2, 1, 2)
			p.Barrier()
			p.LoadShared(3, 2)
			p.SFU(4, 3)
			p.StoreGlobal(4, uint32(1<<20+ctaID*256))
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if k.Name() != "custom" || k.CTAs() != 8 || k.ThreadsPerCTA() != 64 {
		t.Fatalf("kernel shape %s %d %d", k.Name(), k.CTAs(), k.ThreadsPerCTA())
	}
	res, err := gpusched.Run(tinyConfig(), gpusched.Baseline(), k)
	if err != nil {
		t.Fatal(err)
	}
	// 8 CTAs x 2 warps x 7 instructions (6 + exit).
	if res.InstrIssued != 8*2*7 {
		t.Fatalf("issued %d, want %d", res.InstrIssued, 8*2*7)
	}
}

func TestKernelBuilderValidation(t *testing.T) {
	if _, err := gpusched.NewKernelBuilder("bad", 4, 33).Build(); err == nil {
		t.Error("ragged block accepted")
	}
	if _, err := gpusched.NewKernelBuilder("bad", 0, 64).Build(); err == nil {
		t.Error("empty grid accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid kernel")
		}
	}()
	gpusched.NewKernelBuilder("bad", 4, 33).MustBuild()
}

func TestRunRejectsBadConfig(t *testing.T) {
	w, _ := gpusched.WorkloadByName("vadd")
	cfg := tinyConfig()
	cfg.Cores = -1
	if _, err := gpusched.Run(cfg, gpusched.Baseline(), w.Kernel(gpusched.SizeTiny)); err == nil {
		// Cores<=0 falls back to default; ensure at least no crash and a
		// sane run. (Negative cores are treated as "use default".)
		t.Log("negative cores fell back to default")
	}
}

func TestCustomHardwareConfig(t *testing.T) {
	w, _ := gpusched.WorkloadByName("spmv")
	run := func(l1Bytes int) gpusched.Result {
		smCfg := gpusched.DefaultSMConfig()
		memCfg := gpusched.DefaultMemConfig()
		memCfg.L1Bytes = l1Bytes
		cfg := tinyConfig()
		cfg.SM = &smCfg
		cfg.Mem = &memCfg
		res, err := gpusched.Run(cfg, gpusched.Baseline(), w.Kernel(gpusched.SizeTiny))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	big := run(256 * 1024) // every resident gather window fits
	small := run(4 * 1024) // nothing fits
	if big.L1HitRate <= small.L1HitRate {
		t.Errorf("64x larger L1 did not improve hit rate: %.3f vs %.3f",
			big.L1HitRate, small.L1HitRate)
	}
}

func TestWorkloadClassesCovered(t *testing.T) {
	classes := map[string]bool{}
	for _, w := range gpusched.Workloads() {
		classes[w.Class] = true
	}
	for _, c := range []string{"compute", "stream", "cache", "locality", "irregular", "sync"} {
		if !classes[c] {
			t.Errorf("class %s missing from public catalog", c)
		}
	}
}

func TestStaticLimitNameEncodesLimit(t *testing.T) {
	if !strings.HasPrefix(gpusched.StaticLimit(5).Name(), "static-5") {
		t.Error("static limit name lost its parameter")
	}
}
