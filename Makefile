# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test ci bench bench-all paper paper-small examples serve clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Mirror of .github/workflows/ci.yml: build, vet, race-enabled tests, and a
# short fuzz smoke of the kernel-completion property.
ci:
	go build ./...
	go vet ./...
	go test -race ./...
	go test -run='^$$' -fuzz=FuzzKernel -fuzztime=10s .

# Headline benchmarks (simulator throughput + two figure experiments),
# recorded as JSON so CI can diff against the committed baseline.
bench:
	go test -run='^$$' -bench 'SimulatorThroughput|Fig5|Fig8' -benchtime=1x -benchmem . | tee /tmp/gpusched_bench.out
	go run ./cmd/benchjson -out results/BENCH_3.json < /tmp/gpusched_bench.out

# One benchmark per reproduced table/figure plus microbenchmarks.
bench-all:
	go test -bench=. -benchmem ./...

# Regenerate every table/figure at full scale (CSV in results/).
paper:
	go run ./cmd/paperbench -out results

paper-small:
	go run ./cmd/paperbench -scale small -out results

# Run the simulation daemon (HTTP job API on :8080; see README).
serve:
	go run ./cmd/gpuschedd

examples:
	go run ./examples/quickstart
	go run ./examples/ctathrottling
	go run ./examples/blockpairing
	go run ./examples/concurrentkernels
	go run ./examples/timeline

clean:
	rm -rf results timeline_*.csv
