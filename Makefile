# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test ci bench paper paper-small examples serve clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Mirror of .github/workflows/ci.yml: build, vet, race-enabled tests, and a
# short fuzz smoke of the kernel-completion property.
ci:
	go build ./...
	go vet ./...
	go test -race ./...
	go test -run='^$$' -fuzz=FuzzKernel -fuzztime=10s .

# One benchmark per reproduced table/figure plus microbenchmarks.
bench:
	go test -bench=. -benchmem ./...

# Regenerate every table/figure at full scale (CSV in results/).
paper:
	go run ./cmd/paperbench -out results

paper-small:
	go run ./cmd/paperbench -scale small -out results

# Run the simulation daemon (HTTP job API on :8080; see README).
serve:
	go run ./cmd/gpuschedd

examples:
	go run ./examples/quickstart
	go run ./examples/ctathrottling
	go run ./examples/blockpairing
	go run ./examples/concurrentkernels
	go run ./examples/timeline

clean:
	rm -rf results timeline_*.csv
