# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench paper paper-small examples clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# One benchmark per reproduced table/figure plus microbenchmarks.
bench:
	go test -bench=. -benchmem ./...

# Regenerate every table/figure at full scale (CSV in results/).
paper:
	go run ./cmd/paperbench -out results

paper-small:
	go run ./cmd/paperbench -scale small -out results

examples:
	go run ./examples/quickstart
	go run ./examples/ctathrottling
	go run ./examples/blockpairing
	go run ./examples/concurrentkernels
	go run ./examples/timeline

clean:
	rm -rf results timeline_*.csv
