# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test lint race ci bench bench-all paper paper-small examples serve fleet-smoke clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Static checks: vet, the in-tree gpulint suite (determinism and cache-key
# contracts; see DESIGN.md "Determinism contract"), and staticcheck when it
# is installed locally (CI pins and runs it unconditionally).
lint:
	go vet ./...
	go run ./cmd/gpulint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it)"; \
	fi

# Race-detector stress over the concurrency-bearing packages (mirrors the
# CI race job): the dynamic counterpart to gpulint's static
# phasepurity/wakesync/guardedby contracts.
race:
	go test -race -count=3 ./internal/fleet ./internal/server ./internal/sim ./internal/gpu/parexec ./internal/gpu

# Mirror of .github/workflows/ci.yml: build, lint, race-enabled tests, and
# short fuzz smokes of the kernel-completion and request-wire properties.
ci: lint
	go build ./...
	go test -race ./...
	go test -run='^$$' -fuzz=FuzzKernel -fuzztime=10s .
	go test -run='^$$' -fuzz=FuzzRequestJSON -fuzztime=10s ./internal/sim

# Headline benchmarks (simulator throughput, worker-scaling, and two figure
# experiments), recorded as JSON so CI can diff against the committed
# baseline. The figure experiments run once (-benchtime=1x: one iteration is
# a whole experiment); the throughput/scaling microbenches are pinned to a
# fixed 20-iteration count because a single ~10ms run drifts ~20% between
# otherwise identical invocations (the stencil number was recorded at ~300k
# simcycles/s in one run and 249k in the committed BENCH_3.json for exactly
# this reason). BENCH_OUT is overridable so a new baseline generation never
# silently overwrites (or keeps re-targeting) an old one. Each go test
# invocation also drops CPU and heap profiles into BENCH_PROF (uploaded as
# CI artifacts), so a regression flagged by the JSON diff comes with the
# profile that explains it.
BENCH_OUT ?= results/BENCH_10.json
BENCH_PROF ?= results/prof
bench:
	mkdir -p $(BENCH_PROF)
	go test -run='^$$' -bench 'Fig5|Fig8|Fig14' -benchtime=1x -benchmem \
		-cpuprofile $(BENCH_PROF)/figs.cpu.pprof -memprofile $(BENCH_PROF)/figs.mem.pprof \
		-o $(BENCH_PROF)/bench.test . | tee /tmp/gpusched_bench.out
	go test -run='^$$' -bench 'SimulatorThroughput|ParallelTick' -benchtime=20x -benchmem \
		-cpuprofile $(BENCH_PROF)/micro.cpu.pprof -memprofile $(BENCH_PROF)/micro.mem.pprof \
		-o $(BENCH_PROF)/bench.test . | tee -a /tmp/gpusched_bench.out
	go run ./cmd/benchjson -out $(BENCH_OUT) < /tmp/gpusched_bench.out

# One benchmark per reproduced table/figure plus microbenchmarks.
bench-all:
	go test -bench=. -benchmem ./...

# Regenerate every table/figure at full scale (CSV in results/).
paper:
	go run ./cmd/paperbench -out results

paper-small:
	go run ./cmd/paperbench -scale small -out results

# Run the simulation daemon (HTTP job API on :8080; see README).
serve:
	go run ./cmd/gpuschedd

# End-to-end fleet check: 2 shards + router + loadgen, asserting a
# nonzero fleet dedup hit rate (see DESIGN.md "Fleet architecture").
fleet-smoke:
	bash scripts/fleet_smoke.sh

examples:
	go run ./examples/quickstart
	go run ./examples/ctathrottling
	go run ./examples/blockpairing
	go run ./examples/concurrentkernels
	go run ./examples/timeline

clean:
	rm -rf results timeline_*.csv
