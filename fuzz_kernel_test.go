package gpusched_test

import (
	"math/rand"
	"testing"

	"gpusched"
)

// FuzzKernel is the fuzzer-driven form of the completion property below:
// whatever shape the fuzzer picks, the generated kernel must finish under
// the selected scheduler/warp-policy pair with the exact instruction count
// the generator produced. Run with go test -fuzz=FuzzKernel.
func FuzzKernel(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(10), uint8(1), int64(1), uint8(0), uint8(1))
	f.Add(uint8(12), uint8(4), uint8(24), uint8(2), int64(42), uint8(3), uint8(2))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), int64(7), uint8(5), uint8(0))
	schedulers := []gpusched.Scheduler{
		gpusched.Baseline(), gpusched.LCS(), gpusched.AdaptiveLCS(),
		gpusched.BCS(2), gpusched.DynCTA(), gpusched.Sequential(),
	}
	policies := []gpusched.WarpPolicy{
		gpusched.WarpLRR, gpusched.WarpGTO, gpusched.WarpBAWS, gpusched.WarpTwoLevel,
	}
	f.Fuzz(func(t *testing.T, ctasRaw, warpsRaw, instrRaw, barriersRaw uint8, seed int64, schedRaw, polRaw uint8) {
		// Clamp to shapes that simulate in milliseconds.
		ctas := 1 + int(ctasRaw)%12
		warps := 1 + int(warpsRaw)%4
		nInstr := 1 + int(instrRaw)%24
		barriers := int(barriersRaw) % 3
		if barriers >= nInstr {
			barriers = 0
		}
		sched := schedulers[int(schedRaw)%len(schedulers)]
		k, err := gpusched.NewKernelBuilder("fuzz", ctas, warps*32).
			Regs(8 + int(ctasRaw)%24).
			SharedMem(int(warpsRaw) % 4 * 1024).
			Program(func(ctaID, warp int, p *gpusched.ProgramBuilder) {
				local := rand.New(rand.NewSource(seed ^ int64(ctaID*1000+warp)))
				barLeft := barriers
				for i := 0; i < nInstr; i++ {
					if barLeft > 0 && i == nInstr/(barLeft+1) {
						p.Barrier()
						barLeft--
						continue
					}
					switch local.Intn(8) {
					case 0:
						p.LoadGlobal(1, uint32(local.Intn(1<<20))*4)
					case 1:
						var addrs [32]uint32
						for l := range addrs {
							addrs[l] = uint32(local.Intn(1<<18)) * 4
						}
						p.LoadGlobalLanes(2, addrs)
					case 2:
						p.StoreGlobal(2, uint32(local.Intn(1<<20))*4)
					case 3:
						p.LoadShared(3, uint8(1+local.Intn(4)))
					case 4:
						p.SFU(4, 3)
					case 5:
						p.FAdd(5, 4, 5)
					case 6:
						p.IAdd(6, 5)
					default:
						p.FMul(7, 6, 7)
					}
				}
			}).Build()
		if err != nil {
			// Shapes the builder rejects (e.g. over-limit kernels) are not
			// interesting inputs.
			t.Skip()
		}
		cfg := tinyConfig()
		cfg.WarpPolicy = policies[int(polRaw)%len(policies)]
		res, err := gpusched.Run(cfg, sched, k)
		if err != nil {
			t.Fatalf("%s/%s: %v", sched.Name(), cfg.WarpPolicy, err)
		}
		if res.TimedOut {
			t.Fatalf("%s/%s: timed out (ctas=%d warps=%d instr=%d barriers=%d)",
				sched.Name(), cfg.WarpPolicy, ctas, warps, nInstr, barriers)
		}
		want := uint64(ctas*warps) * uint64(nInstr+1) // +1 for EXIT
		if res.InstrIssued != want {
			t.Fatalf("%s/%s: issued %d, want %d (ctas=%d warps=%d instr=%d)",
				sched.Name(), cfg.WarpPolicy, res.InstrIssued, want, ctas, warps, nInstr)
		}
	})
}

// TestRandomKernelsCompleteExactly is an end-to-end fuzz property: randomly
// generated kernels — arbitrary mixes of ALU/SFU/memory/barrier work,
// divergent gathers included — must complete under every scheduler with the
// exact instruction count the generator produced.
func TestRandomKernelsCompleteExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many randomized simulations")
	}
	rng := rand.New(rand.NewSource(20260705))
	schedulers := []gpusched.Scheduler{
		gpusched.Baseline(), gpusched.LCS(), gpusched.AdaptiveLCS(),
		gpusched.BCS(2), gpusched.DynCTA(), gpusched.Sequential(),
	}
	policies := []gpusched.WarpPolicy{
		gpusched.WarpLRR, gpusched.WarpGTO, gpusched.WarpBAWS, gpusched.WarpTwoLevel,
	}
	for trial := 0; trial < 12; trial++ {
		ctas := 4 + rng.Intn(24)
		warps := 1 + rng.Intn(8)
		nInstr := 5 + rng.Intn(40)
		barriers := rng.Intn(3)
		seed := rng.Int63()

		// The program recipe must be deterministic in (ctaID, warp) —
		// derive per-warp streams from the trial seed.
		k, err := gpusched.NewKernelBuilder("fuzz", ctas, warps*32).
			Regs(8 + rng.Intn(24)).
			SharedMem(rng.Intn(4) * 1024).
			Program(func(ctaID, warp int, p *gpusched.ProgramBuilder) {
				local := rand.New(rand.NewSource(seed ^ int64(ctaID*1000+warp)))
				barLeft := barriers
				for i := 0; i < nInstr; i++ {
					// Barriers at fixed positions so all warps agree.
					if barLeft > 0 && i == nInstr/(barLeft+1) {
						p.Barrier()
						barLeft--
						continue
					}
					switch local.Intn(8) {
					case 0:
						p.LoadGlobal(1, uint32(local.Intn(1<<20))*4)
					case 1:
						var addrs [32]uint32
						for l := range addrs {
							addrs[l] = uint32(local.Intn(1<<18)) * 4
						}
						p.LoadGlobalLanes(2, addrs)
					case 2:
						p.StoreGlobal(2, uint32(local.Intn(1<<20))*4)
					case 3:
						p.LoadShared(3, uint8(1+local.Intn(4)))
					case 4:
						p.SFU(4, 3)
					case 5:
						p.FAdd(5, 4, 5)
					case 6:
						p.IAdd(6, 5)
					default:
						p.FMul(7, 6, 7)
					}
				}
			}).Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Barriers insert instead of replacing, so count the real stream.
		want := uint64(ctas*warps) * uint64(nInstr+1) // +1 for EXIT

		sched := schedulers[trial%len(schedulers)]
		cfg := tinyConfig()
		cfg.WarpPolicy = policies[trial%len(policies)]
		res, err := gpusched.Run(cfg, sched, k)
		if err != nil {
			t.Fatalf("trial %d (%s/%s): %v", trial, sched.Name(), cfg.WarpPolicy, err)
		}
		if res.TimedOut {
			t.Fatalf("trial %d (%s/%s): timed out (ctas=%d warps=%d instr=%d barriers=%d)",
				trial, sched.Name(), cfg.WarpPolicy, ctas, warps, nInstr, barriers)
		}
		if res.InstrIssued != want {
			t.Fatalf("trial %d (%s/%s): issued %d, want %d",
				trial, sched.Name(), cfg.WarpPolicy, res.InstrIssued, want)
		}
	}
}
