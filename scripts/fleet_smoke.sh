#!/usr/bin/env bash
# fleet_smoke.sh: boot a 2-shard gpuschedd fleet behind a gpurouter, drive
# it with loadgen, and assert the fleet deduplicated (nonzero dedup hit
# rate, zero request errors). This is the end-to-end check that the
# consistent-hash routing, the peer-cache protocol, and the shard batch
# endpoint actually compose — `make fleet-smoke` and CI run it.
set -euo pipefail

BIN=$(mktemp -d)
CACHE=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$BIN" "$CACHE"' EXIT

go build -o "$BIN/gpuschedd" ./cmd/gpuschedd
go build -o "$BIN/gpurouter" ./cmd/gpurouter
go build -o "$BIN/loadgen" ./cmd/loadgen

ADDR_A=127.0.0.1:8191
ADDR_B=127.0.0.1:8192
ADDR_R=127.0.0.1:8190

# Each shard gets its own cache dir and the other shard as a cache peer,
# so results migrate instead of resimulating if placement ever shifts.
"$BIN/gpuschedd" -addr "$ADDR_A" -cache "$CACHE/a" -peers "http://$ADDR_B" &
"$BIN/gpuschedd" -addr "$ADDR_B" -cache "$CACHE/b" -peers "http://$ADDR_A" &

for addr in "$ADDR_A" "$ADDR_B"; do
  for _ in $(seq 1 50); do
    curl -sf "http://$addr/readyz" >/dev/null && break
    sleep 0.2
  done
  curl -sf "http://$addr/readyz" >/dev/null || { echo "shard $addr never became ready" >&2; exit 1; }
done

"$BIN/gpurouter" -addr "$ADDR_R" \
  -shards "a=http://$ADDR_A,b=http://$ADDR_B" -probe-interval 250ms &
for _ in $(seq 1 50); do
  curl -sf "http://$ADDR_R/readyz" >/dev/null && break
  sleep 0.2
done
curl -sf "http://$ADDR_R/readyz" >/dev/null || { echo "router never became ready" >&2; exit 1; }

# 120 requests over 16 unique keys: at least 104 must be answered from a
# cache somewhere in the fleet. -min-dedup fails the run if the measured
# rate (delta of the fleet sim counters) comes in below 0.5, and any
# request error is fatal inside loadgen itself.
"$BIN/loadgen" -target "http://$ADDR_R" \
  -requests 120 -unique 16 -concurrency 8 -scale test -min-dedup 0.5

# Same fleet, batch protocol.
"$BIN/loadgen" -target "http://$ADDR_R" \
  -requests 120 -unique 16 -concurrency 4 -mode batch -batch 24 -scale test -min-dedup 0.5

echo "fleet smoke OK"
