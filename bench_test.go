package gpusched_test

// One benchmark per reproduced table/figure (BenchmarkTable*, BenchmarkFig*)
// plus microbenchmarks of the simulator's hot paths. The figure benchmarks
// run the same experiment code as cmd/paperbench at the "small" scale and
// report the experiment's headline number as a custom metric; run
// cmd/paperbench for the full-scale paper numbers.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig5 -benchtime=1x

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"testing"

	"gpusched"
	"gpusched/internal/gpu"
	"gpusched/internal/harness"
	"gpusched/internal/sim"
	"gpusched/internal/workloads"
)

// sharedHarness memoizes simulation runs across benchmarks so the suite is
// dominated by distinct experiments, not repeats.
var (
	harnessOnce sync.Once
	hshared     *harness.Harness
)

func benchHarness() *harness.Harness {
	harnessOnce.Do(func() {
		hshared = harness.New(harness.Options{Scale: workloads.ScaleSmall})
	})
	return hshared
}

// geomeanRow extracts the last row's numeric cell (the geomean the figure
// reports) when present.
func reportLastRowMetric(b *testing.B, t *harness.Table, col int, name string) {
	b.Helper()
	if len(t.Rows) == 0 {
		return
	}
	last := t.Rows[len(t.Rows)-1]
	if col >= len(last) {
		return
	}
	if v, err := strconv.ParseFloat(last[col], 64); err == nil {
		b.ReportMetric(v, name)
	}
}

func runExperiment(b *testing.B, id string, metricCol int, metricName string) {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var table *harness.Table
	var err error
	for i := 0; i < b.N; i++ {
		table, err = e.Run(benchHarness())
		if err != nil {
			b.Fatal(err)
		}
	}
	table.Render(io.Discard)
	if metricCol >= 0 {
		reportLastRowMetric(b, table, metricCol, metricName)
	}
}

func BenchmarkTable1Config(b *testing.B)          { runExperiment(b, "table1", -1, "") }
func BenchmarkTable2Characteristics(b *testing.B) { runExperiment(b, "table2", -1, "") }
func BenchmarkFig3CTASweep(b *testing.B)          { runExperiment(b, "fig3", -1, "") }
func BenchmarkFig4IssueShare(b *testing.B)        { runExperiment(b, "fig4", -1, "") }
func BenchmarkFig5LCS(b *testing.B)               { runExperiment(b, "fig5", 2, "geomean-speedup") }
func BenchmarkFig6LCSMemory(b *testing.B)         { runExperiment(b, "fig6", -1, "") }
func BenchmarkFig7LCSChoice(b *testing.B)         { runExperiment(b, "fig7", -1, "") }
func BenchmarkFig8BCS(b *testing.B)               { runExperiment(b, "fig8", 1, "geomean-speedup") }
func BenchmarkFig9BAWS(b *testing.B)              { runExperiment(b, "fig9", 2, "geomean-speedup") }
func BenchmarkFig10MCKE(b *testing.B)             { runExperiment(b, "fig10", 4, "geomean-throughput") }
func BenchmarkFig11Sensitivity(b *testing.B)      { runExperiment(b, "fig11", -1, "") }
func BenchmarkFig12WarpSched(b *testing.B)        { runExperiment(b, "fig12", 3, "geomean-speedup") }
func BenchmarkFig13PriorWork(b *testing.B)        { runExperiment(b, "fig13", 3, "geomean-speedup") }
func BenchmarkFig14Preemption(b *testing.B)       { runExperiment(b, "fig14", -1, "") }

// BenchmarkSimulatorThroughput measures raw simulation speed — simulated
// cycles per wall second — on the two shapes that bracket the simulator's
// behaviour: a stall-heavy dependent-load chase where every resident warp
// spends most cycles memory-blocked (the event-horizon fast-forward's
// target), and a mid-weight stencil that keeps the issue logic busy.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.Run("stall-heavy", func(b *testing.B) {
		cfg := gpu.DefaultConfig()
		var cycles uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g, err := gpu.New(cfg, sim.Baseline().NewDispatcher(), workloads.ChaseSpec(1, 1, 1024))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			cycles += g.Run().Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
	})
	b.Run("stencil", func(b *testing.B) {
		w, _ := gpusched.WorkloadByName("stencil")
		cfg := gpusched.DefaultConfig()
		var cycles uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := gpusched.MustRun(cfg, gpusched.Baseline(), w.Kernel(gpusched.SizeTiny))
			cycles += res.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
	})
}

// BenchmarkParallelTick measures how the two-phase tick scales with the
// phase-A worker count on the same two bracket shapes as
// BenchmarkSimulatorThroughput. workers=1 is the serial reference path;
// results are byte-identical at every count (the golden determinism tests
// enforce it), so the only thing that may change here is wall clock.
// Speedup is workers=N simcycles/s over workers=1; compare ratios within
// one host's record, not absolutes across hosts — a single-CPU runner
// cannot show a speedup at all (the spin barrier just adds overhead there).
func BenchmarkParallelTick(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("stall-heavy/workers=%d", workers), func(b *testing.B) {
			cfg := gpu.DefaultConfig()
			cfg.Workers = workers
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, err := gpu.New(cfg, sim.Baseline().NewDispatcher(), workloads.ChaseSpec(1, 1, 1024))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				cycles += g.Run().Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
		})
		b.Run(fmt.Sprintf("stencil/workers=%d", workers), func(b *testing.B) {
			w, _ := gpusched.WorkloadByName("stencil")
			cfg := gpusched.DefaultConfig()
			cfg.Workers = workers
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := gpusched.MustRun(cfg, gpusched.Baseline(), w.Kernel(gpusched.SizeTiny))
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
		})
	}
}

// BenchmarkSchedulerOverheads compares the dispatch policies' wall cost on
// identical work (they simulate different schedules, so this is a
// same-order sanity check, not a microbenchmark).
func BenchmarkSchedulerOverheads(b *testing.B) {
	w, _ := gpusched.WorkloadByName("vadd")
	cfg := gpusched.DefaultConfig()
	for _, sched := range []gpusched.Scheduler{
		gpusched.Baseline(), gpusched.LCS(), gpusched.AdaptiveLCS(), gpusched.BCS(2),
	} {
		b.Run(sched.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gpusched.MustRun(cfg, sched, w.Kernel(gpusched.SizeTiny))
			}
		})
	}
}
