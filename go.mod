module gpusched

go 1.22
