package gpusched_test

import (
	"strings"
	"testing"

	"gpusched"
)

func TestRunTraced(t *testing.T) {
	w, _ := gpusched.WorkloadByName("stencil")
	res, tl, err := gpusched.RunTraced(tinyConfig(), gpusched.Baseline(), 512, w.Kernel(gpusched.SizeTiny))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.Cycles == 0 {
		t.Fatalf("bad result %+v", res)
	}
	if len(tl.Samples) == 0 {
		t.Fatal("empty timeline")
	}
	if tl.PeakIPC() <= 0 {
		t.Fatal("timeline recorded no work")
	}
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cycle,ipc") {
		t.Fatal("CSV header missing")
	}
}

func TestRunTracedDefaultEpoch(t *testing.T) {
	w, _ := gpusched.WorkloadByName("vadd")
	_, tl, err := gpusched.RunTraced(tinyConfig(), gpusched.Baseline(), 0, w.Kernel(gpusched.SizeTiny))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Epoch != 1024 {
		t.Fatalf("default epoch = %d, want 1024", tl.Epoch)
	}
}

func TestDynCTAPublic(t *testing.T) {
	w, _ := gpusched.WorkloadByName("spmv")
	res, err := gpusched.Run(tinyConfig(), gpusched.DynCTA(), w.Kernel(gpusched.SizeTiny))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if res.CTALimits == nil {
		t.Fatal("DynCTA exposed no limits")
	}
	if gpusched.DynCTA().Name() != "dyncta" {
		t.Fatal("wrong name")
	}
}

func TestTwoLevelPolicyPublic(t *testing.T) {
	w, _ := gpusched.WorkloadByName("vadd")
	cfg := tinyConfig()
	cfg.WarpPolicy = gpusched.WarpTwoLevel
	if cfg.WarpPolicy.String() != "two-level" {
		t.Fatalf("policy string %q", cfg.WarpPolicy.String())
	}
	res, err := gpusched.Run(cfg, gpusched.Baseline(), w.Kernel(gpusched.SizeTiny))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.IPC <= 0 {
		t.Fatalf("two-level run degenerate: %+v", res)
	}
	// Same work as GTO.
	cfg.WarpPolicy = gpusched.WarpGTO
	gto, err := gpusched.Run(cfg, gpusched.Baseline(), w.Kernel(gpusched.SizeTiny))
	if err != nil {
		t.Fatal(err)
	}
	if res.InstrIssued != gto.InstrIssued {
		t.Fatalf("two-level issued %d, GTO %d", res.InstrIssued, gto.InstrIssued)
	}
}
