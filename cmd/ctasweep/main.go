// Command ctasweep sweeps the per-SM CTA limit for one or more workloads
// and prints the IPC curve — the quickest way to see the paper's motivating
// observation that maximal occupancy is not optimal.
//
//	ctasweep spmv conv2d
//	ctasweep -size full -warp gto stencil
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gpusched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ctasweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sizeStr  = fs.String("size", "small", "problem size: tiny | small | full")
		warpStr  = fs.String("warp", "gto", "warp scheduler: lrr | gto | baws")
		cores    = fs.Int("cores", 15, "SM count")
		schedStr = fs.String("sched", "", "also run each workload under this scheduler and report it against the sweep ("+gpusched.SchedulerFlagHelp+")")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	names := fs.Args()
	if len(names) == 0 {
		fmt.Fprintln(stderr, "usage: ctasweep [flags] workload...")
		return 2
	}

	cfg := gpusched.DefaultConfig()
	cfg.Cores = *cores
	var err error
	cfg.WarpPolicy, err = gpusched.ParseWarpPolicy(*warpStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	size, err := gpusched.ParseSize(*sizeStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var overlay *gpusched.Scheduler
	if *schedStr != "" {
		s, err := gpusched.ParseScheduler(*schedStr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		overlay = &s
	}

	for _, name := range names {
		w, ok := gpusched.WorkloadByName(name)
		if !ok {
			fmt.Fprintf(stderr, "unknown workload %q\n", name)
			return 2
		}
		fmt.Fprintf(stdout, "%s (%s)\n", w.Name, w.ModeledOn)
		fmt.Fprintf(stdout, "  %-6s %-10s %-8s %-8s %-9s %s\n", "limit", "cycles", "IPC", "L1 hit", "DRAM q", "bar")
		type point struct {
			lim    int
			cycles uint64
			ipc    float64
		}
		var pts []point
		best := point{}
		for lim := 1; lim <= 8; lim++ {
			res, err := gpusched.Run(cfg, gpusched.StaticLimit(lim), w.Kernel(size))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			p := point{lim, res.Cycles, res.IPC}
			pts = append(pts, p)
			if best.cycles == 0 || p.cycles < best.cycles {
				best = p
			}
			bar := strings.Repeat("#", int(res.IPC*4+0.5))
			fmt.Fprintf(stdout, "  %-6d %-10d %-8.2f %-8s %-9.0f %s\n",
				lim, res.Cycles, res.IPC,
				fmt.Sprintf("%.1f%%", res.L1HitRate*100), res.AvgDRAMQueue, bar)
			if lim > 1 && pts[len(pts)-1].cycles == pts[len(pts)-2].cycles {
				fmt.Fprintf(stdout, "  (occupancy limit reached at %d CTAs/SM)\n", lim-1)
				break
			}
		}
		lastIPC := pts[len(pts)-1].ipc
		fmt.Fprintf(stdout, "  best: %d CTAs/SM at IPC %.2f (%.1f%% over max occupancy)\n",
			best.lim, best.ipc, (best.ipc/lastIPC-1)*100)
		if overlay != nil {
			res, err := gpusched.Run(cfg, *overlay, w.Kernel(size))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stdout, "  %s: IPC %.2f in %d cycles (%.1f%% of sweep best)\n",
				overlay.Name(), res.IPC, res.Cycles, res.IPC/best.ipc*100)
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
