// Command ctasweep sweeps the per-SM CTA limit for one or more workloads
// and prints the IPC curve — the quickest way to see the paper's motivating
// observation that maximal occupancy is not optimal.
//
//	ctasweep spmv conv2d
//	ctasweep -size full -warp gto stencil
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpusched"
)

func main() {
	var (
		sizeStr = flag.String("size", "small", "problem size: tiny | small | full")
		warpStr = flag.String("warp", "gto", "warp scheduler: lrr | gto | baws")
		cores   = flag.Int("cores", 15, "SM count")
	)
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ctasweep [flags] workload...")
		os.Exit(2)
	}

	cfg := gpusched.DefaultConfig()
	cfg.Cores = *cores
	switch *warpStr {
	case "lrr":
		cfg.WarpPolicy = gpusched.WarpLRR
	case "baws":
		cfg.WarpPolicy = gpusched.WarpBAWS
	default:
		cfg.WarpPolicy = gpusched.WarpGTO
	}
	size := gpusched.SizeSmall
	switch *sizeStr {
	case "tiny":
		size = gpusched.SizeTiny
	case "full":
		size = gpusched.SizeFull
	}

	for _, name := range names {
		w, ok := gpusched.WorkloadByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("%s (%s)\n", w.Name, w.ModeledOn)
		fmt.Printf("  %-6s %-10s %-8s %-8s %-9s %s\n", "limit", "cycles", "IPC", "L1 hit", "DRAM q", "bar")
		type point struct {
			lim    int
			cycles uint64
			ipc    float64
		}
		var pts []point
		best := point{}
		for lim := 1; lim <= 8; lim++ {
			res, err := gpusched.Run(cfg, gpusched.StaticLimit(lim), w.Kernel(size))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			p := point{lim, res.Cycles, res.IPC}
			pts = append(pts, p)
			if best.cycles == 0 || p.cycles < best.cycles {
				best = p
			}
			bar := strings.Repeat("#", int(res.IPC*4+0.5))
			fmt.Printf("  %-6d %-10d %-8.2f %-8s %-9.0f %s\n",
				lim, res.Cycles, res.IPC,
				fmt.Sprintf("%.1f%%", res.L1HitRate*100), res.AvgDRAMQueue, bar)
			if lim > 1 && pts[len(pts)-1].cycles == pts[len(pts)-2].cycles {
				fmt.Printf("  (occupancy limit reached at %d CTAs/SM)\n", lim-1)
				break
			}
		}
		lastIPC := pts[len(pts)-1].ipc
		fmt.Printf("  best: %d CTAs/SM at IPC %.2f (%.1f%% over max occupancy)\n\n",
			best.lim, best.ipc, (best.ipc/lastIPC-1)*100)
	}
}
