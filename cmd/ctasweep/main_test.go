package main

import (
	"strings"
	"testing"
)

func TestRunRequiresWorkloads(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("run() = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage") {
		t.Errorf("stderr %q missing usage line", errb.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-size", "nope", "vadd"},
		{"-warp", "nope", "vadd"},
		{"no-such-workload"},
	} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestSweepTinyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	var out, errb strings.Builder
	if code := run([]string{"-size", "tiny", "-cores", "4", "vadd"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	for _, want := range []string{"vadd", "limit", "best:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("sweep output missing %q in:\n%s", want, out.String())
		}
	}
}
