package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe writer: the daemon logs from its own
// goroutine while the test polls the contents.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonEndToEnd boots the daemon on an ephemeral port, drives one
// paper workload job over HTTP to completion, checks /metrics saw the
// simulation, then stops it the way SIGTERM would and expects a clean
// drain.
func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuf
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{"-addr", "127.0.0.1:0", "-cache", "off", "-drain", "10s"}, &out, &errb)
	}()

	// The daemon prints its bound address once the listener is up.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if s := out.String(); strings.Contains(s, "listening on ") {
			rest := s[strings.Index(s, "listening on ")+len("listening on "):]
			base = "http://" + strings.Fields(rest)[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr: %s", errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}

	if code, data := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", code, data)
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"workloads":["vadd"],"sched":"lcs","scale":"tiny","cores":4}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}

	for {
		code, data := get("/v1/jobs/" + job.ID)
		if code != http.StatusOK {
			t.Fatalf("status = %d: %s", code, data)
		}
		if err := json.Unmarshal(data, &job); err != nil {
			t.Fatal(err)
		}
		if job.State == "done" {
			break
		}
		if job.State == "failed" || job.State == "canceled" {
			t.Fatalf("job ended %s: %s", job.State, data)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, data := get("/metrics"); !strings.Contains(string(data), "gpuschedd_sim_simulated_total 1") {
		t.Errorf("/metrics does not report the simulation:\n%s", data)
	}

	// Stop the daemon as the signal handler would and expect a clean exit.
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after shutdown")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("missing drain log; stdout: %s", out.String())
	}
}

func TestRunFlagAndListenErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-addr", "256.256.256.256:0"}, &out, &errb); code != 1 {
		t.Errorf("bad listen exit = %d, want 1", code)
	}
}
