// Command gpuschedd is the simulation daemon: a long-lived HTTP front
// door over the internal/sim service layer, so a fleet of clients can
// submit, watch, and cancel kernel-scheduling experiments concurrently
// instead of each running a one-shot CLI.
//
//	gpuschedd                        # serve on :8080, cache in results/.simcache
//	gpuschedd -addr :9090 -queue 256 # bigger admission queue
//	gpuschedd -cache off -ttl 5m     # stateless, short-lived results
//
// Submit a job and poll it:
//
//	curl -s localhost:8080/v1/jobs -d '{"workloads":["spmv"],"sched":"lcs","scale":"small"}'
//	curl -s localhost:8080/v1/jobs/job-1
//
// The daemon drains gracefully on SIGINT/SIGTERM: admission stops,
// in-flight jobs finish (up to -drain), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpusched/internal/fleet"
	"gpusched/internal/server"
	"gpusched/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run serves until ctx is canceled (the signal handler in main) or the
// listener fails. It is the testable core: the test harness drives it with
// its own context and buffers.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpuschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "job runner goroutines (0 = NumCPU)")
		simWorkers   = fs.Int("sim-workers", 0, "concurrent simulator executions (0 = NumCPU)")
		tickWorkers  = fs.Int("tick-workers", 0, "OS threads per simulation ticking the SMs (0 = GOMAXPROCS, 1 = serial; never changes results)")
		tickGranule  = fs.Uint64("tick-granule", 0, "min proven-quiet cycles before an SM is parked out of the tick loop (0 = built-in default; never changes results)")
		memShards    = fs.Int("mem-shards", 0, "memory-system partition shards ticked in parallel per cycle (0 = derive from tick-workers, 1 = serial; never changes results)")
		batchWindow  = fs.Uint64("batch-window", 0, "max cycles batched through one barrier when every SM provably sleeps (0 = built-in default, 1 = off; never changes results)")
		queue        = fs.Int("queue", 64, "admission queue depth (full queue = HTTP 429)")
		cacheDir     = fs.String("cache", "results/.simcache", "on-disk result cache directory ('off' = disabled)")
		cacheEntries = fs.Int("cache-entries", 0, "on-disk cache entry budget; oldest-mtime entries are evicted on store (0 = unbounded)")
		cacheBytes   = fs.Int64("cache-bytes", 0, "on-disk cache byte budget (0 = unbounded)")
		peers        = fs.String("peers", "", "comma-separated peer shard base URLs for fetch-before-simulate (fleet peer-cache protocol)")
		peerTimeout  = fs.Duration("peer-timeout", 2*time.Second, "per-peer deadline for one cache fetch")
		maxFlights   = fs.Int("max-flights", 4096, "in-memory result memo cap (0 = unbounded)")
		ttl          = fs.Duration("ttl", time.Hour, "how long finished jobs stay queryable")
		timeout      = fs.Duration("timeout", 0, "default per-job deadline (0 = none)")
		maxTimeout   = fs.Duration("max-timeout", 0, "cap on client-requested job deadlines (0 = uncapped)")
		syncTimeout  = fs.Duration("sync-timeout", 2*time.Minute, "deadline for POST /v1/simulate")
		drain        = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
		pprofAddr    = fs.String("pprof", "", "listen address for net/http/pprof (empty = disabled)")
		verbose      = fs.Bool("v", false, "log each completed simulation")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opt := sim.Options{
		Workers: *simWorkers, TickWorkers: *tickWorkers, TickGranule: *tickGranule,
		MemShards: *memShards, BatchWindow: *batchWindow,
		MaxFlights: *maxFlights, CacheEntries: *cacheEntries, CacheBytes: *cacheBytes,
	}
	if *cacheDir != "" && *cacheDir != "off" {
		opt.CacheDir = *cacheDir
	}
	if *peers != "" {
		var urls []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
				urls = append(urls, p)
			}
		}
		if len(urls) > 0 {
			opt.PeerFetch = fleet.NewPeerCache(urls, *peerTimeout).Fetch
		}
	}
	if *verbose {
		opt.Progress = stderr
	}
	svc := sim.NewService(opt)
	srv := server.New(svc, server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		ResultTTL:      *ttl,
		SyncTimeout:    *syncTimeout,
	})

	// The profiling endpoints live on their own listener so the public
	// job API never exposes them; net/http/pprof registers its handlers
	// on http.DefaultServeMux at import.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "gpuschedd: pprof: %v\n", err)
			return 1
		}
		defer pln.Close()
		go func() { _ = http.Serve(pln, nil) }()
		fmt.Fprintf(stdout, "gpuschedd pprof listening on %s\n", pln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "gpuschedd: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(stdout, "gpuschedd listening on %s (cache %q, queue %d)\n", ln.Addr(), opt.CacheDir, *queue)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "gpuschedd: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "gpuschedd: signal received, draining (up to %v)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job table, so no
	// new request races the closing admission queue.
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "gpuschedd: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "gpuschedd: drain incomplete: %v\n", err)
		return 1
	}
	st := svc.Stats()
	fmt.Fprintf(stdout, "gpuschedd: drained cleanly (%d simulated, %d memo hits, %d disk hits)\n",
		st.Simulated, st.MemoHits, st.DiskHits)
	return 0
}
