// Command loadgen drives a gpurouter (or a single gpuschedd shard) with a
// configurable mix of cached, uncached, and duplicate simulation requests
// and reports what the fleet did with them: p50/p90/p99 admission
// latency, fleet-wide dedup hit rate, and per-shard balance.
//
//	loadgen -target http://127.0.0.1:8070 -requests 200 -unique 32 -concurrency 16
//	loadgen -mode batch -batch 32 -min-dedup 0.3   # gate for CI smokes
//
// The request pool holds -unique distinct cache keys (the per-key
// max_cycles override varies the key without changing the simulated
// work); each of the -requests draws uniformly from the pool via a seeded
// PRNG, so duplicates arrive interleaved across connections — exactly the
// traffic that must coalesce fleet-wide. Dedup is measured as the delta
// of the fleet's sim counters between start and finish, so a warm daemon
// doesn't inflate the rate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"gpusched/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// simCounters is the subset of sim.Stats the dedup measurement needs,
// decoded from /v1/fleet/stats (router) or /v1/stats (bare shard).
type simCounters struct {
	Simulated int `json:"Simulated"`
	MemoHits  int `json:"MemoHits"`
	DiskHits  int `json:"DiskHits"`
	PeerHits  int `json:"PeerHits"`
}

func (c simCounters) sub(o simCounters) simCounters {
	return simCounters{
		Simulated: c.Simulated - o.Simulated,
		MemoHits:  c.MemoHits - o.MemoHits,
		DiskHits:  c.DiskHits - o.DiskHits,
		PeerHits:  c.PeerHits - o.PeerHits,
	}
}

func (c simCounters) hits() int { return c.MemoHits + c.DiskHits + c.PeerHits }

// dedupRate is hits / (hits + simulations): the fraction of requests the
// fleet answered without paying for a simulation.
func (c simCounters) dedupRate() float64 {
	total := c.hits() + c.Simulated
	if total == 0 {
		return 0
	}
	return float64(c.hits()) / float64(total)
}

// fetchCounters reads the target's aggregated sim counters; it tries the
// router's fleet endpoint first and falls back to a shard's /v1/stats.
func fetchCounters(client *http.Client, target string) (simCounters, error) {
	resp, err := client.Get(target + "/v1/fleet/stats")
	if err == nil && resp.StatusCode == http.StatusOK {
		defer resp.Body.Close()
		var payload struct {
			Fleet struct {
				Sim simCounters `json:"sim"`
			} `json:"fleet"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			return simCounters{}, err
		}
		return payload.Fleet.Sim, nil
	}
	if err == nil {
		resp.Body.Close()
	}
	resp, err = client.Get(target + "/v1/stats")
	if err != nil {
		return simCounters{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return simCounters{}, fmt.Errorf("stats endpoint: %s", resp.Status)
	}
	var payload struct {
		Sim simCounters `json:"sim"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return simCounters{}, err
	}
	return payload.Sim, nil
}

// result is one completed request as the client saw it.
type result struct {
	latency time.Duration
	status  int
	shard   string
	err     error
}

// percentile returns the p-th percentile (0..100) of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target      = fs.String("target", "http://127.0.0.1:8070", "router (or shard) base URL")
		requests    = fs.Int("requests", 200, "total requests to send")
		unique      = fs.Int("unique", 32, "distinct cache keys in the pool (requests > unique means duplicates)")
		concurrency = fs.Int("concurrency", 16, "concurrent client connections")
		mode        = fs.String("mode", "simulate", "driver: 'simulate' (POST /v1/simulate per request) or 'batch' (POST /v1/jobs:batch)")
		batchSize   = fs.Int("batch", 32, "items per batch in -mode batch")
		workloadsCS = fs.String("workloads", "vadd", "comma-separated workload names rotated through the pool")
		scale       = fs.String("scale", "tiny", "problem scale for every request")
		cores       = fs.Int("cores", 4, "simulated SM count for every request")
		timeout     = fs.Duration("timeout", 2*time.Minute, "per-request client deadline")
		seed        = fs.Int64("seed", 1, "PRNG seed for the request schedule")
		minDedup    = fs.Float64("min-dedup", -1, "exit nonzero unless the fleet dedup hit rate reaches this (-1 = no gate)")
		jsonOut     = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *requests <= 0 || *unique <= 0 || *concurrency <= 0 || *batchSize <= 0 {
		fmt.Fprintln(stderr, "loadgen: -requests, -unique, -concurrency, -batch must be positive")
		return 2
	}
	names := strings.Split(*workloadsCS, ",")

	// The pool: -unique requests with distinct canonical keys. Varying the
	// max_cycles override flips the key without changing the simulated
	// work (tiny kernels finish far below any of these bounds).
	pool := make([][]byte, *unique)
	keys := make([]string, *unique)
	for i := range pool {
		req := sim.Request{
			Workloads: []string{strings.TrimSpace(names[i%len(names)])},
			Cores:     *cores,
			MaxCycles: 20_000_000 + uint64(i),
		}
		if *scale != "" {
			sc, err := sim.ParseScale(*scale)
			if err != nil {
				fmt.Fprintf(stderr, "loadgen: %v\n", err)
				return 2
			}
			req.Scale = sc
		}
		body, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 2
		}
		pool[i] = body
		keys[i] = req.Key()
	}
	rng := rand.New(rand.NewSource(*seed))
	schedule := make([]int, *requests)
	for i := range schedule {
		schedule[i] = rng.Intn(*unique)
	}

	client := &http.Client{Timeout: *timeout}
	before, err := fetchCounters(client, *target)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: reading baseline stats from %s: %v\n", *target, err)
		return 1
	}

	results := make([]result, *requests)
	start := time.Now()
	switch *mode {
	case "simulate":
		runSimulate(client, *target, pool, schedule, *concurrency, results)
	case "batch":
		runBatch(client, *target, pool, schedule, *batchSize, *concurrency, results)
	default:
		fmt.Fprintf(stderr, "loadgen: unknown -mode %q\n", *mode)
		return 2
	}
	wall := time.Since(start)

	after, err := fetchCounters(client, *target)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: reading final stats: %v\n", err)
		return 1
	}
	delta := after.sub(before)

	// Digest the per-request results.
	var lats []time.Duration
	errors := 0
	byShard := map[string]int{}
	for _, r := range results {
		if r.err != nil || r.status < 200 || r.status >= 300 {
			errors++
			continue
		}
		lats = append(lats, r.latency)
		if r.shard != "" {
			byShard[r.shard]++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	shardNames := make([]string, 0, len(byShard))
	for name := range byShard {
		shardNames = append(shardNames, name)
	}
	sort.Strings(shardNames)

	report := map[string]any{
		"target":         *target,
		"mode":           *mode,
		"requests":       *requests,
		"unique_keys":    *unique,
		"concurrency":    *concurrency,
		"errors":         errors,
		"wall_seconds":   wall.Seconds(),
		"throughput_rps": float64(*requests) / wall.Seconds(),
		"latency_ms": map[string]float64{
			"p50": percentile(lats, 50).Seconds() * 1000,
			"p90": percentile(lats, 90).Seconds() * 1000,
			"p99": percentile(lats, 99).Seconds() * 1000,
		},
		"fleet_delta": map[string]any{
			"simulated":      delta.Simulated,
			"memo_hits":      delta.MemoHits,
			"disk_hits":      delta.DiskHits,
			"peer_hits":      delta.PeerHits,
			"dedup_hit_rate": delta.dedupRate(),
		},
	}
	balance := map[string]int{}
	for _, name := range shardNames {
		balance[name] = byShard[name]
	}
	report["shard_balance"] = balance

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(report) //nolint:errcheck // report output
	} else {
		fmt.Fprintf(stdout, "loadgen: %d requests (%d unique keys) against %s in %.2fs (%.1f req/s), %d errors\n",
			*requests, *unique, *target, wall.Seconds(), float64(*requests)/wall.Seconds(), errors)
		fmt.Fprintf(stdout, "  admission latency: p50 %.1fms  p90 %.1fms  p99 %.1fms\n",
			percentile(lats, 50).Seconds()*1000, percentile(lats, 90).Seconds()*1000, percentile(lats, 99).Seconds()*1000)
		fmt.Fprintf(stdout, "  fleet dedup: %d simulated, %d memo + %d disk + %d peer hits -> hit rate %.3f\n",
			delta.Simulated, delta.MemoHits, delta.DiskHits, delta.PeerHits, delta.dedupRate())
		for _, name := range shardNames {
			fmt.Fprintf(stdout, "  shard %-8s %5d requests (%.1f%%)\n", name, byShard[name],
				100*float64(byShard[name])/float64(len(lats)))
		}
	}

	if errors > 0 {
		fmt.Fprintf(stderr, "loadgen: %d/%d requests failed\n", errors, *requests)
		return 1
	}
	if *minDedup >= 0 && delta.dedupRate() < *minDedup {
		fmt.Fprintf(stderr, "loadgen: fleet dedup hit rate %.3f below required %.3f\n", delta.dedupRate(), *minDedup)
		return 1
	}
	return 0
}

// runSimulate drives POST /v1/simulate, one request per schedule entry,
// across `concurrency` workers. Latency is the full round trip — for a
// deduplicated or cached request that IS the admission latency the fleet
// delivers.
func runSimulate(client *http.Client, target string, pool [][]byte, schedule []int, concurrency int, results []result) {
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				body := pool[schedule[i]]
				t0 := time.Now()
				resp, err := client.Post(target+"/v1/simulate", "application/json", bytes.NewReader(body))
				if err != nil {
					results[i] = result{err: err, latency: time.Since(t0)}
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
				resp.Body.Close()
				results[i] = result{
					latency: time.Since(t0),
					status:  resp.StatusCode,
					shard:   resp.Header.Get("X-Fleet-Shard"),
				}
			}
		}()
	}
	for i := range schedule {
		work <- i
	}
	close(work)
	wg.Wait()
}

// runBatch drives POST /v1/jobs:batch with batchSize items per call,
// `concurrency` batches in flight. Per-item latency is the time from
// batch submission to that item's completion line arriving — the
// streaming contract makes cached items cheap even in mixed batches.
func runBatch(client *http.Client, target string, pool [][]byte, schedule []int, batchSize, concurrency int, results []result) {
	type batchJob struct {
		start int // offset into schedule/results
		n     int
	}
	var wg sync.WaitGroup
	work := make(chan batchJob)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range work {
				items := make([]json.RawMessage, job.n)
				for i := 0; i < job.n; i++ {
					items[i] = pool[schedule[job.start+i]]
				}
				body, _ := json.Marshal(map[string]any{"items": items})
				t0 := time.Now()
				resp, err := client.Post(target+"/v1/jobs:batch", "application/json", bytes.NewReader(body))
				if err != nil {
					for i := 0; i < job.n; i++ {
						results[job.start+i] = result{err: err, latency: time.Since(t0)}
					}
					continue
				}
				if resp.StatusCode != http.StatusOK {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
					resp.Body.Close()
					for i := 0; i < job.n; i++ {
						results[job.start+i] = result{status: resp.StatusCode, latency: time.Since(t0)}
					}
					continue
				}
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 64*1024), 1<<20)
				for sc.Scan() {
					line := bytes.TrimSpace(sc.Bytes())
					if len(line) == 0 {
						continue
					}
					var item struct {
						Index int             `json:"index"`
						Shard string          `json:"shard"`
						Error json.RawMessage `json:"error"`
					}
					if json.Unmarshal(line, &item) != nil || item.Index < 0 || item.Index >= job.n {
						continue
					}
					status := http.StatusOK
					if len(item.Error) > 0 && string(item.Error) != "null" {
						status = http.StatusInternalServerError
					}
					results[job.start+item.Index] = result{latency: time.Since(t0), status: status, shard: item.Shard}
				}
				resp.Body.Close()
				for i := 0; i < job.n; i++ {
					if results[job.start+i].status == 0 && results[job.start+i].err == nil {
						results[job.start+i] = result{err: fmt.Errorf("batch stream ended early"), latency: time.Since(t0)}
					}
				}
			}
		}()
	}
	for start := 0; start < len(schedule); start += batchSize {
		n := batchSize
		if start+n > len(schedule) {
			n = len(schedule) - start
		}
		work <- batchJob{start: start, n: n}
	}
	close(work)
	wg.Wait()
}
