package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpusched/internal/fleet"
	"gpusched/internal/server"
	"gpusched/internal/sim"
)

func TestPercentile(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sorted := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(100)}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, ms(1)},
		{50, ms(3)},
		{99, ms(4)},
		{100, ms(100)},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("percentile(p=%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile of empty = %v, want 0", got)
	}
}

func TestSimCountersDedupRate(t *testing.T) {
	c := simCounters{Simulated: 2, MemoHits: 4, DiskHits: 1, PeerHits: 1}
	if got := c.dedupRate(); got != 0.75 {
		t.Errorf("dedupRate = %v, want 0.75", got)
	}
	if got := (simCounters{}).dedupRate(); got != 0 {
		t.Errorf("empty dedupRate = %v, want 0", got)
	}
	d := c.sub(simCounters{Simulated: 1, MemoHits: 2})
	if d.Simulated != 1 || d.MemoHits != 2 || d.hits() != 4 {
		t.Errorf("sub = %+v", d)
	}
}

// newLoadgenFleet boots a real 2-shard fleet behind a router, all over
// httptest, and returns the router's base URL.
func newLoadgenFleet(t *testing.T) string {
	t.Helper()
	var members []*fleet.Shard
	for _, name := range []string{"s0", "s1"} {
		svc := sim.NewService(sim.Options{CacheDir: t.TempDir()})
		ts := httptest.NewServer(server.New(svc, server.Config{}).Handler())
		t.Cleanup(ts.Close)
		members = append(members, &fleet.Shard{Name: name, URL: ts.URL})
	}
	router := fleet.NewRouter(members, fleet.Config{})
	front := httptest.NewServer(router.Handler())
	t.Cleanup(front.Close)
	return front.URL
}

// TestLoadgenAgainstFleet: the full harness path — loadgen drives a
// 2-shard fleet in both modes, sees zero errors, and measures the dedup
// the duplicate schedule guarantees (24 requests over 4 keys).
func TestLoadgenAgainstFleet(t *testing.T) {
	for _, mode := range []string{"simulate", "batch"} {
		t.Run(mode, func(t *testing.T) {
			target := newLoadgenFleet(t)
			var stdout, stderr bytes.Buffer
			code := run([]string{
				"-target", target,
				"-mode", mode,
				"-requests", "24",
				"-unique", "4",
				"-concurrency", "4",
				"-batch", "6",
				"-scale", "test",
				"-min-dedup", "0.5",
				"-json",
			}, &stdout, &stderr)
			if code != 0 {
				t.Fatalf("loadgen exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
			}
			var report struct {
				Errors     int `json:"errors"`
				FleetDelta struct {
					Simulated    int     `json:"simulated"`
					DedupHitRate float64 `json:"dedup_hit_rate"`
				} `json:"fleet_delta"`
				Latency map[string]float64 `json:"latency_ms"`
				Balance map[string]int     `json:"shard_balance"`
			}
			if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
				t.Fatalf("decoding report: %v\n%s", err, stdout.String())
			}
			if report.Errors != 0 {
				t.Errorf("report counts %d errors", report.Errors)
			}
			// 4 unique keys: everything past the first hit of each key is a
			// cache hit somewhere in the fleet.
			if report.FleetDelta.Simulated != 4 {
				t.Errorf("fleet simulated %d, want 4 (one per unique key)", report.FleetDelta.Simulated)
			}
			if rate := report.FleetDelta.DedupHitRate; rate < 0.5 {
				t.Errorf("dedup_hit_rate = %v, want >= 0.5", rate)
			}
			if _, ok := report.Latency["p99"]; !ok {
				t.Error("report has no p99 latency")
			}
			total := 0
			for _, n := range report.Balance {
				total += n
			}
			if total != 24 {
				t.Errorf("shard balance accounts for %d requests, want 24 (%v)", total, report.Balance)
			}
		})
	}
}

func TestLoadgenFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-requests", "0"}, &stdout, &stderr); code != 2 {
		t.Errorf("zero requests: exit %d, want 2", code)
	}
	if code := run([]string{"-mode", "nope", "-target", "http://127.0.0.1:0"}, &stdout, &stderr); code == 0 {
		t.Error("unknown mode should not exit 0")
	}
	if code := run([]string{"-scale", "galactic"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad scale: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "scale") {
		t.Errorf("stderr %q does not mention the bad scale", stderr.String())
	}
}
