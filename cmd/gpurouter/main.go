// Command gpurouter is the fleet front door: it consistent-hashes
// incoming simulation requests by their canonical cache key onto N
// gpuschedd shards, so singleflight dedup and the on-disk result cache
// act fleet-wide — duplicate requests from any number of clients simulate
// exactly once, on one shard.
//
//	gpurouter -shards http://10.0.0.1:8080,http://10.0.0.2:8080
//	gpurouter -shards s-east=http://a:8080,s-west=http://b:8080 -probe-interval 500ms
//
// Shards are probed on /readyz; a shard that fails -fail-after probes in
// a row is marked down and its keys rehash onto the survivors. Forwards
// retry with linear backoff onto fallback shards on transport errors and
// 502/503/504. Job ids come back fleet-scoped ("s0/job-7") so status,
// cancel, and event-stream requests route back to the owning shard.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpusched/internal/fleet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// parseShards turns the -shards flag into the ring membership. Entries
// are "url" (named s0, s1, ... by position) or "name=url". Names feed the
// rendezvous hash, so naming shards explicitly keeps placement stable
// when the fleet's URL list is reordered or a shard changes address.
func parseShards(spec string) ([]*fleet.Shard, error) {
	var shards []*fleet.Shard
	seen := map[string]bool{}
	for i, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, url, found := strings.Cut(entry, "=")
		if !found {
			name, url = fmt.Sprintf("s%d", i), entry
		}
		url = strings.TrimRight(strings.TrimSpace(url), "/")
		name = strings.TrimSpace(name)
		if name == "" || strings.Contains(name, "/") {
			return nil, fmt.Errorf("bad shard name %q (must be nonempty, no '/')", name)
		}
		if url == "" || !strings.Contains(url, "://") {
			return nil, fmt.Errorf("bad shard URL %q (want http://host:port)", url)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate shard name %q", name)
		}
		seen[name] = true
		shards = append(shards, &fleet.Shard{Name: name, URL: url})
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("no shards configured (-shards)")
	}
	return shards, nil
}

// run serves until ctx is canceled; it is the testable core.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpurouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", ":8070", "listen address")
		shardsSpec    = fs.String("shards", "", "comma-separated shard base URLs, each 'url' or 'name=url' (required)")
		probeInterval = fs.Duration("probe-interval", time.Second, "shard health probe period")
		probeTimeout  = fs.Duration("probe-timeout", 0, "per-probe deadline (0 = half the interval)")
		failAfter     = fs.Int("fail-after", 2, "consecutive probe/forward failures before a shard is marked down")
		retries       = fs.Int("retries", 2, "fallback shards tried after the owner fails")
		backoff       = fs.Duration("backoff", 50*time.Millisecond, "base retry backoff (attempt k waits k*backoff)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	shards, err := parseShards(*shardsSpec)
	if err != nil {
		fmt.Fprintf(stderr, "gpurouter: %v\n", err)
		return 2
	}

	router := fleet.NewRouter(shards, fleet.Config{
		Retries:       *retries,
		Backoff:       *backoff,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailAfter:     *failAfter,
		OnHealthChange: func(s *fleet.Shard, up bool) {
			if up {
				fmt.Fprintf(stdout, "gpurouter: shard %s (%s) recovered\n", s.Name, s.URL)
			} else {
				fmt.Fprintf(stderr, "gpurouter: shard %s (%s) marked down: %s\n", s.Name, s.URL, s.LastError())
			}
		},
	})
	router.Start()
	defer router.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "gpurouter: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: router.Handler(), ReadHeaderTimeout: 10 * time.Second}
	names := make([]string, len(shards))
	for i, s := range shards {
		names[i] = s.Name
	}
	fmt.Fprintf(stdout, "gpurouter listening on %s (%d shards: %s)\n", ln.Addr(), len(shards), strings.Join(names, ","))

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "gpurouter: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	fmt.Fprintf(stdout, "gpurouter: signal received, shutting down\n")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "gpurouter: http shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "gpurouter: stopped\n")
	return 0
}
