package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpusched/internal/server"
	"gpusched/internal/sim"
)

func TestParseShards(t *testing.T) {
	cases := []struct {
		spec      string
		wantNames []string
		wantErr   string
	}{
		{"http://a:8080,http://b:8080", []string{"s0", "s1"}, ""},
		{"east=http://a:8080, west=http://b:8080/", []string{"east", "west"}, ""},
		{"http://a:8080, ,http://b:8080", []string{"s0", "s2"}, ""},
		{"", nil, "no shards"},
		{"   ,  ", nil, "no shards"},
		{"a:8080", nil, "bad shard URL"},
		{"east=", nil, "bad shard URL"},
		{"=http://a:8080", nil, "bad shard name"},
		{"e/w=http://a:8080", nil, "bad shard name"},
		{"east=http://a:8080,east=http://b:8080", nil, "duplicate shard name"},
	}
	for _, tc := range cases {
		shards, err := parseShards(tc.spec)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseShards(%q) err = %v, want mention of %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseShards(%q): %v", tc.spec, err)
			continue
		}
		var names []string
		for _, s := range shards {
			names = append(names, s.Name)
			if strings.HasSuffix(s.URL, "/") {
				t.Errorf("parseShards(%q): URL %q keeps its trailing slash", tc.spec, s.URL)
			}
		}
		if fmt.Sprint(names) != fmt.Sprint(tc.wantNames) {
			t.Errorf("parseShards(%q) names = %v, want %v", tc.spec, names, tc.wantNames)
		}
	}
}

// syncBuf is a goroutine-safe buffer for capturing daemon output.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRouterDaemonEndToEnd boots two real shard handlers and the router
// daemon on an ephemeral port, sends a duplicate pair of requests
// through it, and watches the fleet stats report the dedup.
func TestRouterDaemonEndToEnd(t *testing.T) {
	shardA := httptest.NewServer(server.New(sim.NewService(sim.Options{}), server.Config{}).Handler())
	defer shardA.Close()
	shardB := httptest.NewServer(server.New(sim.NewService(sim.Options{}), server.Config{}).Handler())
	defer shardB.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuf
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-shards", "a=" + shardA.URL + ",b=" + shardB.URL,
			"-probe-interval", "50ms",
		}, &stdout, &stderr)
	}()

	var base string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		out := stdout.String()
		if _, after, ok := strings.Cut(out, "listening on "); ok {
			base = "http://" + strings.Fields(after)[0]
			break
		}
	}
	if base == "" {
		t.Fatalf("router never came up\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
	}

	body := `{"workloads":["vadd"],"scale":"test","cores":4}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %d: %s", i, resp.Status)
		}
	}
	sr, err := http.Get(base + "/v1/fleet/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Fleet struct {
			ShardsHealthy int       `json:"shards_healthy"`
			DedupHitRate  float64   `json:"dedup_hit_rate"`
			Sim           sim.Stats `json:"sim"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if stats.Fleet.Sim.Simulated != 1 || stats.Fleet.Sim.MemoHits != 1 {
		t.Errorf("fleet sim counters = %+v, want 1 simulated + 1 memo hit", stats.Fleet.Sim)
	}
	if stats.Fleet.DedupHitRate != 0.5 {
		t.Errorf("dedup_hit_rate = %v, want 0.5", stats.Fleet.DedupHitRate)
	}
	if stats.Fleet.ShardsHealthy != 2 {
		t.Errorf("shards_healthy = %d, want 2", stats.Fleet.ShardsHealthy)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("router exited %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("router did not shut down")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr syncBuf
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{}, &stdout, &stderr); code != 2 {
		t.Errorf("missing -shards: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "no shards") {
		t.Errorf("stderr %q does not explain the missing -shards", stderr.String())
	}
}
