package main

import (
	"strings"
	"testing"

	"gpusched"
)

// TestParseSched pins the scheduler spellings the CLI accepts — the parser
// now lives in the public API (backed by internal/sim's registry), so this
// is a contract test that the flag surface did not drift.
func TestParseSched(t *testing.T) {
	ok := []struct {
		in   string
		name string
	}{
		{"baseline", "baseline"},
		{"lcs", "lcs"},
		{"adaptive", "lcs-adaptive"},
		{"bcs", "bcs"},
		{"bcs:4", "bcs"},
		{"static:3", "static-3"},
		{"sequential", "sequential"},
	}
	for _, c := range ok {
		s, err := gpusched.ParseScheduler(c.in)
		if err != nil {
			t.Errorf("ParseScheduler(%q): %v", c.in, err)
			continue
		}
		if s.Name() != c.name {
			t.Errorf("ParseScheduler(%q).Name() = %q, want %q", c.in, s.Name(), c.name)
		}
	}
	for _, bad := range []string{"", "nope", "static", "static:x", "bcs:y"} {
		if _, err := gpusched.ParseScheduler(bad); err == nil {
			t.Errorf("ParseScheduler(%q) accepted", bad)
		}
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errb.String())
	}
	for _, want := range []string{"name", "vadd", "spmv"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-workload", "no-such"},
		{"-sched", "nope"},
		{"-warp", "nope"},
		{"-size", "nope"},
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", args, code, errb.String())
		}
	}
}

func TestRunTinyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	var out, errb strings.Builder
	if code := run([]string{"-workload", "vadd", "-size", "tiny", "-cores", "4"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	for _, want := range []string{"workload", "cycles", "IPC"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q in:\n%s", want, out.String())
		}
	}
}
