package main

import "testing"

func TestParseSched(t *testing.T) {
	ok := []struct {
		in   string
		name string
	}{
		{"baseline", "baseline"},
		{"lcs", "lcs"},
		{"adaptive", "lcs-adaptive"},
		{"bcs", "bcs"},
		{"bcs:4", "bcs"},
		{"static:3", "static-3"},
		{"sequential", "sequential"},
	}
	for _, c := range ok {
		s, err := parseSched(c.in)
		if err != nil {
			t.Errorf("parseSched(%q): %v", c.in, err)
			continue
		}
		if s.Name() != c.name {
			t.Errorf("parseSched(%q).Name() = %q, want %q", c.in, s.Name(), c.name)
		}
	}
	for _, bad := range []string{"", "nope", "static", "static:x", "bcs:y"} {
		if _, err := parseSched(bad); err == nil {
			t.Errorf("parseSched(%q) accepted", bad)
		}
	}
}
