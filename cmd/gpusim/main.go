// Command gpusim runs one workload under one scheduling configuration and
// prints the full statistics record — the single-run driver for exploring
// the simulator.
//
//	gpusim -workload spmv -sched lcs
//	gpusim -workload stencil -sched bcs -warp baws -size full
//	gpusim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpusched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpusim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "vadd", "workload name (see -list)")
		schedStr = fs.String("sched", "baseline", "CTA scheduler: "+gpusched.SchedulerFlagHelp)
		warpStr  = fs.String("warp", "gto", "warp scheduler: lrr | gto | baws")
		sizeStr  = fs.String("size", "small", "problem size: tiny | small | full")
		cores    = fs.Int("cores", 15, "SM count")
		workers  = fs.Int("workers", 0, "OS threads ticking the SMs each cycle (0 = GOMAXPROCS, 1 = serial; never changes results)")
		shards   = fs.Int("mem-shards", 0, "memory partition shards ticked in parallel per cycle (0 = derive from -workers, 1 = serial; never changes results)")
		window   = fs.Uint64("batch-window", 0, "max cycles batched through one barrier when every SM provably sleeps (0 = built-in default, 1 = off; never changes results)")
		list     = fs.Bool("list", false, "list workloads and exit")
		traceOut = fs.String("trace", "", "write a per-epoch timeline CSV to this file")
		epoch    = fs.Uint64("epoch", 1024, "trace sampling period in cycles")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintf(stdout, "%-14s %-8s %-10s %s\n", "name", "class", "inter-CTA", "modeled on")
		for _, w := range gpusched.Workloads() {
			loc := ""
			if w.InterCTALocality {
				loc = "yes"
			}
			fmt.Fprintf(stdout, "%-14s %-8s %-10s %s\n", w.Name, w.Class, loc, w.ModeledOn)
		}
		return 0
	}

	w, ok := gpusched.WorkloadByName(*workload)
	if !ok {
		fmt.Fprintf(stderr, "unknown workload %q (use -list)\n", *workload)
		return 2
	}
	size, err := gpusched.ParseSize(*sizeStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cfg := gpusched.DefaultConfig()
	cfg.Cores = *cores
	cfg.Workers = *workers
	cfg.MemShards = *shards
	cfg.BatchWindow = *window
	cfg.WarpPolicy, err = gpusched.ParseWarpPolicy(*warpStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	sched, err := gpusched.ParseScheduler(*schedStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var res gpusched.Result
	if *traceOut != "" {
		var tl *gpusched.Timeline
		res, tl, err = gpusched.RunTraced(cfg, sched, *epoch, w.Kernel(size))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fmt.Fprintln(stderr, ferr)
			return 1
		}
		if err := tl.WriteCSV(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		f.Close()
		fmt.Fprintf(stdout, "timeline        %d samples -> %s (peak IPC %.2f, mean resident CTAs %.1f)\n",
			len(tl.Samples), *traceOut, tl.PeakIPC(), tl.MeanResident())
	} else {
		res, err = gpusched.Run(cfg, sched, w.Kernel(size))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	k := w.Kernel(size)
	fmt.Fprintf(stdout, "workload        %s (%s), %d CTAs x %d threads\n", w.Name, w.ModeledOn, k.CTAs(), k.ThreadsPerCTA())
	fmt.Fprintf(stdout, "scheduler       %s CTA dispatch, %s warps, %d SMs\n", sched.Name(), *warpStr, *cores)
	fmt.Fprintf(stdout, "cycles          %d (timed out: %v)\n", res.Cycles, res.TimedOut)
	fmt.Fprintf(stdout, "instructions    %d warp (%d thread), IPC %.3f\n", res.InstrIssued, res.ThreadInstr, res.IPC)
	fmt.Fprintf(stdout, "L1              %.1f%% hit, %.1f%% merged into in-flight fills\n", res.L1HitRate*100, res.L1MergeRate*100)
	fmt.Fprintf(stdout, "L2              %.1f%% hit\n", res.L2HitRate*100)
	fmt.Fprintf(stdout, "DRAM            %d reads, %d writes, %.1f%% row hits, %.0f-cycle avg queue\n",
		res.DRAMReads, res.DRAMWrites, res.DRAMRowHitRate*100, res.AvgDRAMQueue)
	fmt.Fprintf(stdout, "load latency    %.0f cycles avg\n", res.AvgMemLatency)
	if res.CTALimits != nil {
		fmt.Fprintf(stdout, "LCS limits      %v\n", res.CTALimits)
	}
	return 0
}
