// Command gpusim runs one workload under one scheduling configuration and
// prints the full statistics record — the single-run driver for exploring
// the simulator.
//
//	gpusim -workload spmv -sched lcs
//	gpusim -workload stencil -sched bcs -warp baws -size full
//	gpusim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpusched"
)

func main() {
	var (
		workload = flag.String("workload", "vadd", "workload name (see -list)")
		schedStr = flag.String("sched", "baseline", "CTA scheduler: baseline | lcs | adaptive | bcs[:N] | static:N | sequential")
		warpStr  = flag.String("warp", "gto", "warp scheduler: lrr | gto | baws")
		sizeStr  = flag.String("size", "small", "problem size: tiny | small | full")
		cores    = flag.Int("cores", 15, "SM count")
		list     = flag.Bool("list", false, "list workloads and exit")
		traceOut = flag.String("trace", "", "write a per-epoch timeline CSV to this file")
		epoch    = flag.Uint64("epoch", 1024, "trace sampling period in cycles")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %-8s %-10s %s\n", "name", "class", "inter-CTA", "modeled on")
		for _, w := range gpusched.Workloads() {
			loc := ""
			if w.InterCTALocality {
				loc = "yes"
			}
			fmt.Printf("%-14s %-8s %-10s %s\n", w.Name, w.Class, loc, w.ModeledOn)
		}
		return
	}

	w, ok := gpusched.WorkloadByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *workload)
		os.Exit(2)
	}

	var size gpusched.Size
	switch *sizeStr {
	case "tiny":
		size = gpusched.SizeTiny
	case "small":
		size = gpusched.SizeSmall
	case "full":
		size = gpusched.SizeFull
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *sizeStr)
		os.Exit(2)
	}

	cfg := gpusched.DefaultConfig()
	cfg.Cores = *cores
	switch *warpStr {
	case "lrr":
		cfg.WarpPolicy = gpusched.WarpLRR
	case "gto":
		cfg.WarpPolicy = gpusched.WarpGTO
	case "baws":
		cfg.WarpPolicy = gpusched.WarpBAWS
	default:
		fmt.Fprintf(os.Stderr, "unknown warp policy %q\n", *warpStr)
		os.Exit(2)
	}

	sched, err := parseSched(*schedStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var res gpusched.Result
	if *traceOut != "" {
		var tl *gpusched.Timeline
		res, tl, err = gpusched.RunTraced(cfg, sched, *epoch, w.Kernel(size))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		if err := tl.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("timeline        %d samples -> %s (peak IPC %.2f, mean resident CTAs %.1f)\n",
			len(tl.Samples), *traceOut, tl.PeakIPC(), tl.MeanResident())
	} else {
		res, err = gpusched.Run(cfg, sched, w.Kernel(size))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	k := w.Kernel(size)
	fmt.Printf("workload        %s (%s), %d CTAs x %d threads\n", w.Name, w.ModeledOn, k.CTAs(), k.ThreadsPerCTA())
	fmt.Printf("scheduler       %s CTA dispatch, %s warps, %d SMs\n", sched.Name(), *warpStr, *cores)
	fmt.Printf("cycles          %d (timed out: %v)\n", res.Cycles, res.TimedOut)
	fmt.Printf("instructions    %d warp (%d thread), IPC %.3f\n", res.InstrIssued, res.ThreadInstr, res.IPC)
	fmt.Printf("L1              %.1f%% hit, %.1f%% merged into in-flight fills\n", res.L1HitRate*100, res.L1MergeRate*100)
	fmt.Printf("L2              %.1f%% hit\n", res.L2HitRate*100)
	fmt.Printf("DRAM            %d reads, %d writes, %.1f%% row hits, %.0f-cycle avg queue\n",
		res.DRAMReads, res.DRAMWrites, res.DRAMRowHitRate*100, res.AvgDRAMQueue)
	fmt.Printf("load latency    %.0f cycles avg\n", res.AvgMemLatency)
	if res.CTALimits != nil {
		fmt.Printf("LCS limits      %v\n", res.CTALimits)
	}
}

func parseSched(s string) (gpusched.Scheduler, error) {
	name, argStr, hasArg := strings.Cut(s, ":")
	arg := 0
	if hasArg {
		v, err := strconv.Atoi(argStr)
		if err != nil {
			return gpusched.Scheduler{}, fmt.Errorf("bad scheduler argument %q", argStr)
		}
		arg = v
	}
	switch name {
	case "baseline":
		return gpusched.Baseline(), nil
	case "lcs":
		return gpusched.LCS(), nil
	case "adaptive":
		return gpusched.AdaptiveLCS(), nil
	case "bcs":
		if arg == 0 {
			arg = 2
		}
		return gpusched.BCS(arg), nil
	case "static":
		if !hasArg {
			return gpusched.Scheduler{}, fmt.Errorf("static needs a limit, e.g. static:3")
		}
		return gpusched.StaticLimit(arg), nil
	case "sequential":
		return gpusched.Sequential(), nil
	default:
		return gpusched.Scheduler{}, fmt.Errorf("unknown scheduler %q", name)
	}
}
