package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
BenchmarkSimulatorThroughput/stall-heavy-8         	      20	   4000000 ns/op	  14000000 simcycles/s
BenchmarkSimulatorThroughput/stall-heavy-8         	      20	   2000000 ns/op	  10000000 simcycles/s
BenchmarkFig5LCS-8                                 	       1	 900000000 ns/op	     1.15 geomean-speedup	  360338 B/op	    3151 allocs/op
BenchmarkParallelTick/stall-heavy/workers=8-8      	      20	   5000000 ns/op	   9000000 simcycles/s
PASS
ok  	gpusched	1.234s
`

func TestParse(t *testing.T) {
	rec, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	th, ok := rec.Benchmarks["SimulatorThroughput/stall-heavy"]
	if !ok {
		t.Fatalf("missing throughput benchmark: %v", rec.Benchmarks)
	}
	if th["ns/op"] != 3000000 || th["simcycles/s"] != 12000000 {
		t.Errorf("repeated runs not averaged: %v", th)
	}
	fig5 := rec.Benchmarks["Fig5LCS"]
	if fig5["geomean-speedup"] != 1.15 || fig5["allocs/op"] != 3151 {
		t.Errorf("custom/benchmem metrics wrong: %v", fig5)
	}
}

func TestEmitRecordsHost(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := run(path, false, nil, nil, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	rec, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Host == nil || rec.Host.NumCPU <= 0 || rec.Host.GOMAXPROCS <= 0 {
		t.Errorf("host info not recorded: %+v", rec.Host)
	}
}

func TestRoundTripAndCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := run(oldPath, false, nil, nil, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	faster := strings.ReplaceAll(sample, "4000000 ns/op", "1000000 ns/op")
	faster = strings.ReplaceAll(faster, "2000000 ns/op", "1000000 ns/op")
	if err := run(newPath, false, nil, nil, strings.NewReader(faster), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run("", true, nil, []string{oldPath, newPath}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SimulatorThroughput/stall-heavy") || !strings.Contains(out, "-66.67%") {
		t.Errorf("comparison missing expected delta:\n%s", out)
	}
	// Same host on both sides: the worker-scaling row must be compared.
	if !strings.Contains(out, "ParallelTick") {
		t.Errorf("same-host compare dropped worker-scaling row:\n%s", out)
	}
}

// rewriteHostCPUs loads a record, overrides its host CPU count, and writes
// it back — simulating a baseline captured on a different machine.
func rewriteHostCPUs(t *testing.T, path string, cpus int) {
	t.Helper()
	rec, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	rec.Host.NumCPU = cpus
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareSkipsWorkerScalingAcrossHosts(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := run(oldPath, false, nil, nil, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	if err := run(newPath, false, nil, nil, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	rewriteHostCPUs(t, oldPath, 1024) // no host has 1024 CPUs in this test
	var buf bytes.Buffer
	if err := run("", true, nil, []string{oldPath, newPath}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NOTE: host core counts differ") {
		t.Errorf("missing host-mismatch note:\n%s", out)
	}
	if strings.Contains(out, "ParallelTick") && !strings.Contains(out, "skipped") {
		t.Errorf("worker-scaling row compared across differing hosts:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ParallelTick") {
			t.Errorf("worker-scaling delta row present despite host mismatch: %q", line)
		}
	}
	// Non-scaling rows must still be compared.
	if !strings.Contains(out, "SimulatorThroughput/stall-heavy") {
		t.Errorf("host mismatch dropped non-scaling rows:\n%s", out)
	}
}

func TestCompareAsserts(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := run(oldPath, false, nil, nil, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	if err := run(newPath, false, nil, nil, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ok := []string{"Fig5LCS:allocs/op<=5e6"}
	if err := run("", true, ok, []string{oldPath, newPath}, nil, &buf); err != nil {
		t.Fatalf("passing assert failed: %v", err)
	}
	if !strings.Contains(buf.String(), "assert ok") {
		t.Errorf("missing assert confirmation:\n%s", buf.String())
	}
	bad := []string{"Fig5LCS:allocs/op<=100"}
	if err := run("", true, bad, []string{oldPath, newPath}, nil, &buf); err == nil {
		t.Fatal("exceeded threshold did not fail")
	}
	missing := []string{"NoSuchBench:allocs/op<=100"}
	if err := run("", true, missing, []string{oldPath, newPath}, nil, &buf); err == nil {
		t.Fatal("missing benchmark did not fail the assert")
	}
	malformed := []string{"Fig5LCS allocs"}
	if err := run("", true, malformed, []string{oldPath, newPath}, nil, &buf); err == nil {
		t.Fatal("malformed assert accepted")
	}
}

func TestCompareMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	newPath := filepath.Join(dir, "new.json")
	if err := run(newPath, false, nil, nil, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run("", true, nil, []string{filepath.Join(dir, "absent.json"), newPath}, nil, &buf)
	if err != nil {
		t.Fatalf("missing baseline must not fail CI: %v", err)
	}
	if !strings.Contains(buf.String(), "no baseline") {
		t.Errorf("expected baseline notice, got %q", buf.String())
	}
	if _, statErr := os.Stat(newPath); statErr != nil {
		t.Fatal(statErr)
	}
	// Asserts still run against the new record even without a baseline.
	var buf2 bytes.Buffer
	bad := []string{"Fig5LCS:allocs/op<=100"}
	if err := run("", true, bad, []string{filepath.Join(dir, "absent.json"), newPath}, nil, &buf2); err == nil {
		t.Fatal("assert skipped when baseline missing")
	}
}
