package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
BenchmarkSimulatorThroughput/stall-heavy-8         	      20	   4000000 ns/op	  14000000 simcycles/s
BenchmarkSimulatorThroughput/stall-heavy-8         	      20	   2000000 ns/op	  10000000 simcycles/s
BenchmarkFig5LCS-8                                 	       1	 900000000 ns/op	     1.15 geomean-speedup	  360338 B/op	    3151 allocs/op
PASS
ok  	gpusched	1.234s
`

func TestParse(t *testing.T) {
	rec, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	th, ok := rec.Benchmarks["SimulatorThroughput/stall-heavy"]
	if !ok {
		t.Fatalf("missing throughput benchmark: %v", rec.Benchmarks)
	}
	if th["ns/op"] != 3000000 || th["simcycles/s"] != 12000000 {
		t.Errorf("repeated runs not averaged: %v", th)
	}
	fig5 := rec.Benchmarks["Fig5LCS"]
	if fig5["geomean-speedup"] != 1.15 || fig5["allocs/op"] != 3151 {
		t.Errorf("custom/benchmem metrics wrong: %v", fig5)
	}
}

func TestRoundTripAndCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := run(oldPath, false, nil, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	faster := strings.ReplaceAll(sample, "4000000 ns/op", "1000000 ns/op")
	faster = strings.ReplaceAll(faster, "2000000 ns/op", "1000000 ns/op")
	if err := run(newPath, false, nil, strings.NewReader(faster), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run("", true, []string{oldPath, newPath}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SimulatorThroughput/stall-heavy") || !strings.Contains(out, "-66.67%") {
		t.Errorf("comparison missing expected delta:\n%s", out)
	}
}

func TestCompareMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	newPath := filepath.Join(dir, "new.json")
	if err := run(newPath, false, nil, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run("", true, []string{filepath.Join(dir, "absent.json"), newPath}, nil, &buf)
	if err != nil {
		t.Fatalf("missing baseline must not fail CI: %v", err)
	}
	if !strings.Contains(buf.String(), "no baseline") {
		t.Errorf("expected baseline notice, got %q", buf.String())
	}
	if _, statErr := os.Stat(newPath); statErr != nil {
		t.Fatal(statErr)
	}
}
