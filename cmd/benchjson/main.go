// Command benchjson converts `go test -bench` output into a stable JSON
// record and compares two such records benchstat-style. It exists so CI can
// commit a benchmark baseline (results/BENCH_*.json) and report drift
// against it without external tooling.
//
//	go test -bench . -benchmem | benchjson -out results/BENCH_3.json
//	benchjson -compare results/BENCH_2.json results/BENCH_3.json
//
// The JSON maps benchmark name (GOMAXPROCS suffix stripped) to its metrics:
// ns/op always, plus B/op, allocs/op, and any custom b.ReportMetric units
// (simcycles/s, geomean-speedup, ...). When a benchmark appears several
// times (-count > 1) the metrics are averaged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is the persisted benchmark snapshot.
type Record struct {
	// Benchmarks maps benchmark name to unit ("ns/op", "simcycles/s", ...)
	// to value.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	var (
		out     = flag.String("out", "", "write parsed JSON to this file (default stdout)")
		compare = flag.Bool("compare", false, "compare two JSON records: benchjson -compare old.json new.json")
	)
	flag.Parse()
	if err := run(*out, *compare, flag.Args(), os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, compare bool, args []string, stdin io.Reader, stdout io.Writer) error {
	if compare {
		if len(args) != 2 {
			return fmt.Errorf("-compare needs exactly two files, got %d", len(args))
		}
		return runCompare(args[0], args[1], stdout)
	}
	rec, err := Parse(stdin)
	if err != nil {
		return err
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// Parse extracts benchmark results from `go test -bench` output. Lines it
// does not recognize are ignored, so the full test output can be piped in.
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{Benchmarks: map[string]map[string]float64{}}
	counts := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8  20  123 ns/op  456 custom/unit  [...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other Benchmark* text
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		counts[name]++
		if prev, ok := rec.Benchmarks[name]; ok {
			// Running mean over -count repetitions.
			n := float64(counts[name])
			//gpulint:ordered-irrelevant independent per-unit mean updates commute; output order comes from json.Marshal's sorted map keys
			for unit, v := range metrics {
				prev[unit] += (v - prev[unit]) / n
			}
		} else {
			rec.Benchmarks[name] = metrics
		}
	}
	return rec, sc.Err()
}

func load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// runCompare prints a benchstat-style delta table. A missing old file is
// reported but not an error, so CI works on the first run that establishes
// a baseline.
func runCompare(oldPath, newPath string, w io.Writer) error {
	oldRec, err := load(oldPath)
	if os.IsNotExist(err) {
		fmt.Fprintf(w, "no baseline %s; nothing to compare\n", oldPath)
		return nil
	}
	if err != nil {
		return err
	}
	newRec, err := load(newPath)
	if err != nil {
		return err
	}

	var names []string
	for name := range oldRec.Benchmarks {
		if _, ok := newRec.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(w, "no common benchmarks")
		return nil
	}

	fmt.Fprintf(w, "%-50s %-12s %14s %14s %9s\n", "name", "unit", "old", "new", "delta")
	for _, name := range names {
		o, n := oldRec.Benchmarks[name], newRec.Benchmarks[name]
		var units []string
		for unit := range o {
			if _, ok := n[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			delta := "~"
			if o[unit] != 0 {
				delta = fmt.Sprintf("%+.2f%%", (n[unit]-o[unit])/o[unit]*100)
			}
			fmt.Fprintf(w, "%-50s %-12s %14.6g %14.6g %9s\n", name, unit, o[unit], n[unit], delta)
		}
	}
	return nil
}
