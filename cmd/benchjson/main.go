// Command benchjson converts `go test -bench` output into a stable JSON
// record and compares two such records benchstat-style. It exists so CI can
// commit a benchmark baseline (results/BENCH_*.json) and report drift
// against it without external tooling.
//
//	go test -bench . -benchmem | benchjson -out results/BENCH_8.json
//	benchjson -compare results/BENCH_6.json results/BENCH_8.json
//	benchjson -compare -assert 'Fig5LCS:allocs/op<=5e6' old.json new.json
//
// The JSON maps benchmark name (GOMAXPROCS suffix stripped) to its metrics:
// ns/op always, plus B/op, allocs/op, and any custom b.ReportMetric units
// (simcycles/s, geomean-speedup, ...). When a benchmark appears several
// times (-count > 1) the metrics are averaged. The record also carries the
// host shape (NumCPU, GOMAXPROCS) it was captured on: worker-scaling
// benchmarks measure how the simulator uses cores, so comparing them across
// machines with different core counts is noise, and -compare skips those
// rows (with a loud note) when the hosts differ.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Record is the persisted benchmark snapshot.
type Record struct {
	// Host is the machine shape the benchmarks ran on. Nil in records
	// written before the field existed; host-sensitive checks are skipped
	// when either side lacks it.
	Host *HostInfo `json:"host,omitempty"`
	// Benchmarks maps benchmark name to unit ("ns/op", "simcycles/s", ...)
	// to value.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// HostInfo pins the hardware context a benchmark record was captured in.
type HostInfo struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// workerScalingBench marks benchmark names whose numbers are a function of
// host core count (the worker-sweep rows): they are incomparable across
// machines with different core counts.
func workerScalingBench(name string) bool {
	return strings.Contains(name, "ParallelTick")
}

// multiFlag collects repeated -assert values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		out     = flag.String("out", "", "write parsed JSON to this file (default stdout)")
		compare = flag.Bool("compare", false, "compare two JSON records: benchjson -compare old.json new.json")
		asserts multiFlag
	)
	flag.Var(&asserts, "assert", "with -compare: threshold on the new record, 'name:unit<=value' (repeatable); violation is a hard failure")
	flag.Parse()
	if err := run(*out, *compare, asserts, flag.Args(), os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, compare bool, asserts []string, args []string, stdin io.Reader, stdout io.Writer) error {
	if compare {
		if len(args) != 2 {
			return fmt.Errorf("-compare needs exactly two files, got %d", len(args))
		}
		return runCompare(args[0], args[1], asserts, stdout)
	}
	if len(asserts) > 0 {
		return fmt.Errorf("-assert requires -compare")
	}
	rec, err := Parse(stdin)
	if err != nil {
		return err
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	rec.Host = &HostInfo{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// Parse extracts benchmark results from `go test -bench` output. Lines it
// does not recognize are ignored, so the full test output can be piped in.
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{Benchmarks: map[string]map[string]float64{}}
	counts := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8  20  123 ns/op  456 custom/unit  [...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other Benchmark* text
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		counts[name]++
		if prev, ok := rec.Benchmarks[name]; ok {
			// Running mean over -count repetitions.
			n := float64(counts[name])
			//gpulint:ordered-irrelevant independent per-unit mean updates commute; output order comes from json.Marshal's sorted map keys
			for unit, v := range metrics {
				prev[unit] += (v - prev[unit]) / n
			}
		} else {
			rec.Benchmarks[name] = metrics
		}
	}
	return rec, sc.Err()
}

func load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// assertion is one parsed -assert threshold.
type assertion struct {
	name  string
	unit  string
	limit float64
}

func parseAssert(s string) (assertion, error) {
	head, limitStr, ok := strings.Cut(s, "<=")
	if !ok {
		return assertion{}, fmt.Errorf("assert %q: want 'name:unit<=value'", s)
	}
	name, unit, ok := strings.Cut(head, ":")
	if !ok || name == "" || unit == "" {
		return assertion{}, fmt.Errorf("assert %q: want 'name:unit<=value'", s)
	}
	limit, err := strconv.ParseFloat(strings.TrimSpace(limitStr), 64)
	if err != nil {
		return assertion{}, fmt.Errorf("assert %q: bad limit: %v", s, err)
	}
	return assertion{name: strings.TrimSpace(name), unit: strings.TrimSpace(unit), limit: limit}, nil
}

// runCompare prints a benchstat-style delta table. A missing old file is
// reported but not an error, so CI works on the first run that establishes
// a baseline. Assertions are checked against the new record (whether or not
// a baseline exists) and any violation is a hard error — the allocation
// budgets in CI ride on this.
func runCompare(oldPath, newPath string, asserts []string, w io.Writer) error {
	newRec, err := load(newPath)
	if err != nil {
		return err
	}
	var checked []assertion
	for _, s := range asserts {
		a, err := parseAssert(s)
		if err != nil {
			return err
		}
		checked = append(checked, a)
	}

	oldRec, err := load(oldPath)
	if os.IsNotExist(err) {
		fmt.Fprintf(w, "no baseline %s; nothing to compare\n", oldPath)
		return checkAsserts(checked, newRec, w)
	}
	if err != nil {
		return err
	}

	// Worker-scaling rows measure how the simulator spreads over cores; on
	// a host with a different core count the old numbers answer a different
	// question. Skip them rather than report meaningless drift.
	skipScaling := oldRec.Host != nil && newRec.Host != nil &&
		oldRec.Host.NumCPU != newRec.Host.NumCPU
	if skipScaling {
		fmt.Fprintf(w, "NOTE: host core counts differ (baseline: %d CPUs, new: %d CPUs); worker-scaling rows (ParallelTick) are NOT comparable and are skipped\n",
			oldRec.Host.NumCPU, newRec.Host.NumCPU)
	}

	var names []string
	for name := range oldRec.Benchmarks {
		if _, ok := newRec.Benchmarks[name]; !ok {
			continue
		}
		if skipScaling && workerScalingBench(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(w, "no common benchmarks")
		return checkAsserts(checked, newRec, w)
	}

	fmt.Fprintf(w, "%-50s %-12s %14s %14s %9s\n", "name", "unit", "old", "new", "delta")
	for _, name := range names {
		o, n := oldRec.Benchmarks[name], newRec.Benchmarks[name]
		var units []string
		for unit := range o {
			if _, ok := n[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			delta := "~"
			if o[unit] != 0 {
				delta = fmt.Sprintf("%+.2f%%", (n[unit]-o[unit])/o[unit]*100)
			}
			fmt.Fprintf(w, "%-50s %-12s %14.6g %14.6g %9s\n", name, unit, o[unit], n[unit], delta)
		}
	}
	return checkAsserts(checked, newRec, w)
}

// checkAsserts enforces the -assert thresholds against the new record. A
// missing benchmark or unit fails too: a threshold that silently stops
// measuring is worse than one that trips.
func checkAsserts(asserts []assertion, rec *Record, w io.Writer) error {
	var failed []string
	for _, a := range asserts {
		m, ok := rec.Benchmarks[a.name]
		if !ok {
			failed = append(failed, fmt.Sprintf("%s:%s <= %g: benchmark missing from new record", a.name, a.unit, a.limit))
			continue
		}
		v, ok := m[a.unit]
		if !ok {
			failed = append(failed, fmt.Sprintf("%s:%s <= %g: unit missing from new record", a.name, a.unit, a.limit))
			continue
		}
		if v > a.limit {
			failed = append(failed, fmt.Sprintf("%s:%s = %g exceeds limit %g", a.name, a.unit, v, a.limit))
			continue
		}
		fmt.Fprintf(w, "assert ok: %s:%s = %g <= %g\n", a.name, a.unit, v, a.limit)
	}
	if len(failed) > 0 {
		return fmt.Errorf("assertion(s) failed:\n  %s", strings.Join(failed, "\n  "))
	}
	return nil
}
