// Command gpulint runs the repo's determinism and cache-key analyzers
// (internal/lint) over the module, multichecker style:
//
//	gpulint ./...            # what make lint and CI run
//	gpulint -list            # describe the analyzers
//	gpulint ./internal/sim   # one package
//
// Diagnostics print as file:line:col: message (analyzer), sorted, and any
// finding exits 1. Suppressions and annotations are //gpulint: comments;
// see DESIGN.md "Determinism contract".
package main

import (
	"flag"
	"fmt"
	"os"

	"gpusched/internal/lint"
	"gpusched/internal/lint/load"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	dir := flag.String("C", "", "change to this directory before loading packages")
	flag.Parse()

	if *list {
		for _, c := range lint.Suite() {
			fmt.Printf("%-12s %s\n", c.Analyzer.Name, c.Analyzer.Doc)
		}
		return
	}

	n, err := run(*dir, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpulint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "gpulint: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

func run(dir string, patterns []string) (int, error) {
	pkgs, fset, err := load.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		diags := lint.Check(fset, pkg)
		total += len(diags)
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	return total, nil
}
