// Command gpulint runs the repo's determinism, cache-key, and concurrency
// contract analyzers (internal/lint) over the module, multichecker style:
//
//	gpulint ./...            # what make lint and CI run
//	gpulint -list            # describe the analyzers
//	gpulint -json ./...      # machine-readable diagnostics on stdout
//	gpulint -github ./...    # GitHub Actions ::error annotations
//	gpulint ./internal/sim   # one package
//
// Diagnostics print as file:line:col: message (analyzer), sorted, and any
// finding exits 1. -json emits one JSON array of {file,line,col,analyzer,
// message} objects instead; -github adds workflow commands so CI annotates
// the offending lines in pull requests. Suppressions and annotations are
// //gpulint: comments; see DESIGN.md "Determinism contract" and
// "Concurrency contracts".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpusched/internal/lint"
	"gpusched/internal/lint/load"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	dir := flag.String("C", "", "change to this directory before loading packages")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	github := flag.Bool("github", false, "emit GitHub Actions ::error workflow commands alongside the plain output")
	flag.Parse()

	if *list {
		for _, c := range lint.Suite() {
			fmt.Printf("%-12s %s\n", c.Analyzer.Name, c.Analyzer.Doc)
		}
		return
	}

	n, err := run(*dir, flag.Args(), *asJSON, *github)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpulint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "gpulint: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable diagnostic shape -json emits.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(dir string, patterns []string, asJSON, github bool) (int, error) {
	pkgs, fset, err := load.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	// One whole-program pass: the call-graph analyzers need every package
	// loaded together to see cross-package edges.
	diags := lint.CheckAll(fset, pkgs)

	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		p := fset.Position(d.Pos)
		out[i] = jsonDiag{File: p.Filename, Line: p.Line, Col: p.Column, Analyzer: d.Analyzer, Message: d.Message}
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return 0, err
		}
		return len(out), nil
	}
	for _, d := range out {
		fmt.Printf("%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
		if github {
			// Workflow command grammar: property values escape %, CR, LF,
			// ',' and ':'; the free-text message escapes %, CR, LF.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=gpulint %s::%s\n",
				escapeProp(d.File), d.Line, d.Col, escapeProp(d.Analyzer), escapeData(d.Message))
		}
	}
	return len(out), nil
}

func escapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

func escapeProp(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}
