package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestResolveCacheDir(t *testing.T) {
	cases := []struct {
		cache, out, want string
	}{
		{"auto", "results", filepath.Join("results", ".simcache")},
		{"auto", "", ""},
		{"off", "results", ""},
		{"", "results", ""},
		{"/tmp/explicit", "", "/tmp/explicit"},
	}
	for _, c := range cases {
		if got := resolveCacheDir(c.cache, c.out); got != c.want {
			t.Errorf("resolveCacheDir(%q, %q) = %q, want %q", c.cache, c.out, got, c.want)
		}
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errb.String())
	}
	for _, want := range []string{"table1", "fig5", "fig13"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-scale", "nope"},
		{"-exp", "no-such-experiment"},
	} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", args, code, errb.String())
		}
	}
}

// TestRunOneExperimentWritesCSV runs the cheapest experiment end to end and
// checks both outputs: the rendered table on stdout and the CSV file.
func TestRunOneExperimentWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errb strings.Builder
	code := run([]string{"-exp", "table1", "-scale", "test", "-out", dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "table1") {
		t.Errorf("stdout missing rendered table:\n%s", out.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "parameter,value") {
		t.Errorf("CSV missing header: %q", string(data))
	}
}

// TestRunSurfacesExperimentErrors forces a failure (tiny core count cannot
// be forced here, so use a bad experiment list instead) — covered above —
// and verifies a failing simulation propagates as exit code 1 with a
// summary. The cheapest way to make an experiment fail deterministically is
// an out-of-range cores override: gpu.New rejects NumCores > 255.
func TestRunSurfacesExperimentErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds simulations")
	}
	var out, errb strings.Builder
	code := run([]string{"-exp", "table2", "-scale", "test", "-out", "", "-cores", "300"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run with broken config = %d, want 1 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "experiments failed") {
		t.Errorf("stderr missing failure summary: %q", errb.String())
	}
}
