// Command paperbench regenerates every table and figure of the paper
// reproduction and writes them as text (stdout) and CSV (results/).
//
//	paperbench                  # all experiments, full scale (minutes)
//	paperbench -scale small     # quicker, smaller grids
//	paperbench -exp fig5,fig8   # a subset
//	paperbench -list            # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gpusched/internal/harness"
	"gpusched/internal/workloads"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids (or 'all')")
		scale    = flag.String("scale", "full", "problem scale: small | full")
		outDir   = flag.String("out", "results", "directory for CSV output ('' = none)")
		cores    = flag.Int("cores", 0, "override SM count (0 = default 15)")
		list     = flag.Bool("list", false, "list experiments and exit")
		progress = flag.Bool("v", false, "log each simulation run")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	opt := harness.Options{Scale: workloads.ScaleFull, Cores: *cores}
	switch *scale {
	case "small":
		opt.Scale = workloads.ScaleSmall
	case "full":
		opt.Scale = workloads.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small|full)\n", *scale)
		os.Exit(2)
	}
	if *progress {
		opt.Progress = os.Stderr
	}

	var selected []harness.Experiment
	if *expFlag == "all" {
		selected = harness.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	h := harness.New(opt)
	for _, e := range selected {
		start := time.Now()
		table := e.Run(h)
		table.Render(os.Stdout)
		fmt.Printf("  (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*outDir, e.ID+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			table.CSV(f)
			f.Close()
		}
	}
}
